package main

import (
	"regexp"
	"testing"
)

func results(pairs ...any) []Result {
	var out []Result
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, Result{Name: pairs[i].(string), NsPerOp: float64(pairs[i+1].(int))})
	}
	return out
}

func TestDiffPairsAndSortsWorstFirst(t *testing.T) {
	// The new artifact comes from a 4-vCPU runner (-4 suffixes), the old
	// one from a 2-vCPU runner: pairing must key on the benchmark, not
	// the runner shape.
	oldR := results("BenchmarkA-2", 100, "BenchmarkB/sub-2", 1000, "BenchmarkGone-2", 50)
	newR := results("BenchmarkA-4", 150, "BenchmarkB/sub-4", 900, "BenchmarkNew-4", 10)
	changes, missing := diff(oldR, newR, nil)
	if len(changes) != 2 {
		t.Fatalf("got %d changes, want 2 (new-only and gone benchmarks skipped)", len(changes))
	}
	if changes[0].name != "BenchmarkA" || changes[0].ratio != 1.5 {
		t.Errorf("worst-first sort: first change = %+v", changes[0])
	}
	if changes[1].name != "BenchmarkB/sub" || changes[1].ratio != 0.9 {
		t.Errorf("second change = %+v", changes[1])
	}
	if len(missing) != 0 {
		t.Errorf("unwatched disappeared benchmark reported missing: %v", missing)
	}
}

func TestDiffWatchedEnforcement(t *testing.T) {
	watch := []*regexp.Regexp{regexp.MustCompile(`^BenchmarkHot/`)}
	oldR := results("BenchmarkHot/path-2", 100, "BenchmarkCold-2", 100, "BenchmarkHot/gone-2", 10)
	newR := results("BenchmarkHot/path-2", 130, "BenchmarkCold-2", 500)
	changes, missing := diff(oldR, newR, watch)

	byName := map[string]change{}
	for _, c := range changes {
		byName[c.name] = c
	}
	if c := byName["BenchmarkHot/path"]; !c.watched || c.ratio != 1.3 {
		t.Errorf("watched hot path = %+v", c)
	}
	// A 5× regression on an unwatched benchmark is reported but never
	// enforced.
	if c := byName["BenchmarkCold"]; c.watched {
		t.Errorf("unwatched benchmark marked watched: %+v", c)
	}
	if len(missing) != 1 || missing[0] != "BenchmarkHot/gone" {
		t.Errorf("missing = %v, want the disappeared watched benchmark", missing)
	}
}

func TestDiffSkipsZeroBaseline(t *testing.T) {
	changes, _ := diff(results("BenchmarkZ-2", 0), results("BenchmarkZ-2", 10), nil)
	if len(changes) != 0 {
		t.Errorf("zero ns/op baseline compared: %+v", changes)
	}
}

func TestCompileWatch(t *testing.T) {
	ws, err := compileWatch(" BenchmarkA , ,Benchmark(B|C)/kway ")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("compiled %d patterns, want 2", len(ws))
	}
	if !watched("BenchmarkB/kway-heap-2", ws) || watched("BenchmarkD-2", ws) {
		t.Error("watch matching wrong")
	}
	if _, err := compileWatch("("); err == nil {
		t.Error("invalid regexp accepted")
	}
}
