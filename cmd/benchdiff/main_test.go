package main

import (
	"math"
	"regexp"
	"strings"
	"testing"

	"gmeansmr/internal/experiments"
)

func results(pairs ...any) []Result {
	var out []Result
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, Result{Name: pairs[i].(string), NsPerOp: float64(pairs[i+1].(int))})
	}
	return out
}

func TestDiffPairsAndSortsWorstFirst(t *testing.T) {
	// The new artifact comes from a 4-vCPU runner (-4 suffixes), the old
	// one from a 2-vCPU runner: pairing must key on the benchmark, not
	// the runner shape.
	oldR := results("BenchmarkA-2", 100, "BenchmarkB/sub-2", 1000, "BenchmarkGone-2", 50)
	newR := results("BenchmarkA-4", 150, "BenchmarkB/sub-4", 900, "BenchmarkNew-4", 10)
	changes, missing := diff(oldR, newR, nil)
	if len(changes) != 2 {
		t.Fatalf("got %d changes, want 2 (new-only and gone benchmarks skipped)", len(changes))
	}
	if changes[0].name != "BenchmarkA" || changes[0].ratio != 1.5 {
		t.Errorf("worst-first sort: first change = %+v", changes[0])
	}
	if changes[1].name != "BenchmarkB/sub" || changes[1].ratio != 0.9 {
		t.Errorf("second change = %+v", changes[1])
	}
	if len(missing) != 0 {
		t.Errorf("unwatched disappeared benchmark reported missing: %v", missing)
	}
}

func TestDiffWatchedEnforcement(t *testing.T) {
	watch := []*regexp.Regexp{regexp.MustCompile(`^BenchmarkHot/`)}
	oldR := results("BenchmarkHot/path-2", 100, "BenchmarkCold-2", 100, "BenchmarkHot/gone-2", 10)
	newR := results("BenchmarkHot/path-2", 130, "BenchmarkCold-2", 500)
	changes, missing := diff(oldR, newR, watch)

	byName := map[string]change{}
	for _, c := range changes {
		byName[c.name] = c
	}
	if c := byName["BenchmarkHot/path"]; !c.watched || c.ratio != 1.3 {
		t.Errorf("watched hot path = %+v", c)
	}
	// A 5× regression on an unwatched benchmark is reported but never
	// enforced.
	if c := byName["BenchmarkCold"]; c.watched {
		t.Errorf("unwatched benchmark marked watched: %+v", c)
	}
	if len(missing) != 1 || missing[0] != "BenchmarkHot/gone" {
		t.Errorf("missing = %v, want the disappeared watched benchmark", missing)
	}
}

func TestDiffSkipsZeroBaseline(t *testing.T) {
	changes, _ := diff(results("BenchmarkZ-2", 0), results("BenchmarkZ-2", 10), nil)
	if len(changes) != 0 {
		t.Errorf("zero ns/op baseline compared: %+v", changes)
	}
}

// gatedSeries builds a gated scaling series with the G-means cost-vs-k
// band from the real suite.
func gatedSeries(name string, exponent float64) experiments.ScalingSeries {
	return experiments.ScalingSeries{
		Name: name, Unit: "distance computations",
		X: []float64{4, 8, 16, 32}, Y: []float64{1, 2, 4, 8},
		Exponent: exponent, R2: 0.999,
		Gated: true, MinExponent: 0.8, MaxExponent: 1.3,
	}
}

// TestCheckScalingFailsExponentRegression is the synthetic regression the
// CI gate exists for: an implementation change that makes G-means cost
// superlinear in k (exponent 1.45 against the paper's linear claim) must
// fail the build even though every individual benchmark might still pass.
func TestCheckScalingFailsExponentRegression(t *testing.T) {
	report := &experiments.ScalingReport{Series: []experiments.ScalingSeries{gatedSeries("gmeans-cost-vs-k", 1.45)}}
	lines, failures := checkScaling(report, nil, 0.3)
	if failures != 1 {
		t.Fatalf("out-of-band exponent produced %d failures, want 1\n%s", failures, strings.Join(lines, "\n"))
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "outside band") {
		t.Errorf("failure line should name the band violation: %v", lines)
	}
}

func TestCheckScalingPassesInBand(t *testing.T) {
	report := &experiments.ScalingReport{Series: []experiments.ScalingSeries{
		gatedSeries("gmeans-cost-vs-k", 1.05),
		{Name: "gmeans-time-vs-nodes", Unit: "seconds", Exponent: -0.4}, // ungated: trend only
	}}
	lines, failures := checkScaling(report, nil, 0.3)
	if failures != 0 {
		t.Fatalf("in-band report failed:\n%s", strings.Join(lines, "\n"))
	}
	if len(lines) != 2 {
		t.Errorf("every series should be reported: %v", lines)
	}
}

func TestCheckScalingDetectsDrift(t *testing.T) {
	// Both exponents in band, but the new one moved 0.35 — past the 0.3
	// drift allowance — since the previous push.
	cur := &experiments.ScalingReport{Series: []experiments.ScalingSeries{gatedSeries("gmeans-cost-vs-k", 1.25)}}
	prev := &experiments.ScalingReport{Series: []experiments.ScalingSeries{gatedSeries("gmeans-cost-vs-k", 0.90)}}
	lines, failures := checkScaling(cur, prev, 0.3)
	if failures != 1 {
		t.Fatalf("drift produced %d failures, want 1\n%s", failures, strings.Join(lines, "\n"))
	}
	if !strings.Contains(lines[0], "drifted") {
		t.Errorf("failure line should name the drift: %v", lines)
	}
	// The same pair passes with a looser allowance, and a prev report
	// missing the series skips the drift check entirely.
	if _, failures := checkScaling(cur, prev, 0.5); failures != 0 {
		t.Error("in-band pair failed under loose drift allowance")
	}
	if _, failures := checkScaling(cur, &experiments.ScalingReport{}, 0.3); failures != 0 {
		t.Error("missing previous series should skip the drift check")
	}
}

func TestCheckScalingUnfittedExponentFails(t *testing.T) {
	report := &experiments.ScalingReport{Series: []experiments.ScalingSeries{gatedSeries("gmeans-cost-vs-k", math.NaN())}}
	_, failures := checkScaling(report, nil, 0.3)
	if failures != 1 {
		t.Errorf("NaN exponent on a gated series produced %d failures, want 1", failures)
	}
}

func TestCompileWatch(t *testing.T) {
	ws, err := compileWatch(" BenchmarkA , ,Benchmark(B|C)/kway ")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("compiled %d patterns, want 2", len(ws))
	}
	if !watched("BenchmarkB/kway-heap-2", ws) || watched("BenchmarkD-2", ws) {
		t.Error("watch matching wrong")
	}
	if _, err := compileWatch("("); err == nil {
		t.Error("invalid regexp accepted")
	}
}
