// Command benchdiff compares two BENCH.json artifacts (as written by
// cmd/benchjson) and fails when a watched benchmark regressed by more
// than the threshold, so CI can gate each push's perf trajectory against
// the previous push instead of letting regressions accumulate silently.
//
// Usage:
//
//	benchdiff [-threshold 0.20] [-watch re1,re2,...] old.json new.json
//
// Every benchmark present in both files is reported with its ns/op
// delta. Enforcement applies only to benchmarks matched by a -watch
// regular expression: those fail the run when their ns/op grew by more
// than threshold (default 20%), or when they disappeared from the new
// artifact. With no -watch list the tool is report-only — single-shot
// CI numbers are too noisy to gate every benchmark, so CI names the
// stable, equality-gated hot-path benchmarks explicitly.
//
// It also gates the scaling-curve artifact written by
// `experiments -run scaling`:
//
//	benchdiff -scaling SCALING.json [-scaling-old prev/SCALING.json] [-exp-drift 0.3]
//
// Each gated series in SCALING.json carries its own exponent band
// (e.g. G-means cost-vs-k must stay in [0.8, 1.3]); the run fails when a
// gated exponent leaves its band, or — when the previous push's artifact
// is supplied — when any gated exponent moved by more than -exp-drift.
// Unlike ns/op, fitted exponents of deterministic distance counters are
// noise-free, so the band gate is exact. -scaling may be used alone or
// combined with the two-artifact ns/op diff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"regexp"
	"sort"
	"strings"

	"gmeansmr/internal/experiments"
)

// Result is the subset of the benchjson record this tool consumes.
type Result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// change is one benchmark present in both artifacts.
type change struct {
	name     string
	old, new float64
	ratio    float64 // new/old
	watched  bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	threshold := flag.Float64("threshold", 0.20, "fail a watched benchmark when ns/op grows by more than this fraction")
	watchFlag := flag.String("watch", "", "comma-separated regexps of benchmark names to enforce (report-only when empty)")
	scalingPath := flag.String("scaling", "", "SCALING.json artifact to gate on fitted-exponent bands")
	scalingOldPath := flag.String("scaling-old", "", "previous push's SCALING.json for exponent-drift detection (skipped when absent)")
	expDrift := flag.Float64("exp-drift", 0.3, "fail a gated scaling series when its exponent moved by more than this vs -scaling-old")
	flag.Parse()
	if *scalingPath == "" && flag.NArg() != 2 {
		log.Fatal("usage: benchdiff [-threshold 0.20] [-watch re,...] [-scaling SCALING.json [-scaling-old prev.json] [-exp-drift 0.3]] old.json new.json")
	}
	if *scalingPath != "" && flag.NArg() != 0 && flag.NArg() != 2 {
		log.Fatal("usage: benchdiff -scaling SCALING.json takes zero or two positional artifacts")
	}

	failures := 0
	if flag.NArg() == 2 {
		watch, err := compileWatch(*watchFlag)
		if err != nil {
			log.Fatal(err)
		}
		oldResults, err := load(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		newResults, err := load(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}

		changes, missing := diff(oldResults, newResults, watch)
		report(os.Stdout, changes, missing, *threshold)

		for _, c := range changes {
			if c.watched && c.ratio > 1+*threshold {
				failures++
			}
		}
		failures += len(missing)
	}

	if *scalingPath != "" {
		cur, err := loadScaling(*scalingPath)
		if err != nil {
			log.Fatal(err)
		}
		var prev *experiments.ScalingReport
		if *scalingOldPath != "" {
			prev, err = loadScaling(*scalingOldPath)
			if err != nil {
				// First push after the gate lands (or an expired artifact)
				// has no previous report; the band check still applies.
				fmt.Printf("note: no previous scaling artifact (%v); drift check skipped\n", err)
			}
		}
		lines, scalingFailures := checkScaling(cur, prev, *expDrift)
		for _, l := range lines {
			fmt.Println(l)
		}
		failures += scalingFailures
	}

	if failures > 0 {
		log.Fatalf("%d gated check(s) failed (ns/op regression, missing benchmark, or scaling-exponent violation)", failures)
	}
}

func loadScaling(path string) (*experiments.ScalingReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var report experiments.ScalingReport
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &report, nil
}

// checkScaling enforces the scaling-curve gates: every gated series'
// fitted exponent must sit inside its own [MinExponent, MaxExponent]
// band, and — when the previous push's report is available — must not
// have moved by more than drift. Ungated series are reported for trend
// only. Returns the human-readable report lines and the failure count.
func checkScaling(cur, prev *experiments.ScalingReport, drift float64) (lines []string, failures int) {
	prevBy := make(map[string]experiments.ScalingSeries)
	if prev != nil {
		for _, s := range prev.Series {
			prevBy[s.Name] = s
		}
	}
	for _, s := range cur.Series {
		if !s.Gated {
			lines = append(lines, fmt.Sprintf("  %-24s exponent %6.3f (r²=%.3f, trend only)", s.Name, s.Exponent, s.R2))
			continue
		}
		status := "✓"
		var problems []string
		if math.IsNaN(s.Exponent) {
			problems = append(problems, "exponent not fitted")
		} else if s.Exponent < s.MinExponent || s.Exponent > s.MaxExponent {
			problems = append(problems, fmt.Sprintf("outside band [%.2f, %.2f]", s.MinExponent, s.MaxExponent))
		}
		if p, ok := prevBy[s.Name]; ok && !math.IsNaN(s.Exponent) && !math.IsNaN(p.Exponent) {
			if d := math.Abs(s.Exponent - p.Exponent); d > drift {
				problems = append(problems, fmt.Sprintf("drifted %.3f from previous %.3f (max %.2f)", d, p.Exponent, drift))
			}
		}
		if len(problems) > 0 {
			status = "✗"
			failures++
		}
		line := fmt.Sprintf("%s %-24s exponent %6.3f in [%.2f, %.2f] (r²=%.3f)",
			status, s.Name, s.Exponent, s.MinExponent, s.MaxExponent, s.R2)
		if len(problems) > 0 {
			line += ": " + strings.Join(problems, "; ")
		}
		lines = append(lines, line)
	}
	return lines, failures
}

func load(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Result
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func compileWatch(list string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		re, err := regexp.Compile(s)
		if err != nil {
			return nil, fmt.Errorf("bad -watch pattern %q: %w", s, err)
		}
		out = append(out, re)
	}
	return out, nil
}

func watched(name string, watch []*regexp.Regexp) bool {
	for _, re := range watch {
		if re.MatchString(name) {
			return true
		}
	}
	return false
}

// procSuffix is the "-P" GOMAXPROCS suffix the testing package appends
// to every benchmark name (absent when GOMAXPROCS is 1).
var procSuffix = regexp.MustCompile(`-\d+$`)

// normalizeName strips the GOMAXPROCS suffix so artifacts pair on the
// benchmark itself: a CI runner shape change (2 → 4 vCPUs renames every
// benchmark from ...-2 to ...-4) must not make the watched set "missing"
// and hard-fail every later push.
func normalizeName(name string) string { return procSuffix.ReplaceAllString(name, "") }

// diff pairs the two artifacts by normalized benchmark name. A benchmark
// may appear several times in one artifact (e.g. re-runs); the last
// occurrence wins, matching how a reader of the raw bench log would see
// it. It returns the paired changes (sorted worst ratio first) and the
// watched benchmarks that disappeared from the new artifact. Benchmarks
// that are new, or whose old ns/op is zero (a corrupt or placeholder
// record), cannot be compared and are skipped.
func diff(oldResults, newResults []Result, watch []*regexp.Regexp) (changes []change, missing []string) {
	oldBy := make(map[string]float64, len(oldResults))
	for _, r := range oldResults {
		oldBy[normalizeName(r.Name)] = r.NsPerOp
	}
	newBy := make(map[string]float64, len(newResults))
	for _, r := range newResults {
		newBy[normalizeName(r.Name)] = r.NsPerOp
	}
	for name, cur := range newBy {
		prev, ok := oldBy[name]
		if !ok || prev <= 0 {
			continue
		}
		changes = append(changes, change{
			name: name, old: prev, new: cur,
			ratio:   cur / prev,
			watched: watched(name, watch),
		})
	}
	sort.Slice(changes, func(i, j int) bool {
		if changes[i].ratio != changes[j].ratio {
			return changes[i].ratio > changes[j].ratio
		}
		return changes[i].name < changes[j].name
	})
	for name := range oldBy {
		if _, ok := newBy[name]; !ok && watched(name, watch) {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return changes, missing
}

func report(w *os.File, changes []change, missing []string, threshold float64) {
	for _, c := range changes {
		status := "  "
		switch {
		case c.watched && c.ratio > 1+threshold:
			status = "✗ " // enforced regression
		case c.watched:
			status = "✓ "
		}
		fmt.Fprintf(w, "%s%-60s %14.0f → %14.0f ns/op  %+6.1f%%\n",
			status, c.name, c.old, c.new, (c.ratio-1)*100)
	}
	for _, name := range missing {
		fmt.Fprintf(w, "✗ %-60s missing from new artifact\n", name)
	}
}
