// Command benchdiff compares two BENCH.json artifacts (as written by
// cmd/benchjson) and fails when a watched benchmark regressed by more
// than the threshold, so CI can gate each push's perf trajectory against
// the previous push instead of letting regressions accumulate silently.
//
// Usage:
//
//	benchdiff [-threshold 0.20] [-watch re1,re2,...] old.json new.json
//
// Every benchmark present in both files is reported with its ns/op
// delta. Enforcement applies only to benchmarks matched by a -watch
// regular expression: those fail the run when their ns/op grew by more
// than threshold (default 20%), or when they disappeared from the new
// artifact. With no -watch list the tool is report-only — single-shot
// CI numbers are too noisy to gate every benchmark, so CI names the
// stable, equality-gated hot-path benchmarks explicitly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strings"
)

// Result is the subset of the benchjson record this tool consumes.
type Result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// change is one benchmark present in both artifacts.
type change struct {
	name     string
	old, new float64
	ratio    float64 // new/old
	watched  bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	threshold := flag.Float64("threshold", 0.20, "fail a watched benchmark when ns/op grows by more than this fraction")
	watchFlag := flag.String("watch", "", "comma-separated regexps of benchmark names to enforce (report-only when empty)")
	flag.Parse()
	if flag.NArg() != 2 {
		log.Fatal("usage: benchdiff [-threshold 0.20] [-watch re,...] old.json new.json")
	}
	watch, err := compileWatch(*watchFlag)
	if err != nil {
		log.Fatal(err)
	}
	oldResults, err := load(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	newResults, err := load(flag.Arg(1))
	if err != nil {
		log.Fatal(err)
	}

	changes, missing := diff(oldResults, newResults, watch)
	report(os.Stdout, changes, missing, *threshold)

	failures := 0
	for _, c := range changes {
		if c.watched && c.ratio > 1+*threshold {
			failures++
		}
	}
	failures += len(missing)
	if failures > 0 {
		log.Fatalf("%d watched benchmark(s) regressed beyond %.0f%% or went missing", failures, *threshold*100)
	}
}

func load(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Result
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func compileWatch(list string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		re, err := regexp.Compile(s)
		if err != nil {
			return nil, fmt.Errorf("bad -watch pattern %q: %w", s, err)
		}
		out = append(out, re)
	}
	return out, nil
}

func watched(name string, watch []*regexp.Regexp) bool {
	for _, re := range watch {
		if re.MatchString(name) {
			return true
		}
	}
	return false
}

// procSuffix is the "-P" GOMAXPROCS suffix the testing package appends
// to every benchmark name (absent when GOMAXPROCS is 1).
var procSuffix = regexp.MustCompile(`-\d+$`)

// normalizeName strips the GOMAXPROCS suffix so artifacts pair on the
// benchmark itself: a CI runner shape change (2 → 4 vCPUs renames every
// benchmark from ...-2 to ...-4) must not make the watched set "missing"
// and hard-fail every later push.
func normalizeName(name string) string { return procSuffix.ReplaceAllString(name, "") }

// diff pairs the two artifacts by normalized benchmark name. A benchmark
// may appear several times in one artifact (e.g. re-runs); the last
// occurrence wins, matching how a reader of the raw bench log would see
// it. It returns the paired changes (sorted worst ratio first) and the
// watched benchmarks that disappeared from the new artifact. Benchmarks
// that are new, or whose old ns/op is zero (a corrupt or placeholder
// record), cannot be compared and are skipped.
func diff(oldResults, newResults []Result, watch []*regexp.Regexp) (changes []change, missing []string) {
	oldBy := make(map[string]float64, len(oldResults))
	for _, r := range oldResults {
		oldBy[normalizeName(r.Name)] = r.NsPerOp
	}
	newBy := make(map[string]float64, len(newResults))
	for _, r := range newResults {
		newBy[normalizeName(r.Name)] = r.NsPerOp
	}
	for name, cur := range newBy {
		prev, ok := oldBy[name]
		if !ok || prev <= 0 {
			continue
		}
		changes = append(changes, change{
			name: name, old: prev, new: cur,
			ratio:   cur / prev,
			watched: watched(name, watch),
		})
	}
	sort.Slice(changes, func(i, j int) bool {
		if changes[i].ratio != changes[j].ratio {
			return changes[i].ratio > changes[j].ratio
		}
		return changes[i].name < changes[j].name
	})
	for name := range oldBy {
		if _, ok := newBy[name]; !ok && watched(name, watch) {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return changes, missing
}

func report(w *os.File, changes []change, missing []string, threshold float64) {
	for _, c := range changes {
		status := "  "
		switch {
		case c.watched && c.ratio > 1+threshold:
			status = "✗ " // enforced regression
		case c.watched:
			status = "✓ "
		}
		fmt.Fprintf(w, "%s%-60s %14.0f → %14.0f ns/op  %+6.1f%%\n",
			status, c.name, c.old, c.new, (c.ratio-1)*100)
	}
	for _, name := range missing {
		fmt.Fprintf(w, "✗ %-60s missing from new artifact\n", name)
	}
}
