// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON artifact, so CI can accumulate a perf trajectory
// (one BENCH.json per push) instead of burying the numbers in log text.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson -o BENCH.json
//
// Each benchmark line becomes one record with the benchmark name, ns/op,
// and — when present — B/op, allocs/op and every custom ReportMetric unit
// (k_found, shuffle_bytes, ...).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output file (default: stdout)")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d benchmark results to %s\n", len(results), *out)
}

// parse extracts every benchmark result line from go test -bench output.
// Non-benchmark lines (package headers, PASS/ok, metric-free output) are
// skipped; a malformed benchmark line is an error rather than a silent
// hole in the perf history.
func parse(r io.Reader) ([]Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	results := []Result{}
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Shape: Name iterations value unit [value unit]...
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("malformed benchmark line: %q", line)
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		res := Result{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q: %w", fields[i], line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				v := val
				res.BytesPerOp = &v
			case "allocs/op":
				v := val
				res.AllocsPerOp = &v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = val
			}
		}
		results = append(results, res)
	}
	return results, sc.Err()
}
