package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: gmeansmr
cpu: Intel(R) Xeon(R) CPU @ 2.60GHz
BenchmarkColdScan/text-parse-2         	       3	 141941870 ns/op	  18181891 file_bytes	    100000 points	47166162 B/op	  100079 allocs/op
BenchmarkReduceMerge/kway-heap-2       	       3	   2314039 ns/op	        64.00 runs
BenchmarkFig1CenterEvolution-2   	       1	 512000000 ns/op	        10.0 k_found	         4.00 iterations
PASS
ok  	gmeansmr	1.528s
`
	results, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}

	cold := results[0]
	if cold.Name != "BenchmarkColdScan/text-parse-2" || cold.Iterations != 3 {
		t.Errorf("first result = %+v", cold)
	}
	if cold.NsPerOp != 141941870 {
		t.Errorf("ns/op = %v", cold.NsPerOp)
	}
	if cold.AllocsPerOp == nil || *cold.AllocsPerOp != 100079 {
		t.Errorf("allocs/op = %v", cold.AllocsPerOp)
	}
	if cold.BytesPerOp == nil || *cold.BytesPerOp != 47166162 {
		t.Errorf("B/op = %v", cold.BytesPerOp)
	}
	if cold.Metrics["points"] != 100000 || cold.Metrics["file_bytes"] != 18181891 {
		t.Errorf("metrics = %v", cold.Metrics)
	}

	merge := results[1]
	if merge.Metrics["runs"] != 64 || merge.BytesPerOp != nil {
		t.Errorf("second result = %+v", merge)
	}

	fig1 := results[2]
	if fig1.Metrics["k_found"] != 10 || fig1.Metrics["iterations"] != 4 {
		t.Errorf("third result = %+v", fig1)
	}
}

// TestParseSubBenchmarkNames pins the handling of nested sub-benchmark
// names: every "/"-separated segment — including segments carrying
// key=value parameters and the trailing -P GOMAXPROCS suffix — must
// survive into the JSON record verbatim, because benchdiff pairs
// artifacts by exact name.
func TestParseSubBenchmarkNames(t *testing.T) {
	input := "BenchmarkNearestBatch/n=8192/d=16/k=32/batch-2   409	 1419973 ns/op\n" +
		"BenchmarkColumnarAssign/scalar-per-point-2   1	 122576474 ns/op	 3.000 iterations/op	 100000 points\n" +
		"BenchmarkTable1GMeans/k=16-2   1	 99 ns/op	 16.00 k_found\n"
	results, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"BenchmarkNearestBatch/n=8192/d=16/k=32/batch-2",
		"BenchmarkColumnarAssign/scalar-per-point-2",
		"BenchmarkTable1GMeans/k=16-2",
	}
	if len(results) != len(want) {
		t.Fatalf("parsed %d results, want %d", len(results), len(want))
	}
	for i, name := range want {
		if results[i].Name != name {
			t.Errorf("result %d name = %q, want %q", i, results[i].Name, name)
		}
	}
	if results[0].NsPerOp != 1419973 || results[0].Iterations != 409 {
		t.Errorf("deep sub-benchmark values = %+v", results[0])
	}
	if results[1].Metrics["iterations/op"] != 3 || results[1].Metrics["points"] != 100000 {
		t.Errorf("sub-benchmark custom metrics = %v", results[1].Metrics)
	}
	if results[2].Metrics["k_found"] != 16 {
		t.Errorf("parameterized sub-benchmark metrics = %v", results[2].Metrics)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX 3 12", // dangling value without unit
		"BenchmarkX notanint 1 ns/op",
		"BenchmarkX 3 oops ns/op",
	} {
		if _, err := parse(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("parse accepted %q", bad)
		}
	}
}

func TestParseEmptyInputYieldsEmptyList(t *testing.T) {
	results, err := parse(strings.NewReader("PASS\nok x 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if results == nil || len(results) != 0 {
		t.Errorf("results = %#v, want empty non-nil slice", results)
	}
}
