package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: gmeansmr
cpu: Intel(R) Xeon(R) CPU @ 2.60GHz
BenchmarkColdScan/text-parse-2         	       3	 141941870 ns/op	  18181891 file_bytes	    100000 points	47166162 B/op	  100079 allocs/op
BenchmarkReduceMerge/kway-heap-2       	       3	   2314039 ns/op	        64.00 runs
BenchmarkFig1CenterEvolution-2   	       1	 512000000 ns/op	        10.0 k_found	         4.00 iterations
PASS
ok  	gmeansmr	1.528s
`
	results, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}

	cold := results[0]
	if cold.Name != "BenchmarkColdScan/text-parse-2" || cold.Iterations != 3 {
		t.Errorf("first result = %+v", cold)
	}
	if cold.NsPerOp != 141941870 {
		t.Errorf("ns/op = %v", cold.NsPerOp)
	}
	if cold.AllocsPerOp == nil || *cold.AllocsPerOp != 100079 {
		t.Errorf("allocs/op = %v", cold.AllocsPerOp)
	}
	if cold.BytesPerOp == nil || *cold.BytesPerOp != 47166162 {
		t.Errorf("B/op = %v", cold.BytesPerOp)
	}
	if cold.Metrics["points"] != 100000 || cold.Metrics["file_bytes"] != 18181891 {
		t.Errorf("metrics = %v", cold.Metrics)
	}

	merge := results[1]
	if merge.Metrics["runs"] != 64 || merge.BytesPerOp != nil {
		t.Errorf("second result = %+v", merge)
	}

	fig1 := results[2]
	if fig1.Metrics["k_found"] != 10 || fig1.Metrics["iterations"] != 4 {
		t.Errorf("third result = %+v", fig1)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX 3 12", // dangling value without unit
		"BenchmarkX notanint 1 ns/op",
		"BenchmarkX 3 oops ns/op",
	} {
		if _, err := parse(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("parse accepted %q", bad)
		}
	}
}

func TestParseEmptyInputYieldsEmptyList(t *testing.T) {
	results, err := parse(strings.NewReader("PASS\nok x 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if results == nil || len(results) != 0 {
		t.Errorf("results = %#v, want empty non-nil slice", results)
	}
}
