// Command serve runs the cluster-assignment server: it obtains a model —
// by loading a snapshot, training on a text dataset, or training on a
// synthetic mixture — and serves nearest-center queries over HTTP.
//
// Load a snapshot and serve:
//
//	serve -model model.gmm -addr :8080
//
// Train on a dataset file (CSV/TSV or space-separated, one point per
// line; dimensionality is inferred), save the snapshot, serve:
//
//	serve -data points.txt -save model.gmm -addr :8080
//	serve -data points.txt -timeout 5m -save model.gmm
//
// Train on a synthetic mixture and serve (demo mode):
//
//	serve -train -k 16 -dim 10 -n 20000 -save model.gmm
//
// While running, overwrite the snapshot with a newer model and POST
// /v1/model/reload to hot-swap it with zero downtime:
//
//	curl -XPOST localhost:8080/v1/model/reload
//	curl -XPOST localhost:8080/v1/assign -d '{"point":[1.5,2.5]}'
//
// Under high concurrent singleton load, -coalesce 200us gathers the
// /v1/assign requests that arrive within each window into one columnar
// kernel pass (see the serving notes in ARCHITECTURE.md):
//
//	serve -model model.gmm -coalesce 200us
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	gmeansmr "gmeansmr"
	"gmeansmr/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")

	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		modelPath = flag.String("model", "", "load this model snapshot and serve it")
		dataPath  = flag.String("data", "", "train on this text dataset (CSV/TSV or space-separated, one point per line)")
		dim       = flag.Int("dim", 0, "synthetic mixture dimensionality (-data infers it from the file)")
		train     = flag.Bool("train", false, "train on a synthetic mixture")
		k         = flag.Int("k", 8, "synthetic mixture: true cluster count")
		n         = flag.Int("n", 20_000, "synthetic mixture: point count")
		sep       = flag.Float64("sep", 10, "synthetic mixture: minimum center separation")
		seed      = flag.Int64("seed", 1, "random seed for training")
		alpha     = flag.Float64("alpha", 0, "Anderson-Darling significance level (0 = paper default)")
		maxK      = flag.Int("maxk", 0, "stop splitting at this many centers (0 = unlimited)")
		savePath  = flag.String("save", "", "write the trained model snapshot here")
		timeout   = flag.Duration("timeout", 0, "abort training after this long (0 = no limit)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address (e.g. :6060)")
		coalesce  = flag.Duration("coalesce", 0, "coalesce concurrent /v1/assign requests into micro-batches over this window (e.g. 200us; 0 = off)")
		coalMax   = flag.Int("coalesce-max", 0, "points per coalesced micro-batch before it flushes early (0 = default)")
	)
	flag.Parse()

	m, reloadPath, err := obtainModel(*modelPath, *dataPath, *dim, *train,
		*k, *n, *sep, *seed, *alpha, *maxK, *savePath, *timeout)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("model ready: k=%d dim=%d (algorithm=%q iterations=%d)",
		m.K, m.Dim, m.Meta.Algorithm, m.Meta.Iterations)

	opts := gmeansmr.ServerOptions{
		CoalesceWindow:   *coalesce,
		CoalesceMaxBatch: *coalMax,
	}
	if *coalesce > 0 {
		log.Printf("coalescing /v1/assign over %v windows", *coalesce)
	}
	if reloadPath != "" {
		opts.Loader = func() (*gmeansmr.Model, error) { return loadSnapshot(reloadPath) }
		log.Printf("hot reload enabled from %s (POST /v1/model/reload)", reloadPath)
	}
	srv, err := gmeansmr.NewServer(m, opts)
	if err != nil {
		log.Fatal(err)
	}
	if *debugAddr != "" {
		// The debug listener exposes the server's own metrics registry
		// (assign latencies, in-flight gauge, swap counter) plus pprof,
		// kept off the serving address so it can stay firewalled.
		go func() {
			log.Printf("debug endpoints on %s (/metrics, /debug/pprof/)", *debugAddr)
			log.Fatal(http.ListenAndServe(*debugAddr, obs.DebugMux(srv.Metrics())))
		}()
	}
	log.Printf("listening on %s", *addr)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	log.Fatal(hs.ListenAndServe())
}

// obtainModel resolves the three model sources in precedence order and
// returns the model plus the snapshot path reloads should re-read.
func obtainModel(modelPath, dataPath string, dim int, train bool,
	k, n int, sep float64, seed int64, alpha float64, maxK int,
	savePath string, timeout time.Duration) (*gmeansmr.Model, string, error) {

	switch {
	case modelPath != "":
		m, err := loadSnapshot(modelPath)
		return m, modelPath, err

	case dataPath != "":
		// Materialize applies the run's validation (consistent dims, no
		// NaN/±Inf) and the points are needed afterwards to build the
		// serving model's per-cluster statistics.
		points, err := gmeansmr.Materialize(gmeansmr.FromFile(dataPath))
		if err != nil {
			return nil, "", fmt.Errorf("%s: %w", dataPath, err)
		}
		m, err := trainModel(points, seed, alpha, maxK, savePath, timeout)
		return m, savePath, err

	case train:
		if dim == 0 {
			dim = 2
		}
		ds, err := gmeansmr.GenerateDataset(gmeansmr.DatasetSpec{
			K: k, Dim: dim, N: n, MinSeparation: sep, Seed: seed,
		})
		if err != nil {
			return nil, "", err
		}
		m, err := trainModel(ds.Points, seed, alpha, maxK, savePath, timeout)
		return m, savePath, err

	default:
		return nil, "", fmt.Errorf("need a model source: -model, -data or -train (see -h)")
	}
}

func trainModel(points []gmeansmr.Point, seed int64, alpha float64, maxK int,
	savePath string, timeout time.Duration) (*gmeansmr.Model, error) {

	opts := []gmeansmr.Option{gmeansmr.WithSeed(seed)}
	if alpha > 0 {
		opts = append(opts, gmeansmr.WithAlpha(alpha))
	}
	if maxK > 0 {
		opts = append(opts, gmeansmr.WithMaxK(maxK))
	}
	c, err := gmeansmr.New(opts...)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	log.Printf("training on %d points...", len(points))
	res, err := c.Run(ctx, gmeansmr.FromPoints(points))
	if err != nil {
		return nil, err
	}
	log.Printf("trained: k=%d in %d iterations", res.K, res.Iterations)
	m, err := gmeansmr.BuildModel(res, points)
	if err != nil {
		return nil, err
	}
	if savePath != "" {
		if err := saveSnapshot(m, savePath); err != nil {
			return nil, err
		}
		log.Printf("snapshot written to %s", savePath)
	}
	return m, nil
}

func loadSnapshot(path string) (*gmeansmr.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return gmeansmr.LoadModel(bufio.NewReader(f))
}

func saveSnapshot(m *gmeansmr.Model, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := gmeansmr.SaveModel(m, w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
