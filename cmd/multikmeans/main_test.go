package main

import (
	"testing"

	"gmeansmr/internal/criteria"
	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
	"gmeansmr/internal/lloyd"
)

// buildCandidates materializes a 3-cluster dataset into a DFS and returns
// sweep clusterings for k=1..6.
func buildCandidates(t *testing.T) (*dfs.FS, []criteria.Clustering) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{K: 3, Dim: 2, N: 600, MinSeparation: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fs := dfs.New(0)
	ds.WriteToDFS(fs, "/data/points.txt")
	var cs []criteria.Clustering
	for k := 1; k <= 6; k++ {
		res, err := lloyd.BestOf(ds.Points, lloyd.Config{K: k, Seeding: lloyd.SeedPlusPlus, Seed: int64(k)}, 3)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, criteria.FromResult(res))
	}
	return fs, cs
}

func TestSelectKCriteria(t *testing.T) {
	fs, cs := buildCandidates(t)
	for _, criterion := range []string{"elbow", "jump", "silhouette", "bic"} {
		// Work on a copy: selectK mutates assignments.
		cp := make([]criteria.Clustering, len(cs))
		copy(cp, cs)
		k, err := selectK(criterion, fs, cp, 1)
		if err != nil {
			t.Fatalf("%s: %v", criterion, err)
		}
		if k != 3 {
			t.Errorf("%s selected k=%d, want 3", criterion, k)
		}
	}
}

func TestSelectKUnknownCriterion(t *testing.T) {
	fs, cs := buildCandidates(t)
	if _, err := selectK("nope", fs, cs, 1); err == nil {
		t.Error("unknown criterion accepted")
	}
}
