// Command multikmeans runs the paper's baseline: multi-k-means, which
// maintains center sets for every candidate k in one chained MapReduce
// pipeline, then scores each k and picks the best by a selectable
// criterion (elbow, jump, or BIC over the per-k WCSS curve).
//
// Usage:
//
//	datagen -k 10 -dim 2 -n 10000 -sep 15 -o data.txt
//	multikmeans -dim 2 -kmax 20 -criterion elbow data.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gmeansmr/internal/criteria"
	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
	"gmeansmr/internal/kmeansmr"
	"gmeansmr/internal/lloyd"
	"gmeansmr/internal/mr"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("multikmeans: ")

	var (
		dim       = flag.Int("dim", 0, "dimensionality of the points (required)")
		kmin      = flag.Int("kmin", 1, "smallest candidate k")
		kmax      = flag.Int("kmax", 16, "largest candidate k")
		kstep     = flag.Int("kstep", 1, "candidate step")
		iters     = flag.Int("iters", 10, "k-means iterations")
		nodes     = flag.Int("nodes", 4, "simulated cluster nodes")
		seed      = flag.Int64("seed", 1, "random seed")
		split     = flag.Int("split", 1<<20, "simulated DFS split size in bytes")
		criterion = flag.String("criterion", "elbow", "k-selection criterion: elbow, jump, silhouette, bic")
	)
	flag.Parse()
	if flag.NArg() != 1 || *dim <= 0 {
		fmt.Fprintln(os.Stderr, "usage: multikmeans -dim D [flags] <dataset.txt>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	fs := dfs.New(*split)
	if err := fs.ImportLocal(flag.Arg(0), "/data/points.txt"); err != nil {
		log.Fatal(err)
	}
	env := kmeansmr.Env{
		FS: fs, Cluster: mr.DefaultCluster().WithNodes(*nodes),
		Input: "/data/points.txt", Dim: *dim,
	}
	cfg := kmeansmr.MultiConfig{
		Env: env, KMin: *kmin, KMax: *kmax, KStep: *kstep,
		Iterations: *iters, Seed: *seed,
	}
	res, err := kmeansmr.RunMulti(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := kmeansmr.Evaluate(cfg, res); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %-14s %-12s\n", "k", "WCSS", "avg distance")
	var cs []criteria.Clustering
	for k := *kmin; k <= *kmax; k += *kstep {
		fmt.Printf("%-6d %-14.3f %-12.4f\n", k, res.WCSSByK[k], res.AvgDistByK[k])
		cs = append(cs, criteria.Clustering{K: k, Centers: res.CentersByK[k], WCSS: res.WCSSByK[k]})
	}

	// Criteria needing point-level access (silhouette) load the dataset.
	chosen, err := selectK(*criterion, fs, cs, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected k = %d (criterion: %s)\n", chosen, *criterion)
	fmt.Printf("avg iteration time = %s over %d iterations\n",
		res.AvgIterationTime().Round(1e6), len(res.IterationTimes))
	fmt.Printf("distances = %d, dataset reads = %d\n",
		res.Counters.Get(kmeansmr.CounterDistances), fs.DatasetReads())
}

func selectK(criterion string, fs *dfs.FS, cs []criteria.Clustering, seed int64) (int, error) {
	switch criterion {
	case "elbow":
		return criteria.ElbowK(cs)
	case "jump", "silhouette", "bic":
		points, err := dataset.LoadPoints(fs, "/data/points.txt")
		if err != nil {
			return 0, err
		}
		// Criteria needing assignments compute them against each center set.
		for i := range cs {
			cs[i].Assignment = lloyd.Assign(points, cs[i].Centers)
		}
		switch criterion {
		case "jump":
			return criteria.JumpK(points, cs)
		case "silhouette":
			return criteria.SilhouetteK(points, cs, 2000, seed)
		default:
			return criteria.BICK(points, cs)
		}
	default:
		return 0, fmt.Errorf("unknown criterion %q", criterion)
	}
}
