// Command multikmeans runs the paper's baseline: multi-k-means, which
// maintains center sets for every candidate k in one chained MapReduce
// pipeline, then scores each k and picks the best by a selectable
// criterion (elbow, jump, silhouette, or BIC over the per-k WCSS curve).
//
// Usage:
//
//	datagen -k 10 -dim 2 -n 10000 -sep 15 -o data.txt
//	multikmeans -kmax 20 -criterion elbow data.txt
//	multikmeans -kmax 20 -timeout 1m data.txt   # bound the pipeline
//
// Execution backend: -backend=local (default) runs MapReduce tasks on
// in-process goroutine pools; -backend=proc spawns one worker process per
// simulated node and schedules tasks over HTTP (internal/mrdist). Results
// are bit-identical across backends:
//
//	multikmeans -backend proc -kmax 20 data.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	gmeansmr "gmeansmr"
	"gmeansmr/internal/mrdist"
)

func main() {
	// When the proc backend spawned this process as a worker, serve tasks
	// instead of parsing flags; never returns in that case.
	mrdist.MaybeWorker()
	log.SetFlags(0)
	log.SetPrefix("multikmeans: ")

	var (
		backend   = flag.String("backend", "local", "MR execution backend: local (in-process) or proc (worker subprocesses)")
		fallback  = flag.Bool("fallback", false, "degrade to the local backend if the proc backend is unavailable")
		kmin      = flag.Int("kmin", 1, "smallest candidate k")
		kmax      = flag.Int("kmax", 16, "largest candidate k")
		kstep     = flag.Int("kstep", 1, "candidate step")
		iters     = flag.Int("iters", 10, "k-means iterations")
		nodes     = flag.Int("nodes", 4, "simulated cluster nodes")
		seed      = flag.Int64("seed", 1, "random seed")
		split     = flag.Int("split", 1<<20, "simulated DFS split size in bytes (0 = auto)")
		criterion = flag.String("criterion", "elbow", "k-selection criterion: elbow, jump, silhouette, bic")
		timeout   = flag.Duration("timeout", 0, "abort the pipeline after this long (0 = no limit)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: multikmeans [flags] <dataset.txt>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var iterTimes []time.Duration
	copts := []gmeansmr.Option{
		gmeansmr.WithAlgorithm(gmeansmr.AlgorithmMultiK),
		gmeansmr.WithBackend(gmeansmr.Backend(*backend)),
		gmeansmr.WithKRange(*kmin, *kmax, *kstep),
		gmeansmr.WithMultiKIterations(*iters),
		gmeansmr.WithCriterion(gmeansmr.Criterion(*criterion)),
		gmeansmr.WithNodes(*nodes),
		gmeansmr.WithSeed(*seed),
		gmeansmr.WithSplitSize(*split),
		gmeansmr.WithProgress(func(p gmeansmr.Progress) {
			iterTimes = append(iterTimes, p.Duration)
		}),
	}
	if *fallback {
		copts = append(copts, gmeansmr.WithBackendFallback())
	}
	c, err := gmeansmr.New(copts...)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, err := c.Run(ctx, gmeansmr.FromFile(flag.Arg(0)))
	if err != nil {
		log.Fatal(err)
	}

	ks := make([]int, 0, len(res.WCSSByK))
	for k := range res.WCSSByK {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	fmt.Printf("%-6s %-14s\n", "k", "WCSS")
	for _, k := range ks {
		fmt.Printf("%-6d %-14.3f\n", k, res.WCSSByK[k])
	}

	fmt.Printf("\nselected k = %d (criterion: %s)\n", res.K, *criterion)
	if len(iterTimes) > 0 {
		var total time.Duration
		for _, d := range iterTimes {
			total += d
		}
		fmt.Printf("avg iteration time = %s over %d iterations\n",
			(total / time.Duration(len(iterTimes))).Round(time.Millisecond), len(iterTimes))
	}
	fmt.Printf("distances = %d, dataset reads = %d\n",
		res.Counters[gmeansmr.CounterDistances],
		res.Counters[gmeansmr.CounterDatasetReads])
}
