// Command stress drives the distributed backend through a chaos matrix:
// scripted fault scenarios (internal/faultinject) × MapReduce job kinds,
// asserting invariants rather than golden outputs. For every cell the
// run must either complete with results bit-identical to the local
// backend or fail with a typed error inside the retry policy's budget —
// never hang, never leak goroutines, and keep retry/breaker metrics
// within the policy's bounds.
//
// Usage:
//
//	stress                     # default matrix: all scenarios × kfnc,pca
//	stress -kinds all          # add the test-strategy and multik kinds
//	stress -scenarios kill,hang -kinds kfnc
//	stress -seed 42 -v         # reproduce a failing schedule
//
// On failure the harness prints the scenario JSON and seed (and the
// worker-log directory when -logdir or $MRDIST_LOG_DIR is set), so a CI
// failure is reproducible locally with the same flags.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"gmeansmr/internal/core"
	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
	"gmeansmr/internal/faultinject"
	"gmeansmr/internal/kmeansmr"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/mrdist"
	"gmeansmr/internal/retry"
	"gmeansmr/internal/vec"
	"gmeansmr/internal/zoo"
)

func main() {
	// When the proc backend spawned this process as a worker, serve tasks
	// instead of running the matrix; never returns in that case.
	mrdist.MaybeWorker()
	log.SetFlags(0)
	log.SetPrefix("stress: ")

	var (
		kindsFlag     = flag.String("kinds", "kfnc,pca", "job kinds to sweep: comma list of kfnc,test,pca,multik, or all")
		scenariosFlag = flag.String("scenarios", "all", "fault scenarios to sweep: comma list (see -list), or all")
		list          = flag.Bool("list", false, "print the scenario and kind names and exit")
		seed          = flag.Int64("seed", 1, "seed for dataset, schedules and fault draws")
		nodes         = flag.Int("nodes", 3, "simulated cluster nodes (worker processes per cell)")
		points        = flag.Int("n", 2000, "dataset points")
		logDir        = flag.String("logdir", os.Getenv("MRDIST_LOG_DIR"), "worker-log directory (kept for reproduction)")
		verbose       = flag.Bool("v", false, "log per-cell metrics")
		zooMode       = flag.Bool("zoo", false, "run the adversarial-data zoo matrix and concurrency soaks instead of the chaos matrix")
		cellsFlag     = flag.String("cells", "all", "with -zoo: zoo cells to sweep (comma list, all, or none)")
		algosFlag     = flag.String("algos", "all", "with -zoo: algorithms to sweep (comma list or all)")
		soaksFlag     = flag.String("soaks", "all", "with -zoo: concurrency soaks to run (comma list of reload,cancel,fsrace, all, or none)")
	)
	flag.Parse()

	scenarios := scenarioSet(*seed)
	kinds := kindSet()
	if *list {
		for _, s := range scenarios {
			fmt.Println("scenario:", s.name)
		}
		for _, k := range kinds {
			fmt.Println("kind:", k.name)
		}
		for _, c := range zoo.Catalog() {
			fmt.Println("cell:", c.Name)
		}
		for _, a := range zooAlgos() {
			fmt.Println("algo:", a.name)
		}
		for _, s := range zooSoaks() {
			fmt.Println("soak:", s.name)
		}
		return
	}
	if *zooMode {
		runZoo(*cellsFlag, *algosFlag, *soaksFlag, *seed, *verbose)
		return
	}
	selScen, err := pick(scenarios, *scenariosFlag, func(s scenario) string { return s.name })
	if err != nil {
		log.Fatal(err)
	}
	selKinds, err := pick(kinds, *kindsFlag, func(k jobKind) string { return k.name })
	if err != nil {
		log.Fatal(err)
	}

	spec := dataset.Spec{K: 4, Dim: 3, N: *points, MinSeparation: 16, Seed: *seed}

	// One local-backend reference digest per kind: the equivalence target
	// every fault-scenario run must hit bit-for-bit.
	ref := make(map[string]string, len(selKinds))
	for _, k := range selKinds {
		digest, err := runKindLocal(k, spec, *nodes)
		if err != nil {
			log.Fatalf("local reference for %s failed: %v", k.name, err)
		}
		ref[k.name] = digest
	}

	failures := 0
	for _, sc := range selScen {
		for _, k := range selKinds {
			start := time.Now()
			cell := fmt.Sprintf("%s × %s", k.name, sc.name)
			if err := runCell(sc, k, spec, *nodes, *seed, *logDir, ref[k.name], *verbose); err != nil {
				failures++
				enc, _ := sc.master.Marshal()
				wenc, _ := sc.worker.Marshal()
				log.Printf("FAIL %s (%.1fs): %v", cell, time.Since(start).Seconds(), err)
				log.Printf("  reproduce: stress -scenarios %s -kinds %s -seed %d", sc.name, k.name, *seed)
				log.Printf("  master scenario: %s", enc)
				log.Printf("  worker scenario: %s", wenc)
				if *logDir != "" {
					log.Printf("  worker logs under: %s", *logDir)
				}
				continue
			}
			fmt.Printf("PASS %s (%.1fs)\n", cell, time.Since(start).Seconds())
		}
	}
	if failures > 0 {
		log.Fatalf("%d of %d cells failed", failures, len(selScen)*len(selKinds))
	}
	fmt.Printf("all %d cells passed\n", len(selScen)*len(selKinds))
}

// pick filters items by a comma list of names ("all" selects everything).
func pick[T any](items []T, sel string, name func(T) string) ([]T, error) {
	if sel == "" || sel == "all" {
		return items, nil
	}
	byName := make(map[string]T, len(items))
	for _, it := range items {
		byName[name(it)] = it
	}
	var out []T
	for _, want := range strings.Split(sel, ",") {
		it, ok := byName[strings.TrimSpace(want)]
		if !ok {
			return nil, fmt.Errorf("unknown name %q", want)
		}
		out = append(out, it)
	}
	return out, nil
}

// ---- scenarios ---------------------------------------------------------

// scenario is one chaos cell's fault script: master-side rules ride the
// runner's HTTP transport, worker-side rules travel by environment to
// worker index 1 (so the fleet is asymmetric, as real failures are).
type scenario struct {
	name   string
	master faultinject.Scenario
	worker faultinject.Scenario
	// expectRetries: a successful run must have retried at least once
	// (the faults cannot have been absorbed for free).
	expectRetries bool
	// expectError: the run must fail (with a typed error); its digest is
	// not checked.
	expectError bool
	// expectDeaths: a successful run must have lost (and recovered from)
	// at least one worker.
	expectDeaths bool
}

func scenarioSet(seed int64) []scenario {
	return []scenario{
		{name: "none"},
		{
			name: "refuse",
			master: faultinject.Scenario{
				Name: "refuse", Seed: seed,
				Rules: []faultinject.Rule{{Match: "/v1/task", Kind: faultinject.KindRefuse, Count: 2}},
			},
			expectRetries: true,
		},
		{
			name: "latency",
			master: faultinject.Scenario{
				Name: "latency", Seed: seed,
				Rules: []faultinject.Rule{{Kind: faultinject.KindLatency, Prob: 0.3, Latency: 30}},
			},
		},
		{
			name: "truncate",
			master: faultinject.Scenario{
				Name: "truncate", Seed: seed,
				Rules: []faultinject.Rule{{Match: "/v1/task", Kind: faultinject.KindTruncate, Count: 2}},
			},
			expectRetries: true,
		},
		{
			name: "corrupt",
			worker: faultinject.Scenario{
				Name: "corrupt", Seed: seed,
				Rules: []faultinject.Rule{{Match: "/v1/task", Kind: faultinject.KindCorrupt, Count: 2}},
			},
			expectRetries: true,
		},
		{
			name: "http500-burst",
			worker: faultinject.Scenario{
				Name: "http500-burst", Seed: seed,
				Rules: []faultinject.Rule{{Match: "/v1/task", Kind: faultinject.KindHTTP500, Count: 3}},
			},
			expectRetries: true,
		},
		{
			// Pings to worker 1 hang while its tasks still answer (slowly,
			// so the job outlives the miss window): the heartbeat must
			// declare it dead mid-run and the wave must recover its map
			// outputs from replicas.
			name: "heartbeat-blackout",
			worker: faultinject.Scenario{
				Name: "heartbeat-blackout", Seed: seed,
				Rules: []faultinject.Rule{
					{Match: "/v1/ping", Kind: faultinject.KindHang, Count: 50, Latency: 1000},
					{Match: "/v1/task", Kind: faultinject.KindLatency, Latency: 50},
				},
			},
			expectDeaths: true,
		},
		{
			name: "hang",
			worker: faultinject.Scenario{
				Name: "hang", Seed: seed,
				Rules: []faultinject.Rule{{Match: "/v1/task/map", Kind: faultinject.KindHang, Count: 2, Latency: 1000}},
			},
			expectRetries: true,
		},
		{
			name: "kill",
			worker: faultinject.Scenario{
				Name: "kill", Seed: seed,
				Rules: []faultinject.Rule{{Match: "/v1/task", Kind: faultinject.KindKill, Skip: 1, Count: 1}},
			},
		},
		{
			// Every master-side request refused, forever: the typed-error
			// path. Either the retry budget exhausts or the heartbeat
			// declares the (unreachable) fleet dead — both are bounded.
			name: "blackhole",
			master: faultinject.Scenario{
				Name: "blackhole", Seed: seed,
				Rules: []faultinject.Rule{{Kind: faultinject.KindRefuse}},
			},
			expectError: true,
		},
	}
}

// ---- job kinds ---------------------------------------------------------

// jobKind runs one MapReduce workload to a digest that must be
// bit-identical across backends.
type jobKind struct {
	name string
	run  func(env kmeansmr.Env, fs *dfs.FS) (string, error)
}

func kindSet() []jobKind {
	gmeans := func(cfg core.Config) func(kmeansmr.Env, *dfs.FS) (string, error) {
		return func(env kmeansmr.Env, fs *dfs.FS) (string, error) {
			cfg.Env = env
			res, err := core.Run(cfg)
			if err != nil {
				return "", err
			}
			var b strings.Builder
			fmt.Fprintf(&b, "k=%d pre=%d iters=%d\n", res.K, res.KBeforeMerge, res.Iterations)
			writeCenters(&b, res.Centers)
			writeCounters(&b, res.Counters.Snapshot())
			fmt.Fprintf(&b, "reads=%d\n", fs.DatasetReads())
			return b.String(), nil
		}
	}
	return []jobKind{
		{name: "kfnc", run: gmeans(core.Config{Seed: 7, ForceStrategy: core.StrategyFewClusters})},
		{name: "test", run: gmeans(core.Config{Seed: 7, ForceStrategy: core.StrategyReducer})},
		{name: "pca", run: gmeans(core.Config{Seed: 7, Candidates: core.CandidatesPCA})},
		{name: "multik", run: func(env kmeansmr.Env, fs *dfs.FS) (string, error) {
			cfg := kmeansmr.MultiConfig{Env: env, KMin: 1, KMax: 4, Iterations: 3, Seed: 5}
			res, err := kmeansmr.RunMulti(cfg)
			if err != nil {
				return "", err
			}
			if err := kmeansmr.Evaluate(cfg, res); err != nil {
				return "", err
			}
			var b strings.Builder
			ks := make([]int, 0, len(res.CentersByK))
			for k := range res.CentersByK {
				ks = append(ks, k)
			}
			sort.Ints(ks)
			for _, k := range ks {
				fmt.Fprintf(&b, "k=%d wcss=%x\n", k, math.Float64bits(res.WCSSByK[k]))
				writeCenters(&b, res.CentersByK[k])
			}
			writeCounters(&b, res.Counters.Snapshot())
			fmt.Fprintf(&b, "reads=%d\n", fs.DatasetReads())
			return b.String(), nil
		}},
	}
}

func writeCenters(b *strings.Builder, centers []vec.Vector) {
	for _, c := range centers {
		for _, v := range c {
			b.WriteString(strconv.FormatUint(math.Float64bits(v), 16))
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
}

func writeCounters(b *strings.Builder, snap map[string]int64) {
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s=%d\n", k, snap[k])
	}
}

// stageEnv writes a fresh DFS per run so neither backend sees the
// other's read accounting.
func stageEnv(spec dataset.Spec, nodes int, runner mr.TaskRunner) (kmeansmr.Env, *dfs.FS, error) {
	ds, err := dataset.Generate(spec)
	if err != nil {
		return kmeansmr.Env{}, nil, err
	}
	fs := dfs.New(16 << 10)
	ds.WriteToDFS(fs, "/data/points.txt")
	cluster := mr.Cluster{
		Nodes:              nodes,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 2,
		TaskHeapBytes:      64 << 20,
		MaxHeapUsage:       0.66,
	}
	return kmeansmr.Env{
		FS:      fs,
		Cluster: cluster,
		Input:   "/data/points.txt",
		Dim:     spec.Dim,
		Runner:  runner,
	}, fs, nil
}

func runKindLocal(k jobKind, spec dataset.Spec, nodes int) (string, error) {
	env, fs, err := stageEnv(spec, nodes, nil)
	if err != nil {
		return "", err
	}
	return k.run(env, fs)
}

// ---- the chaos cell ----------------------------------------------------

// stressPolicy is the retry policy under test: small backoffs so the
// matrix stays fast, a short per-try deadline so hangs cost one attempt,
// and a one-minute elapsed budget bounding every cell.
func stressPolicy() retry.Policy {
	return retry.Policy{
		MaxAttempts:      4,
		PerTryTimeout:    2 * time.Second,
		BaseBackoff:      10 * time.Millisecond,
		MaxBackoff:       200 * time.Millisecond,
		MaxElapsed:       time.Minute,
		BreakerThreshold: 3,
		BreakerCooldown:  300 * time.Millisecond,
	}
}

func runCell(sc scenario, k jobKind, spec dataset.Spec, nodes int, seed int64, logDir, want string, verbose bool) error {
	baseline := runtime.NumGoroutine()
	pol := stressPolicy()

	masterInj := faultinject.New(sc.master)
	var workerEnv func(int) []string
	if len(sc.worker.Rules) > 0 {
		enc, err := sc.worker.Marshal()
		if err != nil {
			return err
		}
		workerEnv = func(i int) []string {
			if i == 1 { // one faulty node; the fleet stays asymmetric
				return []string{faultinject.EnvScenario + "=" + enc}
			}
			return nil
		}
	}
	runner := mrdist.NewProcRunner(mrdist.Options{
		Retry:             pol,
		Seed:              seed,
		Transport:         masterInj.Transport(nil),
		WorkerEnv:         workerEnv,
		LogDir:            logDir,
		HeartbeatInterval: 100 * time.Millisecond,
		SpeculateAfter:    2 * time.Second,
	})

	// The hang watchdog: a cell must resolve inside the policy's elapsed
	// budget (per wave) plus slack for healthy work — never block the
	// whole matrix.
	type outcome struct {
		digest string
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		env, fs, err := stageEnv(spec, nodes, runner)
		if err != nil {
			done <- outcome{err: err}
			return
		}
		digest, err := k.run(env, fs)
		done <- outcome{digest: digest, err: err}
	}()
	var out outcome
	select {
	case out = <-done:
	case <-time.After(3*pol.MaxElapsed + 30*time.Second):
		runner.Close()
		return fmt.Errorf("HANG: cell did not resolve within the policy budget")
	}

	reg := runner.Registry()
	dispatched := reg.Counter(mrdist.MetricTasksDispatched).Value()
	completed := reg.Counter(mrdist.MetricTasksCompleted).Value()
	retries := reg.Counter(mrdist.MetricTaskRetries).Value()
	exhausted := reg.Counter(mrdist.MetricRetryExhausted).Value()
	deaths := reg.Counter(mrdist.MetricWorkerDeaths).Value()
	opens := reg.Counter(mrdist.MetricBreakerOpens).Value()
	runner.Close()

	if verbose {
		log.Printf("  %s × %s: dispatched=%d completed=%d retries=%d exhausted=%d deaths=%d breaker-opens=%d master-injections=%d err=%v",
			k.name, sc.name, dispatched, completed, retries, exhausted, deaths, opens, masterInj.Injections(), out.err)
	}

	// Invariant 1: completion is bit-identical, or the error is typed.
	switch {
	case sc.expectError && out.err == nil:
		return fmt.Errorf("expected a typed error, run succeeded")
	case out.err != nil && !typedError(out.err):
		return fmt.Errorf("untyped error escaped the policy layer: %v", out.err)
	case out.err == nil && out.digest != want:
		return fmt.Errorf("result diverged from the local backend:\nproc:\n%s\nlocal:\n%s", out.digest, want)
	}

	// Invariant 2: retry accounting stays inside the policy's bounds.
	if completed > dispatched {
		return fmt.Errorf("completed %d > dispatched %d", completed, dispatched)
	}
	if maxRetries := int64(pol.MaxAttempts-1) * dispatched; retries > maxRetries {
		return fmt.Errorf("retries %d exceed the policy bound %d", retries, maxRetries)
	}
	if sc.name == "none" && (retries != 0 || deaths != 0 || exhausted != 0) {
		return fmt.Errorf("fault-free run recorded retries=%d deaths=%d exhausted=%d", retries, deaths, exhausted)
	}
	if sc.expectRetries && out.err == nil && retries == 0 {
		return fmt.Errorf("faults injected but no retry recorded")
	}
	if sc.expectDeaths && out.err == nil && deaths == 0 {
		return fmt.Errorf("blackout injected but no worker death recorded")
	}
	if out.err == nil && exhausted != 0 {
		return fmt.Errorf("successful run recorded %d exhausted budgets", exhausted)
	}

	// Invariant 3: no goroutine outlives the cell.
	return checkGoroutines(baseline)
}

// typedError reports whether err is one of the failure types the policy
// layer is allowed to surface: a spent retry budget, an unavailable
// backend, a caller abort, or a deterministic task error.
func typedError(err error) bool {
	var te *mr.TaskError
	return errors.Is(err, retry.ErrExhausted) ||
		errors.Is(err, mrdist.ErrBackendUnavailable) ||
		errors.Is(err, retry.ErrAborted) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.As(err, &te)
}

// checkGoroutines waits for the fleet's goroutines to drain back to the
// cell's baseline (mirroring the facade's cancellation leak checks) and
// dumps stacks when they do not.
func checkGoroutines(baseline int) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		if tr, ok := http.DefaultTransport.(*http.Transport); ok {
			tr.CloseIdleConnections()
		}
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return nil
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			return fmt.Errorf("goroutine leak: %d now vs %d at cell start\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
