// The -zoo mode: sweep the adversarial dataset catalog (internal/zoo)
// across the k-discovery algorithms, asserting algorithm-agnostic
// invariants (internal/invariants) instead of golden outputs, then run the
// concurrency-abuse soaks (assign-under-reload, cancellation storm, racing
// FS mutation). A failing cell prints the dataset descriptor JSON and seed,
// so it reproduces locally with the same flags.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gmeansmr"
	"gmeansmr/internal/core"
	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
	"gmeansmr/internal/invariants"
	"gmeansmr/internal/kmeansmr"
	"gmeansmr/internal/model"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/serve"
	"gmeansmr/internal/vec"
	"gmeansmr/internal/zoo"
)

// zooMaxK is the k cap every zoo run is configured with — small enough
// that hostile data hitting the cap is cheap, large enough that every
// cell's nominal k fits.
const zooMaxK = 12

// zooCellTimeout bounds one matrix cell; the datasets are small, so a
// cell anywhere near this is a hang.
const zooCellTimeout = 2 * time.Minute

// zooAlgo is one column of the zoo matrix.
type zooAlgo struct {
	name string
	// skip returns a non-empty reason when the cell/algorithm combination
	// is undefined (not a failure).
	skip func(c zoo.Cell) string
	run  func(c zoo.Cell, seed int64) ([]invariants.Violation, error)
}

func runZoo(cellsSel, algosSel, soaksSel string, seed int64, verbose bool) {
	// "none" empties a dimension: -cells none -soaks reload runs one soak
	// on its own, the exact reproduce line a soak failure prints.
	var cells []zoo.Cell
	var algos []zooAlgo
	var soaks []zooSoak
	var err error
	if cellsSel != "none" {
		if cells, err = pick(zoo.Catalog(), cellsSel, func(c zoo.Cell) string { return c.Name }); err != nil {
			log.Fatal(err)
		}
		if algos, err = pick(zooAlgos(), algosSel, func(a zooAlgo) string { return a.name }); err != nil {
			log.Fatal(err)
		}
	}
	if soaksSel != "none" {
		if soaks, err = pick(zooSoaks(), soaksSel, func(s zooSoak) string { return s.name }); err != nil {
			log.Fatal(err)
		}
	}

	failures, ran := 0, 0
	for _, c := range cells {
		for _, a := range algos {
			cell := fmt.Sprintf("%s × %s", c.Name, a.name)
			if a.skip != nil {
				if reason := a.skip(c); reason != "" {
					if verbose {
						log.Printf("  skip %s: %s", cell, reason)
					}
					continue
				}
			}
			ran++
			start := time.Now()
			vs, err := a.run(c, seed)
			if err != nil {
				vs = append(vs, invariants.Violation{Invariant: "run", Detail: err.Error()})
			}
			if len(vs) > 0 {
				failures++
				log.Printf("FAIL %s (%.1fs):\n%s", cell, time.Since(start).Seconds(), invariants.Format(vs))
				log.Printf("  reproduce: stress -zoo -cells %s -algos %s -seed %d", c.Name, a.name, seed)
				log.Printf("  dataset: %s", c.Descriptor(seed))
				continue
			}
			fmt.Printf("PASS %s (%.1fs)\n", cell, time.Since(start).Seconds())
		}
	}

	for _, s := range soaks {
		ran++
		start := time.Now()
		if err := s.run(seed, verbose); err != nil {
			failures++
			log.Printf("FAIL soak %s (%.1fs): %v", s.name, time.Since(start).Seconds(), err)
			log.Printf("  reproduce: stress -zoo -cells none -soaks %s -seed %d", s.name, seed)
			continue
		}
		fmt.Printf("PASS soak %s (%.1fs)\n", s.name, time.Since(start).Seconds())
	}

	if failures > 0 {
		log.Fatalf("%d of %d zoo cells failed", failures, ran)
	}
	fmt.Printf("all %d zoo cells passed\n", ran)
}

// ---- the matrix columns ------------------------------------------------

func zooAlgos() []zooAlgo {
	return []zooAlgo{
		{name: "gmeans-mr", run: facadeRunner(gmeansmr.AlgorithmGMeansMR)},
		{name: "seq-gmeans", run: facadeRunner(gmeansmr.AlgorithmSeqGMeans)},
		{name: "xmeans", run: facadeRunner(gmeansmr.AlgorithmXMeans)},
		{
			name: "multik",
			// The elbow criterion needs three candidate k values and the
			// sweep is clamped to n, so n<3 has no defined answer.
			skip: func(c zoo.Cell) string {
				if c.N < 3 {
					return "multi-k needs at least 3 points for the elbow criterion"
				}
				return ""
			},
			run: facadeRunner(gmeansmr.AlgorithmMultiK),
		},
		{name: "gmeans-pca", run: runCorePCA},
		{name: "kmeans-rounds", run: runKMeansRounds},
	}
}

// facadeRunner checks a public-API run: k range, finite in-bounds centers,
// exactly-once assignment, non-negative counters.
func facadeRunner(algo gmeansmr.Algorithm) func(zoo.Cell, int64) ([]invariants.Violation, error) {
	return func(c zoo.Cell, seed int64) ([]invariants.Violation, error) {
		opts := []gmeansmr.Option{
			gmeansmr.WithAlgorithm(algo),
			gmeansmr.WithSeed(seed),
			gmeansmr.WithMaxK(zooMaxK),
		}
		if algo == gmeansmr.AlgorithmMultiK {
			kmax := 8
			if kmax > c.N {
				kmax = c.N
			}
			opts = append(opts, gmeansmr.WithKRange(1, kmax, 1))
		}
		cl, err := gmeansmr.New(opts...)
		if err != nil {
			return nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), zooCellTimeout)
		defer cancel()
		points := c.Points(seed)
		res, err := cl.Run(ctx, gmeansmr.FromPoints(points))
		if err != nil {
			return nil, err
		}

		var vs []invariants.Violation
		vs = append(vs, invariants.CheckKRange(res.K, zooMaxK, len(res.Centers))...)
		vs = append(vs, invariants.CheckCentersFinite(res.Centers)...)
		vs = append(vs, invariants.CheckCentersInBounds(points, res.Centers)...)
		switch algo {
		case gmeansmr.AlgorithmGMeansMR, gmeansmr.AlgorithmMultiK:
			// These paths compute the assignment as a final nearest-center
			// pass, so optimality is part of the contract.
			vs = append(vs, invariants.CheckAssignmentNearest(points, res.Centers, res.Assignment)...)
		default:
			vs = append(vs, invariants.CheckAssignment(len(points), res.K, res.Assignment)...)
		}
		vs = append(vs, invariants.CheckCountersNonNegative(res.Counters)...)
		return vs, nil
	}
}

// stageZoo writes a cell into a fresh DFS.
func stageZoo(c zoo.Cell, seed int64, disableColumnar bool) (kmeansmr.Env, *dfs.FS) {
	fs := dfs.New(16 << 10)
	w := fs.Writer("/zoo/points.txt")
	for _, p := range c.Points(seed) {
		w.WriteString(dataset.FormatPoint(p))
		w.WriteString("\n")
	}
	w.Close()
	cluster := mr.Cluster{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 2,
		TaskHeapBytes: 64 << 20, MaxHeapUsage: 0.66}
	return kmeansmr.Env{FS: fs, Cluster: cluster, Input: "/zoo/points.txt",
		Dim: c.Dim, DisableColumnar: disableColumnar}, fs
}

// runCorePCA drives the core engine with PCA candidate generation — the
// path most sensitive to degenerate geometry (collinear, d=1, point-mass
// clusters) — once per mapper layout, and asserts columnar-vs-row-major
// digest identity plus the DFS read-conservation law on top of the result
// invariants.
func runCorePCA(c zoo.Cell, seed int64) ([]invariants.Violation, error) {
	ctx, cancel := context.WithTimeout(context.Background(), zooCellTimeout)
	defer cancel()
	type outcome struct {
		res *core.Result
		vs  []invariants.Violation
	}
	run := func(disableColumnar bool) (outcome, error) {
		env, fs := stageZoo(c, seed, disableColumnar)
		res, err := core.RunContext(ctx, core.Config{
			Env: env, Seed: seed, MaxK: zooMaxK, Candidates: core.CandidatesPCA,
		})
		if err != nil {
			return outcome{}, err
		}
		size, err := fs.Size(env.Input)
		if err != nil {
			return outcome{}, err
		}
		vs := invariants.CheckReadConservation(fs.DatasetReads(), fs.BytesRead(), size)
		return outcome{res: res, vs: vs}, nil
	}
	col, err := run(false)
	if err != nil {
		return nil, err
	}
	row, err := run(true)
	if err != nil {
		return nil, err
	}

	points := c.Points(seed)
	vs := col.vs
	vs = append(vs, row.vs...)
	vs = append(vs, invariants.CheckKRange(col.res.K, zooMaxK, len(col.res.Centers))...)
	vs = append(vs, invariants.CheckCentersFinite(toPoints(col.res.Centers))...)
	vs = append(vs, invariants.CheckCentersInBounds(points, toPoints(col.res.Centers))...)
	a := invariants.Digest(toPoints(col.res.Centers), nil, nil)
	b := invariants.Digest(toPoints(row.res.Centers), nil, nil)
	if col.res.K != row.res.K || a != b {
		vs = append(vs, invariants.Violation{Invariant: "digest-columnar-vs-row",
			Detail: fmt.Sprintf("columnar k=%d digest=%s, row-major k=%d digest=%s", col.res.K, a, row.res.K, b)})
	}
	return vs, nil
}

// runKMeansRounds chains plain MR k-means iterations over the cell and
// asserts Lloyd's guarantee — WCSS never increases across rounds — plus
// per-round columnar-vs-row-major digest identity and exactly-once
// assignment at the MR level (cluster sizes summing to n).
func runKMeansRounds(c zoo.Cell, seed int64) ([]invariants.Violation, error) {
	const rounds = 6
	k := 3
	if k > c.N {
		k = c.N
	}
	points := c.Points(seed)

	iterateAll := func(disableColumnar bool) ([][][]float64, [][]int64, error) {
		env, _ := stageZoo(c, seed, disableColumnar)
		centers, err := kmeansmr.SampleUpTo(env, k, seed)
		if err != nil {
			return nil, nil, err
		}
		var trajectory [][][]float64
		var sizes [][]int64
		for r := 0; r < rounds; r++ {
			it, err := kmeansmr.Iterate(env, centers)
			if err != nil {
				return nil, nil, err
			}
			centers = it.Centers
			trajectory = append(trajectory, toPoints(it.Centers))
			sizes = append(sizes, it.Sizes)
		}
		return trajectory, sizes, nil
	}

	col, colSizes, err := iterateAll(false)
	if err != nil {
		return nil, err
	}
	row, _, err := iterateAll(true)
	if err != nil {
		return nil, err
	}

	vs := invariants.CheckWCSSDescent(points, col, 1e-9)
	for r := range col {
		if a, b := invariants.Digest(col[r], nil, nil), invariants.Digest(row[r], nil, nil); a != b {
			vs = append(vs, invariants.Violation{Invariant: "digest-columnar-vs-row",
				Detail: fmt.Sprintf("round %d: columnar digest %s != row-major %s", r, a, b)})
		}
		total := int64(0)
		for _, s := range colSizes[r] {
			total += s
		}
		if total != int64(c.N) {
			vs = append(vs, invariants.Violation{Invariant: "assignment",
				Detail: fmt.Sprintf("round %d: cluster sizes sum to %d, dataset has %d points", r, total, c.N)})
		}
		vs = append(vs, invariants.CheckCentersFinite(col[r])...)
	}
	return vs, nil
}

func toPoints(centers []vec.Vector) [][]float64 {
	out := make([][]float64, len(centers))
	for i, c := range centers {
		out[i] = c
	}
	return out
}

// ---- concurrency-abuse soaks -------------------------------------------

type zooSoak struct {
	name string
	run  func(seed int64, verbose bool) error
}

func zooSoaks() []zooSoak {
	return []zooSoak{
		{name: "reload", run: soakAssignUnderReload},
		{name: "cancel", run: soakCancellationStorm},
		{name: "fsrace", run: soakFSRace},
	}
}

// soakAssignUnderReload hammers the assignment server in both wire
// framings while hot-swapping between models trained on two zoo cells,
// then quiesces and asserts JSON, binary and programmatic answers are
// digest-identical.
func soakAssignUnderReload(seed int64, verbose bool) error {
	baseline := runtime.NumGoroutine()
	train := func(cellName string) (*model.Model, error) {
		c, ok := zoo.Find(cellName)
		if !ok {
			return nil, fmt.Errorf("zoo cell %q missing", cellName)
		}
		cl, err := gmeansmr.New(gmeansmr.WithSeed(seed), gmeansmr.WithMaxK(zooMaxK))
		if err != nil {
			return nil, err
		}
		res, err := cl.Run(context.Background(), c.Source(seed))
		if err != nil {
			return nil, err
		}
		centers := make([]vec.Vector, len(res.Centers))
		for i, p := range res.Centers {
			centers[i] = vec.Vector(p)
		}
		return model.New(centers, model.Meta{Algorithm: "zoo-" + cellName})
	}
	// Both dim-2 cells, so probes fit either model.
	mA, err := train("overlap-twins")
	if err != nil {
		return err
	}
	mB, err := train("heavy-tail")
	if err != nil {
		return err
	}
	maxK := mA.K
	if mB.K > maxK {
		maxK = mB.K
	}

	var flip atomic.Bool
	srv, err := serve.New(mA, serve.Options{Loader: func() (*model.Model, error) {
		if flip.Load() {
			return mB, nil
		}
		return mA, nil
	}})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rng := rand.New(rand.NewSource(seed))
	probes := make([]vec.Vector, 32)
	for i := range probes {
		probes[i] = vec.Vector{rng.NormFloat64() * 20, rng.NormFloat64() * 20}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := make(chan error, 4)
	flunk := func(err error) {
		select {
		case fail <- err:
		default:
		}
		stop.Store(true)
	}

	// The reloader: alternate models through the public reload endpoint.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for n := 0; n < 200 && !stop.Load(); n++ {
			flip.Store(n%2 == 1)
			resp, err := ts.Client().Post(ts.URL+"/v1/model/reload", "", nil)
			if err != nil {
				flunk(fmt.Errorf("reload: %w", err))
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				flunk(fmt.Errorf("reload status %d", resp.StatusCode))
				return
			}
		}
	}()

	// Hammers: every response must be well-formed for SOME model — cluster
	// within [0, maxK), finite distance — regardless of swap timing.
	for h := 0; h < 3; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				p := probes[(i+h)%len(probes)]
				var asgs []serve.Assignment
				var err error
				if (i+h)%2 == 0 {
					asgs, err = assignJSON(ts, []vec.Vector{p})
				} else {
					asgs, err = assignBinary(ts, []vec.Vector{p})
				}
				if err != nil {
					flunk(err)
					return
				}
				for _, a := range asgs {
					if a.Cluster < 0 || a.Cluster >= maxK || math.IsNaN(a.Distance) || math.IsInf(a.Distance, 0) {
						flunk(fmt.Errorf("torn response under reload: %+v", a))
						return
					}
				}
			}
		}(h)
	}
	wg.Wait()
	select {
	case err := <-fail:
		return err
	default:
	}

	// Quiesce on model A and assert the cross-framing digest identity.
	flip.Store(false)
	if resp, err := ts.Client().Post(ts.URL+"/v1/model/reload", "", nil); err != nil {
		return err
	} else {
		resp.Body.Close()
	}
	js, err := assignJSON(ts, probes)
	if err != nil {
		return err
	}
	bin, err := assignBinary(ts, probes)
	if err != nil {
		return err
	}
	prog := make([]serve.Assignment, len(probes))
	for i, p := range probes {
		ci, d2 := vec.NearestIndex(p, mA.Centers)
		prog[i] = serve.Assignment{Cluster: ci, Distance: math.Sqrt(d2)}
	}
	dj, db, dp := digestAssigns(js), digestAssigns(bin), digestAssigns(prog)
	if dj != db || dj != dp {
		return fmt.Errorf("serve digests diverge: json=%s binary=%s programmatic=%s", dj, db, dp)
	}
	ts.Close()
	return checkGoroutines(baseline)
}

func digestAssigns(asgs []serve.Assignment) string {
	clusters := make([]int, len(asgs))
	dists := make([]float64, len(asgs))
	for i, a := range asgs {
		clusters[i], dists[i] = a.Cluster, a.Distance
	}
	return invariants.DigestAssignments(clusters, dists)
}

func assignJSON(ts *httptest.Server, points []vec.Vector) ([]serve.Assignment, error) {
	body, _ := json.Marshal(struct {
		Points []vec.Vector `json:"points"`
	}{points})
	resp, err := ts.Client().Post(ts.URL+"/v1/assign/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out struct {
		Assignments []serve.Assignment `json:"assignments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("assign json decode: %w", err)
	}
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("assign json status %d", resp.StatusCode)
	}
	if len(out.Assignments) != len(points) {
		return nil, fmt.Errorf("assign json: %d answers for %d points", len(out.Assignments), len(points))
	}
	return out.Assignments, nil
}

func assignBinary(ts *httptest.Server, points []vec.Vector) ([]serve.Assignment, error) {
	body := dfs.BinaryHeader(len(points[0]))
	for _, p := range points {
		body = dfs.AppendBinaryPoint(body, p)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/assign/batch", "application/x-gmpb", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("assign binary status %d: %s", resp.StatusCode, buf.String())
	}
	raw := buf.Bytes()
	if _, err := serve.ParseAssignHeader(raw); err != nil {
		return nil, err
	}
	frames := raw[serve.AssignHeaderLen:]
	if len(frames)%serve.AssignFrameLen != 0 {
		return nil, fmt.Errorf("assign binary: ragged body of %d bytes", len(frames))
	}
	out := make([]serve.Assignment, 0, len(frames)/serve.AssignFrameLen)
	for off := 0; off < len(frames); off += serve.AssignFrameLen {
		out = append(out, serve.DecodeAssignFrame(frames[off:off+serve.AssignFrameLen]))
	}
	if len(out) != len(points) {
		return nil, fmt.Errorf("assign binary: %d answers for %d points", len(out), len(points))
	}
	return out, nil
}

// soakCancellationStorm starts full facade runs and cancels them at random
// times: every run must either complete or fail with the context's error —
// no hangs, no untyped errors, no leaked goroutines.
func soakCancellationStorm(seed int64, verbose bool) error {
	baseline := runtime.NumGoroutine()
	c, ok := zoo.Find("single-cluster")
	if !ok {
		return fmt.Errorf("zoo cell single-cluster missing")
	}
	points := c.Points(seed)
	rng := rand.New(rand.NewSource(seed))
	completed, cancelled := 0, 0
	for i := 0; i < 40; i++ {
		cl, err := gmeansmr.New(gmeansmr.WithSeed(seed), gmeansmr.WithMaxK(zooMaxK))
		if err != nil {
			return err
		}
		// Deadlines from "already expired" to "run finishes first".
		ctx, cancel := context.WithTimeout(context.Background(),
			time.Duration(rng.Intn(30_000))*time.Microsecond)
		_, err = cl.Run(ctx, gmeansmr.FromPoints(points))
		cancel()
		switch {
		case err == nil:
			completed++
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			cancelled++
		default:
			return fmt.Errorf("storm run %d: untyped error under cancellation: %v", i, err)
		}
	}
	if verbose {
		log.Printf("  cancel storm: %d completed, %d cancelled", completed, cancelled)
	}
	if cancelled == 0 {
		return fmt.Errorf("storm never cancelled a run; deadlines too long to exercise the path")
	}
	return checkGoroutines(baseline)
}

// soakFSRace races Create/Delete/SetSplitSize against running k-means
// iterations on the same FS. The dataset file itself is never touched, so
// every iteration must keep succeeding with finite centers; the rest is
// -race's job.
func soakFSRace(seed int64, verbose bool) error {
	baseline := runtime.NumGoroutine()
	c, ok := zoo.Find("skew-sizes")
	if !ok {
		return fmt.Errorf("zoo cell skew-sizes missing")
	}
	env, fs := stageZoo(c, seed, false)
	centers, err := kmeansmr.SampleUpTo(env, 3, seed)
	if err != nil {
		return err
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; !stop.Load(); i++ {
				switch w {
				case 0:
					fs.Create(fmt.Sprintf("/scratch/%d", i%8), []byte("x"))
				case 1:
					fs.Delete(fmt.Sprintf("/scratch/%d", rng.Intn(8)))
				case 2:
					fs.SetSplitSize(8<<10 + rng.Intn(16)<<10)
				}
			}
		}(w)
	}

	var iterErr error
	for r := 0; r < 25; r++ {
		it, err := kmeansmr.Iterate(env, centers)
		if err != nil {
			iterErr = fmt.Errorf("iteration %d under FS races: %v", r, err)
			break
		}
		centers = it.Centers
		if vs := invariants.CheckCentersFinite(toPoints(centers)); len(vs) > 0 {
			iterErr = fmt.Errorf("iteration %d under FS races: %s", r, invariants.Format(vs))
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	if iterErr != nil {
		return iterErr
	}
	return checkGoroutines(baseline)
}
