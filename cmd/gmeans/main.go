// Command gmeans clusters a text dataset (one point per line, CSV/TSV or
// space-separated) and determines k, printing the discovered centers along
// with the engine's cost accounting. The algorithm is selectable: the
// paper's MR G-means (default), the original sequential G-means, X-means,
// or the multi-k-means baseline.
//
// Usage:
//
//	datagen -k 100 -dim 10 -n 100000 -sep 8 -o d100.txt
//	gmeans -nodes 4 -v d100.txt
//	gmeans -algo seq-gmeans d100.txt
//	gmeans -timeout 30s d100.txt   # bound the run; cancels between MR waves
//
// Execution backend: -backend=local (default) runs MapReduce tasks on
// in-process goroutine pools; -backend=proc spawns one worker process per
// simulated node and schedules tasks over HTTP (internal/mrdist), with
// straggler speculation and retry around worker failure. Results are
// bit-identical across backends:
//
//	gmeans -backend proc -nodes 4 d100.txt
//
// Observability: -trace writes a Chrome-trace file of the run's phase and
// task spans (open it at chrome://tracing or https://ui.perfetto.dev), and
// -debug-addr serves live /metrics and /debug/pprof while the run is hot:
//
//	gmeans -trace trace.json -debug-addr :6060 d100.txt
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	gmeansmr "gmeansmr"
	"gmeansmr/internal/dataset"
	"gmeansmr/internal/mrdist"
	"gmeansmr/internal/obs"
)

func main() {
	// When the proc backend spawned this process as a worker, serve tasks
	// instead of parsing flags; never returns in that case.
	mrdist.MaybeWorker()
	log.SetFlags(0)
	log.SetPrefix("gmeans: ")

	var (
		algo     = flag.String("algo", "gmeans-mr", "algorithm: gmeans-mr, seq-gmeans, xmeans, multik")
		backend  = flag.String("backend", "local", "MR execution backend: local (in-process) or proc (worker subprocesses)")
		fallback = flag.Bool("fallback", false, "degrade to the local backend if the proc backend is unavailable")
		nodes    = flag.Int("nodes", 4, "simulated cluster nodes (MR algorithms)")
		alpha    = flag.Float64("alpha", 0.0001, "Anderson-Darling significance level")
		maxK     = flag.Int("maxk", 0, "stop splitting at this many centers (0 = unlimited)")
		maxIter  = flag.Int("maxiter", 30, "maximum G-means rounds")
		merge    = flag.Float64("merge", 0, "post-processing merge radius (0 = off, -1 = auto)")
		seed     = flag.Int64("seed", 1, "random seed")
		split    = flag.Int("split", 1<<20, "simulated DFS split size in bytes (0 = auto)")
		centers  = flag.String("centers", "", "optional file receiving the final centers")
		verbose  = flag.Bool("v", false, "stream per-round progress")
		strategy = flag.String("strategy", "", "pin the test strategy: TestClusters or TestFewClusters")
		useTree  = flag.Bool("kdtree", false, "accelerate nearest-center queries with a k-d tree")
		timeout  = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
		tracing  = flag.String("trace", "", "write a Chrome-trace file of the run's spans here")
		debug    = flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address (e.g. :6060)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gmeans [flags] <dataset.txt>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	opts := []gmeansmr.Option{
		gmeansmr.WithAlgorithm(gmeansmr.Algorithm(*algo)),
		gmeansmr.WithBackend(gmeansmr.Backend(*backend)),
		gmeansmr.WithNodes(*nodes),
		gmeansmr.WithSeed(*seed),
		gmeansmr.WithSplitSize(*split),
	}
	if *fallback {
		opts = append(opts, gmeansmr.WithBackendFallback())
	}
	if *alpha > 0 {
		opts = append(opts, gmeansmr.WithAlpha(*alpha))
	}
	if *maxK > 0 {
		opts = append(opts, gmeansmr.WithMaxK(*maxK))
	}
	if *maxIter > 0 {
		opts = append(opts, gmeansmr.WithMaxIterations(*maxIter))
	}
	if *merge != 0 {
		r := *merge
		if r < 0 {
			r = gmeansmr.MergeAuto
		}
		opts = append(opts, gmeansmr.WithMergeRadius(r))
	}
	if *strategy != "" {
		opts = append(opts, gmeansmr.WithTestStrategy(*strategy))
	}
	if *useTree {
		opts = append(opts, gmeansmr.WithKDTree())
	}
	if *verbose {
		opts = append(opts, gmeansmr.WithProgress(func(p gmeansmr.Progress) {
			fmt.Printf("  round %2d  strategy=%-16s k=%-4d active=%-4d  %s\n",
				p.Round, p.Strategy, p.K, p.Active, p.Duration.Round(time.Millisecond))
		}))
	}
	var traceFile *os.File
	var traceBuf *bufio.Writer
	if *tracing != "" {
		f, err := os.Create(*tracing)
		if err != nil {
			log.Fatal(err)
		}
		traceFile, traceBuf = f, bufio.NewWriter(f)
		opts = append(opts, gmeansmr.WithTrace(traceBuf))
	}
	if *debug != "" {
		reg := gmeansmr.NewRegistry()
		opts = append(opts, gmeansmr.WithObserver(reg))
		go func() {
			log.Printf("debug endpoints on %s (/metrics, /debug/pprof/)", *debug)
			log.Fatal(http.ListenAndServe(*debug, obs.DebugMux(reg)))
		}()
	}

	c, err := gmeansmr.New(opts...)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	res, err := c.Run(ctx, gmeansmr.FromFile(flag.Arg(0)))
	if traceFile != nil {
		// Run wrote the trace into the buffer even if it failed partway.
		if ferr := traceBuf.Flush(); ferr != nil {
			log.Printf("flushing trace: %v", ferr)
		}
		if cerr := traceFile.Close(); cerr != nil {
			log.Printf("closing trace: %v", cerr)
		} else if err == nil {
			fmt.Printf("trace written to %s\n", *tracing)
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("algorithm    = %s\n", res.Algorithm)
	fmt.Printf("discovered k = %d\n", res.K)
	fmt.Printf("iterations   = %d\n", res.Iterations)
	fmt.Printf("wall time    = %s\n", time.Since(start).Round(time.Millisecond))
	// Only print the cost counters the algorithm actually measured — the
	// in-memory baselines have no DFS or shuffle to account for.
	printCounter := func(label, key string) {
		if v, ok := res.Counters[key]; ok {
			fmt.Printf("%-13s= %d\n", label, v)
		}
	}
	printCounter("dataset reads", gmeansmr.CounterDatasetReads)
	printCounter("distances", gmeansmr.CounterDistances)
	printCounter("AD tests", gmeansmr.CounterADTests)
	printCounter("shuffle bytes", gmeansmr.CounterShuffleBytes)

	if *centers != "" {
		f, err := os.Create(*centers)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range res.Centers {
			fmt.Fprintln(f, dataset.FormatPoint(c))
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("centers written to %s\n", *centers)
	}
}
