// Command gmeans runs MapReduce G-means over a text dataset (one point per
// line) and prints the discovered centers along with the engine's cost
// accounting: iterations, dataset reads, distance computations, shuffle
// volume, and per-iteration strategy decisions.
//
// Usage:
//
//	datagen -k 100 -dim 10 -n 100000 -sep 8 -o d100.txt
//	gmeans -dim 10 -nodes 4 d100.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gmeansmr/internal/core"
	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
	"gmeansmr/internal/kmeansmr"
	"gmeansmr/internal/mr"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gmeans: ")

	var (
		dim      = flag.Int("dim", 0, "dimensionality of the points (required)")
		nodes    = flag.Int("nodes", 4, "simulated cluster nodes")
		alpha    = flag.Float64("alpha", 0.0001, "Anderson-Darling significance level")
		maxK     = flag.Int("maxk", 0, "stop splitting at this many centers (0 = unlimited)")
		maxIter  = flag.Int("maxiter", 30, "maximum G-means rounds")
		merge    = flag.Float64("merge", 0, "post-processing merge radius (0 = off, -1 = auto)")
		seed     = flag.Int64("seed", 1, "random seed")
		split    = flag.Int("split", 1<<20, "simulated DFS split size in bytes")
		centers  = flag.String("centers", "", "optional file receiving the final centers")
		verbose  = flag.Bool("v", false, "print per-iteration details")
		strategy = flag.String("strategy", "", "pin the test strategy: TestClusters or TestFewClusters")
		useTree  = flag.Bool("kdtree", false, "accelerate nearest-center queries with a k-d tree")
	)
	flag.Parse()
	if flag.NArg() != 1 || *dim <= 0 {
		fmt.Fprintln(os.Stderr, "usage: gmeans -dim D [flags] <dataset.txt>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	fs := dfs.New(*split)
	if err := fs.ImportLocal(flag.Arg(0), "/data/points.txt"); err != nil {
		log.Fatal(err)
	}
	cluster := mr.DefaultCluster().WithNodes(*nodes)
	cfg := core.Config{
		Env: kmeansmr.Env{FS: fs, Cluster: cluster, Input: "/data/points.txt",
			Dim: *dim, UseKDTree: *useTree},
		Alpha:         *alpha,
		MaxK:          *maxK,
		MaxIterations: *maxIter,
		Seed:          *seed,
		ForceStrategy: core.TestStrategy(*strategy),
	}
	if *merge > 0 {
		cfg.MergeRadius = *merge
	}
	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *merge < 0 {
		res.Centers = core.MergeCloseCenters(res.Centers, core.SuggestMergeRadius(res.Centers))
		res.K = len(res.Centers)
	}

	fmt.Printf("discovered k = %d (before merge: %d)\n", res.K, res.KBeforeMerge)
	fmt.Printf("iterations   = %d\n", res.Iterations)
	fmt.Printf("wall time    = %s\n", res.Duration.Round(1e6))
	fmt.Printf("dataset reads= %d\n", fs.DatasetReads())
	fmt.Printf("distances    = %d\n", res.Counters.Get(kmeansmr.CounterDistances))
	fmt.Printf("AD tests     = %d\n", res.Counters.Get(core.CounterADTests))
	fmt.Printf("shuffle bytes= %d\n", res.Counters.Get(mr.CounterShuffleBytes))

	if *verbose {
		fmt.Println("\nper-iteration:")
		for _, it := range res.PerIteration {
			fmt.Printf("  round %2d  strategy=%-16s tested=%-4d split=%-4d found=%-4d maxcluster=%-8d heapest=%dB  %s\n",
				it.Iteration, it.Strategy, it.ActiveBefore, it.SplitCount,
				it.FoundAfter, it.MaxClusterSize, it.EstimatedHeap, it.Duration.Round(1e6))
		}
	}
	if *centers != "" {
		f, err := os.Create(*centers)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range res.Centers {
			fmt.Fprintln(f, dataset.FormatPoint(c))
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("centers written to %s\n", *centers)
	}
}
