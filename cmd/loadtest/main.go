// Command loadtest drives the assignment server's HTTP serving path and
// prints a QPS / latency table in markdown — the measurement behind the
// serving-performance table in the README.
//
// By default it self-hosts: it builds a synthetic model, starts the
// server in-process on a loopback port, and sweeps framing × batch size
// × client concurrency, measuring each cell with its own latency
// histogram (the same fixed-bucket estimator the server's /metrics
// exports, so numbers are comparable):
//
//	loadtest                          # default sweep, markdown to stdout
//	loadtest -k 64 -dim 32 -dur 5s    # bigger model, longer cells
//	loadtest -coalesce 200us          # micro-batch singleton assigns
//
// Point it at an already-running server to measure a real deployment
// (the model shape is discovered from one probe assignment):
//
//	loadtest -addr http://10.0.0.7:8080 -dim 16
//
// Each cell reports requests/s, points/s (the throughput number that
// matters for batches), and p50/p95/p99 request latency.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gmeansmr/internal/dfs"
	"gmeansmr/internal/model"
	"gmeansmr/internal/obs"
	"gmeansmr/internal/serve"
	"gmeansmr/internal/vec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadtest: ")

	var (
		addr     = flag.String("addr", "", "measure this running server instead of self-hosting (e.g. http://localhost:8080)")
		k        = flag.Int("k", 32, "self-hosted synthetic model: center count")
		dim      = flag.Int("dim", 16, "point dimensionality (self-hosted model shape; required to match -addr's model)")
		seed     = flag.Int64("seed", 1, "random seed for the model and query points")
		coalesce = flag.Duration("coalesce", 0, "self-hosted server: coalesce window for /v1/assign (0 = off)")
		dur      = flag.Duration("dur", 2*time.Second, "measured duration per cell")
		warmup   = flag.Duration("warmup", 250*time.Millisecond, "unmeasured warmup per cell")
		concs    = flag.String("conc", "1,8,32", "comma-separated client concurrency levels")
		batches  = flag.String("batch", "1,64,1024", "comma-separated batch sizes (1 = singleton /v1/assign)")
		modes    = flag.String("mode", "json,binary", "comma-separated framings to sweep: json, binary")
	)
	flag.Parse()

	concList, err := parseInts(*concs)
	if err != nil {
		log.Fatalf("-conc: %v", err)
	}
	batchList, err := parseInts(*batches)
	if err != nil {
		log.Fatalf("-batch: %v", err)
	}
	modeList := strings.Split(*modes, ",")
	for _, m := range modeList {
		if m != "json" && m != "binary" {
			log.Fatalf("-mode: unknown framing %q", m)
		}
	}

	base := *addr
	if base == "" {
		base, err = selfHost(*k, *dim, *seed, *coalesce)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("self-hosted server on %s (k=%d dim=%d coalesce=%v)", base, *k, *dim, *coalesce)
	}
	base = strings.TrimSuffix(base, "/")

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4 * maxInt(concList),
		MaxIdleConnsPerHost: 4 * maxInt(concList),
	}}
	if err := probe(client, base, *dim); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("| framing | batch | clients | req/s | points/s | p50 | p95 | p99 |\n")
	fmt.Printf("|---------|------:|--------:|------:|---------:|----:|----:|----:|\n")
	for _, mode := range modeList {
		for _, batch := range batchList {
			bodies := makeBodies(mode, batch, *dim, *seed)
			for _, conc := range concList {
				cell := runCell(client, base, mode, batch, conc, bodies, *warmup, *dur)
				fmt.Println(cell)
			}
		}
	}
}

// selfHost builds a synthetic model and serves it on a loopback port.
func selfHost(k, dim int, seed int64, coalesce time.Duration) (string, error) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]vec.Vector, k)
	for i := range centers {
		c := make(vec.Vector, dim)
		for j := range c {
			c[j] = rng.Float64() * 100
		}
		centers[i] = c
	}
	m, err := model.New(centers, model.Meta{Algorithm: "loadtest"})
	if err != nil {
		return "", err
	}
	srv, err := serve.New(m, serve.Options{CoalesceWindow: coalesce})
	if err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go func() {
		if err := (&http.Server{Handler: srv}).Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	return "http://" + ln.Addr().String(), nil
}

// probe sends one assignment to fail fast on a wrong -addr or -dim
// before the sweep burns time producing a table of errors.
func probe(client *http.Client, base string, dim int) error {
	p := make([]float64, dim)
	body, _ := json.Marshal(map[string]any{"point": p})
	resp, err := client.Post(base+"/v1/assign", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("probe assignment failed (%s): %s — does -dim match the served model?",
			resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// makeBodies pre-encodes a pool of distinct request bodies for one cell
// so the measurement loop does no encoding work. Queries are drawn from
// the same range the synthetic model's centers occupy.
func makeBodies(mode string, batch, dim int, seed int64) [][]byte {
	const pool = 64
	rng := rand.New(rand.NewSource(seed + int64(batch)))
	bodies := make([][]byte, pool)
	for i := range bodies {
		points := make([][]float64, batch)
		for j := range points {
			p := make([]float64, dim)
			for d := range p {
				p[d] = rng.Float64() * 100
			}
			points[j] = p
		}
		switch {
		case mode == "binary":
			b := dfs.BinaryHeader(dim)
			for _, p := range points {
				b = dfs.AppendBinaryPoint(b, p)
			}
			bodies[i] = b
		case batch == 1:
			bodies[i], _ = json.Marshal(map[string]any{"point": points[0]})
		default:
			bodies[i], _ = json.Marshal(map[string]any{"points": points})
		}
	}
	return bodies
}

// runCell hammers one (framing, batch, concurrency) cell and returns its
// markdown table row.
func runCell(client *http.Client, base, mode string, batch, conc int, bodies [][]byte, warmup, dur time.Duration) string {
	path := base + "/v1/assign/batch"
	contentType := "application/json"
	if batch == 1 {
		path = base + "/v1/assign"
	}
	if mode == "binary" {
		contentType = "application/octet-stream"
	}

	hist := obs.NewRegistry().Histogram("lat", nil)
	var requests, errs atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup

	deadline := time.After(warmup + dur)
	measuring := time.After(warmup)
	var recording atomic.Bool
	go func() {
		<-measuring
		recording.Store(true)
	}()

	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; !stop.Load(); i++ {
				body := bodies[i%len(bodies)]
				start := time.Now()
				resp, err := client.Post(path, contentType, bytes.NewReader(body))
				if err != nil {
					errs.Add(1)
					continue
				}
				_, cerr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if cerr != nil || resp.StatusCode != http.StatusOK {
					errs.Add(1)
					continue
				}
				if recording.Load() {
					hist.Observe(time.Since(start).Seconds())
					requests.Add(1)
				}
			}
		}(w)
	}
	<-deadline
	stop.Store(true)
	wg.Wait()

	if e := errs.Load(); e > 0 {
		fmt.Fprintf(os.Stderr, "loadtest: %s batch=%d conc=%d: %d failed requests\n", mode, batch, conc, e)
	}
	secs := dur.Seconds()
	reqs := float64(requests.Load())
	return fmt.Sprintf("| %s | %d | %d | %.0f | %.0f | %s | %s | %s |",
		mode, batch, conc, reqs/secs, reqs*float64(batch)/secs,
		fmtLatency(hist.P50()), fmtLatency(hist.P95()), fmtLatency(hist.P99()))
}

// fmtLatency renders a latency in seconds at µs resolution.
func fmtLatency(sec float64) string {
	d := time.Duration(sec * float64(time.Second))
	return d.Round(time.Microsecond).String()
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad value %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func maxInt(xs []int) int {
	m := 1
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
