// Command datagen generates the synthetic Gaussian-mixture datasets used
// throughout the paper's evaluation and writes them as text files (one
// point per line, space-separated coordinates) or, with -format binary,
// as binary point files (dim-carrying header + fixed-stride little-endian
// float64 frames) that the engine ingests without any text parsing.
//
// Usage:
//
//	datagen -k 100 -dim 10 -n 1000000 -o d100.txt
//	datagen -k 10 -dim 2 -n 10000 -sep 18 -stddev 2 -o fig1.txt
//	datagen -k 100 -dim 10 -n 1000000 -format binary -o d100.gmpb
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	var (
		k      = flag.Int("k", 10, "true number of clusters")
		dim    = flag.Int("dim", 2, "dimensionality")
		n      = flag.Int("n", 10000, "number of points")
		rng    = flag.Float64("range", 100, "side of the hypercube centers are drawn from")
		stddev = flag.Float64("stddev", 1, "per-coordinate standard deviation of each cluster")
		sep    = flag.Float64("sep", 0, "minimum pairwise center separation (0 = none)")
		seed   = flag.Int64("seed", 1, "random seed")
		format = flag.String("format", "text", "point record format: text or binary")
		out    = flag.String("o", "", "output file (default: stdout)")
		truth  = flag.String("truth", "", "optional file receiving the true centers")
	)
	flag.Parse()
	if *format != "text" && *format != "binary" {
		log.Fatalf("unknown -format %q (want text or binary)", *format)
	}

	ds, err := dataset.Generate(dataset.Spec{
		K: *k, Dim: *dim, N: *n,
		CenterRange: *rng, StdDev: *stddev, MinSeparation: *sep, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	var w *bufio.Writer
	if *out == "" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if *format == "binary" {
		w.Write(dfs.BinaryHeader(*dim))
		frame := make([]byte, 0, *dim*8)
		for _, p := range ds.Points {
			frame = dfs.AppendBinaryPoint(frame[:0], p)
			w.Write(frame)
		}
	} else {
		for _, p := range ds.Points {
			w.WriteString(dataset.FormatPoint(p))
			w.WriteByte('\n')
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if *truth != "" {
		f, err := os.Create(*truth)
		if err != nil {
			log.Fatal(err)
		}
		tw := bufio.NewWriter(f)
		for _, c := range ds.Centers {
			tw.WriteString(dataset.FormatPoint(c))
			tw.WriteByte('\n')
		}
		if err := tw.Flush(); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d points (%d clusters, R^%d) to %s\n", *n, *k, *dim, *out)
	}
}
