// Command experiments regenerates every table and figure of the paper's
// evaluation section on scaled workloads (see EXPERIMENTS.md for the
// paper-vs-measured record).
//
// Usage:
//
//	experiments                     # run everything
//	experiments -run fig3           # one experiment
//	experiments -scale 0.25 -csv out/   # quarter-size workloads + CSV dumps
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"gmeansmr/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		run         = flag.String("run", "all", "experiment to run: all, "+strings.Join(experiments.Names(), ", "))
		scale       = flag.Float64("scale", 1.0, "workload scale factor (points)")
		seed        = flag.Int64("seed", 1, "random seed")
		csv         = flag.String("csv", "", "directory receiving CSV dumps (optional)")
		scalingJSON = flag.String("scaling-json", "", "path for the scaling experiment's machine-readable report (SCALING.json)")
	)
	flag.Parse()

	opts := experiments.Options{Out: os.Stdout, CSVDir: *csv, Scale: *scale, Seed: *seed, ScalingJSON: *scalingJSON}
	if *run == "all" {
		if err := experiments.RunAll(opts); err != nil {
			log.Fatal(err)
		}
		return
	}
	runner, ok := experiments.Registry[*run]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: all, %s\n",
			*run, strings.Join(experiments.Names(), ", "))
		os.Exit(2)
	}
	if err := runner(opts); err != nil {
		log.Fatal(err)
	}
}
