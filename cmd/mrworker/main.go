// Command mrworker is a standalone mrdist worker: it serves map/reduce
// task execution, input replicas and shuffle pulls for a master process
// (see internal/mrdist and docs/wire.md). The CLIs normally self-exec as
// their own workers, so every registered job kind resolves on both sides;
// this binary exists for running workers from a dedicated build.
//
// The blank imports matter: they link the packages whose init functions
// register the job kinds and value codecs the shipped JobSpecs name.
package main

import (
	"fmt"
	"os"

	"gmeansmr/internal/mrdist"

	_ "gmeansmr/internal/core"
	_ "gmeansmr/internal/kmeansmr"
)

func main() {
	if err := mrdist.RunWorker(); err != nil {
		fmt.Fprintln(os.Stderr, "mrworker:", err)
		os.Exit(1)
	}
}
