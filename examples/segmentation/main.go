// Market segmentation: cluster customers by RFM-style features (recency,
// frequency, monetary value, basket size) without presupposing how many
// segments the customer base has — the classic "choose k" dilemma the
// paper's introduction motivates.
//
// The example also cross-checks G-means' discovered k against the classic
// criteria (elbow, silhouette, jump, BIC over multi-k-means-style sweeps),
// showing how the O(n·k)-cost G-means answer compares with the O(n·k²)
// sweep-based answers.
//
//	go run ./examples/segmentation
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	gmeansmr "gmeansmr"
	"gmeansmr/internal/criteria"
	"gmeansmr/internal/lloyd"
)

// segment is a ground-truth customer archetype in
// [recency days, orders/year, avg order EUR, items/basket] space.
type segment struct {
	name   string
	mean   []float64
	stddev []float64
	share  float64
}

func main() {
	segments := []segment{
		{"champions", []float64{5, 40, 120, 6}, []float64{2, 5, 15, 1}, 0.10},
		{"loyal", []float64{15, 18, 70, 4}, []float64{5, 3, 10, 1}, 0.25},
		{"big-basket-rare", []float64{60, 3, 300, 14}, []float64{15, 1, 40, 2}, 0.15},
		{"bargain-hunters", []float64{25, 10, 25, 2}, []float64{8, 2, 5, 0.5}, 0.30},
		{"dormant", []float64{250, 1, 45, 3}, []float64{40, 0.5, 10, 1}, 0.20},
	}
	rng := rand.New(rand.NewSource(5))
	const n = 25_000

	var points [][]float64
	var truth []int
	for i := 0; i < n; i++ {
		s, si := pickSegment(segments, rng)
		v := make([]float64, len(s.mean))
		for d := range v {
			v[d] = s.mean[d] + rng.NormFloat64()*s.stddev[d]
			if v[d] < 0 {
				v[d] = 0
			}
		}
		points = append(points, v)
		truth = append(truth, si)
	}

	// --- G-means: one run, k comes out ---
	clusterer, err := gmeansmr.New(gmeansmr.WithSeed(2), gmeansmr.WithMergeRadius(gmeansmr.MergeAuto))
	if err != nil {
		log.Fatal(err)
	}
	res, err := clusterer.Run(context.Background(), gmeansmr.FromPoints(points))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("G-means discovered %d segments (ground truth: %d)\n", res.K, len(segments))

	// --- the sweep-based criteria on the same data ---
	var cs []criteria.Clustering
	for k := 1; k <= 10; k++ {
		lr, err := lloyd.BestOf(points, lloyd.Config{K: k, Seeding: lloyd.SeedPlusPlus, Seed: int64(k)}, 3)
		if err != nil {
			log.Fatal(err)
		}
		cs = append(cs, criteria.FromResult(lr))
	}
	elbow, _ := criteria.ElbowK(cs)
	sil, _ := criteria.SilhouetteK(points, cs, 1500, 1)
	jump, _ := criteria.JumpK(points, cs)
	bic, _ := criteria.BICK(points, cs)
	fmt.Printf("sweep-based criteria: elbow=%d silhouette=%d jump=%d bic=%d\n", elbow, sil, jump, bic)
	fmt.Println("(each of those required clustering for every candidate k — the n·k² cost G-means avoids)")

	// --- describe the discovered segments ---
	fmt.Println("\ndiscovered segments:")
	counts := make([]int, res.K)
	for _, a := range res.Assignment {
		counts[a]++
	}
	names := []string{"recency", "orders/yr", "avg order", "basket"}
	for i, c := range res.Centers {
		fmt.Printf("  segment %d (%4.1f%% of customers): ", i, 100*float64(counts[i])/float64(n))
		for d, x := range c {
			fmt.Printf("%s=%.1f ", names[d], x)
		}
		fmt.Println()
	}

	// --- purity against ground truth ---
	agree := 0
	majority := make(map[int]map[int]int)
	for i, a := range res.Assignment {
		if majority[a] == nil {
			majority[a] = map[int]int{}
		}
		majority[a][truth[i]]++
	}
	for _, m := range majority {
		best := 0
		for _, cnt := range m {
			if cnt > best {
				best = cnt
			}
		}
		agree += best
	}
	fmt.Printf("\ncluster purity vs ground truth: %.1f%%\n", 100*float64(agree)/float64(n))
}

func pickSegment(segments []segment, rng *rand.Rand) (segment, int) {
	r := rng.Float64()
	acc := 0.0
	for i, s := range segments {
		acc += s.share
		if r <= acc {
			return s, i
		}
	}
	return segments[len(segments)-1], len(segments) - 1
}
