// Color quantization: discover the palette of an image without choosing
// the palette size up front. Pixels are RGB points; G-means finds how many
// color modes the image actually has and where they sit — a direct use of
// "determining the k in k-means".
//
// The example synthesizes a flat-shaded scene (sky, sea, sand, two boat
// colors, sail) with sensor noise, runs G-means over the pixels, and
// reports the recovered palette and the quantization error against the
// true palette.
//
//	go run ./examples/colorquant
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	gmeansmr "gmeansmr"
)

type region struct {
	name string
	rgb  [3]float64
	frac float64 // share of pixels
}

func main() {
	palette := []region{
		{"sky", [3]float64{135, 206, 235}, 0.40},
		{"sea", [3]float64{0, 105, 148}, 0.30},
		{"sand", [3]float64{194, 178, 128}, 0.15},
		{"hull", [3]float64{139, 69, 19}, 0.07},
		{"sail", [3]float64{245, 245, 245}, 0.05},
		{"flag", [3]float64{200, 16, 46}, 0.03},
	}
	rng := rand.New(rand.NewSource(21))
	const pixels = 40_000
	const noise = 6.0 // sensor noise, std dev per channel

	points := make([][]float64, 0, pixels)
	for i := 0; i < pixels; i++ {
		reg := sample(palette, rng)
		points = append(points, []float64{
			clamp255(reg.rgb[0] + rng.NormFloat64()*noise),
			clamp255(reg.rgb[1] + rng.NormFloat64()*noise),
			clamp255(reg.rgb[2] + rng.NormFloat64()*noise),
		})
	}

	clusterer, err := gmeansmr.New(gmeansmr.WithSeed(4), gmeansmr.WithMergeRadius(gmeansmr.MergeAuto))
	if err != nil {
		log.Fatal(err)
	}
	res, err := clusterer.Run(context.Background(), gmeansmr.FromPoints(points))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("palette size discovered: %d (true: %d)\n\n", res.K, len(palette))
	fmt.Println("recovered palette (nearest true color in parentheses):")
	for i, c := range res.Centers {
		name, d := nearestRegion(palette, c)
		fmt.Printf("  #%d  rgb(%3.0f,%3.0f,%3.0f)  → %-5s (Δ=%5.1f)\n", i, c[0], c[1], c[2], name, d)
	}

	// Quantization error: mean per-pixel distance to assigned palette entry.
	var errSum float64
	for i, p := range points {
		errSum += dist(p, res.Centers[res.Assignment[i]])
	}
	fmt.Printf("\nmean quantization error: %.2f (sensor noise σ√3 ≈ %.2f)\n",
		errSum/float64(len(points)), noise*math.Sqrt(3))

	// Coverage check: every true region should map to a distinct center.
	seen := map[int]bool{}
	missed := 0
	for _, reg := range palette {
		idx, _ := nearestCenter(res.Centers, reg.rgb[:])
		if seen[idx] {
			missed++
		}
		seen[idx] = true
	}
	fmt.Printf("distinct true colors resolved: %d/%d\n", len(palette)-missed, len(palette))
}

func sample(palette []region, rng *rand.Rand) region {
	r := rng.Float64()
	acc := 0.0
	for _, reg := range palette {
		acc += reg.frac
		if r <= acc {
			return reg
		}
	}
	return palette[len(palette)-1]
}

func clamp255(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 255 {
		return 255
	}
	return x
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func nearestRegion(palette []region, c []float64) (string, float64) {
	best, bestD := "", math.Inf(1)
	for _, reg := range palette {
		if d := dist(reg.rgb[:], c); d < bestD {
			best, bestD = reg.name, d
		}
	}
	return best, bestD
}

func nearestCenter(centers [][]float64, p []float64) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, c := range centers {
		if d := dist(c, p); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}
