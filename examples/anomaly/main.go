// Anomaly detection over security telemetry — the authors' own domain
// (Royal Military Academy / Symantec Research): cluster network-flow
// feature vectors without knowing how many behaviour profiles exist, then
// flag flows that sit far from every discovered profile.
//
// The synthetic traffic contains several benign behaviour modes (web
// browsing, bulk transfer, DNS chatter, ...) plus a small set of injected
// anomalies (port-scan-like and exfiltration-like flows). G-means
// discovers the number of behaviour modes on its own; anomalies are the
// points whose distance to the nearest center is extreme.
//
//	go run ./examples/anomaly
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	gmeansmr "gmeansmr"
)

// flowProfile is one benign traffic mode in feature space:
// [log bytes/s, log packets/s, mean pkt size, duration, distinct ports,
// inbound/outbound ratio].
type flowProfile struct {
	name   string
	mean   []float64
	stddev float64
}

func main() {
	profiles := []flowProfile{
		{"web-browsing", []float64{8, 4, 600, 12, 2, 1.8}, 0.8},
		{"bulk-transfer", []float64{14, 8, 1400, 300, 1, 9.0}, 1.0},
		{"dns-chatter", []float64{3, 2, 90, 1, 1, 1.0}, 0.4},
		{"video-stream", []float64{12, 7, 1200, 600, 1, 12.0}, 0.9},
		{"ssh-interactive", []float64{5, 3, 180, 900, 1, 1.1}, 0.6},
	}
	rng := rand.New(rand.NewSource(11))

	var points [][]float64
	var labels []string
	for i := 0; i < 20_000; i++ {
		p := profiles[i%len(profiles)]
		v := make([]float64, len(p.mean))
		for d := range v {
			v[d] = p.mean[d] + rng.NormFloat64()*p.stddev*scaleOf(p.mean[d])
		}
		points = append(points, v)
		labels = append(labels, p.name)
	}
	// Inject anomalies: port scans (many ports, tiny payloads) and
	// exfiltration (huge outbound, long duration).
	anomalies := [][]float64{
		{2, 9, 60, 2, 800, 0.1},     // port scan
		{2.5, 9.5, 64, 3, 950, 0.1}, // port scan
		{16, 9, 1500, 4000, 1, 60},  // exfiltration
		{15.5, 8.8, 1480, 3600, 1, 55},
	}
	for _, a := range anomalies {
		points = append(points, a)
		labels = append(labels, "INJECTED")
	}

	clusterer, err := gmeansmr.New(gmeansmr.WithSeed(3), gmeansmr.WithMaxK(32))
	if err != nil {
		log.Fatal(err)
	}
	res, err := clusterer.Run(context.Background(), gmeansmr.FromPoints(points))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("behaviour modes discovered: %d (true benign modes: %d)\n\n", res.K, len(profiles))

	// Score every flow by distance to its center; flag the top tail.
	type scored struct {
		idx  int
		dist float64
	}
	scores := make([]scored, len(points))
	for i, p := range points {
		c := res.Centers[res.Assignment[i]]
		scores[i] = scored{i, dist(p, c)}
	}
	sort.Slice(scores, func(a, b int) bool { return scores[a].dist > scores[b].dist })

	fmt.Println("top-8 most anomalous flows (label should show the injected ones first):")
	caught := 0
	for _, s := range scores[:8] {
		marker := " "
		if labels[s.idx] == "INJECTED" {
			marker = "*"
			caught++
		}
		fmt.Printf("  %s flow %5d  dist=%8.2f  label=%s\n", marker, s.idx, s.dist, labels[s.idx])
	}
	fmt.Printf("\ninjected anomalies in top-8: %d/4\n", caught)

	// Per-mode summary: how pure are the discovered clusters?
	fmt.Println("\ndiscovered cluster profiles:")
	byCluster := make(map[int]map[string]int)
	for i, c := range res.Assignment {
		if byCluster[c] == nil {
			byCluster[c] = map[string]int{}
		}
		byCluster[c][labels[i]]++
	}
	for c := 0; c < res.K; c++ {
		top, n, total := "", 0, 0
		for lbl, cnt := range byCluster[c] {
			total += cnt
			if cnt > n {
				top, n = lbl, cnt
			}
		}
		if total == 0 {
			continue
		}
		fmt.Printf("  cluster %02d: %6d flows, %3.0f%% %s\n", c, total, 100*float64(n)/float64(total), top)
	}
}

func scaleOf(mean float64) float64 {
	if mean > 100 {
		return mean / 10
	}
	return 1
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
