// Quickstart: generate a Gaussian mixture with an unknown (to the
// algorithm) number of clusters, run MapReduce G-means through the public
// Clusterer API — watching each round as it happens — and inspect what it
// discovered and what it cost.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	gmeansmr "gmeansmr"
)

func main() {
	// 12 well-separated Gaussian clusters in R³ — but the algorithm is
	// never told the 12.
	ds, err := gmeansmr.GenerateDataset(gmeansmr.DatasetSpec{
		K: 12, Dim: 3, N: 30_000, MinSeparation: 15, StdDev: 1, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	c, err := gmeansmr.New(
		gmeansmr.WithSeed(1),
		gmeansmr.WithProgress(func(p gmeansmr.Progress) {
			fmt.Printf("  round %d: k=%d, %d clusters under test, strategy=%s\n",
				p.Round, p.K, p.Active, p.Strategy)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Run(context.Background(), gmeansmr.FromPoints(ds.Points))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("true k       = %d\n", ds.Spec.K)
	fmt.Printf("discovered k = %d in %d G-means iterations\n", res.K, res.Iterations)
	fmt.Printf("distance computations = %d (≈ 8·n·k as the paper predicts)\n",
		res.Counters[gmeansmr.CounterDistances])
	fmt.Printf("anderson-darling tests = %d (≈ 2·k)\n", res.Counters[gmeansmr.CounterADTests])
	fmt.Printf("dataset reads = %d (O(log₂ k), the paper's I/O cost unit)\n",
		res.Counters[gmeansmr.CounterDatasetReads])

	// Cluster sizes from the assignment.
	sizes := make([]int, res.K)
	for _, c := range res.Assignment {
		sizes[c]++
	}
	fmt.Println("\ncenters (x, y, z) and sizes:")
	for i, c := range res.Centers {
		fmt.Printf("  #%02d  (%7.2f, %7.2f, %7.2f)  %d points\n", i, c[0], c[1], c[2], sizes[i])
	}
}
