package gmeansmr

// One benchmark per table and figure of the paper's evaluation (§5), plus
// ablation benchmarks for the design decisions DESIGN.md calls out. The
// paper-shape metrics (discovered k, iterations, distance computations,
// shuffle bytes, heap frontier) are emitted via b.ReportMetric so
// `go test -bench` output doubles as a miniature reproduction report;
// EXPERIMENTS.md records the full-scale numbers.

import (
	"cmp"
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"gmeansmr/internal/core"
	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
	"gmeansmr/internal/kmeansmr"
	"gmeansmr/internal/lloyd"
	"gmeansmr/internal/model"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/obs"
	"gmeansmr/internal/seqgmeans"
	"gmeansmr/internal/serve"
	"gmeansmr/internal/stats"
	"gmeansmr/internal/vec"
	"gmeansmr/internal/xmeans"
)

// benchEnv materializes a mixture into a fresh DFS sized for ~32 splits.
func benchEnv(b *testing.B, spec dataset.Spec, cluster mr.Cluster) (kmeansmr.Env, *dataset.Dataset) {
	b.Helper()
	ds, err := dataset.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	split := spec.N * spec.Dim * 18 / 32
	if split < 4<<10 {
		split = 4 << 10
	}
	fs := dfs.New(split)
	ds.WriteToDFS(fs, "/data/points.txt")
	return kmeansmr.Env{FS: fs, Cluster: cluster, Input: "/data/points.txt", Dim: spec.Dim}, ds
}

func benchCluster() mr.Cluster {
	return mr.Cluster{Nodes: 4, MapSlotsPerNode: 2, ReduceSlotsPerNode: 2,
		TaskHeapBytes: 256 << 20, MaxHeapUsage: 0.66}
}

// --- Figure 1: center evolution on 10 clusters in R² ------------------------

func BenchmarkFig1CenterEvolution(b *testing.B) {
	spec := dataset.Spec{K: 10, Dim: 2, N: 10_000, CenterRange: 100, StdDev: 2,
		MinSeparation: 18, Seed: 1}
	for i := 0; i < b.N; i++ {
		env, _ := benchEnv(b, spec, benchCluster())
		res, err := core.Run(core.Config{Env: env, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.K), "k_found")
		b.ReportMetric(float64(res.Iterations), "iterations")
	}
}

// --- Figure 2: reducer heap frontier of TestClusters ------------------------

func BenchmarkFig2HeapModel(b *testing.B) {
	const n = 4000
	spec := dataset.Spec{K: 1, Dim: 2, N: n, StdDev: 3, Seed: 3}
	for i := 0; i < b.N; i++ {
		// Just below the 64 B/point frontier the job must die with heap
		// exhaustion; at the frontier it must pass.
		for _, tc := range []struct {
			heap int64
			ok   bool
		}{
			{int64(n)*core.HeapBytesPerPoint - 1, false},
			{int64(n) * core.HeapBytesPerPoint, true},
		} {
			env, _ := benchEnv(b, spec, benchCluster().WithTaskHeap(tc.heap))
			_, err := core.Run(core.Config{Env: env, Seed: 1,
				ForceStrategy: core.StrategyReducer, MaxIterations: 1})
			if tc.ok && err != nil {
				b.Fatalf("heap %d: unexpected error %v", tc.heap, err)
			}
			if !tc.ok && !errors.Is(err, mr.ErrHeapSpace) {
				b.Fatalf("heap %d: expected heap-space failure, got %v", tc.heap, err)
			}
		}
		b.ReportMetric(core.HeapBytesPerPoint, "bytes/point")
	}
}

// --- Table 1: G-means across the d-series ----------------------------------

func BenchmarkTable1GMeans(b *testing.B) {
	for _, k := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			spec := dataset.Spec{K: k, Dim: 10, N: 20_000, CenterRange: 100,
				StdDev: 1, MinSeparation: 8, Seed: int64(k)}
			for i := 0; i < b.N; i++ {
				env, _ := benchEnv(b, spec, benchCluster())
				res, err := core.Run(core.Config{Env: env, Seed: int64(100 + k)})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.K), "k_found")
				b.ReportMetric(float64(res.Iterations), "iterations")
				b.ReportMetric(float64(res.Counters.Get(kmeansmr.CounterDistances)), "distances")
			}
		})
	}
}

// --- Table 2: multi-k-means per-iteration cost ------------------------------

func BenchmarkTable2MultiKMeans(b *testing.B) {
	for _, k := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("kmax=%d", k), func(b *testing.B) {
			spec := dataset.Spec{K: k, Dim: 10, N: 20_000, CenterRange: 100,
				StdDev: 1, MinSeparation: 8, Seed: int64(k)}
			env, _ := benchEnv(b, spec, benchCluster())
			for i := 0; i < b.N; i++ {
				res, err := kmeansmr.RunMulti(kmeansmr.MultiConfig{
					Env: env, KMin: 1, KMax: k, Iterations: 1, Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Counters.Get(kmeansmr.CounterDistances)), "distances/iter")
			}
		})
	}
}

// --- Figure 3: the crossover ------------------------------------------------

func BenchmarkFig3Crossover(b *testing.B) {
	// The paper's separation is in growth order: a complete G-means run
	// costs O(nk) distances while one multi-k-means iteration costs
	// O(nk²), so quadrupling k must grow the multi-k-means cost much
	// faster — that is what pushes the curves across each other at
	// moderate k (≈100 in the paper, between 64 and 128 at this
	// reproduction's scale; see EXPERIMENTS.md Figure 3).
	run := func(k int) (gd, md int64) {
		spec := dataset.Spec{K: k, Dim: 10, N: 20_000, CenterRange: 100,
			StdDev: 1, MinSeparation: 8, Seed: 9}
		env, _ := benchEnv(b, spec, benchCluster())
		g, err := core.Run(core.Config{Env: env, Seed: 10})
		if err != nil {
			b.Fatal(err)
		}
		m, err := kmeansmr.RunMulti(kmeansmr.MultiConfig{
			Env: env, KMin: 1, KMax: k, Iterations: 1, Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		return g.Counters.Get(kmeansmr.CounterDistances),
			m.Counters.Get(kmeansmr.CounterDistances)
	}
	for i := 0; i < b.N; i++ {
		gLo, mLo := run(16)
		gHi, mHi := run(64)
		gGrowth := float64(gHi) / float64(gLo)
		mGrowth := float64(mHi) / float64(mLo)
		if mGrowth < 2*gGrowth {
			b.Fatalf("multi-k-means distance growth (%.1fx) should far exceed G-means growth (%.1fx) for 4x k",
				mGrowth, gGrowth)
		}
		b.ReportMetric(gGrowth, "gmeans_growth_4x_k")
		b.ReportMetric(mGrowth, "multik_growth_4x_k")
	}
}

// --- Table 3: quality vs multi-k-means --------------------------------------

func BenchmarkTable3Quality(b *testing.B) {
	const k = 32
	spec := dataset.Spec{K: k, Dim: 10, N: 15_000, CenterRange: 100,
		StdDev: 1, MinSeparation: 8, Seed: 13}
	for i := 0; i < b.N; i++ {
		env, ds := benchEnv(b, spec, benchCluster())
		g, err := core.Run(core.Config{Env: env, Seed: 14})
		if err != nil {
			b.Fatal(err)
		}
		gAssign := lloyd.Assign(ds.Points, g.Centers)
		gDist := lloyd.AverageDistance(ds.Points, g.Centers, gAssign)

		mcfg := kmeansmr.MultiConfig{Env: env, KMin: k, KMax: k, Iterations: 10, Seed: 15}
		m, err := kmeansmr.RunMulti(mcfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := kmeansmr.Evaluate(mcfg, m); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(gDist, "gmeans_avgdist")
		b.ReportMetric(m.AvgDistByK[k], "multik_avgdist")
		b.ReportMetric(m.AvgDistByK[k]/gDist, "multik/gmeans")
	}
}

// --- Figure 4: local minima -------------------------------------------------

func BenchmarkFig4LocalMinima(b *testing.B) {
	spec := dataset.Spec{K: 10, Dim: 2, N: 10_000, CenterRange: 100, StdDev: 2,
		MinSeparation: 18, Seed: 16}
	for i := 0; i < b.N; i++ {
		env, ds := benchEnv(b, spec, benchCluster())
		g, err := core.Run(core.Config{Env: env, Seed: 17})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(coverageOf(ds, g.Centers)), "gmeans_covered")
		b.ReportMetric(float64(g.K), "gmeans_k")

		mcfg := kmeansmr.MultiConfig{Env: env, KMin: 10, KMax: 10, Iterations: 10, Seed: 18}
		m, err := kmeansmr.RunMulti(mcfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(coverageOf(ds, m.CentersByK[10])), "multik_covered")
	}
}

func coverageOf(ds *dataset.Dataset, centers []vec.Vector) int {
	n := 0
	limit := 3 * ds.Spec.StdDev
	for _, truth := range ds.Centers {
		if _, d2 := vec.NearestIndex(truth, centers); d2 <= limit*limit {
			n++
		}
	}
	return n
}

// --- Table 4 / Figure 5: node scaling ---------------------------------------

func BenchmarkTable4NodeScaling(b *testing.B) {
	spec := dataset.Spec{K: 50, Dim: 10, N: 60_000, CenterRange: 100,
		StdDev: 1, MinSeparation: 8, Seed: 19}
	ds, err := dataset.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	split := spec.N * spec.Dim * 18 / 96
	for _, nodes := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			fs := dfs.New(split)
			ds.WriteToDFS(fs, "/data/points.txt")
			env := kmeansmr.Env{FS: fs, Cluster: benchCluster().WithNodes(nodes),
				Input: "/data/points.txt", Dim: spec.Dim}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{Env: env, Seed: 20,
					ForceStrategy: core.StrategyFewClusters})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.K), "k_found")
			}
		})
	}
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationCombiner quantifies the shuffle-volume reduction the
// paper attributes to combiners ("this effect is largely mitigated by the
// use of a combiner").
func BenchmarkAblationCombiner(b *testing.B) {
	spec := dataset.Spec{K: 16, Dim: 10, N: 20_000, CenterRange: 100,
		StdDev: 1, MinSeparation: 8, Seed: 23}
	for _, combine := range []bool{true, false} {
		name := "with-combiner"
		if !combine {
			name = "no-combiner"
		}
		b.Run(name, func(b *testing.B) {
			env, ds := benchEnv(b, spec, benchCluster())
			for i := 0; i < b.N; i++ {
				var it *kmeansmr.IterationResult
				var err error
				if combine {
					it, err = kmeansmr.Iterate(env, ds.Centers)
				} else {
					it, err = kmeansmr.IterateNoCombiner(env, ds.Centers, "")
				}
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(it.Job.Counters.Get(mr.CounterShuffleBytes)), "shuffle_bytes")
			}
		})
	}
}

// BenchmarkAblationStrategy compares the two normality-test strategies the
// hybrid switch chooses between.
func BenchmarkAblationStrategy(b *testing.B) {
	spec := dataset.Spec{K: 16, Dim: 10, N: 20_000, CenterRange: 100,
		StdDev: 1, MinSeparation: 8, Seed: 29}
	for _, strat := range []core.TestStrategy{core.StrategyFewClusters, core.StrategyReducer} {
		b.Run(string(strat), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env, _ := benchEnv(b, spec, benchCluster())
				res, err := core.Run(core.Config{Env: env, Seed: 30, ForceStrategy: strat})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.K), "k_found")
			}
		})
	}
}

// BenchmarkAblationMerge measures the paper's proposed post-processing
// (merge close centers) against the raw over-estimated center set.
func BenchmarkAblationMerge(b *testing.B) {
	spec := dataset.Spec{K: 20, Dim: 2, N: 20_000, CenterRange: 100, StdDev: 2,
		MinSeparation: 15, Seed: 31}
	for i := 0; i < b.N; i++ {
		env, _ := benchEnv(b, spec, benchCluster())
		res, err := core.Run(core.Config{Env: env, Seed: 32})
		if err != nil {
			b.Fatal(err)
		}
		merged := core.MergeCloseCenters(res.Centers, core.SuggestMergeRadius(res.Centers))
		b.ReportMetric(float64(res.K), "k_raw")
		b.ReportMetric(float64(len(merged)), "k_merged")
	}
}

// BenchmarkXMeansVsGMeans compares k recovery of the two iterative
// k-finders the paper discusses.
func BenchmarkXMeansVsGMeans(b *testing.B) {
	spec := dataset.Spec{K: 12, Dim: 4, N: 12_000, CenterRange: 100, StdDev: 1,
		MinSeparation: 15, Seed: 37}
	b.Run("gmeans", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env, _ := benchEnv(b, spec, benchCluster())
			res, err := core.Run(core.Config{Env: env, Seed: 38})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.K), "k_found")
		}
	})
	b.Run("xmeans", func(b *testing.B) {
		ds, err := dataset.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := xmeans.Run(ds.Points, xmeans.Config{KMax: 64, Seed: 39})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.K), "k_found")
		}
	})
}

// --- Serving path: assignment throughput -------------------------------------

// servingFixture builds an assignment server over a trained-shaped model
// (k centers in R^dim) plus a query stream drawn from the same mixture.
func servingFixture(b *testing.B, k, dim int) (*serve.Server, []vec.Vector) {
	b.Helper()
	ds, err := dataset.Generate(dataset.Spec{K: k, Dim: dim, N: 4096,
		CenterRange: 100, StdDev: 1, MinSeparation: 8, Seed: 71})
	if err != nil {
		b.Fatal(err)
	}
	m, err := model.FromTraining(ds.Centers, ds.Points, nil, model.Meta{Algorithm: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := serve.New(m, serve.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return srv, ds.Points
}

// BenchmarkAssign measures single-query latency on the serving hot path,
// across all cores the way a live server takes traffic. k=4 exercises the
// brute-force linear scan (k <= serve.DefaultBruteForceMaxK); the larger
// k values exercise kd-tree descent.
func BenchmarkAssign(b *testing.B) {
	for _, k := range []int{4, 64, 256} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			srv, queries := servingFixture(b, k, 10)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := srv.Assign(queries[i%len(queries)]); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkAssignBatch measures bulk-assignment throughput: one consistent
// model snapshot answering a whole batch, the shape /v1/assign/batch
// serves.
func BenchmarkAssignBatch(b *testing.B) {
	const batch = 1024
	for _, k := range []int{64, 256} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			srv, queries := servingFixture(b, k, 10)
			points := queries[:batch]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := srv.AssignBatch(points); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(batch, "points/op")
		})
	}
}

// --- Microbenchmarks of the hot kernels --------------------------------------

// BenchmarkIterationHotPath is the acceptance benchmark of the decoded-
// split cache + in-mapper combining work: one repeated MR k-means
// iteration (d=10, n=100k) on the legacy text-parse path (the pre-cache
// formulation: re-parse every record, emit per point, combine at spill)
// versus the cached point path. Before timing, it asserts that the two
// paths produce bit-identical centers, sizes and app.* counters — the
// speedup must not buy any change in results. (Both paths share this
// build's Dist2 kernel; its 4-lane unroll reassociates low-order bits
// relative to releases before the cache landed.)
func BenchmarkIterationHotPath(b *testing.B) {
	spec := dataset.Spec{K: 16, Dim: 10, N: 100_000, CenterRange: 100,
		StdDev: 1, MinSeparation: 8, Seed: 73}
	env, ds := benchEnv(b, spec, benchCluster())
	centers := ds.Centers

	// Equality gate (also warms the decode cache, so the cached runs below
	// measure the steady state the repeated-iteration workload lives in).
	cached, err := kmeansmr.Iterate(env, centers)
	if err != nil {
		b.Fatal(err)
	}
	legacy, err := kmeansmr.IterateLegacy(env, centers, "")
	if err != nil {
		b.Fatal(err)
	}
	for c := range centers {
		if !vec.Equal(cached.Centers[c], legacy.Centers[c]) || cached.Sizes[c] != legacy.Sizes[c] {
			b.Fatalf("cached and legacy paths disagree on center %d", c)
		}
	}
	for _, counter := range []string{kmeansmr.CounterDistances, kmeansmr.CounterPoints} {
		if cached.Job.Counters.Get(counter) != legacy.Job.Counters.Get(counter) {
			b.Fatalf("cached and legacy paths disagree on %s", counter)
		}
	}

	b.Run("legacy-text-parse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := kmeansmr.IterateLegacy(env, centers, ""); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(spec.N), "points")
	})
	b.Run("cached-inmapper", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := kmeansmr.Iterate(env, centers); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(spec.N), "points")
	})
	// The observability gate: the same cached iteration with a live trace
	// attached. Instrumentation is batch-level only (task and phase spans,
	// never per record), so this must stay within noise of cached-inmapper —
	// CI enforces <2% (see ci.yml).
	b.Run("cached-inmapper-observed", func(b *testing.B) {
		tracedEnv := env
		tracedEnv.Trace = obs.NewTrace()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tracedEnv.Trace.Reset()
			if _, err := kmeansmr.Iterate(tracedEnv, centers); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(spec.N), "points")
	})
}

// BenchmarkColdScan measures the cost of a *first* decode of a dataset —
// the cold-scan path a chained-job workload pays on its opening pass —
// for the text record format (ParseFloat per coordinate) against the
// binary point format (memory-bandwidth frame decode). Each iteration
// re-creates the file, which invalidates the decode cache, so every scan
// is cold. Both formats are first checked to decode bit-identical points.
func BenchmarkColdScan(b *testing.B) {
	spec := dataset.Spec{K: 16, Dim: 10, N: 100_000, CenterRange: 100,
		StdDev: 1, MinSeparation: 8, Seed: 79}
	ds, err := dataset.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	split := spec.N * spec.Dim * 18 / 32
	scanAll := func(fs *dfs.FS, path string) int {
		splits, err := fs.Splits(path)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for _, sp := range splits {
			ps, err := fs.OpenSplitPoints(sp, spec.Dim)
			if err != nil {
				b.Fatal(err)
			}
			n += ps.Len()
		}
		return n
	}

	var textBytes, binBytes []byte
	{
		fs := dfs.New(split)
		ds.WriteToDFS(fs, "/p")
		textBytes, _ = fs.ReadAll("/p")
		binBytes = dataset.EncodePointsBinary(ds.Points, spec.Dim)
	}

	// Equality gate: both encodings must decode to bit-identical points.
	{
		fsT, fsB := dfs.New(split), dfs.New(split)
		fsT.Create("/p", textBytes)
		fsB.Create("/p", binBytes)
		tp, err := dataset.LoadPoints(fsT, "/p")
		if err != nil {
			b.Fatal(err)
		}
		bp, err := dataset.LoadPoints(fsB, "/p")
		if err != nil {
			b.Fatal(err)
		}
		for i := range tp {
			if !vec.Equal(tp[i], bp[i]) {
				b.Fatalf("text and binary decode disagree on point %d", i)
			}
		}
	}

	for _, tc := range []struct {
		name string
		data []byte
	}{{"text-parse", textBytes}, {"binary-frames", binBytes}} {
		b.Run(tc.name, func(b *testing.B) {
			fs := dfs.New(split)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fs.Create("/p", tc.data) // invalidates the decode cache: scan below is cold
				if n := scanAll(fs, "/p"); n != spec.N {
					b.Fatalf("scanned %d points, want %d", n, spec.N)
				}
			}
			b.ReportMetric(float64(spec.N), "points")
			b.ReportMetric(float64(len(tc.data)), "file_bytes")
		})
	}
}

// BenchmarkReduceMerge measures the reduce-side merge of per-task sorted
// runs: the engine's k-way heap merge against the historical concatenate +
// stable-sort formulation it replaced. The shape mirrors a real shuffle —
// many runs (one per map task) of combined output, duplicate keys across
// runs — and the two paths are first checked to produce identical output.
func BenchmarkReduceMerge(b *testing.B) {
	const (
		numRuns = 64  // map tasks feeding one reducer
		perRun  = 512 // combined records per run
		keys    = 256 // distinct keys → heavy duplication
	)
	rng := rand.New(rand.NewSource(83))
	runs := make([][]mr.KV, numRuns)
	for t := range runs {
		run := make([]mr.KV, perRun)
		for i := range run {
			run[i] = mr.KV{Key: int64(rng.Intn(keys)), Value: mr.Int64Value(int64(t*perRun + i))}
		}
		slices.SortStableFunc(run, func(a, c mr.KV) int { return cmp.Compare(a.Key, c.Key) })
		runs[t] = run
	}

	// Equality gate: bit-for-bit the same merged sequence.
	want := mr.ConcatSortRuns(runs)
	got := mr.MergeRuns(runs)
	if len(want) != len(got) {
		b.Fatalf("merge lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			b.Fatalf("merge order diverges at record %d", i)
		}
	}

	b.Run("concat-stable-sort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := mr.ConcatSortRuns(runs); len(out) != numRuns*perRun {
				b.Fatal("bad merge")
			}
		}
		b.ReportMetric(numRuns, "runs")
	})
	b.Run("kway-heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := mr.MergeRuns(runs); len(out) != numRuns*perRun {
				b.Fatal("bad merge")
			}
		}
		b.ReportMetric(numRuns, "runs")
	})
}

// BenchmarkColumnarAssign is the acceptance benchmark of the columnar
// (dim-major) split layout + batched distance kernels: one repeated MR
// k-means assignment pass (d=16, n=100k, k=32) on the row-major per-point
// path (n·k scalar Dist2 calls through vec.NearestIndex) versus the
// columnar path (one fused vec.NearestBatch kernel call per split).
// Before timing, it asserts the two paths produce bit-identical centers,
// sizes and app.* counters — the layout must never change what the job
// computes. d=16 sits at the scalar kernel's early-exit threshold, so the
// comparison is against the scalar path at its best.
func BenchmarkColumnarAssign(b *testing.B) {
	spec := dataset.Spec{K: 32, Dim: 16, N: 100_000, CenterRange: 100,
		StdDev: 1, MinSeparation: 8, Seed: 89}
	colEnv, ds := benchEnv(b, spec, benchCluster())
	rowEnv := colEnv
	rowEnv.DisableColumnar = true
	centers := ds.Centers

	// Equality gate (also warms the decode cache and the columnar views, so
	// the timed runs below measure the steady state of a chained workload).
	col, err := kmeansmr.Iterate(colEnv, centers)
	if err != nil {
		b.Fatal(err)
	}
	row, err := kmeansmr.Iterate(rowEnv, centers)
	if err != nil {
		b.Fatal(err)
	}
	for c := range centers {
		if !vec.Equal(col.Centers[c], row.Centers[c]) || col.Sizes[c] != row.Sizes[c] {
			b.Fatalf("columnar and row-major paths disagree on center %d", c)
		}
	}
	for _, counter := range []string{kmeansmr.CounterDistances, kmeansmr.CounterPoints} {
		if col.Job.Counters.Get(counter) != row.Job.Counters.Get(counter) {
			b.Fatalf("columnar and row-major paths disagree on %s", counter)
		}
	}

	// Each op is the mean of assignReps iterations, so the CI single-op run
	// (-benchtime 1x) is robust against one-off scheduling or GC outliers.
	const assignReps = 3
	for _, tc := range []struct {
		name string
		env  kmeansmr.Env
	}{{"scalar-per-point", rowEnv}, {"columnar-batch", colEnv}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for r := 0; r < assignReps; r++ {
					if _, err := kmeansmr.Iterate(tc.env, centers); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(spec.N), "points")
			b.ReportMetric(assignReps, "iterations/op")
		})
	}
}

func BenchmarkKMeansIterationMR(b *testing.B) {
	spec := dataset.Spec{K: 32, Dim: 10, N: 50_000, CenterRange: 100,
		StdDev: 1, MinSeparation: 8, Seed: 41}
	env, ds := benchEnv(b, spec, benchCluster())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kmeansmr.Iterate(env, ds.Centers); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(spec.N), "points")
}

func BenchmarkAndersonDarling(b *testing.B) {
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = float64(i%997) / 997
	}
	buf := make([]float64, len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, xs)
		if _, err := stats.ADTest(buf, 0.0001, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParsePoint(b *testing.B) {
	line := dataset.FormatPoint(vec.Vector{12.345678, -9.87654321, 3.14159265,
		2.71828182, 100.5, 0.001, 42, 7.77, -55.5, 1e-9})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.ParsePointDim(line, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNearestIndex(b *testing.B) {
	ds, err := dataset.Generate(dataset.Spec{K: 100, Dim: 10, N: 100, Seed: 43})
	if err != nil {
		b.Fatal(err)
	}
	p := ds.Points[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec.NearestIndex(p, ds.Centers)
	}
}

// BenchmarkAblationKDTree measures the mrkd-tree nearest-center
// acceleration from the paper's related work (Pelleg & Moore): identical
// output, fewer distance computations per point.
func BenchmarkAblationKDTree(b *testing.B) {
	spec := dataset.Spec{K: 64, Dim: 4, N: 30_000, CenterRange: 100,
		StdDev: 1, MinSeparation: 10, Seed: 47}
	for _, useTree := range []bool{false, true} {
		name := "linear-scan"
		if useTree {
			name = "kdtree"
		}
		b.Run(name, func(b *testing.B) {
			env, ds := benchEnv(b, spec, benchCluster())
			env.UseKDTree = useTree
			for i := 0; i < b.N; i++ {
				it, err := kmeansmr.Iterate(env, ds.Centers)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(it.Job.Counters.Get(kmeansmr.CounterDistances)), "distances")
			}
		})
	}
}

// BenchmarkAblationConfirmRounds compares the paper's literal single-accept
// freezing against the confirmed variant this reproduction defaults to.
func BenchmarkAblationConfirmRounds(b *testing.B) {
	spec := dataset.Spec{K: 64, Dim: 10, N: 30_000, CenterRange: 100,
		StdDev: 1, MinSeparation: 8, Seed: 49}
	ds, err := dataset.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	for _, confirm := range []int{1, 2} {
		b.Run(fmt.Sprintf("confirm=%d", confirm), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env, _ := benchEnv(b, spec, benchCluster())
				res, err := core.Run(core.Config{Env: env, Seed: 50, ConfirmRounds: confirm})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.K), "k_found")
				b.ReportMetric(float64(coverageOf(ds, res.Centers)), "covered")
				b.ReportMetric(float64(res.Iterations), "iterations")
			}
		})
	}
}

// BenchmarkAblationMultiSeeding compares the paper's random multi-k-means
// seeding with the k-means++ production initializer it recommends.
func BenchmarkAblationMultiSeeding(b *testing.B) {
	const k = 32
	spec := dataset.Spec{K: k, Dim: 10, N: 15_000, CenterRange: 100,
		StdDev: 1, MinSeparation: 8, Seed: 55}
	for _, seeding := range []kmeansmr.MultiSeeding{kmeansmr.MultiSeedRandom, kmeansmr.MultiSeedPlusPlus} {
		name := "random"
		if seeding == kmeansmr.MultiSeedPlusPlus {
			name = "plusplus"
		}
		b.Run(name, func(b *testing.B) {
			env, _ := benchEnv(b, spec, benchCluster())
			for i := 0; i < b.N; i++ {
				cfg := kmeansmr.MultiConfig{Env: env, KMin: k, KMax: k,
					Iterations: 10, Seeding: seeding, Seed: 56}
				res, err := kmeansmr.RunMulti(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := kmeansmr.Evaluate(cfg, res); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AvgDistByK[k], "avgdist")
			}
		})
	}
}

// BenchmarkSeqVsMRGMeans compares the original sequential G-means
// (principal-component child placement, Hamerly & Elkan) with the paper's
// MapReduce adaptation (random children, parallel doubling) on k recovery.
func BenchmarkSeqVsMRGMeans(b *testing.B) {
	spec := dataset.Spec{K: 16, Dim: 4, N: 16_000, CenterRange: 100, StdDev: 1,
		MinSeparation: 12, Seed: 61}
	ds, err := dataset.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential-principal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := seqgmeans.Run(ds.Points, seqgmeans.Config{Seed: 62})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.K), "k_found")
			b.ReportMetric(float64(coverageOf(ds, res.Centers)), "covered")
		}
	})
	b.Run("sequential-random", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := seqgmeans.Run(ds.Points, seqgmeans.Config{Init: seqgmeans.InitRandom, Seed: 62})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.K), "k_found")
			b.ReportMetric(float64(coverageOf(ds, res.Centers)), "covered")
		}
	})
	b.Run("mapreduce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env, _ := benchEnv(b, spec, benchCluster())
			res, err := core.Run(core.Config{Env: env, Seed: 62})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.K), "k_found")
			b.ReportMetric(float64(coverageOf(ds, res.Centers)), "covered")
		}
	})
}

// BenchmarkAblationCandidatePolicy compares the paper's fused random
// candidate picking against principal-component placement via the
// additional MapReduce job the paper mentions: better split directions for
// one more dataset read per round.
func BenchmarkAblationCandidatePolicy(b *testing.B) {
	spec := dataset.Spec{K: 32, Dim: 10, N: 20_000, CenterRange: 100, StdDev: 1,
		MinSeparation: 8, Seed: 67}
	ds, err := dataset.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	for _, policy := range []core.CandidatePolicy{core.CandidatesRandom, core.CandidatesPCA} {
		b.Run(policy.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env, _ := benchEnv(b, spec, benchCluster())
				env.FS.ResetCounters()
				res, err := core.Run(core.Config{Env: env, Seed: 68, Candidates: policy})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.K), "k_found")
				b.ReportMetric(float64(coverageOf(ds, res.Centers)), "covered")
				b.ReportMetric(float64(env.FS.DatasetReads()), "dataset_reads")
			}
		})
	}
}
