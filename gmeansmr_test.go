package gmeansmr

import (
	"bytes"
	"math"
	"testing"

	"gmeansmr/internal/vec"
)

func TestClusterFacadeEndToEnd(t *testing.T) {
	ds, err := GenerateDataset(DatasetSpec{K: 6, Dim: 2, N: 6000, MinSeparation: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(ds.Points, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 6 || res.K > 12 {
		t.Fatalf("discovered k=%d for true k=6", res.K)
	}
	if len(res.Assignment) != len(ds.Points) {
		t.Fatalf("assignment length %d", len(res.Assignment))
	}
	for i, a := range res.Assignment {
		if a < 0 || a >= res.K {
			t.Fatalf("assignment[%d]=%d out of range", i, a)
		}
		// The assignment must actually be nearest-center.
		want, _ := vec.NearestIndex(ds.Points[i], res.Centers)
		if want != a {
			t.Fatalf("assignment[%d]=%d, nearest is %d", i, a, want)
		}
	}
	for _, truth := range ds.Centers {
		_, d2 := vec.NearestIndex(truth, res.Centers)
		if math.Sqrt(d2) > 4 {
			t.Errorf("no discovered center near truth %v", truth)
		}
	}
	if res.Counters["app.distance.computations"] == 0 {
		t.Error("counters not exposed")
	}
	if res.Iterations < 3 {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

// TestModelServeFacadeEndToEnd walks the full production path: train,
// convert to a model, persist, reload, serve — and checks the served
// (kd-tree) answers against brute-force nearest center.
func TestModelServeFacadeEndToEnd(t *testing.T) {
	ds, err := GenerateDataset(DatasetSpec{K: 10, Dim: 3, N: 8000, MinSeparation: 20, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(ds.Points, Options{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildModel(res, ds.Points)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != res.K || m.Meta.Algorithm != "gmeans-mr" || m.Meta.Iterations != res.Iterations {
		t.Fatalf("model metadata: %+v", m.Meta)
	}
	var total int64
	for _, c := range m.Counts {
		total += c
	}
	if total != int64(len(ds.Points)) {
		t.Fatalf("counts sum to %d, want %d", total, len(ds.Points))
	}

	var buf bytes.Buffer
	if err := SaveModel(m, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(loaded, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ds.Points); i += 97 {
		got, err := srv.Assign(ds.Points[i])
		if err != nil {
			t.Fatal(err)
		}
		want, wantD2 := vec.NearestIndex(ds.Points[i], loaded.Centers)
		if got.Cluster != want || got.Distance != math.Sqrt(wantD2) {
			t.Fatalf("point %d: served %+v, brute force wants cluster %d distance %g",
				i, got, want, math.Sqrt(wantD2))
		}
	}
}

func TestClusterFacadeValidation(t *testing.T) {
	if _, err := Cluster(nil, Options{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Cluster([]Point{{1, 2}, {1}}, Options{}); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestClusterFacadeMaxK(t *testing.T) {
	ds, err := GenerateDataset(DatasetSpec{K: 12, Dim: 2, N: 6000, MinSeparation: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(ds.Points, Options{Seed: 4, MaxK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 5 {
		t.Errorf("MaxK=5 but k=%d", res.K)
	}
}

func TestClusterFacadeMergeAuto(t *testing.T) {
	ds, err := GenerateDataset(DatasetSpec{K: 8, Dim: 2, N: 8000, MinSeparation: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Cluster(ds.Points, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Cluster(ds.Points, Options{Seed: 6, MergeRadius: MergeAuto})
	if err != nil {
		t.Fatal(err)
	}
	if merged.K > plain.K {
		t.Errorf("auto-merge increased k: %d > %d", merged.K, plain.K)
	}
	if merged.K < 6 {
		t.Errorf("auto-merge collapsed too far: k=%d", merged.K)
	}
}

func TestClusterFacadeNodesOption(t *testing.T) {
	ds, err := GenerateDataset(DatasetSpec{K: 4, Dim: 2, N: 3000, MinSeparation: 25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(ds.Points, Options{Seed: 8, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 4 || res.K > 8 {
		t.Errorf("k=%d with 2-node cluster", res.K)
	}
}
