package gmeansmr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"time"

	"gmeansmr/internal/core"
	"gmeansmr/internal/criteria"
	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
	"gmeansmr/internal/kmeansmr"
	"gmeansmr/internal/lloyd"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/mrdist"
	"gmeansmr/internal/obs"
	"gmeansmr/internal/seqgmeans"
	"gmeansmr/internal/vec"
	"gmeansmr/internal/xmeans"
)

// Algorithm selects which k-discovery algorithm a Clusterer runs. All four
// produce the same Result shape, so the paper's contenders can be swapped
// behind one call site.
type Algorithm string

// Selectable algorithms.
const (
	// AlgorithmGMeansMR is the paper's contribution: G-means on MapReduce,
	// cost ∝ n·k. The default.
	AlgorithmGMeansMR Algorithm = "gmeans-mr"
	// AlgorithmSeqGMeans is the original in-memory G-means of Hamerly &
	// Elkan — the algorithm the paper adapted.
	AlgorithmSeqGMeans Algorithm = "seq-gmeans"
	// AlgorithmXMeans is X-means (Pelleg & Moore), the BIC-driven
	// k-estimator from the paper's related work. In-memory.
	AlgorithmXMeans Algorithm = "xmeans"
	// AlgorithmMultiK is the paper's baseline: multi-k-means over a range
	// of candidate k (cost ∝ n·k²) followed by a selection criterion.
	AlgorithmMultiK Algorithm = "multik"
)

// Backend selects the MapReduce execution backend of the MR algorithms.
type Backend string

// Selectable backends.
const (
	// BackendLocal executes tasks on in-process goroutine pools — the
	// engine's reference implementation. The default.
	BackendLocal Backend = "local"
	// BackendProc executes tasks on worker subprocesses, one per simulated
	// cluster node, scheduled over HTTP by internal/mrdist with straggler
	// speculation and retry around worker failure. Centers, sizes and job
	// counters are pinned bit-identical to BackendLocal. The workers are
	// spawned by re-executing the current binary, so main must call
	// mrdist.MaybeWorker first thing (the shipped CLIs do).
	BackendProc Backend = "proc"
)

// Criterion selects how AlgorithmMultiK picks k from the per-candidate
// quality curve.
type Criterion string

// Selection criteria for AlgorithmMultiK.
const (
	// CriterionElbow picks the knee of the WCSS curve. The default; the
	// only criterion that needs no point-level pass.
	CriterionElbow Criterion = "elbow"
	// CriterionJump applies the jump method (transformed distortion).
	CriterionJump Criterion = "jump"
	// CriterionSilhouette maximizes the sampled average silhouette.
	CriterionSilhouette Criterion = "silhouette"
	// CriterionBIC maximizes the Bayesian Information Criterion.
	CriterionBIC Criterion = "bic"
)

// Progress is one observability event of a running Clusterer. MR G-means
// emits one per G-means round; the other algorithms emit per round,
// iteration or cluster test. Events are delivered synchronously on the
// driver goroutine — a slow callback slows the run.
type Progress struct {
	// Algorithm identifies the emitting run.
	Algorithm Algorithm
	// Round is the 1-based round / iteration / test number.
	Round int
	// K is the number of centers discovered (or currently held) so far.
	// Multi-k-means maintains every candidate k at once and reports zero.
	K int
	// Active is the number of clusters still under test (MR and sequential
	// G-means; zero elsewhere).
	Active int
	// Strategy names the phase: the normality-test job for MR G-means
	// (TestClusters / TestFewClusters), the algorithm name otherwise.
	Strategy string
	// Counters snapshots the engine's cumulative cost accounting at event
	// time (MR algorithms only; nil elsewhere).
	Counters map[string]int64
	// Duration is the wall time of this round alone, when the algorithm
	// tracks it — never a cumulative total. Every emitting algorithm uses
	// the same per-round semantics (MR G-means rounds, multi-k-means
	// iterations including their driver-side center updates, the merge
	// round), so durations from different algorithms chart comparably.
	Duration time.Duration
	// Phases breaks Duration down by round phase (MR G-means only:
	// "kmeans", "kfnc", "test"); nil elsewhere.
	Phases map[string]time.Duration
}

// Result.Counters keys for the cost quantities of the paper's model.
// Further engine counters (combine/reduce records, heap peaks, ...) appear
// under their internal names; these four are the ones callers typically
// read.
const (
	// CounterDatasetReads records whole-dataset scan passes — the paper's
	// dominant I/O cost unit (O(log₂ k) reads for MR G-means vs one per
	// iteration for multi-k-means).
	CounterDatasetReads = "dfs.dataset.reads"
	// CounterDistances counts point-to-center distance computations, the
	// unit of the paper's computation-cost model.
	CounterDistances = kmeansmr.CounterDistances
	// CounterADTests counts Anderson–Darling test executions.
	CounterADTests = core.CounterADTests
	// CounterShuffleBytes measures the MapReduce shuffle volume in bytes.
	CounterShuffleBytes = mr.CounterShuffleBytes
)

// MetricBackendFallbacks counts runs that downgraded from the proc
// backend to the local backend under WithBackendFallback. It ticks on
// the WithObserver registry.
const MetricBackendFallbacks = "gmeansmr_backend_fallbacks_total"

// config is the resolved option set of a Clusterer.
type config struct {
	algorithm   Algorithm
	backend     Backend
	fallback    bool
	nodes       int
	alpha       float64
	maxK        int
	maxIter     int
	mergeRadius float64
	seed        int64
	useKDTree   bool
	splitSize   int
	strategy    core.TestStrategy
	kMin        int
	kMax        int
	kStep       int
	multiIters  int
	criterion   Criterion
	progress    func(Progress)
	traceW      io.Writer
	traceJSONW  io.Writer
	observer    *obs.Registry

	err error // first option error, surfaced by New
}

// Option configures a Clusterer. Options validate eagerly where possible;
// an invalid value surfaces as an error from New.
type Option func(*config)

// WithAlgorithm selects the clustering algorithm (default AlgorithmGMeansMR).
func WithAlgorithm(a Algorithm) Option {
	return func(c *config) {
		switch a {
		case AlgorithmGMeansMR, AlgorithmSeqGMeans, AlgorithmXMeans, AlgorithmMultiK:
			c.algorithm = a
		default:
			c.setErr(fmt.Errorf("gmeansmr: unknown algorithm %q", a))
		}
	}
}

// WithBackend selects the MapReduce execution backend (default
// BackendLocal). Ignored by the in-memory algorithms.
func WithBackend(b Backend) Option {
	return func(c *config) {
		switch b {
		case "", BackendLocal:
			c.backend = BackendLocal
		case BackendProc:
			c.backend = BackendProc
		default:
			c.setErr(fmt.Errorf("gmeansmr: unknown backend %q", b))
		}
	}
}

// WithBackendFallback lets a BackendProc run degrade gracefully: when
// the distributed backend is unavailable — its workers failed to start,
// or every worker died mid-run — the run restarts on BackendLocal
// instead of failing, with the reason logged and counted on the
// WithObserver registry (MetricBackendFallbacks). Only backend
// unavailability triggers the downgrade; task errors, invalid input and
// context cancellation still fail the run. No effect on BackendLocal.
func WithBackendFallback() Option {
	return func(c *config) { c.fallback = true }
}

// WithNodes sets the simulated MapReduce cluster size (default 4, the
// paper's testbed). Ignored by the in-memory algorithms.
func WithNodes(n int) Option {
	return func(c *config) {
		if n <= 0 {
			c.setErr(fmt.Errorf("gmeansmr: nodes must be positive, got %d", n))
			return
		}
		c.nodes = n
	}
}

// WithAlpha sets the Anderson–Darling significance level used by both
// G-means variants (default 0.0001, the strict level of the original
// G-means paper).
func WithAlpha(a float64) Option {
	return func(c *config) {
		if a < 0 || a >= 1 || math.IsNaN(a) {
			c.setErr(fmt.Errorf("gmeansmr: alpha must be in [0,1), got %g", a))
			return
		}
		c.alpha = a
	}
}

// WithMaxK stops splitting once this many centers exist.
func WithMaxK(k int) Option {
	return func(c *config) {
		if k < 0 {
			c.setErr(fmt.Errorf("gmeansmr: MaxK must be non-negative, got %d", k))
			return
		}
		c.maxK = k
	}
}

// WithMaxIterations caps the driver rounds of the iterative algorithms.
func WithMaxIterations(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.setErr(fmt.Errorf("gmeansmr: MaxIterations must be non-negative, got %d", n))
			return
		}
		c.maxIter = n
	}
}

// WithMergeRadius enables the post-processing merge of final centers
// closer than r — the paper's proposed remedy for over-estimated k. Pass
// MergeAuto to derive the radius from the discovered centers. Negative
// values other than MergeAuto are rejected.
func WithMergeRadius(r float64) Option {
	return func(c *config) {
		if err := validateMergeRadius(r); err != nil {
			c.setErr(err)
			return
		}
		c.mergeRadius = r
	}
}

// WithSeed makes the run deterministic.
func WithSeed(s int64) Option { return func(c *config) { c.seed = s } }

// WithKDTree accelerates the MR mappers' nearest-center queries with a
// k-d tree over the center set. Results are identical; only the distance
// count drops.
func WithKDTree() Option { return func(c *config) { c.useKDTree = true } }

// WithSplitSize pins the simulated DFS split size in bytes. Zero (the
// default) right-sizes splits from the staged dataset so every map slot
// gets a few tasks.
func WithSplitSize(bytes int) Option {
	return func(c *config) {
		if bytes < 0 {
			c.setErr(fmt.Errorf("gmeansmr: split size must be non-negative, got %d", bytes))
			return
		}
		c.splitSize = bytes
	}
}

// WithTestStrategy pins the MR G-means normality-test strategy
// ("TestClusters" or "TestFewClusters") instead of the paper's hybrid
// switch rule.
func WithTestStrategy(s string) Option {
	return func(c *config) {
		switch core.TestStrategy(s) {
		case "", core.StrategyReducer, core.StrategyFewClusters:
			c.strategy = core.TestStrategy(s)
		default:
			c.setErr(fmt.Errorf("gmeansmr: unknown test strategy %q", s))
		}
	}
}

// WithKRange sets the candidate k range of AlgorithmMultiK (default
// 1..16 step 1). At run time the upper bound is clamped to the dataset's
// point count, since no candidate can seed more centers than there are
// points.
func WithKRange(min, max, step int) Option {
	return func(c *config) {
		if min < 1 || max < min || step < 1 {
			c.setErr(fmt.Errorf("gmeansmr: invalid k range [%d,%d] step %d", min, max, step))
			return
		}
		c.kMin, c.kMax, c.kStep = min, max, step
	}
}

// WithMultiKIterations sets the number of chained k-means jobs
// AlgorithmMultiK runs (default 10, as in the paper).
func WithMultiKIterations(n int) Option {
	return func(c *config) {
		if n < 1 {
			c.setErr(fmt.Errorf("gmeansmr: multi-k iterations must be positive, got %d", n))
			return
		}
		c.multiIters = n
	}
}

// WithCriterion selects how AlgorithmMultiK picks k (default
// CriterionElbow). Criteria other than elbow need point-level access and
// materialize the staged dataset once.
func WithCriterion(cr Criterion) Option {
	return func(c *config) {
		switch cr {
		case CriterionElbow, CriterionJump, CriterionSilhouette, CriterionBIC:
			c.criterion = cr
		default:
			c.setErr(fmt.Errorf("gmeansmr: unknown criterion %q", cr))
		}
	}
}

// WithProgress registers an observer for per-round Progress events.
func WithProgress(fn func(Progress)) Option {
	return func(c *config) { c.progress = fn }
}

// WithTrace records a span trace of each Run — driver phases, rounds,
// MapReduce phases and per-task spans — and writes it to w in Chrome
// trace-event format when the run completes (load the file in
// chrome://tracing or https://ui.perfetto.dev). Spans are batch-level
// only, never per record.
func WithTrace(w io.Writer) Option {
	return func(c *config) {
		if w == nil {
			c.setErr(fmt.Errorf("gmeansmr: WithTrace requires a non-nil writer"))
			return
		}
		c.traceW = w
	}
}

// WithTraceJSON is WithTrace in the JSON event-log format (absolute
// timestamps, one object per span) for programmatic consumers. Both
// options may be set; one recorder feeds both writers.
func WithTraceJSON(w io.Writer) Option {
	return func(c *config) {
		if w == nil {
			c.setErr(fmt.Errorf("gmeansmr: WithTraceJSON requires a non-nil writer"))
			return
		}
		c.traceJSONW = w
	}
}

// WithObserver registers a metrics registry the run ticks: per-round and
// per-phase latency histograms, round counters, an active-clusters gauge.
// The same registry can back a /metrics endpoint (see Registry and
// cmd/gmeans -debug-addr).
func WithObserver(r *Registry) Option {
	return func(c *config) {
		if r == nil {
			c.setErr(fmt.Errorf("gmeansmr: WithObserver requires a non-nil registry"))
			return
		}
		c.observer = r
	}
}

func (c *config) setErr(err error) {
	if c.err == nil {
		c.err = err
	}
}

func validateMergeRadius(r float64) error {
	if math.IsNaN(r) || (r < 0 && r != MergeAuto) {
		return fmt.Errorf("gmeansmr: merge radius must be non-negative or MergeAuto, got %g", r)
	}
	return nil
}

// emit delivers a progress event to the configured observer, stamping the
// algorithm.
func (c *config) emit(ev Progress) {
	if c.progress == nil {
		return
	}
	ev.Algorithm = c.algorithm
	c.progress(ev)
}

// Clusterer is the long-running training engine of the package: construct
// one with New, then Run it against a DataSource under a context. A
// Clusterer is immutable and safe to reuse across runs.
type Clusterer struct {
	cfg config
}

// New builds a Clusterer from functional options, validating them. The
// zero-option Clusterer runs MR G-means with the paper's configuration:
// α=0.0001 Anderson–Darling, two k-means passes per round, a 4-node
// simulated cluster.
func New(opts ...Option) (*Clusterer, error) {
	cfg := config{
		algorithm: AlgorithmGMeansMR,
		criterion: CriterionElbow,
		kMin:      1,
		kMax:      16,
		kStep:     1,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	return &Clusterer{cfg: cfg}, nil
}

// Run executes the configured algorithm over the points of src. The
// context cancels or deadlines the run: MR algorithms abort within one
// MapReduce wave, in-memory algorithms between rounds, both returning an
// error wrapping ctx.Err().
//
// Result.Assignment is populated when the points are available in memory
// (FromPoints sources, and the in-memory algorithms which materialize
// their input); it is nil when an MR algorithm ran over a streaming
// source, because computing it would require a second pass.
func (c *Clusterer) Run(ctx context.Context, src DataSource) (*Result, error) {
	if src == nil {
		return nil, fmt.Errorf("gmeansmr: nil DataSource")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// One span recorder per run (the Clusterer itself is immutable and
	// reusable); it only exists when a trace writer asked for it, so
	// untraced runs thread a nil *Trace whose spans cost a pointer test.
	var tr *obs.Trace
	if c.cfg.traceW != nil || c.cfg.traceJSONW != nil {
		tr = obs.NewTrace()
	}
	runSpan := tr.StartSpan("clusterer-run", "run").SetArg("algorithm", string(c.cfg.algorithm))
	res, err := c.dispatch(ctx, src, tr)
	runSpan.End()
	if werr := c.writeTrace(tr); werr != nil && err == nil {
		return nil, werr
	}
	return res, err
}

func (c *Clusterer) dispatch(ctx context.Context, src DataSource, tr *obs.Trace) (*Result, error) {
	switch c.cfg.algorithm {
	case AlgorithmSeqGMeans:
		return c.runSeqGMeans(ctx, src)
	case AlgorithmXMeans:
		return c.runXMeans(ctx, src)
	case AlgorithmMultiK:
		return c.withFallback(ctx, src, tr, c.runMultiK)
	default:
		return c.withFallback(ctx, src, tr, c.runGMeansMR)
	}
}

// withFallback runs an MR algorithm on the configured backend and, when
// WithBackendFallback is set and the proc backend reports itself
// unavailable, restages and reruns the whole algorithm on the local
// backend. A full rerun (not a mid-run switch) keeps the cost counters
// honest: they describe exactly one complete execution.
func (c *Clusterer) withFallback(ctx context.Context, src DataSource, tr *obs.Trace, run func(context.Context, DataSource, *obs.Trace, Backend) (*Result, error)) (*Result, error) {
	res, err := run(ctx, src, tr, c.cfg.backend)
	if err == nil || !c.cfg.fallback || c.cfg.backend != BackendProc ||
		!errors.Is(err, mrdist.ErrBackendUnavailable) || ctx.Err() != nil {
		return res, err
	}
	log.Printf("gmeansmr: proc backend unavailable, falling back to local backend: %v", err)
	c.cfg.observer.Counter(MetricBackendFallbacks).Inc()
	return run(ctx, src, tr, BackendLocal)
}

// writeTrace exports the run's spans to the configured writers. Traces
// are written even for failed runs — a trace of the phases that did run
// is exactly what diagnosing the failure needs.
func (c *Clusterer) writeTrace(tr *obs.Trace) error {
	if tr == nil {
		return nil
	}
	if c.cfg.traceW != nil {
		if err := tr.WriteChromeTrace(c.cfg.traceW); err != nil {
			return fmt.Errorf("gmeansmr: writing trace: %w", err)
		}
	}
	if c.cfg.traceJSONW != nil {
		if err := tr.WriteJSON(c.cfg.traceJSONW); err != nil {
			return fmt.Errorf("gmeansmr: writing trace event log: %w", err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Staging: DataSource → simulated DFS
// ---------------------------------------------------------------------------

// staged is a dataset loaded into the simulated DFS, ready for MapReduce.
type staged struct {
	env kmeansmr.Env
	n   int
	// cleanup tears down the run's execution backend (the proc backend's
	// worker fleet); callers defer it. Never nil.
	cleanup func()
}

const stagedPath = "/data/points.txt"

// stage streams src into a fresh simulated DFS — validating dimensionality
// and finiteness point by point, never materializing the dataset — and
// right-sizes the splits so every map slot gets a few tasks. backend
// selects the execution backend for this staging (normally the
// configured one; the fallback path restages on BackendLocal).
func (c *Clusterer) stage(ctx context.Context, src DataSource, tr *obs.Trace, backend Backend) (*staged, error) {
	stageSpan := tr.StartSpan("stage", "phase")
	defer stageSpan.End()
	cluster := mr.DefaultCluster()
	if c.cfg.nodes > 0 {
		cluster = cluster.WithNodes(c.cfg.nodes)
	}
	fs := dfs.New(c.cfg.splitSize)
	rd, err := src.Open()
	if err != nil {
		return nil, err
	}
	defer rd.Close()

	w := fs.Writer(stagedPath)
	n, dim := 0, 0
	for {
		if n%8192 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		p, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := checkPoint(p, n, &dim); err != nil {
			return nil, err
		}
		w.WriteString(dataset.FormatPoint(p))
		w.WriteString("\n")
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("gmeansmr: no points")
	}
	w.Close()

	if c.cfg.splitSize == 0 {
		total, err := fs.Size(stagedPath)
		if err != nil {
			return nil, err
		}
		split := int(total) / (cluster.MapCapacity() * 4)
		if split < 4<<10 {
			split = 4 << 10
		}
		fs.SetSplitSize(split)
	}
	stageSpan.SetArg("points", n).SetArg("dim", dim)
	env := kmeansmr.Env{
		FS: fs, Cluster: cluster, Input: stagedPath,
		Dim: dim, UseKDTree: c.cfg.useKDTree, Ctx: ctx,
		Trace: tr,
	}
	st := &staged{env: env, n: n, cleanup: func() {}}
	if backend == BackendProc {
		// One worker fleet per run, shared by every chained job; the
		// observer registry (when set) receives the runner's scheduling
		// metrics next to the facade's own.
		runner := mrdist.NewProcRunner(mrdist.Options{Registry: c.cfg.observer})
		st.env.Runner = runner
		st.cleanup = runner.Close
	}
	return st, nil
}

// ---------------------------------------------------------------------------
// Algorithm backends
// ---------------------------------------------------------------------------

func (c *Clusterer) runGMeansMR(ctx context.Context, src DataSource, tr *obs.Trace, backend Backend) (*Result, error) {
	st, err := c.stage(ctx, src, tr, backend)
	if err != nil {
		return nil, err
	}
	defer st.cleanup()
	cfg := core.Config{
		Env:           st.env,
		Alpha:         c.cfg.alpha,
		MaxK:          c.cfg.maxK,
		MaxIterations: c.cfg.maxIter,
		ForceStrategy: c.cfg.strategy,
		Seed:          c.cfg.seed,
	}
	if c.cfg.mergeRadius > 0 {
		cfg.MergeRadius = c.cfg.mergeRadius
	}
	if c.cfg.progress != nil || c.cfg.observer != nil {
		reg := c.cfg.observer // nil-safe: handles no-op without a registry
		cfg.Progress = func(it core.IterationStats, counters map[string]int64) {
			if it.Strategy == core.StrategyMerge {
				// The closing merge is not a test round; count it apart so
				// gmeans_rounds_total matches Result.Iterations.
				reg.Counter("gmeans_merges_total").Inc()
			} else {
				reg.Counter("gmeans_rounds_total").Inc()
				reg.Gauge("gmeans_active_clusters").Set(int64(it.ActiveBefore))
				reg.Histogram("gmeans_round_seconds", nil).Observe(it.Duration.Seconds())
				for phase, d := range it.Phases {
					reg.Histogram(`gmeans_phase_seconds{phase="`+phase+`"}`, nil).Observe(d.Seconds())
				}
			}
			c.cfg.emit(Progress{
				Round:    it.Iteration,
				K:        it.FoundAfter,
				Active:   it.ActiveBefore,
				Strategy: string(it.Strategy),
				Counters: counters,
				Duration: it.Duration,
				Phases:   it.Phases,
			})
		}
	}
	res, err := core.RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	finSpan := tr.StartSpan("finalize", "phase")
	counters := res.Counters.Snapshot()
	counters[CounterDatasetReads] = st.env.FS.DatasetReads()
	centers := res.Centers
	if c.cfg.mergeRadius == MergeAuto {
		// The auto-radius merge runs here rather than in core (the radius
		// derives from the discovered centers); report it as the same
		// merge round an explicit radius gets from the driver.
		mergeStart := time.Now()
		centers = core.MergeCloseCenters(centers, core.SuggestMergeRadius(centers))
		c.cfg.emit(Progress{
			Round:    res.Iterations + 1,
			K:        len(centers),
			Strategy: string(core.StrategyMerge),
			Counters: counters,
			Duration: time.Since(mergeStart),
		})
	}
	out := &Result{
		Algorithm:  AlgorithmGMeansMR,
		Centers:    centers,
		K:          len(centers),
		Iterations: res.Iterations,
		Assignment: assignIfAvailable(src, centers),
		Counters:   counters,
	}
	finSpan.End()
	return out, nil
}

func (c *Clusterer) runMultiK(ctx context.Context, src DataSource, tr *obs.Trace, backend Backend) (*Result, error) {
	st, err := c.stage(ctx, src, tr, backend)
	if err != nil {
		return nil, err
	}
	defer st.cleanup()
	// A k-means candidate needs k distinct seeds, so cap the sweep at the
	// staged point count: WithKRange(1, 8) over a 3-point dataset sweeps
	// k=1..3 instead of failing the k=4 seeding.
	kMin, kMax := c.cfg.kMin, c.cfg.kMax
	if kMax > st.n {
		kMax = st.n
	}
	if kMin > kMax {
		kMin = kMax
	}
	mcfg := kmeansmr.MultiConfig{
		Env:        st.env,
		KMin:       kMin,
		KMax:       kMax,
		KStep:      c.cfg.kStep,
		Iterations: c.cfg.multiIters,
		// k-means++ over an oversampled pool: the paper's random seeding is
		// cheaper but yields candidate clusterings poor enough to mislead
		// the k-selection criteria; the production facade pays for quality.
		Seeding: kmeansmr.MultiSeedPlusPlus,
		Seed:    c.cfg.seed,
	}
	if c.cfg.progress != nil {
		mcfg.Progress = func(iter int, d time.Duration) {
			c.cfg.emit(Progress{Round: iter, Strategy: "multi-k-means", Duration: d})
		}
	}
	mres, err := kmeansmr.RunMulti(mcfg)
	if err != nil {
		return nil, err
	}
	if err := kmeansmr.Evaluate(mcfg, mres); err != nil {
		return nil, err
	}
	var cs []criteria.Clustering
	for k := kMin; k <= kMax; k += c.cfg.kStep {
		cs = append(cs, criteria.Clustering{K: k, Centers: mres.CentersByK[k], WCSS: mres.WCSSByK[k]})
	}
	chosen, err := c.selectK(st.env, cs)
	if err != nil {
		return nil, err
	}
	counters := mres.Counters.Snapshot()
	counters[CounterDatasetReads] = st.env.FS.DatasetReads()
	centers := mres.CentersByK[chosen]
	return &Result{
		Algorithm:  AlgorithmMultiK,
		Centers:    centers,
		K:          chosen,
		Iterations: len(mres.IterationTimes),
		Assignment: assignIfAvailable(src, centers),
		Counters:   counters,
		WCSS:       mres.WCSSByK[chosen],
		WCSSByK:    mres.WCSSByK,
	}, nil
}

// selectK applies the configured criterion to the candidate clusterings.
// Criteria beyond elbow need the points and read them back from the staged
// DFS file (one extra dataset read, materialized in memory).
func (c *Clusterer) selectK(env kmeansmr.Env, cs []criteria.Clustering) (int, error) {
	if c.cfg.criterion == CriterionElbow {
		return criteria.ElbowK(cs)
	}
	points, err := dataset.LoadPoints(env.FS, env.Input)
	if err != nil {
		return 0, err
	}
	for i := range cs {
		cs[i].Assignment = lloyd.Assign(points, cs[i].Centers)
	}
	switch c.cfg.criterion {
	case CriterionJump:
		return criteria.JumpK(points, cs)
	case CriterionSilhouette:
		return criteria.SilhouetteK(points, cs, 2000, c.cfg.seed)
	default:
		return criteria.BICK(points, cs)
	}
}

func (c *Clusterer) runSeqGMeans(ctx context.Context, src DataSource) (*Result, error) {
	points, err := Materialize(src)
	if err != nil {
		return nil, err
	}
	scfg := seqgmeans.Config{
		Alpha: c.cfg.alpha,
		MaxK:  c.cfg.maxK,
		Seed:  c.cfg.seed,
	}
	if c.cfg.progress != nil {
		// The backend reports tests-so-far, which starts at zero and can
		// repeat when a cluster is finalized untested; number the events
		// ourselves to honor the 1-based, unique Round contract.
		round := 0
		scfg.Progress = func(found, pending, tests, splits int) {
			round++
			c.cfg.emit(Progress{Round: round, K: found, Active: pending, Strategy: string(AlgorithmSeqGMeans)})
		}
	}
	res, err := seqgmeans.RunContext(ctx, points, scfg)
	if err != nil {
		return nil, err
	}
	centers := res.Centers
	if c.cfg.mergeRadius == MergeAuto {
		centers = core.MergeCloseCenters(centers, core.SuggestMergeRadius(centers))
	} else if c.cfg.mergeRadius > 0 {
		centers = core.MergeCloseCenters(centers, c.cfg.mergeRadius)
	}
	assignment := res.Assignment
	if len(centers) != res.K {
		assignment = lloyd.Assign(points, centers)
	}
	return &Result{
		Algorithm:  AlgorithmSeqGMeans,
		Centers:    centers,
		K:          len(centers),
		Iterations: res.Tests,
		Assignment: assignment,
		Counters:   map[string]int64{CounterADTests: int64(res.Tests), "app.splits": int64(res.Splits)},
		WCSS:       res.WCSS,
	}, nil
}

func (c *Clusterer) runXMeans(ctx context.Context, src DataSource) (*Result, error) {
	points, err := Materialize(src)
	if err != nil {
		return nil, err
	}
	xcfg := xmeans.Config{
		KMax: c.cfg.maxK,
		Seed: c.cfg.seed,
	}
	if c.cfg.progress != nil {
		xcfg.Progress = func(round, k int) {
			c.cfg.emit(Progress{Round: round, K: k, Strategy: string(AlgorithmXMeans)})
		}
	}
	res, err := xmeans.RunContext(ctx, points, xcfg)
	if err != nil {
		return nil, err
	}
	centers := res.Centers
	if c.cfg.mergeRadius == MergeAuto {
		centers = core.MergeCloseCenters(centers, core.SuggestMergeRadius(centers))
	} else if c.cfg.mergeRadius > 0 {
		centers = core.MergeCloseCenters(centers, c.cfg.mergeRadius)
	}
	assignment := res.Assignment
	if len(centers) != res.K {
		assignment = lloyd.Assign(points, centers)
	}
	return &Result{
		Algorithm:  AlgorithmXMeans,
		Centers:    centers,
		K:          len(centers),
		Iterations: res.Rounds,
		Assignment: assignment,
		Counters:   map[string]int64{"app.structure.rounds": int64(res.Rounds)},
		WCSS:       res.WCSS,
	}, nil
}

// assignIfAvailable computes the nearest-center assignment when the
// source's points are in memory; streaming sources return nil.
func assignIfAvailable(src DataSource, centers []Point) []int {
	mem, ok := src.(pointsProvider)
	if !ok {
		return nil
	}
	pts := mem.points()
	assign := make([]int, len(pts))
	for i, p := range pts {
		assign[i], _ = vec.NearestIndex(p, centers)
	}
	return assign
}
