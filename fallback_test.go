package gmeansmr

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"gmeansmr/internal/mrdist"
	"gmeansmr/internal/obs"
)

// TestBackendFallbackDowngradesOnUnavailable drives withFallback with a
// stub runner: a proc attempt that reports backend unavailability must be
// rerun on the local backend, once, with the metric ticked.
func TestBackendFallbackDowngradesOnUnavailable(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := New(WithBackend(BackendProc), WithBackendFallback(), WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	var ran []Backend
	want := &Result{K: 3}
	res, err := c.withFallback(context.Background(), FromPoints([]Point{{0}}), nil,
		func(_ context.Context, _ DataSource, _ *obs.Trace, b Backend) (*Result, error) {
			ran = append(ran, b)
			if b == BackendProc {
				return nil, fmt.Errorf("mr: job \"x\": %w", mrdist.ErrBackendUnavailable)
			}
			return want, nil
		})
	if err != nil || res != want {
		t.Fatalf("fallback run: res=%v err=%v", res, err)
	}
	if len(ran) != 2 || ran[0] != BackendProc || ran[1] != BackendLocal {
		t.Fatalf("backends run = %v, want [proc local]", ran)
	}
	if got := reg.Counter(MetricBackendFallbacks).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricBackendFallbacks, got)
	}
}

// TestBackendFallbackLeavesOtherFailuresAlone: only unavailability
// downgrades — a task error (or any other failure) still fails the run,
// and without the option even unavailability does.
func TestBackendFallbackLeavesOtherFailuresAlone(t *testing.T) {
	taskErr := errors.New("deterministic task failure")
	cases := []struct {
		name string
		opts []Option
		err  error
	}{
		{"task error with fallback", []Option{WithBackend(BackendProc), WithBackendFallback()}, taskErr},
		{"unavailable without fallback", []Option{WithBackend(BackendProc)}, fmt.Errorf("x: %w", mrdist.ErrBackendUnavailable)},
		{"local backend", []Option{WithBackendFallback()}, fmt.Errorf("x: %w", mrdist.ErrBackendUnavailable)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			calls := 0
			_, err = c.withFallback(context.Background(), FromPoints([]Point{{0}}), nil,
				func(_ context.Context, _ DataSource, _ *obs.Trace, _ Backend) (*Result, error) {
					calls++
					return nil, tc.err
				})
			if !errors.Is(err, tc.err) {
				t.Errorf("err = %v, want the original failure", err)
			}
			if calls != 1 {
				t.Errorf("run called %d times, want 1 (no downgrade)", calls)
			}
		})
	}
}

// TestBackendFallbackHonorsCancellation: a cancelled context must not
// trigger a local rerun even when the proc error wraps unavailability.
func TestBackendFallbackHonorsCancellation(t *testing.T) {
	c, err := New(WithBackend(BackendProc), WithBackendFallback())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err = c.withFallback(ctx, FromPoints([]Point{{0}}), nil,
		func(_ context.Context, _ DataSource, _ *obs.Trace, _ Backend) (*Result, error) {
			calls++
			cancel()
			return nil, fmt.Errorf("x: %w", mrdist.ErrBackendUnavailable)
		})
	if err == nil || calls != 1 {
		t.Fatalf("cancelled fallback: err=%v calls=%d", err, calls)
	}
}
