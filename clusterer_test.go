package gmeansmr

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"gmeansmr/internal/vec"
)

// mixturePoints generates a small, well-separated test workload.
func mixturePoints(t *testing.T, k, dim, n int, seed int64) *Dataset {
	t.Helper()
	ds, err := GenerateDataset(DatasetSpec{K: k, Dim: dim, N: n, MinSeparation: 25, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestRunAllAlgorithms exercises every selectable algorithm through the
// same New(...).Run(ctx, src) call shape and checks the unified Result.
func TestRunAllAlgorithms(t *testing.T) {
	ds, err := GenerateDataset(DatasetSpec{K: 6, Dim: 2, N: 6000, MinSeparation: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgorithmGMeansMR, AlgorithmSeqGMeans, AlgorithmXMeans, AlgorithmMultiK} {
		t.Run(string(algo), func(t *testing.T) {
			opts := []Option{WithAlgorithm(algo), WithSeed(2)}
			if algo == AlgorithmMultiK {
				opts = append(opts, WithKRange(1, 12, 1))
			}
			c, err := New(opts...)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(context.Background(), FromPoints(ds.Points))
			if err != nil {
				t.Fatal(err)
			}
			if res.Algorithm != algo {
				t.Errorf("Algorithm = %q, want %q", res.Algorithm, algo)
			}
			if res.K < 5 || res.K > 12 {
				t.Errorf("k = %d for true k=6", res.K)
			}
			if len(res.Centers) != res.K {
				t.Errorf("len(Centers)=%d, K=%d", len(res.Centers), res.K)
			}
			if len(res.Assignment) != len(ds.Points) {
				t.Fatalf("assignment length %d, want %d", len(res.Assignment), len(ds.Points))
			}
			for i, a := range res.Assignment {
				if a < 0 || a >= res.K {
					t.Fatalf("assignment[%d]=%d out of range", i, a)
				}
			}
			if res.Counters == nil {
				t.Error("nil Counters")
			}
			if algo == AlgorithmMultiK && res.WCSSByK == nil {
				t.Error("multik result missing WCSSByK")
			}
		})
	}
}

// TestRunProgressEvents checks that the MR G-means run streams one event
// per round with strategy and engine counters attached.
func TestRunProgressEvents(t *testing.T) {
	ds := mixturePoints(t, 4, 2, 3000, 32)
	var events []Progress
	c, err := New(WithSeed(5), WithProgress(func(p Progress) { events = append(events, p) }))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), FromPoints(ds.Points))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != res.Iterations {
		t.Fatalf("%d progress events for %d iterations", len(events), res.Iterations)
	}
	for i, ev := range events {
		if ev.Algorithm != AlgorithmGMeansMR {
			t.Errorf("event %d algorithm %q", i, ev.Algorithm)
		}
		if ev.Round != i+1 {
			t.Errorf("event %d round %d", i, ev.Round)
		}
		if ev.Strategy == "" {
			t.Errorf("event %d has no strategy", i)
		}
		if ev.Counters["app.distance.computations"] == 0 {
			t.Errorf("event %d has no engine counters", i)
		}
	}
	last := events[len(events)-1]
	if last.K != res.K {
		t.Errorf("final event k=%d, result k=%d", last.K, res.K)
	}
}

// TestRunCancelledBeforeStart: an already-cancelled context never starts
// the run.
func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c, err := New()
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(ctx, FromPoints([]Point{{1, 2}, {3, 4}}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunMidRunCancellation cancels the context from the first progress
// event — i.e. between MR waves — and checks the run aborts promptly with
// context.Canceled and leaks no goroutines.
func TestRunMidRunCancellation(t *testing.T) {
	ds := mixturePoints(t, 8, 4, 20_000, 33)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c, err := New(WithSeed(9), WithProgress(func(p Progress) {
		if p.Round == 1 {
			cancel()
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Run(ctx, FromPoints(ds.Points))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The run must stop within roughly one wave of the cancellation, not
	// complete all remaining rounds. Budget generously for CI noise.
	if elapsed > 30*time.Second {
		t.Errorf("cancelled run took %s", elapsed)
	}

	// All engine goroutines must have drained.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSeqAlgorithmsCancellation covers ctx observation in the in-memory
// algorithms.
func TestSeqAlgorithmsCancellation(t *testing.T) {
	ds := mixturePoints(t, 4, 2, 2000, 34)
	for _, algo := range []Algorithm{AlgorithmSeqGMeans, AlgorithmXMeans, AlgorithmMultiK} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		c, err := New(WithAlgorithm(algo))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(ctx, FromPoints(ds.Points)); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", algo, err)
		}
	}
}

// Regression: a multi-k sweep whose configured KMax exceeds the dataset's
// point count must clamp the sweep to n instead of failing the seeding
// ("dataset has only 3 points, need 8 centers").
func TestMultiKRangeClampedToPointCount(t *testing.T) {
	points := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	c, err := New(WithAlgorithm(AlgorithmMultiK), WithSeed(7), WithKRange(1, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), FromPoints(points))
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 1 || res.K > 3 {
		t.Fatalf("k=%d, want within [1,3] for a 3-point dataset", res.K)
	}
	for k := range res.WCSSByK {
		if k > 3 {
			t.Errorf("candidate k=%d exceeds point count 3", k)
		}
	}
}

// TestCSVRoundTrip feeds the same dataset once as an in-memory slice and
// once as a streamed CSV and checks the discovered centers are identical —
// the parser and the staging path must not perturb the run.
func TestCSVRoundTrip(t *testing.T) {
	ds := mixturePoints(t, 5, 3, 4000, 35)

	var csv bytes.Buffer
	csv.WriteString("x,y,z\n") // header row must be tolerated
	for _, p := range ds.Points {
		fmt.Fprintf(&csv, "%v,%v,%v\n", p[0], p[1], p[2])
	}

	newC := func() *Clusterer {
		c, err := New(WithSeed(11), WithSplitSize(64<<10))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	mem, err := newC().Run(context.Background(), FromPoints(ds.Points))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := newC().Run(context.Background(), FromReader(&csv))
	if err != nil {
		t.Fatal(err)
	}

	if streamed.K != mem.K {
		t.Fatalf("streamed k=%d, in-memory k=%d", streamed.K, mem.K)
	}
	for i := range mem.Centers {
		for d := range mem.Centers[i] {
			if math.Abs(mem.Centers[i][d]-streamed.Centers[i][d]) > 1e-9 {
				t.Fatalf("center %d differs: %v vs %v", i, mem.Centers[i], streamed.Centers[i])
			}
		}
	}
	if streamed.Assignment != nil {
		t.Error("streaming source produced an assignment without the points in memory")
	}
	if len(mem.Assignment) != len(ds.Points) {
		t.Errorf("in-memory assignment length %d", len(mem.Assignment))
	}
}

// TestFromMixtureStreams runs MR G-means over a generated mixture that is
// never materialized.
func TestFromMixtureStreams(t *testing.T) {
	c, err := New(WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), FromMixture(DatasetSpec{
		K: 4, Dim: 2, N: 5000, MinSeparation: 30, Seed: 17,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 3 || res.K > 8 {
		t.Errorf("k = %d for true k=4", res.K)
	}
	if res.Assignment != nil {
		t.Error("mixture stream produced an assignment")
	}
	if res.Counters[CounterDatasetReads] == 0 {
		t.Error("dataset reads not accounted")
	}
}

// TestSourceValidation: NaN/±Inf and ragged points must be rejected with a
// descriptive error on every ingestion path.
func TestSourceValidation(t *testing.T) {
	run := func(src DataSource) error {
		c, err := New()
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Run(context.Background(), src)
		return err
	}
	if err := run(FromPoints([]Point{{1, 2}, {math.NaN(), 3}})); err == nil || !strings.Contains(err.Error(), "NaN") {
		t.Errorf("NaN accepted in-memory: %v", err)
	}
	if err := run(FromPoints([]Point{{1, 2}, {math.Inf(1), 3}})); err == nil || !strings.Contains(err.Error(), "Inf") {
		t.Errorf("+Inf accepted in-memory: %v", err)
	}
	if err := run(FromPoints([]Point{{1, 2}, {3}})); err == nil || !strings.Contains(err.Error(), "dimensions") {
		t.Errorf("ragged input accepted: %v", err)
	}
	if err := run(FromReader(strings.NewReader("1,2\nNaN,3\n"))); err == nil || !strings.Contains(err.Error(), "NaN") {
		t.Errorf("NaN accepted via CSV: %v", err)
	}
	if err := run(FromReader(strings.NewReader("1\t2\n+Inf\t3\n"))); err == nil || !strings.Contains(err.Error(), "Inf") {
		t.Errorf("+Inf accepted via TSV: %v", err)
	}
	if err := run(FromPoints(nil)); err == nil {
		t.Error("empty source accepted")
	}
	// The seq algorithms share the same validation via Materialize.
	c, err := New(WithAlgorithm(AlgorithmSeqGMeans))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), FromPoints([]Point{{1, 2}, {math.NaN(), 3}})); err == nil {
		t.Error("NaN accepted by seq-gmeans path")
	}
}

// TestOptionValidation: invalid options surface from New, including the
// MergeRadius rule (negative values other than MergeAuto are rejected).
func TestOptionValidation(t *testing.T) {
	bad := [][]Option{
		{WithMergeRadius(-0.5)},
		{WithMergeRadius(math.NaN())},
		{WithAlgorithm("quantum-means")},
		{WithAlpha(1.5)},
		{WithAlpha(-0.1)},
		{WithNodes(0)},
		{WithKRange(3, 2, 1)},
		{WithKRange(0, 5, 1)},
		{WithCriterion("vibes")},
		{WithTestStrategy("TestAllClusters")},
		{WithSplitSize(-1)},
		{WithMultiKIterations(0)},
	}
	for i, opts := range bad {
		if _, err := New(opts...); err == nil {
			t.Errorf("option set %d accepted", i)
		}
	}
	if _, err := New(WithMergeRadius(MergeAuto)); err != nil {
		t.Errorf("MergeAuto rejected: %v", err)
	}
	if _, err := New(WithMergeRadius(2.5)); err != nil {
		t.Errorf("positive merge radius rejected: %v", err)
	}
}

// TestClusterWrapperMergeRadiusValidation covers the deprecated facade's
// new input checking.
func TestClusterWrapperMergeRadiusValidation(t *testing.T) {
	pts := []Point{{1, 2}, {3, 4}, {5, 6}}
	if _, err := Cluster(pts, Options{MergeRadius: -2}); err == nil {
		t.Error("MergeRadius=-2 accepted")
	}
	if _, err := Cluster(pts, Options{MergeRadius: math.NaN()}); err == nil {
		t.Error("MergeRadius=NaN accepted")
	}
}

// TestMultiKCriteria checks every selection criterion picks the right k on
// an easy, well-separated workload.
func TestMultiKCriteria(t *testing.T) {
	ds := mixturePoints(t, 3, 2, 1200, 36)
	for _, cr := range []Criterion{CriterionElbow, CriterionJump, CriterionSilhouette, CriterionBIC} {
		t.Run(string(cr), func(t *testing.T) {
			c, err := New(
				WithAlgorithm(AlgorithmMultiK),
				WithKRange(1, 6, 1),
				WithCriterion(cr),
				WithSeed(2),
			)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(context.Background(), FromPoints(ds.Points))
			if err != nil {
				t.Fatal(err)
			}
			if res.K != 3 {
				t.Errorf("criterion %s selected k=%d, want 3", cr, res.K)
			}
		})
	}
}

// TestMaterialize covers the helper's parsing paths: headers, comments,
// blank lines and mixed separators.
func TestMaterialize(t *testing.T) {
	in := "# generated by datagen\ncol_a,col_b\n1.5, 2.5\n\n3\t4\n5 6\n"
	pts, err := Materialize(FromReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	want := []Point{{1.5, 2.5}, {3, 4}, {5, 6}}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d", len(pts), len(want))
	}
	for i := range want {
		if !vec.Equal(pts[i], want[i]) {
			t.Errorf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}
	// A corrupt first data row with numeric fields is NOT a header and
	// must error rather than be silently dropped.
	if _, err := Materialize(FromReader(strings.NewReader("1.x 2.0\n3 4\n"))); err == nil {
		t.Error("corrupt numeric first row swallowed as header")
	}
	// One-shot reader sources refuse a second Open.
	src := FromReader(strings.NewReader("1 2\n"))
	if _, err := Materialize(src); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Open(); err == nil {
		t.Error("second Open of a FromReader source succeeded")
	}
}
