package gmeansmr

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
)

// DataSource supplies the points of one dataset to a Clusterer run. The
// three stock sources — FromPoints, FromReader/FromFile and FromMixture —
// cover in-memory slices, streamed CSV/TSV text and generated Gaussian
// mixtures; implement the interface directly to feed anything else.
type DataSource interface {
	// Open returns a reader positioned at the first point. Sources backed
	// by re-readable data (a slice, a file path, a generator spec) may be
	// opened any number of times; a source wrapping a one-shot io.Reader
	// can be opened once and fails afterwards.
	Open() (PointReader, error)
}

// PointReader iterates the points of a DataSource.
type PointReader interface {
	// Next returns the next point, or io.EOF after the last one. Returned
	// slices are owned by the caller.
	Next() (Point, error)
	// Close releases the reader's resources. It is safe to call after an
	// error and must be called when abandoning the reader early.
	Close() error
}

// pointsProvider is the optional fast path a source implements when its
// points already live in memory: Run uses it to compute Result.Assignment
// without a second pass over the source.
type pointsProvider interface {
	points() []Point
}

// ---------------------------------------------------------------------------
// In-memory slice
// ---------------------------------------------------------------------------

// FromPoints wraps an in-memory point slice as a DataSource. The slice is
// retained, not copied, and must not be mutated while a run uses it.
func FromPoints(pts []Point) DataSource { return &memorySource{pts: pts} }

type memorySource struct{ pts []Point }

func (s *memorySource) Open() (PointReader, error) { return &memoryReader{pts: s.pts}, nil }
func (s *memorySource) points() []Point            { return s.pts }

type memoryReader struct {
	pts []Point
	i   int
}

func (r *memoryReader) Next() (Point, error) {
	if r.i >= len(r.pts) {
		return nil, io.EOF
	}
	p := r.pts[r.i]
	r.i++
	return p, nil
}

func (r *memoryReader) Close() error { return nil }

// ---------------------------------------------------------------------------
// Streamed text: CSV, TSV, space-separated
// ---------------------------------------------------------------------------

// FromReader streams points from r, one point per line, with coordinates
// separated by commas, tabs or spaces (CSV, TSV and the plain text format
// of cmd/datagen all parse). Blank lines and lines starting with '#' are
// skipped, and a single non-numeric leading line is tolerated as a header.
// The source can be opened once; points flow straight into the engine
// without the dataset ever being materialized in memory.
func FromReader(r io.Reader) DataSource { return &readerSource{r: r} }

type readerSource struct {
	r      io.Reader
	opened bool
}

func (s *readerSource) Open() (PointReader, error) {
	if s.opened {
		return nil, fmt.Errorf("gmeansmr: FromReader source already consumed; wrap a fresh io.Reader")
	}
	s.opened = true
	return newTextReader(s.r, nil), nil
}

// FromFile is a re-readable DataSource over an operating-system file,
// opened lazily at each Open call. The record format is sniffed: files
// beginning with the binary point magic (`datagen -format binary`) stream
// fixed-stride float64 frames; anything else parses as CSV/TSV/space-
// separated text, as with FromReader.
func FromFile(path string) DataSource { return &fileSource{path: path} }

type fileSource struct{ path string }

func (s *fileSource) Open() (PointReader, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return nil, fmt.Errorf("gmeansmr: %w", err)
	}
	br := bufio.NewReaderSize(f, 64<<10)
	magic, err := br.Peek(len(dfs.BinaryMagic))
	if err == nil && dfs.IsBinary(magic) {
		header := make([]byte, dfs.BinaryHeaderLen)
		if _, err := io.ReadFull(br, header); err != nil {
			f.Close()
			return nil, fmt.Errorf("gmeansmr: %s: %w", s.path, err)
		}
		dim, err := dfs.ParseBinaryHeader(header)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("gmeansmr: %s: %w", s.path, err)
		}
		return &binaryReader{r: br, closer: f, dim: dim, frame: make([]byte, 8*dim)}, nil
	}
	// Peek errors (e.g. a file shorter than the magic) fall through to the
	// text reader, which reports them in terms of lines.
	return newTextReader(br, f), nil
}

// binaryReader streams the frames of a binary point file.
type binaryReader struct {
	r      io.Reader
	closer io.Closer
	dim    int
	frame  []byte
	n      int // frames read, for error messages
}

func (b *binaryReader) Next() (Point, error) {
	if _, err := io.ReadFull(b.r, b.frame); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("gmeansmr: binary point %d: %w", b.n, err)
	}
	p := make(Point, b.dim)
	dfs.DecodeBinaryFrame(p, b.frame)
	b.n++
	return p, nil
}

func (b *binaryReader) Close() error { return b.closer.Close() }

type textReader struct {
	sc     *bufio.Scanner
	closer io.Closer
	line   int
	first  bool // next data line is the first: tolerate a header
}

func newTextReader(r io.Reader, closer io.Closer) *textReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<22)
	return &textReader{sc: sc, closer: closer, first: true}
}

func (t *textReader) Next() (Point, error) {
	for t.sc.Scan() {
		t.line++
		line := strings.TrimRight(t.sc.Text(), "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.ContainsRune(line, ',') {
			line = strings.ReplaceAll(line, ",", " ")
		}
		p, err := dataset.ParsePoint(line)
		if err != nil {
			if t.first && looksLikeHeader(line) {
				// A fully non-numeric first row is a column header. A first
				// row with any numeric field is corrupt data, not a header,
				// and must error rather than be silently dropped.
				t.first = false
				continue
			}
			return nil, fmt.Errorf("gmeansmr: line %d: %w", t.line, err)
		}
		t.first = false
		return p, nil
	}
	if err := t.sc.Err(); err != nil {
		return nil, fmt.Errorf("gmeansmr: %w", err)
	}
	return nil, io.EOF
}

func (t *textReader) Close() error {
	if t.closer != nil {
		return t.closer.Close()
	}
	return nil
}

// looksLikeHeader reports whether no field of the (separator-normalized)
// line parses as a number — the signature of a column-header row.
func looksLikeHeader(line string) bool {
	for _, f := range strings.Fields(line) {
		if _, err := strconv.ParseFloat(f, 64); err == nil {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Generated Gaussian mixture
// ---------------------------------------------------------------------------

// FromMixture generates the Gaussian mixture described by spec on the fly,
// one point at a time — a workload source for runs larger than memory. The
// stream is deterministic in spec.Seed and re-readable (every Open replays
// the same points).
func FromMixture(spec DatasetSpec) DataSource { return &mixtureSource{spec: spec} }

type mixtureSource struct{ spec DatasetSpec }

func (s *mixtureSource) Open() (PointReader, error) {
	st, err := dataset.NewStream(s.spec)
	if err != nil {
		return nil, err
	}
	return &mixtureReader{st: st}, nil
}

type mixtureReader struct{ st *dataset.Stream }

func (r *mixtureReader) Next() (Point, error) {
	p, _, ok := r.st.Next()
	if !ok {
		return nil, io.EOF
	}
	return p, nil
}

func (r *mixtureReader) Close() error { return nil }

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// Materialize drains a DataSource into memory, applying the same
// validation a run applies (consistent dimensionality, no NaN/±Inf). Use
// it when the points themselves are needed afterwards — e.g. to build a
// serving model with BuildModel.
func Materialize(src DataSource) ([]Point, error) {
	if mem, ok := src.(pointsProvider); ok {
		pts := mem.points()
		if err := validatePoints(pts); err != nil {
			return nil, err
		}
		return pts, nil
	}
	rd, err := src.Open()
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	var pts []Point
	dim := 0
	for {
		p, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := checkPoint(p, len(pts), &dim); err != nil {
			return nil, err
		}
		pts = append(pts, p)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("gmeansmr: no points")
	}
	return pts, nil
}

// validatePoints checks an in-memory slice the same way streaming
// ingestion checks each point.
func validatePoints(pts []Point) error {
	if len(pts) == 0 {
		return fmt.Errorf("gmeansmr: no points")
	}
	dim := 0
	for i, p := range pts {
		if err := checkPoint(p, i, &dim); err != nil {
			return err
		}
	}
	return nil
}

// checkPoint enforces consistent dimensionality (learning it from the
// first point when *dim is zero) and finite coordinates.
func checkPoint(p Point, i int, dim *int) error {
	if len(p) == 0 {
		return fmt.Errorf("gmeansmr: point %d is empty", i)
	}
	if *dim == 0 {
		*dim = len(p)
	} else if len(p) != *dim {
		return fmt.Errorf("gmeansmr: point %d has %d dimensions, want %d", i, len(p), *dim)
	}
	if err := dataset.ValidatePoint(p); err != nil {
		return fmt.Errorf("gmeansmr: point %d: %w", i, err)
	}
	return nil
}
