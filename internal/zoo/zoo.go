// Package zoo is a catalog of seedable adversarial datasets for
// property-based testing of the k-discovery algorithms. Every cell is a
// deterministic generator (same seed → bit-identical points) that targets a
// known failure mode — duplicate mass, collinearity, degenerate dimension or
// size, heavy tails, overlapping or extreme-skew mixtures — and carries a
// machine-readable descriptor so a failing harness cell can print exactly
// what data to replay.
//
// Zoo cells assert invariants (see internal/invariants), never golden
// outputs: hostile inputs have no meaningful "expected centers", but every
// run over them must still satisfy the algorithm contracts.
package zoo

import (
	"encoding/json"
	"math"
	"math/rand"

	"gmeansmr"
)

// Cell is one adversarial dataset generator.
type Cell struct {
	// Name identifies the cell in harness output and Find.
	Name string
	// Hostile is the human/machine-readable account of what makes the
	// dataset adversarial.
	Hostile string
	// N and Dim are the generated point count and dimensionality.
	N, Dim int
	// TrueK is the nominal generating cluster count; 0 when the notion is
	// ill-defined (overlapping or heavy-tailed mixtures). Harnesses must
	// not gate on it — it is descriptive metadata for triage.
	TrueK int

	gen func(rng *rand.Rand, i int) []float64
}

// Points generates the cell's dataset; the same seed yields bit-identical
// points. All coordinates are finite.
func (c Cell) Points(seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, c.N)
	for i := range out {
		out[i] = c.gen(rng, i)
	}
	return out
}

// Source wraps the generated points as a facade DataSource.
func (c Cell) Source(seed int64) gmeansmr.DataSource {
	return gmeansmr.FromPoints(c.Points(seed))
}

// Descriptor is the machine-readable description of one cell instance —
// printed by harnesses on failure so the exact dataset can be replayed.
type Descriptor struct {
	Name    string `json:"name"`
	Hostile string `json:"hostile"`
	N       int    `json:"n"`
	Dim     int    `json:"dim"`
	TrueK   int    `json:"true_k,omitempty"`
	Seed    int64  `json:"seed"`
}

// Descriptor builds the replay descriptor for the cell at the given seed.
func (c Cell) Descriptor(seed int64) Descriptor {
	return Descriptor{Name: c.Name, Hostile: c.Hostile, N: c.N, Dim: c.Dim, TrueK: c.TrueK, Seed: seed}
}

// String renders the descriptor as one-line JSON.
func (d Descriptor) String() string {
	b, _ := json.Marshal(d)
	return string(b)
}

// Catalog returns every zoo cell. The slice is freshly allocated; callers
// may filter or reorder it.
func Catalog() []Cell {
	return []Cell{
		{
			Name:    "duplicate-heavy",
			Hostile: "1200 points but only 4 distinct values; zero within-cluster variance breaks variance-normalized statistics and duplicate-aware sampling",
			N:       1200, Dim: 3, TrueK: 4,
			gen: func(rng *rand.Rand, i int) []float64 {
				c := [4][3]float64{{0, 0, 0}, {50, 0, 0}, {0, 50, 0}, {0, 0, 50}}[i%4]
				return []float64{c[0], c[1], c[2]}
			},
		},
		{
			Name:    "all-identical",
			Hostile: "every point is the same value; any split test must keep k=1 and centroid updates must not divide by zero spread",
			N:       500, Dim: 2, TrueK: 1,
			gen: func(rng *rand.Rand, i int) []float64 {
				return []float64{3.5, -1.25}
			},
		},
		{
			Name:    "collinear",
			Hostile: "three clusters on a line in R^3; the covariance is rank-1, PCA directions are degenerate, and every cluster passes split tests simultaneously (historically blew through KMax)",
			N:       900, Dim: 3, TrueK: 3,
			gen: func(rng *rand.Rand, i int) []float64 {
				t := float64(i%3)*30 + rng.NormFloat64()
				return []float64{t, 2 * t, -t}
			},
		},
		{
			Name:    "single-cluster",
			Hostile: "one isotropic Gaussian; the null hypothesis of every split test — over-splitting here is the classic G-means failure",
			N:       2000, Dim: 4, TrueK: 1,
			gen: func(rng *rand.Rand, i int) []float64 {
				return []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			},
		},
		{
			Name:    "d1-mixture",
			Hostile: "three clusters in one dimension; projection-based candidate generation (PCA, random directions) has only one axis to work with",
			N:       1500, Dim: 1, TrueK: 3,
			gen: func(rng *rand.Rand, i int) []float64 {
				return []float64{float64(i%3)*25 + rng.NormFloat64()}
			},
		},
		{
			Name:    "heavy-tail",
			Hostile: "three clusters with Student-t-like noise; extreme outliers drag centroids and make normality-based split tests reject everywhere",
			N:       2000, Dim: 2, TrueK: 0,
			gen: func(rng *rand.Rand, i int) []float64 {
				c := float64(i%3) * 40
				t1 := rng.NormFloat64() / math.Sqrt(math.Abs(rng.NormFloat64())+0.05)
				t2 := rng.NormFloat64() / math.Sqrt(math.Abs(rng.NormFloat64())+0.05)
				return []float64{c + t1, c + t2}
			},
		},
		{
			Name:    "overlap-twins",
			Hostile: "two Gaussians 0.5 sigma apart; effectively unimodal, so k is genuinely ambiguous and split decisions sit on the test's knife edge",
			N:       2000, Dim: 2, TrueK: 0,
			gen: func(rng *rand.Rand, i int) []float64 {
				base := 0.0
				if i%2 == 0 {
					base = 0.5
				}
				return []float64{base + rng.NormFloat64(), rng.NormFloat64()}
			},
		},
		{
			Name:    "skew-sizes",
			Hostile: "cluster sizes 2000 vs 40; uniform sampling almost never seeds the minority cluster and size-based minimums can starve it",
			N:       2040, Dim: 3, TrueK: 2,
			gen: func(rng *rand.Rand, i int) []float64 {
				if i < 2000 {
					return []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
				}
				return []float64{60 + rng.NormFloat64(), 60 + rng.NormFloat64(), 60 + rng.NormFloat64()}
			},
		},
		{
			Name:    "tiny-n",
			Hostile: "n=3 is below every default k sweep ceiling and every minimum split-test sample size; seeding and candidate ranges must clamp, not error",
			N:       3, Dim: 2, TrueK: 3,
			gen: func(rng *rand.Rand, i int) []float64 {
				return [][]float64{{0, 0}, {10, 0}, {0, 10}}[i]
			},
		},
		{
			Name:    "single-point",
			Hostile: "n=1: the fully degenerate dataset; any pair-based seeding (G-means draws 2 samples) must degrade to the trivial clustering",
			N:       1, Dim: 2, TrueK: 1,
			gen: func(rng *rand.Rand, i int) []float64 {
				return []float64{1.5, -2.25}
			},
		},
	}
}

// Find returns the named cell.
func Find(name string) (Cell, bool) {
	for _, c := range Catalog() {
		if c.Name == name {
			return c, true
		}
	}
	return Cell{}, false
}
