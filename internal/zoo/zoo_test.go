package zoo

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

func TestCatalogIntegrity(t *testing.T) {
	cells := Catalog()
	if len(cells) < 8 {
		t.Fatalf("catalog has %d cells, the harness matrix needs at least 8", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if c.Name == "" || c.Hostile == "" {
			t.Fatalf("cell %+v missing name or hostile description", c)
		}
		if seen[c.Name] {
			t.Fatalf("duplicate cell name %q", c.Name)
		}
		seen[c.Name] = true

		points := c.Points(42)
		if len(points) != c.N {
			t.Errorf("%s: generated %d points, descriptor says %d", c.Name, len(points), c.N)
		}
		for i, p := range points {
			if len(p) != c.Dim {
				t.Fatalf("%s: point %d has dim %d, descriptor says %d", c.Name, i, len(p), c.Dim)
			}
			for _, x := range p {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatalf("%s: point %d has non-finite coordinate %v", c.Name, i, x)
				}
			}
		}
	}
}

func TestPointsDeterministicInSeed(t *testing.T) {
	for _, c := range Catalog() {
		if !reflect.DeepEqual(c.Points(7), c.Points(7)) {
			t.Errorf("%s: same seed produced different points", c.Name)
		}
	}
}

func TestDescriptorRoundTrips(t *testing.T) {
	c, ok := Find("collinear")
	if !ok {
		t.Fatal("collinear cell missing")
	}
	var d Descriptor
	if err := json.Unmarshal([]byte(c.Descriptor(9).String()), &d); err != nil {
		t.Fatalf("descriptor is not valid JSON: %v", err)
	}
	if d.Name != "collinear" || d.Seed != 9 || d.N != c.N || d.Dim != c.Dim {
		t.Errorf("descriptor round-trip mismatch: %+v", d)
	}
	if _, ok := Find("no-such-cell"); ok {
		t.Error("Find invented a cell")
	}
}
