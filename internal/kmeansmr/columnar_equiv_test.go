package kmeansmr

import (
	"testing"

	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/vec"
)

// columnarEquivEnv builds a multi-split environment over a freshly
// generated mixture. dim ≥ 16 exercises both the scalar early-exit path
// and the SIMD tile kernel; the odd dimensionality also covers the batch
// kernels' tail-dimension lane.
func columnarEquivEnv(t *testing.T, disableColumnar bool) (Env, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{K: 6, Dim: 17, N: 3000,
		CenterRange: 100, StdDev: 1, MinSeparation: 10, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	fs := dfs.New(16 << 10) // many splits, boundaries inside records
	ds.WriteToDFS(fs, "/p.txt")
	cluster := mr.Cluster{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 2,
		TaskHeapBytes: 64 << 20, MaxHeapUsage: 0.66}
	return Env{FS: fs, Cluster: cluster, Input: "/p.txt", Dim: 17,
		DisableColumnar: disableColumnar}, ds
}

// TestIterateColumnarMatchesRowMajorExactly is the layout contract of the
// columnar fast path: one MR k-means iteration through the batched
// dim-major kernels must produce bit-identical centers, sizes and engine/
// app counters to the per-point row-major path. The columnar layout
// changes how the assignment loop is scheduled, never what it computes.
func TestIterateColumnarMatchesRowMajorExactly(t *testing.T) {
	colEnv, ds := columnarEquivEnv(t, false)
	rowEnv, _ := columnarEquivEnv(t, true)
	centers := vec.CloneAll(ds.Points[:9])

	col, err := Iterate(colEnv, centers)
	if err != nil {
		t.Fatal(err)
	}
	row, err := Iterate(rowEnv, centers)
	if err != nil {
		t.Fatal(err)
	}
	for c := range centers {
		if !vec.Equal(col.Centers[c], row.Centers[c]) {
			t.Errorf("center %d: columnar %v != row-major %v", c, col.Centers[c], row.Centers[c])
		}
		if col.Sizes[c] != row.Sizes[c] {
			t.Errorf("size %d: columnar %d != row-major %d", c, col.Sizes[c], row.Sizes[c])
		}
	}
	for _, counter := range jobCounters {
		if a, b := col.Job.Counters.Get(counter), row.Job.Counters.Get(counter); a != b {
			t.Errorf("%s: columnar %d != row-major %d", counter, a, b)
		}
	}
}

// TestRunMultiColumnarMatchesRowMajor pins the multi-k-means pipeline
// (assignment for every candidate k, plus the Evaluate scoring job) across
// the two layouts.
func TestRunMultiColumnarMatchesRowMajor(t *testing.T) {
	run := func(disable bool) (*MultiResult, MultiConfig) {
		env, _ := columnarEquivEnv(t, disable)
		cfg := MultiConfig{Env: env, KMin: 2, KMax: 6, KStep: 2, Iterations: 3, Seed: 92}
		res, err := RunMulti(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := Evaluate(cfg, res); err != nil {
			t.Fatal(err)
		}
		return res, cfg
	}
	col, _ := run(false)
	row, _ := run(true)
	for k, cc := range col.CentersByK {
		rc, ok := row.CentersByK[k]
		if !ok || len(cc) != len(rc) {
			t.Fatalf("k=%d: center sets differ in shape", k)
		}
		for i := range cc {
			if !vec.Equal(cc[i], rc[i]) {
				t.Errorf("k=%d center %d: columnar %v != row-major %v", k, i, cc[i], rc[i])
			}
		}
		if col.WCSSByK[k] != row.WCSSByK[k] || col.AvgDistByK[k] != row.AvgDistByK[k] {
			t.Errorf("k=%d scores: columnar (%v, %v) != row-major (%v, %v)", k,
				col.WCSSByK[k], col.AvgDistByK[k], row.WCSSByK[k], row.AvgDistByK[k])
		}
	}
	for _, counter := range jobCounters {
		if a, b := col.Counters.Get(counter), row.Counters.Get(counter); a != b {
			t.Errorf("%s: columnar %d != row-major %d", counter, a, b)
		}
	}
}

// TestKDTreeImpliesRowMajor: the kd-tree path reports pruned distance
// counts the linear batch kernel cannot reproduce, so UseKDTree must route
// jobs down the row-major path — and still produce the same centers.
func TestKDTreeImpliesRowMajor(t *testing.T) {
	env, ds := columnarEquivEnv(t, false)
	if !env.RowMajorOnly() {
		env.UseKDTree = true
		if !env.RowMajorOnly() {
			t.Fatal("UseKDTree does not imply the row-major mapper path")
		}
	}
	centers := vec.CloneAll(ds.Points[:5])
	plain, err := Iterate(Env{FS: env.FS, Cluster: env.Cluster, Input: env.Input, Dim: env.Dim}, centers)
	if err != nil {
		t.Fatal(err)
	}
	kd, err := Iterate(Env{FS: env.FS, Cluster: env.Cluster, Input: env.Input, Dim: env.Dim,
		UseKDTree: true}, centers)
	if err != nil {
		t.Fatal(err)
	}
	for c := range centers {
		if !vec.Equal(plain.Centers[c], kd.Centers[c]) || plain.Sizes[c] != kd.Sizes[c] {
			t.Errorf("center %d: columnar linear scan and kd-tree disagree", c)
		}
	}
}
