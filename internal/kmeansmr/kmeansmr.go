// Package kmeansmr implements the MapReduce k-means building blocks shared
// by the paper's two contenders:
//
//   - the classical MR k-means iteration (mapper assigns each point to its
//     nearest center and emits a partial sum; combiner and reducer merge
//     partial sums into new centroids), used both standalone and inside the
//     G-means loop;
//   - multi-k-means (the paper's Algorithm 6): one job maintains center
//     sets for *every* candidate k simultaneously, which is the paper's
//     "fair" baseline for determining k and the source of its O(n·k²) cost.
//
// Both jobs use combiners, as the paper stresses ("a classical MapReduce
// implementation of k-means with combiners").
package kmeansmr

import (
	"context"
	"fmt"
	"math/rand"

	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
	"gmeansmr/internal/kdtree"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/obs"
	"gmeansmr/internal/vec"
)

// Application-level counters, kept separate from the engine's mr.* ones.
const (
	// CounterDistances counts point-to-center distance computations, the
	// unit of the paper's computation-cost model (O(nk) for G-means vs
	// O(nk²) for multi-k-means).
	CounterDistances = "app.distance.computations"
	// CounterPoints counts points processed by mappers.
	CounterPoints = "app.points.processed"
)

// Interned forms of the counters above, so per-record mapper loops tick
// them without string-map lookups (see mr.InternCounter). Exported because
// package core's mappers tick the same counters.
var (
	CounterIDDistances = mr.InternCounter(CounterDistances)
	CounterIDPoints    = mr.InternCounter(CounterPoints)
)

// Env bundles what every job in this repository needs: the file system,
// the cluster to run on, the dataset location and its dimensionality.
type Env struct {
	FS      *dfs.FS
	Cluster mr.Cluster
	Input   string
	Dim     int
	// UseKDTree accelerates the mappers' nearest-center queries with a
	// k-d tree over the center set (the mrkd-tree idea of Pelleg & Moore
	// that the paper's related work cites). Results are identical to the
	// linear scan; only the number of distance computations drops. It
	// implies the row-major mapper path: the batched columnar kernel is a
	// linear scan, and the kd-tree's pruned distance counts cannot be
	// reproduced by it.
	UseKDTree bool
	// DisableColumnar forces the per-point row-major mapper path even
	// where the batched dim-major kernels apply. Results are bit-identical
	// either way (pinned by the columnar equivalence tests); this exists
	// for those tests and for the columnar-vs-scalar benchmarks.
	DisableColumnar bool
	// Ctx, when non-nil, cancels or deadlines every job built from this
	// environment — the drivers (G-means rounds, multi-k-means iterations)
	// also check it between jobs. Nil means context.Background().
	Ctx context.Context
	// Trace, when non-nil, is handed to every job built from this
	// environment (mr.Job.Trace), so one recorder collects the spans of a
	// whole chained-job algorithm run. Nil disables span recording.
	Trace *obs.Trace
	// Runner, when non-nil, selects the execution backend of every job
	// built from this environment (mr.Job.Runner) — e.g. an
	// mrdist.ProcRunner scheduling onto worker subprocesses. Nil selects
	// the in-process mr.LocalRunner.
	Runner mr.TaskRunner
}

// Context returns the environment's context, defaulting to Background.
func (e Env) Context() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

// NearestFunc returns the environment's nearest-center lookup over the
// given centers: a pruned k-d tree descent when UseKDTree is set, else the
// exhaustive scan. The third result feeds CounterDistances: the kd-tree
// path reports the descent's actual (pruned) computation count, while the
// linear path reports the paper's modelled cost of k distances per query —
// vec.NearestIndex may abandon wide candidates partway (early exit), but
// the cost model the experiments chart counts full point-center
// comparisons, not the micro-architectural shortcut.
//
// The returned function is safe for concurrent use, so jobs build it once
// per job (one k-d tree construction per iteration, k·log k) and share it
// read-only across every map task instead of rebuilding it per split.
func (e Env) NearestFunc(centers []vec.Vector) func(vec.Vector) (int, float64, int64) {
	if e.UseKDTree && len(centers) > 1 {
		tree := kdtree.Build(centers)
		return tree.NearestCounted
	}
	k := int64(len(centers))
	return func(p vec.Vector) (int, float64, int64) {
		i, d2 := vec.NearestIndex(p, centers)
		return i, d2, k
	}
}

// RowMajorOnly reports whether jobs built from this environment must use
// the per-point row-major mapper path (see UseKDTree and DisableColumnar);
// drivers copy it into mr.Job.DisableColumnar.
func (e Env) RowMajorOnly() bool { return e.UseKDTree || e.DisableColumnar }

// BatchAssigner wraps the fused nearest-center kernel of internal/vec
// with reusable per-task buffers. One instance belongs to one map task;
// Assign may be called once per center set (multi-k-means calls it |ks|
// times per split).
type BatchAssigner struct {
	idx     []int32
	dist    []float64
	scratch vec.BatchScratch
}

// Assign computes the nearest center of every point of the split in one
// kernel call and returns one center index per point. Entries are -1 when
// every distance is non-finite, exactly as vec.NearestIndex reports. The
// returned slice is owned by the assigner and overwritten by the next
// call.
func (a *BatchAssigner) Assign(centers []vec.Vector, cols *dfs.ColumnarSplit) []int32 {
	idx, _ := a.AssignDist(centers, cols)
	return idx
}

// AssignDist is Assign plus each point's squared distance to its nearest
// center — the second result of vec.NearestIndex, bit-identical. Both
// returned slices are owned by the assigner and overwritten by the next
// call.
func (a *BatchAssigner) AssignDist(centers []vec.Vector, cols *dfs.ColumnarSplit) ([]int32, []float64) {
	n := cols.Len()
	if cap(a.idx) < n {
		a.idx = make([]int32, n)
		a.dist = make([]float64, n)
	}
	idx, dist := a.idx[:n], a.dist[:n]
	vec.NearestBatch(centers, cols.Flat(), n, idx, dist, &a.scratch)
	return idx, dist
}

// Validate reports a configuration error, if any.
func (e Env) Validate() error {
	if e.FS == nil {
		return fmt.Errorf("kmeansmr: nil FS")
	}
	if e.Input == "" {
		return fmt.Errorf("kmeansmr: empty input path")
	}
	if e.Dim <= 0 {
		return fmt.Errorf("kmeansmr: dimensionality must be positive, got %d", e.Dim)
	}
	return e.Cluster.Validate()
}

// assignMapper is the classical k-means mapper with in-mapper combining:
// it consumes decoded points, folds each into a per-center WeightedPoint
// accumulator, and emits the ≤k non-empty partial sums in Close. The
// n-record emit stream of the textbook formulation never exists, so the
// spill sort only ever sees ≤k keys per task. The accumulation order per
// (task, center) is input-record order — exactly the order the spill
// combiner of the emit-per-point formulation folds the same points in —
// which keeps the refined centers bit-identical to legacyAssignMapper's.
type assignMapper struct {
	env     Env
	centers []vec.Vector
	nearest func(vec.Vector) (int, float64, int64)

	accs   []vec.WeightedPoint
	batch  BatchAssigner
	dists  int64
	points int64
}

func (m *assignMapper) Setup(*mr.TaskContext) error {
	if m.nearest == nil {
		m.nearest = m.env.NearestFunc(m.centers)
	}
	m.accs = make([]vec.WeightedPoint, len(m.centers))
	return nil
}

func (m *assignMapper) MapPoint(_ *mr.TaskContext, p vec.Vector, _ mr.Emitter) error {
	best, _, comps := m.nearest(p)
	m.dists += comps
	m.points++
	if best < 0 {
		// Every distance overflowed to +Inf (finite but astronomically
		// large coordinates): fail the task with a diagnosis instead of
		// indexing the accumulator with -1.
		return fmt.Errorf("kmeansmr: point has no nearest center (all distances non-finite)")
	}
	// Merge reads p without retaining it, the same fold the spill combiner
	// performed — one implementation keeps the bit-identity guarantee in
	// one place.
	m.accs[best].Merge(vec.WeightedPoint{Sum: p, Count: 1})
	return nil
}

// MapColumns is the columnar fast path of the assignment: one fused
// batch-kernel call replaces the n·k scalar Dist2 calls of the MapPoint
// loop. The kernel returns bit-identical indices (vec.NearestBatch's
// contract) and the fold below merges points in the same input order, so
// accumulators — and therefore centers, sizes and counters — match the
// row-major path bit for bit. The engine only takes this path on the
// linear scan (see Env.RowMajorOnly), whose modelled distance cost is k
// per point.
func (m *assignMapper) MapColumns(_ *mr.TaskContext, cols *dfs.ColumnarSplit, _ mr.Emitter) error {
	n := cols.Len()
	idx := m.batch.Assign(m.centers, cols)
	m.dists += int64(len(m.centers)) * int64(n)
	m.points += int64(n)
	for j, best := range idx {
		if best < 0 {
			return fmt.Errorf("kmeansmr: point has no nearest center (all distances non-finite)")
		}
		m.accs[best].Merge(vec.WeightedPoint{Sum: cols.At(j), Count: 1})
	}
	return nil
}

func (m *assignMapper) Close(ctx *mr.TaskContext, emit mr.Emitter) error {
	ctx.Count(CounterIDDistances, m.dists)
	ctx.Count(CounterIDPoints, m.points)
	for i := range m.accs {
		if m.accs[i].Count > 0 {
			emit.Emit(int64(i), mr.WeightedPointValue{WeightedPoint: m.accs[i]})
		}
	}
	return nil
}

// legacyAssignMapper is the pre-cache formulation of the k-means mapper:
// parse the text record, emit one (centerID, partial sum) pair per point
// and leave all combining to the spill combiner. Kept as the baseline of
// the combiner ablation and the hot-path benchmark (BenchmarkIterationHotPath),
// and as the no-combiner worst case of the paper's shuffle-cost model.
type legacyAssignMapper struct {
	env     Env
	centers []vec.Vector
	nearest func(vec.Vector) (int, float64, int64)
}

func (m *legacyAssignMapper) Setup(*mr.TaskContext) error {
	if m.nearest == nil {
		m.nearest = m.env.NearestFunc(m.centers)
	}
	return nil
}

func (m *legacyAssignMapper) Map(ctx *mr.TaskContext, rec mr.Record, emit mr.Emitter) error {
	p, err := dataset.ParsePointDim(rec.Line, m.env.Dim)
	if err != nil {
		return err
	}
	best, _, comps := m.nearest(p)
	ctx.Count(CounterIDDistances, comps)
	ctx.Count(CounterIDPoints, 1)
	emit.Emit(int64(best), mr.OwnWeightedPointValue(p))
	return nil
}

func (m *legacyAssignMapper) Close(*mr.TaskContext, mr.Emitter) error { return nil }

// MergeReducer merges WeightedPointValue partial sums; it serves as both
// combiner and reducer of the classical k-means job.
type MergeReducer struct{}

// Setup implements mr.Reducer.
func (MergeReducer) Setup(*mr.TaskContext) error { return nil }

// Reduce implements mr.Reducer by summing all partial centroids of a key.
func (MergeReducer) Reduce(_ *mr.TaskContext, key int64, values []mr.Value, emit mr.Emitter) error {
	var acc vec.WeightedPoint
	for _, v := range values {
		wp, ok := v.(mr.WeightedPointValue)
		if !ok {
			return fmt.Errorf("kmeansmr: unexpected value type %T for key %d", v, key)
		}
		acc.Merge(wp.WeightedPoint)
	}
	emit.Emit(key, mr.WeightedPointValue{WeightedPoint: acc})
	return nil
}

// Close implements mr.Reducer.
func (MergeReducer) Close(*mr.TaskContext, mr.Emitter) error { return nil }

// IterationResult is the outcome of one MR k-means iteration.
type IterationResult struct {
	// Centers holds the refined centers; entries with Sizes[i]==0 keep the
	// previous position (the empty-cluster convention).
	Centers []vec.Vector
	// Sizes holds the number of points assigned to each center.
	Sizes []int64
	// Job is the underlying engine result (counters, durations).
	Job *mr.Result
}

// Iterate runs one classical MR k-means iteration over the dataset,
// refining the given centers. It uses the decoded-point fast path with
// in-mapper combining; results (centers, sizes, app.* counters) are
// bit-identical to the legacy text-parse path.
func Iterate(env Env, centers []vec.Vector) (*IterationResult, error) {
	return iterate(env, centers, "kmeans", modePoints)
}

// IterateLegacy runs one MR k-means iteration on the pre-cache hot path:
// text records re-parsed per pass, one emitted pair per point, combining
// at spill time. It exists as the baseline of BenchmarkIterationHotPath
// and the cached-vs-uncached equality tests; production callers use
// Iterate.
func IterateLegacy(env Env, centers []vec.Vector, name string) (*IterationResult, error) {
	if name == "" {
		name = "kmeans-legacy"
	}
	return iterate(env, centers, name, modeLegacyText)
}

// IterateNoCombiner runs one MR k-means iteration with combining disabled
// on the legacy text path, shuffling O(n) coordinate records — the worst
// case of the paper's cost model. Intended for the combiner ablation
// benchmark.
func IterateNoCombiner(env Env, centers []vec.Vector, name string) (*IterationResult, error) {
	if name == "" {
		name = "kmeans-nocombine"
	}
	return iterate(env, centers, name, modeNoCombiner)
}

// iterateMode selects the hot-path variant of one k-means iteration.
type iterateMode int

const (
	// modePoints: decoded-point input, in-mapper combining. The default.
	modePoints iterateMode = iota
	// modeLegacyText: text input, emit per point, spill combiner.
	modeLegacyText
	// modeNoCombiner: text input, emit per point, no combining at all.
	modeNoCombiner
)

func iterate(env Env, centers []vec.Vector, name string, mode iterateMode) (*IterationResult, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if len(centers) == 0 {
		return nil, fmt.Errorf("kmeansmr: no centers to refine")
	}
	// One nearest-center structure per job, shared read-only by all tasks.
	nearest := env.NearestFunc(centers)
	job := &mr.Job{
		Name:            name,
		FS:              env.FS,
		Cluster:         env.Cluster,
		Input:           []string{env.Input},
		Ctx:             env.Ctx,
		Trace:           env.Trace,
		DisableColumnar: env.RowMajorOnly(),
		Runner:          env.Runner,
		Spec:            assignSpec(env, centers, mode),
		NewReducer:      func() mr.Reducer { return MergeReducer{} },
	}
	switch mode {
	case modePoints:
		job.PointDim = env.Dim
		job.NewPointMapper = func() mr.PointMapper {
			return &assignMapper{env: env, centers: centers, nearest: nearest}
		}
		job.NewCombiner = func() mr.Reducer { return MergeReducer{} }
	case modeLegacyText:
		job.NewMapper = func() mr.Mapper {
			return &legacyAssignMapper{env: env, centers: centers, nearest: nearest}
		}
		job.NewCombiner = func() mr.Reducer { return MergeReducer{} }
	case modeNoCombiner:
		job.NewMapper = func() mr.Mapper {
			return &legacyAssignMapper{env: env, centers: centers, nearest: nearest}
		}
	}
	res, err := job.Run()
	if err != nil {
		return nil, err
	}
	out := &IterationResult{
		Centers: vec.CloneAll(centers),
		Sizes:   make([]int64, len(centers)),
		Job:     res,
	}
	for _, kv := range res.Output {
		wp, ok := kv.Value.(mr.WeightedPointValue)
		if !ok || kv.Key < 0 || kv.Key >= int64(len(centers)) {
			return nil, fmt.Errorf("kmeansmr: unexpected reducer output key=%d value=%T", kv.Key, kv.Value)
		}
		if wp.Count > 0 {
			out.Centers[kv.Key] = wp.Centroid()
			out.Sizes[kv.Key] = wp.Count
		}
	}
	return out, nil
}

// SamplePoints draws n points uniformly from the dataset by reservoir
// sampling over a single scan — the serial PickInitialCenters step of the
// paper ("we use a serial implementation, that picks initial centers at
// random"). It fails when the dataset holds fewer than n points.
func SamplePoints(env Env, n int, seed int64) ([]vec.Vector, error) {
	out, err := SampleUpTo(env, n, seed)
	if err != nil {
		return nil, err
	}
	if len(out) < n {
		return nil, fmt.Errorf("kmeansmr: dataset has only %d points, need %d samples", len(out), n)
	}
	return out, nil
}

// SampleUpTo draws up to n points uniformly from the dataset by reservoir
// sampling; smaller datasets yield every point. The scan runs over the
// decoded-split cache (accounting one dataset read and the full byte
// volume, like any other scan) and also warms that cache for the jobs
// that follow.
func SampleUpTo(env Env, n int, seed int64) ([]vec.Vector, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	reservoir := make([]vec.Vector, 0, n)
	splits, err := env.FS.Splits(env.Input)
	if err != nil {
		return nil, err
	}
	env.FS.CountDatasetRead()
	seen := 0
	for _, sp := range splits {
		ps, err := env.FS.OpenSplitPoints(sp, env.Dim)
		if err != nil {
			return nil, err
		}
		for i := 0; i < ps.Len(); i++ {
			p := ps.At(i)
			seen++
			if len(reservoir) < n {
				reservoir = append(reservoir, p)
			} else if j := rng.Intn(seen); j < n {
				reservoir[j] = p
			}
		}
	}
	// The reservoir holds read-only views into the cache; hand callers
	// their own copies, since samples become centers that get refined.
	return vec.CloneAll(reservoir), nil
}
