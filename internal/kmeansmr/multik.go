package kmeansmr

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"gmeansmr/internal/dfs"
	"gmeansmr/internal/lloyd"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/vec"
)

// KeyStride packs (k, centerID) into one int64 key as k*KeyStride+centerID.
// 2^32 center ids per k is far beyond any candidate set while keeping keys
// well under the int64 range used by the engine.
const KeyStride = int64(1) << 32

// MultiSeeding selects how multi-k-means picks its initial centers.
type MultiSeeding int

// Seeding strategies.
const (
	// MultiSeedRandom draws KMax dataset points uniformly (one reservoir
	// scan); center set for k = first k of them. The paper's default.
	MultiSeedRandom MultiSeeding = iota
	// MultiSeedPlusPlus draws a larger uniform sample and applies
	// k-means++ over it — the driver-side approximation of Bahmani's
	// scalable k-means++ the paper cites for production deployments ("a
	// production version of multi-k-means thus requires ... an additional
	// job to select initial centers").
	MultiSeedPlusPlus
)

// MultiConfig parameterizes a multi-k-means run (the paper's Algorithm 6
// plus the evaluation job it needs afterwards).
type MultiConfig struct {
	Env
	KMin, KMax, KStep int
	// Iterations is the number of Lloyd iterations to run; the paper uses
	// 10 ("we let the algorithm run 10 iterations, which is enough to find
	// a stable solution").
	Iterations int
	// Seeding selects the initializer (default: random, as in the paper).
	Seeding MultiSeeding
	Seed    int64
	// Progress, when non-nil, is invoked at the end of every iteration
	// with the 1-based iteration number and that iteration's own wall
	// time — the MR job plus the driver-side center updates, never a
	// cumulative total. This matches the per-round durations G-means
	// reports, so mixed-algorithm dashboards chart one semantic.
	Progress func(iteration int, duration time.Duration)
}

func (c MultiConfig) withDefaults() MultiConfig {
	if c.KMin <= 0 {
		c.KMin = 1
	}
	if c.KStep <= 0 {
		c.KStep = 1
	}
	if c.Iterations <= 0 {
		c.Iterations = 10
	}
	return c
}

// MultiResult is the outcome of a multi-k-means run.
type MultiResult struct {
	// CentersByK maps each candidate k to its final center set.
	CentersByK map[int][]vec.Vector
	// WCSSByK and AvgDistByK are filled by Evaluate.
	WCSSByK    map[int]float64
	AvgDistByK map[int]float64
	// IterationTimes records the wall time of each of the chained jobs —
	// the quantity behind the paper's Table 2 ("average time of a single
	// iteration of multi-k-means").
	IterationTimes []time.Duration
	// Counters aggregates engine and app counters over all jobs.
	Counters *mr.Counters
	Duration time.Duration
}

// AvgIterationTime returns the mean job time, the statistic of the paper's
// Table 2.
func (r *MultiResult) AvgIterationTime() time.Duration {
	if len(r.IterationTimes) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range r.IterationTimes {
		total += d
	}
	return total / time.Duration(len(r.IterationTimes))
}

// multiMapper is the paper's Algorithm 6 with in-mapper combining: for
// every candidate k, assign each decoded point under that k's center set
// and fold it into the (k, centerID) accumulator, emitting the Σ_k k
// partial sums in Close. The per-point work is Σ_k k distance
// computations — the O(n·k²) term of the cost analysis — but the shuffle
// and spill sort only ever see Σ_k k records per task instead of n·|ks|.
type multiMapper struct {
	env        Env
	centerSets map[int][]vec.Vector
	ks         []int
	// nearest is built once per job and shared read-only by all tasks.
	nearest map[int]func(vec.Vector) (int, float64, int64)

	accs   map[int][]vec.WeightedPoint
	batch  BatchAssigner
	dists  int64
	points int64
}

func (m *multiMapper) Setup(*mr.TaskContext) error {
	if m.nearest == nil {
		m.nearest = buildNearestByK(m.env, m.centerSets, m.ks)
	}
	m.accs = make(map[int][]vec.WeightedPoint, len(m.ks))
	for _, k := range m.ks {
		m.accs[k] = make([]vec.WeightedPoint, len(m.centerSets[k]))
	}
	return nil
}

func (m *multiMapper) MapPoint(_ *mr.TaskContext, p vec.Vector, _ mr.Emitter) error {
	for _, k := range m.ks {
		best, _, comps := m.nearest[k](p)
		m.dists += comps
		if best < 0 {
			return fmt.Errorf("kmeansmr: point has no nearest center for k=%d (all distances non-finite)", k)
		}
		m.accs[k][best].Merge(vec.WeightedPoint{Sum: p, Count: 1})
	}
	m.points++
	return nil
}

// MapColumns batches the per-k assignment: one fused kernel call per
// candidate center set instead of Σ_k k scalar Dist2 calls per point. Per
// (k, center, dimension) the accumulation runs in the same point order as
// the MapPoint loop, so the partial sums are bit-identical; the distance
// counter ticks the same Σ_k k modelled cost per point.
func (m *multiMapper) MapColumns(_ *mr.TaskContext, cols *dfs.ColumnarSplit, _ mr.Emitter) error {
	n := cols.Len()
	for _, k := range m.ks {
		centers := m.centerSets[k]
		idx := m.batch.Assign(centers, cols)
		m.dists += int64(len(centers)) * int64(n)
		accs := m.accs[k]
		for j, best := range idx {
			if best < 0 {
				return fmt.Errorf("kmeansmr: point has no nearest center for k=%d (all distances non-finite)", k)
			}
			accs[best].Merge(vec.WeightedPoint{Sum: cols.At(j), Count: 1})
		}
	}
	m.points += int64(n)
	return nil
}

func (m *multiMapper) Close(ctx *mr.TaskContext, emit mr.Emitter) error {
	ctx.Count(CounterIDDistances, m.dists)
	ctx.Count(CounterIDPoints, m.points)
	for _, k := range m.ks {
		accs := m.accs[k]
		for cid := range accs {
			if accs[cid].Count > 0 {
				emit.Emit(int64(k)*KeyStride+int64(cid), mr.WeightedPointValue{WeightedPoint: accs[cid]})
			}
		}
	}
	return nil
}

// buildNearestByK constructs the per-k nearest-center lookups once so a
// job's map wave shares them instead of rebuilding (k-d trees included)
// per split.
func buildNearestByK(env Env, centerSets map[int][]vec.Vector, ks []int) map[int]func(vec.Vector) (int, float64, int64) {
	nearest := make(map[int]func(vec.Vector) (int, float64, int64), len(ks))
	for _, k := range ks {
		nearest[k] = env.NearestFunc(centerSets[k])
	}
	return nearest
}

// RunMulti executes the full multi-k-means pipeline: random shared seeding,
// cfg.Iterations chained jobs, and returns the per-k center sets. Call
// Evaluate afterwards to score them (the paper's "at least one additional
// job").
func RunMulti(cfg MultiConfig) (*MultiResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Env.Validate(); err != nil {
		return nil, err
	}
	if cfg.KMax < cfg.KMin {
		return nil, fmt.Errorf("kmeansmr: KMax (%d) below KMin (%d)", cfg.KMax, cfg.KMin)
	}
	start := time.Now()
	// Shared seeding: one reservoir sample; the center set for k is the
	// first k picked centers. One dataset read, shared across all k.
	initSpan := cfg.Env.Trace.StartSpan("init", "phase")
	sample, err := initialCenters(cfg)
	initSpan.End()
	if err != nil {
		return nil, err
	}
	var ks []int
	centerSets := make(map[int][]vec.Vector)
	for k := cfg.KMin; k <= cfg.KMax; k += cfg.KStep {
		ks = append(ks, k)
		centerSets[k] = vec.CloneAll(sample[:k])
	}

	res := &MultiResult{
		CentersByK: centerSets,
		WCSSByK:    make(map[int]float64),
		AvgDistByK: make(map[int]float64),
		Counters:   mr.NewCounters(),
	}
	for it := 0; it < cfg.Iterations; it++ {
		if err := cfg.Context().Err(); err != nil {
			return nil, err
		}
		itStart := time.Now()
		itSpan := cfg.Env.Trace.StartSpan(fmt.Sprintf("iter-%d", it+1), "phase")
		nearest := buildNearestByK(cfg.Env, centerSets, ks)
		job := &mr.Job{
			Name:            fmt.Sprintf("multi-k-means-iter-%d", it),
			FS:              cfg.FS,
			Cluster:         cfg.Cluster,
			Input:           []string{cfg.Input},
			Ctx:             cfg.Ctx,
			Trace:           cfg.Env.Trace,
			PointDim:        cfg.Dim,
			DisableColumnar: cfg.Env.RowMajorOnly(),
			Runner:          cfg.Env.Runner,
			Spec:            multikSpec(cfg.Env, centerSets, ks),
			NewPointMapper: func() mr.PointMapper {
				return &multiMapper{env: cfg.Env, centerSets: centerSets, ks: ks, nearest: nearest}
			},
			NewCombiner: func() mr.Reducer { return MergeReducer{} },
			NewReducer:  func() mr.Reducer { return MergeReducer{} },
		}
		jr, err := job.Run()
		if err != nil {
			itSpan.End()
			return nil, err
		}
		res.IterationTimes = append(res.IterationTimes, jr.Duration)
		jr.Counters.MergeInto(res.Counters)

		next := make(map[int][]vec.Vector, len(ks))
		for _, k := range ks {
			next[k] = vec.CloneAll(centerSets[k])
		}
		for _, kv := range jr.Output {
			k := int(kv.Key / KeyStride)
			cid := kv.Key % KeyStride
			wp, ok := kv.Value.(mr.WeightedPointValue)
			if !ok {
				return nil, fmt.Errorf("kmeansmr: unexpected multi-k output %T", kv.Value)
			}
			set, exists := next[k]
			if !exists || cid < 0 || cid >= int64(len(set)) {
				return nil, fmt.Errorf("kmeansmr: output key (k=%d, center=%d) out of range", k, cid)
			}
			if wp.Count > 0 {
				set[cid] = wp.Centroid()
			}
		}
		for _, k := range ks {
			centerSets[k] = next[k]
		}
		itSpan.End()
		// Progress reports the iteration's own wall time — job plus the
		// center updates above — so every callback (and the facade's
		// Progress.Duration) carries per-round semantics, not cumulative
		// and not job-only.
		if cfg.Progress != nil {
			cfg.Progress(it+1, time.Since(itStart))
		}
	}
	res.CentersByK = centerSets
	res.Duration = time.Since(start)
	return res, nil
}

// initialCenters draws the KMax shared initial centers per the configured
// seeding strategy.
func initialCenters(cfg MultiConfig) ([]vec.Vector, error) {
	switch cfg.Seeding {
	case MultiSeedPlusPlus:
		// Oversample uniformly, then run k-means++ selection over the
		// sample. The sample bound keeps the driver-side work O(sample × k)
		// regardless of dataset size, mirroring the two-phase structure of
		// scalable k-means++ (oversample in parallel, select serially).
		sampleSize := 20 * cfg.KMax
		if sampleSize < 2000 {
			sampleSize = 2000
		}
		pool, err := SampleUpTo(cfg.Env, sampleSize, cfg.Seed)
		if err != nil {
			return nil, err
		}
		if len(pool) < cfg.KMax {
			return nil, fmt.Errorf("kmeansmr: dataset has only %d points, need %d centers", len(pool), cfg.KMax)
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		return lloyd.Seed(pool, cfg.KMax, lloyd.SeedPlusPlus, rng), nil
	default:
		return SamplePoints(cfg.Env, cfg.KMax, cfg.Seed)
	}
}

// evalValue carries the partial per-k quality sums of the evaluation job.
type evalValue struct {
	SumD2 float64
	SumD  float64
	Count int64
}

func (evalValue) ByteSize() int { return 24 }

// evalMapper scores every candidate k in one pass with in-mapper combining:
// it keeps one accumulator per k, fed from decoded points, and flushes
// them in Close.
type evalMapper struct {
	env        Env
	centerSets map[int][]vec.Vector
	ks         []int
	acc        map[int]*evalValue
	batch      BatchAssigner
	dists      int64
}

func (m *evalMapper) Setup(*mr.TaskContext) error {
	m.acc = make(map[int]*evalValue, len(m.ks))
	for _, k := range m.ks {
		m.acc[k] = &evalValue{}
	}
	return nil
}

func (m *evalMapper) MapPoint(_ *mr.TaskContext, p vec.Vector, _ mr.Emitter) error {
	for _, k := range m.ks {
		centers := m.centerSets[k]
		_, d2 := vec.NearestIndex(p, centers)
		m.dists += int64(len(centers))
		a := m.acc[k]
		a.SumD2 += d2
		a.SumD += math.Sqrt(d2)
		a.Count++
	}
	return nil
}

// MapColumns batches the scoring pass: the fused kernel returns each
// point's nearest squared distance bit-identically, and the quality sums
// fold in the same point order as the MapPoint loop.
func (m *evalMapper) MapColumns(_ *mr.TaskContext, cols *dfs.ColumnarSplit, _ mr.Emitter) error {
	n := cols.Len()
	for _, k := range m.ks {
		centers := m.centerSets[k]
		_, dist := m.batch.AssignDist(centers, cols)
		m.dists += int64(len(centers)) * int64(n)
		a := m.acc[k]
		for _, d2 := range dist {
			a.SumD2 += d2
			a.SumD += math.Sqrt(d2)
		}
		a.Count += int64(n)
	}
	return nil
}

func (m *evalMapper) Close(ctx *mr.TaskContext, emit mr.Emitter) error {
	ctx.Count(CounterIDDistances, m.dists)
	for _, k := range m.ks {
		emit.Emit(int64(k), *m.acc[k])
	}
	return nil
}

// evalReducer merges partial quality sums per k.
type evalReducer struct{}

func (evalReducer) Setup(*mr.TaskContext) error { return nil }

func (evalReducer) Reduce(_ *mr.TaskContext, key int64, values []mr.Value, emit mr.Emitter) error {
	var acc evalValue
	for _, v := range values {
		ev, ok := v.(evalValue)
		if !ok {
			return fmt.Errorf("kmeansmr: unexpected eval value %T", v)
		}
		acc.SumD2 += ev.SumD2
		acc.SumD += ev.SumD
		acc.Count += ev.Count
	}
	emit.Emit(key, acc)
	return nil
}

func (evalReducer) Close(*mr.TaskContext, mr.Emitter) error { return nil }

// Evaluate runs the post-processing job that scores every candidate k
// (WCSS and average point-center distance) in a single dataset pass, and
// stores the results into res.
func Evaluate(cfg MultiConfig, res *MultiResult) error {
	cfg = cfg.withDefaults()
	var ks []int
	for k := range res.CentersByK {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	evalSpan := cfg.Env.Trace.StartSpan("evaluate", "phase")
	defer evalSpan.End()
	job := &mr.Job{
		Name:            "multi-k-means-evaluate",
		FS:              cfg.FS,
		Cluster:         cfg.Cluster,
		Input:           []string{cfg.Input},
		Ctx:             cfg.Ctx,
		Trace:           cfg.Env.Trace,
		PointDim:        cfg.Dim,
		DisableColumnar: cfg.Env.RowMajorOnly(),
		Runner:          cfg.Env.Runner,
		Spec:            evalSpec(cfg.Env, res.CentersByK, ks),
		NewPointMapper: func() mr.PointMapper {
			return &evalMapper{env: cfg.Env, centerSets: res.CentersByK, ks: ks}
		},
		NewCombiner: func() mr.Reducer { return evalReducer{} },
		NewReducer:  func() mr.Reducer { return evalReducer{} },
	}
	jr, err := job.Run()
	if err != nil {
		return err
	}
	jr.Counters.MergeInto(res.Counters)
	for _, kv := range jr.Output {
		ev, ok := kv.Value.(evalValue)
		if !ok {
			return fmt.Errorf("kmeansmr: unexpected eval output %T", kv.Value)
		}
		k := int(kv.Key)
		res.WCSSByK[k] = ev.SumD2
		if ev.Count > 0 {
			res.AvgDistByK[k] = ev.SumD / float64(ev.Count)
		}
	}
	return nil
}
