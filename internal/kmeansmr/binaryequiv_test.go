package kmeansmr

import (
	"fmt"
	"math/rand"
	"slices"
	"strings"
	"testing"

	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/vec"
)

// jobCounters is the full set of counters — application and engine — that
// the format-equivalence tests pin. (FS-level BytesRead is deliberately
// absent: the binary encoding is smaller by design.)
var jobCounters = []string{
	CounterDistances, CounterPoints,
	mr.CounterMapInputRecords, mr.CounterMapOutputRecords, mr.CounterMapOutputBytes,
	mr.CounterCombineInput, mr.CounterCombineOutput,
	mr.CounterShuffleRecords, mr.CounterShuffleBytes,
	mr.CounterReduceInputGroups, mr.CounterReduceInputRecords, mr.CounterReduceOutput,
}

func assertIterationsEqual(t *testing.T, label string, text, bin *IterationResult) {
	t.Helper()
	for c := range text.Centers {
		if !vec.Equal(text.Centers[c], bin.Centers[c]) {
			t.Errorf("%s center %d: text %v != binary %v", label, c, text.Centers[c], bin.Centers[c])
		}
		if text.Sizes[c] != bin.Sizes[c] {
			t.Errorf("%s size %d: text %d != binary %d", label, c, text.Sizes[c], bin.Sizes[c])
		}
	}
	for _, counter := range jobCounters {
		if a, b := text.Job.Counters.Get(counter), bin.Job.Counters.Get(counter); a != b {
			t.Errorf("%s %s: text %d != binary %d", label, counter, a, b)
		}
	}
}

// TestIterateBinaryMatchesTextExactly is the ingestion-format contract:
// one MR k-means iteration over a binary point file must produce
// bit-identical centers, sizes, app.* counters and engine counters to the
// same iteration over the text encoding of the same points. The binary
// format changes how bytes decode, never what the job computes.
//
// Bit-identity of the centroid sums requires each map task to fold the
// same records on both paths (floating-point addition is not associative
// across task boundaries). The single-split case gets that for free. The
// multi-split case engineers it: fixed-width 40-byte text records (5
// coordinates × 7 chars + 4 separators + newline) against the 40-byte
// binary stride of dim-5 frames, with split size 40·r+13 on both sides —
// the +13 places every split boundary strictly inside a record, past the
// binary file's 12-byte header, so the text rule (a split reads through
// the record straddling its end) and the binary rule (a split owns frames
// beginning inside its window) cut the record sequence at identical
// indices. The test verifies that alignment explicitly before relying on
// it.
func TestIterateBinaryMatchesTextExactly(t *testing.T) {
	const (
		dim = 5
		n   = 600
	)
	rng := rand.New(rand.NewSource(25))
	var text strings.Builder
	points := make([]vec.Vector, 0, n)
	for i := 0; i < n; i++ {
		fields := make([]string, dim)
		for d := range fields {
			fields[d] = fmt.Sprintf("%7.3f", rng.Float64()*198-99)
		}
		line := strings.Join(fields, " ")
		if len(line) != 39 {
			t.Fatalf("record %d is %d bytes, want 39: %q", i, len(line), line)
		}
		text.WriteString(line)
		text.WriteByte('\n')
		// The binary file holds the float64 the text parse produces, so the
		// decoded points are bit-identical by construction.
		p, err := dataset.ParsePointDim(line, dim)
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, p)
	}
	centers := vec.CloneAll(points[:7])
	cluster := mr.Cluster{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 2,
		TaskHeapBytes: 64 << 20, MaxHeapUsage: 0.66}

	for _, tc := range []struct {
		label     string
		splitSize int
	}{
		{"single-split", 1 << 20},
		{"multi-split", 40*200 + 13},
	} {
		fsText := dfs.New(tc.splitSize)
		fsText.Create("/p.txt", []byte(text.String()))
		fsBin := dfs.New(tc.splitSize)
		fsBin.Create("/p.gmpb", dataset.EncodePointsBinary(points, dim))

		// Guard: both layouts must hand every map task the same records.
		textCounts := splitRecordCounts(t, fsText, "/p.txt", dim)
		binCounts := splitRecordCounts(t, fsBin, "/p.gmpb", dim)
		if !slices.Equal(textCounts, binCounts) {
			t.Fatalf("%s: record-per-task layouts diverge: text %v, binary %v",
				tc.label, textCounts, binCounts)
		}
		if tc.label == "multi-split" && len(textCounts) < 3 {
			t.Fatalf("multi-split case produced %d splits", len(textCounts))
		}

		text, err := Iterate(Env{FS: fsText, Cluster: cluster, Input: "/p.txt", Dim: dim}, centers)
		if err != nil {
			t.Fatal(err)
		}
		bin, err := Iterate(Env{FS: fsBin, Cluster: cluster, Input: "/p.gmpb", Dim: dim}, centers)
		if err != nil {
			t.Fatal(err)
		}
		assertIterationsEqual(t, tc.label, text, bin)
	}
}

// splitRecordCounts returns the number of records each split of path owns.
func splitRecordCounts(t *testing.T, fs *dfs.FS, path string, dim int) []int {
	t.Helper()
	splits, err := fs.Splits(path)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(splits))
	for i, sp := range splits {
		ps, err := fs.OpenSplitPoints(sp, dim)
		if err != nil {
			t.Fatal(err)
		}
		counts[i] = ps.Len()
	}
	return counts
}

// TestIterateBinaryByteAccounting: every scan of a binary input accounts
// one dataset read and the binary file's full byte size — the paper's I/O
// model with the format's own (smaller) byte volume.
func TestIterateBinaryByteAccounting(t *testing.T) {
	ds, err := dataset.Generate(dataset.Spec{K: 3, Dim: 4, N: 1200, MinSeparation: 15, Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	fs := dfs.New(4 << 10)
	ds.WriteToDFSBinary(fs, "/data/points.gmpb")
	env := Env{
		FS: fs,
		Cluster: mr.Cluster{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 2,
			TaskHeapBytes: 64 << 20, MaxHeapUsage: 0.66},
		Input: "/data/points.gmpb",
		Dim:   4,
	}
	size, err := fs.Size(env.Input)
	if err != nil {
		t.Fatal(err)
	}
	fs.ResetCounters()
	for it := 0; it < 3; it++ {
		if _, err := Iterate(env, ds.Centers); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.DatasetReads(); got != 3 {
		t.Errorf("dataset reads = %d, want 3 (one per iteration)", got)
	}
	if got := fs.BytesRead(); got != 3*size {
		t.Errorf("bytes read = %d, want 3×%d", got, size)
	}
}

// TestSampleUpToBinary: the reservoir-sampling scan works unchanged over a
// binary input (it goes through the same decoded-split cache).
func TestSampleUpToBinary(t *testing.T) {
	ds, err := dataset.Generate(dataset.Spec{K: 2, Dim: 3, N: 500, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	fsText := dfs.New(2 << 10)
	ds.WriteToDFS(fsText, "/p.txt")
	fsBin := dfs.New(2 << 10)
	ds.WriteToDFSBinary(fsBin, "/p.gmpb")
	cluster := mr.Cluster{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 2,
		TaskHeapBytes: 64 << 20, MaxHeapUsage: 0.66}

	a, err := SamplePoints(Env{FS: fsText, Cluster: cluster, Input: "/p.txt", Dim: 3}, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SamplePoints(Env{FS: fsBin, Cluster: cluster, Input: "/p.gmpb", Dim: 3}, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sample sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !vec.Equal(a[i], b[i]) {
			t.Errorf("sample %d: text %v != binary %v", i, a[i], b[i])
		}
	}
}
