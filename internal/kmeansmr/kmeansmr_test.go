package kmeansmr

import (
	"math"
	"testing"
	"time"

	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
	"gmeansmr/internal/lloyd"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/vec"
)

// testEnv materializes a dataset into a fresh simulated DFS and returns
// the Env plus the in-memory points for sequential cross-checks.
func testEnv(t *testing.T, spec dataset.Spec, splitSize int) (Env, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	fs := dfs.New(splitSize)
	ds.WriteToDFS(fs, "/data/points.txt")
	env := Env{
		FS: fs,
		Cluster: mr.Cluster{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 2,
			TaskHeapBytes: 64 << 20, MaxHeapUsage: 0.66},
		Input: "/data/points.txt",
		Dim:   spec.Dim,
	}
	return env, ds
}

func TestEnvValidate(t *testing.T) {
	env, _ := testEnv(t, dataset.Spec{K: 2, Dim: 2, N: 10, Seed: 1}, 0)
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := env
	bad.FS = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil FS accepted")
	}
	bad = env
	bad.Input = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty input accepted")
	}
	bad = env
	bad.Dim = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero dim accepted")
	}
}

// TestIterateMatchesSequentialLloyd is the central correctness check of the
// MR k-means job: one MR iteration from given centers must produce exactly
// the centroids a sequential Lloyd assignment step produces.
func TestIterateMatchesSequentialLloyd(t *testing.T) {
	env, ds := testEnv(t, dataset.Spec{K: 4, Dim: 3, N: 2000, MinSeparation: 20, Seed: 2}, 4<<10)
	initial := []vec.Vector{ds.Centers[0], ds.Centers[1], ds.Centers[2], ds.Centers[3]}
	// Perturb so there is real movement.
	initial = vec.CloneAll(initial)
	for _, c := range initial {
		c[0] += 2
	}

	mrRes, err := Iterate(env, initial)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential reference: one assignment + centroid step.
	assign := lloyd.Assign(ds.Points, initial)
	sums := make([]vec.WeightedPoint, len(initial))
	for i, p := range ds.Points {
		sums[assign[i]].Merge(vec.NewWeightedPoint(p))
	}
	for c := range initial {
		if sums[c].Count == 0 {
			continue
		}
		want := sums[c].Centroid()
		if !vec.ApproxEqual(mrRes.Centers[c], want, 1e-9) {
			t.Errorf("center %d: MR %v vs sequential %v", c, mrRes.Centers[c], want)
		}
		if mrRes.Sizes[c] != sums[c].Count {
			t.Errorf("size %d: MR %d vs sequential %d", c, mrRes.Sizes[c], sums[c].Count)
		}
	}
}

func TestIterateCombinerInvariance(t *testing.T) {
	env, ds := testEnv(t, dataset.Spec{K: 3, Dim: 2, N: 600, MinSeparation: 20, Seed: 3}, 2<<10)
	initial := vec.CloneAll(ds.Centers)
	with, err := Iterate(env, initial)
	if err != nil {
		t.Fatal(err)
	}
	without, err := IterateNoCombiner(env, initial, "")
	if err != nil {
		t.Fatal(err)
	}
	for c := range initial {
		if !vec.ApproxEqual(with.Centers[c], without.Centers[c], 1e-9) {
			t.Errorf("center %d differs with/without combiner", c)
		}
		if with.Sizes[c] != without.Sizes[c] {
			t.Errorf("size %d differs with/without combiner", c)
		}
	}
	// Combiner must shrink the shuffle.
	w := with.Job.Counters.Get(mr.CounterShuffleRecords)
	wo := without.Job.Counters.Get(mr.CounterShuffleRecords)
	if w >= wo {
		t.Errorf("combiner did not shrink shuffle: %d vs %d", w, wo)
	}
}

func TestIterateDistanceAccounting(t *testing.T) {
	env, _ := testEnv(t, dataset.Spec{K: 2, Dim: 2, N: 500, Seed: 4}, 0)
	centers := []vec.Vector{{0, 0}, {50, 50}, {100, 100}}
	res, err := Iterate(env, centers)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly n×k distances: the paper's O(kn) per-iteration model.
	if got := res.Job.Counters.Get(CounterDistances); got != 500*3 {
		t.Errorf("distances = %d, want 1500", got)
	}
	if got := res.Job.Counters.Get(CounterPoints); got != 500 {
		t.Errorf("points = %d, want 500", got)
	}
}

func TestIterateEmptyClusterKeepsCenter(t *testing.T) {
	env, _ := testEnv(t, dataset.Spec{K: 1, Dim: 2, N: 100, CenterRange: 1, Seed: 5}, 0)
	far := vec.Vector{1e6, 1e6}
	res, err := Iterate(env, []vec.Vector{{0, 0}, far})
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(res.Centers[1], far) {
		t.Errorf("empty cluster center moved: %v", res.Centers[1])
	}
	if res.Sizes[1] != 0 {
		t.Errorf("empty cluster size = %d", res.Sizes[1])
	}
}

func TestIterateNoCenters(t *testing.T) {
	env, _ := testEnv(t, dataset.Spec{K: 1, Dim: 2, N: 10, Seed: 6}, 0)
	if _, err := Iterate(env, nil); err == nil {
		t.Error("no centers accepted")
	}
}

func TestSamplePoints(t *testing.T) {
	env, ds := testEnv(t, dataset.Spec{K: 2, Dim: 2, N: 300, Seed: 7}, 1<<10)
	sample, err := SamplePoints(env, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) != 10 {
		t.Fatalf("sample = %d", len(sample))
	}
	// Every sampled point must be an actual dataset point.
	for _, s := range sample {
		found := false
		for _, p := range ds.Points {
			if vec.Equal(s, p) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("sampled point %v not in dataset", s)
		}
	}
	// Determinism.
	again, err := SamplePoints(env, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sample {
		if !vec.Equal(sample[i], again[i]) {
			t.Error("same-seed sampling differs")
		}
	}
	// Too many samples.
	if _, err := SamplePoints(env, 1000, 1); err == nil {
		t.Error("oversampling accepted")
	}
}

func TestRunMultiConvergesPerK(t *testing.T) {
	env, ds := testEnv(t, dataset.Spec{K: 3, Dim: 2, N: 900, MinSeparation: 25, Seed: 8}, 4<<10)
	res, err := RunMulti(MultiConfig{Env: env, KMin: 1, KMax: 5, Iterations: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CentersByK) != 5 {
		t.Fatalf("center sets = %d", len(res.CentersByK))
	}
	for k, centers := range res.CentersByK {
		if len(centers) != k {
			t.Errorf("k=%d has %d centers", k, len(centers))
		}
	}
	if len(res.IterationTimes) != 10 {
		t.Errorf("iteration times = %d", len(res.IterationTimes))
	}
	// With k=3 and well-separated data, the k=3 center set must sit near
	// the true centers.
	for _, truth := range ds.Centers {
		_, d2 := vec.NearestIndex(truth, res.CentersByK[3])
		if math.Sqrt(d2) > 5 {
			t.Errorf("k=3 center set misses truth %v by %.2f", truth, math.Sqrt(d2))
		}
	}
}

func TestRunMultiKStep(t *testing.T) {
	env, _ := testEnv(t, dataset.Spec{K: 2, Dim: 2, N: 200, Seed: 9}, 0)
	res, err := RunMulti(MultiConfig{Env: env, KMin: 2, KMax: 8, KStep: 3, Iterations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CentersByK) != 3 { // k = 2, 5, 8
		t.Fatalf("center sets = %v", len(res.CentersByK))
	}
	for _, k := range []int{2, 5, 8} {
		if _, ok := res.CentersByK[k]; !ok {
			t.Errorf("missing k=%d", k)
		}
	}
}

func TestRunMultiValidation(t *testing.T) {
	env, _ := testEnv(t, dataset.Spec{K: 2, Dim: 2, N: 50, Seed: 10}, 0)
	if _, err := RunMulti(MultiConfig{Env: env, KMin: 5, KMax: 2}); err == nil {
		t.Error("KMax < KMin accepted")
	}
}

func TestEvaluateMatchesSequentialWCSS(t *testing.T) {
	env, ds := testEnv(t, dataset.Spec{K: 3, Dim: 2, N: 600, MinSeparation: 25, Seed: 11}, 2<<10)
	cfg := MultiConfig{Env: env, KMin: 1, KMax: 4, Iterations: 6, Seed: 2}
	res, err := RunMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Evaluate(cfg, res); err != nil {
		t.Fatal(err)
	}
	for k, centers := range res.CentersByK {
		assign := lloyd.Assign(ds.Points, centers)
		want := lloyd.WCSS(ds.Points, centers, assign)
		if got := res.WCSSByK[k]; math.Abs(got-want) > 1e-6*(1+want) {
			t.Errorf("k=%d: MR WCSS %v vs sequential %v", k, got, want)
		}
		wantAvg := lloyd.AverageDistance(ds.Points, centers, assign)
		if got := res.AvgDistByK[k]; math.Abs(got-wantAvg) > 1e-9*(1+wantAvg) {
			t.Errorf("k=%d: MR avg dist %v vs sequential %v", k, got, wantAvg)
		}
	}
	// WCSS must be non-increasing in k after convergence on this easy data.
	for k := 2; k <= 4; k++ {
		if res.WCSSByK[k] > res.WCSSByK[k-1]*1.05 {
			t.Errorf("WCSS rose from k=%d (%v) to k=%d (%v)", k-1, res.WCSSByK[k-1], k, res.WCSSByK[k])
		}
	}
}

// TestMultiKDistancesQuadratic checks the paper's O(n·k²) claim: the
// distance count of one multi-k-means pass over k=1..K equals n·K(K+1)/2.
func TestMultiKDistancesQuadratic(t *testing.T) {
	env, _ := testEnv(t, dataset.Spec{K: 2, Dim: 2, N: 400, Seed: 12}, 0)
	res, err := RunMulti(MultiConfig{Env: env, KMin: 1, KMax: 6, Iterations: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(400 * (6 * 7 / 2))
	if got := res.Counters.Get(CounterDistances); got != want {
		t.Errorf("distances = %d, want %d = n·k(k+1)/2", got, want)
	}
}

func TestAvgIterationTime(t *testing.T) {
	r := &MultiResult{}
	if r.AvgIterationTime() != 0 {
		t.Error("empty AvgIterationTime should be 0")
	}
	r.IterationTimes = []time.Duration{2 * time.Second, 4 * time.Second}
	if got := r.AvgIterationTime(); got != 3*time.Second {
		t.Errorf("AvgIterationTime = %v", got)
	}
}
