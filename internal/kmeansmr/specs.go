package kmeansmr

import (
	"fmt"

	"gmeansmr/internal/mr"
	"gmeansmr/internal/mrdist"
	"gmeansmr/internal/vec"
)

// This file makes the package's jobs portable across process boundaries:
// every job constructor attaches an mr.JobSpec naming a kind registered
// here, and the builders below reconstruct the identical mapper/combiner/
// reducer factories from the spec payload inside a worker process
// (internal/mrdist ships the spec; cmd/mrworker links this package so the
// registrations exist on both sides). Payloads use the GMWR encoding of
// docs/wire.md.

// Job kind names registered by this package.
const (
	KindAssign = "kmeans.assign"
	KindMultiK = "kmeans.multik"
	KindEval   = "kmeans.eval"
)

// TagEvalValue is the wire tag of the multi-k evaluation job's partial
// quality sums.
const TagEvalValue = mrdist.TagAppBase // 16

func init() {
	mrdist.RegisterValueCodec(TagEvalValue, mrdist.ValueCodec{
		Encode: func(e *mrdist.Encoder, v mr.Value) bool {
			ev, ok := v.(evalValue)
			if !ok {
				return false
			}
			e.F64(ev.SumD2).F64(ev.SumD).I64(ev.Count)
			return true
		},
		Decode: func(d *mrdist.Decoder) mr.Value {
			return evalValue{SumD2: d.F64(), SumD: d.F64(), Count: d.I64()}
		},
	})
	mrdist.RegisterKind(KindAssign, buildAssign)
	mrdist.RegisterKind(KindMultiK, buildMultiK)
	mrdist.RegisterKind(KindEval, buildEval)
}

// EncodeEnvSpec appends the worker-relevant environment fields: the
// dimensionality and the flags that pick the mapper's nearest-center
// structure. FS/Cluster/Ctx/Trace/Runner never cross the wire — the worker
// supplies its own.
func EncodeEnvSpec(e *mrdist.Encoder, env Env) {
	e.U32(uint32(env.Dim)).Bool(env.UseKDTree).Bool(env.DisableColumnar)
}

// DecodeEnvSpec reads the environment block written by EncodeEnvSpec.
func DecodeEnvSpec(d *mrdist.Decoder) Env {
	return Env{
		Dim:             int(d.U32()),
		UseKDTree:       d.Bool(),
		DisableColumnar: d.Bool(),
	}
}

// EncodeCenters appends a u32-counted center list.
func EncodeCenters(e *mrdist.Encoder, centers []vec.Vector) {
	e.U32(uint32(len(centers)))
	for _, c := range centers {
		e.Vec(c)
	}
}

// DecodeCenters reads a center list written by EncodeCenters.
func DecodeCenters(d *mrdist.Decoder) []vec.Vector {
	n := int(d.U32())
	if d.Err() != nil || n == 0 {
		return nil
	}
	centers := make([]vec.Vector, 0, min(n, 1<<16))
	for i := 0; i < n; i++ {
		centers = append(centers, d.Vec())
	}
	return centers
}

// assignSpec encodes one classical k-means iteration.
func assignSpec(env Env, centers []vec.Vector, mode iterateMode) *mr.JobSpec {
	e := new(mrdist.Encoder).Begin()
	e.U8(byte(mode))
	EncodeEnvSpec(e, env)
	EncodeCenters(e, centers)
	return &mr.JobSpec{Kind: KindAssign, Payload: e.Bytes()}
}

func buildAssign(payload []byte) (mrdist.JobParts, error) {
	d := mrdist.NewDecoder(payload)
	mode := iterateMode(d.U8())
	env := DecodeEnvSpec(d)
	centers := DecodeCenters(d)
	if err := d.Err(); err != nil {
		return mrdist.JobParts{}, fmt.Errorf("kmeansmr: bad %s payload: %w", KindAssign, err)
	}
	// One nearest-center structure per task request, shared by the task's
	// mapper — the same sharing the driver-side job performs per job.
	nearest := env.NearestFunc(centers)
	parts := mrdist.JobParts{NewReducer: func() mr.Reducer { return MergeReducer{} }}
	switch mode {
	case modePoints:
		parts.NewPointMapper = func() mr.PointMapper {
			return &assignMapper{env: env, centers: centers, nearest: nearest}
		}
		parts.NewCombiner = func() mr.Reducer { return MergeReducer{} }
	case modeLegacyText:
		parts.NewMapper = func() mr.Mapper {
			return &legacyAssignMapper{env: env, centers: centers, nearest: nearest}
		}
		parts.NewCombiner = func() mr.Reducer { return MergeReducer{} }
	case modeNoCombiner:
		parts.NewMapper = func() mr.Mapper {
			return &legacyAssignMapper{env: env, centers: centers, nearest: nearest}
		}
	default:
		return mrdist.JobParts{}, fmt.Errorf("kmeansmr: unknown assign mode %d", mode)
	}
	return parts, nil
}

// encodeCenterSets appends the per-k center sets in ks order — the order
// the mapper iterates, which fixes its accumulation and emit order.
func encodeCenterSets(e *mrdist.Encoder, centerSets map[int][]vec.Vector, ks []int) {
	e.U32(uint32(len(ks)))
	for _, k := range ks {
		e.U32(uint32(k))
		EncodeCenters(e, centerSets[k])
	}
}

func decodeCenterSets(d *mrdist.Decoder) (map[int][]vec.Vector, []int) {
	n := int(d.U32())
	if d.Err() != nil {
		return nil, nil
	}
	sets := make(map[int][]vec.Vector, n)
	ks := make([]int, 0, min(n, 1<<16))
	for i := 0; i < n; i++ {
		k := int(d.U32())
		sets[k] = DecodeCenters(d)
		if d.Err() != nil {
			return nil, nil
		}
		ks = append(ks, k)
	}
	return sets, ks
}

// multikSpec encodes one multi-k-means iteration.
func multikSpec(env Env, centerSets map[int][]vec.Vector, ks []int) *mr.JobSpec {
	e := new(mrdist.Encoder).Begin()
	EncodeEnvSpec(e, env)
	encodeCenterSets(e, centerSets, ks)
	return &mr.JobSpec{Kind: KindMultiK, Payload: e.Bytes()}
}

func buildMultiK(payload []byte) (mrdist.JobParts, error) {
	d := mrdist.NewDecoder(payload)
	env := DecodeEnvSpec(d)
	sets, ks := decodeCenterSets(d)
	if err := d.Err(); err != nil {
		return mrdist.JobParts{}, fmt.Errorf("kmeansmr: bad %s payload: %w", KindMultiK, err)
	}
	nearest := buildNearestByK(env, sets, ks)
	return mrdist.JobParts{
		NewPointMapper: func() mr.PointMapper {
			return &multiMapper{env: env, centerSets: sets, ks: ks, nearest: nearest}
		},
		NewCombiner: func() mr.Reducer { return MergeReducer{} },
		NewReducer:  func() mr.Reducer { return MergeReducer{} },
	}, nil
}

// evalSpec encodes the multi-k evaluation job.
func evalSpec(env Env, centerSets map[int][]vec.Vector, ks []int) *mr.JobSpec {
	e := new(mrdist.Encoder).Begin()
	EncodeEnvSpec(e, env)
	encodeCenterSets(e, centerSets, ks)
	return &mr.JobSpec{Kind: KindEval, Payload: e.Bytes()}
}

func buildEval(payload []byte) (mrdist.JobParts, error) {
	d := mrdist.NewDecoder(payload)
	env := DecodeEnvSpec(d)
	sets, ks := decodeCenterSets(d)
	if err := d.Err(); err != nil {
		return mrdist.JobParts{}, fmt.Errorf("kmeansmr: bad %s payload: %w", KindEval, err)
	}
	return mrdist.JobParts{
		NewPointMapper: func() mr.PointMapper {
			return &evalMapper{env: env, centerSets: sets, ks: ks}
		},
		NewCombiner: func() mr.Reducer { return evalReducer{} },
		NewReducer:  func() mr.Reducer { return evalReducer{} },
	}, nil
}
