package kmeansmr

import (
	"sync"
	"testing"

	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/vec"
)

// TestIterateCachedMatchesLegacyExactly is the contract of the decoded-
// split cache and in-mapper combining: the fast path must produce
// bit-identical centers, sizes and app.* counters to the pre-cache
// text-parse path — same fold order per (task, center), same reduce-side
// merge order.
func TestIterateCachedMatchesLegacyExactly(t *testing.T) {
	for _, useTree := range []bool{false, true} {
		env, ds := testEnv(t, dataset.Spec{K: 6, Dim: 5, N: 3000, MinSeparation: 15, Seed: 21}, 8<<10)
		env.UseKDTree = useTree
		initial := vec.CloneAll(ds.Centers)
		for _, c := range initial {
			c[0] += 1.5 // force real movement
		}

		cached, err := Iterate(env, initial)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := IterateLegacy(env, initial, "")
		if err != nil {
			t.Fatal(err)
		}
		for c := range initial {
			if !vec.Equal(cached.Centers[c], legacy.Centers[c]) {
				t.Errorf("kdtree=%v center %d: cached %v != legacy %v",
					useTree, c, cached.Centers[c], legacy.Centers[c])
			}
			if cached.Sizes[c] != legacy.Sizes[c] {
				t.Errorf("kdtree=%v size %d: cached %d != legacy %d",
					useTree, c, cached.Sizes[c], legacy.Sizes[c])
			}
		}
		for _, counter := range []string{CounterDistances, CounterPoints} {
			if a, b := cached.Job.Counters.Get(counter), legacy.Job.Counters.Get(counter); a != b {
				t.Errorf("kdtree=%v %s: cached %d != legacy %d", useTree, counter, a, b)
			}
		}
		// The shuffle volume of the in-mapper-combined path must match the
		// spill-combined legacy path: one record per non-empty (task,
		// center) either way.
		for _, counter := range []string{mr.CounterShuffleRecords, mr.CounterShuffleBytes} {
			if a, b := cached.Job.Counters.Get(counter), legacy.Job.Counters.Get(counter); a != b {
				t.Errorf("kdtree=%v %s: cached %d != legacy %d", useTree, counter, a, b)
			}
		}
	}
}

// TestIterateCachedByteAccounting verifies that every cached iteration
// still pays the paper's logical I/O: one dataset read and the full text
// byte volume per pass, identical to the parse path.
func TestIterateCachedByteAccounting(t *testing.T) {
	env, ds := testEnv(t, dataset.Spec{K: 3, Dim: 4, N: 1200, MinSeparation: 15, Seed: 22}, 4<<10)
	size, err := env.FS.Size(env.Input)
	if err != nil {
		t.Fatal(err)
	}
	env.FS.ResetCounters()
	for it := 0; it < 3; it++ {
		if _, err := Iterate(env, ds.Centers); err != nil {
			t.Fatal(err)
		}
	}
	if got := env.FS.DatasetReads(); got != 3 {
		t.Errorf("dataset reads = %d, want 3 (one per iteration)", got)
	}
	if got := env.FS.BytesRead(); got != 3*size {
		t.Errorf("bytes read = %d, want 3×%d — the cache must not change logical I/O", got, size)
	}
}

// TestIterateConcurrentEnvs runs cached iterations from several goroutines
// over one shared FS (distinct and shared inputs) to exercise the decode
// cache under -race together with the engine's own parallelism.
func TestIterateConcurrentEnvs(t *testing.T) {
	ds, err := dataset.Generate(dataset.Spec{K: 4, Dim: 3, N: 2000, MinSeparation: 20, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	fs := dfs.New(4 << 10)
	ds.WriteToDFS(fs, "/data/a.txt")
	ds.WriteToDFS(fs, "/data/b.txt")
	cluster := mr.Cluster{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 2,
		TaskHeapBytes: 64 << 20, MaxHeapUsage: 0.66}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		input := "/data/a.txt"
		if w%2 == 1 {
			input = "/data/b.txt"
		}
		wg.Add(1)
		go func(input string) {
			defer wg.Done()
			env := Env{FS: fs, Cluster: cluster, Input: input, Dim: 3}
			if _, err := Iterate(env, ds.Centers); err != nil {
				errs <- err
			}
		}(input)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRunMultiCachedMatchesLegacyShuffle pins the multi-k in-mapper
// combining invariant the same way: per task and candidate k, at most one
// record per center crosses the shuffle.
func TestRunMultiShuffleBoundedByCenters(t *testing.T) {
	env, _ := testEnv(t, dataset.Spec{K: 3, Dim: 2, N: 2000, MinSeparation: 20, Seed: 24}, 2<<10)
	res, err := RunMulti(MultiConfig{Env: env, KMin: 1, KMax: 4, Iterations: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	splits, err := env.FS.Splits(env.Input)
	if err != nil {
		t.Fatal(err)
	}
	// Σ_k k = 10 center slots; 2 iterations over len(splits) tasks.
	maxRecords := int64(2 * len(splits) * 10)
	if got := res.Counters.Get(mr.CounterShuffleRecords); got > maxRecords {
		t.Errorf("shuffle records = %d, want ≤ %d (in-mapper combining bound)", got, maxRecords)
	}
}
