package lloyd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gmeansmr/internal/dataset"
	"gmeansmr/internal/vec"
)

func wellSeparated(t *testing.T, k, dim, n int, seed int64) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{K: k, Dim: dim, N: n, MinSeparation: 25, StdDev: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRunRecoversWellSeparatedClusters(t *testing.T) {
	ds := wellSeparated(t, 4, 2, 2000, 1)
	res, err := Run(ds.Points, Config{K: 4, Seeding: SeedPlusPlus, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 4 {
		t.Fatalf("centers = %d", len(res.Centers))
	}
	// Every true center must have a discovered center within a few sigma.
	for _, truth := range ds.Centers {
		_, d2 := vec.NearestIndex(truth, res.Centers)
		if math.Sqrt(d2) > 3 {
			t.Errorf("no discovered center near truth %v (nearest %.2f away)", truth, math.Sqrt(d2))
		}
	}
	if !res.Converged {
		t.Error("expected convergence on an easy dataset")
	}
}

func TestRunValidation(t *testing.T) {
	pts := []vec.Vector{{1}, {2}}
	if _, err := Run(nil, Config{K: 1}); err != ErrNoPoints {
		t.Errorf("err = %v, want ErrNoPoints", err)
	}
	if _, err := Run(pts, Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Run(pts, Config{K: 5}); err == nil {
		t.Error("K > n accepted")
	}
	if _, err := RunFrom(pts, nil, Config{}); err == nil {
		t.Error("no initial centers accepted")
	}
	if _, err := RunFrom(nil, pts, Config{}); err != ErrNoPoints {
		t.Error("empty points accepted by RunFrom")
	}
}

func TestRunFromDoesNotMutateInitial(t *testing.T) {
	pts := []vec.Vector{{0}, {1}, {10}, {11}}
	initial := []vec.Vector{{0.2}, {10.2}}
	snapshot := vec.CloneAll(initial)
	if _, err := RunFrom(pts, initial, Config{}); err != nil {
		t.Fatal(err)
	}
	for i := range initial {
		if !vec.Equal(initial[i], snapshot[i]) {
			t.Fatal("RunFrom mutated its initial centers")
		}
	}
}

func TestEmptyClusterKeepsStaleCenter(t *testing.T) {
	// Second center starts far from all points and captures none; it must
	// survive unchanged rather than collapse to NaN.
	pts := []vec.Vector{{0, 0}, {1, 0}, {0, 1}}
	res, err := RunFrom(pts, []vec.Vector{{0.3, 0.3}, {100, 100}}, Config{MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(res.Centers[1], vec.Vector{100, 100}) {
		t.Errorf("empty cluster center moved to %v", res.Centers[1])
	}
	for _, c := range res.Centers {
		for _, x := range c {
			if math.IsNaN(x) {
				t.Fatal("NaN center")
			}
		}
	}
}

func TestWCSSAndAverageDistance(t *testing.T) {
	pts := []vec.Vector{{0}, {2}, {10}, {12}}
	centers := []vec.Vector{{1}, {11}}
	assign := Assign(pts, centers)
	if got := WCSS(pts, centers, assign); got != 4 {
		t.Errorf("WCSS = %v, want 4", got)
	}
	if got := AverageDistance(pts, centers, assign); got != 1 {
		t.Errorf("AverageDistance = %v, want 1", got)
	}
	if got := AverageDistance(nil, centers, nil); got != 0 {
		t.Errorf("AverageDistance(empty) = %v", got)
	}
}

func TestSeedRandomDistinct(t *testing.T) {
	pts := make([]vec.Vector, 50)
	for i := range pts {
		pts[i] = vec.Vector{float64(i)}
	}
	rng := rand.New(rand.NewSource(1))
	centers := Seed(pts, 10, SeedRandom, rng)
	if len(centers) != 10 {
		t.Fatalf("centers = %d", len(centers))
	}
	seen := map[float64]bool{}
	for _, c := range centers {
		if seen[c[0]] {
			t.Fatalf("duplicate random seed center %v", c)
		}
		seen[c[0]] = true
	}
}

func TestSeedPlusPlusSpreadsCenters(t *testing.T) {
	// Two tight far-apart blobs: k-means++ with k=2 must pick one seed in
	// each blob essentially always.
	var pts []vec.Vector
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		pts = append(pts, vec.Vector{r.NormFloat64() * 0.1})
		pts = append(pts, vec.Vector{1000 + r.NormFloat64()*0.1})
	}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		centers := Seed(pts, 2, SeedPlusPlus, rng)
		d := math.Abs(centers[0][0] - centers[1][0])
		if d < 500 {
			t.Fatalf("trial %d: ++ seeds landed in the same blob (dist %.1f)", trial, d)
		}
	}
}

func TestBestOfImprovesOrEquals(t *testing.T) {
	ds := wellSeparated(t, 6, 2, 600, 9)
	single, err := Run(ds.Points, Config{K: 6, Seeding: SeedRandom, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	best, err := BestOf(ds.Points, Config{K: 6, Seeding: SeedRandom, Seed: 123}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if best.WCSS > single.WCSS+1e-9 {
		t.Errorf("BestOf WCSS %.3f worse than single run %.3f", best.WCSS, single.WCSS)
	}
}

func TestMaxCenterMovement(t *testing.T) {
	a := []vec.Vector{{0, 0}, {1, 1}}
	b := []vec.Vector{{0, 3}, {1, 1}}
	if got := MaxCenterMovement(a, b); got != 3 {
		t.Errorf("MaxCenterMovement = %v, want 3", got)
	}
	if got := MaxCenterMovement(a, a); got != 0 {
		t.Errorf("MaxCenterMovement(same) = %v", got)
	}
	if got := MaxCenterMovement(a, b[:1]); !math.IsInf(got, 1) {
		t.Errorf("length mismatch should be +Inf, got %v", got)
	}
}

// TestPropWCSSNonIncreasingAcrossIterations: running more Lloyd iterations
// never increases WCSS — the fundamental monotonicity of the algorithm.
func TestPropWCSSNonIncreasingAcrossIterations(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 30 + r.Intn(100)
		pts := make([]vec.Vector, n)
		for i := range pts {
			pts[i] = vec.Vector{r.NormFloat64() * 10, r.NormFloat64() * 10}
		}
		k := 2 + r.Intn(4)
		rng := rand.New(rand.NewSource(seed + 1))
		initial := Seed(pts, k, SeedRandom, rng)
		prev := math.Inf(1)
		for iters := 1; iters <= 6; iters++ {
			res, err := RunFrom(pts, initial, Config{MaxIterations: iters, Epsilon: 1e-300})
			if err != nil {
				return false
			}
			if res.WCSS > prev+1e-6 {
				return false
			}
			prev = res.WCSS
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropAssignmentIdempotentAtConvergence: after convergence, re-running
// the assignment step changes nothing.
func TestPropAssignmentIdempotentAtConvergence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(100)
		pts := make([]vec.Vector, n)
		for i := range pts {
			pts[i] = vec.Vector{r.NormFloat64() * 5, r.NormFloat64() * 5}
		}
		res, err := Run(pts, Config{K: 3, Seed: seed})
		if err != nil || !res.Converged {
			return err == nil // non-convergence within 100 iters is not a failure of this property
		}
		again := Assign(pts, res.Centers)
		for i := range again {
			if again[i] != res.Assignment[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropCentersAreCentroids: at convergence every non-empty cluster's
// center equals the centroid of its members.
func TestPropCentersAreCentroids(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pts := make([]vec.Vector, 80)
		for i := range pts {
			pts[i] = vec.Vector{r.NormFloat64() * 3, r.NormFloat64() * 3}
		}
		res, err := Run(pts, Config{K: 4, Seed: seed})
		if err != nil || !res.Converged {
			return err == nil
		}
		groups := make(map[int][]vec.Vector)
		for i, a := range res.Assignment {
			groups[a] = append(groups[a], pts[i])
		}
		for c, members := range groups {
			if !vec.ApproxEqual(vec.Mean(members), res.Centers[c], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
