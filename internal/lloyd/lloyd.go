// Package lloyd implements sequential k-means (Lloyd's algorithm) with
// random and k-means++ seeding. It is the in-memory reference against which
// the MapReduce implementations are validated, the inner engine of the
// X-means baseline, and what the examples use for small data.
package lloyd

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"gmeansmr/internal/vec"
)

// ErrNoPoints is returned when clustering an empty dataset.
var ErrNoPoints = errors.New("lloyd: no points")

// Seeding selects the initial-center strategy.
type Seeding int

// Seeding strategies.
const (
	// SeedRandom picks k distinct points uniformly at random, the paper's
	// PickInitialCenters ("picks initial centers at random").
	SeedRandom Seeding = iota
	// SeedPlusPlus is k-means++ (Arthur & Vassilvitskii 2007), discussed in
	// the paper's related work as the standard smarter initializer.
	SeedPlusPlus
)

// Config parameterizes a k-means run.
type Config struct {
	K             int
	MaxIterations int     // zero selects 100
	Epsilon       float64 // center-movement convergence threshold; zero selects 1e-9
	Seeding       Seeding
	Seed          int64
}

func (c Config) withDefaults() Config {
	if c.MaxIterations == 0 {
		c.MaxIterations = 100
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-9
	}
	return c
}

// Result is the outcome of a k-means run.
type Result struct {
	Centers    []vec.Vector
	Assignment []int // index of the center owning each input point
	WCSS       float64
	Iterations int
	Converged  bool
}

// Run clusters points into cfg.K clusters and returns the final centers,
// assignment and within-cluster sum of squares.
func Run(points []vec.Vector, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("lloyd: K must be positive, got %d", cfg.K)
	}
	if cfg.K > len(points) {
		return nil, fmt.Errorf("lloyd: K (%d) exceeds point count (%d)", cfg.K, len(points))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := Seed(points, cfg.K, cfg.Seeding, rng)
	return RunFrom(points, centers, cfg)
}

// RunFrom runs Lloyd iterations starting from the supplied centers (which
// are not modified). It is used directly by G-means and multi-k-means
// style drivers that manage their own center lifecycles.
func RunFrom(points []vec.Vector, initial []vec.Vector, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if len(initial) == 0 {
		return nil, errors.New("lloyd: no initial centers")
	}
	centers := vec.CloneAll(initial)
	assign := make([]int, len(points))
	res := &Result{}
	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		res.Iterations = iter
		// Assignment step.
		for i, p := range points {
			assign[i], _ = vec.NearestIndex(p, centers)
		}
		// Update step.
		sums := make([]vec.WeightedPoint, len(centers))
		for i, p := range points {
			if sums[assign[i]].Sum == nil {
				sums[assign[i]].Sum = make(vec.Vector, len(p))
			}
			vec.AddInPlace(sums[assign[i]].Sum, p)
			sums[assign[i]].Count++
		}
		maxMove := 0.0
		for c := range centers {
			if sums[c].Count == 0 {
				// Empty cluster: keep the stale center, the conventional
				// Lloyd treatment (matches the MR reducer, which simply
				// receives no group for that key).
				continue
			}
			nc := sums[c].Centroid()
			if move := vec.Dist(nc, centers[c]); move > maxMove {
				maxMove = move
			}
			centers[c] = nc
		}
		if maxMove <= cfg.Epsilon {
			res.Converged = true
			break
		}
	}
	// Final assignment against the final centers.
	for i, p := range points {
		assign[i], _ = vec.NearestIndex(p, centers)
	}
	res.Centers = centers
	res.Assignment = assign
	res.WCSS = WCSS(points, centers, assign)
	return res, nil
}

// Seed draws k initial centers from points using the requested strategy.
func Seed(points []vec.Vector, k int, strategy Seeding, rng *rand.Rand) []vec.Vector {
	switch strategy {
	case SeedPlusPlus:
		return seedPlusPlus(points, k, rng)
	default:
		return seedRandom(points, k, rng)
	}
}

func seedRandom(points []vec.Vector, k int, rng *rand.Rand) []vec.Vector {
	idx := rng.Perm(len(points))[:k]
	out := make([]vec.Vector, k)
	for i, j := range idx {
		out[i] = vec.Clone(points[j])
	}
	return out
}

// seedPlusPlus implements k-means++: each next center is drawn with
// probability proportional to its squared distance from the nearest center
// already chosen.
func seedPlusPlus(points []vec.Vector, k int, rng *rand.Rand) []vec.Vector {
	out := make([]vec.Vector, 0, k)
	out = append(out, vec.Clone(points[rng.Intn(len(points))]))
	d2 := make([]float64, len(points))
	for i, p := range points {
		d2[i] = vec.Dist2(p, out[0])
	}
	for len(out) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var chosen int
		if total <= 0 {
			chosen = rng.Intn(len(points))
		} else {
			r := rng.Float64() * total
			acc := 0.0
			chosen = len(points) - 1
			for i, d := range d2 {
				acc += d
				if acc >= r {
					chosen = i
					break
				}
			}
		}
		c := vec.Clone(points[chosen])
		out = append(out, c)
		for i, p := range points {
			if d := vec.Dist2(p, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return out
}

// WCSS computes the within-cluster sum of squares of an assignment — the
// objective k-means minimizes and the quality metric of the paper's
// Table 3.
func WCSS(points []vec.Vector, centers []vec.Vector, assign []int) float64 {
	var s float64
	for i, p := range points {
		s += vec.Dist2(p, centers[assign[i]])
	}
	return s
}

// AverageDistance computes the mean Euclidean distance from each point to
// its assigned center, the exact statistic the paper's Table 3 reports
// ("the average distance between points and their centers").
func AverageDistance(points []vec.Vector, centers []vec.Vector, assign []int) float64 {
	if len(points) == 0 {
		return 0
	}
	var s float64
	for i, p := range points {
		s += vec.Dist(p, centers[assign[i]])
	}
	return s / float64(len(points))
}

// Assign computes the nearest-center assignment for points.
func Assign(points []vec.Vector, centers []vec.Vector) []int {
	out := make([]int, len(points))
	for i, p := range points {
		out[i], _ = vec.NearestIndex(p, centers)
	}
	return out
}

// BestOf runs Lloyd's algorithm `restarts` times with different seeds and
// returns the run with the lowest WCSS — the standard defense against local
// minima the paper mentions ("a production version of multi-k-means thus
// requires multiple runs with different starting points").
func BestOf(points []vec.Vector, cfg Config, restarts int) (*Result, error) {
	if restarts < 1 {
		restarts = 1
	}
	var best *Result
	for r := 0; r < restarts; r++ {
		c := cfg
		c.Seed = cfg.Seed + int64(r)*1_000_003
		res, err := Run(points, c)
		if err != nil {
			return nil, err
		}
		if best == nil || res.WCSS < best.WCSS {
			best = res
		}
	}
	return best, nil
}

// MaxCenterMovement returns the largest displacement between two center
// slices of equal length, used by drivers to detect convergence.
func MaxCenterMovement(a, b []vec.Vector) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range a {
		if d := vec.Dist(a[i], b[i]); d > worst {
			worst = d
		}
	}
	return worst
}
