// Package obs is the observability layer of the system: a dependency-free
// metrics registry (counters, gauges, fixed-bucket latency histograms) and
// a span/trace recorder, shared by the MapReduce engine, the G-means
// driver and the serving layer.
//
// Two rules keep it safe on hot paths:
//
//   - Metric handles (Counter, Gauge, Histogram) are looked up once and
//     ticked lock-free (atomics) thereafter. Registry lookups take a lock
//     and belong in Setup-style code, never per record.
//   - Everything is nil-tolerant: a nil *Trace records nothing and a nil
//     *Span ends nothing, so instrumented code pays one pointer test —
//     never an allocation — when observability is off.
//
// The registry exports in Prometheus text format (WritePrometheus); the
// trace exports as a JSON event log and as Chrome chrome://tracing format
// (see trace.go).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (negative deltas are ignored:
// counters only go up).
func (c *Counter) Add(delta int64) {
	if c == nil || delta <= 0 {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (in-flight requests, cache
// sizes, live model generation).
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (use a negative delta to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefLatencyBuckets are the default histogram bounds for request/phase
// latencies, in seconds: 100µs to 10s, roughly ×2.5 per step. The fixed
// geometry keeps Observe allocation-free and quantiles cheap.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram. Observations land in the first
// bucket whose upper bound is >= the value; values above every bound land
// in the implicit +Inf bucket. Observe is lock-free.
type Histogram struct {
	bounds  []float64      // sorted upper bounds; +Inf bucket is implicit
	counts  []atomic.Int64 // len(bounds)+1
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// newHistogram builds a histogram over the given sorted upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Linear scan: bucket counts are small (16 by default) and the scan is
	// branch-predictable; a binary search saves nothing at this size.
	i := len(h.bounds)
	for j, b := range h.bounds {
		if v <= b {
			i = j
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket holding the target rank — the standard fixed-bucket
// estimate, exact only up to bucket resolution. Observations in the +Inf
// bucket clamp to the largest finite bound. Returns 0 with no data.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if float64(cum) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			inBucket := h.counts[i].Load()
			if inBucket == 0 {
				return b
			}
			// Position of the target rank inside this bucket.
			frac := (rank - float64(cum-inBucket)) / float64(inBucket)
			return lower + frac*(b-lower)
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// P50, P95 and P99 are the quantiles phase reports chart.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P95 returns the 95th-percentile estimate.
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }

// P99 returns the 99th-percentile estimate.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Registry is a named set of metrics. Lookup methods are get-or-create
// and safe for concurrent use; hot paths hold the returned handle instead
// of re-looking it up. Metric names may carry Prometheus-style labels
// inline — `serve_requests{path="/v1/assign"}` — which WritePrometheus
// folds into the exported sample lines.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe:
// a nil registry returns a nil handle, whose methods no-op.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (nil bounds select DefLatencyBuckets). The
// bounds of an existing histogram are not changed.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	h = newHistogram(bounds)
	r.hists[name] = h
	return h
}

// splitName separates an inline-labelled metric name into its family and
// the label list: `a{x="1"}` → ("a", `x="1"`). Names without labels come
// back with an empty label list.
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// sampleLine formats one sample, merging inline labels with extra labels.
func sampleLine(w io.Writer, name string, extra string, value string) {
	family, labels := splitName(name)
	switch {
	case labels == "" && extra == "":
		fmt.Fprintf(w, "%s %s\n", family, value)
	case labels == "":
		fmt.Fprintf(w, "%s{%s} %s\n", family, extra, value)
	case extra == "":
		fmt.Fprintf(w, "%s{%s} %s\n", family, labels, value)
	default:
		fmt.Fprintf(w, "%s{%s,%s} %s\n", family, labels, extra, value)
	}
}

// WritePrometheus writes every metric in Prometheus text exposition
// format (version 0.0.4), deterministically ordered: families sorted by
// name, one # TYPE line per family, histograms expanded into cumulative
// _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.RLock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.RUnlock()

	type series struct {
		name string
		kind string
	}
	families := make(map[string]string) // family → TYPE
	var all []series
	for name := range counters {
		f, _ := splitName(name)
		families[f] = "counter"
		all = append(all, series{name, "counter"})
	}
	for name := range gauges {
		f, _ := splitName(name)
		families[f] = "gauge"
		all = append(all, series{name, "gauge"})
	}
	for name := range hists {
		f, _ := splitName(name)
		families[f] = "histogram"
		all = append(all, series{name, "histogram"})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })

	lastFamily := ""
	for _, s := range all {
		family, _ := splitName(s.name)
		if family != lastFamily {
			fmt.Fprintf(w, "# TYPE %s %s\n", family, families[family])
			lastFamily = family
		}
		switch s.kind {
		case "counter":
			sampleLine(w, s.name, "", fmt.Sprintf("%d", counters[s.name]))
		case "gauge":
			sampleLine(w, s.name, "", fmt.Sprintf("%d", gauges[s.name]))
		case "histogram":
			h := hists[s.name]
			fam, labels := splitName(s.name)
			var cum int64
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				sampleLine(w, fam+"_bucket"+wrap(labels), fmt.Sprintf("le=%q", formatBound(b)), fmt.Sprintf("%d", cum))
			}
			cum += h.counts[len(h.bounds)].Load()
			sampleLine(w, fam+"_bucket"+wrap(labels), `le="+Inf"`, fmt.Sprintf("%d", cum))
			sampleLine(w, fam+"_sum"+wrap(labels), "", formatFloat(h.Sum()))
			sampleLine(w, fam+"_count"+wrap(labels), "", fmt.Sprintf("%d", h.Count()))
		}
	}
}

// wrap re-attaches an inline label list to a derived series name.
func wrap(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatBound(b float64) string { return formatFloat(b) }

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
