package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total").Add(7)
	mux := DebugMux(reg)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "demo_total 7\n") {
		t.Errorf("/metrics missing counter:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", rec.Code)
	}

	// A nil registry serves an empty exposition rather than panicking.
	rec = httptest.NewRecorder()
	DebugMux(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Errorf("nil-registry /metrics: status %d, body %q", rec.Code, rec.Body.String())
	}
}
