package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total")
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters only go up
	if c.Value() != 4 {
		t.Errorf("counter = %d, want 4", c.Value())
	}
	if r.Counter("jobs_total") != c {
		t.Error("Counter is not get-or-create")
	}
	g := r.Gauge("inflight")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}

	// Nil handles and a nil registry must be inert, not panic.
	var nilReg *Registry
	nilReg.Counter("x").Inc()
	nilReg.Gauge("x").Set(1)
	nilReg.Histogram("x", nil).Observe(1)
	var buf bytes.Buffer
	nilReg.WritePrometheus(&buf)
	if buf.Len() != 0 {
		t.Error("nil registry wrote output")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4, 8})
	// 100 observations uniform in (0,1]: p50 ≈ 0.5 within bucket 1.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("sum = %g, want 50.5", got)
	}
	if p := h.P50(); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("p50 = %g, want 0.5 (interpolated)", p)
	}
	// Push 100 more into the 2-4 bucket: p95 interpolates inside (2,4].
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	p95 := h.P95()
	if p95 <= 2 || p95 > 4 {
		t.Errorf("p95 = %g, want in (2,4]", p95)
	}
	// Values past every bound clamp to the largest bound.
	h2 := r.Histogram("overflow", []float64{1})
	h2.Observe(100)
	if q := h2.P99(); q != 1 {
		t.Errorf("overflow quantile = %g, want clamp to 1", q)
	}
	// NaN observations are discarded.
	h2.Observe(math.NaN())
	if h2.Count() != 1 {
		t.Errorf("NaN was recorded")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewRegistry().Histogram("lat", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-6 {
		t.Errorf("sum = %g, want 8.0", h.Sum())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve_model_swaps_total").Add(2)
	r.Gauge("serve_inflight_requests").Set(1)
	r.Counter(`serve_requests{path="/v1/assign"}`).Add(9)
	h := r.Histogram("serve_assign_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE serve_assign_seconds histogram\n",
		"serve_assign_seconds_bucket{le=\"0.001\"} 1\n",
		"serve_assign_seconds_bucket{le=\"0.01\"} 1\n",
		"serve_assign_seconds_bucket{le=\"+Inf\"} 2\n",
		"serve_assign_seconds_count 2\n",
		"# TYPE serve_inflight_requests gauge\n",
		"serve_inflight_requests 1\n",
		"# TYPE serve_model_swaps_total counter\n",
		"serve_model_swaps_total 2\n",
		"# TYPE serve_requests counter\n",
		"serve_requests{path=\"/v1/assign\"} 9\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Output must be deterministic.
	var buf2 bytes.Buffer
	r.WritePrometheus(&buf2)
	if buf.String() != buf2.String() {
		t.Error("WritePrometheus is not deterministic")
	}
}

func TestHistogramLabelsExpandInBuckets(t *testing.T) {
	r := NewRegistry()
	r.Histogram(`lat{path="/x"}`, []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`lat_bucket{path="/x",le="1"} 1`,
		`lat_bucket{path="/x",le="+Inf"} 1`,
		`lat_sum{path="/x"} 0.5`,
		`lat_count{path="/x"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labelled histogram output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	s := tr.StartSpan("round-1", "phase").SetArg("k", 3)
	time.Sleep(time.Millisecond)
	inner := tr.StartSpan("map-task", "task").SetTID(7)
	inner.End()
	s.End()

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// Events are recorded in end order: inner first.
	if evs[0].Name != "map-task" || evs[0].TID != 7 {
		t.Errorf("inner span = %+v", evs[0])
	}
	if evs[1].Name != "round-1" || evs[1].Cat != "phase" || evs[1].Args["k"] != 3 {
		t.Errorf("outer span = %+v", evs[1])
	}
	if evs[1].Dur < time.Millisecond {
		t.Errorf("outer span dur = %v, want >= 1ms", evs[1].Dur)
	}

	// Nil trace and nil span are inert.
	var nilTrace *Trace
	nilTrace.StartSpan("x", "y").SetArg("a", 1).SetTID(3).End()
	if nilTrace.Enabled() || nilTrace.Events() != nil {
		t.Error("nil trace is not inert")
	}
	if err := nilTrace.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
}

func TestTraceChromeExport(t *testing.T) {
	tr := NewTrace()
	tr.StartSpan("stage", "phase").End()
	tr.StartSpan("reduce-task", "task").SetTID(2).SetArg("groups", int64(5)).End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 2 || out.DisplayTimeUnit != "ms" {
		t.Fatalf("unexpected export shape: %+v", out)
	}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" || ev.PID != 1 || ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("malformed event %+v", ev)
		}
	}
	if out.TraceEvents[1].Args["groups"] != float64(5) {
		t.Errorf("args lost in export: %+v", out.TraceEvents[1])
	}
}

func TestTraceJSONExportAndReset(t *testing.T) {
	tr := NewTrace()
	tr.StartSpan("a", "phase").End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Start  time.Time   `json:"start"`
		Events []SpanEvent `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("event log is not valid JSON: %v", err)
	}
	if len(out.Events) != 1 || out.Events[0].Name != "a" {
		t.Fatalf("unexpected event log: %+v", out)
	}
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Error("Reset left events behind")
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.StartSpan("t", "task").SetTID(id).End()
			}
		}(int64(w))
	}
	wg.Wait()
	if got := len(tr.Events()); got != 800 {
		t.Errorf("got %d events, want 800", got)
	}
}

func TestBuildInfo(t *testing.T) {
	info := BuildInfo()
	for _, key := range []string{"version", "commit", "go"} {
		if info[key] == "" {
			t.Errorf("BuildInfo missing %q", key)
		}
	}
}
