package obs

import "runtime"

// Build identification, injected at link time:
//
//	go build -ldflags "-X gmeansmr/internal/obs.Version=v1.2.3 \
//	                   -X gmeansmr/internal/obs.Commit=$(git rev-parse --short HEAD)"
//
// The defaults identify an un-stamped development build.
var (
	// Version is the release version of this binary.
	Version = "dev"
	// Commit is the VCS revision this binary was built from.
	Commit = "unknown"
)

// BuildInfo returns the build identification served by /healthz.
func BuildInfo() map[string]string {
	return map[string]string{
		"version": Version,
		"commit":  Commit,
		"go":      runtime.Version(),
	}
}
