package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// maxTraceEvents bounds a trace's memory: a span ended beyond the cap is
// counted in Dropped instead of recorded. At ~100 events per MapReduce
// job the cap covers thousands of jobs; a week-long streaming run cannot
// OOM the recorder.
const maxTraceEvents = 1 << 19

// SpanEvent is one completed span of a trace: a named, categorized slice
// of wall time with optional key/value arguments (record counts, byte
// volumes, counter snapshots).
type SpanEvent struct {
	// Name labels the span ("map-task", "round-3", "job:gmeans-kfnc-...").
	Name string `json:"name"`
	// Cat groups spans for filtering: "phase" for the driver's sequential
	// run segments, "round-phase" for within-round segments, "mr" for
	// engine phases, "task" for per-task spans, "job" for whole jobs.
	Cat string `json:"cat"`
	// TID is the lane the span renders on in chrome://tracing — the map or
	// reduce task id for task spans, 0 for driver spans.
	TID int64 `json:"tid"`
	// Start is the span's wall-clock start.
	Start time.Time `json:"start"`
	// Dur is the span's wall duration.
	Dur time.Duration `json:"dur_ns"`
	// Args carries span attributes (throughput, counters, strategy names).
	Args map[string]any `json:"args,omitempty"`
}

// Trace records spans for one run. Safe for concurrent use; every method
// is nil-tolerant, so instrumented code holds a possibly-nil *Trace and
// pays one pointer test when tracing is off.
type Trace struct {
	mu      sync.Mutex
	start   time.Time
	events  []SpanEvent
	dropped int64
}

// NewTrace returns an empty trace whose timestamps are relative to now.
func NewTrace() *Trace {
	return &Trace{start: time.Now()}
}

// Enabled reports whether spans will actually be recorded.
func (t *Trace) Enabled() bool { return t != nil }

// StartSpan opens a span. End it with Span.End; spans may overlap freely
// (concurrent tasks each hold their own). A nil trace returns a nil span,
// and ending a nil span is a no-op.
func (t *Trace) StartSpan(name, cat string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, cat: cat, start: time.Now()}
}

// record appends a completed span.
func (t *Trace) record(ev SpanEvent) {
	t.mu.Lock()
	if len(t.events) >= maxTraceEvents {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Events returns a copy of the recorded spans, ordered by end time.
func (t *Trace) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanEvent, len(t.events))
	copy(out, t.events)
	return out
}

// Dropped returns the number of spans discarded over the recording cap.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards every recorded span, keeping the backing storage — the
// steady-state shape benchmarks measure.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.dropped = 0
	t.start = time.Now()
	t.mu.Unlock()
}

// Span is one open span. Created by Trace.StartSpan; a nil Span ignores
// every call.
type Span struct {
	t     *Trace
	name  string
	cat   string
	tid   int64
	start time.Time
	args  map[string]any
}

// SetTID assigns the span's rendering lane (task id).
func (s *Span) SetTID(id int64) *Span {
	if s != nil {
		s.tid = id
	}
	return s
}

// SetArg attaches one key/value attribute.
func (s *Span) SetArg(key string, v any) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = make(map[string]any, 4)
	}
	s.args[key] = v
	return s
}

// End closes the span and records it.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.record(SpanEvent{
		Name:  s.name,
		Cat:   s.cat,
		TID:   s.tid,
		Start: s.start,
		Dur:   time.Since(s.start),
		Args:  s.args,
	})
}

// WriteJSON writes the trace as a JSON event log: an object holding the
// trace start time and every span with absolute timestamps — the format
// for programmatic consumers (CI artifacts, the stress harness).
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := struct {
		Start   time.Time   `json:"start"`
		Dropped int64       `json:"dropped,omitempty"`
		Events  []SpanEvent `json:"events"`
	}{Start: t.start, Dropped: t.dropped, Events: t.events}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// chromeEvent is one complete ("ph":"X") event of the Chrome trace-event
// format; timestamps and durations are in microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the trace in the Chrome trace-event format:
// load the file in chrome://tracing or https://ui.perfetto.dev to see the
// run's phases and tasks on a timeline.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	start := t.start
	events := make([]chromeEvent, len(t.events))
	for i, ev := range t.events {
		events[i] = chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   "X",
			TS:   float64(ev.Start.Sub(start)) / float64(time.Microsecond),
			Dur:  float64(ev.Dur) / float64(time.Microsecond),
			PID:  1,
			TID:  ev.TID,
			Args: ev.Args,
		}
	}
	t.mu.Unlock()
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	data, err := json.Marshal(out)
	if err != nil {
		return fmt.Errorf("obs: encoding chrome trace: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
