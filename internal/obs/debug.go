package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugMux builds the handler behind a -debug-addr listener: the registry's
// Prometheus text exposition at /metrics plus the standard net/http/pprof
// profiling surface at /debug/pprof/. The pprof handlers are registered
// explicitly on a private mux so importing this package never touches
// http.DefaultServeMux. reg may be nil, in which case /metrics serves an
// empty exposition.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
