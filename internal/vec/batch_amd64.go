//go:build amd64

package vec

// AVX2 dispatch for the batched nearest-center kernel. The assembly tile
// kernel (batch_amd64.s) vectorizes across points — four points per ymm
// register, one SIMD slot each — so every point's four lane sums still
// accumulate one dimension at a time in Dist2's scalar order, and no FMA
// is emitted. That is what keeps the SIMD results bit-identical to the
// scalar kernel (see the package contract in batch.go).

// nearestTileAVX2 processes one tile of m points (m > 0, multiple of 4)
// against one center: for each tile point jj (coordinate d of point jj at
// col[d*stride+jj]) it computes d2 = Dist2(point jj, center) and folds
// d2 < dist[jj] into dist[jj]/idxf[jj], writing cidx (the center's index
// as a float64) on improvement.
//
//go:noescape
func nearestTileAVX2(center *float64, dim int, col *float64, stride, m int, cidx float64, dist, idxf *float64)

// nearestTileAVX512 is the 512-bit variant of nearestTileAVX2: the same
// contract with eight points per register, so m must be a positive
// multiple of 8.
//
//go:noescape
func nearestTileAVX512(center *float64, dim int, col *float64, stride, m int, cidx float64, dist, idxf *float64)

// cpuid executes the CPUID instruction for the given leaf/subleaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (the OS-enabled SIMD state).
func xgetbv() (eax, edx uint32)

// useAVX2 reports whether the CPU and OS support the AVX2 tile kernel.
var useAVX2 = detectAVX2()

// useAVX512 reports whether the CPU and OS additionally support the
// 8-wide AVX-512 tile kernel (AVX512F plus OS-managed opmask/zmm state).
var useAVX512 = detectAVX512()

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// XCR0 bits 1 and 2: the OS saves/restores XMM and YMM state.
	if lo, _ := xgetbv(); lo&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0 // AVX2
}

func detectAVX512() bool {
	if !useAVX2 { // implies leaf 7 and OSXSAVE are present
		return false
	}
	// XCR0 bits 5-7 on top of XMM/YMM: the OS saves/restores opmask,
	// ZMM_Hi256 and Hi16_ZMM state.
	if lo, _ := xgetbv(); lo&0xe6 != 0xe6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<16) != 0 // AVX512F
}

// nearestBatchAccel runs the widest available tile kernel — 8 points per
// register under AVX-512, 4 under AVX2 — over the aligned prefix of the
// split and the scalar kernel over the few remaining points. It reports
// false (caller falls back to the portable kernel) when the hardware has
// no tile kernel or the split is too small to tile.
func nearestBatchAccel(centers []Vector, colflat []float64, n int, idx []int32, dist []float64, s *BatchScratch) bool {
	if !useAVX2 || n < 4 {
		return false
	}
	width := 4
	tile := nearestTileAVX2
	if useAVX512 && n >= 8 {
		width, tile = 8, nearestTileAVX512
	}
	dim := len(centers[0])
	idxf := s.idxfFor(n)
	for j := range idxf {
		idxf[j] = -1
	}
	m := n &^ (width - 1)
	for t := 0; t < m; t += nearestTilePoints {
		tl := nearestTilePoints
		if m-t < tl {
			tl = m - t
		}
		for c := range centers {
			tile(&centers[c][0], dim, &colflat[t], n, tl, float64(c), &dist[t], &idxf[t])
		}
	}
	for j := 0; j < m; j++ {
		idx[j] = int32(idxf[j])
	}
	if m < n {
		nearestBatchTail(centers, colflat, n, m, idx, dist, s)
	}
	return true
}
