package vec

// Packed centers: the serving-side counterpart of the training-side
// columnar split views.
//
// The batch kernels in batch.go want two things the training path gets
// for free from the decoded-split cache: a stable center set it can
// stream over, and reusable dim-major scratch for the query points. An
// assignment server has neither — queries arrive row-major one request
// at a time, and the center set changes only on a model hot swap. A
// CenterPack is the kernel-ready form of one immutable center set: the
// centers copied into a single contiguous row-major backing array (one
// allocation, cache-dense, safely decoupled from the caller's slices)
// plus a pool of AssignScratch buffers so a request can transpose its
// points and run NearestBatch with zero steady-state allocation.
//
// Bit-compatibility: packing copies coordinate values verbatim, so every
// kernel result obtained through a pack is bit-identical to running the
// same kernel — and therefore, per the batch.go contract, the scalar
// NearestIndex — over the original center slices.

import "sync"

// CenterPack is an immutable, kernel-ready packing of one center set.
// Build with PackCenters; safe for concurrent use.
type CenterPack struct {
	k, dim  int
	flat    []float64 // k*dim, row-major, single allocation
	centers []Vector  // views into flat, one per center
	pool    sync.Pool // *AssignScratch
}

// AssignScratch holds the per-call buffers one NearestRows call needs:
// the dim-major transpose of the query points, the result arrays, and
// the kernel's own BatchScratch. Obtain from CenterPack.GetScratch; a
// scratch must not be shared by concurrent calls.
type AssignScratch struct {
	colflat []float64
	idx     []int32
	dist    []float64
	bs      BatchScratch
}

// PackCenters copies centers into a contiguous pack. Every center must
// have the same dimensionality (enforced upstream by model validation;
// a mismatch panics, consistent with this package's conventions).
func PackCenters(centers []Vector) *CenterPack {
	p := &CenterPack{k: len(centers)}
	if p.k == 0 {
		return p
	}
	p.dim = len(centers[0])
	p.flat = make([]float64, p.k*p.dim)
	p.centers = make([]Vector, p.k)
	for i, c := range centers {
		assertSameDim(c, centers[0])
		row := p.flat[i*p.dim : (i+1)*p.dim : (i+1)*p.dim]
		copy(row, c)
		p.centers[i] = row
	}
	return p
}

// K returns the number of packed centers.
func (p *CenterPack) K() int { return p.k }

// Dim returns the centers' dimensionality (0 when K is 0).
func (p *CenterPack) Dim() int { return p.dim }

// Centers returns the packed centers as row views into the pack's
// backing array. Treat them as read-only.
func (p *CenterPack) Centers() []Vector { return p.centers }

// GetScratch returns a scratch from the pack's pool, allocating one the
// first time. Return it with PutScratch when done; scratches grow to the
// largest batch they have served and are reused across requests.
func (p *CenterPack) GetScratch() *AssignScratch {
	if s, ok := p.pool.Get().(*AssignScratch); ok {
		return s
	}
	return &AssignScratch{}
}

// PutScratch returns a scratch to the pool.
func (p *CenterPack) PutScratch(s *AssignScratch) { p.pool.Put(s) }

// assignTilePoints is the point-tile width NearestRows feeds the kernel:
// transposing and assigning tile-by-tile keeps the dim-major buffer
// small enough to stay cache-resident (a whole-batch transpose at large
// n puts its column strides in conflicting cache sets and thrashes on
// every write), and matches the kernel's own tile width.
const assignTilePoints = nearestTilePoints

// grow sizes the scratch for n points of dim coordinates. The dim-major
// buffer only ever holds one tile.
func (s *AssignScratch) grow(dim, n int) {
	tn := n
	if tn > assignTilePoints {
		tn = assignTilePoints
	}
	if cap(s.colflat) < dim*tn {
		s.colflat = make([]float64, dim*tn)
	}
	if cap(s.idx) < n {
		s.idx = make([]int32, n)
	}
	if cap(s.dist) < n {
		s.dist = make([]float64, n)
	}
}

// Nearest answers one row-major query: the index of the nearest packed
// center and the squared distance, exactly as NearestIndex returns them
// (including index -1, +Inf for empty packs or non-finite distances).
// It never allocates.
func (p *CenterPack) Nearest(q Vector) (int, float64) {
	return NearestIndex(q, p.centers)
}

// NearestRows assigns a batch of row-major query points through the
// fused columnar kernel: it transposes points into the scratch's
// dim-major buffer and runs NearestBatch, returning per-point nearest
// center indexes and squared distances (views into the scratch, valid
// until its next use). Every point must have the pack's dimensionality;
// results are bit-identical to calling NearestIndex per point, with the
// same -1/+Inf degenerate outcomes. A nil scratch allocates a private
// one (convenience for tests; hot paths should pool).
func (p *CenterPack) NearestRows(points []Vector, s *AssignScratch) (idx []int32, dist []float64) {
	n := len(points)
	if s == nil {
		s = &AssignScratch{}
	}
	s.grow(p.dim, n)
	for _, q := range points {
		if len(q) != p.dim {
			panic("vec: NearestRows point dimensionality does not match the pack")
		}
	}
	idx, dist = s.idx[:n], s.dist[:n]
	for t := 0; t < n; t += assignTilePoints {
		tl := assignTilePoints
		if n-t < tl {
			tl = n - t
		}
		colflat := s.colflat[:p.dim*tl]
		for j, q := range points[t : t+tl] {
			for d, x := range q {
				colflat[d*tl+j] = x
			}
		}
		NearestBatch(p.centers, colflat, tl, idx[t:t+tl], dist[t:t+tl], &s.bs)
	}
	return idx, dist
}

// NearestColumns assigns n points already laid out dim-major in colflat
// (coordinate d of point j at colflat[d*n+j]) — the zero-transpose entry
// point for callers that decode straight into columnar form. Results as
// in NearestRows.
func (p *CenterPack) NearestColumns(colflat []float64, n int, s *AssignScratch) (idx []int32, dist []float64) {
	if s == nil {
		s = &AssignScratch{}
	}
	s.grow(p.dim, n)
	idx, dist = s.idx[:n], s.dist[:n]
	NearestBatch(p.centers, colflat, n, idx, dist, &s.bs)
	return idx, dist
}
