//go:build !amd64

package vec

// nearestBatchAccel has no accelerated implementation on this
// architecture; NearestBatch always takes the portable kernel.
func nearestBatchAccel([]Vector, []float64, int, []int32, []float64, *BatchScratch) bool {
	return false
}
