package vec

import (
	"math"
	"math/rand"
	"testing"
)

// dist2Reference is the classic sequential formulation Dist2 replaced. It
// is the semantic reference: the unrolled kernel must agree with it to
// floating-point reassociation tolerance everywhere, and bit-exactly for
// dim < 4 (where only the tail loop runs).
func dist2Reference(a, b Vector) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// dist2Lanes mirrors Dist2's documented lane structure independently; the
// two must agree bit-for-bit on every input, which pins the kernel's
// summation order (the property dist2Below relies on).
func dist2Lanes(a, b Vector) float64 {
	var s [4]float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		for l := 0; l < 4; l++ {
			d := a[i+l] - b[i+l]
			s[l] += d * d
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s[0] += d * d
	}
	return (s[0] + s[1]) + (s[2] + s[3])
}

func randomVec(rng *rand.Rand, dim int) Vector {
	v := make(Vector, dim)
	for i := range v {
		v[i] = rng.NormFloat64() * 100
	}
	return v
}

func TestDist2UnrolledBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{1, 2, 3, 4, 5, 7, 8, 10, 16, 33} {
		for trial := 0; trial < 200; trial++ {
			a, b := randomVec(rng, dim), randomVec(rng, dim)
			got := Dist2(a, b)
			if lanes := dist2Lanes(a, b); got != lanes {
				t.Fatalf("dim %d: Dist2 %v != lane reference %v", dim, got, lanes)
			}
			ref := dist2Reference(a, b)
			if dim < 4 && got != ref {
				t.Fatalf("dim %d: Dist2 %v != sequential %v (must be bit-identical below the unroll width)", dim, got, ref)
			}
			if diff := math.Abs(got - ref); diff > 1e-9*(1+ref) {
				t.Fatalf("dim %d: Dist2 %v vs sequential %v (diff %v beyond reassociation tolerance)", dim, got, ref, diff)
			}
		}
	}
}

// TestNearestIndexEarlyExitBitIdentity is the safety proof of the
// early-exit scan: index and distance must be bit-identical to the
// exhaustive scan on every input, including exact ties (which must keep
// resolving to the lowest index).
func TestNearestIndexEarlyExitBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dim := range []int{2, 3, 10, 17} {
		centers := make([]Vector, 50)
		for i := range centers {
			centers[i] = randomVec(rng, dim)
		}
		// Exact duplicate centers exercise tie-breaking.
		centers[20] = Clone(centers[3])
		for trial := 0; trial < 500; trial++ {
			p := randomVec(rng, dim)
			if trial%10 == 0 {
				p = Clone(centers[trial%len(centers)]) // zero-distance queries
			}
			gi, gd := NearestIndex(p, centers)
			wi, wd := nearestIndexFull(p, centers)
			if gi != wi || gd != wd {
				t.Fatalf("dim %d: early-exit (%d, %v) != full (%d, %v)", dim, gi, gd, wi, wd)
			}
		}
	}
	// Empty center set.
	if i, d := NearestIndex(Vector{1}, nil); i != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty centers: got (%d, %v)", i, d)
	}
}

func BenchmarkDist2(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, dim := range []int{2, 10, 64} {
		x, y := randomVec(rng, dim), randomVec(rng, dim)
		b.Run(itoa(dim), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += Dist2(x, y)
			}
			_ = sink
		})
	}
}

// BenchmarkNearestIndexEarlyExit measures the early-exit scan against the
// exhaustive reference on the shape the k-means hot loop sees (many
// centers, wide vectors). "tight" is the steady state of a converging
// k-means run — points sit close to one center, so the best-so-far bound
// gets small early and most candidates die at the first checkpoint;
// "diffuse" is the adversarial regime where distances concentrate and the
// bound almost never prunes, bounding the overhead of the checks.
func BenchmarkNearestIndexEarlyExit(b *testing.B) {
	const dim, k = 32, 128
	for _, tc := range []struct {
		name  string
		noise float64
	}{{"tight", 1}, {"diffuse", 100}} {
		rng := rand.New(rand.NewSource(4))
		centers := make([]Vector, k)
		for i := range centers {
			centers[i] = randomVec(rng, dim)
		}
		queries := make([]Vector, 256)
		for i := range queries {
			noise := make(Vector, dim)
			for d := range noise {
				noise[d] = rng.NormFloat64() * tc.noise
			}
			queries[i] = Add(centers[i%k], noise)
		}
		b.Run(tc.name+"/early-exit", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				NearestIndex(queries[i%len(queries)], centers)
			}
		})
		b.Run(tc.name+"/full-scan", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nearestIndexFull(queries[i%len(queries)], centers)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "dim=0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return "dim=" + string(digits)
}
