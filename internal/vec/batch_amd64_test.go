//go:build amd64

package vec

import (
	"math/rand"
	"testing"
)

// TestNearestBatchPathsAgree pins the three kernel implementations —
// portable, AVX2 tile, AVX-512 tile — bit-identical to each other on the
// hardware that has them, by running the same batches with the dispatch
// flags progressively disabled. Shapes cover the 4- and 8-point
// alignment tails of both tile widths and sub-width batches.
func TestNearestBatchPathsAgree(t *testing.T) {
	if !useAVX2 {
		t.Skip("no tile kernel on this machine")
	}
	saveAVX2, saveAVX512 := useAVX2, useAVX512
	defer func() { useAVX2, useAVX512 = saveAVX2, saveAVX512 }()

	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct{ n, dim, k int }{
		{256, 16, 32}, {257, 16, 32}, {263, 7, 19}, {8, 4, 3}, {12, 5, 9},
		{7, 16, 32}, {5, 3, 2}, {64, 1, 4}, {100, 2, 300},
	} {
		colflat := make([]float64, tc.n*tc.dim)
		for i := range colflat {
			colflat[i] = rng.Float64()*200 - 50
		}
		centers := make([]Vector, tc.k)
		for i := range centers {
			c := make(Vector, tc.dim)
			for j := range c {
				c[j] = rng.Float64() * 100
			}
			centers[i] = c
		}

		type out struct {
			name string
			idx  []int32
			dist []float64
		}
		var outs []out
		run := func(name string, avx2, avx512 bool) {
			useAVX2, useAVX512 = avx2, avx512
			idx := make([]int32, tc.n)
			dist := make([]float64, tc.n)
			NearestBatch(centers, colflat, tc.n, idx, dist, nil)
			outs = append(outs, out{name, idx, dist})
		}
		run("portable", false, false)
		run("avx2", true, false)
		if saveAVX512 {
			run("avx512", true, true)
		}
		ref := outs[0]
		for _, o := range outs[1:] {
			for j := 0; j < tc.n; j++ {
				if o.idx[j] != ref.idx[j] || o.dist[j] != ref.dist[j] {
					t.Fatalf("n=%d dim=%d k=%d point %d: %s (%d, %v) != %s (%d, %v)",
						tc.n, tc.dim, tc.k, j, o.name, o.idx[j], o.dist[j],
						ref.name, ref.idx[j], ref.dist[j])
				}
			}
		}
		outs = nil
	}
}
