package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDot(t *testing.T) {
	cases := []struct {
		a, b Vector
		want float64
	}{
		{Vector{1, 2, 3}, Vector{4, 5, 6}, 32},
		{Vector{0, 0}, Vector{1, 1}, 0},
		{Vector{-1, 1}, Vector{1, 1}, 0},
		{Vector{2}, Vector{3}, 6},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); got != c.want {
			t.Errorf("Dot(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDotDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dot(Vector{1}, Vector{1, 2})
}

func TestNorm(t *testing.T) {
	if got := Norm(Vector{3, 4}); got != 5 {
		t.Errorf("Norm(3,4) = %v, want 5", got)
	}
	if got := Norm2(Vector{3, 4}); got != 25 {
		t.Errorf("Norm2(3,4) = %v, want 25", got)
	}
	if got := Norm(Vector{}); got != 0 {
		t.Errorf("Norm(empty) = %v, want 0", got)
	}
}

func TestDist(t *testing.T) {
	a, b := Vector{1, 1}, Vector{4, 5}
	if got := Dist(a, b); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := Dist2(a, b); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
	if got := Dist(a, a); got != 0 {
		t.Errorf("Dist(a,a) = %v, want 0", got)
	}
}

func TestAddSubScale(t *testing.T) {
	a, b := Vector{1, 2}, Vector{3, 5}
	if got := Add(a, b); !Equal(got, Vector{4, 7}) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); !Equal(got, Vector{2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(a, 3); !Equal(got, Vector{3, 6}) {
		t.Errorf("Scale = %v", got)
	}
	// Inputs untouched.
	if !Equal(a, Vector{1, 2}) || !Equal(b, Vector{3, 5}) {
		t.Error("inputs modified by pure operations")
	}
}

func TestAddInPlace(t *testing.T) {
	a := Vector{1, 2}
	AddInPlace(a, Vector{10, 20})
	if !Equal(a, Vector{11, 22}) {
		t.Errorf("AddInPlace = %v", a)
	}
}

func TestScaleInPlace(t *testing.T) {
	a := Vector{2, 4}
	ScaleInPlace(a, 0.5)
	if !Equal(a, Vector{1, 2}) {
		t.Errorf("ScaleInPlace = %v", a)
	}
}

func TestMean(t *testing.T) {
	got := Mean([]Vector{{0, 0}, {2, 4}, {4, 2}})
	if !Equal(got, Vector{2, 2}) {
		t.Errorf("Mean = %v, want (2,2)", got)
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Mean of empty set")
		}
	}()
	Mean(nil)
}

func TestCloneIndependence(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Clone(a)
	b[0] = 99
	if a[0] != 1 {
		t.Error("Clone shares backing array")
	}
	vs := CloneAll([]Vector{{1}, {2}})
	vs[0][0] = 42
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(Vector{1, 2}, Vector{1.0000001, 2}, 1e-6) {
		t.Error("ApproxEqual should accept within eps")
	}
	if ApproxEqual(Vector{1, 2}, Vector{1.1, 2}, 1e-6) {
		t.Error("ApproxEqual should reject beyond eps")
	}
	if ApproxEqual(Vector{1}, Vector{1, 2}, 1) {
		t.Error("ApproxEqual should reject dim mismatch")
	}
}

func TestProject(t *testing.T) {
	// Projection of (3,4) onto x-axis direction (2,0) is 3.
	if got := Project(Vector{3, 4}, Vector{2, 0}); !almostEqual(got, 3, 1e-12) {
		t.Errorf("Project = %v, want 3", got)
	}
	// Zero direction: defined as 0.
	if got := Project(Vector{3, 4}, Vector{0, 0}); got != 0 {
		t.Errorf("Project onto zero vector = %v, want 0", got)
	}
	// Projection onto itself is its norm.
	v := Vector{3, 4}
	if got := Project(v, v); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Project(v,v) = %v, want |v|=5", got)
	}
}

func TestNearestIndex(t *testing.T) {
	centers := []Vector{{0, 0}, {10, 0}, {5, 5}}
	idx, d2 := NearestIndex(Vector{9, 1}, centers)
	if idx != 1 || !almostEqual(d2, 2, 1e-12) {
		t.Errorf("NearestIndex = (%d, %v), want (1, 2)", idx, d2)
	}
	// Empty centers.
	idx, d2 = NearestIndex(Vector{1}, nil)
	if idx != -1 || !math.IsInf(d2, 1) {
		t.Errorf("NearestIndex(empty) = (%d,%v)", idx, d2)
	}
	// Tie resolves to lowest index.
	idx, _ = NearestIndex(Vector{5, 0}, []Vector{{0, 0}, {10, 0}})
	if idx != 0 {
		t.Errorf("tie should resolve to index 0, got %d", idx)
	}
}

func TestWeightedPoint(t *testing.T) {
	w := NewWeightedPoint(Vector{1, 2})
	w.Merge(NewWeightedPoint(Vector{3, 4}))
	w.Merge(NewWeightedPoint(Vector{5, 6}))
	if w.Count != 3 {
		t.Fatalf("Count = %d, want 3", w.Count)
	}
	if got := w.Centroid(); !ApproxEqual(got, Vector{3, 4}, 1e-12) {
		t.Errorf("Centroid = %v, want (3,4)", got)
	}
}

func TestWeightedPointMergeIntoZero(t *testing.T) {
	var w WeightedPoint
	w.Merge(NewWeightedPoint(Vector{2, 4}))
	if w.Count != 1 || !Equal(w.Sum, Vector{2, 4}) {
		t.Errorf("merge into zero value = %+v", w)
	}
}

func TestWeightedPointCentroidEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var w WeightedPoint
	w.Centroid()
}

func TestWeightedPointByteSize(t *testing.T) {
	w := NewWeightedPoint(Vector{1, 2, 3})
	if got := w.ByteSize(); got != 8*3+16 {
		t.Errorf("ByteSize = %d, want 40", got)
	}
}

// --- property tests -------------------------------------------------------

// randVecPair produces two same-dimension vectors from quick's generator
// seed values.
func randVecPair(r *rand.Rand) (Vector, Vector) {
	d := 1 + r.Intn(8)
	a := make(Vector, d)
	b := make(Vector, d)
	for i := 0; i < d; i++ {
		a[i] = r.NormFloat64() * 100
		b[i] = r.NormFloat64() * 100
	}
	return a, b
}

func TestPropDistanceSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVecPair(r)
		return Dist(a, b) == Dist(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVecPair(r)
		c := make(Vector, len(a))
		for i := range c {
			c[i] = r.NormFloat64() * 100
		}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropDistanceNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVecPair(r)
		return Dist2(a, b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropProjectionLinearity(t *testing.T) {
	// Project(a+b, v) == Project(a, v) + Project(b, v)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVecPair(r)
		v := make(Vector, len(a))
		for i := range v {
			v[i] = r.NormFloat64()
		}
		if Norm(v) == 0 {
			return true
		}
		lhs := Project(Add(a, b), v)
		rhs := Project(a, v) + Project(b, v)
		return almostEqual(lhs, rhs, 1e-6*(1+math.Abs(lhs)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMeanMinimizesSumSquares(t *testing.T) {
	// The centroid minimizes Σ|x−c|² — perturbing it can only increase it.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		d := 1 + r.Intn(5)
		pts := make([]Vector, n)
		for i := range pts {
			pts[i] = make(Vector, d)
			for j := range pts[i] {
				pts[i][j] = r.NormFloat64() * 10
			}
		}
		m := Mean(pts)
		perturbed := Clone(m)
		perturbed[r.Intn(d)] += 0.5
		var sm, sp float64
		for _, p := range pts {
			sm += Dist2(p, m)
			sp += Dist2(p, perturbed)
		}
		return sm <= sp+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropWeightedPointMergeMatchesMean(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		d := 1 + r.Intn(4)
		pts := make([]Vector, n)
		var w WeightedPoint
		for i := range pts {
			pts[i] = make(Vector, d)
			for j := range pts[i] {
				pts[i][j] = r.NormFloat64()
			}
			w.Merge(NewWeightedPoint(pts[i]))
		}
		return ApproxEqual(w.Centroid(), Mean(pts), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
