package vec

import (
	"math"
	"math/rand"
	"testing"
)

func packFixture(t testing.TB, k, dim int, seed int64) ([]Vector, []Vector) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	centers := make([]Vector, k)
	for i := range centers {
		c := make(Vector, dim)
		for j := range c {
			c[j] = rng.NormFloat64() * 50
		}
		centers[i] = c
	}
	points := make([]Vector, 257) // odd count exercises the SIMD tail
	for i := range points {
		p := make(Vector, dim)
		for j := range p {
			p[j] = rng.NormFloat64() * 60
		}
		points[i] = p
	}
	return centers, points
}

// TestPackNearestRowsMatchesNearestIndex is the pack's equivalence pin:
// kernel results through the packed, pooled path must be bit-identical
// to the scalar per-point reference, including the tie rule.
func TestPackNearestRowsMatchesNearestIndex(t *testing.T) {
	for _, tc := range []struct{ k, dim int }{
		{1, 1}, {3, 2}, {8, 3}, {32, 16}, {64, 7}, {128, 33},
	} {
		centers, points := packFixture(t, tc.k, tc.dim, int64(tc.k*100+tc.dim))
		p := PackCenters(centers)
		if p.K() != tc.k || p.Dim() != tc.dim {
			t.Fatalf("k=%d dim=%d: pack reports k=%d dim=%d", tc.k, tc.dim, p.K(), p.Dim())
		}
		s := p.GetScratch()
		idx, dist := p.NearestRows(points, s)
		for j, q := range points {
			wi, wd := NearestIndex(q, centers)
			if int(idx[j]) != wi || dist[j] != wd {
				t.Fatalf("k=%d dim=%d point %d: pack (%d, %v), NearestIndex (%d, %v)",
					tc.k, tc.dim, j, idx[j], dist[j], wi, wd)
			}
			if si, sd := p.Nearest(q); si != wi || sd != wd {
				t.Fatalf("k=%d dim=%d point %d: pack.Nearest (%d, %v), NearestIndex (%d, %v)",
					tc.k, tc.dim, j, si, sd, wi, wd)
			}
		}
		p.PutScratch(s)
	}
}

// TestPackNearestColumns: the zero-transpose entry point must agree with
// the row entry point on the same data.
func TestPackNearestColumns(t *testing.T) {
	centers, points := packFixture(t, 16, 5, 9)
	p := PackCenters(centers)
	n, dim := len(points), 5
	colflat := make([]float64, dim*n)
	for j, q := range points {
		for d, x := range q {
			colflat[d*n+j] = x
		}
	}
	ri, rd := p.NearestRows(points, nil)
	ci, cd := p.NearestColumns(colflat, n, nil)
	for j := range points {
		if ri[j] != ci[j] || rd[j] != cd[j] {
			t.Fatalf("point %d: rows (%d, %v), columns (%d, %v)", j, ri[j], rd[j], ci[j], cd[j])
		}
	}
}

// TestPackIsACopy: mutating the source centers after packing must not
// change what the pack answers — the pack is the hot-swap publication
// unit and cannot alias caller memory.
func TestPackIsACopy(t *testing.T) {
	centers := []Vector{{0, 0}, {10, 0}}
	p := PackCenters(centers)
	centers[0][0] = 1e9
	if i, _ := p.Nearest(Vector{1, 0}); i != 0 {
		t.Fatalf("pack answered %d after source mutation; it aliases caller memory", i)
	}
}

// TestPackDegenerate: empty packs and non-finite points take the scalar
// kernel's documented degenerate outcomes (-1, +Inf).
func TestPackDegenerate(t *testing.T) {
	empty := PackCenters(nil)
	if i, d := empty.Nearest(Vector{1}); i != -1 || !math.IsInf(d, 1) {
		t.Fatalf("empty pack Nearest = (%d, %v)", i, d)
	}
	p := PackCenters([]Vector{{0, 0}, {3, 4}})
	idx, dist := p.NearestRows([]Vector{{math.NaN(), 0}, {1, 1}}, nil)
	if idx[0] != -1 || !math.IsInf(dist[0], 1) {
		t.Fatalf("NaN point = (%d, %v), want (-1, +Inf)", idx[0], dist[0])
	}
	if idx[1] != 0 {
		t.Fatalf("finite point misassigned: %d", idx[1])
	}
}

// TestPackScratchNoAlloc: after warm-up, the pooled request path must
// not allocate — that is the point of the pack.
func TestPackScratchNoAlloc(t *testing.T) {
	centers, points := packFixture(t, 32, 16, 4)
	p := PackCenters(centers)
	s := p.GetScratch()
	p.NearestRows(points, s) // warm the scratch to this batch size
	allocs := testing.AllocsPerRun(100, func() {
		p.NearestRows(points, s)
	})
	if allocs != 0 {
		t.Fatalf("warmed NearestRows allocates %v per call", allocs)
	}
	p.PutScratch(s)
}

func TestPackRaggedPanics(t *testing.T) {
	p := PackCenters([]Vector{{0, 0}})
	defer func() {
		if recover() == nil {
			t.Fatal("ragged point did not panic")
		}
	}()
	p.NearestRows([]Vector{{1, 2, 3}}, nil)
}
