//go:build amd64

#include "textflag.h"

// func nearestTileAVX2(center *float64, dim int, col *float64, stride, m int, cidx float64, dist, idxf *float64)
//
// One tile of m points (m > 0, multiple of 4) against one center.
// Coordinate d of tile point jj lives at col[d*stride + jj]. For each jj:
//
//	d2 = Dist2(point jj, center)        // 4-lane bit pattern, no FMA
//	if d2 < dist[jj] { dist[jj] = d2; idxf[jj] = cidx }
//
// Four points ride in one ymm register, one SIMD slot each, so every
// point's lane sums accumulate dimensions in exactly Dist2's scalar order:
// lane d%4 for the unrolled body, lane 0 for the dim%4 tail, combined as
// (s0+s1)+(s2+s3). VSUBPD/VMULPD/VADDPD round identically to the scalar
// ops; FMA is deliberately not used (it rounds once where mul-then-add
// rounds twice).
TEXT ·nearestTileAVX2(SB), NOSPLIT, $0-64
	MOVQ center+0(FP), SI
	MOVQ dim+8(FP), DX
	MOVQ col+16(FP), BX
	MOVQ stride+24(FP), CX
	MOVQ m+32(FP), DI
	VBROADCASTSD cidx+40(FP), Y15
	MOVQ dist+48(FP), R8
	MOVQ idxf+56(FP), R9

	SHLQ $3, CX              // stride in bytes
	LEAQ (CX)(CX*2), R14     // 3*stride in bytes
	XORQ R10, R10            // byte offset of the current 4-point group

outer:
	// Lane accumulators for 4 points (slot = point, register = lane).
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	LEAQ (BX)(R10*1), R11    // &col[jj]
	MOVQ SI, R12             // center cursor
	MOVQ DX, R13             // dimensions remaining

d4loop:
	CMPQ R13, $4
	JLT  dtail

	VBROADCASTSD (R12), Y4
	VMOVUPD      (R11), Y5
	VSUBPD       Y4, Y5, Y5
	VMULPD       Y5, Y5, Y5
	VADDPD       Y5, Y0, Y0

	VBROADCASTSD 8(R12), Y4
	VMOVUPD      (R11)(CX*1), Y5
	VSUBPD       Y4, Y5, Y5
	VMULPD       Y5, Y5, Y5
	VADDPD       Y5, Y1, Y1

	VBROADCASTSD 16(R12), Y4
	VMOVUPD      (R11)(CX*2), Y5
	VSUBPD       Y4, Y5, Y5
	VMULPD       Y5, Y5, Y5
	VADDPD       Y5, Y2, Y2

	VBROADCASTSD 24(R12), Y4
	VMOVUPD      (R11)(R14*1), Y5
	VSUBPD       Y4, Y5, Y5
	VMULPD       Y5, Y5, Y5
	VADDPD       Y5, Y3, Y3

	ADDQ $32, R12
	LEAQ (R11)(CX*4), R11
	SUBQ $4, R13
	JMP  d4loop

dtail:
	TESTQ R13, R13
	JZ    combine

tailloop:
	// Dist2's tail loop: remaining dimensions accumulate into lane 0.
	VBROADCASTSD (R12), Y4
	VMOVUPD      (R11), Y5
	VSUBPD       Y4, Y5, Y5
	VMULPD       Y5, Y5, Y5
	VADDPD       Y5, Y0, Y0
	ADDQ         $8, R12
	ADDQ         CX, R11
	DECQ         R13
	JNZ          tailloop

combine:
	VADDPD Y1, Y0, Y0        // s0+s1
	VADDPD Y3, Y2, Y2        // s2+s3
	VADDPD Y2, Y0, Y0        // d2 = (s0+s1)+(s2+s3)

	// Fold into the running best: strict less-than (predicate 1, LT_OS)
	// keeps the lowest center index on ties and never accepts NaN/Inf
	// over Inf, matching NearestIndex.
	VMOVUPD   (R8)(R10*1), Y6
	VCMPPD    $1, Y6, Y0, Y7
	VBLENDVPD Y7, Y0, Y6, Y6
	VMOVUPD   Y6, (R8)(R10*1)
	VMOVUPD   (R9)(R10*1), Y8
	VBLENDVPD Y7, Y15, Y8, Y8
	VMOVUPD   Y8, (R9)(R10*1)

	ADDQ $32, R10
	SUBQ $4, DI
	JNZ  outer

	VZEROUPPER
	RET

// func nearestTileAVX512(center *float64, dim int, col *float64, stride, m int, cidx float64, dist, idxf *float64)
//
// The 512-bit sibling of nearestTileAVX2: one tile of m points (m > 0,
// multiple of 8) against one center, eight points per zmm register, one
// SIMD slot each. The per-slot operation order is identical to the ymm
// kernel — lane d%4 accumulators, scalar dimension order, mul-then-add
// with no FMA — so results stay bit-identical to Dist2; only the number
// of points advancing in parallel changes. The best-so-far fold uses an
// opmask: slots where d2 < dist take masked stores of d2 and cidx,
// others are left untouched (same strict less-than, so the lowest center
// index still survives ties).
TEXT ·nearestTileAVX512(SB), NOSPLIT, $0-64
	MOVQ center+0(FP), SI
	MOVQ dim+8(FP), DX
	MOVQ col+16(FP), BX
	MOVQ stride+24(FP), CX
	MOVQ m+32(FP), DI
	VBROADCASTSD cidx+40(FP), Z15
	MOVQ dist+48(FP), R8
	MOVQ idxf+56(FP), R9

	SHLQ $3, CX              // stride in bytes
	LEAQ (CX)(CX*2), R14     // 3*stride in bytes
	XORQ R10, R10            // byte offset of the current 8-point group

outer8:
	// Lane accumulators for 8 points (slot = point, register = lane).
	VXORPD Z0, Z0, Z0
	VXORPD Z1, Z1, Z1
	VXORPD Z2, Z2, Z2
	VXORPD Z3, Z3, Z3
	LEAQ (BX)(R10*1), R11    // &col[jj]
	MOVQ SI, R12             // center cursor
	MOVQ DX, R13             // dimensions remaining

d4loop8:
	CMPQ R13, $4
	JLT  dtail8

	VBROADCASTSD (R12), Z4
	VMOVUPD      (R11), Z5
	VSUBPD       Z4, Z5, Z5
	VMULPD       Z5, Z5, Z5
	VADDPD       Z5, Z0, Z0

	VBROADCASTSD 8(R12), Z4
	VMOVUPD      (R11)(CX*1), Z5
	VSUBPD       Z4, Z5, Z5
	VMULPD       Z5, Z5, Z5
	VADDPD       Z5, Z1, Z1

	VBROADCASTSD 16(R12), Z4
	VMOVUPD      (R11)(CX*2), Z5
	VSUBPD       Z4, Z5, Z5
	VMULPD       Z5, Z5, Z5
	VADDPD       Z5, Z2, Z2

	VBROADCASTSD 24(R12), Z4
	VMOVUPD      (R11)(R14*1), Z5
	VSUBPD       Z4, Z5, Z5
	VMULPD       Z5, Z5, Z5
	VADDPD       Z5, Z3, Z3

	ADDQ $32, R12
	LEAQ (R11)(CX*4), R11
	SUBQ $4, R13
	JMP  d4loop8

dtail8:
	TESTQ R13, R13
	JZ    combine8

tailloop8:
	// Dist2's tail loop: remaining dimensions accumulate into lane 0.
	VBROADCASTSD (R12), Z4
	VMOVUPD      (R11), Z5
	VSUBPD       Z4, Z5, Z5
	VMULPD       Z5, Z5, Z5
	VADDPD       Z5, Z0, Z0
	ADDQ         $8, R12
	ADDQ         CX, R11
	DECQ         R13
	JNZ          tailloop8

combine8:
	VADDPD Z1, Z0, Z0        // s0+s1
	VADDPD Z3, Z2, Z2        // s2+s3
	VADDPD Z2, Z0, Z0        // d2 = (s0+s1)+(s2+s3)

	// Fold into the running best: strict less-than (predicate 1, LT_OS)
	// into an opmask, then masked stores update only the improved slots.
	VMOVUPD (R8)(R10*1), Z6
	VCMPPD  $1, Z6, Z0, K1
	VMOVUPD Z0, K1, (R8)(R10*1)
	VMOVUPD Z15, K1, (R9)(R10*1)

	ADDQ $64, R10
	SUBQ $8, DI
	JNZ  outer8

	VZEROUPPER
	RET

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
