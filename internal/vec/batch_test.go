package vec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// makeBatch builds n random points of dim coordinates in both layouts:
// row-major [][]float64 and dim-major flat (colflat[d*n+j]).
func makeBatch(n, dim int, seed int64) (rows []Vector, colflat []float64) {
	rng := rand.New(rand.NewSource(seed))
	rows = make([]Vector, n)
	colflat = make([]float64, dim*n)
	for j := range rows {
		p := make(Vector, dim)
		for d := range p {
			p[d] = rng.NormFloat64() * 50
			colflat[d*n+j] = p[d]
		}
		rows[j] = p
	}
	return rows, colflat
}

func makeCenters(k, dim int, seed int64) []Vector {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]Vector, k)
	for i := range centers {
		c := make(Vector, dim)
		for d := range c {
			c[d] = rng.NormFloat64() * 50
		}
		centers[i] = c
	}
	return centers
}

// TestDist2BatchMatchesDist2 pins the bit-identity contract across the
// dimension regimes the kernel special-cases: pure tail (dim<4), exact
// unroll multiples, and unroll+tail.
func TestDist2BatchMatchesDist2(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 4, 5, 7, 8, 10, 15, 16, 17, 31, 32, 33, 40} {
		rows, colflat := makeBatch(137, dim, int64(dim))
		center := makeCenters(1, dim, int64(dim)+100)[0]
		out := make([]float64, len(rows))
		var s BatchScratch
		Dist2Batch(center, colflat, len(rows), out, &s)
		for j, p := range rows {
			if want := Dist2(p, center); out[j] != want {
				t.Fatalf("dim %d point %d: Dist2Batch %v, Dist2 %v", dim, j, out[j], want)
			}
		}
		// Reused scratch must not leak state between calls.
		Dist2Batch(center, colflat, len(rows), out, &s)
		for j, p := range rows {
			if want := Dist2(p, center); out[j] != want {
				t.Fatalf("dim %d point %d after scratch reuse: got %v want %v", dim, j, out[j], want)
			}
		}
	}
}

// TestNearestBatchMatchesNearestIndex pins index and distance bit-identity
// against the scalar path on both sides of the early-exit threshold.
func TestNearestBatchMatchesNearestIndex(t *testing.T) {
	for _, tc := range []struct{ n, dim, k int }{
		{200, 3, 7}, {200, 10, 16}, {150, 16, 32}, {150, 33, 5}, {1, 8, 1},
	} {
		rows, colflat := makeBatch(tc.n, tc.dim, int64(tc.n))
		centers := makeCenters(tc.k, tc.dim, int64(tc.dim))
		idx := make([]int32, tc.n)
		dist := make([]float64, tc.n)
		NearestBatch(centers, colflat, tc.n, idx, dist, nil)
		for j, p := range rows {
			wi, wd := NearestIndex(p, centers)
			if int(idx[j]) != wi || dist[j] != wd {
				t.Fatalf("n=%d dim=%d k=%d point %d: batch (%d, %v), scalar (%d, %v)",
					tc.n, tc.dim, tc.k, j, idx[j], dist[j], wi, wd)
			}
		}
	}
}

// TestNearestBatchTies pins the tie rule: duplicated centers must resolve
// to the lowest index, as in NearestIndex. Five identical points put four
// through the accelerated tile path (on hardware that has one) and one
// through the scalar tail, so the rule is pinned on both.
func TestNearestBatchTies(t *testing.T) {
	const n = 5
	c := Vector{1, 2, 3, 4}
	centers := []Vector{Clone(c), Clone(c), Clone(c)}
	colflat := make([]float64, len(c)*n)
	for d, v := range c {
		for j := 0; j < n; j++ {
			colflat[d*n+j] = v // every point equal to every center
		}
	}
	idx := make([]int32, n)
	dist := make([]float64, n)
	NearestBatch(centers, colflat, n, idx, dist, nil)
	for j := 0; j < n; j++ {
		if idx[j] != 0 || dist[j] != 0 {
			t.Fatalf("point %d: tie resolved to (%d, %v), want (0, 0)", j, idx[j], dist[j])
		}
	}
}

// TestNearestBatchDegenerate covers the empty-center and all-non-finite
// cases that the mappers' best<0 guard depends on — again with enough
// points that the accelerated path processes some of them (its fold must
// never accept an Inf distance over the Inf sentinel).
func TestNearestBatchDegenerate(t *testing.T) {
	const n = 5
	idx := make([]int32, n)
	dist := make([]float64, n)
	colflat := []float64{1, 2, 3, 4, 5} // five 1-d points
	NearestBatch(nil, colflat, n, idx, dist, nil)
	for j := range idx {
		if idx[j] != -1 || !math.IsInf(dist[j], 1) {
			t.Fatalf("empty centers: point %d got (%d, %v)", j, idx[j], dist[j])
		}
	}
	huge := math.MaxFloat64
	centers := []Vector{{huge, -huge, huge, -huge}}
	far := Vector{-huge, huge, -huge, huge} // every squared diff overflows to +Inf
	colflat = make([]float64, len(far)*n)
	for d, v := range far {
		for j := 0; j < n; j++ {
			colflat[d*n+j] = v
		}
	}
	NearestBatch(centers, colflat, n, idx, dist, nil)
	for j := range idx {
		wi, wd := NearestIndex(far, centers)
		if int(idx[j]) != wi || dist[j] != wd {
			t.Fatalf("overflow case point %d: batch (%d, %v), scalar (%d, %v)", j, idx[j], dist[j], wi, wd)
		}
		if idx[j] != -1 {
			t.Fatalf("all-distances-Inf point %d should stay unassigned, got %d", j, idx[j])
		}
	}
}

func TestBatchShapePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"short colflat": func() {
			Dist2Batch(Vector{1, 2}, []float64{1, 2, 3}, 2, make([]float64, 2), nil)
		},
		"short out": func() {
			Dist2Batch(Vector{1, 2}, []float64{1, 2, 3, 4}, 2, make([]float64, 1), nil)
		},
		"short idx": func() {
			NearestBatch([]Vector{{1}}, []float64{1, 2}, 2, make([]int32, 1), make([]float64, 2), nil)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// benchNearest compares the scalar per-point assignment loop (what the
// row-major mapper path does per split) against one fused batch call.
func benchNearest(b *testing.B, n, dim, k int) {
	rows, colflat := makeBatch(n, dim, 1)
	centers := makeCenters(k, dim, 2)
	idx := make([]int32, n)
	dist := make([]float64, n)
	var s BatchScratch
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, p := range rows {
				bi, bd := NearestIndex(p, centers)
				idx[j], dist[j] = int32(bi), bd
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			NearestBatch(centers, colflat, n, idx, dist, &s)
		}
	})
}

func BenchmarkNearestBatch(b *testing.B) {
	for _, tc := range []struct{ n, dim, k int }{
		{8192, 16, 32}, {8192, 32, 32}, {8192, 10, 16}, {8192, 64, 32},
	} {
		b.Run(benchName(tc.n, tc.dim, tc.k), func(b *testing.B) { benchNearest(b, tc.n, tc.dim, tc.k) })
	}
}

func benchName(n, dim, k int) string {
	return fmt.Sprintf("n=%d/d=%d/k=%d", n, dim, k)
}
