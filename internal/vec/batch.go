package vec

// Batched (dim-major) distance kernels.
//
// The scalar kernels in vec.go walk one point at a time: NearestIndex costs
// one function call and one loop ramp-up per (point, center) pair. The
// kernels in this file flip the loop nest: callers hand them a whole split
// of points in column-major (structure-of-arrays) order — coordinate d of
// point j at colflat[d*n+j] — and one call assigns every point, processing
// one dimension across a block of points per instruction on hardware with
// SIMD support (8-wide AVX-512 and 4-wide AVX2 paths on amd64, detected
// at startup) and falling back to a portable Go loop elsewhere.
//
// Bit-compatibility contract: every distance these kernels produce is
// bit-identical to Dist2 on the same operands. Dist2 is unrolled over four
// accumulator lanes combined as (s0+s1)+(s2+s3); the batch kernels keep the
// exact same dimension-to-lane assignment (lane d%4 for the unrolled body,
// lane 0 for the tail) and the same final combine. The SIMD path preserves
// this because it vectorizes across *points* — each point owns one SIMD
// slot, so its four lane sums still accumulate one dimension at a time in
// scalar order, and no fused multiply-add is used (FMA rounds once where
// mul-then-add rounds twice). NearestBatch therefore selects exactly the
// index NearestIndex selects, including its tie rule (strictly-closer wins,
// so the lowest index survives ties) and its degenerate outcome (index -1,
// +Inf when centers is empty or every distance is non-finite). The vec
// tests pin this equivalence on both paths.
//
// Nothing here allocates per point: scratch lives in BatchScratch and is
// reusable across calls.

import "math"

// BatchScratch holds the buffers reused across batch-kernel calls. The
// zero value is ready to use; kernels grow it on demand. A scratch must
// not be shared by concurrent calls.
type BatchScratch struct {
	lanes []float64 // 4 lane arrays of n values each (portable path)
	idxf  []float64 // best-index-as-float64 buffer (SIMD path blends doubles)
	point []float64 // one gathered row for tail points
}

// lanesFor returns the four lane arrays sized for n points.
func (s *BatchScratch) lanesFor(n int) (l0, l1, l2, l3 []float64) {
	if cap(s.lanes) < 4*n {
		s.lanes = make([]float64, 4*n)
	}
	b := s.lanes[:4*n]
	return b[0*n : 1*n : 1*n], b[1*n : 2*n : 2*n], b[2*n : 3*n : 3*n], b[3*n : 4*n : 4*n]
}

// idxfFor returns the float64 index buffer sized for n points.
func (s *BatchScratch) idxfFor(n int) []float64 {
	if cap(s.idxf) < n {
		s.idxf = make([]float64, n)
	}
	return s.idxf[:n]
}

// pointFor returns a gather buffer for one dim-coordinate row.
func (s *BatchScratch) pointFor(dim int) []float64 {
	if cap(s.point) < dim {
		s.point = make([]float64, dim)
	}
	return s.point[:dim]
}

// accumulateLanes fills the lane arrays with the per-lane partial sums of
// squared differences between every point of colflat and center. After it
// returns, Dist2(point j, center) == (l0[j]+l1[j])+(l2[j]+l3[j]) bit-for-bit.
func accumulateLanes(center Vector, colflat []float64, n int, l0, l1, l2, l3 []float64) {
	dim := len(center)
	if dim < 4 {
		// The whole vector is Dist2's tail loop: everything accumulates in
		// lane 0, and the other lanes contribute zero to the combine.
		for j := range l0[:n] {
			l0[j], l1[j], l2[j], l3[j] = 0, 0, 0, 0
		}
		for d := 0; d < dim; d++ {
			c := center[d]
			x := colflat[d*n : d*n+n : d*n+n]
			acc := l0[:n]
			for j, v := range x {
				e := v - c
				acc[j] += e * e
			}
		}
		return
	}
	for d := 0; d+4 <= dim; d += 4 {
		c0, c1, c2, c3 := center[d], center[d+1], center[d+2], center[d+3]
		x0 := colflat[(d+0)*n : (d+0)*n+n : (d+0)*n+n]
		x1 := colflat[(d+1)*n : (d+1)*n+n : (d+1)*n+n]
		x2 := colflat[(d+2)*n : (d+2)*n+n : (d+2)*n+n]
		x3 := colflat[(d+3)*n : (d+3)*n+n : (d+3)*n+n]
		if d == 0 {
			// The first dimension group initializes the lanes, so the
			// scratch never needs a separate zeroing pass.
			for j := range x0 {
				e0 := x0[j] - c0
				e1 := x1[j] - c1
				e2 := x2[j] - c2
				e3 := x3[j] - c3
				l0[j] = e0 * e0
				l1[j] = e1 * e1
				l2[j] = e2 * e2
				l3[j] = e3 * e3
			}
			continue
		}
		for j := range x0 {
			e0 := x0[j] - c0
			e1 := x1[j] - c1
			e2 := x2[j] - c2
			e3 := x3[j] - c3
			l0[j] += e0 * e0
			l1[j] += e1 * e1
			l2[j] += e2 * e2
			l3[j] += e3 * e3
		}
	}
	// Tail dimensions accumulate into lane 0, exactly like Dist2's tail loop.
	for d := dim - dim%4; d < dim; d++ {
		c := center[d]
		x := colflat[d*n : d*n+n : d*n+n]
		acc := l0[:n]
		for j, v := range x {
			e := v - c
			acc[j] += e * e
		}
	}
}

// Dist2Batch writes Dist2(point j, center) into out[j] for each of the n
// points stored dim-major in colflat (coordinate d of point j at
// colflat[d*n+j]). Results are bit-identical to calling Dist2 per point.
// It panics when colflat or out cannot hold n points of len(center)
// coordinates. A nil scratch allocates a fresh one.
func Dist2Batch(center Vector, colflat []float64, n int, out []float64, s *BatchScratch) {
	checkBatchShape(len(center), colflat, n)
	if len(out) < n {
		panic("vec: Dist2Batch out slice too short")
	}
	if s == nil {
		s = &BatchScratch{}
	}
	l0, l1, l2, l3 := s.lanesFor(n)
	accumulateLanes(center, colflat, n, l0, l1, l2, l3)
	for j := 0; j < n; j++ {
		out[j] = (l0[j] + l1[j]) + (l2[j] + l3[j])
	}
}

// nearestTilePoints is the point-tile width of the SIMD path: tiles are
// sized so one tile's columns stay cache-resident while every center
// streams over it, instead of every center re-streaming the whole split.
const nearestTilePoints = 256

// NearestBatch assigns each of the n dim-major points of colflat to its
// nearest center: idx[j] receives the index of the nearest center to point
// j and dist[j] the squared distance, exactly the values NearestIndex
// returns for the same point (same bits, same tie rule, and idx[j] = -1
// with dist[j] = +Inf when centers is empty or every distance is
// non-finite). One call replaces n·k scalar Dist2 calls. A nil scratch
// allocates a fresh one.
func NearestBatch(centers []Vector, colflat []float64, n int, idx []int32, dist []float64, s *BatchScratch) {
	if len(idx) < n || len(dist) < n {
		panic("vec: NearestBatch idx/dist slices too short")
	}
	dim := 0
	if len(centers) > 0 {
		dim = len(centers[0])
		checkBatchShape(dim, colflat, n)
	}
	inf := math.Inf(1)
	for j := 0; j < n; j++ {
		idx[j], dist[j] = -1, inf
	}
	if len(centers) == 0 || n == 0 {
		return
	}
	if s == nil {
		s = &BatchScratch{}
	}
	if dim > 0 && nearestBatchAccel(centers, colflat, n, idx, dist, s) {
		return
	}
	l0, l1, l2, l3 := s.lanesFor(n)
	for c, center := range centers {
		accumulateLanes(center, colflat, n, l0, l1, l2, l3)
		cc := int32(c)
		dd := dist[:n]
		ii := idx[:n]
		for j := range dd {
			d2 := (l0[j] + l1[j]) + (l2[j] + l3[j])
			if d2 < dd[j] {
				dd[j], ii[j] = d2, cc
			}
		}
	}
}

// nearestBatchTail assigns the points the SIMD tile loop did not cover
// (at most 3, when n is not a multiple of the SIMD width) by gathering
// each row and running the scalar kernel — bit-identical by construction.
func nearestBatchTail(centers []Vector, colflat []float64, n, from int, idx []int32, dist []float64, s *BatchScratch) {
	dim := len(centers[0])
	p := s.pointFor(dim)
	for j := from; j < n; j++ {
		for d := 0; d < dim; d++ {
			p[d] = colflat[d*n+j]
		}
		bi, bd := NearestIndex(p, centers)
		idx[j], dist[j] = int32(bi), bd
	}
}

// checkBatchShape panics unless colflat holds exactly n points of dim
// coordinates. Shape mismatches are programming errors, as elsewhere in
// this package.
func checkBatchShape(dim int, colflat []float64, n int) {
	if n < 0 || len(colflat) != dim*n {
		panic("vec: dim-major buffer does not hold n points of the center's dimensionality")
	}
}
