// Package vec provides the small dense-vector kernel used throughout the
// repository: Euclidean geometry in R^d over []float64, plus the projection
// primitive that G-means uses to reduce each cluster to one dimension, and
// the batched dim-major kernels (batch.go) that assign a whole split of
// points per call.
//
// All functions treat their inputs as read-only unless the doc comment says
// otherwise. Vectors of mismatching dimensionality cause a panic: dimension
// mismatches are programming errors, not runtime conditions, and every
// caller in this module constructs vectors of a single dimensionality per
// dataset.
//
// # Kernel bit-compatibility
//
// Floating-point addition is not associative, so kernel variants that
// reassociate sums return different low-order bits — and the repository's
// equivalence pins (cached vs legacy path, text vs binary, columnar vs
// row-major) demand exact ones. The rules:
//
//   - Dist2 is the reference: four accumulator lanes over dimensions
//     (lane d%4 in the unrolled body, lane 0 for the tail), combined as
//     (s0+s1)+(s2+s3).
//   - Every other distance path reproduces those bits exactly: the
//     early-exit scan (dist2Below) replicates the lane structure; the
//     batch kernels (Dist2Batch, NearestBatch) keep one lane set per
//     point, vectorizing across points, and use no fused multiply-add
//     (FMA rounds once where mul-then-add rounds twice). The vec tests
//     pin all of this.
//   - Nearest-center selection is strictly-closer-wins everywhere, so
//     ties resolve to the lowest center index on every path.
//   - Across releases: the 4-lane unroll landed in PR 3; results differ
//     in low-order bits from the older sequential kernel for dim ≥ 4.
//     Any future kernel (SIMD included) must either replicate the lane
//     structure or accept re-pinning every equivalence test.
package vec

import (
	"fmt"
	"math"
)

// Vector is a point (or direction) in R^d.
type Vector = []float64

// assertSameDim panics unless a and b have equal length.
func assertSameDim(a, b Vector) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch: %d vs %d", len(a), len(b)))
	}
}

// Clone returns a fresh copy of v.
func Clone(v Vector) Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// CloneAll deep-copies a slice of vectors.
func CloneAll(vs []Vector) []Vector {
	out := make([]Vector, len(vs))
	for i, v := range vs {
		out[i] = Clone(v)
	}
	return out
}

// Dot returns the inner product <a, b>.
func Dot(a, b Vector) float64 {
	assertSameDim(a, b)
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the squared Euclidean norm of v.
func Norm2(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v Vector) float64 { return math.Sqrt(Norm2(v)) }

// Dist2 returns the squared Euclidean distance between a and b.
//
// This is the inner loop of every k-means variant in the repository; it is
// deliberately branch-free and allocation-free, and unrolled over four
// independent accumulator lanes so the FP additions pipeline instead of
// serializing on one dependency chain. The lane sums combine as
// (s0+s1)+(s2+s3); dist2Partial below mirrors the exact same lane
// structure so early-exit scans stay bit-identical to the full
// computation. For dim < 4 the tail loop alone runs and the result is
// bit-identical to the classic sequential sum.
func Dist2(a, b Vector) float64 {
	assertSameDim(a, b)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b Vector) float64 { return math.Sqrt(Dist2(a, b)) }

// Add returns a+b as a new vector.
func Add(a, b Vector) Vector {
	assertSameDim(a, b)
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b Vector) {
	assertSameDim(a, b)
	for i := range a {
		a[i] += b[i]
	}
}

// Sub returns a-b as a new vector.
func Sub(a, b Vector) Vector {
	assertSameDim(a, b)
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Scale returns s*v as a new vector.
func Scale(v Vector, s float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] * s
	}
	return out
}

// ScaleInPlace multiplies v by s.
func ScaleInPlace(v Vector, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Mean returns the centroid of vs. It panics on an empty input because a
// centroid of nothing is undefined and callers guard against empty clusters.
func Mean(vs []Vector) Vector {
	if len(vs) == 0 {
		panic("vec: Mean of empty set")
	}
	out := make(Vector, len(vs[0]))
	for _, v := range vs {
		AddInPlace(out, v)
	}
	ScaleInPlace(out, 1/float64(len(vs)))
	return out
}

// Equal reports whether a and b are identical component-wise.
func Equal(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether a and b differ by at most eps in every
// component.
func ApproxEqual(a, b Vector, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > eps {
			return false
		}
	}
	return true
}

// Project returns the scalar projection of point p onto the direction d
// (not necessarily unit length), i.e. <p, d> / |d|.
//
// G-means projects every point of a cluster onto the vector joining the
// cluster's two candidate children; the resulting one-dimensional sample is
// what the Anderson–Darling test consumes. When d is the zero vector the
// projection is defined as 0 (the degenerate case of two identical candidate
// centers, which the driver treats as "nothing to split").
func Project(p, d Vector) float64 {
	assertSameDim(p, d)
	n := Norm(d)
	if n == 0 {
		return 0
	}
	return Dot(p, d) / n
}

// NearestIndex returns the index of the center nearest to p under squared
// Euclidean distance, together with that squared distance. Ties resolve to
// the lowest index, which keeps the assignment deterministic. It returns
// (-1, +Inf) when centers is empty.
//
// For wide vectors (≥ earlyExitMinDim) the scan early-exits: once a
// candidate's partial sum of squares reaches the best distance so far,
// the remaining dimensions cannot make it strictly closer (squared terms
// are non-negative and IEEE 754 addition of non-negative values is
// monotone), so the candidate is abandoned. Below that width the bound
// checks cost more than the arithmetic they save, so the plain unrolled
// scan runs. Results — index and distance — are bit-identical to the
// exhaustive scan (nearestIndexFull) either way, which the vec tests
// assert.
func NearestIndex(p Vector, centers []Vector) (int, float64) {
	if len(p) < earlyExitMinDim {
		return nearestIndexFull(p, centers)
	}
	best, bestD := -1, math.Inf(1)
	for i, c := range centers {
		if d, closer := dist2Below(p, c, bestD); closer {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// earlyExitMinDim is the vector width from which the early-exit scan pays
// for its bound checks (one check per 16-dimension chunk in dist2Below).
const earlyExitMinDim = 16

// nearestIndexFull is the exhaustive-scan reference for NearestIndex,
// kept for the bit-identity tests and the early-exit benchmark.
func nearestIndexFull(p Vector, centers []Vector) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, c := range centers {
		if d := Dist2(p, c); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// dist2Below computes Dist2(a, b) with an early exit: it returns
// (distance, true) when the full distance is strictly below bound, and
// (partial, false) as soon as the running sum proves it cannot be. The
// lane structure and final (s0+s1)+(s2+s3) combine replicate Dist2
// exactly, so a returned distance is bit-identical to Dist2's.
func dist2Below(a, b Vector, bound float64) (float64, bool) {
	assertSameDim(a, b)
	var s0, s1, s2, s3 float64
	i := 0
	// Chunks of 16 dimensions: four unrolled blocks of straight-line code,
	// then one bound check. Lane sums only grow (non-negative addends,
	// monotone rounding), so once their combination reaches the bound the
	// candidate is dead regardless of the remaining dimensions.
	for ; i+16 <= len(a); i += 16 {
		for j := i; j < i+16; j += 4 {
			d0 := a[j] - b[j]
			d1 := a[j+1] - b[j+1]
			d2 := a[j+2] - b[j+2]
			d3 := a[j+3] - b[j+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		if cur := (s0 + s1) + (s2 + s3); cur >= bound {
			return cur, false
		}
	}
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	d := (s0 + s1) + (s2 + s3)
	return d, d < bound
}

// WeightedPoint is a running sum of points together with the number of
// points accumulated. It is the value type exchanged by the k-means
// mapper/combiner/reducer chain: combining two WeightedPoints is exact
// partial aggregation, which is what makes MapReduce combiners sound for
// k-means.
type WeightedPoint struct {
	Sum   Vector
	Count int64
}

// NewWeightedPoint starts an accumulation from a single point.
func NewWeightedPoint(p Vector) WeightedPoint {
	return WeightedPoint{Sum: Clone(p), Count: 1}
}

// Merge accumulates other into w.
func (w *WeightedPoint) Merge(other WeightedPoint) {
	if w.Sum == nil {
		w.Sum = make(Vector, len(other.Sum))
	}
	AddInPlace(w.Sum, other.Sum)
	w.Count += other.Count
}

// Centroid returns Sum/Count. It panics when Count is zero.
func (w WeightedPoint) Centroid() Vector {
	if w.Count == 0 {
		panic("vec: Centroid of empty WeightedPoint")
	}
	return Scale(w.Sum, 1/float64(w.Count))
}

// ByteSize reports the serialized size of the weighted point under the
// engine's wire model: 8 bytes per coordinate plus an 8-byte count, plus an
// 8-byte key. Used for shuffle-volume accounting.
func (w WeightedPoint) ByteSize() int { return 8*len(w.Sum) + 16 }
