// Package stats implements the statistical machinery G-means depends on:
// sample moments, the standard normal distribution, sample normalization,
// and the Anderson–Darling test of normality with the small-sample
// correction used by Hamerly & Elkan ("Learning the k in k-means", NIPS
// 2003), which is the test the reproduced paper runs inside its
// TestClusters / TestFewClusters MapReduce jobs.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrSampleTooSmall is returned by tests that cannot produce a reliable
// decision on the given sample. The paper uses a minimum of 20 points for
// mapper-side tests ("Anderson-Darling ... reliable even with small samples
// (as a rule of thumb, a minimum size of 8) ... we use a threshold of 20").
var ErrSampleTooSmall = errors.New("stats: sample too small for a reliable test")

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs. Samples of
// size < 2 have variance 0 by convention.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Normalize rescales xs in place to zero mean and unit (sample) standard
// deviation, as step 5 of the G-means per-cluster procedure requires, and
// returns the (mean, stddev) that were removed. A sample with zero standard
// deviation (all points identical) is left centered but unscaled and the
// returned stddev is 0; callers treat such degenerate clusters as already
// Gaussian (there is nothing to split).
func Normalize(xs []float64) (mean, std float64) {
	mean = Mean(xs)
	std = StdDev(xs)
	if std == 0 {
		for i := range xs {
			xs[i] -= mean
		}
		return mean, 0
	}
	inv := 1 / std
	for i := range xs {
		xs[i] = (xs[i] - mean) * inv
	}
	return mean, std
}

// NormalCDF returns Φ(x), the standard normal cumulative distribution
// function, via the complementary error function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalPDF returns the standard normal density at x.
func NormalPDF(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0,1) using the Acklam rational
// approximation (relative error < 1.15e-9), refined with one Halley step.
// It panics for p outside (0,1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile requires p in (0,1)")
	}
	// Coefficients of the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One step of Halley's method against the CDF for full double accuracy.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// ADResult carries the outcome of an Anderson–Darling normality test.
type ADResult struct {
	A2       float64 // raw A² statistic
	A2Star   float64 // A² with the Hamerly–Elkan small-sample correction
	PValue   float64 // approximate p-value for A2Star (case: μ, σ estimated)
	N        int     // sample size
	Critical float64 // critical value the statistic was compared against
	Normal   bool    // true when the Gaussian hypothesis is accepted
}

// AndersonDarling computes the A² statistic of xs against the standard
// normal distribution. The input must already be normalized (zero mean,
// unit variance); use ADTestNormalized or ADTest for the full pipeline.
// The input is sorted in place.
func AndersonDarling(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sort.Float64s(xs)
	fn := float64(n)
	var s float64
	for i, x := range xs {
		// Clamp CDF values away from {0,1} so the logs stay finite for
		// extreme outliers; the clamp is far below any decision boundary.
		fi := clamp(NormalCDF(x), 1e-300, 1-1e-15)
		fj := clamp(NormalCDF(xs[n-1-i]), 1e-300, 1-1e-15)
		s += (2*float64(i+1) - 1) * (math.Log(fi) + math.Log(1-fj))
	}
	return -fn - s/fn
}

// A2Star applies the Hamerly–Elkan finite-sample correction
// A*² = A²·(1 + 4/n − 25/n²) used when mean and variance are estimated
// from the data (D'Agostino case 3 as cited by the G-means paper).
func A2Star(a2 float64, n int) float64 {
	fn := float64(n)
	return a2 * (1 + 4/fn - 25/(fn*fn))
}

// adPValue approximates the p-value of the corrected statistic for the
// "mean and variance unknown" case, using the D'Agostino & Stephens (1986)
// piecewise formulas. Accurate to a few units in the third decimal, which
// is ample for thresholding at the significance levels k-estimation uses.
func adPValue(aStar float64) float64 {
	switch {
	case aStar < 0.2:
		return 1 - math.Exp(-13.436+101.14*aStar-223.73*aStar*aStar)
	case aStar < 0.34:
		return 1 - math.Exp(-8.318+42.796*aStar-59.938*aStar*aStar)
	case aStar < 0.6:
		return math.Exp(0.9177 - 4.279*aStar - 1.38*aStar*aStar)
	default:
		return clamp(math.Exp(1.2937-5.709*aStar+0.0186*aStar*aStar), 0, 1)
	}
}

// criticalTable maps significance level α to the critical value of A*² for
// the composite-normality case (D'Agostino & Stephens, Table 4.7).
var criticalTable = []struct{ alpha, cv float64 }{
	{0.25, 0.470},
	{0.10, 0.631},
	{0.05, 0.752},
	{0.025, 0.873},
	{0.01, 1.035},
	{0.005, 1.159},
	{0.001, 1.550},   // extrapolated anchor between published points
	{0.0001, 1.8692}, // value used by Hamerly & Elkan
}

// CriticalValue returns the A*² critical value for significance level
// alpha, interpolating log-linearly in alpha between table anchors and
// extrapolating beyond them. Smaller alpha (stricter test) yields a larger
// critical value, i.e. fewer splits.
func CriticalValue(alpha float64) float64 {
	if alpha <= 0 {
		panic("stats: CriticalValue requires alpha > 0")
	}
	t := criticalTable
	if alpha >= t[0].alpha {
		return t[0].cv
	}
	last := len(t) - 1
	if alpha <= t[last].alpha {
		// Extrapolate using the slope of the final segment.
		return interpLog(t[last-1].alpha, t[last-1].cv, t[last].alpha, t[last].cv, alpha)
	}
	for i := 0; i < last; i++ {
		if alpha <= t[i].alpha && alpha >= t[i+1].alpha {
			return interpLog(t[i].alpha, t[i].cv, t[i+1].alpha, t[i+1].cv, alpha)
		}
	}
	return t[last].cv
}

func interpLog(a1, c1, a2, c2, alpha float64) float64 {
	l1, l2, l := math.Log(a1), math.Log(a2), math.Log(alpha)
	w := (l - l1) / (l2 - l1)
	return c1 + w*(c2-c1)
}

// ADTestNormalized runs the Anderson–Darling normality test on a sample
// that is already normalized to zero mean and unit variance. The sample is
// sorted in place. minN is the smallest sample size for which a decision is
// produced; below it ErrSampleTooSmall is returned.
func ADTestNormalized(xs []float64, alpha float64, minN int) (ADResult, error) {
	if len(xs) < minN {
		return ADResult{N: len(xs)}, ErrSampleTooSmall
	}
	a2 := AndersonDarling(xs)
	aStar := A2Star(a2, len(xs))
	cv := CriticalValue(alpha)
	return ADResult{
		A2:       a2,
		A2Star:   aStar,
		PValue:   adPValue(aStar),
		N:        len(xs),
		Critical: cv,
		Normal:   aStar <= cv,
	}, nil
}

// ADTest normalizes xs (in place) and runs the Anderson–Darling test as the
// G-means procedure prescribes: center, scale to unit variance, test
// against N(0,1) with the small-sample correction. A degenerate sample
// (zero variance) is reported Normal with A*²=0: a point mass offers no
// direction to split along.
func ADTest(xs []float64, alpha float64, minN int) (ADResult, error) {
	if len(xs) < minN {
		return ADResult{N: len(xs)}, ErrSampleTooSmall
	}
	if _, std := Normalize(xs); std == 0 {
		return ADResult{N: len(xs), Critical: CriticalValue(alpha), Normal: true}, nil
	}
	return ADTestNormalized(xs, alpha, minN)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
