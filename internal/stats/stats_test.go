package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Unbiased variance of this classic sample is 32/7.
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance(single) = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	mean, std := Normalize(xs)
	if math.Abs(mean-5.5) > 1e-12 {
		t.Errorf("removed mean = %v, want 5.5", mean)
	}
	if std <= 0 {
		t.Fatalf("std = %v, want > 0", std)
	}
	if m := Mean(xs); math.Abs(m) > 1e-12 {
		t.Errorf("post-normalize mean = %v, want 0", m)
	}
	if s := StdDev(xs); math.Abs(s-1) > 1e-12 {
		t.Errorf("post-normalize std = %v, want 1", s)
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	xs := []float64{3, 3, 3, 3}
	_, std := Normalize(xs)
	if std != 0 {
		t.Fatalf("std = %v, want 0 for constant sample", std)
	}
	for _, x := range xs {
		if x != 0 {
			t.Errorf("constant sample should be centered to zeros, got %v", xs)
			break
		}
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalQuantilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) should panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestA2StarCorrection(t *testing.T) {
	// The correction factor (1 + 4/n − 25/n²) at n=100 is 1.0375.
	if got := A2Star(2, 100); math.Abs(got-2*1.0375) > 1e-12 {
		t.Errorf("A2Star = %v", got)
	}
}

func TestCriticalValueAnchorsAndMonotonicity(t *testing.T) {
	if got := CriticalValue(0.0001); got != 1.8692 {
		t.Errorf("CriticalValue(0.0001) = %v, want 1.8692 (Hamerly–Elkan)", got)
	}
	if got := CriticalValue(0.05); got != 0.752 {
		t.Errorf("CriticalValue(0.05) = %v, want 0.752", got)
	}
	// Stricter alpha ⇒ larger critical value.
	prev := 0.0
	for _, a := range []float64{0.5, 0.25, 0.1, 0.05, 0.01, 0.001, 0.0001, 0.00001} {
		cv := CriticalValue(a)
		if cv < prev {
			t.Errorf("CriticalValue not monotone at alpha=%v: %v < %v", a, cv, prev)
		}
		prev = cv
	}
}

func TestCriticalValuePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CriticalValue(0)
}

func normalSample(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	return xs
}

func uniformSample(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
	}
	return xs
}

func bimodalSample(n int, sep float64, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		m := -sep / 2
		if i%2 == 1 {
			m = sep / 2
		}
		xs[i] = m + r.NormFloat64()
	}
	return xs
}

func TestADAcceptsGaussian(t *testing.T) {
	accepted := 0
	const trials = 20
	for s := int64(0); s < trials; s++ {
		res, err := ADTest(normalSample(2000, s), 0.0001, 8)
		if err != nil {
			t.Fatal(err)
		}
		if res.Normal {
			accepted++
		}
	}
	// At alpha=0.0001 essentially every true-Gaussian sample must pass.
	if accepted < trials-1 {
		t.Errorf("accepted %d/%d Gaussian samples", accepted, trials)
	}
}

func TestADRejectsBimodal(t *testing.T) {
	rejected := 0
	const trials = 20
	for s := int64(0); s < trials; s++ {
		res, err := ADTest(bimodalSample(2000, 8, s), 0.0001, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Normal {
			rejected++
		}
	}
	if rejected != trials {
		t.Errorf("rejected only %d/%d strongly bimodal samples", rejected, trials)
	}
}

func TestADRejectsUniform(t *testing.T) {
	res, err := ADTest(uniformSample(5000, 1), 0.0001, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Normal {
		t.Errorf("uniform sample accepted as Gaussian (A*²=%v, cv=%v)", res.A2Star, res.Critical)
	}
}

func TestADSampleTooSmall(t *testing.T) {
	_, err := ADTest([]float64{1, 2, 3}, 0.0001, 20)
	if err != ErrSampleTooSmall {
		t.Errorf("err = %v, want ErrSampleTooSmall", err)
	}
}

func TestADDegenerateSampleIsNormal(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 7
	}
	res, err := ADTest(xs, 0.0001, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Normal {
		t.Error("constant sample should be accepted (nothing to split)")
	}
}

func TestADResultFields(t *testing.T) {
	res, err := ADTest(normalSample(500, 3), 0.05, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 500 {
		t.Errorf("N = %d", res.N)
	}
	if res.Critical != CriticalValue(0.05) {
		t.Errorf("Critical = %v", res.Critical)
	}
	if res.PValue < 0 || res.PValue > 1 {
		t.Errorf("PValue = %v out of [0,1]", res.PValue)
	}
	if res.A2Star < res.A2 {
		t.Errorf("A2Star (%v) should exceed A2 (%v) for n=500", res.A2Star, res.A2)
	}
}

// --- property tests -------------------------------------------------------

func TestPropADAffineInvariance(t *testing.T) {
	// The AD test normalizes first, so shifting and (positively) scaling a
	// sample must not change the decision or the statistic.
	f := func(seed int64, shiftRaw, scaleRaw uint8) bool {
		shift := float64(shiftRaw) - 128
		scale := 0.5 + float64(scaleRaw)/64
		xs := normalSample(300, seed)
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = x*scale + shift
		}
		a, err1 := ADTest(xs, 0.01, 8)
		b, err2 := ADTest(ys, 0.01, 8)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a.A2Star-b.A2Star) < 1e-6 && a.Normal == b.Normal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropPValueMonotoneInStatistic(t *testing.T) {
	// Larger A*² ⇒ smaller p-value (non-strictly, across the piecewise
	// approximation boundaries).
	prev := math.Inf(1)
	for a := 0.01; a < 5; a += 0.01 {
		p := adPValue(a)
		if p > prev+1e-9 {
			t.Fatalf("p-value not monotone at A*²=%v: %v > %v", a, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("p-value %v out of range at A*²=%v", p, a)
		}
		prev = p
	}
}

func TestPropNormalizeZeroMeanUnitVar(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()*50 + 10
		}
		_, std := Normalize(xs)
		if std == 0 {
			return true
		}
		return math.Abs(Mean(xs)) < 1e-9 && math.Abs(StdDev(xs)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropQuantileMonotone(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		a := 0.0001 + 0.9998*float64(aRaw)/65535
		b := 0.0001 + 0.9998*float64(bRaw)/65535
		if a > b {
			a, b = b, a
		}
		return NormalQuantile(a) <= NormalQuantile(b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
