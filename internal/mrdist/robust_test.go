package mrdist_test

import (
	"net/http"
	"runtime"
	"syscall"
	"testing"
	"time"

	"gmeansmr/internal/mr"
	"gmeansmr/internal/mrdist"
)

// checkNoGoroutineLeak waits for the runner's goroutines (heartbeat,
// worker stdout/stderr scanners, backoff timers, idle HTTP connections)
// to drain back to the pre-runner baseline, mirroring the facade's
// cancellation leak checks.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if tr, ok := http.DefaultTransport.(*http.Transport); ok {
			tr.CloseIdleConnections()
		}
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestProcJobFreeNoGoroutineLeak runs a job to completion, frees it via
// Close, and checks every fleet goroutine exits.
func TestProcJobFreeNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	runner := mrdist.NewProcRunner(mrdist.Options{})
	fs, want := numbersFS(1000, 1<<10)
	res, err := sumJob(fs, testCluster(2, 2, 2), runner, sumPayload{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	checkSums(t, res, want)
	runner.Close()

	checkNoGoroutineLeak(t, before)
}

// TestProcWorkerDeathRecoveryNoGoroutineLeak kills a worker mid-wave —
// driving the heartbeat death path and map-output recovery — then checks
// the recovered run still drains every goroutine on Close.
func TestProcWorkerDeathRecoveryNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	runner := mrdist.NewProcRunner(mrdist.Options{})
	fs, want := numbersFS(1200, 1<<10)
	job := sumJob(fs, testCluster(3, 1, 1), runner, sumPayload{sleepMS: 100})

	type outcome struct {
		res *mr.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := job.Run()
		done <- outcome{res, err}
	}()

	// Kill the last worker once it plausibly holds completed map output.
	completed := runner.Registry().Counter(mrdist.MetricTasksCompleted)
	killDeadline := time.After(20 * time.Second)
	killed := false
poll:
	for !killed {
		select {
		case o := <-done:
			t.Fatalf("job finished before a worker could be killed (err=%v)", o.err)
		case <-killDeadline:
			break poll
		case <-time.After(5 * time.Millisecond):
			pids := runner.WorkerPIDs()
			if completed.Value() >= 1 && len(pids) == 3 {
				if err := syscall.Kill(pids[len(pids)-1], syscall.SIGKILL); err != nil {
					t.Fatalf("kill worker: %v", err)
				}
				killed = true
			}
		}
	}
	if !killed {
		t.Fatal("never reached a killable point in the map wave")
	}

	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("job failed after worker death: %v", o.err)
		}
		checkSums(t, o.res, want)
	case <-time.After(60 * time.Second):
		t.Fatal("job did not complete after worker death")
	}
	runner.Close()

	checkNoGoroutineLeak(t, before)
}
