package mrdist

import (
	"fmt"
	"sync"

	"gmeansmr/internal/mr"
)

// JobParts is the user code of one job, reconstructed on a worker from a
// JobSpec payload. Exactly the factory fields of mr.Job: the builder must
// return factories that produce mappers/reducers identical in behaviour to
// the ones the driver runs locally — that identity is what the backend
// equivalence pin rests on.
type JobParts struct {
	NewMapper      mr.MapperFactory
	NewPointMapper mr.PointMapperFactory
	NewCombiner    mr.ReducerFactory
	NewReducer     mr.ReducerFactory
}

// KindBuilder decodes a JobSpec payload into the job's factories.
type KindBuilder func(payload []byte) (JobParts, error)

var kinds = struct {
	sync.RWMutex
	byName map[string]KindBuilder
}{byName: make(map[string]KindBuilder)}

// RegisterKind installs the builder for a job kind (e.g. "kmeans.assign").
// Call from init in the package that owns the mappers; both the driver
// process and the worker binary must link that package so the two sides
// agree. Duplicate registration panics.
func RegisterKind(kind string, build KindBuilder) {
	if build == nil {
		panic("mrdist: nil kind builder")
	}
	kinds.Lock()
	defer kinds.Unlock()
	if _, dup := kinds.byName[kind]; dup {
		panic(fmt.Sprintf("mrdist: job kind %q registered twice", kind))
	}
	kinds.byName[kind] = build
}

// buildParts resolves a spec into factories.
func buildParts(spec *mr.JobSpec) (JobParts, error) {
	if spec == nil {
		return JobParts{}, fmt.Errorf("mrdist: job has no Spec; only spec-carrying jobs can run on the proc backend")
	}
	kinds.RLock()
	build, ok := kinds.byName[spec.Kind]
	kinds.RUnlock()
	if !ok {
		return JobParts{}, fmt.Errorf("mrdist: unknown job kind %q (is the registering package linked into this binary?)", spec.Kind)
	}
	return build(spec.Payload)
}
