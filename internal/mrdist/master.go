package mrdist

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"gmeansmr/internal/dfs"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/obs"
	"gmeansmr/internal/retry"
)

// Metric names the runner maintains in its obs.Registry. Tests and
// dashboards read them; docs/wire.md lists their meanings.
const (
	MetricTasksDispatched = "mrdist_tasks_dispatched_total"
	MetricTasksCompleted  = "mrdist_tasks_completed_total"
	MetricTaskRetries     = "mrdist_task_retries_total"
	MetricSpeculative     = "mrdist_speculative_tasks_total"
	MetricWorkerDeaths    = "mrdist_worker_deaths_total"
	// MetricRetryBackoffs counts backoff sleeps scheduled before requeues.
	MetricRetryBackoffs = "mrdist_retry_backoffs_total"
	// MetricRetryExhausted counts operations that spent their whole
	// attempt or elapsed budget.
	MetricRetryExhausted = "mrdist_retry_exhausted_total"
	// MetricRetryAborts counts operations stopped by caller-side
	// cancellation (never blamed on a worker).
	MetricRetryAborts = "mrdist_retry_aborts_total"
	// MetricBreakerOpens counts closed→open breaker transitions.
	MetricBreakerOpens = "mrdist_breaker_opens_total"
	// MetricBreakerState is the per-worker breaker gauge family; the
	// worker id travels as a label (see breakerGaugeName). Values follow
	// retry.BreakerState: 0 closed, 1 half-open, 2 open.
	MetricBreakerState = "mrdist_breaker_state"
)

func breakerGaugeName(workerID int) string {
	return fmt.Sprintf(`%s{worker="%d"}`, MetricBreakerState, workerID)
}

// ErrBackendUnavailable reports that the distributed backend cannot make
// progress at all: workers failed to spawn, or every worker is dead. The
// facade's fallback mode detects it with errors.Is and downgrades to the
// local backend.
var ErrBackendUnavailable = errors.New("mrdist: backend unavailable")

// Options configures a ProcRunner. The zero value works: it self-execs the
// current binary as the worker (which must call MaybeWorker early in main)
// and uses conservative failure-handling defaults.
type Options struct {
	// WorkerBinary is the executable spawned per node. Empty selects the
	// current binary (os.Executable), the usual arrangement: one binary,
	// MaybeWorker splitting the roles.
	WorkerBinary string
	// WorkerEnv returns extra environment entries for worker i. Tests use
	// it to inject faults (EnvTestSlowMS, faultinject.EnvScenario).
	WorkerEnv func(i int) []string
	// LogDir receives one stderr log per worker (worker-<i>.log), inside
	// a fresh run-* subdirectory so sequential runners sharing the dir
	// never clobber each other's logs. Empty selects $MRDIST_LOG_DIR,
	// then a temp dir.
	LogDir string
	// Registry receives the runner's metrics; nil allocates a private one.
	Registry *obs.Registry
	// Retry is the uniform failure policy: per-RPC deadline, jittered
	// backoff, elapsed budget, per-worker breaker. Zero fields take the
	// retry package defaults. Only non-deterministic failures (worker
	// death, transport, 5xx, corrupt frames) consume attempts; a
	// deterministic task error fails the job at once, exactly as in the
	// local backend.
	Retry retry.Policy
	// MaxAttempts is the historical name for Retry.MaxAttempts; when
	// Retry.MaxAttempts is zero it seeds it. Default 4.
	MaxAttempts int
	// Seed drives backoff jitter; a fixed seed replays a schedule's
	// delays exactly, which the chaos harness relies on. Zero is a valid
	// (deterministic) seed.
	Seed int64
	// Transport, when non-nil, underlies every master-side HTTP client —
	// the seam the fault-injection plane plugs into. Nil means the
	// default transport.
	Transport http.RoundTripper
	// HeartbeatInterval is the master→worker ping period. Default 500ms.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many consecutive failed pings declare a
	// worker dead. Default 3.
	HeartbeatMisses int
	// SpeculateAfter is how long the last lone task of a wave may run
	// before the master launches a speculative duplicate on an idle
	// worker (first completion wins). Default 2s; zero selects the
	// default, negative disables speculation.
	SpeculateAfter time.Duration
}

func (o Options) withDefaults() Options {
	if o.WorkerBinary == "" {
		if self, err := os.Executable(); err == nil {
			o.WorkerBinary = self
		}
	}
	if o.LogDir == "" {
		o.LogDir = os.Getenv("MRDIST_LOG_DIR")
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.Retry.MaxAttempts <= 0 && o.MaxAttempts > 0 {
		o.Retry.MaxAttempts = o.MaxAttempts
	}
	o.Retry = o.Retry.WithDefaults()
	o.MaxAttempts = o.Retry.MaxAttempts
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.HeartbeatMisses <= 0 {
		o.HeartbeatMisses = 3
	}
	if o.SpeculateAfter == 0 {
		o.SpeculateAfter = 2 * time.Second
	}
	return o
}

// workerHandle is the master's view of one worker process.
type workerHandle struct {
	id   int
	addr string
	cmd  *exec.Cmd
	// stdin is held open for the worker's whole life; closing it is the
	// shutdown signal (the worker exits on stdin EOF, so master death
	// reaps the fleet even without an explicit Close).
	stdin io.WriteCloser
	dead  atomic.Bool

	// breaker debounces blamed failures: a worker is not declared
	// unschedulable on one transport blip, and an open breaker re-admits
	// a probe after cooldown instead of condemning a live process.
	// Death itself stays with the heartbeat and process exit.
	breaker *retry.Breaker

	pushMu sync.Mutex
	pushed map[string]int64 // replica version per path
}

// ProcRunner is the distributed mr.TaskRunner: it spawns one worker
// process per cluster node (lazily, on the first job) and schedules map
// and reduce tasks onto them under one uniform retry policy (per-RPC
// deadlines, jittered backoff, per-worker breakers) with speculative
// re-execution of stragglers. Results are bit-identical to
// mr.LocalRunner: the same task code runs on input replicas, the shuffle
// merge order is still map-task id, and exactly one completion per task
// merges counters.
//
// A ProcRunner may be shared across the chained jobs of a run (the fleet
// is reused); it is safe for use by one job at a time. Close terminates
// the fleet.
type ProcRunner struct {
	opts   Options
	policy retry.Policy
	client *http.Client

	rngMu sync.Mutex
	rng   *rand.Rand

	mu         sync.Mutex
	workers    []*workerHandle
	byAddr     map[string]*workerHandle
	logDir     string
	closed     bool
	stopHB     chan struct{}
	hbStarted  bool
	recoveryMu sync.Mutex

	jobSeq atomic.Int64
}

// NewProcRunner returns a runner; no processes start until the first job.
func NewProcRunner(opts Options) *ProcRunner {
	opts = opts.withDefaults()
	return &ProcRunner{
		opts:   opts,
		policy: opts.Retry,
		client: &http.Client{Transport: opts.Transport},
		rng:    rand.New(rand.NewSource(opts.Seed)),
		byAddr: make(map[string]*workerHandle),
	}
}

// backoff draws a jittered delay for the given failure count; safe for
// concurrent callers (wave loop and recovery share the seeded source).
func (r *ProcRunner) backoff(failures int) time.Duration {
	r.rngMu.Lock()
	defer r.rngMu.Unlock()
	return r.policy.Backoff(failures, r.rng)
}

// Registry returns the runner's metric registry.
func (r *ProcRunner) Registry() *obs.Registry { return r.opts.Registry }

// WorkerPIDs returns the OS pids of the live workers, in node order.
// Fault-injection tests use it to kill a worker mid-wave.
func (r *ProcRunner) WorkerPIDs() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	pids := make([]int, 0, len(r.workers))
	for _, w := range r.workers {
		if !w.dead.Load() && w.cmd.Process != nil {
			pids = append(pids, w.cmd.Process.Pid)
		}
	}
	return pids
}

// Close shuts down the worker fleet. The runner is unusable afterwards.
func (r *ProcRunner) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	if r.hbStarted {
		close(r.stopHB)
	}
	workers := r.workers
	r.mu.Unlock()
	for _, w := range workers {
		w.stdin.Close() // EOF → worker exits on its own
	}
	for _, w := range workers {
		reaped := make(chan struct{})
		go func(w *workerHandle) { w.cmd.Wait(); close(reaped) }(w)
		select {
		case <-reaped:
		case <-time.After(2 * time.Second):
			if w.cmd.Process != nil {
				w.cmd.Process.Kill()
			}
			<-reaped
		}
	}
}

// ensureWorkers grows the fleet to n workers and starts the heartbeat.
// A spawn failure is a backend-unavailability: the fleet never came up.
func (r *ProcRunner) ensureWorkers(n int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("mrdist: runner is closed")
	}
	if r.logDir == "" {
		if r.opts.LogDir == "" {
			dir, err := os.MkdirTemp("", "mrdist-logs-*")
			if err != nil {
				return err
			}
			r.logDir = dir
		} else {
			if err := os.MkdirAll(r.opts.LogDir, 0o755); err != nil {
				return err
			}
			dir, err := os.MkdirTemp(r.opts.LogDir, "run-*")
			if err != nil {
				return err
			}
			r.logDir = dir
		}
	}
	for len(r.workers) < n {
		w, err := r.spawnWorker(len(r.workers))
		if err != nil {
			return fmt.Errorf("mrdist: spawning worker %d: %v: %w", len(r.workers), err, ErrBackendUnavailable)
		}
		r.workers = append(r.workers, w)
		r.byAddr[w.addr] = w
	}
	if !r.hbStarted {
		r.stopHB = make(chan struct{})
		r.hbStarted = true
		go r.heartbeat()
	}
	return nil
}

func (r *ProcRunner) spawnWorker(id int) (*workerHandle, error) {
	if r.opts.WorkerBinary == "" {
		return nil, fmt.Errorf("no worker binary")
	}
	cmd := exec.Command(r.opts.WorkerBinary)
	cmd.Env = append(os.Environ(), EnvWorkerMode+"=1")
	if r.opts.WorkerEnv != nil {
		cmd.Env = append(cmd.Env, r.opts.WorkerEnv(id)...)
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	logFile, err := os.Create(filepath.Join(r.logDir, fmt.Sprintf("worker-%d.log", id)))
	if err != nil {
		return nil, err
	}
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return nil, err
	}
	logFile.Close() // the child holds its own descriptor now

	// The worker announces "MRWORKER READY <addr>" as its first stdout
	// line; give it a bounded window to come up.
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := cutPrefix(line, readyPrefix); ok {
				addrCh <- rest
				// Keep draining so the child never blocks on stdout.
				for sc.Scan() {
				}
				return
			}
		}
		errCh <- fmt.Errorf("worker exited before announcing readiness (see %s)", filepath.Join(r.logDir, fmt.Sprintf("worker-%d.log", id)))
	}()
	select {
	case addr := <-addrCh:
		w := &workerHandle{id: id, addr: addr, cmd: cmd, stdin: stdin, pushed: make(map[string]int64)}
		reg := r.opts.Registry
		stateGauge := reg.Gauge(breakerGaugeName(id))
		stateGauge.Set(int64(retry.BreakerClosed))
		w.breaker = retry.NewBreaker(r.policy)
		w.breaker.OnOpen = func() { reg.Counter(MetricBreakerOpens).Inc() }
		w.breaker.OnState = func(s retry.BreakerState) { stateGauge.Set(int64(s)) }
		return w, nil
	case err := <-errCh:
		cmd.Process.Kill()
		cmd.Wait()
		return nil, err
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("worker did not become ready within 15s")
	}
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}

// markDead declares a worker failed: no further dispatch, process killed.
// Idempotent.
func (r *ProcRunner) markDead(w *workerHandle) {
	if w == nil || w.dead.Swap(true) {
		return
	}
	r.opts.Registry.Counter(MetricWorkerDeaths).Inc()
	if w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
	go w.cmd.Wait()
}

// liveCount reports how many workers are not dead (breaker state aside).
func (r *ProcRunner) liveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, w := range r.workers {
		if !w.dead.Load() {
			n++
		}
	}
	return n
}

// heartbeat pings every worker; HeartbeatMisses consecutive failures mark
// it dead. Tasks in flight on a dead worker fail their RPCs and requeue.
// This is the authority on worker *death*; breakers only gate scheduling.
func (r *ProcRunner) heartbeat() {
	client := &http.Client{Timeout: r.opts.HeartbeatInterval, Transport: r.opts.Transport}
	misses := make(map[*workerHandle]int)
	tick := time.NewTicker(r.opts.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stopHB:
			return
		case <-tick.C:
		}
		r.mu.Lock()
		workers := append([]*workerHandle(nil), r.workers...)
		r.mu.Unlock()
		for _, w := range workers {
			if w.dead.Load() {
				continue
			}
			resp, err := client.Get("http://" + w.addr + "/v1/ping")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if err == nil && resp.StatusCode == http.StatusOK {
				misses[w] = 0
				continue
			}
			misses[w]++
			if misses[w] >= r.opts.HeartbeatMisses {
				r.markDead(w)
			}
		}
	}
}

// procShuffle is the distributed ShuffleStore: it records *where* each map
// task's winning output lives rather than the runs themselves, plus what a
// later recovery needs to re-create lost outputs.
type procShuffle struct {
	jobID       string
	numReducers int

	mu  sync.Mutex
	loc []string // winning worker address per map task

	splits []dfs.Split // retained for map-output recovery
}

// NumMapTasks implements mr.ShuffleStore.
func (s *procShuffle) NumMapTasks() int { return len(s.loc) }

func (s *procShuffle) location(t int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loc[t]
}

func (s *procShuffle) setLocation(t int, addr string) {
	s.mu.Lock()
	s.loc[t] = addr
	s.mu.Unlock()
}

// NewShuffle implements mr.TaskRunner.
func (r *ProcRunner) NewShuffle(numReducers, numMapTasks int) mr.ShuffleStore {
	return &procShuffle{
		jobID:       fmt.Sprintf("j%d", r.jobSeq.Add(1)),
		numReducers: numReducers,
		loc:         make([]string, numMapTasks),
	}
}

// fetchFailError reports a reduce task's failed shuffle pull from addr.
type fetchFailError struct{ addr string }

func (e fetchFailError) Error() string {
	return fmt.Sprintf("mrdist: shuffle fetch from %s failed", e.addr)
}

// postWire POSTs a GMWR body under ctx and returns the response body.
// Failures are pre-marked for retry.Classify: transport and body-read
// errors and 5xx responses are transient with the peer blamed (the final
// say on caller-side cancellation belongs to Classify against the *job*
// context — a mark made here never turns a clean shutdown into worker
// blame); non-5xx error statuses are deterministic and permanent.
func postWire(ctx context.Context, c *http.Client, addr, path string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-gmwr")
	resp, err := c.Do(req)
	if err != nil {
		return nil, retry.Transient(err, true)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, retry.Transient(err, true)
	}
	if resp.StatusCode != http.StatusOK {
		herr := fmt.Errorf("mrdist: %s%s: HTTP %d: %s", addr, path, resp.StatusCode, bytes.TrimSpace(b))
		if resp.StatusCode >= 500 {
			return nil, retry.Transient(herr, true)
		}
		return nil, herr
	}
	return b, nil
}

// pushInputs replicates the job's input files to w, skipping files whose
// replica version is already current. Replication moves bytes without
// ticking read accounting (dfs.Contents), so the paper's cost model sees
// the same dataset-read counts on both backends.
func (r *ProcRunner) pushInputs(ctx context.Context, j *mr.Job, w *workerHandle) error {
	w.pushMu.Lock()
	defer w.pushMu.Unlock()
	for _, path := range j.Input {
		version := j.FS.Version(path)
		if w.pushed[path] == version {
			continue
		}
		data, err := j.FS.Contents(path)
		if err != nil {
			return err
		}
		u := fmt.Sprintf("http://%s/v1/fs/push?path=%s&version=%d&split=%d",
			w.addr, url.QueryEscape(path), version, j.FS.SplitSize())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(data))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := r.client.Do(req)
		if err != nil {
			return retry.Transient(err, true)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			perr := fmt.Errorf("mrdist: push %s to %s: HTTP %d", path, w.addr, resp.StatusCode)
			if resp.StatusCode >= 500 {
				return retry.Transient(perr, true)
			}
			return perr
		}
		w.pushed[path] = version
	}
	return nil
}

// execMapRPC runs one map task on w and returns the task's counter deltas.
// The output runs stay on the worker for shuffle pull.
func (r *ProcRunner) execMapRPC(ctx context.Context, j *mr.Job, sh *procShuffle, taskID int, numReducers int, w *workerHandle) (*mr.Counters, error) {
	if err := r.pushInputs(ctx, j, w); err != nil {
		return nil, err
	}
	sp := sh.splits[taskID]
	var e Encoder
	e.Begin()
	encodeTaskRequest(&e, sh.jobID, j, numReducers)
	e.U32(uint32(taskID))
	e.Str(sp.Path).U32(uint32(sp.Index)).I64(sp.Start).I64(sp.End)
	e.I64(j.FS.Version(sp.Path))
	body, err := postWire(ctx, r.client, w.addr, "/v1/task/map", e.Bytes())
	if err != nil {
		return nil, err
	}
	d := NewDecoder(body)
	switch st := d.U8(); st {
	case statusOK:
		counters := mr.NewCounters()
		if !d.MergeCounters(counters) {
			// A 200 whose frame will not decode is a corrupt reply, not a
			// deterministic failure: retry, suspecting the sender.
			return nil, retry.Transient(fmt.Errorf("mrdist: map task %d on %s: corrupt reply: %w", taskID, w.addr, d.Err()), true)
		}
		return counters, nil
	case statusStale:
		// Raced with a replica update; invalidate our record and retry.
		// Not the worker's fault.
		w.pushMu.Lock()
		delete(w.pushed, sp.Path)
		w.pushMu.Unlock()
		return nil, retry.Transient(fmt.Errorf("mrdist: stale replica of %s on %s", sp.Path, w.addr), false)
	case statusTaskErr:
		return nil, decodeTaskErr(d, j.Name, w.addr)
	default:
		return nil, retry.Transient(fmt.Errorf("mrdist: map task %d on %s: unexpected status %d", taskID, w.addr, st), true)
	}
}

// decodeTaskErr reconstructs a deterministic task failure, restoring the
// mr.ErrHeapSpace sentinel so errors.Is-based callers (the Fig. 2 heap
// experiment) behave identically across backends. A frame that will not
// decode is a corrupt reply and retryable instead.
func decodeTaskErr(d *Decoder, jobName, addr string) error {
	kind := mr.TaskKind(d.Str())
	taskID := int(d.U32())
	heap := d.Bool()
	msg := d.Str()
	if err := d.Err(); err != nil {
		return retry.Transient(fmt.Errorf("mrdist: corrupt task-error frame from %s: %w", addr, err), true)
	}
	inner := error(mr.ErrHeapSpace)
	if !heap {
		inner = fmt.Errorf("%s", msg)
	}
	return &mr.TaskError{Job: jobName, Kind: kind, TaskID: taskID, Err: inner}
}

// execReduceRPC runs one reduce task on w against the current map-output
// locations and returns its output and counter deltas.
func (r *ProcRunner) execReduceRPC(ctx context.Context, j *mr.Job, sh *procShuffle, p, numReducers int, w *workerHandle) ([]mr.KV, *mr.Counters, error) {
	sh.mu.Lock()
	locs := append([]string(nil), sh.loc...)
	sh.mu.Unlock()
	var e Encoder
	e.Begin()
	encodeTaskRequest(&e, sh.jobID, j, numReducers)
	e.U32(uint32(p)).U32(uint32(len(locs)))
	for _, addr := range locs {
		e.Str(addr)
	}
	body, err := postWire(ctx, r.client, w.addr, "/v1/task/reduce", e.Bytes())
	if err != nil {
		return nil, nil, err
	}
	d := NewDecoder(body)
	switch st := d.U8(); st {
	case statusOK:
		out := d.KVs()
		counters := mr.NewCounters()
		if !d.MergeCounters(counters) {
			return nil, nil, retry.Transient(fmt.Errorf("mrdist: reduce task %d on %s: corrupt reply: %w", p, w.addr, d.Err()), true)
		}
		return out, counters, nil
	case statusFetchFail:
		addr := d.Str()
		if err := d.Err(); err != nil {
			return nil, nil, retry.Transient(fmt.Errorf("mrdist: corrupt fetch-fail frame from %s: %w", w.addr, err), true)
		}
		return nil, nil, fetchFailError{addr: addr}
	case statusTaskErr:
		return nil, nil, decodeTaskErr(d, j.Name, w.addr)
	default:
		return nil, nil, retry.Transient(fmt.Errorf("mrdist: reduce task %d on %s: unexpected status %d", p, w.addr, st), true)
	}
}

// recoverMapOutputs re-executes the map tasks whose winning outputs lived
// on dead workers, installing new locations. Counters are NOT merged — the
// first completion of each task already was, and re-merging would break
// the bit-identical counter pin. Serialized; re-checks under the lock so
// concurrent reduce failures converge on one recovery. Attempts follow
// the retry policy: jittered backoff between tries, caller aborts honored,
// typed exhaustion.
func (r *ProcRunner) recoverMapOutputs(ctx context.Context, j *mr.Job, sh *procShuffle, numReducers int) error {
	r.recoveryMu.Lock()
	defer r.recoveryMu.Unlock()
	var lost []int
	sh.mu.Lock()
	for t, addr := range sh.loc {
		w := r.workerAt(addr)
		if w == nil || w.dead.Load() {
			lost = append(lost, t)
		}
	}
	sh.mu.Unlock()
	for _, t := range lost {
		var last error
		recovered := false
		for attempt := 1; attempt <= r.policy.MaxAttempts && !recovered; attempt++ {
			if ctx != nil && ctx.Err() != nil {
				r.opts.Registry.Counter(MetricRetryAborts).Inc()
				return fmt.Errorf("mr: job %q: %w", j.Name, ctx.Err())
			}
			w := r.pickLive(t)
			if w == nil {
				if r.liveCount() == 0 {
					return fmt.Errorf("mr: job %q: no live workers to recover map output %d: %w", j.Name, t, ErrBackendUnavailable)
				}
				// Alive but breaker-gated: wait out a cooldown slice.
				last = fmt.Errorf("mr: job %q: no schedulable worker for map-output recovery %d", j.Name, t)
				sleepCtx(ctx, r.backoff(attempt))
				continue
			}
			r.opts.Registry.Counter(MetricTaskRetries).Inc()
			attemptCtx, cancel := perTryContext(ctx, r.policy.PerTryTimeout)
			_, err := r.execMapRPC(attemptCtx, j, sh, t, numReducers, w)
			cancel()
			if err != nil {
				last = err
				switch retry.Classify(ctx, err) {
				case retry.CallerAbort:
					r.opts.Registry.Counter(MetricRetryAborts).Inc()
					cerr := err
					if ctx != nil && ctx.Err() != nil {
						cerr = ctx.Err()
					}
					return fmt.Errorf("mr: job %q: %w", j.Name, cerr)
				case retry.TransientBlamed:
					w.breaker.Failure()
					sleepCtx(ctx, r.backoff(attempt))
					continue
				case retry.TransientBlameless:
					sleepCtx(ctx, r.backoff(attempt))
					continue
				default:
					return err
				}
			}
			w.breaker.Success()
			sh.setLocation(t, w.addr)
			recovered = true
		}
		if !recovered {
			r.opts.Registry.Counter(MetricRetryExhausted).Inc()
			return retry.Exhausted(fmt.Sprintf("mr: job %q: could not recover map output %d", j.Name, t), last)
		}
	}
	return nil
}

// perTryContext layers a per-attempt deadline under the caller's context.
func perTryContext(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// sleepCtx sleeps for d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-done:
	case <-time.After(d):
	}
}

func (r *ProcRunner) workerAt(addr string) *workerHandle {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byAddr[addr]
}

// pickLive returns a schedulable worker, preferring the task's home node.
// Schedulable means alive with a breaker willing to admit work; Allow is
// checked last because a half-open breaker grants exactly one probe per
// call and the grant must be used.
func (r *ProcRunner) pickLive(taskID int) *workerHandle {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.workers) == 0 {
		return nil
	}
	if w := r.workers[taskID%len(r.workers)]; !w.dead.Load() && w.breaker.Allow() {
		return w
	}
	for _, w := range r.workers {
		if !w.dead.Load() && w.breaker.Allow() {
			return w
		}
	}
	return nil
}

// RunMapPhase implements mr.TaskRunner: one map task per split, scheduled
// over the worker fleet. After the wave it verifies every winning output
// still lives on a live worker and recovers any that do not.
func (r *ProcRunner) RunMapPhase(ctx context.Context, j *mr.Job, splits []dfs.Split, numReducers int, partition mr.Partitioner, counters *mr.Counters, shuffle mr.ShuffleStore) error {
	if j.Spec == nil {
		return fmt.Errorf("mr: job %q: the proc backend requires Job.Spec (a registered job kind)", j.Name)
	}
	if j.Partition != nil {
		return fmt.Errorf("mr: job %q: the proc backend supports only the default partitioner", j.Name)
	}
	_ = partition // workers apply mr.DefaultPartitioner, verified above
	if err := r.ensureWorkers(j.Cluster.Nodes); err != nil {
		return fmt.Errorf("mr: job %q: %w", j.Name, err)
	}
	sh := shuffle.(*procShuffle)
	sh.splits = splits

	err := r.runWave(ctx, j, "map-task", len(splits), j.Cluster.MapSlotsPerNode, j.Cluster.Nodes,
		func(ctx context.Context, taskID int, w *workerHandle) (func(), error) {
			taskCounters, err := r.execMapRPC(ctx, j, sh, taskID, numReducers, w)
			if err != nil {
				return nil, err
			}
			return func() {
				taskCounters.MergeInto(counters)
				sh.setLocation(taskID, w.addr)
			}, nil
		})
	if err != nil {
		return err
	}
	// Workers may have died after completing tasks; make every winning
	// output reachable before the reduce wave starts pulling.
	return r.recoverMapOutputs(ctx, j, sh, numReducers)
}

// RunReducePhase implements mr.TaskRunner: one reduce task per partition,
// each pulling its runs from the map-output locations. A failed shuffle
// pull marks the source dead, recovers its outputs, and retries the
// reduce task.
func (r *ProcRunner) RunReducePhase(ctx context.Context, j *mr.Job, numReducers int, counters *mr.Counters, shuffle mr.ShuffleStore) ([][]mr.KV, error) {
	sh := shuffle.(*procShuffle)
	outputs := make([][]mr.KV, numReducers)
	var outMu sync.Mutex

	err := r.runWave(ctx, j, "reduce-task", numReducers, j.Cluster.ReduceSlotsPerNode, j.Cluster.Nodes,
		func(tryCtx context.Context, p int, w *workerHandle) (func(), error) {
			out, taskCounters, err := r.execReduceRPC(tryCtx, j, sh, p, numReducers, w)
			if ff, ok := err.(fetchFailError); ok {
				// The map output's host is gone: declare it dead, rebuild
				// the lost outputs elsewhere, then retry this reduce task.
				// Recovery runs under the job context, not this attempt's:
				// it spans its own RPCs with their own deadlines.
				r.markDead(r.workerAt(ff.addr))
				if rerr := r.recoverMapOutputs(ctx, j, sh, numReducers); rerr != nil {
					return nil, rerr
				}
				return nil, retry.Transient(ff, false)
			}
			if err != nil {
				return nil, err
			}
			return func() {
				outMu.Lock()
				outputs[p] = out
				outMu.Unlock()
				taskCounters.MergeInto(counters)
			}, nil
		})
	if err != nil {
		return nil, err
	}
	r.freeJob(sh.jobID)
	return outputs, nil
}

// freeJob asks every live worker to drop the job's retained map outputs.
// Best-effort with a short deadline per worker, so a hung worker cannot
// stall job completion.
func (r *ProcRunner) freeJob(jobID string) {
	r.mu.Lock()
	workers := append([]*workerHandle(nil), r.workers...)
	r.mu.Unlock()
	for _, w := range workers {
		if w.dead.Load() {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+w.addr+"/v1/job/free?job="+jobID, nil)
		if err == nil {
			resp, err := r.client.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		cancel()
	}
}

// waveEvent is one task completion (or failure) arriving at the wave
// loop, or a backoff timer returning a task to the pending queue.
type waveEvent struct {
	taskID  int
	w       *workerHandle
	apply   func()
	err     error
	requeue bool // backoff elapsed: taskID goes back to pending
}

// runWave schedules n tasks over the fleet and blocks until all complete
// or the wave fails. Guarantees:
//
//   - slot discipline: at most slotsPerWorker tasks in flight per worker;
//   - first-completion-wins: apply runs exactly once per task, so counters
//     merge exactly once and outputs are installed exactly once;
//   - per-attempt deadlines: every execution runs under the policy's
//     PerTryTimeout layered beneath the job context, so a hung worker
//     costs one attempt, not the wave;
//   - bounded, paced retry: a transient failure requeues the task after a
//     jittered backoff until the policy's attempt budget is exhausted;
//     blamed failures feed the worker's breaker, which gates scheduling
//     (death stays with the heartbeat);
//   - caller aborts: job-context cancellation stops the wave without
//     retry and without blaming whichever workers held tasks in flight;
//   - elapsed budget: the wave fails with a typed retry.ErrExhausted
//     error when the policy's MaxElapsed passes, so no fault scenario
//     can hang a run;
//   - straggler speculation: when only stragglers remain, the oldest
//     lone-copy task older than SpeculateAfter is duplicated onto an idle
//     worker, at most once per task;
//   - deterministic failures (task errors) fail the wave immediately,
//     matching the local backend.
func (r *ProcRunner) runWave(ctx context.Context, j *mr.Job, spanName string, n, slotsPerWorker, nodes int, exec func(ctx context.Context, taskID int, w *workerHandle) (func(), error)) error {
	if n == 0 {
		return nil
	}
	reg := r.opts.Registry
	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}
	var (
		attempts   = make([]int, n)
		done       = make([]bool, n)
		running    = make([]int, n)
		startedAt  = make([]time.Time, n)
		speculated = make([]bool, n)
		doneCount  = 0
		inFlight   = 0
		waiting    = 0 // tasks sitting out a backoff
		slots      = make(map[*workerHandle]int)
		timers     []*time.Timer
		waveStart  = time.Now()
	)
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
	}()
	// Buffered to the dispatch ceiling (completions plus requeues) so no
	// goroutine or timer can ever block sending its event — even events
	// arriving after an early error return just land in the buffer.
	events := make(chan waveEvent, n*(2*r.policy.MaxAttempts+3)+16)

	launch := func(taskID int, w *workerHandle) {
		if running[taskID] == 0 {
			startedAt[taskID] = time.Now()
		}
		running[taskID]++
		slots[w]++
		inFlight++
		reg.Counter(MetricTasksDispatched).Inc()
		attempt := attempts[taskID]
		go func() {
			span := j.Trace.StartSpan(spanName, "task").
				SetTID(int64(taskID)).
				SetArg("worker", w.id).
				SetArg("attempt", attempt)
			tryCtx, cancel := perTryContext(ctx, r.policy.PerTryTimeout)
			apply, err := exec(tryCtx, taskID, w)
			cancel()
			span.End()
			events <- waveEvent{taskID: taskID, w: w, apply: apply, err: err}
		}()
	}

	// pickWorker prefers the task's home node (taskID mod nodes, the same
	// placement rule TaskContext.NodeID encodes), then any schedulable
	// worker with a free slot. Breaker Allow is evaluated last: a
	// half-open breaker admits exactly one probe, and a granted probe is
	// always dispatched.
	pickWorker := func(taskID int) *workerHandle {
		r.mu.Lock()
		defer r.mu.Unlock()
		fleet := r.workers
		if len(fleet) > nodes {
			fleet = fleet[:nodes]
		}
		if len(fleet) == 0 {
			return nil
		}
		if w := fleet[taskID%len(fleet)]; !w.dead.Load() && slots[w] < slotsPerWorker && w.breaker.Allow() {
			return w
		}
		for _, w := range fleet {
			if !w.dead.Load() && slots[w] < slotsPerWorker && w.breaker.Allow() {
				return w
			}
		}
		return nil
	}

	spec := time.NewTicker(r.opts.HeartbeatInterval)
	defer spec.Stop()

	var firstErr error
	for doneCount < n && firstErr == nil {
		// The wave's own elapsed budget: chaos scenarios must end in a
		// typed error, never a hang.
		if r.policy.MaxElapsed > 0 && time.Since(waveStart) > r.policy.MaxElapsed {
			reg.Counter(MetricRetryExhausted).Inc()
			firstErr = retry.Exhausted(fmt.Sprintf("mr: job %q: wave exceeded elapsed budget %v", j.Name, r.policy.MaxElapsed), nil)
			break
		}
		// Fill free slots from the pending queue.
		for len(pending) > 0 {
			w := pickWorker(pending[0])
			if w == nil {
				break
			}
			t := pending[0]
			pending = pending[1:]
			launch(t, w)
		}
		if inFlight == 0 && waiting == 0 {
			if len(pending) == 0 {
				break
			}
			if r.liveCount() == 0 {
				firstErr = fmt.Errorf("mr: job %q: all workers dead with %d tasks unfinished: %w", j.Name, len(pending), ErrBackendUnavailable)
				break
			}
			// Workers alive but breaker-gated: wait for a cooldown to
			// re-admit a probe (the ticker below wakes us).
		}
		select {
		case <-ctx.Done():
			reg.Counter(MetricRetryAborts).Inc()
			firstErr = fmt.Errorf("mr: job %q: %w", j.Name, ctx.Err())
		case <-spec.C:
			if r.opts.SpeculateAfter <= 0 || len(pending) > 0 {
				break
			}
			// Tail of the wave: duplicate the oldest lone straggler.
			best, bestAge := -1, r.opts.SpeculateAfter
			for t := 0; t < n; t++ {
				if !done[t] && running[t] == 1 && !speculated[t] {
					if age := time.Since(startedAt[t]); age >= bestAge {
						best, bestAge = t, age
					}
				}
			}
			if best >= 0 {
				if w := pickWorker(best); w != nil {
					speculated[best] = true
					reg.Counter(MetricSpeculative).Inc()
					launch(best, w)
				}
			}
		case ev := <-events:
			if ev.requeue {
				waiting--
				if !done[ev.taskID] {
					pending = append(pending, ev.taskID)
				}
				break
			}
			inFlight--
			slots[ev.w]--
			running[ev.taskID]--
			switch {
			case ev.err == nil && !done[ev.taskID]:
				done[ev.taskID] = true
				doneCount++
				reg.Counter(MetricTasksCompleted).Inc()
				ev.w.breaker.Success()
				ev.apply()
			case ev.err == nil || done[ev.taskID]:
				// Speculative loser (either outcome): drop silently.
				if ev.err == nil {
					ev.w.breaker.Success()
				}
			default:
				class := retry.Classify(ctx, ev.err)
				switch class {
				case retry.CallerAbort:
					reg.Counter(MetricRetryAborts).Inc()
					cerr := ctx.Err()
					if cerr == nil {
						cerr = ev.err
					}
					firstErr = fmt.Errorf("mr: job %q: %w", j.Name, cerr)
				case retry.Permanent:
					firstErr = ev.err
				case retry.TransientBlamed, retry.TransientBlameless:
					if class == retry.TransientBlamed {
						ev.w.breaker.Failure()
					}
					attempts[ev.taskID]++
					if attempts[ev.taskID] >= r.policy.MaxAttempts {
						reg.Counter(MetricRetryExhausted).Inc()
						firstErr = retry.Exhausted(fmt.Sprintf("mr: job %q: task %d failed %d attempts", j.Name, ev.taskID, attempts[ev.taskID]), ev.err)
						break
					}
					if running[ev.taskID] == 0 {
						reg.Counter(MetricTaskRetries).Inc()
						delay := r.backoff(attempts[ev.taskID])
						if delay <= 0 {
							pending = append(pending, ev.taskID)
						} else {
							reg.Counter(MetricRetryBackoffs).Inc()
							waiting++
							tid := ev.taskID
							timers = append(timers, time.AfterFunc(delay, func() {
								events <- waveEvent{taskID: tid, requeue: true}
							}))
						}
					}
				}
			}
		}
	}
	// Drain in-flight tasks so no goroutine outlives the wave — the same
	// guarantee the local runner's WaitGroup gives. Their results are
	// discarded (the wave already failed, or they are speculative losers
	// whose winner already applied); requeue timer events are ignored.
	for inFlight > 0 {
		ev := <-events
		if ev.requeue {
			continue
		}
		inFlight--
		if firstErr == nil && ev.err == nil && !done[ev.taskID] {
			done[ev.taskID] = true
			doneCount++
			reg.Counter(MetricTasksCompleted).Inc()
			ev.apply()
		}
	}
	return firstErr
}

// Compile-time check.
var _ mr.TaskRunner = (*ProcRunner)(nil)
