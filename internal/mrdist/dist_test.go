// Package mrdist_test exercises the distributed backend end to end: the
// test binary doubles as its own worker fleet (TestMain hands worker-mode
// invocations to MaybeWorker before any test runs, so every job kind and
// value codec registered by the imported packages — plus the test-only
// "mrdist.sumtest" kind below — resolves identically on both sides).
package mrdist_test

import (
	"errors"
	"fmt"
	"math"
	"os"
	"reflect"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"gmeansmr/internal/core"
	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
	"gmeansmr/internal/kmeansmr"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/mrdist"
	"gmeansmr/internal/vec"
)

func TestMain(m *testing.M) {
	mrdist.MaybeWorker()
	os.Exit(m.Run())
}

// ---- test job kind: sum ints by residue class -------------------------

// kindSum groups the integers of a text input by v mod 5 and sums each
// group. The payload carries two fault-injection knobs: sleepMS paces map
// tasks so a wave is reliably in flight when a test kills a worker, and
// heapBytes makes the reducer reserve that much task heap, driving the
// engine's ErrHeapSpace path across the process boundary.
const kindSum = "mrdist.sumtest"

const sumKeys = 5

type sumPayload struct {
	sleepMS   int
	heapBytes int64
}

func sumSpec(p sumPayload) *mr.JobSpec {
	e := new(mrdist.Encoder).Begin()
	e.U32(uint32(p.sleepMS)).I64(p.heapBytes)
	return &mr.JobSpec{Kind: kindSum, Payload: e.Bytes()}
}

func init() {
	mrdist.RegisterKind(kindSum, func(payload []byte) (mrdist.JobParts, error) {
		d := mrdist.NewDecoder(payload)
		p := sumPayload{sleepMS: int(d.U32()), heapBytes: d.I64()}
		if err := d.Err(); err != nil {
			return mrdist.JobParts{}, err
		}
		return sumParts(p), nil
	})
}

func sumParts(p sumPayload) mrdist.JobParts {
	return mrdist.JobParts{
		NewMapper:   func() mr.Mapper { return &sumMapper{sleepMS: p.sleepMS} },
		NewCombiner: func() mr.Reducer { return sumReducer{} },
		NewReducer:  func() mr.Reducer { return sumReducer{heapBytes: p.heapBytes} },
	}
}

type sumMapper struct {
	sleepMS int
}

func (m *sumMapper) Setup(*mr.TaskContext) error {
	if m.sleepMS > 0 {
		time.Sleep(time.Duration(m.sleepMS) * time.Millisecond)
	}
	return nil
}

func (m *sumMapper) Map(ctx *mr.TaskContext, rec mr.Record, emit mr.Emitter) error {
	v, err := strconv.ParseInt(strings.TrimSpace(rec.Line), 10, 64)
	if err != nil {
		return err
	}
	ctx.Counter("sumtest.records", 1)
	emit.Emit(v%sumKeys, mr.Int64Value(v))
	return nil
}

func (m *sumMapper) Close(*mr.TaskContext, mr.Emitter) error { return nil }

type sumReducer struct {
	heapBytes int64
}

func (sumReducer) Setup(*mr.TaskContext) error { return nil }

func (r sumReducer) Reduce(ctx *mr.TaskContext, key int64, values []mr.Value, emit mr.Emitter) error {
	if r.heapBytes > 0 {
		if err := ctx.ReserveHeap(r.heapBytes); err != nil {
			return err
		}
		defer ctx.ReleaseHeap(r.heapBytes)
	}
	var sum int64
	for _, v := range values {
		iv, ok := v.(mr.Int64Value)
		if !ok {
			return fmt.Errorf("unexpected value %T", v)
		}
		sum += int64(iv)
	}
	emit.Emit(key, mr.Int64Value(sum))
	return nil
}

func (sumReducer) Close(*mr.TaskContext, mr.Emitter) error { return nil }

// numbersFS writes 0..n-1 one per line and returns the FS plus the
// expected per-residue sums.
func numbersFS(n, splitSize int) (*dfs.FS, map[int64]int64) {
	lines := make([]string, n)
	want := make(map[int64]int64, sumKeys)
	for v := 0; v < n; v++ {
		lines[v] = strconv.Itoa(v)
		want[int64(v%sumKeys)] += int64(v)
	}
	fs := dfs.New(splitSize)
	fs.WriteLines("/nums.txt", lines)
	return fs, want
}

func sumJob(fs *dfs.FS, cluster mr.Cluster, runner mr.TaskRunner, p sumPayload) *mr.Job {
	parts := sumParts(p)
	return &mr.Job{
		Name:        "dist-sum",
		FS:          fs,
		Cluster:     cluster,
		Input:       []string{"/nums.txt"},
		Runner:      runner,
		Spec:        sumSpec(p),
		NewMapper:   parts.NewMapper,
		NewCombiner: parts.NewCombiner,
		NewReducer:  parts.NewReducer,
	}
}

func checkSums(t *testing.T, res *mr.Result, want map[int64]int64) {
	t.Helper()
	got := make(map[int64]int64, len(res.Output))
	for _, kv := range res.Output {
		iv, ok := kv.Value.(mr.Int64Value)
		if !ok {
			t.Fatalf("output value %T for key %d", kv.Value, kv.Key)
		}
		got[kv.Key] += int64(iv)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sums = %v, want %v", got, want)
	}
}

func testCluster(nodes, mapSlots, reduceSlots int) mr.Cluster {
	return mr.Cluster{
		Nodes:              nodes,
		MapSlotsPerNode:    mapSlots,
		ReduceSlotsPerNode: reduceSlots,
		TaskHeapBytes:      64 << 20,
		MaxHeapUsage:       0.66,
	}
}

// ---- equivalence pins --------------------------------------------------

func sameCenters(t *testing.T, what string, local, proc []vec.Vector) {
	t.Helper()
	if len(local) != len(proc) {
		t.Fatalf("%s: %d centers local vs %d proc", what, len(local), len(proc))
	}
	for i := range local {
		if len(local[i]) != len(proc[i]) {
			t.Fatalf("%s: center %d dim mismatch", what, i)
		}
		for j := range local[i] {
			if math.Float64bits(local[i][j]) != math.Float64bits(proc[i][j]) {
				t.Fatalf("%s: center %d coord %d differs: %x vs %x",
					what, i, j, math.Float64bits(local[i][j]), math.Float64bits(proc[i][j]))
			}
		}
	}
}

func sameCounters(t *testing.T, what string, local, proc *mr.Counters) {
	t.Helper()
	l, p := local.Snapshot(), proc.Snapshot()
	if !reflect.DeepEqual(l, p) {
		t.Errorf("%s: counters differ\nlocal: %v\nproc:  %v", what, l, p)
	}
}

// gmeansEnv builds a fresh dataset + DFS + Env per backend, so neither run
// sees the other's read accounting.
func gmeansEnv(t *testing.T, spec dataset.Spec, runner mr.TaskRunner) (kmeansmr.Env, *dfs.FS) {
	t.Helper()
	ds, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	fs := dfs.New(16 << 10)
	ds.WriteToDFS(fs, "/data/points.txt")
	return kmeansmr.Env{
		FS:      fs,
		Cluster: testCluster(3, 2, 2),
		Input:   "/data/points.txt",
		Dim:     spec.Dim,
		Runner:  runner,
	}, fs
}

// TestProcBackendMatchesLocalExactly is the backend equivalence pin: a
// full G-means trajectory on the proc backend must be bit-identical to the
// in-process reference — centers, per-iteration sizes, job counters and
// dataset-read accounting.
func TestProcBackendMatchesLocalExactly(t *testing.T) {
	spec := dataset.Spec{K: 5, Dim: 3, N: 4000, MinSeparation: 16, Seed: 11}

	runTraj := func(runner mr.TaskRunner) (*core.Result, int64) {
		env, fs := gmeansEnv(t, spec, runner)
		res, err := core.Run(core.Config{Env: env, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res, fs.DatasetReads()
	}

	local, localReads := runTraj(nil)

	runner := mrdist.NewProcRunner(mrdist.Options{})
	defer runner.Close()
	proc, procReads := runTraj(runner)

	if local.K != proc.K || local.KBeforeMerge != proc.KBeforeMerge {
		t.Errorf("k: local %d/%d, proc %d/%d", local.K, local.KBeforeMerge, proc.K, proc.KBeforeMerge)
	}
	if local.Iterations != proc.Iterations {
		t.Errorf("iterations: local %d, proc %d", local.Iterations, proc.Iterations)
	}
	sameCenters(t, "gmeans", local.Centers, proc.Centers)
	sameCounters(t, "gmeans", local.Counters, proc.Counters)
	if localReads != procReads {
		t.Errorf("dataset reads: local %d, proc %d", localReads, procReads)
	}

	// One plain k-means iteration pins cluster sizes, which the G-means
	// result does not expose directly.
	centers0 := []vec.Vector{{0, 0, 0}, {50, 50, 50}, {-50, 20, 0}, {20, -40, 60}}
	envL, _ := gmeansEnv(t, spec, nil)
	itL, err := kmeansmr.Iterate(envL, centers0)
	if err != nil {
		t.Fatal(err)
	}
	envP, _ := gmeansEnv(t, spec, runner)
	itP, err := kmeansmr.Iterate(envP, centers0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(itL.Sizes, itP.Sizes) {
		t.Errorf("iterate sizes: local %v, proc %v", itL.Sizes, itP.Sizes)
	}
	sameCenters(t, "iterate", itL.Centers, itP.Centers)
	sameCounters(t, "iterate", itL.Job.Counters, itP.Job.Counters)
}

// TestProcPCACandidatesMatchLocal pins the PCA candidate policy, whose
// covariance job ships the app-registered covValue codec across the wire.
func TestProcPCACandidatesMatchLocal(t *testing.T) {
	spec := dataset.Spec{K: 3, Dim: 2, N: 1500, MinSeparation: 16, Seed: 4}

	run := func(runner mr.TaskRunner) *core.Result {
		env, _ := gmeansEnv(t, spec, runner)
		res, err := core.Run(core.Config{Env: env, Seed: 3, Candidates: core.CandidatesPCA})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	local := run(nil)
	runner := mrdist.NewProcRunner(mrdist.Options{})
	defer runner.Close()
	proc := run(runner)

	if local.K != proc.K || local.Iterations != proc.Iterations {
		t.Errorf("local k=%d iters=%d, proc k=%d iters=%d",
			local.K, local.Iterations, proc.K, proc.Iterations)
	}
	sameCenters(t, "pca", local.Centers, proc.Centers)
	sameCounters(t, "pca", local.Counters, proc.Counters)
}

// TestProcMultiKMatchesLocal pins the multi-k baseline and its evaluation
// job (the evalValue codec) across backends.
func TestProcMultiKMatchesLocal(t *testing.T) {
	spec := dataset.Spec{K: 3, Dim: 2, N: 1500, MinSeparation: 16, Seed: 4}

	run := func(runner mr.TaskRunner) *kmeansmr.MultiResult {
		env, _ := gmeansEnv(t, spec, runner)
		cfg := kmeansmr.MultiConfig{Env: env, KMin: 1, KMax: 4, Iterations: 3, Seed: 5}
		res, err := kmeansmr.RunMulti(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := kmeansmr.Evaluate(cfg, res); err != nil {
			t.Fatal(err)
		}
		return res
	}

	local := run(nil)
	runner := mrdist.NewProcRunner(mrdist.Options{})
	defer runner.Close()
	proc := run(runner)

	if len(local.CentersByK) != len(proc.CentersByK) {
		t.Fatalf("center sets: local %d ks, proc %d ks", len(local.CentersByK), len(proc.CentersByK))
	}
	for k, lc := range local.CentersByK {
		sameCenters(t, fmt.Sprintf("multik k=%d", k), lc, proc.CentersByK[k])
	}
	for k, lw := range local.WCSSByK {
		if math.Float64bits(lw) != math.Float64bits(proc.WCSSByK[k]) {
			t.Errorf("wcss[%d]: local %x, proc %x", k, math.Float64bits(lw), math.Float64bits(proc.WCSSByK[k]))
		}
	}
	sameCounters(t, "multik", local.Counters, proc.Counters)
}

// ---- plain job equivalence, heap-error identity ------------------------

func TestProcSumJobMatchesLocal(t *testing.T) {
	cluster := testCluster(2, 2, 2)

	fsL, want := numbersFS(2000, 1<<10)
	localRes, err := sumJob(fsL, cluster, nil, sumPayload{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	checkSums(t, localRes, want)

	runner := mrdist.NewProcRunner(mrdist.Options{})
	defer runner.Close()
	fsP, _ := numbersFS(2000, 1<<10)
	procRes, err := sumJob(fsP, cluster, runner, sumPayload{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	checkSums(t, procRes, want)

	if !reflect.DeepEqual(localRes.Output, procRes.Output) {
		t.Errorf("output pairs differ:\nlocal %v\nproc  %v", localRes.Output, procRes.Output)
	}
	sameCounters(t, "sum", localRes.Counters, procRes.Counters)
	if localRes.MapTasks != procRes.MapTasks || localRes.ReduceTasks != procRes.ReduceTasks {
		t.Errorf("task counts: local %d/%d, proc %d/%d",
			localRes.MapTasks, localRes.ReduceTasks, procRes.MapTasks, procRes.ReduceTasks)
	}
}

// TestProcHeapErrorIdentity checks that a worker-side ErrHeapSpace failure
// crosses the wire as the same sentinel with its task identity, and is not
// retried (the failure is deterministic, as in the local engine).
func TestProcHeapErrorIdentity(t *testing.T) {
	cluster := testCluster(2, 2, 2)
	cluster.TaskHeapBytes = 1 << 20

	runner := mrdist.NewProcRunner(mrdist.Options{})
	defer runner.Close()
	fs, _ := numbersFS(500, 1<<10)
	_, err := sumJob(fs, cluster, runner, sumPayload{heapBytes: 16 << 20}).Run()
	if err == nil {
		t.Fatal("job with over-budget reducer heap succeeded")
	}
	if !errors.Is(err, mr.ErrHeapSpace) {
		t.Fatalf("error does not unwrap to ErrHeapSpace: %v", err)
	}
	var te *mr.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("error is not a TaskError: %v", err)
	}
	if te.Kind != mr.ReduceTask {
		t.Errorf("failing task kind = %q, want reduce", te.Kind)
	}
	if got := runner.Registry().Counter(mrdist.MetricTaskRetries).Value(); got != 0 {
		t.Errorf("deterministic task error was retried %d times", got)
	}
}

// ---- fault injection ---------------------------------------------------

// TestProcWorkerDeathMidWave SIGKILLs one worker while the map wave is in
// flight: the job must still complete with correct output, and the retry
// and death metrics must record the recovery.
func TestProcWorkerDeathMidWave(t *testing.T) {
	runner := mrdist.NewProcRunner(mrdist.Options{})
	defer runner.Close()

	// 1-slot nodes and paced map tasks keep the wave long enough to kill a
	// worker that holds both completed map output and a running task.
	fs, want := numbersFS(2400, 1<<10)
	job := sumJob(fs, testCluster(3, 1, 1), runner, sumPayload{sleepMS: 200})

	type outcome struct {
		res *mr.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := job.Run()
		done <- outcome{res, err}
	}()

	completed := runner.Registry().Counter(mrdist.MetricTasksCompleted)
	killDeadline := time.After(20 * time.Second)
	killed := false
poll:
	for !killed {
		select {
		case o := <-done:
			t.Fatalf("job finished before a worker could be killed (err=%v)", o.err)
		case <-killDeadline:
			break poll
		case <-time.After(5 * time.Millisecond):
			pids := runner.WorkerPIDs()
			if completed.Value() >= 1 && len(pids) == 3 {
				if err := syscall.Kill(pids[len(pids)-1], syscall.SIGKILL); err != nil {
					t.Fatalf("kill worker: %v", err)
				}
				killed = true
			}
		}
	}
	if !killed {
		t.Fatal("never reached a killable point in the map wave")
	}

	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("job failed after worker death: %v", o.err)
		}
		checkSums(t, o.res, want)
	case <-time.After(60 * time.Second):
		t.Fatal("job did not complete after worker death")
	}

	if got := runner.Registry().Counter(mrdist.MetricWorkerDeaths).Value(); got < 1 {
		t.Errorf("worker deaths metric = %d, want >= 1", got)
	}
	if got := runner.Registry().Counter(mrdist.MetricTaskRetries).Value(); got < 1 {
		t.Errorf("task retries metric = %d, want >= 1", got)
	}
}

// TestProcStragglerSpeculation slows one worker's map tasks via the test
// hook and checks that the master launches speculative duplicates and the
// job completes correctly (first completion wins; no timing assertions).
func TestProcStragglerSpeculation(t *testing.T) {
	runner := mrdist.NewProcRunner(mrdist.Options{
		WorkerEnv: func(i int) []string {
			if i == 1 {
				return []string{mrdist.EnvTestSlowMS + "=1500"}
			}
			return nil
		},
		HeartbeatInterval: 50 * time.Millisecond,
		SpeculateAfter:    150 * time.Millisecond,
	})
	defer runner.Close()

	fs, want := numbersFS(1000, 1<<10)
	res, err := sumJob(fs, testCluster(2, 2, 1), runner, sumPayload{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	checkSums(t, res, want)

	if got := runner.Registry().Counter(mrdist.MetricSpeculative).Value(); got < 1 {
		t.Errorf("speculative tasks metric = %d, want >= 1", got)
	}
	if got := runner.Registry().Counter(mrdist.MetricWorkerDeaths).Value(); got != 0 {
		t.Errorf("straggling worker was marked dead (%d deaths); slow != dead", got)
	}
}
