package mrdist

import (
	"math"
	"reflect"
	"testing"

	"gmeansmr/internal/mr"
	"gmeansmr/internal/vec"
)

func TestDecoderEnvelope(t *testing.T) {
	cases := []struct {
		name string
		body []byte
	}{
		{"empty", nil},
		{"short", []byte("GMW")},
		{"bad magic", []byte("XXXX\x01rest")},
		{"bad version", []byte("GMWR\x07rest")},
	}
	for _, tc := range cases {
		if err := NewDecoder(tc.body).Err(); err == nil {
			t.Errorf("%s: NewDecoder accepted invalid envelope", tc.name)
		}
	}
	if err := NewDecoder(new(Encoder).Begin().Bytes()).Err(); err != nil {
		t.Fatalf("valid empty envelope rejected: %v", err)
	}
}

func TestScalarRoundTrip(t *testing.T) {
	nan := math.Float64frombits(0x7ff80000deadbeef) // NaN with a payload
	e := new(Encoder).Begin().
		U8(0xab).Bool(true).Bool(false).
		U32(0).U32(1<<32 - 1).
		I64(-1).I64(1<<62 + 3).
		F64(0).F64(math.Copysign(0, -1)).F64(math.Inf(-1)).F64(nan).
		Str("").Str("héllo\x00world").
		Blob(nil).Blob([]byte{1, 2, 3}).
		Vec(nil).Vec(vec.Vector{1.5, nan})

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.U32(); got != 0 {
		t.Errorf("U32 = %d", got)
	}
	if got := d.U32(); got != 1<<32-1 {
		t.Errorf("U32 = %d", got)
	}
	if got := d.I64(); got != -1 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.I64(); got != 1<<62+3 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.F64(); math.Float64bits(got) != 0 {
		t.Errorf("F64(+0) bits = %#x", math.Float64bits(got))
	}
	if got := d.F64(); math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
		t.Errorf("F64(-0) bits = %#x", math.Float64bits(got))
	}
	if got := d.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64(-Inf) = %v", got)
	}
	if got := d.F64(); math.Float64bits(got) != 0x7ff80000deadbeef {
		t.Errorf("F64 NaN payload not preserved: %#x", math.Float64bits(got))
	}
	if got := d.Str(); got != "" {
		t.Errorf("Str = %q", got)
	}
	if got := d.Str(); got != "héllo\x00world" {
		t.Errorf("Str = %q", got)
	}
	if got := d.Blob(); len(got) != 0 {
		t.Errorf("Blob = %v", got)
	}
	if got := d.Blob(); !reflect.DeepEqual(got, []byte{1, 2, 3}) {
		t.Errorf("Blob = %v", got)
	}
	if got := d.Vec(); got != nil {
		t.Errorf("Vec(nil) = %v", got)
	}
	got := d.Vec()
	if len(got) != 2 || got[0] != 1.5 || math.Float64bits(got[1]) != 0x7ff80000deadbeef {
		t.Errorf("Vec = %v (bits %#x)", got, math.Float64bits(got[1]))
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode error: %v", err)
	}
}

func TestValueRoundTrip(t *testing.T) {
	nan := math.Float64frombits(0x7ff0000000c0ffee)
	values := []mr.Value{
		mr.Float64Value(3.75),
		mr.Float64Value(nan),
		mr.Int64Value(-42),
		mr.BoolValue(true),
		mr.PointValue{Coords: vec.Vector{1, 2, nan}},
		mr.WeightedPointValue{WeightedPoint: vec.WeightedPoint{Sum: vec.Vector{0.5, -0.5}, Count: 9}},
		mr.ADDecisionValue{A2Star: 1.094, N: 123, Normal: false},
	}
	e := new(Encoder).Begin()
	for _, v := range values {
		if err := e.EncodeValue(v); err != nil {
			t.Fatalf("EncodeValue(%T): %v", v, err)
		}
	}
	d := NewDecoder(e.Bytes())
	for i, want := range values {
		got := d.DecodeValue()
		if !valueBitsEqual(got, want) {
			t.Errorf("value %d: got %#v, want %#v", i, got, want)
		}
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode error: %v", err)
	}
}

// valueBitsEqual compares values with float64 fields bit for bit, so NaN
// payloads count as equal to themselves.
func valueBitsEqual(a, b mr.Value) bool {
	switch x := a.(type) {
	case mr.Float64Value:
		y, ok := b.(mr.Float64Value)
		return ok && math.Float64bits(float64(x)) == math.Float64bits(float64(y))
	case mr.PointValue:
		y, ok := b.(mr.PointValue)
		return ok && vecBitsEqual(x.Coords, y.Coords)
	case mr.WeightedPointValue:
		y, ok := b.(mr.WeightedPointValue)
		return ok && x.Count == y.Count && vecBitsEqual(x.Sum, y.Sum)
	case mr.ADDecisionValue:
		y, ok := b.(mr.ADDecisionValue)
		return ok && x.N == y.N && x.Normal == y.Normal &&
			math.Float64bits(x.A2Star) == math.Float64bits(y.A2Star)
	default:
		return reflect.DeepEqual(a, b)
	}
}

func vecBitsEqual(a, b vec.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestKVsRoundTrip(t *testing.T) {
	kvs := []mr.KV{
		{Key: -7, Value: mr.Int64Value(1)},
		{Key: 0, Value: mr.Float64Value(2.5)},
		{Key: 1 << 40, Value: mr.PointValue{Coords: vec.Vector{9}}},
	}
	e := new(Encoder).Begin()
	if err := e.KVs(kvs); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(e.Bytes())
	got := d.KVs()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, kvs) {
		t.Errorf("KVs round trip: got %#v, want %#v", got, kvs)
	}

	// An empty list decodes as nil, like a task that emitted nothing.
	e = new(Encoder).Begin()
	if err := e.KVs(nil); err != nil {
		t.Fatal(err)
	}
	d = NewDecoder(e.Bytes())
	if got := d.KVs(); got != nil || d.Err() != nil {
		t.Errorf("empty KVs: got %v, err %v", got, d.Err())
	}
}

func TestCountersRoundTripKeepsZeroTouched(t *testing.T) {
	src := mr.NewCounters()
	src.Add("app.points", 100)
	src.Add("mr.map.records", 41)
	// Touched but zero: must still cross the wire, or the merged counter
	// set loses a name the local backend reports.
	src.Add("app.empty", 0)

	e := new(Encoder).Begin()
	e.Counters(src)

	dst := mr.NewCounters()
	dst.Add("mr.map.records", 1) // pre-existing count merges additively
	d := NewDecoder(e.Bytes())
	if !d.MergeCounters(dst) {
		t.Fatalf("MergeCounters failed: %v", d.Err())
	}
	want := map[string]int64{
		"app.points":     100,
		"mr.map.records": 42,
		"app.empty":      0,
	}
	if got := dst.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("merged counters = %v, want %v", got, want)
	}
}

func TestTruncationIsSticky(t *testing.T) {
	e := new(Encoder).Begin().Str("hello").I64(7)
	full := e.Bytes()
	// Chop mid-string: the length prefix promises more bytes than exist.
	trunc := full[:len(full)-12]

	d := NewDecoder(trunc)
	if got := d.Str(); got != "" {
		t.Errorf("truncated Str = %q, want zero value", got)
	}
	if got := d.I64(); got != 0 {
		t.Errorf("read after failure = %d, want 0", got)
	}
	if d.Err() == nil {
		t.Fatal("truncated message decoded without error")
	}

	// A Vec whose count promises more doubles than the buffer holds must
	// fail without allocating the promised size.
	e = new(Encoder).Begin().U32(1 << 30)
	d = NewDecoder(e.Bytes())
	if v := d.Vec(); v != nil || d.Err() == nil {
		t.Errorf("oversized Vec: got %v, err %v", v, d.Err())
	}
}

func TestUnknownValueTagFails(t *testing.T) {
	e := new(Encoder).Begin().U8(250) // no codec registered for 250
	d := NewDecoder(e.Bytes())
	if v := d.DecodeValue(); v != nil {
		t.Errorf("DecodeValue on unknown tag = %#v", v)
	}
	if d.Err() == nil {
		t.Fatal("unknown tag decoded without error")
	}
}

func TestRegisteredCodecRoundTrip(t *testing.T) {
	// pairValueTest is an app value only this test knows about.
	tag := byte(TagAppBase + 100)
	RegisterValueCodec(tag, ValueCodec{
		Encode: func(e *Encoder, v mr.Value) bool {
			p, ok := v.(pairValueTest)
			if !ok {
				return false
			}
			e.I64(p.A).I64(p.B)
			return true
		},
		Decode: func(d *Decoder) mr.Value {
			return pairValueTest{A: d.I64(), B: d.I64()}
		},
	})

	want := pairValueTest{A: 5, B: -9}
	e := new(Encoder).Begin()
	if err := e.EncodeValue(want); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(e.Bytes())
	got := d.DecodeValue()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("registered codec round trip: got %#v, want %#v", got, want)
	}

	// A value no codec claims is an encode-time error, and the probe must
	// not leave a half-written tag behind.
	e = new(Encoder).Begin()
	before := len(e.Bytes())
	if err := e.EncodeValue(unknownValueTest{}); err == nil {
		t.Fatal("EncodeValue accepted a type with no codec")
	}
	if len(e.Bytes()) != before {
		t.Errorf("failed encode left %d stray bytes", len(e.Bytes())-before)
	}
}

type pairValueTest struct{ A, B int64 }

func (pairValueTest) ByteSize() int { return 16 }

type unknownValueTest struct{}

func (unknownValueTest) ByteSize() int { return 0 }
