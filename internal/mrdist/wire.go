// Package mrdist is the distributed execution backend of the MapReduce
// engine: a master (ProcRunner) that schedules the tasks of an mr.Job onto
// worker subprocesses (cmd/mrworker, or any binary that calls MaybeWorker)
// over HTTP, with input replication, shuffle pull, straggler speculation
// and bounded retry around worker death. The in-process mr.LocalRunner
// remains the reference implementation; this backend executes the very
// same mr.Job.ExecMapTask / ExecReduceTask code on replicas of the same
// input and merges per-task counters by name, so its results are pinned
// bit-identical to the local backend (TestProcBackendMatchesLocalExactly).
//
// The wire protocol — GMWR-framed little-endian messages over plain HTTP
// POST bodies — is specified in docs/wire.md.
package mrdist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"gmeansmr/internal/mr"
	"gmeansmr/internal/vec"
)

// Wire framing constants (docs/wire.md). Every message body starts with
// the 4-byte magic and a format version byte; the remainder is
// message-specific fields in little-endian order, strings and byte blobs
// length-prefixed with u32.
const (
	wireMagic   = "GMWR"
	wireVersion = 1
)

var errWire = errors.New("mrdist: malformed wire message")

// Encoder builds a GMWR message body. The zero value is ready to use after
// Begin; all writes append to an internal buffer returned by Bytes.
type Encoder struct {
	buf []byte
}

// Begin resets the encoder and writes the envelope: magic + version.
func (e *Encoder) Begin() *Encoder {
	e.buf = append(e.buf[:0], wireMagic...)
	e.buf = append(e.buf, wireVersion)
	return e
}

// Bytes returns the encoded message.
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Encoder) U8(v byte) *Encoder {
	e.buf = append(e.buf, v)
	return e
}

// Bool appends a boolean as one byte (0/1).
func (e *Encoder) Bool(v bool) *Encoder {
	if v {
		return e.U8(1)
	}
	return e.U8(0)
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) *Encoder {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
	return e
}

// I64 appends a little-endian int64 (two's complement).
func (e *Encoder) I64(v int64) *Encoder {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v))
	return e
}

// F64 appends a little-endian IEEE 754 double, preserving the exact bit
// pattern — the codec must round-trip every float bit for bit, NaN
// payloads included, or the backend equivalence pin breaks.
func (e *Encoder) F64(v float64) *Encoder {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
	return e
}

// Str appends a u32 length-prefixed UTF-8 string.
func (e *Encoder) Str(s string) *Encoder {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
	return e
}

// Blob appends a u32 length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) *Encoder {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
	return e
}

// Vec appends a u32 count followed by that many doubles.
func (e *Encoder) Vec(v vec.Vector) *Encoder {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.F64(x)
	}
	return e
}

// Decoder consumes a GMWR message body. Errors are sticky: after the first
// malformed field every subsequent read returns a zero value, and Err
// reports the failure once at the end — call sites stay linear.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a message body and verifies the envelope.
func NewDecoder(b []byte) *Decoder {
	d := &Decoder{buf: b}
	if len(b) < len(wireMagic)+1 || string(b[:len(wireMagic)]) != wireMagic {
		d.fail("bad magic")
		return d
	}
	if b[len(wireMagic)] != wireVersion {
		d.fail(fmt.Sprintf("unsupported version %d", b[len(wireMagic)]))
		return d
	}
	d.off = len(wireMagic) + 1
	return d
}

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", errWire, msg)
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail("truncated")
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

// F64 reads a little-endian double, bit-exact.
func (d *Decoder) F64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// Str reads a u32 length-prefixed string.
func (d *Decoder) Str() string {
	n := int(d.U32())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Blob reads a u32 length-prefixed byte slice (copied).
func (d *Decoder) Blob() []byte {
	n := int(d.U32())
	b := d.take(n)
	if b == nil {
		return nil
	}
	cp := make([]byte, n)
	copy(cp, b)
	return cp
}

// Vec reads a u32 count followed by that many doubles.
func (d *Decoder) Vec() vec.Vector {
	n := int(d.U32())
	if d.err != nil || n == 0 {
		// Distinguish "decoded an empty vector" from "decode failed": both
		// return nil, but the sticky error reports the latter.
		return nil
	}
	if n*8 > len(d.buf)-d.off {
		d.fail("truncated vector")
		return nil
	}
	v := make(vec.Vector, n)
	for i := range v {
		v[i] = d.F64()
	}
	return v
}

// Value tags. 1–6 cover the engine's built-in mr.Value types; tags ≥ 16
// belong to application packages, registered via RegisterValueCodec.
const (
	tagFloat64       = 1
	tagInt64         = 2
	tagBool          = 3
	tagPoint         = 4
	tagWeightedPoint = 5
	tagADDecision    = 6

	// TagAppBase is the first tag available to application value codecs.
	TagAppBase = 16
)

// ValueCodec serializes one application-defined mr.Value type. Encode
// reports whether v is the codec's type (and if so appends its payload);
// Decode reads the payload back.
type ValueCodec struct {
	Encode func(e *Encoder, v mr.Value) bool
	Decode func(d *Decoder) mr.Value
}

var valueCodecs = struct {
	sync.RWMutex
	byTag map[byte]ValueCodec
}{byTag: make(map[byte]ValueCodec)}

// RegisterValueCodec installs the codec for an application value tag
// (≥ TagAppBase). Call from init; duplicate or reserved tags panic.
func RegisterValueCodec(tag byte, c ValueCodec) {
	if tag < TagAppBase {
		panic(fmt.Sprintf("mrdist: value tag %d is reserved for built-ins", tag))
	}
	if c.Encode == nil || c.Decode == nil {
		panic("mrdist: value codec needs both Encode and Decode")
	}
	valueCodecs.Lock()
	defer valueCodecs.Unlock()
	if _, dup := valueCodecs.byTag[tag]; dup {
		panic(fmt.Sprintf("mrdist: value tag %d registered twice", tag))
	}
	valueCodecs.byTag[tag] = c
}

// EncodeValue appends one tagged mr.Value.
func (e *Encoder) EncodeValue(v mr.Value) error {
	switch x := v.(type) {
	case mr.Float64Value:
		e.U8(tagFloat64).F64(float64(x))
	case mr.Int64Value:
		e.U8(tagInt64).I64(int64(x))
	case mr.BoolValue:
		e.U8(tagBool).Bool(bool(x))
	case mr.PointValue:
		e.U8(tagPoint).Vec(x.Coords)
	case mr.WeightedPointValue:
		e.U8(tagWeightedPoint).Vec(x.Sum).I64(x.Count)
	case mr.ADDecisionValue:
		e.U8(tagADDecision).F64(x.A2Star).I64(x.N).Bool(x.Normal)
	default:
		valueCodecs.RLock()
		defer valueCodecs.RUnlock()
		for tag, c := range valueCodecs.byTag {
			mark := len(e.buf)
			e.U8(tag)
			if c.Encode(e, v) {
				return nil
			}
			e.buf = e.buf[:mark]
		}
		return fmt.Errorf("mrdist: no wire codec for value type %T", v)
	}
	return nil
}

// DecodeValue reads one tagged mr.Value.
func (d *Decoder) DecodeValue() mr.Value {
	switch tag := d.U8(); tag {
	case tagFloat64:
		return mr.Float64Value(d.F64())
	case tagInt64:
		return mr.Int64Value(d.I64())
	case tagBool:
		return mr.BoolValue(d.Bool())
	case tagPoint:
		return mr.PointValue{Coords: d.Vec()}
	case tagWeightedPoint:
		return mr.WeightedPointValue{WeightedPoint: vec.WeightedPoint{Sum: d.Vec(), Count: d.I64()}}
	case tagADDecision:
		return mr.ADDecisionValue{A2Star: d.F64(), N: d.I64(), Normal: d.Bool()}
	default:
		valueCodecs.RLock()
		c, ok := valueCodecs.byTag[tag]
		valueCodecs.RUnlock()
		if !ok {
			d.fail(fmt.Sprintf("unknown value tag %d", tag))
			return nil
		}
		return c.Decode(d)
	}
}

// KVs appends a u32 count followed by (key, tagged value) pairs.
func (e *Encoder) KVs(kvs []mr.KV) error {
	e.U32(uint32(len(kvs)))
	for _, kv := range kvs {
		e.I64(kv.Key)
		if err := e.EncodeValue(kv.Value); err != nil {
			return err
		}
	}
	return nil
}

// KVs reads a u32-counted list of (key, tagged value) pairs. A decoded
// empty list is nil, matching what a run that emitted nothing looks like
// on the producing side.
func (d *Decoder) KVs() []mr.KV {
	n := int(d.U32())
	if d.err != nil || n == 0 {
		return nil
	}
	kvs := make([]mr.KV, 0, min(n, 1<<16))
	for i := 0; i < n; i++ {
		k := d.I64()
		v := d.DecodeValue()
		if d.err != nil {
			return nil
		}
		kvs = append(kvs, mr.KV{Key: k, Value: v})
	}
	return kvs
}

// Counters appends a task's counter deltas as name-sorted (string, i64)
// pairs. Names, not interned IDs, cross the wire: interning is
// process-local, so the master re-interns on merge. Zero-valued touched
// counters are included — Hadoop counters exist from first touch, and the
// merged set must list them for the equivalence pin to hold.
func (e *Encoder) Counters(c *mr.Counters) {
	sorted := c.Sorted()
	e.U32(uint32(len(sorted)))
	for _, cv := range sorted {
		e.Str(cv.Name).I64(cv.Value)
	}
}

// MergeCounters reads counter pairs and adds them into dst by name.
// Returns false (leaving the sticky error set) on malformed input.
func (d *Decoder) MergeCounters(dst *mr.Counters) bool {
	n := int(d.U32())
	for i := 0; i < n; i++ {
		name := d.Str()
		v := d.I64()
		if d.err != nil {
			return false
		}
		dst.Add(name, v)
	}
	return d.err == nil
}
