package mrdist

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"gmeansmr/internal/dfs"
	"gmeansmr/internal/faultinject"
	"gmeansmr/internal/mr"
)

// Environment contract between master and worker processes.
const (
	// EnvWorkerMode, when set to "1", tells MaybeWorker to run the worker
	// loop instead of the surrounding command's normal main.
	EnvWorkerMode = "GMEANSMR_MRWORKER"
	// EnvTestSlowMS injects an artificial per-map-task delay (milliseconds)
	// into a worker — the straggler fault used by the speculation tests.
	EnvTestSlowMS = "MRDIST_TEST_SLOW_MS"
)

// Response status bytes shared by the task endpoints.
const (
	statusOK        = 0 // payload follows
	statusTaskErr   = 1 // deterministic task failure: fails the job
	statusFetchFail = 2 // reduce could not pull a map output: retryable
	statusStale     = 3 // worker replica out of date: re-push and retry
)

// readyPrefix precedes the listen address on the worker's first stdout
// line; the master parses it during spawn.
const readyPrefix = "MRWORKER READY "

// Worker is one mrdist worker process: a replica FS holding pushed input
// files, completed map outputs awaiting shuffle pull, and the HTTP surface
// the master and peer workers drive. See docs/wire.md for the protocol.
type Worker struct {
	fs   *dfs.FS
	addr string // own base address, e.g. "127.0.0.1:41234"

	slowMS int // EnvTestSlowMS fault injection

	mu       sync.Mutex
	versions map[string]int64     // replica version per pushed path
	jobs     map[string]*jobState // live map outputs per job id

	client *http.Client // for peer shuffle pulls
}

// jobState holds one job's map outputs on this worker: parts[taskID][p] is
// the combined, key-sorted run map task taskID produced for partition p.
type jobState struct {
	mu    sync.Mutex
	parts map[int][][]mr.KV
}

// NewWorker returns a worker with an empty replica FS. Tests drive it
// directly; processes use RunWorker/MaybeWorker.
func NewWorker() *Worker {
	w := &Worker{
		fs:       dfs.New(0),
		versions: make(map[string]int64),
		jobs:     make(map[string]*jobState),
		client:   &http.Client{},
	}
	if ms, err := strconv.Atoi(os.Getenv(EnvTestSlowMS)); err == nil && ms > 0 {
		w.slowMS = ms
	}
	return w
}

// Handler returns the worker's HTTP surface.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/ping", w.handlePing)
	mux.HandleFunc("POST /v1/fs/push", w.handlePush)
	mux.HandleFunc("POST /v1/task/map", w.handleMap)
	mux.HandleFunc("POST /v1/task/reduce", w.handleReduce)
	mux.HandleFunc("POST /v1/shuffle", w.handleShuffle)
	mux.HandleFunc("POST /v1/job/free", w.handleFree)
	return mux
}

// MaybeWorker turns the current process into an mrdist worker when the
// master spawned it as one (EnvWorkerMode set). It never returns in that
// case: the worker serves until its stdin closes — the master holds the
// write end of the pipe, so master death reaps the worker — then exits.
// Binaries that can act as workers (cmd/mrworker, the CLIs, test binaries)
// call this first thing in main / TestMain.
func MaybeWorker() {
	if os.Getenv(EnvWorkerMode) != "1" {
		return
	}
	if err := RunWorker(); err != nil {
		fmt.Fprintln(os.Stderr, "mrworker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// RunWorker runs the worker loop in this process: listen on a loopback
// port, announce it on stdout, serve until stdin reaches EOF. When the
// master scripted a fault scenario into the environment
// (faultinject.EnvScenario), the worker's mux is wrapped in its
// middleware; otherwise the surface is served bare.
func RunWorker() error {
	inj, err := faultinject.FromEnv()
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	w := NewWorker()
	w.addr = ln.Addr().String()
	fmt.Printf("%s%s\n", readyPrefix, w.addr)
	srv := &http.Server{Handler: inj.Middleware(w.Handler())}
	go func() {
		// The master holds our stdin open for our whole life; EOF (or any
		// read error) means it is gone or told us to stop.
		io.Copy(io.Discard, os.Stdin)
		srv.Close()
	}()
	if err := srv.Serve(ln); err != http.ErrServerClosed {
		return err
	}
	return nil
}

func (w *Worker) handlePing(rw http.ResponseWriter, _ *http.Request) {
	io.WriteString(rw, "ok")
}

// handlePush installs one file replica: ?path=&version=&split= with the
// raw contents as the body.
func (w *Worker) handlePush(rw http.ResponseWriter, req *http.Request) {
	path := req.URL.Query().Get("path")
	version, err := strconv.ParseInt(req.URL.Query().Get("version"), 10, 64)
	if path == "" || err != nil {
		http.Error(rw, "push needs path and version", http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(req.Body)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	if ss, err := strconv.Atoi(req.URL.Query().Get("split")); err == nil && ss > 0 && ss != w.fs.SplitSize() {
		w.fs.SetSplitSize(ss)
	}
	w.fs.Create(path, data)
	w.mu.Lock()
	w.versions[path] = version
	w.mu.Unlock()
	rw.WriteHeader(http.StatusOK)
}

// taskRequest is the decoded common prefix of map and reduce requests.
type taskRequest struct {
	jobID       string
	name        string
	spec        mr.JobSpec
	cluster     mr.Cluster
	pointDim    int
	disColumnar bool
	numReducers int
}

func decodeTaskRequest(d *Decoder) taskRequest {
	return taskRequest{
		jobID: d.Str(),
		name:  d.Str(),
		spec:  mr.JobSpec{Kind: d.Str(), Payload: d.Blob()},
		cluster: mr.Cluster{
			Nodes:              int(d.U32()),
			MapSlotsPerNode:    int(d.U32()),
			ReduceSlotsPerNode: int(d.U32()),
			TaskHeapBytes:      d.I64(),
			MaxHeapUsage:       d.F64(),
		},
		pointDim:    int(d.U32()),
		disColumnar: d.Bool(),
		numReducers: int(d.U32()),
	}
}

func encodeTaskRequest(e *Encoder, jobID string, j *mr.Job, numReducers int) {
	e.Str(jobID).Str(j.Name).Str(j.Spec.Kind).Blob(j.Spec.Payload)
	e.U32(uint32(j.Cluster.Nodes)).U32(uint32(j.Cluster.MapSlotsPerNode)).U32(uint32(j.Cluster.ReduceSlotsPerNode))
	e.I64(j.Cluster.TaskHeapBytes).F64(j.Cluster.MaxHeapUsage)
	e.U32(uint32(j.PointDim)).Bool(j.DisableColumnar).U32(uint32(numReducers))
}

// job reconstructs the executable mr.Job for a task request against this
// worker's replica FS. The factories come from the spec's registered kind,
// so the mapper/combiner/reducer behaviour is identical to the driver's.
func (tr *taskRequest) job(fs *dfs.FS) (*mr.Job, error) {
	parts, err := buildParts(&tr.spec)
	if err != nil {
		return nil, err
	}
	return &mr.Job{
		Name:            tr.name,
		FS:              fs,
		Cluster:         tr.cluster,
		NewMapper:       parts.NewMapper,
		NewPointMapper:  parts.NewPointMapper,
		PointDim:        tr.pointDim,
		DisableColumnar: tr.disColumnar,
		NewCombiner:     parts.NewCombiner,
		NewReducer:      parts.NewReducer,
	}, nil
}

// writeTaskErr encodes a deterministic task failure. ErrHeapSpace loses
// identity across process boundaries, so it travels as a flag and the
// master reconstructs the sentinel.
func writeTaskErr(e *Encoder, err error) {
	kind, taskID := "", uint32(0)
	heap := false
	msg := err.Error()
	if te, ok := err.(*mr.TaskError); ok {
		kind = string(te.Kind)
		taskID = uint32(te.TaskID)
		heap = te.Err == mr.ErrHeapSpace
		if heap {
			msg = ""
		} else if te.Err != nil {
			msg = te.Err.Error()
		}
	}
	e.U8(statusTaskErr).Str(kind).U32(taskID).Bool(heap).Str(msg)
}

// handleMap executes one map task and retains its per-partition runs for
// shuffle pull.
func (w *Worker) handleMap(rw http.ResponseWriter, req *http.Request) {
	if w.slowMS > 0 {
		time.Sleep(time.Duration(w.slowMS) * time.Millisecond)
	}
	body, err := io.ReadAll(req.Body)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	d := NewDecoder(body)
	tr := decodeTaskRequest(d)
	taskID := int(d.U32())
	sp := dfs.Split{Path: d.Str(), Index: int(d.U32()), Start: d.I64(), End: d.I64()}
	wantVersion := d.I64()
	if err := d.Err(); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}

	var e Encoder
	e.Begin()
	w.mu.Lock()
	have := w.versions[sp.Path]
	w.mu.Unlock()
	if have != wantVersion {
		e.U8(statusStale)
		rw.Write(e.Bytes())
		return
	}

	j, err := tr.job(w.fs)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	counters := mr.NewCounters()
	runs, err := j.ExecMapTask(taskID, sp, tr.numReducers, mr.DefaultPartitioner, counters)
	if err != nil {
		writeTaskErr(&e, err)
		rw.Write(e.Bytes())
		return
	}

	js := w.jobState(tr.jobID)
	js.mu.Lock()
	js.parts[taskID] = runs
	js.mu.Unlock()

	e.U8(statusOK)
	e.Counters(counters)
	rw.Write(e.Bytes())
}

func (w *Worker) jobState(jobID string) *jobState {
	w.mu.Lock()
	defer w.mu.Unlock()
	js, ok := w.jobs[jobID]
	if !ok {
		js = &jobState{parts: make(map[int][][]mr.KV)}
		w.jobs[jobID] = js
	}
	return js
}

// handleShuffle serves the runs of one partition for the requested map
// tasks, in request order.
func (w *Worker) handleShuffle(rw http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(req.Body)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	d := NewDecoder(body)
	jobID := d.Str()
	p := int(d.U32())
	// The count is attacker-sized until proven otherwise: cap the
	// preallocation and stop looping the moment the decoder goes sticky,
	// so a corrupt frame cannot buy gigabytes or billions of iterations.
	n := int(d.U32())
	ids := make([]int, 0, min(n, 1<<16))
	for i := 0; i < n && d.Err() == nil; i++ {
		ids = append(ids, int(d.U32()))
	}
	if err := d.Err(); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}

	js := w.jobState(jobID)
	var e Encoder
	e.Begin().U8(statusOK)
	js.mu.Lock()
	defer js.mu.Unlock()
	for _, t := range ids {
		runs, ok := js.parts[t]
		if !ok || p < 0 || p >= len(runs) {
			http.Error(rw, fmt.Sprintf("no output for job %s task %d partition %d", jobID, t, p), http.StatusNotFound)
			return
		}
		if err := e.KVs(runs[p]); err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	rw.Write(e.Bytes())
}

// handleReduce pulls this partition's runs from the listed map-output
// locations (itself included), merges and reduces them, and returns the
// output with the task's counters.
func (w *Worker) handleReduce(rw http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(req.Body)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	d := NewDecoder(body)
	tr := decodeTaskRequest(d)
	p := int(d.U32())
	// Same bounded-decode discipline as handleShuffle: a corrupt count
	// must not drive the preallocation or the loop.
	numMapTasks := int(d.U32())
	locs := make([]string, 0, min(numMapTasks, 1<<16))
	for i := 0; i < numMapTasks && d.Err() == nil; i++ {
		locs = append(locs, d.Str())
	}
	if err := d.Err(); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}

	var e Encoder
	e.Begin()

	// Pull each location's runs, grouped per address but reassembled by
	// map-task id — the merge order the determinism contract requires.
	runs := make([][]mr.KV, numMapTasks)
	byAddr := make(map[string][]int, 4)
	order := make([]string, 0, 4)
	for t, addr := range locs {
		if _, seen := byAddr[addr]; !seen {
			order = append(order, addr)
		}
		byAddr[addr] = append(byAddr[addr], t)
	}
	for _, addr := range order {
		ids := byAddr[addr]
		if addr == w.addr {
			js := w.jobState(tr.jobID)
			js.mu.Lock()
			ok := true
			for _, t := range ids {
				parts, have := js.parts[t]
				if !have || p >= len(parts) {
					ok = false
					break
				}
				runs[t] = parts[p]
			}
			js.mu.Unlock()
			if !ok {
				e.U8(statusFetchFail).Str(addr)
				rw.Write(e.Bytes())
				return
			}
			continue
		}
		got, err := w.fetchShuffle(req.Context(), addr, tr.jobID, p, ids)
		if err != nil {
			e.U8(statusFetchFail).Str(addr)
			rw.Write(e.Bytes())
			return
		}
		for i, t := range ids {
			runs[t] = got[i]
		}
	}

	j, err := tr.job(w.fs)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	counters := mr.NewCounters()
	out, err := j.ExecReduceTask(p, counters, runs)
	if err != nil {
		writeTaskErr(&e, err)
		rw.Write(e.Bytes())
		return
	}
	e.U8(statusOK)
	if err := e.KVs(out); err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	e.Counters(counters)
	rw.Write(e.Bytes())
}

// fetchShuffle pulls the runs of partition p for the given map tasks from
// a peer worker, under the reduce request's context so an abandoned
// reduce task does not keep pulling.
func (w *Worker) fetchShuffle(ctx context.Context, addr, jobID string, p int, ids []int) ([][]mr.KV, error) {
	var e Encoder
	e.Begin().Str(jobID).U32(uint32(p)).U32(uint32(len(ids)))
	for _, t := range ids {
		e.U32(uint32(t))
	}
	body, err := postWire(ctx, w.client, addr, "/v1/shuffle", e.Bytes())
	if err != nil {
		return nil, err
	}
	d := NewDecoder(body)
	if st := d.U8(); st != statusOK {
		return nil, fmt.Errorf("mrdist: shuffle fetch from %s: status %d", addr, st)
	}
	out := make([][]mr.KV, len(ids))
	for i := range ids {
		out[i] = d.KVs()
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// handleFree drops a completed job's map outputs.
func (w *Worker) handleFree(rw http.ResponseWriter, req *http.Request) {
	jobID := req.URL.Query().Get("job")
	w.mu.Lock()
	delete(w.jobs, jobID)
	w.mu.Unlock()
	rw.WriteHeader(http.StatusOK)
}
