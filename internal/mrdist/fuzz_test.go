package mrdist

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// blockedTransport fails every outbound request instantly, so fuzzed
// reduce frames whose map-output locations mutate into reachable-looking
// addresses can never touch the network.
type blockedTransport struct{}

func (blockedTransport) RoundTrip(*http.Request) (*http.Response, error) {
	return nil, errors.New("network blocked under fuzzing")
}

func fuzzWorker() *Worker {
	w := NewWorker()
	w.addr = "127.0.0.1:1"
	w.client = &http.Client{Transport: blockedTransport{}}
	return w
}

// fuzzTaskPrefix encodes the common taskRequest prefix with an
// unregistered kind: deep enough to drive every decode path, while
// buildParts rejects execution (fuzz inputs must not run real tasks).
func fuzzTaskPrefix(e *Encoder) {
	e.Str("job-1").Str("fuzz").Str("fuzz.nokind").Blob([]byte{1, 2, 3})
	e.U32(2).U32(2).U32(2)      // cluster: nodes, map slots, reduce slots
	e.I64(64 << 20).F64(.66)    // task heap, max usage
	e.U32(0).Bool(false).U32(2) // point dim, columnar off, reducers
}

func fuzzMapFrame() []byte {
	e := new(Encoder).Begin()
	fuzzTaskPrefix(e)
	e.U32(0)                                  // task id
	e.Str("/nums.txt").U32(0).I64(0).I64(128) // split
	e.I64(0)                                  // replica version
	return e.Bytes()
}

func fuzzReduceFrame() []byte {
	e := new(Encoder).Begin()
	fuzzTaskPrefix(e)
	e.U32(0)                               // partition
	e.U32(2)                               // map task count
	e.Str("127.0.0.1:1").Str("10.0.0.9:1") // self + blocked peer
	return e.Bytes()
}

func fuzzShuffleFrame() []byte {
	return new(Encoder).Begin().
		Str("job-1").U32(0).U32(2).U32(0).U32(1).Bytes()
}

// FuzzWorkerEndpoints throws corrupt and truncated GMWR frames at the
// worker's task and shuffle endpoints. The contract: no panic, no
// unbounded allocation, and every 200 response is itself a well-formed
// GMWR frame (anything else must be an HTTP error status).
func FuzzWorkerEndpoints(f *testing.F) {
	paths := []string{"/v1/task/map", "/v1/task/reduce", "/v1/shuffle"}
	for i, frame := range [][]byte{fuzzMapFrame(), fuzzReduceFrame(), fuzzShuffleFrame()} {
		f.Add(i, frame)
		// Truncations, including mid-envelope and mid-field cuts.
		for _, cut := range []int{0, 3, 5, 9, len(frame) / 2, len(frame) - 1} {
			f.Add(i, frame[:cut])
		}
		// Bit-rot past the envelope (the wire_test corruption idiom).
		cor := append([]byte(nil), frame...)
		for j := 5; j < len(cor); j += 7 {
			cor[j] ^= 0xA5
		}
		f.Add(i, cor)
	}
	f.Add(0, []byte(nil))
	f.Add(0, []byte("GMW"))
	f.Add(1, []byte("XXXX\x01rest"))
	f.Add(2, []byte("GMWR\x07rest"))

	f.Fuzz(func(t *testing.T, which int, data []byte) {
		if len(data) > 1<<16 {
			return // bound per-iteration work
		}
		path := paths[((which%3)+3)%3]
		h := fuzzWorker().Handler()
		req := httptest.NewRequest("POST", path, bytes.NewReader(data))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code == http.StatusOK {
			if err := NewDecoder(rr.Body.Bytes()).Err(); err != nil {
				t.Fatalf("%s returned 200 with a malformed frame: %v", path, err)
			}
		}
	})
}
