// Package criteria implements the cluster-count selection criteria the
// paper surveys in its related work (§2): the elbow method (variance
// explained / F-test), average silhouette, Dunn's index, the gap statistic,
// the jump method, and BIC/AIC. These are what a multi-k-means pipeline
// applies after computing centers for every candidate k ("multi-k-means
// requires at least one additional job to find the correct value of k").
package criteria

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"gmeansmr/internal/lloyd"
	"gmeansmr/internal/vec"
)

// ErrNeedTwoK is returned by selectors that need at least two candidate k
// values to compare.
var ErrNeedTwoK = errors.New("criteria: need results for at least two values of k")

// Clustering bundles one candidate clustering (for a given k) with the data
// it partitions, as produced by multi-k-means or repeated Lloyd runs.
type Clustering struct {
	K          int
	Centers    []vec.Vector
	Assignment []int
	WCSS       float64
}

// FromResult adapts a lloyd.Result into a Clustering.
func FromResult(r *lloyd.Result) Clustering {
	return Clustering{K: len(r.Centers), Centers: r.Centers, Assignment: r.Assignment, WCSS: r.WCSS}
}

// TotalSS returns the total sum of squares of the dataset around its global
// centroid — the denominator of the variance-explained ratio.
func TotalSS(points []vec.Vector) float64 {
	if len(points) == 0 {
		return 0
	}
	mean := vec.Mean(points)
	var s float64
	for _, p := range points {
		s += vec.Dist2(p, mean)
	}
	return s
}

// VarianceExplained returns the between-group share of variance,
// 1 − WCSS/TSS, the quantity the elbow method plots against k.
func VarianceExplained(points []vec.Vector, c Clustering) float64 {
	tss := TotalSS(points)
	if tss == 0 {
		return 1
	}
	return 1 - c.WCSS/tss
}

// ElbowK picks k by the elbow criterion, using the drop-ratio form: the k
// that maximizes (W_{k-1} − W_k) / (W_k − W_{k+1}), i.e. the point where a
// large real improvement is followed by only marginal gains. This variant
// is robust to the geometric decay of WCSS that defeats the raw
// second-difference rule. The input must be ordered by ascending K with
// consecutive candidates.
func ElbowK(cs []Clustering) (int, error) {
	if len(cs) < 3 {
		return 0, fmt.Errorf("%w (and a third for curvature)", ErrNeedTwoK)
	}
	// Scale-free epsilon keeps the ratio finite when the curve flattens to
	// numerical noise.
	eps := cs[0].WCSS * 1e-12
	if eps <= 0 {
		eps = 1e-12
	}
	bestK, bestRatio := cs[1].K, math.Inf(-1)
	for i := 1; i < len(cs)-1; i++ {
		gain := cs[i-1].WCSS - cs[i].WCSS
		next := cs[i].WCSS - cs[i+1].WCSS
		ratio := gain / (math.Max(next, 0) + eps)
		if ratio > bestRatio {
			bestRatio, bestK = ratio, cs[i].K
		}
	}
	return bestK, nil
}

// Silhouette returns the mean silhouette coefficient of the clustering,
// computed on a uniform sample of at most sampleSize points (0 = all).
// Exact silhouette is O(n²); sampling keeps it usable on the scaled paper
// workloads while preserving the criterion's shape.
func Silhouette(points []vec.Vector, c Clustering, sampleSize int, seed int64) float64 {
	n := len(points)
	if n == 0 || c.K < 2 {
		return 0
	}
	idx := sampleIndexes(n, sampleSize, seed)

	// Bucket points per cluster once.
	clusters := make([][]int, c.K)
	for i, a := range c.Assignment {
		clusters[a] = append(clusters[a], i)
	}

	var total float64
	var counted int
	for _, i := range idx {
		own := c.Assignment[i]
		if len(clusters[own]) < 2 {
			continue // silhouette undefined for singleton clusters
		}
		a := meanDistTo(points, points[i], clusters[own], i)
		b := math.Inf(1)
		for cl := 0; cl < c.K; cl++ {
			if cl == own || len(clusters[cl]) == 0 {
				continue
			}
			if d := meanDistTo(points, points[i], clusters[cl], -1); d < b {
				b = d
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

func meanDistTo(points []vec.Vector, p vec.Vector, members []int, exclude int) float64 {
	var s float64
	var n int
	for _, m := range members {
		if m == exclude {
			continue
		}
		s += vec.Dist(p, points[m])
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// SilhouetteK picks the candidate with the highest mean silhouette.
func SilhouetteK(points []vec.Vector, cs []Clustering, sampleSize int, seed int64) (int, error) {
	if len(cs) < 2 {
		return 0, ErrNeedTwoK
	}
	bestK, bestS := 0, math.Inf(-1)
	for _, c := range cs {
		if s := Silhouette(points, c, sampleSize, seed); s > bestS {
			bestS, bestK = s, c.K
		}
	}
	return bestK, nil
}

// Dunn returns Dunn's index: minimum inter-cluster center distance divided
// by maximum cluster diameter (computed against centers for tractability —
// the "centroid diameter" variant). Higher is better.
func Dunn(points []vec.Vector, c Clustering) float64 {
	if c.K < 2 {
		return 0
	}
	minInter := math.Inf(1)
	for i := 0; i < c.K; i++ {
		for j := i + 1; j < c.K; j++ {
			if d := vec.Dist(c.Centers[i], c.Centers[j]); d < minInter {
				minInter = d
			}
		}
	}
	maxDiam := 0.0
	radius := make([]float64, c.K)
	for i, p := range points {
		a := c.Assignment[i]
		if d := vec.Dist(p, c.Centers[a]); d > radius[a] {
			radius[a] = d
		}
	}
	for _, r := range radius {
		if 2*r > maxDiam {
			maxDiam = 2 * r
		}
	}
	if maxDiam == 0 {
		return 0
	}
	return minInter / maxDiam
}

// DunnK picks the candidate with the highest Dunn index.
func DunnK(points []vec.Vector, cs []Clustering) (int, error) {
	if len(cs) < 2 {
		return 0, ErrNeedTwoK
	}
	bestK, best := 0, math.Inf(-1)
	for _, c := range cs {
		if d := Dunn(points, c); d > best {
			best, bestK = d, c.K
		}
	}
	return bestK, nil
}

// GapResult reports the gap statistic for one k.
type GapResult struct {
	K     int
	Gap   float64
	SK    float64 // simulation standard error, scaled by sqrt(1+1/B)
	LogW  float64
	ELogW float64
}

// GapStatistic computes Tibshirani's gap statistic for each candidate
// clustering using B uniform reference datasets drawn over the bounding box
// of the data. Reference clusterings reuse Lloyd with the same k.
func GapStatistic(points []vec.Vector, cs []Clustering, b int, seed int64) ([]GapResult, error) {
	if len(points) == 0 {
		return nil, errors.New("criteria: gap statistic of empty dataset")
	}
	if b <= 0 {
		b = 10
	}
	lo, hi := boundingBox(points)
	rng := rand.New(rand.NewSource(seed))
	out := make([]GapResult, 0, len(cs))
	for _, c := range cs {
		logW := math.Log(math.Max(c.WCSS, math.SmallestNonzeroFloat64))
		refLogs := make([]float64, b)
		for rep := 0; rep < b; rep++ {
			ref := uniformReference(points, lo, hi, rng)
			res, err := lloyd.Run(ref, lloyd.Config{K: c.K, MaxIterations: 30, Seeding: lloyd.SeedPlusPlus, Seed: rng.Int63()})
			if err != nil {
				return nil, err
			}
			refLogs[rep] = math.Log(math.Max(res.WCSS, math.SmallestNonzeroFloat64))
		}
		mean := meanOf(refLogs)
		sd := 0.0
		for _, v := range refLogs {
			sd += (v - mean) * (v - mean)
		}
		sd = math.Sqrt(sd / float64(b))
		out = append(out, GapResult{
			K:     c.K,
			Gap:   mean - logW,
			SK:    sd * math.Sqrt(1+1/float64(b)),
			LogW:  logW,
			ELogW: mean,
		})
	}
	return out, nil
}

// GapK applies the standard selection rule: the smallest k with
// Gap(k) ≥ Gap(k+1) − s_{k+1}. Falls back to the k with the largest gap
// when the rule never fires.
func GapK(points []vec.Vector, cs []Clustering, b int, seed int64) (int, error) {
	if len(cs) < 2 {
		return 0, ErrNeedTwoK
	}
	gaps, err := GapStatistic(points, cs, b, seed)
	if err != nil {
		return 0, err
	}
	for i := 0; i < len(gaps)-1; i++ {
		if gaps[i].Gap >= gaps[i+1].Gap-gaps[i+1].SK {
			return gaps[i].K, nil
		}
	}
	bestK, best := gaps[0].K, math.Inf(-1)
	for _, g := range gaps {
		if g.Gap > best {
			best, bestK = g.Gap, g.K
		}
	}
	return bestK, nil
}

// JumpK implements Sugar & James' jump method: distortions d_k = WCSS/(n·p)
// are raised to the power −p/2 (the recommended transformation) and the k
// with the largest jump d_k^{-p/2} − d_{k-1}^{-p/2} wins. The candidate
// list must be ordered by ascending k, ideally starting at k=1.
func JumpK(points []vec.Vector, cs []Clustering) (int, error) {
	if len(cs) < 2 {
		return 0, ErrNeedTwoK
	}
	p := float64(len(points[0]))
	n := float64(len(points))
	y := -p / 2
	prev := 0.0 // d_0^{-p/2} is defined as 0
	bestK, bestJump := 0, math.Inf(-1)
	for _, c := range cs {
		d := c.WCSS / (n * p)
		var t float64
		if d > 0 {
			t = math.Pow(d, y)
		} else {
			t = math.Inf(1)
		}
		jump := t - prev
		if jump > bestJump {
			bestJump, bestK = jump, c.K
		}
		prev = t
	}
	return bestK, nil
}

// BIC scores a clustering under the spherical-Gaussian model of Pelleg &
// Moore's X-means: higher is better. It is exposed here because BIC is also
// a usable "pick k" criterion over multi-k-means output.
func BIC(points []vec.Vector, c Clustering) float64 {
	n := float64(len(points))
	if n == 0 || c.K == 0 {
		return math.Inf(-1)
	}
	d := float64(len(points[0]))
	k := float64(c.K)
	// Maximum-likelihood variance estimate under identical spherical
	// covariance across clusters.
	denom := n - k
	if denom <= 0 {
		denom = 1
	}
	sigma2 := c.WCSS / (d * denom)
	if sigma2 <= 0 {
		sigma2 = math.SmallestNonzeroFloat64
	}
	sizes := make([]float64, c.K)
	for _, a := range c.Assignment {
		sizes[a]++
	}
	var ll float64
	for _, ni := range sizes {
		if ni == 0 {
			continue
		}
		ll += ni*math.Log(ni) - ni*math.Log(n) -
			ni*d/2*math.Log(2*math.Pi*sigma2) - (ni-1)*d/2
	}
	params := k * (d + 1) // centers + shared variance per cluster (X-means counting)
	return ll - params/2*math.Log(n)
}

// BICK picks the candidate with the highest BIC score.
func BICK(points []vec.Vector, cs []Clustering) (int, error) {
	if len(cs) < 2 {
		return 0, ErrNeedTwoK
	}
	bestK, best := 0, math.Inf(-1)
	for _, c := range cs {
		if s := BIC(points, c); s > best {
			best, bestK = s, c.K
		}
	}
	return bestK, nil
}

// AIC scores a clustering with the Akaike information criterion under the
// same model as BIC. Higher is better.
func AIC(points []vec.Vector, c Clustering) float64 {
	n := float64(len(points))
	if n == 0 || c.K == 0 {
		return math.Inf(-1)
	}
	d := float64(len(points[0]))
	bic := BIC(points, c)
	// Recover log-likelihood from BIC and re-penalize: AIC = ll − params.
	params := float64(c.K) * (d + 1)
	ll := bic + params/2*math.Log(n)
	return ll - params
}

func boundingBox(points []vec.Vector) (lo, hi vec.Vector) {
	d := len(points[0])
	lo = vec.Clone(points[0])
	hi = vec.Clone(points[0])
	for _, p := range points {
		for i := 0; i < d; i++ {
			if p[i] < lo[i] {
				lo[i] = p[i]
			}
			if p[i] > hi[i] {
				hi[i] = p[i]
			}
		}
	}
	return lo, hi
}

func uniformReference(points []vec.Vector, lo, hi vec.Vector, rng *rand.Rand) []vec.Vector {
	out := make([]vec.Vector, len(points))
	d := len(lo)
	for i := range out {
		p := make(vec.Vector, d)
		for j := 0; j < d; j++ {
			p[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
		}
		out[i] = p
	}
	return out
}

func sampleIndexes(n, sampleSize int, seed int64) []int {
	if sampleSize <= 0 || sampleSize >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	rng := rand.New(rand.NewSource(seed))
	return rng.Perm(n)[:sampleSize]
}

func meanOf(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
