package criteria

import (
	"math"
	"testing"

	"gmeansmr/internal/dataset"
	"gmeansmr/internal/lloyd"
	"gmeansmr/internal/vec"
)

// clusteringsFor builds candidate clusterings for k = 1..kmax over points.
func clusteringsFor(t *testing.T, points []vec.Vector, kmax int) []Clustering {
	t.Helper()
	out := make([]Clustering, 0, kmax)
	for k := 1; k <= kmax; k++ {
		res, err := lloyd.BestOf(points, lloyd.Config{K: k, Seeding: lloyd.SeedPlusPlus, Seed: int64(k)}, 3)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, FromResult(res))
	}
	return out
}

func trueKData(t *testing.T, k int, seed int64) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{K: k, Dim: 2, N: 150 * k, MinSeparation: 30, StdDev: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTotalSS(t *testing.T) {
	pts := []vec.Vector{{0}, {2}, {4}}
	// Mean 2; SS = 4 + 0 + 4 = 8.
	if got := TotalSS(pts); got != 8 {
		t.Errorf("TotalSS = %v, want 8", got)
	}
	if got := TotalSS(nil); got != 0 {
		t.Errorf("TotalSS(nil) = %v", got)
	}
}

func TestVarianceExplainedBounds(t *testing.T) {
	ds := trueKData(t, 3, 1)
	cs := clusteringsFor(t, ds.Points, 5)
	prev := -1.0
	for _, c := range cs {
		ve := VarianceExplained(ds.Points, c)
		if ve < 0 || ve > 1 {
			t.Errorf("k=%d: variance explained %v out of [0,1]", c.K, ve)
		}
		if ve < prev-0.05 {
			t.Errorf("variance explained dropped sharply at k=%d: %v -> %v", c.K, prev, ve)
		}
		prev = ve
	}
	// With 3 well-separated clusters, k=3 must explain almost everything.
	if ve := VarianceExplained(ds.Points, cs[2]); ve < 0.95 {
		t.Errorf("k=3 explains only %v", ve)
	}
}

func TestElbowFindsTrueK(t *testing.T) {
	ds := trueKData(t, 3, 2)
	cs := clusteringsFor(t, ds.Points, 6)
	k, err := ElbowK(cs)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Errorf("ElbowK = %d, want 3", k)
	}
}

func TestElbowNeedsThree(t *testing.T) {
	if _, err := ElbowK([]Clustering{{K: 1}, {K: 2}}); err == nil {
		t.Error("ElbowK accepted two candidates")
	}
}

func TestSilhouetteFindsTrueK(t *testing.T) {
	ds := trueKData(t, 4, 3)
	cs := clusteringsFor(t, ds.Points, 7)
	k, err := SilhouetteK(ds.Points, cs, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Errorf("SilhouetteK = %d, want 4", k)
	}
}

func TestSilhouetteRange(t *testing.T) {
	ds := trueKData(t, 3, 4)
	cs := clusteringsFor(t, ds.Points, 5)
	for _, c := range cs {
		s := Silhouette(ds.Points, c, 150, 2)
		if s < -1 || s > 1 {
			t.Errorf("silhouette %v out of [-1,1] at k=%d", s, c.K)
		}
	}
	// k=1: silhouette undefined, must return 0 rather than crash.
	if s := Silhouette(ds.Points, cs[0], 0, 1); s != 0 {
		t.Errorf("silhouette at k=1 = %v, want 0", s)
	}
}

func TestSilhouetteGoodBeatsBad(t *testing.T) {
	ds := trueKData(t, 3, 5)
	good := clusteringsFor(t, ds.Points, 3)[2]
	// Deliberately bad clustering: everything split by a hyperplane.
	badAssign := make([]int, len(ds.Points))
	for i, p := range ds.Points {
		if p[0] > 50 {
			badAssign[i] = 1
		}
	}
	centers := []vec.Vector{{25, 50}, {75, 50}}
	bad := Clustering{K: 2, Centers: centers, Assignment: badAssign,
		WCSS: lloyd.WCSS(ds.Points, centers, badAssign)}
	if Silhouette(ds.Points, good, 150, 1) <= Silhouette(ds.Points, bad, 150, 1) {
		t.Error("good clustering should out-silhouette an arbitrary split")
	}
}

func TestDunnFindsTrueK(t *testing.T) {
	ds := trueKData(t, 3, 6)
	cs := clusteringsFor(t, ds.Points, 5)
	k, err := DunnK(ds.Points, cs)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Errorf("DunnK = %d, want 3", k)
	}
}

func TestDunnDegenerate(t *testing.T) {
	if got := Dunn(nil, Clustering{K: 1}); got != 0 {
		t.Errorf("Dunn(k=1) = %v", got)
	}
}

func TestGapFindsTrueK(t *testing.T) {
	ds := trueKData(t, 3, 7)
	cs := clusteringsFor(t, ds.Points, 5)
	k, err := GapK(ds.Points, cs, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Errorf("GapK = %d, want 3", k)
	}
}

func TestGapStatisticShape(t *testing.T) {
	ds := trueKData(t, 3, 8)
	cs := clusteringsFor(t, ds.Points, 4)
	gaps, err := GapStatistic(ds.Points, cs, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(gaps) != 4 {
		t.Fatalf("gaps = %d", len(gaps))
	}
	for _, g := range gaps {
		if g.SK < 0 {
			t.Errorf("negative gap SE at k=%d", g.K)
		}
		if math.IsNaN(g.Gap) {
			t.Errorf("NaN gap at k=%d", g.K)
		}
	}
}

func TestJumpFindsTrueK(t *testing.T) {
	ds := trueKData(t, 4, 9)
	cs := clusteringsFor(t, ds.Points, 7)
	k, err := JumpK(ds.Points, cs)
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Errorf("JumpK = %d, want 4", k)
	}
}

func TestBICFindsTrueK(t *testing.T) {
	ds := trueKData(t, 3, 10)
	cs := clusteringsFor(t, ds.Points, 6)
	k, err := BICK(ds.Points, cs)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Errorf("BICK = %d, want 3", k)
	}
}

func TestBICPrefersTrueStructure(t *testing.T) {
	ds := trueKData(t, 3, 11)
	cs := clusteringsFor(t, ds.Points, 6)
	bic3 := BIC(ds.Points, cs[2])
	bic1 := BIC(ds.Points, cs[0])
	if bic3 <= bic1 {
		t.Errorf("BIC(k=3)=%v should beat BIC(k=1)=%v on 3-cluster data", bic3, bic1)
	}
}

func TestAICPenalizesLessThanBIC(t *testing.T) {
	ds := trueKData(t, 3, 12)
	cs := clusteringsFor(t, ds.Points, 6)
	// For large n, BIC's log(n)/2 penalty exceeds AIC's 1 per parameter, so
	// AIC(k) − AIC(1) ≥ BIC(k) − BIC(1) for k > 1.
	dAIC := AIC(ds.Points, cs[5]) - AIC(ds.Points, cs[0])
	dBIC := BIC(ds.Points, cs[5]) - BIC(ds.Points, cs[0])
	if dAIC < dBIC {
		t.Errorf("AIC delta %v should be ≥ BIC delta %v", dAIC, dBIC)
	}
}

func TestSelectorsNeedTwo(t *testing.T) {
	one := []Clustering{{K: 1}}
	pts := []vec.Vector{{0}, {1}}
	if _, err := SilhouetteK(pts, one, 0, 1); err == nil {
		t.Error("SilhouetteK accepted one candidate")
	}
	if _, err := DunnK(pts, one); err == nil {
		t.Error("DunnK accepted one candidate")
	}
	if _, err := GapK(pts, one, 2, 1); err == nil {
		t.Error("GapK accepted one candidate")
	}
	if _, err := JumpK(pts, one); err == nil {
		t.Error("JumpK accepted one candidate")
	}
	if _, err := BICK(pts, one); err == nil {
		t.Error("BICK accepted one candidate")
	}
}

func TestFromResult(t *testing.T) {
	pts := []vec.Vector{{0}, {1}, {10}, {11}}
	res, err := lloyd.Run(pts, lloyd.Config{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := FromResult(res)
	if c.K != 2 || c.WCSS != res.WCSS || len(c.Assignment) != 4 {
		t.Errorf("FromResult = %+v", c)
	}
}
