// Package invariants holds algorithm-agnostic checkers for clustering
// results and run traces. Harnesses (cmd/stress -zoo, regression tests)
// assert these properties instead of golden outputs: they must hold for any
// algorithm over any dataset — hostile ones included — so a violation is a
// bug by definition, not a tolerance tuning problem.
//
// The package deliberately depends on nothing but the standard library and
// speaks plain types ([][]float64, map[string]int64), so both the core
// engine and the public facade can be checked with the same code.
package invariants

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Violation is one broken invariant: which contract failed and the concrete
// evidence.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) String() string {
	return v.Invariant + ": " + v.Detail
}

// Format renders violations one per line; empty input yields "".
func Format(vs []Violation) string {
	if len(vs) == 0 {
		return ""
	}
	lines := make([]string, len(vs))
	for i, v := range vs {
		lines[i] = v.String()
	}
	return strings.Join(lines, "\n")
}

func violationf(invariant, format string, args ...any) Violation {
	return Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
}

// CheckKRange asserts 1 <= k <= maxK (maxK <= 0 means uncapped) and that k
// matches the center count when centers are given.
func CheckKRange(k, maxK, centerCount int) []Violation {
	var vs []Violation
	if k < 1 {
		vs = append(vs, violationf("k-range", "k=%d < 1", k))
	}
	if maxK > 0 && k > maxK {
		vs = append(vs, violationf("k-range", "k=%d exceeds MaxK=%d", k, maxK))
	}
	if centerCount >= 0 && k != centerCount {
		vs = append(vs, violationf("k-range", "k=%d but %d centers returned", k, centerCount))
	}
	return vs
}

// CheckCentersFinite asserts every center coordinate is a finite number.
func CheckCentersFinite(centers [][]float64) []Violation {
	var vs []Violation
	for i, c := range centers {
		for d, x := range c {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				vs = append(vs, violationf("centers-finite", "center %d dim %d = %v", i, d, x))
			}
		}
	}
	return vs
}

// CheckCentersInBounds asserts every center lies inside the data bounding
// box (with a small relative tolerance for float accumulation). Centroids
// are convex combinations of points, so a center outside the box means the
// reduction averaged points it was never given.
func CheckCentersInBounds(points, centers [][]float64) []Violation {
	if len(points) == 0 || len(centers) == 0 {
		return nil
	}
	dim := len(points[0])
	lo := append([]float64(nil), points[0]...)
	hi := append([]float64(nil), points[0]...)
	for _, p := range points {
		for d, x := range p {
			if x < lo[d] {
				lo[d] = x
			}
			if x > hi[d] {
				hi[d] = x
			}
		}
	}
	var vs []Violation
	for i, c := range centers {
		if len(c) != dim {
			vs = append(vs, violationf("centers-bbox", "center %d has dim %d, data has %d", i, len(c), dim))
			continue
		}
		for d, x := range c {
			eps := 1e-9 * math.Max(1, math.Max(math.Abs(lo[d]), math.Abs(hi[d])))
			if x < lo[d]-eps || x > hi[d]+eps {
				vs = append(vs, violationf("centers-bbox",
					"center %d dim %d = %g outside data range [%g, %g]", i, d, x, lo[d], hi[d]))
			}
		}
	}
	return vs
}

// CheckAssignment asserts the structural contract: every point is assigned
// exactly once (one label per point) and every label names an existing
// cluster.
func CheckAssignment(n, k int, assignment []int) []Violation {
	var vs []Violation
	if len(assignment) != n {
		vs = append(vs, violationf("assignment", "%d labels for %d points", len(assignment), n))
	}
	for i, a := range assignment {
		if a < 0 || a >= k {
			vs = append(vs, violationf("assignment", "point %d assigned to cluster %d, k=%d", i, a, k))
			break
		}
	}
	return vs
}

// CheckAssignmentNearest additionally asserts each label is a nearest
// center — valid only when the producer guarantees a final assignment pass
// (e.g. the facade's NearestIndex assignment), not for algorithms whose
// returned labels may predate the last centroid update.
func CheckAssignmentNearest(points, centers [][]float64, assignment []int) []Violation {
	if vs := CheckAssignment(len(points), len(centers), assignment); len(vs) > 0 {
		return vs
	}
	var vs []Violation
	for i, p := range points {
		got := dist2(p, centers[assignment[i]])
		best := math.Inf(1)
		for _, c := range centers {
			if d := dist2(p, c); d < best {
				best = d
			}
		}
		if got > best*(1+1e-12)+1e-12 {
			vs = append(vs, violationf("assignment-nearest",
				"point %d assigned at dist² %g, nearest center at %g", i, got, best))
			break
		}
	}
	return vs
}

// WCSS computes the within-cluster sum of squares of points against their
// nearest centers.
func WCSS(points, centers [][]float64) float64 {
	total := 0.0
	for _, p := range points {
		best := math.Inf(1)
		for _, c := range centers {
			if d := dist2(p, c); d < best {
				best = d
			}
		}
		total += best
	}
	return total
}

// CheckWCSSDescent asserts Lloyd's guarantee over a sequence of center sets
// from successive k-means rounds: the objective never increases. rounds[i]
// is the full center set after round i; tol is the relative slack for float
// reassociation (1e-9 is ample for the bit-stable engine paths).
func CheckWCSSDescent(points [][]float64, rounds [][][]float64, tol float64) []Violation {
	var vs []Violation
	prev := math.Inf(1)
	for i, centers := range rounds {
		w := WCSS(points, centers)
		if w > prev+tol*math.Max(1, prev) {
			vs = append(vs, violationf("wcss-descent",
				"round %d WCSS %g > round %d WCSS %g", i, w, i-1, prev))
		}
		prev = w
	}
	return vs
}

// CheckReadConservation asserts the DFS accounting identity that holds for
// every engine path: bytes read is exactly the dataset reads times the file
// size — each logical pass accounts each split's bytes once, and split
// shares sum to the file.
func CheckReadConservation(datasetReads, bytesRead, fileSize int64) []Violation {
	var vs []Violation
	if datasetReads < 1 {
		vs = append(vs, violationf("read-conservation", "DatasetReads=%d, want >= 1", datasetReads))
	}
	if fileSize > 0 && bytesRead != datasetReads*fileSize {
		vs = append(vs, violationf("read-conservation",
			"BytesRead=%d != DatasetReads(%d) x fileSize(%d) = %d",
			bytesRead, datasetReads, fileSize, datasetReads*fileSize))
	}
	return vs
}

// CheckCountersNonNegative asserts no counter underflowed.
func CheckCountersNonNegative(counters map[string]int64) []Violation {
	var vs []Violation
	for _, name := range sortedKeys(counters) {
		if counters[name] < 0 {
			vs = append(vs, violationf("counters", "%s = %d < 0", name, counters[name]))
		}
	}
	return vs
}

// Digest produces a canonical bit-exact digest of a clustering outcome —
// centers (by Float64bits, so -0 vs 0 and every ULP count), optional sizes
// and counters. Two engine paths that claim equivalence (local vs proc,
// columnar vs row-major, JSON vs binary serve) must produce equal digests.
func Digest(centers [][]float64, sizes []int64, counters map[string]int64) string {
	h := sha256.New()
	var buf [8]byte
	for _, c := range centers {
		for _, x := range c {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			h.Write(buf[:])
		}
		h.Write([]byte{'\n'})
	}
	for _, s := range sizes {
		binary.LittleEndian.PutUint64(buf[:], uint64(s))
		h.Write(buf[:])
	}
	for _, name := range sortedKeys(counters) {
		h.Write([]byte(name))
		binary.LittleEndian.PutUint64(buf[:], uint64(counters[name]))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// DigestAssignments digests an assignment response (cluster indexes plus
// distances) bit-exactly, for JSON-vs-binary serve identity checks.
func DigestAssignments(clusters []int, dists []float64) string {
	h := sha256.New()
	var buf [8]byte
	for _, c := range clusters {
		binary.LittleEndian.PutUint64(buf[:], uint64(c))
		h.Write(buf[:])
	}
	for _, d := range dists {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(d))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

func dist2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
