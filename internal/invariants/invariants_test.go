package invariants

import (
	"math"
	"strings"
	"testing"
)

var square = [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}}

func TestCheckKRange(t *testing.T) {
	if vs := CheckKRange(3, 10, 3); len(vs) != 0 {
		t.Errorf("valid k flagged: %v", vs)
	}
	if vs := CheckKRange(0, 10, 0); len(vs) == 0 {
		t.Error("k=0 not flagged")
	}
	if vs := CheckKRange(11, 10, 11); len(vs) == 0 {
		t.Error("k>MaxK not flagged")
	}
	if vs := CheckKRange(3, 0, 3); len(vs) != 0 {
		t.Errorf("uncapped maxK flagged: %v", vs)
	}
	if vs := CheckKRange(3, 10, 2); len(vs) == 0 {
		t.Error("k != center count not flagged")
	}
}

func TestCheckCentersFinite(t *testing.T) {
	if vs := CheckCentersFinite([][]float64{{1, 2}, {3, 4}}); len(vs) != 0 {
		t.Errorf("finite centers flagged: %v", vs)
	}
	if vs := CheckCentersFinite([][]float64{{1, math.NaN()}}); len(vs) == 0 {
		t.Error("NaN center not flagged")
	}
	if vs := CheckCentersFinite([][]float64{{math.Inf(1), 0}}); len(vs) == 0 {
		t.Error("Inf center not flagged")
	}
}

func TestCheckCentersInBounds(t *testing.T) {
	if vs := CheckCentersInBounds(square, [][]float64{{0.5, 0.5}, {1, 0}}); len(vs) != 0 {
		t.Errorf("in-box centers flagged: %v", vs)
	}
	if vs := CheckCentersInBounds(square, [][]float64{{1.5, 0.5}}); len(vs) == 0 {
		t.Error("out-of-box center not flagged")
	}
	if vs := CheckCentersInBounds(square, [][]float64{{0.5, 0.5, 0.5}}); len(vs) == 0 {
		t.Error("dim mismatch not flagged")
	}
	// Boundary values must pass exactly (centroid of a degenerate cluster
	// IS a data point on the hull).
	if vs := CheckCentersInBounds(square, [][]float64{{0, 0}, {1, 1}}); len(vs) != 0 {
		t.Errorf("hull centers flagged: %v", vs)
	}
}

func TestCheckAssignment(t *testing.T) {
	if vs := CheckAssignment(4, 2, []int{0, 1, 0, 1}); len(vs) != 0 {
		t.Errorf("valid assignment flagged: %v", vs)
	}
	if vs := CheckAssignment(4, 2, []int{0, 1, 0}); len(vs) == 0 {
		t.Error("short assignment not flagged")
	}
	if vs := CheckAssignment(4, 2, []int{0, 1, 2, 0}); len(vs) == 0 {
		t.Error("out-of-range label not flagged")
	}
}

func TestCheckAssignmentNearest(t *testing.T) {
	centers := [][]float64{{0, 0}, {1, 1}}
	if vs := CheckAssignmentNearest(square, centers, []int{0, 0, 0, 1}); len(vs) != 0 {
		t.Errorf("nearest assignment flagged: %v", vs)
	}
	// {1,0} is equidistant — either label is a nearest center.
	if vs := CheckAssignmentNearest(square, centers, []int{0, 1, 0, 1}); len(vs) != 0 {
		t.Errorf("tie assignment flagged: %v", vs)
	}
	if vs := CheckAssignmentNearest(square, centers, []int{1, 0, 0, 0}); len(vs) == 0 {
		t.Error("non-nearest assignment not flagged")
	}
}

func TestCheckWCSSDescent(t *testing.T) {
	down := [][][]float64{{{0.7, 0.7}}, {{0.5, 0.5}}}
	if vs := CheckWCSSDescent(square, down, 1e-9); len(vs) != 0 {
		t.Errorf("descending trajectory flagged: %v", vs)
	}
	up := [][][]float64{{{0.5, 0.5}}, {{5, 5}}}
	if vs := CheckWCSSDescent(square, up, 1e-9); len(vs) == 0 {
		t.Error("ascending trajectory not flagged")
	}
	// Equal WCSS (converged run) is non-increasing.
	flat := [][][]float64{{{0.5, 0.5}}, {{0.5, 0.5}}}
	if vs := CheckWCSSDescent(square, flat, 1e-9); len(vs) != 0 {
		t.Errorf("converged trajectory flagged: %v", vs)
	}
}

func TestCheckReadConservation(t *testing.T) {
	if vs := CheckReadConservation(3, 300, 100); len(vs) != 0 {
		t.Errorf("conserved accounting flagged: %v", vs)
	}
	if vs := CheckReadConservation(3, 299, 100); len(vs) == 0 {
		t.Error("lost byte not flagged")
	}
	if vs := CheckReadConservation(0, 0, 100); len(vs) == 0 {
		t.Error("zero reads not flagged")
	}
}

func TestCheckCountersNonNegative(t *testing.T) {
	if vs := CheckCountersNonNegative(map[string]int64{"a": 1, "b": 0}); len(vs) != 0 {
		t.Errorf("valid counters flagged: %v", vs)
	}
	if vs := CheckCountersNonNegative(map[string]int64{"a": -1}); len(vs) == 0 {
		t.Error("negative counter not flagged")
	}
}

func TestDigestStability(t *testing.T) {
	centers := [][]float64{{1.25, -2.5}, {3, 4}}
	sizes := []int64{10, 20}
	counters := map[string]int64{"x": 1, "y": 2}
	a := Digest(centers, sizes, counters)
	b := Digest(centers, sizes, map[string]int64{"y": 2, "x": 1})
	if a != b {
		t.Error("digest depends on counter map order")
	}
	if Digest(centers, sizes, map[string]int64{"x": 1, "y": 3}) == a {
		t.Error("digest ignores counter values")
	}
	if Digest([][]float64{{1.25, -2.5}, {3, 4.0000000001}}, sizes, counters) == a {
		t.Error("digest ignores a ULP-scale center change")
	}
	neg := Digest([][]float64{{math.Copysign(0, -1)}}, nil, nil)
	pos := Digest([][]float64{{0}}, nil, nil)
	if neg == pos {
		t.Error("digest conflates -0 and +0")
	}
	if DigestAssignments([]int{1, 2}, []float64{0.5}) == DigestAssignments([]int{1, 2}, []float64{0.25}) {
		t.Error("assignment digest ignores distances")
	}
}

func TestFormat(t *testing.T) {
	if Format(nil) != "" {
		t.Error("empty violations formatted non-empty")
	}
	out := Format([]Violation{{Invariant: "a", Detail: "b"}, {Invariant: "c", Detail: "d"}})
	if !strings.Contains(out, "a: b") || !strings.Contains(out, "c: d") {
		t.Errorf("format output %q", out)
	}
}
