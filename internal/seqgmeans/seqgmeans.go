// Package seqgmeans implements the original, sequential G-means algorithm
// of Hamerly & Elkan ("Learning the k in k-means", NIPS 2003) exactly as
// the reproduced paper describes it in §2: clusters are analyzed locally,
// one at a time; candidate children are initialized deterministically
// along the cluster's principal component (c ± m with |m| = σ√(2λ/π)
// where λ is the principal eigenvalue); a cluster splits when the
// Anderson–Darling test rejects Gaussianity of its points projected on
// the child-connecting vector.
//
// It serves three purposes: a correctness reference for the MapReduce
// version (internal/core), the "what the paper adapted" baseline for
// ablation benchmarks (random vs principal-direction children), and a
// practical in-memory k-finder for datasets that fit in RAM.
package seqgmeans

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"gmeansmr/internal/lloyd"
	"gmeansmr/internal/stats"
	"gmeansmr/internal/vec"
)

// ChildInit selects how a cluster's two candidate children are placed.
type ChildInit int

// Child initialization strategies.
const (
	// InitPrincipal places children at c ± m along the principal
	// component, the Hamerly–Elkan prescription. Deterministic.
	InitPrincipal ChildInit = iota
	// InitRandom picks two random member points — what the MapReduce
	// adaptation does, because principal components would need an extra
	// job ("in our implementation, the new centers are chosen randomly").
	InitRandom
)

// Config parameterizes a sequential G-means run.
type Config struct {
	// Alpha is the Anderson–Darling significance level (0 = 0.0001).
	Alpha float64
	// MaxK bounds the number of clusters (0 = 1024).
	MaxK int
	// MinClusterSize stops splitting clusters smaller than this (0 = 25).
	MinClusterSize int
	// MaxKMeansIterations bounds every inner Lloyd run (0 = 50).
	MaxKMeansIterations int
	// Init selects child placement (default InitPrincipal).
	Init ChildInit
	Seed int64
	// Progress, when non-nil, is invoked as the work queue advances, with
	// the counts of finalized centers, clusters still queued, tests run and
	// accepted splits so far.
	Progress func(found, pending, tests, splits int)
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.0001
	}
	if c.MaxK <= 0 {
		c.MaxK = 1024
	}
	if c.MinClusterSize <= 0 {
		c.MinClusterSize = 25
	}
	if c.MaxKMeansIterations <= 0 {
		c.MaxKMeansIterations = 50
	}
	return c
}

// Result is the outcome of a sequential G-means run.
type Result struct {
	Centers    []vec.Vector
	K          int
	Assignment []int
	WCSS       float64
	// Splits is the number of accepted splits (k-1 when starting from 1).
	Splits int
	// Tests is the number of Anderson–Darling tests performed.
	Tests int
}

// Run executes sequential G-means starting from a single cluster.
func Run(points []vec.Vector, cfg Config) (*Result, error) {
	return RunContext(context.Background(), points, cfg)
}

// RunContext is Run with cancellation: ctx is checked before every cluster
// test, so a cancelled run returns promptly with ctx.Err().
func RunContext(ctx context.Context, points []vec.Vector, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(points) == 0 {
		return nil, errors.New("seqgmeans: no points")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{}

	// Work queue of clusters to test, each a set of point indexes with its
	// current center.
	type work struct {
		members []int
		center  vec.Vector
	}
	all := make([]int, len(points))
	for i := range all {
		all[i] = i
	}
	queue := []work{{members: all, center: vec.Mean(points)}}
	var final []vec.Vector

	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w := queue[0]
		queue = queue[1:]
		if cfg.Progress != nil {
			cfg.Progress(len(final), len(queue), res.Tests, res.Splits)
		}

		if len(w.members) < cfg.MinClusterSize || len(final)+len(queue)+2 > cfg.MaxK {
			final = append(final, w.center)
			continue
		}
		sub := gather(points, w.members)

		// 1. Find two children and refine them with k-means on the subset.
		c1, c2 := children(sub, w.center, cfg, rng)
		split, err := lloyd.RunFrom(sub, []vec.Vector{c1, c2}, lloyd.Config{
			MaxIterations: cfg.MaxKMeansIterations,
		})
		if err != nil {
			return nil, err
		}
		c1, c2 = split.Centers[0], split.Centers[1]

		// 2–6. Project on v = c1−c2, normalize, Anderson–Darling.
		v := vec.Sub(c1, c2)
		projections := make([]float64, len(sub))
		for i, p := range sub {
			projections[i] = vec.Project(p, v)
		}
		res.Tests++
		ad, err := stats.ADTest(projections, cfg.Alpha, 8)
		if err != nil || ad.Normal {
			// Gaussian (or undecidable): keep the original center.
			final = append(final, w.center)
			continue
		}

		// Split: recurse on each child's member set.
		res.Splits++
		var m1, m2 []int
		for i, a := range split.Assignment {
			if a == 0 {
				m1 = append(m1, w.members[i])
			} else {
				m2 = append(m2, w.members[i])
			}
		}
		if len(m1) == 0 || len(m2) == 0 {
			final = append(final, w.center)
			continue
		}
		queue = append(queue,
			work{members: m1, center: c1},
			work{members: m2, center: c2})
	}

	// Global refinement with the discovered centers, as the original
	// algorithm's final k-means pass.
	finalRun, err := lloyd.RunFrom(points, final, lloyd.Config{MaxIterations: cfg.MaxKMeansIterations})
	if err != nil {
		return nil, err
	}
	res.Centers = finalRun.Centers
	res.K = len(finalRun.Centers)
	res.Assignment = finalRun.Assignment
	res.WCSS = finalRun.WCSS
	return res, nil
}

// children places the two candidate children for a cluster.
func children(sub []vec.Vector, center vec.Vector, cfg Config, rng *rand.Rand) (vec.Vector, vec.Vector) {
	if cfg.Init == InitRandom || len(sub) < 2 {
		i := rng.Intn(len(sub))
		j := rng.Intn(len(sub))
		if j == i {
			j = (j + 1) % len(sub)
		}
		return vec.Clone(sub[i]), vec.Clone(sub[j])
	}
	dir, lambda := PrincipalComponent(sub, 50, rng)
	// m = dir · σ√(2λ/π): the offset that splits a Gaussian into its two
	// half-masses' centroids (Hamerly & Elkan, §3).
	scale := math.Sqrt(2 * lambda / math.Pi)
	m := vec.Scale(dir, scale)
	return vec.Add(center, m), vec.Sub(center, m)
}

// PrincipalComponent estimates the dominant eigenvector and eigenvalue of
// the sample covariance of points by power iteration (iters rounds). The
// returned direction has unit norm. Degenerate inputs (zero covariance)
// yield an arbitrary unit direction with eigenvalue 0.
func PrincipalComponent(points []vec.Vector, iters int, rng *rand.Rand) (vec.Vector, float64) {
	if len(points) == 0 {
		panic("seqgmeans: PrincipalComponent of empty set")
	}
	d := len(points[0])
	mean := vec.Mean(points)
	centered := make([]vec.Vector, len(points))
	for i, p := range points {
		centered[i] = vec.Sub(p, mean)
	}
	// Power iteration on C·x implemented as Σ (cᵢ·x)·cᵢ / (n-1) without
	// materializing the d×d covariance — O(n·d) per round.
	x := make(vec.Vector, d)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	normalize(x)
	var lambda float64
	n1 := float64(len(points) - 1)
	if n1 <= 0 {
		n1 = 1
	}
	for it := 0; it < iters; it++ {
		next := make(vec.Vector, d)
		for _, c := range centered {
			w := vec.Dot(c, x)
			for j := range next {
				next[j] += w * c[j]
			}
		}
		vec.ScaleInPlace(next, 1/n1)
		lambda = vec.Norm(next)
		if lambda == 0 {
			return x, 0
		}
		vec.ScaleInPlace(next, 1/lambda)
		x = next
	}
	return x, lambda
}

func normalize(v vec.Vector) {
	n := vec.Norm(v)
	if n == 0 {
		v[0] = 1
		return
	}
	vec.ScaleInPlace(v, 1/n)
}

func gather(points []vec.Vector, idx []int) []vec.Vector {
	out := make([]vec.Vector, len(idx))
	for i, j := range idx {
		out[i] = points[j]
	}
	return out
}

// String implements fmt.Stringer for diagnostics.
func (c ChildInit) String() string {
	switch c {
	case InitRandom:
		return "random"
	default:
		return "principal"
	}
}
