package seqgmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gmeansmr/internal/dataset"
	"gmeansmr/internal/vec"
)

func mixture(t *testing.T, k, dim, n int, seed int64) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{K: k, Dim: dim, N: n, MinSeparation: 20, StdDev: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRunRecoversK(t *testing.T) {
	ds := mixture(t, 8, 3, 8000, 1)
	res, err := Run(ds.Points, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 8 || res.K > 12 {
		t.Fatalf("discovered k=%d for true k=8", res.K)
	}
	for _, truth := range ds.Centers {
		_, d2 := vec.NearestIndex(truth, res.Centers)
		if math.Sqrt(d2) > 3 {
			t.Errorf("no center near truth %v", truth)
		}
	}
	if res.Splits < 7 {
		t.Errorf("splits = %d, need ≥ k-1", res.Splits)
	}
	if res.Tests < res.Splits {
		t.Errorf("tests (%d) < splits (%d)", res.Tests, res.Splits)
	}
}

func TestRunSingleGaussian(t *testing.T) {
	ds := mixture(t, 1, 4, 3000, 3)
	res, err := Run(ds.Points, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Errorf("single Gaussian split into %d", res.K)
	}
}

func TestRunEmpty(t *testing.T) {
	if _, err := Run(nil, Config{}); err == nil {
		t.Error("empty input accepted")
	}
}

func TestRunMaxK(t *testing.T) {
	ds := mixture(t, 16, 2, 8000, 5)
	res, err := Run(ds.Points, Config{MaxK: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 4 {
		t.Errorf("MaxK=4 violated: k=%d", res.K)
	}
}

func TestRandomInitAlsoRecovers(t *testing.T) {
	ds := mixture(t, 6, 2, 6000, 7)
	res, err := Run(ds.Points, Config{Init: InitRandom, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 6 || res.K > 10 {
		t.Errorf("random-init k=%d for true k=6", res.K)
	}
}

func TestPrincipalComponentKnownCovariance(t *testing.T) {
	// Points stretched along (1,1)/√2: the principal direction must align
	// with it and λ must approximate the large variance.
	r := rand.New(rand.NewSource(9))
	pts := make([]vec.Vector, 4000)
	for i := range pts {
		a := r.NormFloat64() * 10 // along (1,1)/√2
		b := r.NormFloat64()      // along (1,-1)/√2
		pts[i] = vec.Vector{(a + b) / math.Sqrt2, (a - b) / math.Sqrt2}
	}
	dir, lambda := PrincipalComponent(pts, 100, r)
	if math.Abs(vec.Norm(dir)-1) > 1e-9 {
		t.Fatalf("direction not unit: %v", dir)
	}
	cos := math.Abs(vec.Dot(dir, vec.Vector{1 / math.Sqrt2, 1 / math.Sqrt2}))
	if cos < 0.99 {
		t.Errorf("principal direction %v misaligned (|cos|=%.3f)", dir, cos)
	}
	if lambda < 80 || lambda > 120 {
		t.Errorf("lambda = %v, want ≈100", lambda)
	}
}

func TestPrincipalComponentDegenerate(t *testing.T) {
	pts := []vec.Vector{{1, 2}, {1, 2}, {1, 2}}
	r := rand.New(rand.NewSource(1))
	dir, lambda := PrincipalComponent(pts, 20, r)
	if lambda != 0 {
		t.Errorf("lambda = %v for constant points", lambda)
	}
	if len(dir) != 2 {
		t.Errorf("direction dim %d", len(dir))
	}
}

func TestChildInitString(t *testing.T) {
	if InitPrincipal.String() != "principal" || InitRandom.String() != "random" {
		t.Error("ChildInit.String wrong")
	}
}

// TestPropPrincipalComponentDominance: for anisotropic 2-D Gaussians, the
// power iteration must pick the stretched axis.
func TestPropPrincipalComponentDominance(t *testing.T) {
	f := func(seed int64, angleRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		angle := float64(angleRaw) / 255 * math.Pi
		ux, uy := math.Cos(angle), math.Sin(angle)
		pts := make([]vec.Vector, 800)
		for i := range pts {
			a := r.NormFloat64() * 8
			b := r.NormFloat64() * 0.5
			pts[i] = vec.Vector{a*ux - b*uy, a*uy + b*ux}
		}
		dir, _ := PrincipalComponent(pts, 60, r)
		cos := math.Abs(dir[0]*ux + dir[1]*uy)
		return cos > 0.97
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropKNeverBelowOne: any input yields at least one cluster and a
// complete assignment.
func TestPropKNeverBelowOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 30 + r.Intn(300)
		pts := make([]vec.Vector, n)
		for i := range pts {
			pts[i] = vec.Vector{r.NormFloat64() * 20, r.NormFloat64() * 20}
		}
		res, err := Run(pts, Config{Seed: seed, MaxK: 32})
		if err != nil || res.K < 1 {
			return false
		}
		if len(res.Assignment) != n {
			return false
		}
		for _, a := range res.Assignment {
			if a < 0 || a >= res.K {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
