package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gmeansmr/internal/model"
	"gmeansmr/internal/vec"
)

// TestAssignUnderReloadSoak hammers both assign endpoints, in both wire
// framings, while a reloader hot-swaps the model as fast as it can. Run
// under -race this is the serving path's torn-state detector. Every
// response must be wholly consistent with exactly one of the two
// alternating models: cluster, distance, and (for JSON singles) the
// echoed center must all come from the same snapshot, and a batch must
// be answered end-to-end by one snapshot.
func TestAssignUnderReloadSoak(t *testing.T) {
	const dim, k = 8, 20
	mA := randomModel(t, k, dim, 100)
	mB := randomModel(t, k, dim, 200)
	var flip atomic.Bool
	loader := func() (*model.Model, error) {
		if flip.Load() {
			return mB, nil
		}
		return mA, nil
	}
	s := newServer(t, mA, Options{Loader: loader, CoalesceWindow: 200 * time.Microsecond})

	probes := randomQueries(16, dim, 300)
	type answer struct {
		asg    Assignment
		center vec.Vector
	}
	expect := func(m *model.Model) []answer {
		out := make([]answer, len(probes))
		for i, q := range probes {
			wi, wd := vec.NearestIndex(q, m.Centers)
			out[i] = answer{Assignment{Cluster: wi, Distance: math.Sqrt(wd)}, m.Centers[wi]}
		}
		return out
	}
	wantA, wantB := expect(mA), expect(mB)

	// matches reports whether got is probe i's answer under the model
	// behind want, with the echoed center (when present) from that same
	// model — a cluster from one snapshot with a center from another is
	// the torn state this soak exists to catch.
	matches := func(i int, got Assignment, center vec.Vector, want []answer) bool {
		if got != want[i].asg {
			return false
		}
		if center == nil {
			return true
		}
		if len(center) != dim {
			return false
		}
		for j := range center {
			if center[j] != want[i].center[j] {
				return false
			}
		}
		return true
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := make(chan string, 1)
	flunk := func(msg string) {
		select {
		case fail <- msg:
		default:
		}
		stop.Store(true)
	}

	// The reloader: alternate the loader's answer and hot-swap it in.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for n := 0; n < 300; n++ {
			flip.Store(n%2 == 1)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/model/reload", nil))
			if rec.Code != http.StatusOK {
				flunk("reload failed: " + rec.Body.String())
				return
			}
		}
	}()

	// JSON singles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i = (i + 1) % len(probes) {
			body, _ := json.Marshal(assignRequest{Point: probes[i]})
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/assign", bytes.NewReader(body)))
			if rec.Code != http.StatusOK {
				flunk("JSON single: " + rec.Body.String())
				return
			}
			var resp assignResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				flunk("JSON single decode: " + err.Error())
				return
			}
			got := Assignment{Cluster: resp.Cluster, Distance: resp.Distance}
			if !matches(i, got, resp.Center, wantA) && !matches(i, got, resp.Center, wantB) {
				flunk("JSON single: torn response " + rec.Body.String())
				return
			}
		}
	}()

	// Binary singles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i = (i + 1) % len(probes) {
			body := encodeGMPB([]vec.Vector{probes[i]}, dim)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/assign", bytes.NewReader(body)))
			if rec.Code != http.StatusOK {
				flunk("binary single: " + rec.Body.String())
				return
			}
			_, asgs, err := decodeGMAB(rec.Body.Bytes())
			if err != nil {
				flunk("binary single decode: " + err.Error())
				return
			}
			if len(asgs) != 1 ||
				(!matches(i, asgs[0], nil, wantA) && !matches(i, asgs[0], nil, wantB)) {
				flunk("binary single: wrong answer for either model")
				return
			}
		}
	}()

	// Batches, alternating framings; the whole batch must come from one
	// snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; !stop.Load(); n++ {
			rec := httptest.NewRecorder()
			if n%2 == 0 {
				body, _ := json.Marshal(batchRequest{Points: probes})
				s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/assign/batch", bytes.NewReader(body)))
			} else {
				s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/assign/batch",
					bytes.NewReader(encodeGMPB(probes, dim))))
			}
			if rec.Code != http.StatusOK {
				flunk("batch: " + rec.Body.String())
				return
			}
			var got []Assignment
			if n%2 == 0 {
				var resp batchResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					flunk("batch decode: " + err.Error())
					return
				}
				got = resp.Assignments
			} else {
				var err error
				if _, got, err = decodeGMAB(rec.Body.Bytes()); err != nil {
					flunk("batch decode: " + err.Error())
					return
				}
			}
			if len(got) != len(probes) {
				flunk("batch: short answer")
				return
			}
			allA, allB := true, true
			for i := range got {
				allA = allA && got[i] == wantA[i].asg
				allB = allB && got[i] == wantB[i].asg
			}
			if !allA && !allB {
				flunk("batch answered by a mix of snapshots")
				return
			}
		}
	}()

	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if swaps := s.Metrics().Counter("serve_model_swaps_total").Value(); swaps < 300 {
		t.Fatalf("only %d swaps recorded; reloader did not run", swaps)
	}
}
