package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"gmeansmr/internal/vec"
)

// BenchmarkAssignBatchColumnar is the acceptance benchmark of the
// columnar serving refactor: one 1024-point batch at the README's
// reference shape (d=16, k=32), answered per point through the scalar
// scan versus once through the fused columnar kernel. The two paths are
// equality-gated before timing — the speedup must not buy any change in
// answers. Watched by cmd/benchdiff in CI; each op averages benchReps
// kernel passes so the single-shot CI run resists scheduling outliers.
func BenchmarkAssignBatchColumnar(b *testing.B) {
	const dim, k, batch = 16, 32, 1024
	const benchReps = 4
	m := randomModel(b, k, dim, 71)
	s := newServer(b, m, Options{})
	points := randomQueries(batch, dim, 73)

	// Equality gate.
	want, err := s.AssignBatch(points)
	if err != nil {
		b.Fatal(err)
	}
	for i, p := range points {
		got, err := s.Assign(p)
		if err != nil {
			b.Fatal(err)
		}
		if got != want[i] {
			b.Fatalf("columnar batch and per-point scan disagree at %d: %+v vs %+v", i, want[i], got)
		}
	}

	// The baseline reproduces the pre-columnar batch loop verbatim: one
	// scalar NearestIndex per point over the model's row-major centers.
	b.Run("per-point", func(b *testing.B) {
		b.ReportAllocs()
		out := make([]Assignment, len(points))
		for i := 0; i < b.N; i++ {
			for r := 0; r < benchReps; r++ {
				for j, p := range points {
					wi, wd := vec.NearestIndex(p, m.Centers)
					out[j] = Assignment{Cluster: wi, Distance: math.Sqrt(wd)}
				}
			}
		}
		b.ReportMetric(batch, "points")
	})
	b.Run("columnar-kernel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for r := 0; r < benchReps; r++ {
				if _, err := s.AssignBatch(points); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(batch, "points")
	})
}

// BenchmarkAssignCoalesced measures the micro-batching coalescer: one op
// is a burst of 64 concurrent singleton queries, the overlap shape the
// coalescer exists for. The inflight count is pinned (as in the
// coalescer tests) so grouping is deterministic regardless of
// GOMAXPROCS, and the window bounds each op — ns/op is therefore stable
// enough for benchdiff to watch. The direct sub-benchmark is the same
// burst without coalescing.
func BenchmarkAssignCoalesced(b *testing.B) {
	const dim, k, burst = 16, 32, 64
	m := randomModel(b, k, dim, 71)
	queries := randomQueries(burst, dim, 79)

	run := func(b *testing.B, s *Server) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for _, q := range queries {
				wg.Add(1)
				go func(q vec.Vector) {
					defer wg.Done()
					if _, err := s.Assign(q); err != nil {
						panic(err)
					}
				}(q)
			}
			wg.Wait()
		}
		b.ReportMetric(burst, "points")
	}

	b.Run("direct-burst-64", func(b *testing.B) {
		run(b, newServer(b, m, Options{}))
	})
	b.Run("coalesced-burst-64", func(b *testing.B) {
		s := newServer(b, m, Options{CoalesceWindow: DefaultCoalesceWindow})
		s.coal.inflight.Add(1)
		defer s.coal.inflight.Add(-1)
		run(b, s)
	})
}

// BenchmarkHTTPAssign times the full HTTP handler stack — routing, body
// read, decode, kernel, encode — whose allocs/op records the effect of
// the pooled request/response buffers. Sub-benchmarks cover the JSON
// singleton, the JSON batch, and the binary batch framing.
func BenchmarkHTTPAssign(b *testing.B) {
	const dim, k, batch = 16, 32, 256
	m := randomModel(b, k, dim, 71)
	s := newServer(b, m, Options{})
	points := randomQueries(batch, dim, 83)

	single, _ := json.Marshal(assignRequest{Point: points[0]})
	jsonBatch, _ := json.Marshal(batchRequest{Points: points})
	binBatch := encodeGMPB(points, dim)

	post := func(b *testing.B, path string, body []byte) {
		b.Helper()
		req := httptest.NewRequest("POST", path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("%s: %d %s", path, rec.Code, rec.Body)
		}
	}

	b.Run("json-single", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			post(b, "/v1/assign", single)
		}
	})
	b.Run("json-batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			post(b, "/v1/assign/batch", jsonBatch)
		}
		b.ReportMetric(batch, "points")
	})
	b.Run("binary-batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			post(b, "/v1/assign/batch", binBatch)
		}
		b.ReportMetric(batch, "points")
	})
}
