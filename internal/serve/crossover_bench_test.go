package serve

import (
	"fmt"
	"math/rand"
	"testing"

	"gmeansmr/internal/kdtree"
	"gmeansmr/internal/vec"
)

// BenchmarkAssignCrossover is the measurement behind the crossover
// heuristic constants in this package (see the package doc): for a grid
// of (k, dim) it times the three ways one query batch can be answered —
// brute-force scalar scan, kd-tree descent, and the fused columnar
// kernel — on the same centers and queries. Re-run it when the kernels
// change and update DefaultBruteForceMaxK / KDTreeMaxDim /
// BatchBruteMinDim / BatchBruteMaxK if the crossover moved:
//
//	go test -run xxx -bench BenchmarkAssignCrossover -benchtime 100x ./internal/serve/
func BenchmarkAssignCrossover(b *testing.B) {
	const batch = 256
	for _, dim := range []int{2, 4, 8, 16, 32} {
		for _, k := range []int{4, 8, 16, 32, 64, 128, 256} {
			rng := rand.New(rand.NewSource(int64(dim*1000 + k)))
			centers := make([]vec.Vector, k)
			for i := range centers {
				c := make(vec.Vector, dim)
				for j := range c {
					c[j] = rng.Float64() * 100
				}
				centers[i] = c
			}
			queries := make([]vec.Vector, batch)
			for i := range queries {
				q := make(vec.Vector, dim)
				for j := range q {
					q[j] = rng.Float64() * 100
				}
				queries[i] = q
			}
			tree := kdtree.Build(centers)
			pack := vec.PackCenters(centers)

			b.Run(fmt.Sprintf("d=%d/k=%d/brute", dim, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, q := range queries {
						vec.NearestIndex(q, centers)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/point")
			})
			b.Run(fmt.Sprintf("d=%d/k=%d/kdtree", dim, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, q := range queries {
						tree.Nearest(q)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/point")
			})
			b.Run(fmt.Sprintf("d=%d/k=%d/columnar", dim, k), func(b *testing.B) {
				s := pack.GetScratch()
				defer pack.PutScratch(s)
				for i := 0; i < b.N; i++ {
					pack.NearestRows(queries, s)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/point")
			})
		}
	}
}
