package serve

// Binary assign wire format.
//
// High-volume clients and load generators should not pay JSON: a batch
// of float64 points round-trips through decimal text at a multiple of
// its size and a large multiple of its decode cost. Both assign
// endpoints therefore also accept a request body in the GMPB point-frame
// encoding — exactly the on-disk format docs/formats.md specifies
// (12-byte header: "GMPB", version 1, reserved, dim; then n fixed-stride
// frames of dim little-endian float64s) — and answer with GMAB assign
// frames (same header discipline: "GMAB", version 1, reserved, k; then
// one 12-byte frame per point: uint32 cluster + float64 distance).
//
// Framing is selected by the body's magic bytes: a JSON body cannot
// begin with 'G''M''P''B', so sniffing is unambiguous and clients need
// no content-type ceremony (though application/x-gmab is set on
// responses). /v1/assign accepts exactly one frame; /v1/assign/batch up
// to MaxBatch. Binary requests return binary answers on success and the
// same typed JSON errors as the JSON path on failure — errors are not a
// hot path.
//
// The decoded points feed the very same crossover-selected kernel path
// as JSON requests, so the two framings are bit-identical by
// construction (pinned by TestBinaryAssignMatchesJSON).

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"net/http"

	"gmeansmr/internal/dfs"
	"gmeansmr/internal/vec"
)

// AssignMagic identifies a binary assign response ("G-Means Assign
// Binary").
const AssignMagic = "GMAB"

// AssignVersion is the current response format version.
const AssignVersion = 1

// AssignHeaderLen is the byte length of the GMAB response header.
const AssignHeaderLen = 12

// AssignFrameLen is the byte length of one GMAB assign frame:
// uint32 cluster (LE) + 8 reserved-free bytes of float64 distance (LE).
const AssignFrameLen = 12

// assignContentType is the response content type for GMAB bodies.
const assignContentType = "application/x-gmab"

// isBinaryRequest reports whether a request body is GMPB-framed.
func isBinaryRequest(body []byte) bool {
	return len(body) >= 4 && string(body[:4]) == dfs.BinaryMagic
}

// AppendAssignHeader appends the 12-byte GMAB response header for a
// model of k centers.
func AppendAssignHeader(dst []byte, k int) []byte {
	dst = append(dst, AssignMagic...)
	dst = binary.LittleEndian.AppendUint16(dst, AssignVersion)
	dst = binary.LittleEndian.AppendUint16(dst, 0)
	return binary.LittleEndian.AppendUint32(dst, uint32(k))
}

// AppendAssignFrame appends one 12-byte assign frame.
func AppendAssignFrame(dst []byte, a Assignment) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.Cluster))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.Distance))
}

// ParseAssignHeader validates a GMAB response header and returns the
// model's center count. The client half of the codec, for cmd/loadtest
// and tests.
func ParseAssignHeader(b []byte) (k int, err error) {
	if len(b) < AssignHeaderLen {
		return 0, fmt.Errorf("serve: assign response shorter than its header: %d bytes", len(b))
	}
	if string(b[:4]) != AssignMagic {
		return 0, fmt.Errorf("serve: bad assign response magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != AssignVersion {
		return 0, fmt.Errorf("serve: unsupported assign response version %d", v)
	}
	return int(binary.LittleEndian.Uint32(b[8:12])), nil
}

// DecodeAssignFrame decodes one 12-byte assign frame.
func DecodeAssignFrame(b []byte) Assignment {
	return Assignment{
		Cluster:  int(binary.LittleEndian.Uint32(b[:4])),
		Distance: math.Float64frombits(binary.LittleEndian.Uint64(b[4:12])),
	}
}

// decodeBinaryPoints validates a GMPB body against the model shape and
// decodes its frames into row vectors over one flat backing array.
// On failure it returns a typed error code + message for the client.
func decodeBinaryPoints(body []byte, dim, maxBatch int) (points []vec.Vector, code, msg string) {
	reqDim, err := dfs.ParseBinaryHeader(body)
	if err != nil {
		return nil, CodeBadBody, err.Error()
	}
	if reqDim != dim {
		return nil, CodeDimMismatch,
			fmt.Sprintf("points have %d dimensions, model wants %d", reqDim, dim)
	}
	stride := 8 * reqDim
	frames := body[dfs.BinaryHeaderLen:]
	if len(frames)%stride != 0 {
		return nil, CodeBadBody,
			fmt.Sprintf("binary body of %d frame bytes is not a multiple of the %d-byte stride", len(frames), stride)
	}
	n := len(frames) / stride
	if n == 0 {
		return nil, CodeEmptyBatch, "binary body holds no point frames"
	}
	if n > maxBatch {
		return nil, CodeTooLarge, fmt.Sprintf("batch of %d points exceeds limit %d", n, maxBatch)
	}
	flat := make([]float64, n*reqDim)
	points = make([]vec.Vector, n)
	for i := range points {
		row := flat[i*reqDim : (i+1)*reqDim : (i+1)*reqDim]
		dfs.DecodeBinaryFrame(row, frames[i*stride:])
		points[i] = row
	}
	return points, "", ""
}

// writeAssignBinary writes a GMAB response for out through a pooled
// buffer.
func writeAssignBinary(w http.ResponseWriter, k int, out []Assignment) {
	buf := bufPool.Get().(*bytes.Buffer)
	defer putBody(buf)
	buf.Reset()
	b := buf.AvailableBuffer()
	b = AppendAssignHeader(b, k)
	for _, a := range out {
		b = AppendAssignFrame(b, a)
	}
	buf.Write(b)
	w.Header().Set("Content-Type", assignContentType)
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// handleAssignBinary answers a GMPB-framed singleton on /v1/assign: the
// body must hold exactly one frame of the model's dimensionality.
func (s *Server) handleAssignBinary(w http.ResponseWriter, body []byte) {
	s.binReqs.Inc()
	a := s.active.Load()
	points, code, msg := decodeBinaryPoints(body, a.m.Dim, 1)
	if code != "" {
		if code == CodeTooLarge {
			msg = "binary /v1/assign takes exactly one point frame; use /v1/assign/batch"
		}
		httpError(w, http.StatusBadRequest, code, msg)
		return
	}
	asg, a, err := s.assignSingle(a, points[0])
	if err != nil {
		code := CodeNumericRange
		if err == errSwapDimMismatch {
			code = CodeDimMismatch
		}
		httpError(w, http.StatusBadRequest, code, err.Error())
		return
	}
	writeAssignBinary(w, a.m.K, []Assignment{asg})
}

// handleAssignBatchBinary answers a GMPB-framed batch on
// /v1/assign/batch with one GMAB frame per request frame, in order.
func (s *Server) handleAssignBatchBinary(w http.ResponseWriter, body []byte) {
	s.binReqs.Inc()
	a := s.active.Load()
	points, code, msg := decodeBinaryPoints(body, a.m.Dim, s.maxBatch)
	if code != "" {
		status := http.StatusBadRequest
		if code == CodeTooLarge {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, code, msg)
		return
	}
	out := make([]Assignment, len(points))
	if bad := a.assignInto(points, out); bad >= 0 {
		httpError(w, http.StatusBadRequest, CodeNumericRange,
			fmt.Sprintf("point %d: %v", bad, errNumericRange))
		return
	}
	writeAssignBinary(w, a.m.K, out)
}
