package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsEndpoint is the acceptance check of the serving metrics: the
// assign path feeds a latency histogram that GET /metrics exposes in
// Prometheus text format, next to the in-flight gauge and the model-swap
// counter.
func TestMetricsEndpoint(t *testing.T) {
	s := newServer(t, gridModel(t, 3, 0), Options{})

	// Drive one single assign and one batch through the HTTP layer so the
	// histograms observe real handler latencies.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/assign",
		strings.NewReader(`{"point":[1,2]}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("assign status %d: %s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/assign/batch",
		strings.NewReader(`{"points":[[1,2],[11,0]]}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body)
	}
	if err := s.Swap(gridModel(t, 3, 5)); err != nil {
		t.Fatal(err)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q, want text/plain", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE serve_assign_seconds histogram\n",
		`serve_assign_seconds_bucket{le="+Inf"} 1`,
		"serve_assign_seconds_count 1\n",
		"# TYPE serve_assign_batch_seconds histogram\n",
		"serve_assign_batch_seconds_count 1\n",
		"# TYPE serve_inflight_requests gauge\n",
		"# TYPE serve_model_swaps_total counter\n",
		"serve_model_swaps_total 2\n", // initial model + explicit Swap
		"# TYPE serve_requests_total counter\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
	// The scrape itself is the one request in flight while the snapshot is
	// written, so the gauge reads exactly 1 here (and 0 between requests).
	if !strings.Contains(body, "serve_inflight_requests 1\n") {
		t.Errorf("in-flight gauge should read 1 during the scrape:\n%s", body)
	}
	if s.reg.Gauge("serve_inflight_requests").Value() != 0 {
		t.Errorf("in-flight gauge did not settle to 0 after the scrape")
	}
	if s.Metrics() == nil {
		t.Error("Metrics() returned nil registry")
	}
}

// TestHealthzShape pins the enriched /healthz JSON: liveness plus uptime,
// model provenance and link-time build identification.
func TestHealthzShape(t *testing.T) {
	s := newServer(t, gridModel(t, 4, 0), Options{})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var out struct {
		Status        string  `json:"status"`
		K             int     `json:"k"`
		Dim           int     `json:"dim"`
		Generation    int64   `json:"generation"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Model         struct {
			Algorithm     string `json:"algorithm"`
			Iterations    int    `json:"iterations"`
			TrainedAtUnix int64  `json:"trained_at_unix"`
		} `json:"model"`
		Build map[string]string `json:"build"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("healthz is not valid JSON: %v", err)
	}
	if out.Status != "ok" || out.K != 4 || out.Dim != 2 || out.Generation != 1 {
		t.Errorf("healthz basics = %+v", out)
	}
	if out.UptimeSeconds < 0 {
		t.Errorf("uptime_seconds = %g", out.UptimeSeconds)
	}
	if out.Model.Algorithm != "test" {
		t.Errorf("model.algorithm = %q, want test", out.Model.Algorithm)
	}
	for _, key := range []string{"version", "commit", "go"} {
		if out.Build[key] == "" {
			t.Errorf("build info missing %q: %v", key, out.Build)
		}
	}
}
