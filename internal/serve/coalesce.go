package serve

// Server-side micro-batching of singleton assign requests.
//
// The columnar kernel earns its throughput by amortizing center streaming
// over many points; a singleton query gives it nothing to amortize. Under
// concurrent load, though, the server holds many singleton queries at
// once — they just arrived on different connections. The coalescer turns
// that accidental concurrency into kernel batches: a singleton that
// arrives while others are in flight parks in the currently-open group,
// and one fused NearestBatch call answers the whole group.
//
// The latency/throughput trade, explicitly:
//
//   - A coalesced request waits at most the window (default 150µs,
//     Options.CoalesceWindow, the paper-space 100–250µs budget) for
//     companions — that bound is added to its latency floor.
//   - In exchange, k·dim center-streaming work is paid once per group
//     instead of once per request, so peak throughput approaches the
//     batch kernel's points/sec instead of the scalar path's.
//   - When the server is idle the trade would be all loss, so the first
//     singleton in flight always takes the direct path (no window, no
//     group) — an idle server serves singletons at scalar latency, and
//     the window only ever delays requests that had company.
//
// A full group (CoalesceMaxBatch, default one SIMD tile) flushes
// immediately without waiting out the window.
//
// Correctness properties, pinned by tests:
//
//   - One group = one model snapshot: the leader loads the assigner once
//     and every member is answered by it, bit-identical to the direct
//     path on the same model (TestServePathEquivalence).
//   - Members are independent: a NaN point or a dim mismatch (possible
//     when a hot swap changes Dim between the handler's validation and
//     the group's kernel call) fails that member alone with a typed
//     error; its neighbors still get answers. Nothing is dropped or
//     misrouted under concurrent reload (TestAssignUnderReloadSoak).
//   - The group's done channel closes even if the kernel panics, so no
//     member can hang on a poisoned group.

import (
	"sync"
	"sync/atomic"
	"time"

	"gmeansmr/internal/vec"
)

// DefaultCoalesceWindow is the micro-batching latency budget used by
// cmd/serve's -coalesce flag when given without a duration.
const DefaultCoalesceWindow = 150 * time.Microsecond

// DefaultCoalesceMaxBatch caps one coalesced group: one SIMD tile of the
// batch kernel, past which a bigger group buys no further amortization
// on the measured machine.
const DefaultCoalesceMaxBatch = 256

type coalescer struct {
	s      *Server
	window time.Duration
	max    int

	inflight atomic.Int64 // singleton requests currently inside assign()

	mu  sync.Mutex
	cur *group // open group accepting members, nil when none
}

// group is one micro-batch being assembled and answered.
type group struct {
	points []vec.Vector
	full   chan struct{} // closed when the group reaches max members
	done   chan struct{} // closed when a/asgs/errs are published
	a      *assigner     // the snapshot that answered the group
	asgs   []Assignment
	errs   []error
}

func newCoalescer(s *Server, window time.Duration, maxBatch int) *coalescer {
	if maxBatch <= 0 {
		maxBatch = DefaultCoalesceMaxBatch
	}
	return &coalescer{s: s, window: window, max: maxBatch}
}

// assign answers one singleton query, micro-batching it with concurrent
// singletons when there are any. It returns the assigner snapshot that
// produced the answer, so the caller's response (cluster + center +
// distance) is consistent even when the group was answered by a newer
// model than the caller's handler loaded. p must already be validated
// against the caller's model; a swap racing this call is handled by the
// group's own re-validation.
func (c *coalescer) assign(p vec.Vector) (Assignment, *assigner, error) {
	n := c.inflight.Add(1)
	defer c.inflight.Add(-1)
	if n <= 1 {
		// Idle server: nobody to coalesce with, don't pay the window.
		a := c.s.active.Load()
		asg, err := a.assign(p)
		return asg, a, err
	}

	c.mu.Lock()
	if g := c.cur; g != nil {
		// Join the open group.
		pos := len(g.points)
		g.points = append(g.points, p)
		if len(g.points) == c.max {
			// Group full: detach it so later arrivals open a fresh one,
			// and release the leader early.
			c.cur = nil
			close(g.full)
		}
		c.mu.Unlock()
		<-g.done
		return g.asgs[pos], g.a, g.errs[pos]
	}
	// Open a group and lead it.
	g := &group{full: make(chan struct{}), done: make(chan struct{})}
	g.points = append(g.points, p)
	c.cur = g
	c.mu.Unlock()

	timer := time.NewTimer(c.window)
	select {
	case <-timer.C:
	case <-g.full:
		timer.Stop()
	}
	c.mu.Lock()
	if c.cur == g {
		c.cur = nil
	}
	points := g.points // no appends can land after the detach above
	c.mu.Unlock()

	c.flush(g, points)
	return g.asgs[0], g.a, g.errs[0]
}

// flush answers a detached group with one kernel call on one model
// snapshot and publishes the per-member results.
func (c *coalescer) flush(g *group, points []vec.Vector) {
	// Close done even on a kernel panic: members must never hang.
	defer close(g.done)
	g.asgs = make([]Assignment, len(points))
	g.errs = make([]error, len(points))
	c.s.coalBatches.Inc()
	c.s.coalesced.Add(int64(len(points)))

	a := c.s.active.Load()
	g.a = a
	// Re-validate dimensions against the snapshot answering the group: a
	// hot swap may have changed Dim since a member's handler validated.
	// Mismatched members fail individually; the rest still batch.
	valid := points
	mixed := false
	for _, p := range points {
		if len(p) != a.m.Dim {
			mixed = true
			break
		}
	}
	if mixed {
		valid = make([]vec.Vector, 0, len(points))
		for _, p := range points {
			if len(p) == a.m.Dim {
				valid = append(valid, p)
			}
		}
	}
	out := make([]Assignment, len(valid))
	if len(valid) > 0 {
		a.assignInto(valid, out)
	}
	vi := 0
	for i, p := range points {
		if len(p) != a.m.Dim {
			g.errs[i] = errSwapDimMismatch
			continue
		}
		asg := out[vi]
		vi++
		if asg.Cluster < 0 {
			g.errs[i] = errNumericRange
			continue
		}
		g.asgs[i] = asg
	}
}

// errSwapDimMismatch marks a coalesced member whose dimensionality no
// longer matches the model that answered its group (a hot swap landed
// between validation and the kernel call). The member fails typed; it is
// never silently assigned by the wrong geometry.
var errSwapDimMismatch = &dimSwapError{}

type dimSwapError struct{}

func (*dimSwapError) Error() string {
	return "serve: model dimensionality changed while the request was queued; retry"
}
