package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gmeansmr/internal/dfs"
	"gmeansmr/internal/vec"
)

// randomQueries draws n probe points spanning the model's center range.
func randomQueries(n, dim int, seed int64) []vec.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]vec.Vector, n)
	for i := range out {
		p := make(vec.Vector, dim)
		for j := range p {
			p[j] = rng.Float64()*140 - 20
		}
		out[i] = p
	}
	return out
}

// encodeGMPB renders queries as a GMPB request body.
func encodeGMPB(points []vec.Vector, dim int) []byte {
	body := dfs.BinaryHeader(dim)
	for _, p := range points {
		body = dfs.AppendBinaryPoint(body, p)
	}
	return body
}

// decodeGMAB parses a GMAB response body into assignments. It returns
// errors rather than failing t so soak goroutines may call it too.
func decodeGMAB(body []byte) (int, []Assignment, error) {
	k, err := ParseAssignHeader(body)
	if err != nil {
		return 0, nil, err
	}
	frames := body[AssignHeaderLen:]
	if len(frames)%AssignFrameLen != 0 {
		return 0, nil, fmt.Errorf("GMAB body of %d frame bytes is not frame-aligned", len(frames))
	}
	out := make([]Assignment, len(frames)/AssignFrameLen)
	for i := range out {
		out[i] = DecodeAssignFrame(frames[i*AssignFrameLen:])
	}
	return k, out, nil
}

// TestServePathEquivalence is the acceptance pin of this refactor: the
// columnar batch kernel, per-point kd-tree descent, the linear scan,
// coalesced singletons, and both wire framings must produce bit-identical
// assignments — same cluster index, same distance bits — on the same
// model. The (k, dim) grid places models in every crossover region, so
// every batch path and every singleton path is exercised against the
// scalar reference.
func TestServePathEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		k, dim int
	}{
		{"columnar-batch", 32, 16},          // default region: fused kernel
		{"lowdim-batch", 200, 2},            // dim<=2, large k: kernel (tree serves singles)
		{"brute-batch", 4, 32},              // dim>=32, k<=4: per-point scan
		{"brute-single-tree-batch", 140, 2}, // tree single, columnar batch
		{"tiny", 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := randomModel(t, tc.k, tc.dim, int64(tc.k))
			queries := randomQueries(257, tc.dim, 7) // odd count: SIMD tail
			// Reference: the scalar kernel, point by point.
			want := make([]Assignment, len(queries))
			for i, q := range queries {
				wi, wd := vec.NearestIndex(q, m.Centers)
				want[i] = Assignment{Cluster: wi, Distance: math.Sqrt(wd)}
			}

			for _, coalesce := range []bool{false, true} {
				opts := Options{}
				if coalesce {
					opts.CoalesceWindow = DefaultCoalesceWindow
				}
				s := newServer(t, m, opts)

				// Programmatic singleton path.
				for i, q := range queries {
					got, err := s.Assign(q)
					if err != nil {
						t.Fatal(err)
					}
					if got != want[i] {
						t.Fatalf("coalesce=%v Assign(%d) = %+v, want %+v", coalesce, i, got, want[i])
					}
				}
				// Programmatic batch path (crossover-selected kernel).
				batch, err := s.AssignBatch(queries)
				if err != nil {
					t.Fatal(err)
				}
				for i := range batch {
					if batch[i] != want[i] {
						t.Fatalf("coalesce=%v AssignBatch[%d] = %+v, want %+v", coalesce, i, batch[i], want[i])
					}
				}
				// HTTP JSON batch.
				body, _ := json.Marshal(batchRequest{Points: queries})
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/assign/batch", bytes.NewReader(body)))
				if rec.Code != http.StatusOK {
					t.Fatalf("coalesce=%v JSON batch status %d: %s", coalesce, rec.Code, rec.Body)
				}
				var jr batchResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &jr); err != nil {
					t.Fatal(err)
				}
				for i := range jr.Assignments {
					if jr.Assignments[i] != want[i] {
						t.Fatalf("coalesce=%v JSON batch[%d] = %+v, want %+v", coalesce, i, jr.Assignments[i], want[i])
					}
				}
				// HTTP binary batch.
				rec = httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/assign/batch",
					bytes.NewReader(encodeGMPB(queries, tc.dim))))
				if rec.Code != http.StatusOK {
					t.Fatalf("coalesce=%v binary batch status %d: %s", coalesce, rec.Code, rec.Body)
				}
				gotK, bin, err := decodeGMAB(rec.Body.Bytes())
				if err != nil {
					t.Fatal(err)
				}
				if gotK != tc.k || len(bin) != len(queries) {
					t.Fatalf("coalesce=%v binary batch k=%d n=%d, want k=%d n=%d",
						coalesce, gotK, len(bin), tc.k, len(queries))
				}
				for i := range bin {
					if bin[i] != want[i] {
						t.Fatalf("coalesce=%v binary batch[%d] = %+v, want %+v", coalesce, i, bin[i], want[i])
					}
				}
				// HTTP singletons, JSON and binary, concurrently — under
				// coalescing these run through grouped kernel calls.
				var wg sync.WaitGroup
				errs := make(chan error, 2*len(queries))
				for i, q := range queries {
					wg.Add(1)
					go func(i int, q vec.Vector) {
						defer wg.Done()
						jb, _ := json.Marshal(assignRequest{Point: q})
						rec := httptest.NewRecorder()
						s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/assign", bytes.NewReader(jb)))
						if rec.Code != http.StatusOK {
							errs <- fmt.Errorf("JSON single %d: status %d: %s", i, rec.Code, rec.Body)
							return
						}
						var ar assignResponse
						if err := json.Unmarshal(rec.Body.Bytes(), &ar); err != nil {
							errs <- err
							return
						}
						if ar.Cluster != want[i].Cluster || ar.Distance != want[i].Distance {
							errs <- fmt.Errorf("JSON single %d = (%d, %v), want %+v", i, ar.Cluster, ar.Distance, want[i])
						}
					}(i, q)
					wg.Add(1)
					go func(i int, q vec.Vector) {
						defer wg.Done()
						rec := httptest.NewRecorder()
						s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/assign",
							bytes.NewReader(encodeGMPB([]vec.Vector{q}, tc.dim))))
						if rec.Code != http.StatusOK {
							errs <- fmt.Errorf("binary single %d: status %d: %s", i, rec.Code, rec.Body)
							return
						}
						_, asgs, err := decodeGMAB(rec.Body.Bytes())
						if err != nil {
							errs <- err
							return
						}
						if len(asgs) != 1 || asgs[0] != want[i] {
							errs <- fmt.Errorf("binary single %d = %+v, want %+v", i, asgs, want[i])
						}
					}(i, q)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestAssignValidationRegressions covers every malformed-input shape on
// both assign endpoints, asserting the typed error code alongside the
// status: malformed JSON, empty batches, zero-dim points, ragged
// dimensions, NaN coordinates, and their binary analogues.
func TestAssignValidationRegressions(t *testing.T) {
	s := newServer(t, gridModel(t, 16, 0), Options{}) // dim 2
	cases := []struct {
		name       string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"single malformed json", "/v1/assign", `{"point":`, 400, CodeBadBody},
		{"single trailing garbage", "/v1/assign", `{"point":[1,2]} extra`, 400, CodeBadBody},
		{"single unknown field", "/v1/assign", `{"pt":[1,2]}`, 400, CodeBadBody},
		{"single missing point", "/v1/assign", `{}`, 400, CodeEmptyPoint},
		{"single zero-dim point", "/v1/assign", `{"point":[]}`, 400, CodeEmptyPoint},
		{"single ragged", "/v1/assign", `{"point":[1,2,3]}`, 400, CodeDimMismatch},
		{"single nan", "/v1/assign", `{"point":[NaN,2]}`, 400, CodeBadBody}, // JSON has no NaN literal
		{"single overflow", "/v1/assign", `{"point":[1e308,1e308]}`, 400, CodeNumericRange},
		{"batch malformed json", "/v1/assign/batch", `{"points":[[1,2],`, 400, CodeBadBody},
		{"batch missing points", "/v1/assign/batch", `{}`, 400, CodeEmptyBatch},
		{"batch empty points", "/v1/assign/batch", `{"points":[]}`, 400, CodeEmptyBatch},
		{"batch zero-dim point", "/v1/assign/batch", `{"points":[[1,2],[]]}`, 400, CodeEmptyPoint},
		{"batch ragged", "/v1/assign/batch", `{"points":[[1,2],[3]]}`, 400, CodeDimMismatch},
		{"batch overflow point", "/v1/assign/batch", `{"points":[[1,0],[1e308,1e308]]}`, 400, CodeNumericRange},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, resp := doJSON(t, s, "POST", tc.path, tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", rec.Code, tc.wantStatus, rec.Body)
			}
			if resp["code"] != tc.wantCode {
				t.Fatalf("code %q, want %q (body %s)", resp["code"], tc.wantCode, rec.Body)
			}
			if resp["error"] == "" {
				t.Fatal("typed error without message")
			}
		})
	}

	// NaN smuggled through binary framing (JSON cannot express it): the
	// kernel reports it, and the handler types it.
	nanBody := encodeGMPB([]vec.Vector{{1, 0}, {math.NaN(), 0}}, 2)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/assign/batch", bytes.NewReader(nanBody)))
	if rec.Code != 400 || !strings.Contains(rec.Body.String(), CodeNumericRange) {
		t.Fatalf("binary NaN batch: status %d body %s", rec.Code, rec.Body)
	}
}
