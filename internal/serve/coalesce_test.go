package serve

import (
	"math"
	"sync"
	"testing"
	"time"

	"gmeansmr/internal/vec"
)

// coalesceCounters reads the two coalescing metrics.
func coalesceCounters(s *Server) (requests, batches int64) {
	return s.Metrics().Counter("serve_coalesced_requests_total").Value(),
		s.Metrics().Counter("serve_coalesced_batches_total").Value()
}

// holdInflight parks a phantom in-flight singleton on the coalescer so
// every call during the test coalesces instead of taking the idle
// direct path. Engagement normally depends on real request overlap,
// which a 1-CPU scheduler may never produce for sub-microsecond
// requests; pinning the inflight count makes group formation
// deterministic on any GOMAXPROCS.
func holdInflight(t *testing.T, s *Server) {
	t.Helper()
	s.coal.inflight.Add(1)
	t.Cleanup(func() { s.coal.inflight.Add(-1) })
}

// TestCoalescerGroupsConcurrentSingles drives concurrent singleton
// queries through a coalescing server and asserts (a) every answer is
// bit-identical to the scalar reference and (b) the counters show real
// grouping: strictly fewer kernel batches than requests.
func TestCoalescerGroupsConcurrentSingles(t *testing.T) {
	m := randomModel(t, 32, 8, 5)
	s := newServer(t, m, Options{CoalesceWindow: 2 * time.Millisecond})
	holdInflight(t, s)
	queries := randomQueries(128, 8, 11)

	var wg sync.WaitGroup
	got := make([]Assignment, len(queries))
	errs := make([]error, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q vec.Vector) {
			defer wg.Done()
			got[i], errs[i] = s.Assign(q)
		}(i, q)
	}
	wg.Wait()

	for i, q := range queries {
		if errs[i] != nil {
			t.Fatalf("Assign(%d): %v", i, errs[i])
		}
		wi, wd := vec.NearestIndex(q, m.Centers)
		want := Assignment{Cluster: wi, Distance: math.Sqrt(wd)}
		if got[i] != want {
			t.Fatalf("Assign(%d) = %+v, want %+v", i, got[i], want)
		}
	}

	requests, batches := coalesceCounters(s)
	if requests != int64(len(queries)) {
		t.Fatalf("coalesced %d of %d requests", requests, len(queries))
	}
	if batches == 0 || batches >= requests {
		t.Fatalf("coalesced %d requests into %d batches; want real grouping", requests, batches)
	}
	t.Logf("coalesced %d requests into %d batches", requests, batches)
}

// TestCoalescerIdleDirectPath asserts a lone singleton never pays the
// window: with an absurdly long window, sequential requests must still
// answer instantly (and the coalesced-request counter must stay zero).
func TestCoalescerIdleDirectPath(t *testing.T) {
	s := newServer(t, gridModel(t, 16, 0), Options{CoalesceWindow: 10 * time.Second})
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := s.Assign(vec.Vector{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("idle singletons took %v; direct path not taken", el)
	}
	if requests, _ := coalesceCounters(s); requests != 0 {
		t.Fatalf("idle singletons were coalesced (%d); want direct path", requests)
	}
}

// TestCoalescerFullGroupFlushesEarly makes the latency window unusable
// (one hour) so the max-size early flush is the only way a group can
// answer. Group membership is count-based — every group detaches at
// exactly CoalesceMaxBatch members — so a member count divisible by the
// max must complete as exactly that many full groups, regardless of
// scheduling. Completion itself proves the early flush.
func TestCoalescerFullGroupFlushesEarly(t *testing.T) {
	const maxBatch = 8
	m := randomModel(t, 16, 4, 9)
	s := newServer(t, m, Options{
		CoalesceWindow:   time.Hour,
		CoalesceMaxBatch: maxBatch,
	})
	holdInflight(t, s)
	const n = 8 * maxBatch
	queries := randomQueries(n, 4, 3)
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q vec.Vector) {
			defer wg.Done()
			got, err := s.Assign(q)
			if err != nil {
				t.Errorf("Assign(%d): %v", i, err)
				return
			}
			wi, wd := vec.NearestIndex(queries[i], m.Centers)
			if want := (Assignment{Cluster: wi, Distance: math.Sqrt(wd)}); got != want {
				t.Errorf("Assign(%d) = %+v, want %+v", i, got, want)
			}
		}(i, q)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("coalesced groups never flushed; full-group early flush broken")
	}
	requests, batches := coalesceCounters(s)
	if requests != n || batches != n/maxBatch {
		t.Fatalf("%d requests in %d batches; want %d in %d full groups",
			requests, batches, n, n/maxBatch)
	}
}

// TestCoalescerMemberErrorIsolation parks a NaN query and healthy
// queries in the same window and asserts the NaN member alone fails
// while its groupmates are answered.
func TestCoalescerMemberErrorIsolation(t *testing.T) {
	m := randomModel(t, 16, 4, 13)
	s := newServer(t, m, Options{CoalesceWindow: 50 * time.Millisecond})
	holdInflight(t, s)
	bad := vec.Vector{math.NaN(), 0, 0, 0}
	good := randomQueries(8, 4, 17)

	var wg sync.WaitGroup
	var badErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, badErr = s.Assign(bad)
	}()
	for i, q := range good {
		wg.Add(1)
		go func(i int, q vec.Vector) {
			defer wg.Done()
			got, err := s.Assign(q)
			if err != nil {
				t.Errorf("good member %d poisoned by neighbor: %v", i, err)
				return
			}
			wi, wd := vec.NearestIndex(q, m.Centers)
			if want := (Assignment{Cluster: wi, Distance: math.Sqrt(wd)}); got != want {
				t.Errorf("good member %d = %+v, want %+v", i, got, want)
			}
		}(i, q)
	}
	wg.Wait()
	if badErr == nil {
		t.Fatal("NaN member was assigned a cluster")
	}
}
