package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gmeansmr/internal/vec"
)

// postRaw posts an arbitrary body and returns the recorder plus the
// decoded JSON error envelope (nil when the response is binary).
func postRaw(t *testing.T, s *Server, path string, body []byte) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", path, bytes.NewReader(body)))
	var decoded map[string]any
	if strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
			t.Fatalf("POST %s: bad JSON error body %q", path, rec.Body.String())
		}
	}
	return rec, decoded
}

// TestBinaryAssignMatchesJSON pins the two wire framings to each other:
// the same point posted as GMPB and as JSON must yield the same cluster
// and bit-identical distance.
func TestBinaryAssignMatchesJSON(t *testing.T) {
	m := randomModel(t, 32, 16, 21)
	s := newServer(t, m, Options{})
	for i, q := range randomQueries(64, 16, 23) {
		jb, _ := json.Marshal(assignRequest{Point: q})
		rec, jr := doJSON(t, s, "POST", "/v1/assign", string(jb))
		if rec.Code != http.StatusOK {
			t.Fatalf("JSON assign %d: %d %s", i, rec.Code, rec.Body)
		}
		brec, _ := postRaw(t, s, "/v1/assign", encodeGMPB([]vec.Vector{q}, 16))
		if brec.Code != http.StatusOK {
			t.Fatalf("binary assign %d: %d %s", i, brec.Code, brec.Body)
		}
		if ct := brec.Header().Get("Content-Type"); ct != assignContentType {
			t.Fatalf("binary assign content type %q", ct)
		}
		k, asgs, err := decodeGMAB(brec.Body.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if k != m.K || len(asgs) != 1 {
			t.Fatalf("binary assign %d: k=%d frames=%d", i, k, len(asgs))
		}
		if float64(asgs[0].Cluster) != jr["cluster"].(float64) ||
			asgs[0].Distance != jr["distance"].(float64) {
			t.Fatalf("binary assign %d = %+v, JSON said cluster=%v distance=%v",
				i, asgs[0], jr["cluster"], jr["distance"])
		}
	}
}

// TestBinaryAssignRejectsMalformed walks the GMPB failure modes on both
// endpoints and asserts status + typed code. Binary requests answer
// errors in the JSON envelope — errors are not a hot path.
func TestBinaryAssignRejectsMalformed(t *testing.T) {
	s := newServer(t, gridModel(t, 16, 0), Options{}) // dim 2
	one := encodeGMPB([]vec.Vector{{1, 2}}, 2)
	two := encodeGMPB([]vec.Vector{{1, 2}, {3, 4}}, 2)
	cases := []struct {
		name       string
		path       string
		body       []byte
		wantStatus int
		wantCode   string
	}{
		{"truncated header", "/v1/assign", one[:7], 400, CodeBadBody},
		{"header only", "/v1/assign/batch", one[:12], 400, CodeEmptyBatch},
		{"truncated frame", "/v1/assign/batch", two[:len(two)-5], 400, CodeBadBody},
		{"bad version", "/v1/assign", append([]byte("GMPB\xff\xff"), one[6:]...), 400, CodeBadBody},
		{"dim mismatch", "/v1/assign", encodeGMPB([]vec.Vector{{1, 2, 3}}, 3), 400, CodeDimMismatch},
		{"multi-frame singleton", "/v1/assign", two, 400, CodeTooLarge},
		{"nan point", "/v1/assign", encodeGMPB([]vec.Vector{{math.NaN(), 2}}, 2), 400, CodeNumericRange},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, resp := postRaw(t, s, tc.path, tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", rec.Code, tc.wantStatus, rec.Body)
			}
			if resp == nil || resp["code"] != tc.wantCode {
				t.Fatalf("code %v, want %q (body %s)", resp["code"], tc.wantCode, rec.Body)
			}
		})
	}

	// Oversized binary batch: 413 with the typed code, mirroring JSON.
	s2 := newServer(t, gridModel(t, 4, 0), Options{MaxBatch: 3})
	big := encodeGMPB(randomQueries(4, 2, 1), 2)
	rec, resp := postRaw(t, s2, "/v1/assign/batch", big)
	if rec.Code != http.StatusRequestEntityTooLarge || resp["code"] != CodeTooLarge {
		t.Fatalf("oversized binary batch: %d %s", rec.Code, rec.Body)
	}
}

// TestAssignHeaderRoundTrip covers the GMAB client-side codec against
// hand-corrupted headers.
func TestAssignHeaderRoundTrip(t *testing.T) {
	h := AppendAssignHeader(nil, 42)
	if len(h) != AssignHeaderLen {
		t.Fatalf("header length %d", len(h))
	}
	k, err := ParseAssignHeader(h)
	if err != nil || k != 42 {
		t.Fatalf("ParseAssignHeader = %d, %v", k, err)
	}
	if _, err := ParseAssignHeader(h[:5]); err == nil {
		t.Error("short header accepted")
	}
	bad := append([]byte("XXXX"), h[4:]...)
	if _, err := ParseAssignHeader(bad); err == nil {
		t.Error("bad magic accepted")
	}
	badVer := append([]byte(nil), h...)
	badVer[4], badVer[5] = 0xff, 0xff
	if _, err := ParseAssignHeader(badVer); err == nil {
		t.Error("future version accepted")
	}

	frame := AppendAssignFrame(nil, Assignment{Cluster: 7, Distance: math.Pi})
	if len(frame) != AssignFrameLen {
		t.Fatalf("frame length %d", len(frame))
	}
	if got := DecodeAssignFrame(frame); got != (Assignment{Cluster: 7, Distance: math.Pi}) {
		t.Fatalf("frame round-trip = %+v", got)
	}
}
