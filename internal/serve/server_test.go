package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"gmeansmr/internal/model"
	"gmeansmr/internal/vec"
)

// gridModel builds k centers spaced along the x axis at the given y, so
// two models with different y values give every probe a distinct answer.
func gridModel(t testing.TB, k int, y float64) *model.Model {
	t.Helper()
	centers := make([]vec.Vector, k)
	for i := range centers {
		centers[i] = vec.Vector{float64(i) * 10, y}
	}
	m, err := model.New(centers, model.Meta{Algorithm: "test"})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randomModel(t testing.TB, k, dim int, seed int64) *model.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	centers := make([]vec.Vector, k)
	for i := range centers {
		c := make(vec.Vector, dim)
		for j := range c {
			c[j] = rng.Float64() * 100
		}
		centers[i] = c
	}
	m, err := model.New(centers, model.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newServer(t testing.TB, m *model.Model, opts Options) *Server {
	t.Helper()
	s, err := New(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAssignMatchesBruteForce is the acceptance check: whatever path the
// crossover heuristic selects — kd-tree descent at low dim, linear scan
// elsewhere — must agree exactly with the reference scan, cluster id and
// distance both. The (k, dim) grid spans every selection region.
func TestAssignMatchesBruteForce(t *testing.T) {
	for _, dim := range []int{2, 3, 6, 32} {
		for _, k := range []int{1, 3, 8, 16, 17, 50, 200} {
			m := randomModel(t, k, dim, int64(k*100+dim))
			s := newServer(t, m, Options{})
			rng := rand.New(rand.NewSource(99))
			for q := 0; q < 200; q++ {
				p := make(vec.Vector, dim)
				for j := range p {
					p[j] = rng.Float64()*140 - 20
				}
				got, err := s.Assign(p)
				if err != nil {
					t.Fatal(err)
				}
				wantIdx, wantD2 := vec.NearestIndex(p, m.Centers)
				if got.Cluster != wantIdx || got.Distance != math.Sqrt(wantD2) {
					t.Fatalf("k=%d dim=%d: Assign=%+v, brute force wants cluster %d distance %g",
						k, dim, got, wantIdx, math.Sqrt(wantD2))
				}
			}
		}
	}
}

// TestCrossoverTreeSelection pins the measured crossover heuristic's
// structural half: descent structures are built exactly when (k, dim)
// sit inside the measured descent window.
func TestCrossoverTreeSelection(t *testing.T) {
	s := newServer(t, randomModel(t, DefaultBruteForceMaxK, 3, 1), Options{})
	if s.active.Load().tree != nil {
		t.Error("k <= brute-force threshold built a kd-tree")
	}
	s = newServer(t, randomModel(t, DefaultBruteForceMaxK+1, 3, 1), Options{})
	if s.active.Load().tree == nil {
		t.Error("k above brute-force threshold (low dim) did not build a kd-tree")
	}
	// Above KDTreeMaxDim descent never wins (measured: pruning collapses),
	// so no tree is built no matter how large k grows.
	s = newServer(t, randomModel(t, 200, KDTreeMaxDim+1, 1), Options{})
	if s.active.Load().tree != nil {
		t.Error("high-dim model built a kd-tree; descent never wins above KDTreeMaxDim")
	}
}

// TestAssignNumericRange: NaN coordinates and magnitudes whose squared
// distance overflows to +Inf for every center must come back as errors
// (HTTP 400), never as cluster -1 or a handler panic.
func TestAssignNumericRange(t *testing.T) {
	s := newServer(t, gridModel(t, 16, 0), Options{})
	for _, p := range []vec.Vector{
		{1e308, 1e308},
		{math.NaN(), 0},
	} {
		if _, err := s.Assign(p); err == nil {
			t.Errorf("Assign(%v) returned no error", p)
		}
		if _, err := s.AssignBatch([]vec.Vector{{1, 0}, p}); err == nil {
			t.Errorf("AssignBatch with %v returned no error", p)
		}
	}
	rec, resp := doJSON(t, s, "POST", "/v1/assign", `{"point":[1e308,1e308]}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("overflow point: status %d body %s", rec.Code, rec.Body.String())
	}
	if resp["error"] == "" {
		t.Fatal("overflow point: no error message")
	}
	rec, _ = doJSON(t, s, "POST", "/v1/assign/batch", `{"points":[[1,0],[1e308,1e308]]}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("overflow point in batch: status %d body %s", rec.Code, rec.Body.String())
	}
}

func TestAssignDimensionMismatch(t *testing.T) {
	s := newServer(t, gridModel(t, 4, 0), Options{})
	if _, err := s.Assign(vec.Vector{1, 2, 3}); err == nil {
		t.Error("3-dim point accepted by 2-dim model")
	}
	if _, err := s.AssignBatch([]vec.Vector{{1, 2}, {1}}); err == nil {
		t.Error("ragged batch accepted")
	}
}

// --- HTTP layer -------------------------------------------------------------

func doJSON(t *testing.T, s *Server, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var decoded map[string]any
	if rec.Body.Len() > 0 {
		// ServeMux's own 404/405 responses are plain text; handler
		// responses must be JSON.
		if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil &&
			rec.Code != http.StatusNotFound && rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: non-JSON response %q", method, path, rec.Body.String())
		}
	}
	return rec, decoded
}

func TestHTTPHandlers(t *testing.T) {
	m := gridModel(t, 16, 0)
	tests := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		check      func(t *testing.T, resp map[string]any)
	}{
		{
			name: "assign ok", method: "POST", path: "/v1/assign",
			body: `{"point":[21,1]}`, wantStatus: 200,
			check: func(t *testing.T, resp map[string]any) {
				if resp["cluster"].(float64) != 2 {
					t.Errorf("cluster = %v, want 2", resp["cluster"])
				}
				if d := resp["distance"].(float64); math.Abs(d-math.Sqrt(2)) > 1e-12 {
					t.Errorf("distance = %v, want sqrt(2)", d)
				}
				center := resp["center"].([]any)
				if center[0].(float64) != 20 || center[1].(float64) != 0 {
					t.Errorf("center = %v, want [20 0]", center)
				}
			},
		},
		{name: "assign wrong method", method: "GET", path: "/v1/assign",
			body: "", wantStatus: 405},
		{name: "assign bad json", method: "POST", path: "/v1/assign",
			body: `{"point":`, wantStatus: 400},
		{name: "assign unknown field", method: "POST", path: "/v1/assign",
			body: `{"pt":[1,2]}`, wantStatus: 400},
		{name: "assign missing point", method: "POST", path: "/v1/assign",
			body: `{}`, wantStatus: 400},
		{name: "assign wrong dim", method: "POST", path: "/v1/assign",
			body: `{"point":[1,2,3]}`, wantStatus: 400},
		{
			name: "batch ok", method: "POST", path: "/v1/assign/batch",
			body: `{"points":[[1,0],[148,-1]]}`, wantStatus: 200,
			check: func(t *testing.T, resp map[string]any) {
				asgs := resp["assignments"].([]any)
				if len(asgs) != 2 {
					t.Fatalf("assignments = %v", asgs)
				}
				first := asgs[0].(map[string]any)
				last := asgs[1].(map[string]any)
				if first["cluster"].(float64) != 0 || last["cluster"].(float64) != 15 {
					t.Errorf("clusters = %v, %v; want 0, 15", first["cluster"], last["cluster"])
				}
				if resp["k"].(float64) != 16 {
					t.Errorf("k = %v", resp["k"])
				}
			},
		},
		{name: "batch empty", method: "POST", path: "/v1/assign/batch",
			body: `{"points":[]}`, wantStatus: 400},
		{name: "batch ragged", method: "POST", path: "/v1/assign/batch",
			body: `{"points":[[1,2],[3]]}`, wantStatus: 400},
		{
			name: "model metadata", method: "GET", path: "/v1/model",
			body: "", wantStatus: 200,
			check: func(t *testing.T, resp map[string]any) {
				if resp["k"].(float64) != 16 || resp["dim"].(float64) != 2 {
					t.Errorf("metadata = %v", resp)
				}
				if resp["meta"].(map[string]any)["algorithm"] != "test" {
					t.Errorf("meta = %v", resp["meta"])
				}
				if resp["generation"].(float64) != 1 {
					t.Errorf("generation = %v, want 1", resp["generation"])
				}
			},
		},
		{name: "reload without loader", method: "POST", path: "/v1/model/reload",
			body: "", wantStatus: 409},
		{
			name: "healthz", method: "GET", path: "/healthz",
			body: "", wantStatus: 200,
			check: func(t *testing.T, resp map[string]any) {
				if resp["status"] != "ok" {
					t.Errorf("health = %v", resp)
				}
			},
		},
		{name: "unknown route", method: "GET", path: "/v1/nope",
			body: "", wantStatus: 404},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := newServer(t, m, Options{})
			rec, resp := doJSON(t, s, tc.method, tc.path, tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", rec.Code, tc.wantStatus, rec.Body.String())
			}
			if tc.wantStatus >= 400 && tc.wantStatus != 405 && resp["error"] == "" {
				t.Error("error response without error message")
			}
			if tc.check != nil {
				tc.check(t, resp)
			}
		})
	}
}

func TestHTTPBatchLimit(t *testing.T) {
	s := newServer(t, gridModel(t, 4, 0), Options{MaxBatch: 2})
	rec, _ := doJSON(t, s, "POST", "/v1/assign/batch", `{"points":[[1,0],[2,0],[3,0]]}`)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
}

func TestHTTPReload(t *testing.T) {
	next := gridModel(t, 9, 0)
	var fail atomic.Bool
	s := newServer(t, gridModel(t, 4, 0), Options{
		Loader: func() (*model.Model, error) {
			if fail.Load() {
				return nil, fmt.Errorf("snapshot store down")
			}
			return next, nil
		},
	})

	rec, resp := doJSON(t, s, "POST", "/v1/model/reload", "")
	if rec.Code != 200 {
		t.Fatalf("reload status %d: %s", rec.Code, rec.Body.String())
	}
	if resp["k"].(float64) != 9 || resp["generation"].(float64) != 2 {
		t.Fatalf("reload response %v", resp)
	}
	if s.Model().K != 9 || s.Generation() != 2 {
		t.Fatalf("model not swapped: k=%d gen=%d", s.Model().K, s.Generation())
	}

	fail.Store(true)
	rec, _ = doJSON(t, s, "POST", "/v1/model/reload", "")
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("failing loader status %d, want 502", rec.Code)
	}
	// A failed reload must leave the previous model serving.
	if s.Model().K != 9 || s.Generation() != 2 {
		t.Fatal("failed reload disturbed the active model")
	}
}

func TestSwapRejectsInvalidModel(t *testing.T) {
	s := newServer(t, gridModel(t, 4, 0), Options{})
	if err := s.Swap(&model.Model{K: 1, Dim: 1}); err == nil {
		t.Fatal("invalid model swapped in")
	}
	if s.Model().K != 4 {
		t.Fatal("rejected swap disturbed the active model")
	}
}

// TestHotSwapConsistency hammers the query path while another goroutine
// flips between two models. Every single answer — and every answer within
// one batch — must be exactly consistent with one of the two models; a torn
// read (tree from one model, centers or distance from the other) would
// break that.
func TestHotSwapConsistency(t *testing.T) {
	const k = 16
	mA := gridModel(t, k, 0)   // centers (10i, 0)
	mB := gridModel(t, k, 100) // centers (10i, 100)
	s := newServer(t, mA, Options{})

	// Probes sit 1 away from an A-center and sqrt(1+99²) away from the
	// corresponding B-center; the cluster index is the same under both
	// models, so the distance identifies which model answered.
	probes := make([]vec.Vector, 64)
	wantA := make([]Assignment, len(probes))
	wantB := make([]Assignment, len(probes))
	for i := range probes {
		probes[i] = vec.Vector{float64(i%k)*10 + 1, 1}
		ia, da := vec.NearestIndex(probes[i], mA.Centers)
		ib, db := vec.NearestIndex(probes[i], mB.Centers)
		wantA[i] = Assignment{Cluster: ia, Distance: math.Sqrt(da)}
		wantB[i] = Assignment{Cluster: ib, Distance: math.Sqrt(db)}
	}

	stop := make(chan struct{})
	var swaps atomic.Int64
	var swapper, workers sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		models := [2]*model.Model{mB, mA}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Swap(models[i%2]); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
			swaps.Add(1)
		}
	}()

	for g := 0; g < 8; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			for iter := 0; iter < 400; iter++ {
				i := (g*31 + iter) % len(probes)
				got, err := s.Assign(probes[i])
				if err != nil {
					t.Errorf("assign: %v", err)
					return
				}
				if got != wantA[i] && got != wantB[i] {
					t.Errorf("probe %d: %+v matches neither model (A %+v, B %+v)",
						i, got, wantA[i], wantB[i])
					return
				}
				// Batches must be answered by ONE model snapshot end to end.
				batch, err := s.AssignBatch(probes)
				if err != nil {
					t.Errorf("batch: %v", err)
					return
				}
				fromA := batch[0] == wantA[0]
				for j := range batch {
					want := wantB[j]
					if fromA {
						want = wantA[j]
					}
					if batch[j] != want {
						t.Errorf("batch answered by mixed models at %d: %+v", j, batch[j])
						return
					}
				}
			}
		}(g)
	}

	// The swapper keeps flipping models for the workers' whole lifetime.
	workers.Wait()
	close(stop)
	swapper.Wait()
	if swaps.Load() == 0 {
		t.Error("no swaps landed while workers were querying")
	}
}

// TestHTTPAssignDuringSwap drives the full HTTP path under concurrent
// swaps: cluster, center and distance in one response must all come from
// the same model.
func TestHTTPAssignDuringSwap(t *testing.T) {
	const k = 16
	mA, mB := gridModel(t, k, 0), gridModel(t, k, 100)
	s := newServer(t, mA, Options{})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		models := [2]*model.Model{mB, mA}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Swap(models[i%2]); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
		}
	}()

	body := []byte(`{"point":[21,1]}`)
	for iter := 0; iter < 300; iter++ {
		req := httptest.NewRequest("POST", "/v1/assign", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		var resp assignResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Cluster != 2 {
			t.Fatalf("cluster = %d", resp.Cluster)
		}
		y := resp.Center[1]
		wantDist := math.Sqrt(1*1 + (1-y)*(1-y))
		if resp.Distance != wantDist {
			t.Fatalf("torn response: center y=%v but distance %v (want %v)", y, resp.Distance, wantDist)
		}
	}
	close(stop)
	wg.Wait()
}
