// Package serve is the query-time half of the system: an HTTP server that
// answers "which cluster does this point belong to?" against a trained
// model. Training is a batch MapReduce pipeline; this layer is built for
// the opposite regime — many small concurrent requests against a small
// read-only center set.
//
// # The columnar assign path
//
// Every batch of queries — a client batch on /v1/assign/batch, or
// concurrent singleton /v1/assign requests coalesced server-side (see
// coalesce.go) — executes through the same fused columnar kernel the
// training inner loop uses (vec.NearestBatch: dim-major, AVX-512/AVX2
// point tiles on amd64). The active model publishes a kernel-ready
// packed center set
// (vec.CenterPack via model.Pack) with per-request scratch pooling, so
// the steady-state query path performs no allocation and no transpose
// setup beyond the points themselves.
//
// # Crossover heuristic
//
// Three interchangeable paths can answer a query, all bit-identical
// (same distance bits, same lowest-index tie rule — pinned by test):
// the fused columnar kernel, per-point kd-tree descent, and a per-point
// linear scan. Which one wins was measured on this repository's kernels
// (BenchmarkAssignCrossover, 2.1 GHz Xeon, AVX-512; re-run it when
// kernels change and update the constants below):
//
//   - Batches: the columnar kernel wins everywhere except one corner —
//     dim ≥ BatchBruteMinDim with k ≤ BatchBruteMaxK, where the curse of
//     dimensionality defeats kd-tree pruning AND the center set is too
//     small for the kernel's tile setup to amortize, so a plain per-point
//     scan wins. (Under the earlier 4-wide AVX2 kernel, per-point kd-tree
//     descent also won batches at dim ≤ 2 with k > 128; the 8-wide
//     AVX-512 tile erased that region — measured d=2, k=256: ~134
//     ns/point columnar vs ~225 descending.)
//   - Singletons (the direct, un-coalesced path; a batch of one gains
//     nothing from SIMD): a linear scan wins up to DefaultBruteForceMaxK
//     centers at any dimensionality, and beyond that kd-tree descent
//     wins only below KDTreeMaxDim dimensions — above it, descent visits
//     most leaves anyway and loses to the scan's locality.
//
// # Hot swap
//
// The active model lives behind an atomic.Pointer. Every request loads
// the pointer once and works against that immutable snapshot (model +
// packed centers + index built together), so a concurrent hot swap (POST
// /v1/model/reload) is invisible to in-flight requests: they finish on
// the old model, new requests see the new one, and no lock is ever taken
// on the query path.
//
// Endpoints:
//
//	POST /v1/assign        {"point":[...]}            → cluster id, center, distance
//	POST /v1/assign/batch  {"points":[[...],...]}     → per-point cluster id + distance
//	GET  /v1/model                                    → model metadata
//	POST /v1/model/reload                             → hot-swap from the configured loader
//	GET  /healthz                                     → liveness + model summary + uptime + build info
//	GET  /metrics                                     → Prometheus text format
//
// Both assign endpoints also speak a binary wire format (GMPB request
// frames, GMAB response frames — see binary.go and docs/formats.md)
// selected by the request body's magic bytes, so load generators and
// high-volume clients skip JSON entirely. Error responses are typed:
// every 4xx/5xx body carries a stable machine-readable "code" alongside
// the human-readable "error".
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"gmeansmr/internal/kdtree"
	"gmeansmr/internal/model"
	"gmeansmr/internal/obs"
	"gmeansmr/internal/vec"
)

// Crossover constants, measured by BenchmarkAssignCrossover (see the
// package doc). Each marks the boundary at which the named fallback path
// overtakes its alternative on the measurement machine; selections stay
// within ~10% of the per-cell optimum across the measured (k, dim) grid.
const (
	// DefaultBruteForceMaxK is the center count at or below which a
	// singleton query uses a linear scan instead of kd-tree descent.
	// Measured: descent overhead beats the scan's locality up to k≈16
	// at every dimensionality tried (the pre-measurement value, 8, was
	// too low).
	DefaultBruteForceMaxK = 16

	// KDTreeMaxDim is the dimensionality above which kd-tree descent is
	// never selected: measured, pruning collapses above ~4 dimensions
	// and descent loses to a linear scan at every k.
	KDTreeMaxDim = 4

	// BatchBruteMinDim / BatchBruteMaxK bound the one corner where a
	// per-point linear scan beats the columnar kernel on batches: high
	// dimensionality with a tiny center set (measured: d=16, k=4 scans
	// in ~49 ns/point vs ~66 through the kernel; d=32, k=4 in ~75 vs
	// ~215 — the transpose cannot amortize over 4 centers). By d=16,
	// k=8 the kernel is back in front.
	BatchBruteMinDim = 16
	BatchBruteMaxK   = 4
)

// DefaultMaxBatch caps the number of points in one batch request.
const DefaultMaxBatch = 10_000

// defaultMaxBodyBytes caps a request body; a batch of DefaultMaxBatch
// points in R^100 in JSON fits comfortably.
const defaultMaxBodyBytes = 64 << 20

// Stable machine-readable error codes carried in every error response's
// "code" field, so clients and load generators can branch without
// parsing English.
const (
	CodeBadBody      = "bad_body"      // malformed JSON or binary framing
	CodeEmptyBatch   = "empty_batch"   // batch with zero points
	CodeEmptyPoint   = "empty_point"   // zero-dimensional point
	CodeDimMismatch  = "dim_mismatch"  // point dimensionality != model's
	CodeNumericRange = "numeric_range" // NaN coordinate or distance overflow
	CodeTooLarge     = "too_large"     // batch or body over the limit
	CodeNoLoader     = "no_loader"     // reload without a snapshot source
	CodeReloadFailed = "reload_failed" // loader error during reload
)

// Options configure a Server. The zero value is serviceable.
type Options struct {
	// Loader, when non-nil, is the snapshot source POST /v1/model/reload
	// pulls the replacement model from (typically: re-read the snapshot
	// file a trainer overwrites). Without it reload requests fail.
	Loader func() (*model.Model, error)
	// BruteForceMaxK overrides DefaultBruteForceMaxK (<=0 = default).
	BruteForceMaxK int
	// MaxBatch overrides DefaultMaxBatch (<=0 = default).
	MaxBatch int
	// CoalesceWindow enables server-side micro-batching of concurrent
	// singleton /v1/assign requests: a request that arrives while others
	// are in flight waits up to this long for companions, then one fused
	// kernel call answers the whole group. 0 disables coalescing; see
	// coalesce.go for the latency/throughput trade.
	CoalesceWindow time.Duration
	// CoalesceMaxBatch caps one coalesced group (<=0 = default 256, the
	// kernel's SIMD tile width); a full group flushes without waiting
	// out the window.
	CoalesceMaxBatch int
}

// Assignment is one point's answer: the nearest center's index and the
// Euclidean distance to it.
type Assignment struct {
	Cluster  int     `json:"cluster"`
	Distance float64 `json:"distance"`
}

// assigner pairs an immutable model with the query structures derived
// from it: the kernel-ready packed centers and, when the crossover
// heuristic wants it, a kd-tree index. The triple swaps atomically as a
// unit, so a request can never see an index built over a different model
// than the one it reads centers from.
type assigner struct {
	m    *model.Model
	pack *vec.CenterPack
	tree *kdtree.Tree // non-nil iff singleton descent is selected for this model
	gen  int64        // swap generation, 1-based
}

// errNumericRange covers NaN coordinates and magnitudes whose squared
// distance overflows to +Inf against every center: nearest-center search
// returns index -1 for those, which must never leak to callers as a
// "cluster".
var errNumericRange = errors.New("serve: point is outside the model's numeric range")

// assign answers one singleton query on the direct (un-coalesced) path:
// kd-tree descent when the model's (k, dim) sit in the measured descent
// window, a linear scan otherwise. A batch of one gains nothing from the
// columnar kernel, so it is never used here.
func (a *assigner) assign(p vec.Vector) (Assignment, error) {
	var idx int
	var d2 float64
	if a.tree != nil {
		idx, d2 = a.tree.Nearest(p)
	} else {
		idx, d2 = a.pack.Nearest(p)
	}
	if idx < 0 {
		return Assignment{}, errNumericRange
	}
	return Assignment{Cluster: idx, Distance: math.Sqrt(d2)}, nil
}

// assignInto assigns every point of a dim-validated batch through the
// crossover-selected batch path, writing out[j] for each. Points with no
// finite nearest center get Cluster -1 (Distance +Inf); it returns the
// index of the first such point, or -1 when all points assigned. All
// three paths are bit-identical (pinned by TestServePathEquivalence), so
// the selection is invisible in the results.
func (a *assigner) assignInto(points []vec.Vector, out []Assignment) int {
	k, dim := a.m.K, a.m.Dim
	firstBad := -1
	switch {
	case dim >= BatchBruteMinDim && k <= BatchBruteMaxK:
		for j, p := range points {
			i, d2 := a.pack.Nearest(p)
			if i < 0 && firstBad < 0 {
				firstBad = j
			}
			out[j] = Assignment{Cluster: i, Distance: math.Sqrt(d2)}
		}
	default:
		s := a.pack.GetScratch()
		idx, dist := a.pack.NearestRows(points, s)
		for j := range points {
			if idx[j] < 0 && firstBad < 0 {
				firstBad = j
			}
			out[j] = Assignment{Cluster: int(idx[j]), Distance: math.Sqrt(dist[j])}
		}
		a.pack.PutScratch(s)
	}
	return firstBad
}

// assignBatch validates and assigns a whole batch against this one
// snapshot — the single implementation behind both Server.AssignBatch and
// the HTTP batch handler. Client batches keep all-or-nothing semantics: a
// single invalid point fails the batch with its index named.
func (a *assigner) assignBatch(points []vec.Vector) ([]Assignment, error) {
	for i, p := range points {
		if len(p) != a.m.Dim {
			return nil, fmt.Errorf("serve: point %d has %d dimensions, model wants %d", i, len(p), a.m.Dim)
		}
	}
	out := make([]Assignment, len(points))
	if bad := a.assignInto(points, out); bad >= 0 {
		return nil, fmt.Errorf("point %d: %w", bad, errNumericRange)
	}
	return out, nil
}

// Server answers assignment queries over the active model. It is safe for
// concurrent use and implements http.Handler. Create with New.
type Server struct {
	active atomic.Pointer[assigner]
	// swapMu serializes swaps so generations stored in active are
	// monotonic; reloadMu serializes whole load+swap reload sequences so
	// a slow loader cannot reinstall a stale model over a newer one. The
	// query path takes neither.
	swapMu   sync.Mutex
	reloadMu sync.Mutex
	gen      int64
	loader   func() (*model.Model, error)
	bruteK   int
	maxBatch int
	coal     *coalescer // nil when coalescing is disabled
	mux      *http.ServeMux

	// Observability: the registry backs GET /metrics; the handles below
	// are looked up once here so the query path ticks them lock-free.
	reg         *obs.Registry
	started     time.Time
	assignHist  *obs.Histogram
	batchHist   *obs.Histogram
	inflight    *obs.Gauge
	requests    *obs.Counter
	swaps       *obs.Counter
	coalesced   *obs.Counter // singleton requests answered via a coalesced kernel call
	coalBatches *obs.Counter // coalesced kernel calls issued
	binReqs     *obs.Counter // binary-framed assign requests
}

// New builds a Server over m. The model is retained and must not be
// mutated afterwards; the serving layer treats it as immutable.
func New(m *model.Model, opts Options) (*Server, error) {
	s := &Server{
		loader:   opts.Loader,
		bruteK:   opts.BruteForceMaxK,
		maxBatch: opts.MaxBatch,
		reg:      obs.NewRegistry(),
		started:  time.Now(),
	}
	s.assignHist = s.reg.Histogram("serve_assign_seconds", nil)
	s.batchHist = s.reg.Histogram("serve_assign_batch_seconds", nil)
	s.inflight = s.reg.Gauge("serve_inflight_requests")
	s.requests = s.reg.Counter("serve_requests_total")
	s.swaps = s.reg.Counter("serve_model_swaps_total")
	s.coalesced = s.reg.Counter("serve_coalesced_requests_total")
	s.coalBatches = s.reg.Counter("serve_coalesced_batches_total")
	s.binReqs = s.reg.Counter("serve_binary_requests_total")
	if s.bruteK <= 0 {
		s.bruteK = DefaultBruteForceMaxK
	}
	if s.maxBatch <= 0 {
		s.maxBatch = DefaultMaxBatch
	}
	if opts.CoalesceWindow > 0 {
		s.coal = newCoalescer(s, opts.CoalesceWindow, opts.CoalesceMaxBatch)
	}
	if err := s.Swap(m); err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/assign", s.handleAssign)
	mux.HandleFunc("POST /v1/assign/batch", s.handleAssignBatch)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("POST /v1/model/reload", s.handleReload)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// Swap atomically replaces the active model. In-flight requests finish on
// the model they started with; requests that begin after Swap returns see
// the new one. The model must not be mutated after being handed over.
// The kernel-ready center pack — and the kd-tree, when the crossover
// heuristic selects descent for this model's shape — are derived here,
// once per swap, and published atomically with the model.
func (s *Server) Swap(m *model.Model) error {
	if err := m.Validate(); err != nil {
		return err
	}
	a := &assigner{m: m, pack: m.Pack()}
	if m.K > s.bruteK && m.Dim <= KDTreeMaxDim {
		a.tree = kdtree.Build(a.pack.Centers())
	}
	s.swapMu.Lock()
	s.gen++
	a.gen = s.gen
	s.active.Store(a)
	s.swapMu.Unlock()
	s.swaps.Inc()
	return nil
}

// Reload pulls a fresh model from the configured loader and swaps it in.
// Reloads are serialized end to end (load + swap), so two concurrent
// reloads racing a snapshot overwrite cannot install the older model last.
func (s *Server) Reload() error {
	if s.loader == nil {
		return errors.New("serve: no loader configured")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	m, err := s.loader()
	if err != nil {
		return fmt.Errorf("serve: reload: %w", err)
	}
	return s.Swap(m)
}

// Model returns the active model. Treat it as read-only.
func (s *Server) Model() *model.Model { return s.active.Load().m }

// Generation returns the active model's swap generation (1 for the model
// the server started with, incremented on every successful swap).
func (s *Server) Generation() int64 { return s.active.Load().gen }

// Assign answers a single query against the active model: the nearest
// center's index and the Euclidean distance to it. Like the HTTP
// singleton endpoint, it rides the coalescer when Options.CoalesceWindow
// enabled one (see coalesce.go), so concurrent callers share kernel
// batches; on an idle server it always takes the direct path.
func (s *Server) Assign(p vec.Vector) (Assignment, error) {
	a := s.active.Load()
	if len(p) != a.m.Dim {
		return Assignment{}, fmt.Errorf("serve: point has %d dimensions, model wants %d", len(p), a.m.Dim)
	}
	asg, _, err := s.assignSingle(a, p)
	return asg, err
}

// AssignBatch answers a batch of queries against one consistent model
// snapshot: every point in the batch is assigned by the same model even if
// a swap lands mid-batch, through the crossover-selected batch path
// (columnar kernel in all but the measured fallback corners).
func (s *Server) AssignBatch(points []vec.Vector) ([]Assignment, error) {
	return s.active.Load().assignBatch(points)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	s.mux.ServeHTTP(w, r)
}

// Metrics returns the server's metrics registry, so embedders (cmd/serve's
// -debug-addr) can expose the same metrics on a separate listener or add
// their own.
func (s *Server) Metrics() *obs.Registry { return s.reg }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// --- handlers ---------------------------------------------------------------

type assignRequest struct {
	Point vec.Vector `json:"point"`
}

type assignResponse struct {
	Cluster  int        `json:"cluster"`
	Center   vec.Vector `json:"center"`
	Distance float64    `json:"distance"`
}

// validatePoint maps a query point's shape problems to a typed error
// code ("" = valid). NaN/overflow is detected by the kernel, not here:
// scanning coordinates up front would put an extra O(dim) pass on the
// hot path to catch a case the kernel already reports as index -1.
func validatePoint(p vec.Vector, dim int) (code, msg string) {
	switch {
	case len(p) == 0:
		return CodeEmptyPoint, "missing or empty point"
	case len(p) != dim:
		return CodeDimMismatch, fmt.Sprintf("point has %d dimensions, model wants %d", len(p), dim)
	}
	return "", ""
}

func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.assignHist.Observe(time.Since(start).Seconds()) }()
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	defer putBody(body)
	if isBinaryRequest(body.Bytes()) {
		s.handleAssignBinary(w, body.Bytes())
		return
	}
	req := singleReqPool.Get().(*assignRequest)
	defer singleReqPool.Put(req)
	req.Point = req.Point[:0]
	if !decodeJSON(w, body.Bytes(), req) {
		return
	}
	// Load the assigner once so cluster id and center come from the same
	// model even under a concurrent swap.
	a := s.active.Load()
	if code, msg := validatePoint(req.Point, a.m.Dim); code != "" {
		httpError(w, http.StatusBadRequest, code, msg)
		return
	}
	asg, a, err := s.assignSingle(a, req.Point)
	if err != nil {
		code := CodeNumericRange
		if err == errSwapDimMismatch {
			code = CodeDimMismatch
		}
		httpError(w, http.StatusBadRequest, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, assignResponse{
		Cluster:  asg.Cluster,
		Center:   a.m.Centers[asg.Cluster],
		Distance: asg.Distance,
	})
}

// assignSingle routes one validated singleton query: through the
// coalescer when it is enabled and other singletons are in flight,
// directly otherwise. It returns the assigner that answered, which under
// coalescing may be a newer snapshot than the caller loaded — the
// response's center must come from the same snapshot as the cluster id.
// The coalescer re-validates against its own snapshot, so a hot swap
// between the caller's load and the kernel call can reject but never
// misroute (see coalesce.go).
func (s *Server) assignSingle(a *assigner, p vec.Vector) (Assignment, *assigner, error) {
	if s.coal != nil {
		return s.coal.assign(p)
	}
	asg, err := a.assign(p)
	return asg, a, err
}

type batchRequest struct {
	Points []vec.Vector `json:"points"`
}

type batchResponse struct {
	Assignments []Assignment `json:"assignments"`
	K           int          `json:"k"`
}

// validateBatch maps a batch's shape problems to a typed error code
// ("" = valid), covering the empty, oversized, zero-dim and ragged cases.
func validateBatch(points []vec.Vector, dim, maxBatch int) (code, msg string) {
	if len(points) == 0 {
		return CodeEmptyBatch, "missing points"
	}
	if len(points) > maxBatch {
		return CodeTooLarge, fmt.Sprintf("batch of %d points exceeds limit %d", len(points), maxBatch)
	}
	for i, p := range points {
		switch {
		case len(p) == 0:
			return CodeEmptyPoint, fmt.Sprintf("point %d is empty", i)
		case len(p) != dim:
			return CodeDimMismatch, fmt.Sprintf("point %d has %d dimensions, model wants %d", i, len(p), dim)
		}
	}
	return "", ""
}

func (s *Server) handleAssignBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.batchHist.Observe(time.Since(start).Seconds()) }()
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	defer putBody(body)
	if isBinaryRequest(body.Bytes()) {
		s.handleAssignBatchBinary(w, body.Bytes())
		return
	}
	req := batchReqPool.Get().(*batchRequest)
	defer batchReqPool.Put(req)
	req.Points = req.Points[:0]
	if !decodeJSON(w, body.Bytes(), req) {
		return
	}
	a := s.active.Load()
	if code, msg := validateBatch(req.Points, a.m.Dim, s.maxBatch); code != "" {
		status := http.StatusBadRequest
		if code == CodeTooLarge {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, code, msg)
		return
	}
	out := make([]Assignment, len(req.Points))
	if bad := a.assignInto(req.Points, out); bad >= 0 {
		httpError(w, http.StatusBadRequest, CodeNumericRange,
			fmt.Sprintf("point %d: %v", bad, errNumericRange))
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Assignments: out, K: a.m.K})
}

type modelResponse struct {
	K          int        `json:"k"`
	Dim        int        `json:"dim"`
	Generation int64      `json:"generation"`
	Counts     []int64    `json:"counts,omitempty"`
	Radii      []float64  `json:"radii,omitempty"`
	Meta       model.Meta `json:"meta"`
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	a := s.active.Load()
	writeJSON(w, http.StatusOK, modelResponse{
		K: a.m.K, Dim: a.m.Dim, Generation: a.gen,
		Counts: a.m.Counts, Radii: a.m.Radii, Meta: a.m.Meta,
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.loader == nil {
		httpError(w, http.StatusConflict, CodeNoLoader, "no snapshot source configured for reload")
		return
	}
	if err := s.Reload(); err != nil {
		httpError(w, http.StatusBadGateway, CodeReloadFailed, err.Error())
		return
	}
	a := s.active.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "reloaded", "k": a.m.K, "generation": a.gen,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	a := s.active.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "k": a.m.K, "dim": a.m.Dim, "generation": a.gen,
		"uptime_seconds": time.Since(s.started).Seconds(),
		"model": map[string]any{
			"algorithm":       a.m.Meta.Algorithm,
			"iterations":      a.m.Meta.Iterations,
			"trained_at_unix": a.m.Meta.TrainedAtUnix,
		},
		"build": obs.BuildInfo(),
	})
}

// --- plumbing ---------------------------------------------------------------

type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// Buffer and request-struct pools: the assign endpoints are dominated by
// encoding/json allocation at high QPS (body read buffer, decoded point
// slices, marshaled response), so all three are pooled. Decoding into a
// pooled request struct reuses its slice capacity (encoding/json fills
// existing backing arrays), so a warmed server decodes a singleton
// request with near-zero garbage; BenchmarkHTTPAssign records the delta.
var (
	bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

	singleReqPool = sync.Pool{New: func() any { return new(assignRequest) }}
	batchReqPool  = sync.Pool{New: func() any { return new(batchRequest) }}
)

// readBody reads the whole (bounded) request body into a pooled buffer.
// The caller must putBody it when done — after the response is written,
// since decoded values may alias the buffer.
func readBody(w http.ResponseWriter, r *http.Request) (*bytes.Buffer, bool) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	r.Body = http.MaxBytesReader(w, r.Body, defaultMaxBodyBytes)
	if _, err := buf.ReadFrom(r.Body); err != nil {
		putBody(buf)
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, CodeTooLarge, "request body too large")
		} else {
			httpError(w, http.StatusBadRequest, CodeBadBody, "reading request body: "+err.Error())
		}
		return nil, false
	}
	return buf, true
}

func putBody(buf *bytes.Buffer) {
	// Oversized one-off bodies are dropped rather than pinned in the pool.
	if buf.Cap() <= 1<<20 {
		bufPool.Put(buf)
	}
}

func decodeJSON(w http.ResponseWriter, body []byte, dst any) bool {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, CodeBadBody, "bad request body: "+err.Error())
		return false
	}
	if dec.More() {
		httpError(w, http.StatusBadRequest, CodeBadBody, "bad request body: trailing data after JSON value")
		return false
	}
	return true
}

// writeJSON encodes into a pooled buffer before touching the response, so
// an encoding failure can still surface as a 500 instead of a 200 with an
// empty body, and the marshal allocation is reused across requests.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	defer putBody(buf)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"internal: response encoding failed","code":"internal"}` + "\n"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}

func httpError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorResponse{Error: msg, Code: code})
}
