// Package serve is the query-time half of the system: an HTTP server that
// answers "which cluster does this point belong to?" against a trained
// model. Training is a batch MapReduce pipeline; this layer is built for
// the opposite regime — many small concurrent requests against a small
// read-only center set.
//
// Two design points carry the load:
//
//   - Nearest-center lookup goes through the same kdtree acceleration the
//     training inner loop uses, with a brute-force linear scan below a
//     small k where tree descent overhead exceeds the scan (the tree wins
//     only once pruning saves more distance computations than the
//     traversal costs).
//   - The active model lives behind an atomic.Pointer. Every request loads
//     the pointer once and works against that immutable snapshot (model +
//     index built together), so a concurrent hot swap (POST
//     /v1/model/reload) is invisible to in-flight requests: they finish on
//     the old model, new requests see the new one, and no lock is ever
//     taken on the query path.
//
// Endpoints:
//
//	POST /v1/assign        {"point":[...]}            → cluster id, center, distance
//	POST /v1/assign/batch  {"points":[[...],...]}     → per-point cluster id + distance
//	GET  /v1/model                                    → model metadata
//	POST /v1/model/reload                             → hot-swap from the configured loader
//	GET  /healthz                                     → liveness + model summary + uptime + build info
//	GET  /metrics                                     → Prometheus text format
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"gmeansmr/internal/kdtree"
	"gmeansmr/internal/model"
	"gmeansmr/internal/obs"
	"gmeansmr/internal/vec"
)

// DefaultBruteForceMaxK is the center count at or below which assignment
// uses a linear scan instead of the kd-tree.
const DefaultBruteForceMaxK = 8

// DefaultMaxBatch caps the number of points in one batch request.
const DefaultMaxBatch = 10_000

// defaultMaxBodyBytes caps a request body; a batch of DefaultMaxBatch
// points in R^100 in JSON fits comfortably.
const defaultMaxBodyBytes = 64 << 20

// Options configure a Server. The zero value is serviceable.
type Options struct {
	// Loader, when non-nil, is the snapshot source POST /v1/model/reload
	// pulls the replacement model from (typically: re-read the snapshot
	// file a trainer overwrites). Without it reload requests fail.
	Loader func() (*model.Model, error)
	// BruteForceMaxK overrides DefaultBruteForceMaxK (<=0 = default).
	BruteForceMaxK int
	// MaxBatch overrides DefaultMaxBatch (<=0 = default).
	MaxBatch int
}

// Assignment is one point's answer: the nearest center's index and the
// Euclidean distance to it.
type Assignment struct {
	Cluster  int     `json:"cluster"`
	Distance float64 `json:"distance"`
}

// assigner pairs an immutable model with the index built over its centers.
// The pair swaps atomically as a unit, so a request can never see a tree
// built over a different model than the one it reads centers from.
type assigner struct {
	m    *model.Model
	tree *kdtree.Tree // nil → brute force
	gen  int64        // swap generation, 1-based
}

// errNumericRange covers NaN coordinates and magnitudes whose squared
// distance overflows to +Inf against every center: nearest-center search
// returns index -1 for those, which must never leak to callers as a
// "cluster".
var errNumericRange = errors.New("serve: point is outside the model's numeric range")

func (a *assigner) assign(p vec.Vector) (Assignment, error) {
	var idx int
	var d2 float64
	if a.tree != nil {
		idx, d2 = a.tree.Nearest(p)
	} else {
		idx, d2 = vec.NearestIndex(p, a.m.Centers)
	}
	if idx < 0 {
		return Assignment{}, errNumericRange
	}
	return Assignment{Cluster: idx, Distance: math.Sqrt(d2)}, nil
}

// assignBatch validates and assigns a whole batch against this one
// snapshot — the single implementation behind both Server.AssignBatch and
// the HTTP batch handler.
func (a *assigner) assignBatch(points []vec.Vector) ([]Assignment, error) {
	out := make([]Assignment, len(points))
	for i, p := range points {
		if len(p) != a.m.Dim {
			return nil, fmt.Errorf("serve: point %d has %d dimensions, model wants %d", i, len(p), a.m.Dim)
		}
		asg, err := a.assign(p)
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		out[i] = asg
	}
	return out, nil
}

// Server answers assignment queries over the active model. It is safe for
// concurrent use and implements http.Handler. Create with New.
type Server struct {
	active atomic.Pointer[assigner]
	// swapMu serializes swaps so generations stored in active are
	// monotonic; reloadMu serializes whole load+swap reload sequences so
	// a slow loader cannot reinstall a stale model over a newer one. The
	// query path takes neither.
	swapMu   sync.Mutex
	reloadMu sync.Mutex
	gen      int64
	loader   func() (*model.Model, error)
	bruteK   int
	maxBatch int
	mux      *http.ServeMux

	// Observability: the registry backs GET /metrics; the handles below
	// are looked up once here so the query path ticks them lock-free.
	reg        *obs.Registry
	started    time.Time
	assignHist *obs.Histogram
	batchHist  *obs.Histogram
	inflight   *obs.Gauge
	requests   *obs.Counter
	swaps      *obs.Counter
}

// New builds a Server over m. The model is retained and must not be
// mutated afterwards; the serving layer treats it as immutable.
func New(m *model.Model, opts Options) (*Server, error) {
	s := &Server{
		loader:   opts.Loader,
		bruteK:   opts.BruteForceMaxK,
		maxBatch: opts.MaxBatch,
		reg:      obs.NewRegistry(),
		started:  time.Now(),
	}
	s.assignHist = s.reg.Histogram("serve_assign_seconds", nil)
	s.batchHist = s.reg.Histogram("serve_assign_batch_seconds", nil)
	s.inflight = s.reg.Gauge("serve_inflight_requests")
	s.requests = s.reg.Counter("serve_requests_total")
	s.swaps = s.reg.Counter("serve_model_swaps_total")
	if s.bruteK <= 0 {
		s.bruteK = DefaultBruteForceMaxK
	}
	if s.maxBatch <= 0 {
		s.maxBatch = DefaultMaxBatch
	}
	if err := s.Swap(m); err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/assign", s.handleAssign)
	mux.HandleFunc("POST /v1/assign/batch", s.handleAssignBatch)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("POST /v1/model/reload", s.handleReload)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// Swap atomically replaces the active model. In-flight requests finish on
// the model they started with; requests that begin after Swap returns see
// the new one. The model must not be mutated after being handed over.
func (s *Server) Swap(m *model.Model) error {
	if err := m.Validate(); err != nil {
		return err
	}
	a := &assigner{m: m}
	if m.K > s.bruteK {
		a.tree = kdtree.Build(m.Centers)
	}
	s.swapMu.Lock()
	s.gen++
	a.gen = s.gen
	s.active.Store(a)
	s.swapMu.Unlock()
	s.swaps.Inc()
	return nil
}

// Reload pulls a fresh model from the configured loader and swaps it in.
// Reloads are serialized end to end (load + swap), so two concurrent
// reloads racing a snapshot overwrite cannot install the older model last.
func (s *Server) Reload() error {
	if s.loader == nil {
		return errors.New("serve: no loader configured")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	m, err := s.loader()
	if err != nil {
		return fmt.Errorf("serve: reload: %w", err)
	}
	return s.Swap(m)
}

// Model returns the active model. Treat it as read-only.
func (s *Server) Model() *model.Model { return s.active.Load().m }

// Generation returns the active model's swap generation (1 for the model
// the server started with, incremented on every successful swap).
func (s *Server) Generation() int64 { return s.active.Load().gen }

// Assign answers a single query against the active model: the nearest
// center's index and the Euclidean distance to it.
func (s *Server) Assign(p vec.Vector) (Assignment, error) {
	a := s.active.Load()
	if len(p) != a.m.Dim {
		return Assignment{}, fmt.Errorf("serve: point has %d dimensions, model wants %d", len(p), a.m.Dim)
	}
	return a.assign(p)
}

// AssignBatch answers a batch of queries against one consistent model
// snapshot: every point in the batch is assigned by the same model even if
// a swap lands mid-batch.
func (s *Server) AssignBatch(points []vec.Vector) ([]Assignment, error) {
	return s.active.Load().assignBatch(points)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	s.mux.ServeHTTP(w, r)
}

// Metrics returns the server's metrics registry, so embedders (cmd/serve's
// -debug-addr) can expose the same metrics on a separate listener or add
// their own.
func (s *Server) Metrics() *obs.Registry { return s.reg }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// --- handlers ---------------------------------------------------------------

type assignRequest struct {
	Point vec.Vector `json:"point"`
}

type assignResponse struct {
	Cluster  int        `json:"cluster"`
	Center   vec.Vector `json:"center"`
	Distance float64    `json:"distance"`
}

func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.assignHist.Observe(time.Since(start).Seconds()) }()
	var req assignRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Point) == 0 {
		httpError(w, http.StatusBadRequest, "missing point")
		return
	}
	// Load the assigner once so cluster id and center come from the same
	// model even under a concurrent swap.
	a := s.active.Load()
	if len(req.Point) != a.m.Dim {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("point has %d dimensions, model wants %d", len(req.Point), a.m.Dim))
		return
	}
	asg, err := a.assign(req.Point)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, assignResponse{
		Cluster:  asg.Cluster,
		Center:   a.m.Centers[asg.Cluster],
		Distance: asg.Distance,
	})
}

type batchRequest struct {
	Points []vec.Vector `json:"points"`
}

type batchResponse struct {
	Assignments []Assignment `json:"assignments"`
	K           int          `json:"k"`
}

func (s *Server) handleAssignBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.batchHist.Observe(time.Since(start).Seconds()) }()
	var req batchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Points) == 0 {
		httpError(w, http.StatusBadRequest, "missing points")
		return
	}
	if len(req.Points) > s.maxBatch {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d points exceeds limit %d", len(req.Points), s.maxBatch))
		return
	}
	a := s.active.Load()
	out, err := a.assignBatch(req.Points)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Assignments: out, K: a.m.K})
}

type modelResponse struct {
	K          int        `json:"k"`
	Dim        int        `json:"dim"`
	Generation int64      `json:"generation"`
	Counts     []int64    `json:"counts,omitempty"`
	Radii      []float64  `json:"radii,omitempty"`
	Meta       model.Meta `json:"meta"`
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	a := s.active.Load()
	writeJSON(w, http.StatusOK, modelResponse{
		K: a.m.K, Dim: a.m.Dim, Generation: a.gen,
		Counts: a.m.Counts, Radii: a.m.Radii, Meta: a.m.Meta,
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.loader == nil {
		httpError(w, http.StatusConflict, "no snapshot source configured for reload")
		return
	}
	if err := s.Reload(); err != nil {
		httpError(w, http.StatusBadGateway, err.Error())
		return
	}
	a := s.active.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "reloaded", "k": a.m.K, "generation": a.gen,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	a := s.active.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "k": a.m.K, "dim": a.m.Dim, "generation": a.gen,
		"uptime_seconds": time.Since(s.started).Seconds(),
		"model": map[string]any{
			"algorithm":       a.m.Meta.Algorithm,
			"iterations":      a.m.Meta.Iterations,
			"trained_at_unix": a.m.Meta.TrainedAtUnix,
		},
		"build": obs.BuildInfo(),
	})
}

// --- plumbing ---------------------------------------------------------------

type errorResponse struct {
	Error string `json:"error"`
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, defaultMaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, "request body too large")
			return false
		}
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	if dec.More() {
		httpError(w, http.StatusBadRequest, "bad request body: trailing data after JSON value")
		return false
	}
	return true
}

// writeJSON encodes before touching the response so an encoding failure
// can still surface as a 500 instead of a 200 with an empty body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"internal: response encoding failed"}` + "\n"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
