package mr

import (
	"math/rand"
	"slices"
	"testing"
)

// taggedValue lets merge tests trace which run and emission slot a record
// came from, so order equality is checked record-for-record, not just
// key-for-key.
type taggedValue struct {
	run, seq int
}

func (taggedValue) ByteSize() int { return 8 }

// makeRuns builds r key-sorted runs with heavy key duplication both within
// and across runs — the worst case for tie-break fidelity.
func makeRuns(rng *rand.Rand, r, maxLen, keySpace int) [][]KV {
	runs := make([][]KV, r)
	for i := range runs {
		n := rng.Intn(maxLen + 1)
		run := make([]KV, n)
		for j := range run {
			run[j] = KV{Key: int64(rng.Intn(keySpace)), Value: taggedValue{run: i, seq: j}}
		}
		slices.SortStableFunc(run, byKey)
		runs[i] = run
	}
	return runs
}

// TestMergeRunsMatchesConcatSort pins the engine's reduce-merge contract:
// the k-way merge must produce byte-for-byte the sequence of the
// historical concatenate + stable-sort formulation, for any number of
// runs, any duplication pattern, and empty runs in any position.
func TestMergeRunsMatchesConcatSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		r := rng.Intn(9)
		runs := makeRuns(rng, r, 20, 1+rng.Intn(6))
		want := ConcatSortRuns(runs)
		got := MergeRuns(runs)
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d records, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Key != want[i].Key || got[i].Value != want[i].Value {
				t.Fatalf("trial %d record %d: kway (%d, %v) != concat-sort (%d, %v)",
					trial, i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
			}
		}
	}
}

// TestMergeRunsFixedCases covers the documented tie-break explicitly:
// equal keys come out in run order, and within a run in emission order.
func TestMergeRunsFixedCases(t *testing.T) {
	v := func(run, seq int) Value { return taggedValue{run: run, seq: seq} }
	runs := [][]KV{
		{{Key: 1, Value: v(0, 0)}, {Key: 1, Value: v(0, 1)}, {Key: 3, Value: v(0, 2)}},
		{}, // empty run in the middle
		{{Key: 1, Value: v(2, 0)}, {Key: 2, Value: v(2, 1)}},
		{{Key: 0, Value: v(3, 0)}, {Key: 3, Value: v(3, 1)}},
	}
	got := MergeRuns(runs)
	want := []KV{
		{Key: 0, Value: v(3, 0)},
		{Key: 1, Value: v(0, 0)},
		{Key: 1, Value: v(0, 1)},
		{Key: 1, Value: v(2, 0)},
		{Key: 2, Value: v(2, 1)},
		{Key: 3, Value: v(0, 2)},
		{Key: 3, Value: v(3, 1)},
	}
	if len(got) != len(want) {
		t.Fatalf("merged %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	if out := MergeRuns(nil); out != nil {
		t.Errorf("MergeRuns(nil) = %v", out)
	}
	if out := MergeRuns([][]KV{{}, {}}); out != nil {
		t.Errorf("MergeRuns(empty runs) = %v", out)
	}
	single := [][]KV{{{Key: 5, Value: v(0, 0)}, {Key: 9, Value: v(0, 1)}}}
	if out := MergeRuns(single); len(out) != 2 || out[0].Key != 5 || out[1].Key != 9 {
		t.Errorf("single-run merge = %v", out)
	}
}

// TestMergeRunsDoesNotMutateInputs: the scheduler retains the shuffle
// structure; merging must not consume or reorder it.
func TestMergeRunsDoesNotMutateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	runs := makeRuns(rng, 4, 12, 3)
	snapshot := make([][]KV, len(runs))
	for i, run := range runs {
		snapshot[i] = slices.Clone(run)
	}
	MergeRuns(runs)
	for i := range runs {
		if !slices.Equal(runs[i], snapshot[i]) {
			t.Fatalf("run %d mutated by merge", i)
		}
	}
}
