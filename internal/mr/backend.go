package mr

import (
	"context"
	"sync"

	"gmeansmr/internal/dfs"
)

// JobSpec is the portable description of a job's user code: a registered
// kind name plus an opaque payload the kind's builder decodes into mapper,
// combiner and reducer factories (see internal/mrdist). The in-process
// LocalRunner never reads it — the factories on the Job itself are
// authoritative — but a distributed runner ships the spec to worker
// processes, which reconstruct the identical factories from it. A job
// without a spec can only run on backends that share the driver's address
// space.
type JobSpec struct {
	// Kind names the job's registered builder, e.g. "kmeans.assign".
	Kind string
	// Payload is the kind-specific parameter block (centers, seeds, ...)
	// in the GMWR encoding of docs/wire.md.
	Payload []byte
}

// FileStore is the input plane of a job: split enumeration, the paper's
// dataset-read accounting, and raw content access so distributed runners
// can replicate inputs to the workers that own their splits. *dfs.FS
// implements it; Job.Run and every TaskRunner reach the input only through
// these methods (plus the per-task split readers, which run wherever the
// task runs).
type FileStore interface {
	// Splits partitions the file at path into map-task splits.
	Splits(path string) ([]dfs.Split, error)
	// SplitSize reports the configured split size, so replicas can be
	// built with the master's split layout.
	SplitSize() int
	// Contents returns the file's raw bytes without ticking any read
	// accounting — replication is a transport concern, not a dataset scan.
	Contents(path string) ([]byte, error)
	// Version reports the file's generation counter, bumped on every
	// (re)create, so replicas can be cached per (path, version).
	Version(path string) int64
	// CountDatasetRead records one whole-dataset scan pass.
	CountDatasetRead()
}

// Compile-time check: the simulated DFS is a FileStore.
var _ FileStore = (*dfs.FS)(nil)

// ShuffleStore carries one job's map outputs from the map wave to the
// reduce wave. Job.Run treats it as opaque: the runner that created it is
// its only consumer, so the local runner holds the runs themselves
// (MemShuffle) while a distributed runner tracks only run *locations* and
// leaves the bytes on the workers that produced them, to be pulled by
// reduce tasks.
type ShuffleStore interface {
	// NumMapTasks reports how many map-task run slots exist per partition.
	NumMapTasks() int
}

// TaskRunner executes the two waves of a job. Job.Run owns everything
// deterministic about a job — split enumeration, read accounting, phase
// ordering, output concatenation — and delegates only task *placement* to
// the runner, so every backend inherits the engine's bit-for-bit output
// contract as long as it executes each task with ExecMapTask/ExecReduceTask
// and merges each task's counters exactly once.
type TaskRunner interface {
	// NewShuffle allocates the store the map wave fills and the reduce
	// wave drains.
	NewShuffle(numReducers, numMapTasks int) ShuffleStore
	// RunMapPhase executes one map task per split. Implementations must
	// observe ctx before launching queued tasks and return the first task
	// error (deterministic task failures fail the job, as in Hadoop).
	RunMapPhase(ctx context.Context, j *Job, splits []dfs.Split, numReducers int, partition Partitioner, counters *Counters, shuffle ShuffleStore) error
	// RunReducePhase executes one reduce task per partition and returns
	// the per-partition outputs indexed by partition.
	RunReducePhase(ctx context.Context, j *Job, numReducers int, counters *Counters, shuffle ShuffleStore) ([][]KV, error)
}

// MemShuffle is the in-memory ShuffleStore of the local backend:
// runs[p][t] holds the combined, key-sorted run produced for partition p
// by map task t. Slots are preallocated, so concurrent map tasks write
// disjoint elements without locking; readers synchronize via the map
// wave's completion.
type MemShuffle struct {
	runs [][][]KV
}

// NewMemShuffle allocates a store for numReducers × numMapTasks runs.
func NewMemShuffle(numReducers, numMapTasks int) *MemShuffle {
	runs := make([][][]KV, numReducers)
	for p := range runs {
		runs[p] = make([][]KV, numMapTasks)
	}
	return &MemShuffle{runs: runs}
}

// NumMapTasks implements ShuffleStore.
func (s *MemShuffle) NumMapTasks() int {
	if len(s.runs) == 0 {
		return 0
	}
	return len(s.runs[0])
}

// Put stores map task t's run for partition p.
func (s *MemShuffle) Put(t, p int, run []KV) { s.runs[p][t] = run }

// Runs returns partition p's runs indexed by map task id — the merge order
// that keeps the reduce phase deterministic.
func (s *MemShuffle) Runs(p int) [][]KV { return s.runs[p] }

// LocalRunner is the default TaskRunner: the in-process goroutine pools
// that simulate the cluster's map and reduce slots (Cluster.MapCapacity and
// ReduceCapacity bound the concurrency). It is the reference
// implementation every other backend must match bit for bit.
type LocalRunner struct{}

// NewShuffle implements TaskRunner.
func (LocalRunner) NewShuffle(numReducers, numMapTasks int) ShuffleStore {
	return NewMemShuffle(numReducers, numMapTasks)
}

// RunMapPhase executes one map task per split on a worker pool bounded by
// the cluster's map capacity. Context cancellation is observed before every
// task launch: tasks already running drain, queued tasks never start.
func (LocalRunner) RunMapPhase(ctx context.Context, j *Job, splits []dfs.Split, numReducers int, partition Partitioner, counters *Counters, shuffle ShuffleStore) error {
	store := shuffle.(*MemShuffle)
	sem := make(chan struct{}, j.Cluster.MapCapacity())
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for t, sp := range splits {
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		// Deterministic check first: a two-way select alone would pick a
		// ready case at random and could keep launching tasks on a
		// cancelled context.
		if err := ctx.Err(); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = jobErr(j.Name, err)
			}
			mu.Unlock()
			break
		}
		select {
		case <-ctx.Done():
			mu.Lock()
			if firstErr == nil {
				firstErr = jobErr(j.Name, ctx.Err())
			}
			mu.Unlock()
		case sem <- struct{}{}:
			wg.Add(1)
			go func(taskID int, sp dfs.Split) {
				defer func() { <-sem; wg.Done() }()
				mu.Lock()
				aborted := firstErr != nil
				mu.Unlock()
				if aborted {
					return
				}
				runs, err := j.ExecMapTask(taskID, sp, numReducers, partition, counters)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				for p := range runs {
					store.Put(taskID, p, runs[p])
				}
			}(t, sp)
		}
	}
	wg.Wait()
	return firstErr
}

// RunReducePhase executes one reduce task per partition on a worker pool
// bounded by the cluster's reduce capacity. Cancellation is observed before
// every task launch, as in the map phase.
func (LocalRunner) RunReducePhase(ctx context.Context, j *Job, numReducers int, counters *Counters, shuffle ShuffleStore) ([][]KV, error) {
	store := shuffle.(*MemShuffle)
	sem := make(chan struct{}, j.Cluster.ReduceCapacity())
	outputs := make([][]KV, numReducers)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for p := 0; p < numReducers; p++ {
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		// Deterministic check first, as in RunMapPhase.
		if err := ctx.Err(); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = jobErr(j.Name, err)
			}
			mu.Unlock()
			break
		}
		select {
		case <-ctx.Done():
			mu.Lock()
			if firstErr == nil {
				firstErr = jobErr(j.Name, ctx.Err())
			}
			mu.Unlock()
		case sem <- struct{}{}:
			wg.Add(1)
			go func(p int) {
				defer func() { <-sem; wg.Done() }()
				mu.Lock()
				aborted := firstErr != nil
				mu.Unlock()
				if aborted {
					return
				}
				out, err := j.ExecReduceTask(p, counters, store.Runs(p))
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				outputs[p] = out
			}(p)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return outputs, nil
}
