package mr

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"time"

	"gmeansmr/internal/dfs"
	"gmeansmr/internal/obs"
)

// byKey orders KV pairs by key for the engine's sort sites. Stable sorts
// with this comparator preserve emission order within a key, which is what
// makes the shuffle deterministic.
func byKey(a, b KV) int { return cmp.Compare(a.Key, b.Key) }

// Job describes one MapReduce job: where the input lives, how to map,
// combine and reduce it, and which cluster executes it. Zero-value optional
// fields get Hadoop-like defaults (hash partitioner, reducer count equal to
// the cluster's reduce capacity).
type Job struct {
	Name    string
	FS      *dfs.FS
	Cluster Cluster

	// Input is the list of DFS paths to read. Every file is divided into
	// splits; one map task runs per split.
	Input []string

	// Exactly one of NewMapper and NewPointMapper must be set. NewMapper
	// feeds text records (Hadoop's TextInputFormat shape); NewPointMapper
	// selects the decoded-point fast path, which serves each split's
	// points from the DFS decode cache and requires PointDim.
	NewMapper      MapperFactory
	NewPointMapper PointMapperFactory
	// PointDim is the point dimensionality of the input files; required
	// with NewPointMapper (every record must decode to exactly PointDim
	// coordinates).
	PointDim int
	// DisableColumnar forces the per-point row-major path even for point
	// mappers that implement ColumnarMapper. Drivers set it when the
	// mapper's batched kernels do not apply (kd-tree-accelerated nearest
	// lookups report pruned distance counts the linear batch kernel cannot
	// reproduce); the equivalence tests and benchmarks use it to pin the
	// two paths against each other.
	DisableColumnar bool
	NewCombiner     ReducerFactory // optional; nil disables combining
	NewReducer      ReducerFactory

	// NumReducers is the number of reduce tasks (= output partitions).
	// Zero selects the cluster's total reduce capacity, the common Hadoop
	// practice the paper assumes when it says the reduce-phase parallelism
	// of TestClusters "is bounded by k".
	NumReducers int

	Partition Partitioner // nil selects DefaultPartitioner

	// Ctx, when non-nil, lets callers cancel the job or bound it with a
	// deadline. The scheduler checks it before launching every task, so a
	// cancelled job aborts after the tasks already in flight drain — no
	// goroutines outlive Run. Nil means context.Background().
	Ctx context.Context

	// Trace, when non-nil, records per-phase and per-task spans for the
	// job: "map"/"reduce" engine phases, and "map-task", "spill",
	// "shuffle-merge", "reduce-task" spans keyed by task id. Spans are
	// batch-level only — one per task or phase, never per record — so a
	// nil Trace costs one pointer test and an enabled one stays off the
	// record hot path.
	Trace *obs.Trace

	// Runner selects the execution backend. Nil selects LocalRunner, the
	// in-process goroutine pools. Distributed runners additionally require
	// Spec so workers can reconstruct the job's user code.
	Runner TaskRunner

	// Spec is the portable description of the job's mapper/combiner/reducer
	// for backends that execute tasks in other processes. Optional; the
	// local backend ignores it.
	Spec *JobSpec
}

// Result is the outcome of a successful job.
type Result struct {
	// Output contains every pair emitted by reducers, ordered by partition
	// then by emission order within the reduce task. For key-ordered access
	// use SortedOutput.
	Output []KV
	// Counters holds the merged engine and job counters.
	Counters *Counters
	// MapTasks and ReduceTasks record the task counts that ran.
	MapTasks    int
	ReduceTasks int
	// Duration is the wall-clock time of the whole job.
	Duration time.Duration
}

// SortedOutput returns the output pairs sorted by key (stable).
func (r *Result) SortedOutput() []KV {
	out := make([]KV, len(r.Output))
	copy(out, r.Output)
	slices.SortStableFunc(out, byKey)
	return out
}

type emitter struct {
	buf []KV
}

func (e *emitter) Emit(key int64, value Value) {
	e.buf = append(e.buf, KV{Key: key, Value: value})
}

// Run executes the job to completion and returns its result, or the first
// task error encountered. A failing task fails the job, matching Hadoop's
// behaviour for deterministic task errors such as heap exhaustion. When
// j.Ctx is cancelled the job stops scheduling tasks and returns an error
// wrapping ctx.Err().
func (j *Job) Run() (*Result, error) {
	if err := j.validate(); err != nil {
		return nil, err
	}
	ctx := j.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	numReducers := j.NumReducers
	if numReducers <= 0 {
		numReducers = j.Cluster.ReduceCapacity()
	}
	partition := j.Partition
	if partition == nil {
		partition = DefaultPartitioner
	}

	start := time.Now()
	counters := NewCounters()

	var splits []dfs.Split
	scanned := 0 // inputs the map wave will actually scan
	for _, path := range j.Input {
		ss, err := j.FS.Splits(path)
		if err != nil {
			return nil, fmt.Errorf("mr: job %q: %w", j.Name, err)
		}
		splits = append(splits, ss...)
		if len(ss) > 0 {
			scanned++
		}
	}
	// Each job scans each of its non-empty inputs exactly once across its
	// map wave; this is the paper's "dataset read" cost unit. An empty file
	// yields no splits and therefore no scan, and a job cancelled before
	// its map wave starts never reads anything — neither may tick the
	// counter, or chained-job read totals drift from the paper's model.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mr: job %q: %w", j.Name, err)
	}
	for i := 0; i < scanned; i++ {
		j.FS.CountDatasetRead()
	}

	runner := j.Runner
	if runner == nil {
		runner = LocalRunner{}
	}
	// The runner owns the shuffle representation: in-memory runs for the
	// local backend, run locations for distributed ones. shuffle[p][t] is
	// always the combined, key-sorted run produced for partition p by map
	// task t; indexing by task id keeps the merge order deterministic
	// regardless of scheduling or placement.
	shuffle := runner.NewShuffle(numReducers, len(splits))

	jobSpan := j.Trace.StartSpan("job:"+j.Name, "job").
		SetArg("map_tasks", len(splits)).
		SetArg("reduce_tasks", numReducers)

	mapSpan := j.Trace.StartSpan("map", "mr")
	err := runner.RunMapPhase(ctx, j, splits, numReducers, partition, counters, shuffle)
	mapSpan.End()
	if err != nil {
		return nil, err
	}

	reduceSpan := j.Trace.StartSpan("reduce", "mr")
	outputs, err := runner.RunReducePhase(ctx, j, numReducers, counters, shuffle)
	reduceSpan.End()
	if err != nil {
		return nil, err
	}
	var output []KV
	for _, out := range outputs {
		output = append(output, out...)
	}

	// Attach the merged job counters to the job span so a trace is
	// self-describing: phase wall time next to the work volumes that
	// explain it.
	for _, cv := range counters.Sorted() {
		jobSpan.SetArg(cv.Name, cv.Value)
	}
	jobSpan.End()

	return &Result{
		Output:      output,
		Counters:    counters,
		MapTasks:    len(splits),
		ReduceTasks: numReducers,
		Duration:    time.Since(start),
	}, nil
}

func (j *Job) validate() error {
	switch {
	case j.FS == nil:
		return fmt.Errorf("mr: job %q: nil FS", j.Name)
	case len(j.Input) == 0:
		return fmt.Errorf("mr: job %q: no input", j.Name)
	case j.NewMapper == nil && j.NewPointMapper == nil:
		return fmt.Errorf("mr: job %q: nil mapper factory", j.Name)
	case j.NewMapper != nil && j.NewPointMapper != nil:
		return fmt.Errorf("mr: job %q: both NewMapper and NewPointMapper set", j.Name)
	case j.NewPointMapper != nil && j.PointDim <= 0:
		return fmt.Errorf("mr: job %q: NewPointMapper requires a positive PointDim, got %d", j.Name, j.PointDim)
	case j.NewReducer == nil:
		return fmt.Errorf("mr: job %q: nil reducer factory", j.Name)
	}
	return j.Cluster.Validate()
}

// jobErr wraps a phase-level error with the job name.
func jobErr(name string, err error) error {
	return fmt.Errorf("mr: job %q: %w", name, err)
}

// ExecMapTask maps one split and returns the per-partition, key-sorted,
// combined runs. It is the unit of work every backend executes — the local
// runner calls it in-process, a distributed worker calls it on a replica of
// the input — and it is deterministic: the same split, job parameters and
// task id produce byte-identical runs and counter deltas wherever it runs.
// Counter deltas are buffered per task and flushed into counters once at
// completion, so callers that re-execute a task (retry, speculation) must
// merge at most one completion's counters.
func (j *Job) ExecMapTask(taskID int, sp dfs.Split, numReducers int, partition Partitioner, counters *Counters) ([][]KV, error) {
	ctx := &TaskContext{
		JobName:    j.Name,
		Kind:       MapTask,
		TaskID:     taskID,
		NodeID:     taskID % j.Cluster.Nodes,
		counters:   counters,
		heapBudget: j.Cluster.TaskHeapBytes,
	}
	em := &emitter{}
	taskSpan := j.Trace.StartSpan("map-task", "task").SetTID(int64(taskID))
	records, err := j.mapSplit(ctx, sp, em)
	if err != nil {
		taskSpan.End()
		return nil, wrapTaskErr(j.Name, MapTask, taskID, err)
	}

	var outBytes int64
	for _, kv := range em.buf {
		outBytes += int64(kv.Value.ByteSize()) + 8
	}
	taskSpan.SetArg("records", records).
		SetArg("out_records", int64(len(em.buf))).
		SetArg("out_bytes", outBytes).
		End()
	ctx.Count(idMapInputRecords, records)
	ctx.Count(idMapOutputRecords, int64(len(em.buf)))
	ctx.Count(idMapOutputBytes, outBytes)

	// Partition, sort, and (optionally) combine, as Hadoop does on spill.
	spillSpan := j.Trace.StartSpan("spill", "task").SetTID(int64(taskID))
	parts := make([][]KV, numReducers)
	for _, kv := range em.buf {
		p := partition(kv.Key, numReducers)
		parts[p] = append(parts[p], kv)
	}
	var spillRecords, spillBytes int64
	for p := range parts {
		slices.SortStableFunc(parts[p], byKey)
		if j.NewCombiner != nil && len(parts[p]) > 0 {
			combined, err := j.combineRun(ctx, taskID, parts[p], counters)
			if err != nil {
				spillSpan.End()
				return nil, err
			}
			parts[p] = combined
		}
		var shuffled, shuffledBytes int64
		for _, kv := range parts[p] {
			shuffled++
			shuffledBytes += int64(kv.Value.ByteSize()) + 8
		}
		spillRecords += shuffled
		spillBytes += shuffledBytes
		ctx.Count(idShuffleRecords, shuffled)
		ctx.Count(idShuffleBytes, shuffledBytes)
	}
	spillSpan.SetArg("records", spillRecords).SetArg("bytes", spillBytes).End()
	ctx.flushCounters()
	return parts, nil
}

// mapSplit feeds one split through a fresh mapper instance — decoded
// points on the fast path, text records otherwise — and returns the input
// record count.
func (j *Job) mapSplit(ctx *TaskContext, sp dfs.Split, em Emitter) (int64, error) {
	if j.NewPointMapper != nil {
		mapper := j.NewPointMapper()
		if err := mapper.Setup(ctx); err != nil {
			return 0, err
		}
		ps, err := j.FS.OpenSplitPoints(sp, j.PointDim)
		if err != nil {
			return 0, err
		}
		n := ps.Len()
		if cm, ok := mapper.(ColumnarMapper); ok && !j.DisableColumnar {
			// Columnar fast path: the whole split in one call, against the
			// dim-major view materialized once per cached decode.
			if err := cm.MapColumns(ctx, ps.Columns(), em); err != nil {
				return 0, err
			}
			return int64(n), mapper.Close(ctx, em)
		}
		for i := 0; i < n; i++ {
			if err := mapper.MapPoint(ctx, ps.At(i), em); err != nil {
				return 0, err
			}
		}
		return int64(n), mapper.Close(ctx, em)
	}
	mapper := j.NewMapper()
	if err := mapper.Setup(ctx); err != nil {
		return 0, err
	}
	reader, err := j.FS.OpenSplit(sp)
	if err != nil {
		return 0, err
	}
	var records int64
	for {
		// The reader reports each record's true byte offset. A running sum
		// seeded with sp.Start would be wrong for every split but the first
		// (the skipped partial leading record goes unaccounted) and for
		// CRLF terminators.
		line, offset, ok := reader.NextRecord()
		if !ok {
			break
		}
		records++
		if err := mapper.Map(ctx, Record{Offset: offset, Line: line}, em); err != nil {
			return 0, err
		}
	}
	return records, mapper.Close(ctx, em)
}

// combineRun applies the combiner to one sorted run and returns the
// combiner's (re-sorted) output.
func (j *Job) combineRun(ctx *TaskContext, taskID int, run []KV, counters *Counters) ([]KV, error) {
	combiner := j.NewCombiner()
	if err := combiner.Setup(ctx); err != nil {
		return nil, wrapTaskErr(j.Name, MapTask, taskID, err)
	}
	out := &emitter{}
	i := 0
	for i < len(run) {
		k := run[i].Key
		jdx := i
		for jdx < len(run) && run[jdx].Key == k {
			jdx++
		}
		values := make([]Value, 0, jdx-i)
		for _, kv := range run[i:jdx] {
			values = append(values, kv.Value)
		}
		ctx.Count(idCombineInput, int64(len(values)))
		if err := combiner.Reduce(ctx, k, values, out); err != nil {
			return nil, wrapTaskErr(j.Name, MapTask, taskID, err)
		}
		i = jdx
	}
	if err := combiner.Close(ctx, out); err != nil {
		return nil, wrapTaskErr(j.Name, MapTask, taskID, err)
	}
	ctx.Count(idCombineOutput, int64(len(out.buf)))
	slices.SortStableFunc(out.buf, byKey)
	return out.buf, nil
}

// ExecReduceTask merges the runs of one partition, groups by key, and feeds
// the groups to a fresh reducer instance. Like ExecMapTask it is the
// backend-independent unit of work: runs must be indexed by map-task id
// (the deterministic merge tie-break order), and counter deltas flush once
// at completion.
func (j *Job) ExecReduceTask(p int, counters *Counters, runs [][]KV) ([]KV, error) {
	ctx := &TaskContext{
		JobName:    j.Name,
		Kind:       ReduceTask,
		TaskID:     p,
		NodeID:     p % j.Cluster.Nodes,
		counters:   counters,
		heapBudget: j.Cluster.TaskHeapBytes,
	}
	// Merge the per-task key-sorted runs with a k-way heap merge — Hadoop's
	// merge phase proper, O(n log r) instead of re-sorting the
	// concatenation. Key ties break by map-task id, so the output order is
	// byte-for-byte what concatenate + stable sort produced (pinned by
	// TestMergeRunsMatchesConcatSort).
	mergeSpan := j.Trace.StartSpan("shuffle-merge", "task").SetTID(int64(p))
	merged := MergeRuns(runs)
	mergeSpan.SetArg("records", int64(len(merged))).End()

	taskSpan := j.Trace.StartSpan("reduce-task", "task").SetTID(int64(p))
	reducer := j.NewReducer()
	if err := reducer.Setup(ctx); err != nil {
		taskSpan.End()
		return nil, wrapTaskErr(j.Name, ReduceTask, p, err)
	}
	out := &emitter{}
	i := 0
	var groups, records int64
	for i < len(merged) {
		k := merged[i].Key
		jdx := i
		for jdx < len(merged) && merged[jdx].Key == k {
			jdx++
		}
		values := make([]Value, 0, jdx-i)
		for _, kv := range merged[i:jdx] {
			values = append(values, kv.Value)
		}
		groups++
		records += int64(len(values))
		if err := reducer.Reduce(ctx, k, values, out); err != nil {
			taskSpan.End()
			return nil, wrapTaskErr(j.Name, ReduceTask, p, err)
		}
		i = jdx
	}
	if err := reducer.Close(ctx, out); err != nil {
		taskSpan.End()
		return nil, wrapTaskErr(j.Name, ReduceTask, p, err)
	}
	taskSpan.SetArg("groups", groups).
		SetArg("records", records).
		SetArg("out_records", int64(len(out.buf))).
		End()
	ctx.Count(idReduceInputGroups, groups)
	ctx.Count(idReduceInputRecords, records)
	ctx.Count(idReduceOutput, int64(len(out.buf)))
	ctx.flushCounters()
	return out.buf, nil
}

func wrapTaskErr(job string, kind TaskKind, taskID int, err error) error {
	if te, ok := err.(*TaskError); ok {
		return te
	}
	return &TaskError{Job: job, Kind: kind, TaskID: taskID, Err: err}
}
