package mr

import (
	"errors"
	"fmt"
)

// ErrHeapSpace is the engine's equivalent of the JVM's
// OutOfMemoryError("Java heap space"): a task reserved more memory than its
// heap budget. The paper's Figure 2 charts exactly this failure boundary
// for the TestClusters reducer.
var ErrHeapSpace = errors.New("mr: Java heap space")

// TaskKind distinguishes map from reduce tasks in contexts and errors.
type TaskKind string

// Task kinds.
const (
	MapTask    TaskKind = "map"
	ReduceTask TaskKind = "reduce"
)

// TaskContext is handed to every mapper/combiner/reducer callback. It
// carries task identity, the job's counters, and the task's heap budget.
type TaskContext struct {
	JobName string
	Kind    TaskKind
	TaskID  int
	NodeID  int

	counters *Counters
	// local buffers counter increments for the lifetime of the task and is
	// flushed into the shared job counters once, when the task completes —
	// mappers call Count per record, and a shared mutex there would
	// serialize the whole map wave. The buffer is a slice indexed by
	// interned CounterID: a per-record tick is two bounds checks and an
	// add, no string hashing (see InternCounter).
	local        []int64
	localTouched []bool

	heapBudget int64
	heapUsed   int64
	heapPeak   int64
}

// Count increments the job counter interned as id by delta. Increments
// become visible in the job's merged counters when the task finishes,
// matching Hadoop's counter semantics (task counters are reported on
// completion). This is the hot-path form; Counter accepts a name.
func (c *TaskContext) Count(id CounterID, delta int64) {
	if id < 0 {
		return
	}
	if int(id) >= len(c.local) {
		local := make([]int64, id+8)
		copy(local, c.local)
		c.local = local
		touched := make([]bool, id+8)
		copy(touched, c.localTouched)
		c.localTouched = touched
	}
	c.local[id] += delta
	c.localTouched[id] = true
}

// Counter increments the named job counter by delta. Call sites on per-
// record paths should intern the name once and use Count instead.
func (c *TaskContext) Counter(name string, delta int64) {
	c.Count(InternCounter(name), delta)
}

// flushCounters publishes the task's buffered counters to the job.
func (c *TaskContext) flushCounters() {
	for id, v := range c.local {
		if c.localTouched[id] {
			c.counters.AddID(CounterID(id), v)
		}
	}
	c.local, c.localTouched = nil, nil
}

// HeapBudget returns the task's total heap in bytes.
func (c *TaskContext) HeapBudget() int64 { return c.heapBudget }

// HeapUsed returns the bytes currently reserved by the task.
func (c *TaskContext) HeapUsed() int64 { return c.heapUsed }

// HeapPeak returns the highest reservation the task reached.
func (c *TaskContext) HeapPeak() int64 { return c.heapPeak }

// ReserveHeap models allocating n bytes of task heap. It returns a
// TaskError wrapping ErrHeapSpace when the reservation would exceed the
// budget; the engine fails the whole job on that error, as Hadoop fails a
// job whose task dies with OutOfMemoryError (after retries, which the
// simulation does not need — the failure is deterministic).
func (c *TaskContext) ReserveHeap(n int64) error {
	if c.heapUsed+n > c.heapBudget {
		return &TaskError{Job: c.JobName, Kind: c.Kind, TaskID: c.TaskID, Err: ErrHeapSpace}
	}
	c.heapUsed += n
	if c.heapUsed > c.heapPeak {
		c.heapPeak = c.heapUsed
	}
	return nil
}

// ReleaseHeap models freeing n bytes of task heap (e.g. a reducer dropping
// one group's value list before the next group).
func (c *TaskContext) ReleaseHeap(n int64) {
	c.heapUsed -= n
	if c.heapUsed < 0 {
		c.heapUsed = 0
	}
}

// TaskError wraps a failure of a specific task with its identity.
type TaskError struct {
	Job    string
	Kind   TaskKind
	TaskID int
	Err    error
}

// Error implements error.
func (e *TaskError) Error() string {
	return fmt.Sprintf("mr: job %q %s task %d: %v", e.Job, e.Kind, e.TaskID, e.Err)
}

// Unwrap exposes the underlying cause (e.g. ErrHeapSpace).
func (e *TaskError) Unwrap() error { return e.Err }
