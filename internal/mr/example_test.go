package mr_test

import (
	"fmt"
	"log"

	"gmeansmr/internal/dfs"
	"gmeansmr/internal/mr"
)

// ExampleJob_Run runs the classic first MapReduce job — sum values per
// key — on the simulated cluster: one map task per DFS split, a combiner
// folding each task's output, and a sort-shuffled reduce.
func ExampleJob_Run() {
	fs := dfs.New(16) // tiny splits: several map tasks even for this input
	fs.WriteLines("/in", []string{"1 10", "2 20", "1 5", "2 2", "1 1"})

	sum := mr.ReducerFunc(func(_ *mr.TaskContext, key int64, values []mr.Value, emit mr.Emitter) error {
		var s int64
		for _, v := range values {
			s += int64(v.(mr.Int64Value))
		}
		emit.Emit(key, mr.Int64Value(s))
		return nil
	})
	job := &mr.Job{
		Name:    "sum-per-key",
		FS:      fs,
		Cluster: mr.Cluster{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, TaskHeapBytes: 1 << 20, MaxHeapUsage: 1},
		Input:   []string{"/in"},
		NewMapper: func() mr.Mapper {
			return mr.MapperFunc(func(_ *mr.TaskContext, rec mr.Record, emit mr.Emitter) error {
				var key, val int64
				if _, err := fmt.Sscanf(rec.Line, "%d %d", &key, &val); err != nil {
					return err
				}
				emit.Emit(key, mr.Int64Value(val))
				return nil
			})
		},
		NewCombiner: func() mr.Reducer { return sum },
		NewReducer:  func() mr.Reducer { return sum },
	}
	res, err := job.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, kv := range res.SortedOutput() {
		fmt.Printf("key %d → %d\n", kv.Key, kv.Value.(mr.Int64Value))
	}
	fmt.Printf("map tasks=%d dataset reads=%d\n", res.MapTasks, fs.DatasetReads())
	// Output:
	// key 1 → 16
	// key 2 → 22
	// map tasks=2 dataset reads=1
}
