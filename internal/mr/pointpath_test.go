package mr

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"gmeansmr/internal/dfs"
)

// sumPointMapper accumulates per-dimension sums in-mapper and emits one
// value per dimension at Close — the canonical shape of the decoded fast
// path.
type sumPointMapper struct {
	sums []float64
}

func (m *sumPointMapper) Setup(*TaskContext) error { return nil }

func (m *sumPointMapper) MapPoint(_ *TaskContext, p []float64, _ Emitter) error {
	if m.sums == nil {
		m.sums = make([]float64, len(p))
	}
	for d, x := range p {
		m.sums[d] += x
	}
	return nil
}

func (m *sumPointMapper) Close(_ *TaskContext, emit Emitter) error {
	for d, s := range m.sums {
		emit.Emit(int64(d), Float64Value(s))
	}
	return nil
}

func sumReducer() Reducer {
	return ReducerFunc(func(_ *TaskContext, key int64, values []Value, emit Emitter) error {
		var s float64
		for _, v := range values {
			s += float64(v.(Float64Value))
		}
		emit.Emit(key, Float64Value(s))
		return nil
	})
}

func pointPathJob(fs *dfs.FS, dim int) *Job {
	return &Job{
		Name:           "point-sum",
		FS:             fs,
		Cluster:        Cluster{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, TaskHeapBytes: 1 << 20, MaxHeapUsage: 1},
		Input:          []string{"/pts"},
		PointDim:       dim,
		NewPointMapper: func() PointMapper { return &sumPointMapper{} },
		NewReducer:     func() Reducer { return sumReducer() },
	}
}

func TestPointMapperFastPath(t *testing.T) {
	fs := dfs.New(64) // several splits
	var b strings.Builder
	want := []float64{0, 0}
	for i := 0; i < 100; i++ {
		x, y := float64(i), float64(2*i)
		want[0] += x
		want[1] += y
		b.WriteString(dfsFormat(x, y))
	}
	fs.Create("/pts", []byte(b.String()))

	res, err := pointPathJob(fs, 2).Run()
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]float64{}
	for _, kv := range res.Output {
		got[kv.Key] = float64(kv.Value.(Float64Value))
	}
	for d := range want {
		if got[int64(d)] != want[d] {
			t.Errorf("dim %d: sum %v, want %v", d, got[int64(d)], want[d])
		}
	}
	// Input-record accounting must count points.
	if n := res.Counters.Get(CounterMapInputRecords); n != 100 {
		t.Errorf("map input records = %d, want 100", n)
	}
}

func TestPointMapperValidation(t *testing.T) {
	fs := dfs.New(0)
	fs.Create("/pts", []byte("1 2\n"))

	noDim := pointPathJob(fs, 0)
	if _, err := noDim.Run(); err == nil {
		t.Error("PointDim=0 accepted with NewPointMapper")
	}

	both := pointPathJob(fs, 2)
	both.NewMapper = func() Mapper {
		return MapperFunc(func(*TaskContext, Record, Emitter) error { return nil })
	}
	if _, err := both.Run(); err == nil {
		t.Error("both mapper factories accepted")
	}

	badDim := pointPathJob(fs, 3) // records have 2 coordinates
	if _, err := badDim.Run(); err == nil {
		t.Error("dimension mismatch did not fail the job")
	}
}

func dfsFormat(x, y float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64) + " " + strconv.FormatFloat(y, 'g', -1, 64) + "\n"
}

// columnarSumMapper is sumPointMapper plus the columnar extension; it
// records which path the engine drove so the dispatch tests can assert it.
type columnarSumMapper struct {
	sumPointMapper
	pathTaken *pathCounts // shared across tasks, mutated under its mutex
}

type pathCounts struct {
	mu       sync.Mutex
	columnar int
	perPoint int
}

func (m *columnarSumMapper) MapPoint(ctx *TaskContext, p []float64, emit Emitter) error {
	m.pathTaken.mu.Lock()
	m.pathTaken.perPoint++
	m.pathTaken.mu.Unlock()
	return m.sumPointMapper.MapPoint(ctx, p, emit)
}

func (m *columnarSumMapper) MapColumns(_ *TaskContext, cols *dfs.ColumnarSplit, _ Emitter) error {
	m.pathTaken.mu.Lock()
	m.pathTaken.columnar++
	m.pathTaken.mu.Unlock()
	if m.sums == nil {
		m.sums = make([]float64, cols.Dim())
	}
	n := cols.Len()
	for d := range m.sums {
		col := cols.Col(d)
		for j := 0; j < n; j++ {
			m.sums[d] += col[j]
		}
	}
	return nil
}

// TestColumnarMapperDispatch: the engine must drive a ColumnarMapper
// through MapColumns once per split — never MapPoint — unless the job
// sets DisableColumnar, and input-record accounting must still count
// points on both paths.
func TestColumnarMapperDispatch(t *testing.T) {
	build := func() (*Job, *pathCounts) {
		fs := dfs.New(64) // several splits
		var b strings.Builder
		for i := 0; i < 100; i++ {
			b.WriteString(dfsFormat(float64(i), float64(2*i)))
		}
		fs.Create("/pts", []byte(b.String()))
		counts := &pathCounts{}
		job := pointPathJob(fs, 2)
		job.NewPointMapper = func() PointMapper { return &columnarSumMapper{pathTaken: counts} }
		return job, counts
	}

	job, counts := build()
	splits, err := job.FS.Splits("/pts")
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if counts.columnar != len(splits) || counts.perPoint != 0 {
		t.Errorf("columnar dispatch: %d MapColumns calls (want %d), %d MapPoint calls (want 0)",
			counts.columnar, len(splits), counts.perPoint)
	}
	if n := res.Counters.Get(CounterMapInputRecords); n != 100 {
		t.Errorf("map input records = %d, want 100", n)
	}

	job, counts = build()
	job.DisableColumnar = true
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	if counts.columnar != 0 || counts.perPoint != 100 {
		t.Errorf("DisableColumnar: %d MapColumns calls (want 0), %d MapPoint calls (want 100)",
			counts.columnar, counts.perPoint)
	}
}
