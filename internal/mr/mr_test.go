package mr

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"gmeansmr/internal/dfs"
)

// testCluster returns a small deterministic-enough cluster for unit tests.
func testCluster() Cluster {
	return Cluster{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 2, TaskHeapBytes: 1 << 20, MaxHeapUsage: 0.66}
}

// wordCountJob builds the canonical MapReduce smoke test: tokens are
// non-negative ints; the job counts occurrences per token.
func wordCountJob(fs *dfs.FS, input string, combine bool) *Job {
	j := &Job{
		Name:    "wordcount",
		FS:      fs,
		Cluster: testCluster(),
		Input:   []string{input},
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, rec Record, emit Emitter) error {
				for _, tok := range strings.Fields(rec.Line) {
					n, err := strconv.ParseInt(tok, 10, 64)
					if err != nil {
						return err
					}
					emit.Emit(n, Int64Value(1))
				}
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key int64, values []Value, emit Emitter) error {
				var sum int64
				for _, v := range values {
					sum += int64(v.(Int64Value))
				}
				emit.Emit(key, Int64Value(sum))
				return nil
			})
		},
	}
	if combine {
		j.NewCombiner = j.NewReducer
	}
	return j
}

func writeTokens(fs *dfs.FS, path string, tokens []int) {
	var lines []string
	var cur []string
	for i, tok := range tokens {
		cur = append(cur, strconv.Itoa(tok))
		if (i+1)%5 == 0 {
			lines = append(lines, strings.Join(cur, " "))
			cur = nil
		}
	}
	if len(cur) > 0 {
		lines = append(lines, strings.Join(cur, " "))
	}
	fs.WriteLines(path, lines)
}

func countsFromResult(res *Result) map[int64]int64 {
	out := make(map[int64]int64)
	for _, kv := range res.Output {
		out[kv.Key] += int64(kv.Value.(Int64Value))
	}
	return out
}

func TestWordCountBasic(t *testing.T) {
	fs := dfs.New(16) // tiny splits → many map tasks
	tokens := []int{1, 2, 3, 1, 2, 1, 7, 7, 7, 7}
	writeTokens(fs, "/in", tokens)
	res, err := wordCountJob(fs, "/in", false).Run()
	if err != nil {
		t.Fatal(err)
	}
	got := countsFromResult(res)
	want := map[int64]int64{1: 3, 2: 2, 3: 1, 7: 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%d] = %d, want %d", k, got[k], v)
		}
	}
	if res.MapTasks < 2 {
		t.Errorf("expected multiple map tasks with 16-byte splits, got %d", res.MapTasks)
	}
}

func TestWordCountWithCombinerSameAnswer(t *testing.T) {
	fs := dfs.New(32)
	r := rand.New(rand.NewSource(1))
	tokens := make([]int, 500)
	for i := range tokens {
		tokens[i] = r.Intn(10)
	}
	writeTokens(fs, "/in", tokens)

	plain, err := wordCountJob(fs, "/in", false).Run()
	if err != nil {
		t.Fatal(err)
	}
	combined, err := wordCountJob(fs, "/in", true).Run()
	if err != nil {
		t.Fatal(err)
	}
	a, b := countsFromResult(plain), countsFromResult(combined)
	if len(a) != len(b) {
		t.Fatalf("different key counts: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Errorf("combiner changed count[%d]: %d vs %d", k, b[k], v)
		}
	}
	// The combiner must reduce shuffle volume on a skewed token set.
	if combined.Counters.Get(CounterShuffleRecords) >= plain.Counters.Get(CounterShuffleRecords) {
		t.Errorf("combiner did not reduce shuffle records: %d vs %d",
			combined.Counters.Get(CounterShuffleRecords), plain.Counters.Get(CounterShuffleRecords))
	}
}

func TestEngineCounters(t *testing.T) {
	fs := dfs.New(0)
	writeTokens(fs, "/in", []int{1, 1, 2})
	res, err := wordCountJob(fs, "/in", false).Run()
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if got := c.Get(CounterMapInputRecords); got != 1 {
		t.Errorf("map input records = %d, want 1 line", got)
	}
	if got := c.Get(CounterMapOutputRecords); got != 3 {
		t.Errorf("map output records = %d, want 3", got)
	}
	if got := c.Get(CounterReduceInputGroups); got != 2 {
		t.Errorf("reduce groups = %d, want 2", got)
	}
	if got := c.Get(CounterReduceOutput); got != 2 {
		t.Errorf("reduce output = %d, want 2", got)
	}
	if got := c.Get(CounterShuffleBytes); got != 3*16 {
		t.Errorf("shuffle bytes = %d, want 48 (3 records × 8B key + 8B value)", got)
	}
}

func TestDatasetReadAccounting(t *testing.T) {
	fs := dfs.New(0)
	writeTokens(fs, "/in", []int{1, 2, 3})
	fs.ResetCounters()
	if _, err := wordCountJob(fs, "/in", false).Run(); err != nil {
		t.Fatal(err)
	}
	if got := fs.DatasetReads(); got != 1 {
		t.Errorf("DatasetReads = %d, want exactly 1 per job", got)
	}
}

func TestMapperErrorFailsJob(t *testing.T) {
	fs := dfs.New(0)
	fs.WriteLines("/in", []string{"not-a-number"})
	_, err := wordCountJob(fs, "/in", false).Run()
	if err == nil {
		t.Fatal("expected job failure")
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T, want *TaskError", err)
	}
	if te.Kind != MapTask {
		t.Errorf("failing kind = %s, want map", te.Kind)
	}
}

func TestReducerHeapExhaustionFailsJob(t *testing.T) {
	fs := dfs.New(0)
	writeTokens(fs, "/in", []int{5, 5, 5, 5, 5, 5, 5, 5})
	job := wordCountJob(fs, "/in", false)
	job.Cluster.TaskHeapBytes = 100
	job.NewReducer = func() Reducer {
		return ReducerFunc(func(ctx *TaskContext, key int64, values []Value, emit Emitter) error {
			// Model 64 bytes per value, like the paper's TestClusters
			// reducer: 8 values × 64 B = 512 B > 100 B budget.
			return ctx.ReserveHeap(int64(len(values)) * 64)
		})
	}
	_, err := job.Run()
	if !errors.Is(err, ErrHeapSpace) {
		t.Fatalf("err = %v, want ErrHeapSpace", err)
	}
	var te *TaskError
	if !errors.As(err, &te) || te.Kind != ReduceTask {
		t.Errorf("heap failure should come from a reduce task: %v", err)
	}
}

func TestHeapReserveRelease(t *testing.T) {
	ctx := &TaskContext{heapBudget: 100, counters: NewCounters()}
	if err := ctx.ReserveHeap(60); err != nil {
		t.Fatal(err)
	}
	if err := ctx.ReserveHeap(60); !errors.Is(err, ErrHeapSpace) {
		t.Fatalf("over-budget reserve: err = %v", err)
	}
	ctx.ReleaseHeap(30)
	if err := ctx.ReserveHeap(60); err != nil {
		t.Fatalf("reserve after release: %v", err)
	}
	if ctx.HeapPeak() != 90 {
		t.Errorf("HeapPeak = %d, want 90", ctx.HeapPeak())
	}
	ctx.ReleaseHeap(1000)
	if ctx.HeapUsed() != 0 {
		t.Errorf("HeapUsed after big release = %d, want 0", ctx.HeapUsed())
	}
}

func TestNumReducersControlsPartitions(t *testing.T) {
	fs := dfs.New(0)
	writeTokens(fs, "/in", []int{0, 1, 2, 3, 4, 5, 6, 7})
	job := wordCountJob(fs, "/in", false)
	job.NumReducers = 3
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ReduceTasks != 3 {
		t.Errorf("ReduceTasks = %d, want 3", res.ReduceTasks)
	}
	if got := countsFromResult(res); len(got) != 8 {
		t.Errorf("keys = %d, want 8", len(got))
	}
}

func TestDefaultPartitionerNegativeKeys(t *testing.T) {
	for _, k := range []int64{-1, -17, -1 << 62, 0, 5, 1 << 62} {
		p := DefaultPartitioner(k, 7)
		if p < 0 || p >= 7 {
			t.Errorf("partition(%d) = %d out of range", k, p)
		}
	}
}

func TestMapperSetupCloseLifecycle(t *testing.T) {
	fs := dfs.New(8) // several splits
	fs.WriteLines("/in", []string{"1 1", "2 2", "3 3"})
	var mu = make(chan string, 100)
	job := &Job{
		Name:    "lifecycle",
		FS:      fs,
		Cluster: testCluster(),
		Input:   []string{"/in"},
		NewMapper: func() Mapper {
			return &lifecycleMapper{events: mu}
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key int64, values []Value, emit Emitter) error {
				emit.Emit(key, Int64Value(len(values)))
				return nil
			})
		},
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	close(mu)
	var setups, closes int
	for ev := range mu {
		switch ev {
		case "setup":
			setups++
		case "close":
			closes++
		}
	}
	if setups != res.MapTasks || closes != res.MapTasks {
		t.Errorf("setups=%d closes=%d, want %d each", setups, closes, res.MapTasks)
	}
	// Close-emitted trailing pair must be present: key 99 appears once per
	// map task.
	got := countsFromResult(res)
	if got[99] != int64(res.MapTasks) {
		t.Errorf("close-emitted key 99 count = %d, want %d", got[99], res.MapTasks)
	}
}

type lifecycleMapper struct {
	events chan string
}

func (m *lifecycleMapper) Setup(*TaskContext) error {
	m.events <- "setup"
	return nil
}

func (m *lifecycleMapper) Map(ctx *TaskContext, rec Record, emit Emitter) error {
	for _, tok := range strings.Fields(rec.Line) {
		n, _ := strconv.ParseInt(tok, 10, 64)
		emit.Emit(n, Int64Value(1))
	}
	return nil
}

func (m *lifecycleMapper) Close(ctx *TaskContext, emit Emitter) error {
	m.events <- "close"
	emit.Emit(99, Int64Value(1))
	return nil
}

func TestJobValidation(t *testing.T) {
	fs := dfs.New(0)
	fs.WriteLines("/in", []string{"1"})
	base := wordCountJob(fs, "/in", false)

	bad := *base
	bad.FS = nil
	if _, err := bad.Run(); err == nil {
		t.Error("nil FS accepted")
	}
	bad = *base
	bad.Input = nil
	if _, err := bad.Run(); err == nil {
		t.Error("empty input accepted")
	}
	bad = *base
	bad.NewMapper = nil
	if _, err := bad.Run(); err == nil {
		t.Error("nil mapper accepted")
	}
	bad = *base
	bad.NewReducer = nil
	if _, err := bad.Run(); err == nil {
		t.Error("nil reducer accepted")
	}
	bad = *base
	bad.Cluster.Nodes = 0
	if _, err := bad.Run(); err == nil {
		t.Error("zero-node cluster accepted")
	}
	bad = *base
	bad.Input = []string{"/missing"}
	if _, err := bad.Run(); err == nil {
		t.Error("missing input accepted")
	}
}

func TestClusterValidateAndDerived(t *testing.T) {
	c := DefaultCluster()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.MapCapacity() != c.Nodes*c.MapSlotsPerNode {
		t.Error("MapCapacity mismatch")
	}
	if c.ReduceCapacity() != c.Nodes*c.ReduceSlotsPerNode {
		t.Error("ReduceCapacity mismatch")
	}
	if c.PlannableHeap() != int64(float64(c.TaskHeapBytes)*c.MaxHeapUsage) {
		t.Error("PlannableHeap mismatch")
	}
	if c2 := c.WithNodes(12); c2.Nodes != 12 || c.Nodes != 4 {
		t.Error("WithNodes should copy")
	}
	if c2 := c.WithTaskHeap(42); c2.TaskHeapBytes != 42 || c.TaskHeapBytes == 42 {
		t.Error("WithTaskHeap should copy")
	}
	for _, bad := range []Cluster{
		{Nodes: 0, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, TaskHeapBytes: 1, MaxHeapUsage: 0.5},
		{Nodes: 1, MapSlotsPerNode: 0, ReduceSlotsPerNode: 1, TaskHeapBytes: 1, MaxHeapUsage: 0.5},
		{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 0, TaskHeapBytes: 1, MaxHeapUsage: 0.5},
		{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, TaskHeapBytes: 0, MaxHeapUsage: 0.5},
		{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, TaskHeapBytes: 1, MaxHeapUsage: 1.5},
		// Non-finite heap fractions: NaN fails both halves of a naive
		// `<= 0 || > 1` range check, so it used to slip through.
		{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, TaskHeapBytes: 1, MaxHeapUsage: math.NaN()},
		{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, TaskHeapBytes: 1, MaxHeapUsage: math.Inf(1)},
		{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, TaskHeapBytes: 1, MaxHeapUsage: math.Inf(-1)},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid cluster accepted: %+v", bad)
		}
	}
}

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	c.Add("a", 2)
	c.Add("a", 3)
	c.Add("b", 1)
	if c.Get("a") != 5 || c.Get("b") != 1 || c.Get("zzz") != 0 {
		t.Error("counter arithmetic wrong")
	}
	snap := c.Snapshot()
	snap["a"] = 99
	if c.Get("a") != 5 {
		t.Error("Snapshot exposed internal map")
	}
	other := NewCounters()
	other.Add("a", 1)
	c.MergeInto(other)
	if other.Get("a") != 6 || other.Get("b") != 1 {
		t.Error("MergeInto wrong")
	}
	names := c.Names()
	if !sort.StringsAreSorted(names) || len(names) != 2 {
		t.Errorf("Names = %v", names)
	}
}

func TestSortedOutput(t *testing.T) {
	res := &Result{Output: []KV{{Key: 5, Value: Int64Value(1)}, {Key: 1, Value: Int64Value(2)}, {Key: 3, Value: Int64Value(3)}}}
	sorted := res.SortedOutput()
	if sorted[0].Key != 1 || sorted[1].Key != 3 || sorted[2].Key != 5 {
		t.Errorf("SortedOutput = %v", sorted)
	}
	if res.Output[0].Key != 5 {
		t.Error("SortedOutput mutated original")
	}
}

func TestValueByteSizes(t *testing.T) {
	if (Float64Value(1)).ByteSize() != 8 {
		t.Error("Float64Value size")
	}
	if (Int64Value(1)).ByteSize() != 8 {
		t.Error("Int64Value size")
	}
	if (BoolValue(true)).ByteSize() != 1 {
		t.Error("BoolValue size")
	}
	if (PointValue{Coords: []float64{1, 2}}).ByteSize() != 16 {
		t.Error("PointValue size")
	}
	if (ADDecisionValue{}).ByteSize() != 17 {
		t.Error("ADDecisionValue size")
	}
	if NewWeightedPointValue([]float64{1, 2, 3}).ByteSize() != 40 {
		t.Error("WeightedPointValue size")
	}
}

// TestPropShuffleExactlyOnce: for random token streams and random split
// sizes, every emitted pair reaches exactly one reducer exactly once —
// verified by comparing against a sequential count.
func TestPropShuffleExactlyOnce(t *testing.T) {
	f := func(seed int64, splitRaw, reducersRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		tokens := make([]int, n)
		want := map[int64]int64{}
		for i := range tokens {
			tokens[i] = r.Intn(20)
			want[int64(tokens[i])]++
		}
		fs := dfs.New(1 + int(splitRaw)%64)
		writeTokens(fs, "/in", tokens)
		job := wordCountJob(fs, "/in", r.Intn(2) == 0)
		job.NumReducers = 1 + int(reducersRaw)%8
		res, err := job.Run()
		if err != nil {
			return false
		}
		got := countsFromResult(res)
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropCombinerTransparency: for an associative, commutative reduction
// the combiner must never change job output, for any cluster shape.
func TestPropCombinerTransparency(t *testing.T) {
	f := func(seed int64, nodesRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tokens := make([]int, 1+r.Intn(300))
		for i := range tokens {
			tokens[i] = r.Intn(15)
		}
		fs := dfs.New(1 + r.Intn(50))
		writeTokens(fs, "/in", tokens)

		mk := func(combine bool) map[int64]int64 {
			job := wordCountJob(fs, "/in", combine)
			job.Cluster.Nodes = 1 + int(nodesRaw)%6
			res, err := job.Run()
			if err != nil {
				return nil
			}
			return countsFromResult(res)
		}
		a, b := mk(false), mk(true)
		if a == nil || b == nil || len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDeterministicOutputAcrossRuns guards the engine's deterministic
// merge-order property, which the G-means candidate sampling relies on for
// reproducible runs.
func TestDeterministicOutputAcrossRuns(t *testing.T) {
	fs := dfs.New(16)
	r := rand.New(rand.NewSource(9))
	tokens := make([]int, 300)
	for i := range tokens {
		tokens[i] = r.Intn(30)
	}
	writeTokens(fs, "/in", tokens)
	run := func() string {
		res, err := wordCountJob(fs, "/in", true).Run()
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, kv := range res.SortedOutput() {
			fmt.Fprintf(&sb, "%d=%d;", kv.Key, int64(kv.Value.(Int64Value)))
		}
		return sb.String()
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}

func TestMultipleInputFiles(t *testing.T) {
	fs := dfs.New(0)
	writeTokens(fs, "/a", []int{1, 1, 2})
	writeTokens(fs, "/b", []int{2, 3, 3})
	job := wordCountJob(fs, "/a", false)
	job.Input = []string{"/a", "/b"}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := countsFromResult(res)
	want := map[int64]int64{1: 2, 2: 2, 3: 2}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%d] = %d, want %d", k, got[k], v)
		}
	}
	// Two inputs ⇒ two dataset reads for this single job.
	fs.ResetCounters()
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	if got := fs.DatasetReads(); got != 2 {
		t.Errorf("DatasetReads = %d, want 2", got)
	}
}

func TestNegativeKeysRouteAndGroup(t *testing.T) {
	fs := dfs.New(0)
	fs.WriteLines("/in", []string{"x"})
	job := &Job{
		Name:    "negkeys",
		FS:      fs,
		Cluster: testCluster(),
		Input:   []string{"/in"},
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, rec Record, emit Emitter) error {
				emit.Emit(-5, Int64Value(1))
				emit.Emit(-5, Int64Value(1))
				emit.Emit(-1<<62, Int64Value(1))
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key int64, values []Value, emit Emitter) error {
				emit.Emit(key, Int64Value(len(values)))
				return nil
			})
		},
		NumReducers: 4,
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := countsFromResult(res)
	if got[-5] != 2 || got[-1<<62] != 1 {
		t.Errorf("negative-key grouping = %v", got)
	}
}

func TestReducerErrorFailsJob(t *testing.T) {
	fs := dfs.New(0)
	writeTokens(fs, "/in", []int{1})
	job := wordCountJob(fs, "/in", false)
	job.NewReducer = func() Reducer {
		return ReducerFunc(func(ctx *TaskContext, key int64, values []Value, emit Emitter) error {
			return errors.New("boom")
		})
	}
	_, err := job.Run()
	var te *TaskError
	if !errors.As(err, &te) || te.Kind != ReduceTask {
		t.Fatalf("err = %v, want reduce TaskError", err)
	}
}

func TestCombinerErrorFailsJob(t *testing.T) {
	fs := dfs.New(0)
	writeTokens(fs, "/in", []int{1, 1})
	job := wordCountJob(fs, "/in", false)
	job.NewCombiner = func() Reducer {
		return ReducerFunc(func(ctx *TaskContext, key int64, values []Value, emit Emitter) error {
			return errors.New("combiner boom")
		})
	}
	_, err := job.Run()
	var te *TaskError
	if !errors.As(err, &te) || te.Kind != MapTask {
		t.Fatalf("combiner failures surface as map-task errors, got %v", err)
	}
}

func TestOffsetKeysSurviveShuffle(t *testing.T) {
	// The 2^62 OFFSET trick of KMeansAndFindNewCenters depends on huge
	// keys shuffling intact.
	const offset = int64(1) << 62
	fs := dfs.New(0)
	fs.WriteLines("/in", []string{"x", "y"})
	job := &Job{
		Name:    "offset",
		FS:      fs,
		Cluster: testCluster(),
		Input:   []string{"/in"},
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, rec Record, emit Emitter) error {
				emit.Emit(3, Int64Value(1))
				emit.Emit(3+offset, Int64Value(1))
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key int64, values []Value, emit Emitter) error {
				emit.Emit(key, Int64Value(len(values)))
				return nil
			})
		},
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := countsFromResult(res)
	if got[3] != 2 || got[3+offset] != 2 {
		t.Errorf("offset keys mangled: %v", got)
	}
}
