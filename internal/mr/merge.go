package mr

import "slices"

// Reduce-side merge.
//
// Each map task hands the reduce phase one key-sorted run per partition.
// The engine's contract — relied on by the G-means candidate sampling for
// reproducible runs — is that a reduce task sees its records ordered by
// key, with ties ordered by map-task id and, within one task, by emission
// order. The historical implementation concatenated the runs in task order
// and stable-sorted the result (O(n log n) comparisons over the full
// record count). MergeRuns produces the identical sequence with a k-way
// heap merge over the already-sorted runs: O(n log r) comparisons for r
// runs, and no re-examination of the order that already exists inside each
// run. ConcatSortRuns keeps the old formulation alive as the measured
// baseline of BenchmarkReduceMerge and the oracle of the equivalence test.

// runHeap is a binary min-heap of run indices, ordered by each run's
// current head key with the run index itself as the tie-break. Keeping the
// comparison on (key, run) is exactly what makes the merge reproduce
// concat + stable sort: among equal keys the lowest map-task id wins, and
// records of one task stay in emission order because only the head of each
// run is ever eligible.
type runHeap struct {
	runs [][]KV // remaining (unconsumed) suffix of each run
	heap []int  // run indices, heap-ordered
}

func (h *runHeap) less(a, b int) bool {
	ka, kb := h.runs[a][0].Key, h.runs[b][0].Key
	if ka != kb {
		return ka < kb
	}
	return a < b
}

func (h *runHeap) push(r int) {
	h.heap = append(h.heap, r)
	i := len(h.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.heap[i], h.heap[parent]) {
			break
		}
		h.heap[i], h.heap[parent] = h.heap[parent], h.heap[i]
		i = parent
	}
}

// fix restores the heap property at the root after its run's head advanced
// (or the run emptied, in which case the root is removed first).
func (h *runHeap) fix() {
	n := len(h.heap)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.heap[l], h.heap[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.heap[r], h.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.heap[i], h.heap[smallest] = h.heap[smallest], h.heap[i]
		i = smallest
	}
}

// MergeRuns merges per-task key-sorted runs into one key-sorted sequence,
// breaking key ties by run index and preserving within-run order — the
// byte-for-byte order ConcatSortRuns produces. Runs must individually be
// key-sorted (the map phase guarantees this); empty or nil runs are fine.
func MergeRuns(runs [][]KV) []KV {
	total := 0
	live := 0
	lastLive := -1
	for i, run := range runs {
		total += len(run)
		if len(run) > 0 {
			live++
			lastLive = i
		}
	}
	if total == 0 {
		return nil
	}
	out := make([]KV, 0, total)
	if live == 1 {
		return append(out, runs[lastLive]...)
	}
	h := &runHeap{runs: make([][]KV, len(runs)), heap: make([]int, 0, live)}
	copy(h.runs, runs)
	for i, run := range h.runs {
		if len(run) > 0 {
			h.push(i)
		}
	}
	for len(h.heap) > 0 {
		r := h.heap[0]
		out = append(out, h.runs[r][0])
		h.runs[r] = h.runs[r][1:]
		if len(h.runs[r]) == 0 {
			last := len(h.heap) - 1
			h.heap[0] = h.heap[last]
			h.heap = h.heap[:last]
		}
		h.fix()
	}
	return out
}

// ConcatSortRuns is the historical reduce-side merge: concatenate the runs
// in task order, then stable-sort by key. Kept as the measured baseline of
// BenchmarkReduceMerge and as the oracle MergeRuns is equivalence-tested
// against; the engine itself merges with MergeRuns.
func ConcatSortRuns(runs [][]KV) []KV {
	var merged []KV
	for _, run := range runs {
		merged = append(merged, run...)
	}
	slices.SortStableFunc(merged, byKey)
	return merged
}
