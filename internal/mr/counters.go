package mr

import (
	"sort"
	"sync"
)

// Standard counter names maintained by the engine itself. Jobs add their
// own domain counters (e.g. distance computations) under their own names.
const (
	CounterMapInputRecords    = "mr.map.input.records"
	CounterMapOutputRecords   = "mr.map.output.records"
	CounterMapOutputBytes     = "mr.map.output.bytes"
	CounterCombineInput       = "mr.combine.input.records"
	CounterCombineOutput      = "mr.combine.output.records"
	CounterShuffleBytes       = "mr.shuffle.bytes"
	CounterShuffleRecords     = "mr.shuffle.records"
	CounterReduceInputGroups  = "mr.reduce.input.groups"
	CounterReduceInputRecords = "mr.reduce.input.records"
	CounterReduceOutput       = "mr.reduce.output.records"
)

// Counters is a concurrency-safe named-counter set, the equivalent of
// Hadoop job counters. Tasks increment; the driver reads the merged totals
// after the job completes.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// Add increments the named counter by delta.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the current value of the named counter (0 when absent).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// MergeInto adds every counter of c into dst. Used by drivers that
// aggregate counters across the chained jobs of one algorithm run.
func (c *Counters) MergeInto(dst *Counters) {
	for name, v := range c.Snapshot() {
		dst.Add(name, v)
	}
}

// Names returns the sorted counter names, for stable reporting.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
