package mr

import (
	"sort"
	"sync"
)

// Standard counter names maintained by the engine itself. Jobs add their
// own domain counters (e.g. distance computations) under their own names.
const (
	CounterMapInputRecords    = "mr.map.input.records"
	CounterMapOutputRecords   = "mr.map.output.records"
	CounterMapOutputBytes     = "mr.map.output.bytes"
	CounterCombineInput       = "mr.combine.input.records"
	CounterCombineOutput      = "mr.combine.output.records"
	CounterShuffleBytes       = "mr.shuffle.bytes"
	CounterShuffleRecords     = "mr.shuffle.records"
	CounterReduceInputGroups  = "mr.reduce.input.groups"
	CounterReduceInputRecords = "mr.reduce.input.records"
	CounterReduceOutput       = "mr.reduce.output.records"
)

// CounterID is the interned form of a counter name: a small dense integer
// that indexes the slice-backed counter stores. Hot paths (per-record
// mapper loops, the spill/combine bookkeeping) tick counters by ID and
// never hash a string; the string API remains for reporting and for call
// sites that don't care.
type CounterID int32

// counterRegistry is the process-wide name ↔ ID intern table. IDs are
// dense and never reused, so slice-backed stores can index by ID directly.
var counterRegistry = struct {
	sync.RWMutex
	ids   map[string]CounterID
	names []string
}{ids: make(map[string]CounterID)}

// InternCounter returns the stable CounterID for name, registering it on
// first use. Packages intern their counter names once (package-level vars)
// and tick by ID thereafter.
func InternCounter(name string) CounterID {
	counterRegistry.RLock()
	id, ok := counterRegistry.ids[name]
	counterRegistry.RUnlock()
	if ok {
		return id
	}
	counterRegistry.Lock()
	defer counterRegistry.Unlock()
	if id, ok := counterRegistry.ids[name]; ok {
		return id
	}
	id = CounterID(len(counterRegistry.names))
	counterRegistry.ids[name] = id
	counterRegistry.names = append(counterRegistry.names, name)
	return id
}

// CounterName returns the name interned as id, or "" for an unknown id.
func CounterName(id CounterID) string {
	counterRegistry.RLock()
	defer counterRegistry.RUnlock()
	if id < 0 || int(id) >= len(counterRegistry.names) {
		return ""
	}
	return counterRegistry.names[id]
}

// Pre-interned IDs of the engine's own counters, used by the scheduler's
// per-task bookkeeping.
var (
	idMapInputRecords    = InternCounter(CounterMapInputRecords)
	idMapOutputRecords   = InternCounter(CounterMapOutputRecords)
	idMapOutputBytes     = InternCounter(CounterMapOutputBytes)
	idCombineInput       = InternCounter(CounterCombineInput)
	idCombineOutput      = InternCounter(CounterCombineOutput)
	idShuffleBytes       = InternCounter(CounterShuffleBytes)
	idShuffleRecords     = InternCounter(CounterShuffleRecords)
	idReduceInputGroups  = InternCounter(CounterReduceInputGroups)
	idReduceInputRecords = InternCounter(CounterReduceInputRecords)
	idReduceOutput       = InternCounter(CounterReduceOutput)
)

// Counters is a concurrency-safe counter set, the equivalent of Hadoop job
// counters, stored as a slice indexed by CounterID. Tasks increment; the
// driver reads the merged totals after the job completes. A counter is
// reported (Snapshot, Names) once it has been added to, even with a zero
// delta — matching Hadoop, where a counter exists from first touch.
type Counters struct {
	mu      sync.Mutex
	vals    []int64
	touched []bool
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{} }

// grow extends the stores to cover id. Callers hold c.mu.
func (c *Counters) grow(id CounterID) {
	if int(id) < len(c.vals) {
		return
	}
	vals := make([]int64, id+1)
	copy(vals, c.vals)
	c.vals = vals
	touched := make([]bool, id+1)
	copy(touched, c.touched)
	c.touched = touched
}

// AddID increments the counter interned as id by delta.
func (c *Counters) AddID(id CounterID, delta int64) {
	if id < 0 {
		return
	}
	c.mu.Lock()
	c.grow(id)
	c.vals[id] += delta
	c.touched[id] = true
	c.mu.Unlock()
}

// Add increments the named counter by delta.
func (c *Counters) Add(name string, delta int64) {
	c.AddID(InternCounter(name), delta)
}

// GetID returns the current value of the counter interned as id.
func (c *Counters) GetID(id CounterID) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || int(id) >= len(c.vals) {
		return 0
	}
	return c.vals[id]
}

// Get returns the current value of the named counter (0 when absent).
func (c *Counters) Get(name string) int64 {
	return c.GetID(InternCounter(name))
}

// Snapshot returns a copy of all counters that have been added to.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.vals))
	for id, v := range c.vals {
		if c.touched[id] {
			out[CounterName(CounterID(id))] = v
		}
	}
	return out
}

// MergeInto adds every counter of c into dst. Used by drivers that
// aggregate counters across the chained jobs of one algorithm run.
func (c *Counters) MergeInto(dst *Counters) {
	c.mu.Lock()
	vals := make([]int64, len(c.vals))
	copy(vals, c.vals)
	touched := make([]bool, len(c.touched))
	copy(touched, c.touched)
	c.mu.Unlock()
	for id, v := range vals {
		if touched[id] {
			dst.AddID(CounterID(id), v)
		}
	}
}

// CounterValue is one (name, value) pair of a sorted counter snapshot.
type CounterValue struct {
	Name  string
	Value int64
}

// Sorted returns every counter added to, sorted by name. This is the one
// place counter ordering is decided: Names and every reporting call site
// derive from it rather than re-sorting their own view.
func (c *Counters) Sorted() []CounterValue {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CounterValue, 0, len(c.vals))
	for id, v := range c.vals {
		if c.touched[id] {
			out = append(out, CounterValue{Name: CounterName(CounterID(id)), Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted names of every counter added to, for stable
// reporting.
func (c *Counters) Names() []string {
	sorted := c.Sorted()
	out := make([]string, len(sorted))
	for i, cv := range sorted {
		out[i] = cv.Name
	}
	return out
}
