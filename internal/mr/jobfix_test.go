package mr

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"gmeansmr/internal/dfs"
)

// offsetMapper records every (offset, line) pair it sees.
type offsetMapper struct {
	mu      *sync.Mutex
	seen    map[int64]string
	emitKey int64
}

func (m *offsetMapper) Setup(*TaskContext) error { return nil }

func (m *offsetMapper) Map(_ *TaskContext, rec Record, emit Emitter) error {
	m.mu.Lock()
	m.seen[rec.Offset] = rec.Line
	m.mu.Unlock()
	emit.Emit(m.emitKey, Int64Value(1))
	return nil
}

func (m *offsetMapper) Close(*TaskContext, Emitter) error { return nil }

// TestRecordOffsetsAcrossSplits is the engine-level regression test for
// the split-relative Record.Offset drift: with many splits (and CRLF
// terminators), every record must arrive with its true byte offset — the
// contract of Hadoop's TextInputFormat offset key.
func TestRecordOffsetsAcrossSplits(t *testing.T) {
	for _, crlf := range []bool{false, true} {
		records := []string{"10", "2002", "3", "40444", "55", "6", "777777", "88"}
		sep := "\n"
		if crlf {
			sep = "\r\n"
		}
		var b strings.Builder
		want := map[int64]string{}
		for _, rec := range records {
			want[int64(b.Len())] = rec
			b.WriteString(rec)
			b.WriteString(sep)
		}
		fs := dfs.New(6) // several splits, records straddling boundaries
		fs.Create("/in", []byte(b.String()))

		mu := &sync.Mutex{}
		seen := map[int64]string{}
		job := &Job{
			Name:    "offsets",
			FS:      fs,
			Cluster: testCluster(),
			Input:   []string{"/in"},
			NewMapper: func() Mapper {
				return &offsetMapper{mu: mu, seen: seen}
			},
			NewReducer: func() Reducer {
				return ReducerFunc(func(_ *TaskContext, key int64, values []Value, emit Emitter) error {
					emit.Emit(key, Int64Value(len(values)))
					return nil
				})
			},
		}
		res, err := job.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.MapTasks < 2 {
			t.Fatalf("crlf=%v: want a multi-split job, got %d map tasks", crlf, res.MapTasks)
		}
		if len(seen) != len(want) {
			t.Fatalf("crlf=%v: saw %d distinct offsets, want %d: %v", crlf, len(seen), len(want), seen)
		}
		for off, rec := range want {
			if seen[off] != rec {
				t.Errorf("crlf=%v: offset %d carried %q, want %q", crlf, off, seen[off], rec)
			}
		}
	}
}

// TestDatasetReadNotTickedForEmptyInput: an empty file yields no splits,
// so no map task ever scans it — it must not count as a dataset read.
func TestDatasetReadNotTickedForEmptyInput(t *testing.T) {
	fs := dfs.New(0)
	writeTokens(fs, "/data", []int{1, 2, 3})
	fs.Create("/empty", nil)
	fs.ResetCounters()

	job := wordCountJob(fs, "/data", false)
	job.Input = []string{"/empty", "/data"}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := fs.DatasetReads(); got != 1 {
		t.Errorf("DatasetReads = %d, want 1 (only the non-empty input is scanned)", got)
	}
	if got := countsFromResult(res); got[1] != 1 || got[2] != 1 || got[3] != 1 {
		t.Errorf("output = %v", got)
	}

	// A job whose only input is empty scans nothing at all.
	fs.ResetCounters()
	onlyEmpty := wordCountJob(fs, "/empty", false)
	res, err = onlyEmpty.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := fs.DatasetReads(); got != 0 {
		t.Errorf("DatasetReads = %d, want 0 for an empty-only job", got)
	}
	if len(res.Output) != 0 || res.MapTasks != 0 {
		t.Errorf("empty-input job produced output=%v mapTasks=%d", res.Output, res.MapTasks)
	}
}

// TestDatasetReadNotTickedWhenCancelledBeforeWave: a job cancelled before
// its map wave starts never reads the dataset, so the paper's read counter
// must not move.
func TestDatasetReadNotTickedWhenCancelledBeforeWave(t *testing.T) {
	fs := dfs.New(0)
	writeTokens(fs, "/in", []int{1, 2, 3})
	fs.ResetCounters()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job := wordCountJob(fs, "/in", false)
	job.Ctx = ctx
	_, err := job.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := fs.DatasetReads(); got != 0 {
		t.Errorf("DatasetReads = %d, want 0 for a run cancelled before the map wave", got)
	}
}

// TestCounterInterning covers the ID-based hot path of the counter system:
// interning is stable, ID and name APIs see the same cells, and a counter
// touched with a zero delta still reports (Hadoop counters exist from
// first touch).
func TestCounterInterning(t *testing.T) {
	idA := InternCounter("test.intern.a")
	if again := InternCounter("test.intern.a"); again != idA {
		t.Fatalf("interning not stable: %d vs %d", idA, again)
	}
	if name := CounterName(idA); name != "test.intern.a" {
		t.Fatalf("CounterName = %q", name)
	}
	if name := CounterName(-1); name != "" {
		t.Fatalf("CounterName(-1) = %q", name)
	}

	c := NewCounters()
	c.AddID(idA, 5)
	c.Add("test.intern.a", 2)
	if got := c.Get("test.intern.a"); got != 7 {
		t.Errorf("mixed ID/name adds = %d, want 7", got)
	}
	if got := c.GetID(idA); got != 7 {
		t.Errorf("GetID = %d, want 7", got)
	}

	// Zero-delta touch reports the counter.
	idB := InternCounter("test.intern.b")
	c.AddID(idB, 0)
	snap := c.Snapshot()
	if v, ok := snap["test.intern.b"]; !ok || v != 0 {
		t.Errorf("zero-touched counter missing from snapshot: %v", snap)
	}
	// Get of a never-touched counter neither reports nor invents it.
	_ = c.Get("test.intern.never")
	for _, name := range c.Names() {
		if name == "test.intern.never" {
			t.Error("Get materialized an untouched counter")
		}
	}
}

// TestTaskContextCountMatchesCounter: the buffered ID path must flush the
// same totals the name path does.
func TestTaskContextCountMatchesCounter(t *testing.T) {
	id := InternCounter("test.ctx.count")
	counters := NewCounters()
	ctx := &TaskContext{counters: counters}
	for i := 0; i < 100; i++ {
		ctx.Count(id, 2)
	}
	ctx.Counter("test.ctx.count", 1)
	if got := counters.Get("test.ctx.count"); got != 0 {
		t.Fatalf("counters visible before flush: %d", got)
	}
	ctx.flushCounters()
	if got := counters.Get("test.ctx.count"); got != 201 {
		t.Fatalf("flushed %d, want 201", got)
	}
}
