package mr

import "gmeansmr/internal/dfs"

// Record is one input record handed to a mapper: a line of the input file
// plus its byte offset, mirroring Hadoop's TextInputFormat (offset key,
// line value).
type Record struct {
	Offset int64
	Line   string
}

// Emitter receives key/value pairs from mappers, combiners and reducers.
// Implementations are not safe for concurrent use; each task owns its own.
type Emitter interface {
	Emit(key int64, value Value)
}

// Mapper processes the records of one input split. One fresh Mapper
// instance is created per map task (via the job's MapperFactory), so
// instances may keep per-task state — the TestFewClusters strategy depends
// on this to buffer projections in the mapper and flush decisions in Close,
// exactly like Hadoop's Mapper.cleanup.
type Mapper interface {
	// Setup runs once before the first record of the task.
	Setup(ctx *TaskContext) error
	// Map processes one record.
	Map(ctx *TaskContext, rec Record, emit Emitter) error
	// Close runs after the last record and may emit trailing pairs.
	Close(ctx *TaskContext, emit Emitter) error
}

// Reducer processes groups of values sharing a key. One fresh Reducer
// instance is created per reduce task. The same interface doubles as the
// combiner contract, as in Hadoop.
type Reducer interface {
	// Setup runs once before the first group of the task.
	Setup(ctx *TaskContext) error
	// Reduce processes one key group. The values slice is owned by the
	// engine and must not be retained after the call returns.
	Reduce(ctx *TaskContext, key int64, values []Value, emit Emitter) error
	// Close runs after the last group.
	Close(ctx *TaskContext, emit Emitter) error
}

// PointMapper is the decoded-input fast path of Mapper: instead of text
// records, the engine feeds the task the cached float64 points of its
// split (see dfs.OpenSplitPoints), so the per-record ParseFloat work of
// the classic path happens at most once per split per job chain. The
// point slice is a read-only view into the shared decode cache: mappers
// must not modify it, but may retain it (e.g. inside emitted values) —
// the backing array is immutable.
type PointMapper interface {
	// Setup runs once before the first point of the task.
	Setup(ctx *TaskContext) error
	// MapPoint processes one decoded point.
	MapPoint(ctx *TaskContext, p []float64, emit Emitter) error
	// Close runs after the last point and may emit trailing pairs —
	// in-mapper combining mappers emit their accumulators here.
	Close(ctx *TaskContext, emit Emitter) error
}

// ColumnarMapper is an optional extension of PointMapper: a point mapper
// that also implements it is handed its whole split at once in dim-major
// (structure-of-arrays) form, so per-split work — nearest-center
// assignment above all — can run as one batched kernel call instead of a
// per-point interface call chasing n row views. The engine prefers
// MapColumns whenever the mapper implements it and the job has not set
// DisableColumnar; Setup and Close still run around it, and MapPoint is
// never called for a split served columnar.
//
// Contract: MapColumns must produce exactly the emissions and counter
// ticks the equivalent MapPoint loop over cols.At(0..Len-1) would — the
// columnar layout is a performance path, never a semantic one. The
// kmeansmr/core equivalence tests pin this (bit-identical centers, sizes
// and counters between the two paths). The cols view is read-only, shared
// with the decode cache, and may be retained, like the point slices of
// MapPoint.
type ColumnarMapper interface {
	PointMapper
	// MapColumns processes every point of the split in one call.
	MapColumns(ctx *TaskContext, cols *dfs.ColumnarSplit, emit Emitter) error
}

// MapperFactory builds one Mapper per map task.
type MapperFactory func() Mapper

// PointMapperFactory builds one PointMapper per map task.
type PointMapperFactory func() PointMapper

// ReducerFactory builds one Reducer per reduce (or combine) task.
type ReducerFactory func() Reducer

// Partitioner routes a key to one of numReducers partitions.
type Partitioner func(key int64, numReducers int) int

// DefaultPartitioner is Hadoop's HashPartitioner specialized to int64 keys:
// the key modulo the reducer count, folded to a non-negative index.
func DefaultPartitioner(key int64, numReducers int) int {
	p := int(key % int64(numReducers))
	if p < 0 {
		p += numReducers
	}
	return p
}

// MapperFunc adapts a plain function to the Mapper interface for jobs that
// need no per-task state.
type MapperFunc func(ctx *TaskContext, rec Record, emit Emitter) error

// Setup implements Mapper.
func (MapperFunc) Setup(*TaskContext) error { return nil }

// Map implements Mapper.
func (f MapperFunc) Map(ctx *TaskContext, rec Record, emit Emitter) error {
	return f(ctx, rec, emit)
}

// Close implements Mapper.
func (MapperFunc) Close(*TaskContext, Emitter) error { return nil }

// ReducerFunc adapts a plain function to the Reducer interface.
type ReducerFunc func(ctx *TaskContext, key int64, values []Value, emit Emitter) error

// Setup implements Reducer.
func (ReducerFunc) Setup(*TaskContext) error { return nil }

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(ctx *TaskContext, key int64, values []Value, emit Emitter) error {
	return f(ctx, key, values, emit)
}

// Close implements Reducer.
func (ReducerFunc) Close(*TaskContext, Emitter) error { return nil }
