package mr

import (
	"sort"
	"testing"

	"gmeansmr/internal/dfs"
	"gmeansmr/internal/obs"
)

// TestJobTraceSpans pins the span shape a traced job records: one job
// span carrying the merged counters, one "map" and one "reduce" engine
// phase, and batch-level task spans (map-task, spill, shuffle-merge,
// reduce-task) — never anything per record.
func TestJobTraceSpans(t *testing.T) {
	fs := dfs.New(16)
	writeTokens(fs, "/in", []int{1, 2, 3, 1, 2, 1, 7, 7, 7, 7})
	job := wordCountJob(fs, "/in", true)
	tr := obs.NewTrace()
	job.Trace = tr

	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}

	byName := make(map[string][]obs.SpanEvent)
	for _, ev := range tr.Events() {
		byName[ev.Name] = append(byName[ev.Name], ev)
	}
	for name, wantCount := range map[string]int{
		"job:wordcount": 1,
		"map":           1,
		"reduce":        1,
		"map-task":      res.MapTasks,
		"spill":         res.MapTasks,
		"shuffle-merge": res.ReduceTasks,
		"reduce-task":   res.ReduceTasks,
	} {
		if got := len(byName[name]); got != wantCount {
			t.Errorf("span %q count = %d, want %d", name, got, wantCount)
		}
	}

	job2 := byName["job:wordcount"][0]
	if job2.Cat != "job" {
		t.Errorf("job span cat = %q, want job", job2.Cat)
	}
	// The job span carries every merged counter.
	for _, cv := range res.Counters.Sorted() {
		if _, ok := job2.Args[cv.Name]; !ok {
			t.Errorf("job span missing counter arg %q", cv.Name)
		}
	}
	// Map tasks report records and byte throughput inputs.
	for _, ev := range byName["map-task"] {
		if ev.Cat != "task" {
			t.Errorf("map-task cat = %q, want task", ev.Cat)
		}
		for _, key := range []string{"records", "out_records", "out_bytes"} {
			if _, ok := ev.Args[key]; !ok {
				t.Errorf("map-task span missing arg %q", key)
			}
		}
	}
	for _, ev := range byName["reduce-task"] {
		for _, key := range []string{"groups", "records", "out_records"} {
			if _, ok := ev.Args[key]; !ok {
				t.Errorf("reduce-task span missing arg %q", key)
			}
		}
	}

	// The same job without a trace records nothing and still works.
	job3 := wordCountJob(fs, "/in", true)
	if _, err := job3.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCountersSorted pins the single-sort-site contract: Sorted returns
// name-ordered pairs and Names derives from it.
func TestCountersSorted(t *testing.T) {
	c := NewCounters()
	c.Add("z.last", 3)
	c.Add("a.first", 1)
	c.Add("m.middle", 0) // touched with zero delta still reports

	sorted := c.Sorted()
	if len(sorted) != 3 {
		t.Fatalf("Sorted returned %d entries, want 3", len(sorted))
	}
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name }) {
		t.Errorf("Sorted is not name-ordered: %v", sorted)
	}
	if sorted[0].Name != "a.first" || sorted[0].Value != 1 {
		t.Errorf("sorted[0] = %+v", sorted[0])
	}
	names := c.Names()
	for i, cv := range sorted {
		if names[i] != cv.Name {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], cv.Name)
		}
	}
}
