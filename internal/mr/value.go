// Package mr is an in-process MapReduce engine modeled on Hadoop 1.x, the
// execution substrate of the reproduced paper. It provides:
//
//   - jobs composed of a mapper, an optional combiner, a partitioner and a
//     reducer, fed by splits of a simulated DFS file (package dfs);
//   - a sort-based shuffle with byte accounting, so shuffle volume — a
//     first-class cost in the paper's analysis — is measurable;
//   - a simulated cluster: N nodes × map/reduce slots, enforced by bounded
//     worker pools, so node-scaling experiments (paper Table 4 / Fig. 5)
//     exercise real parallelism;
//   - per-task heap budgets with a "Java heap space"-equivalent failure
//     mode, which reproduces the reducer-memory experiment (paper Fig. 2);
//   - counters, the standard Hadoop mechanism jobs use to ship small
//     aggregates (cluster sizes, test decisions) back to the driver.
//
// Keys are int64, exactly as in the paper ("the type of center id is a Java
// Long"), which is what makes the OFFSET = 2^62 keying trick of
// KMeansAndFindNewCenters representable.
//
// # Contract
//
// Input fast paths. Jobs read their input one of three ways, in order of
// increasing batching: NewMapper feeds text records (offset + line, the
// TextInputFormat shape); NewPointMapper feeds decoded float64 points
// served from the DFS split cache, so parsing happens at most once per
// (file, split); a PointMapper that also implements ColumnarMapper
// receives each split once, whole, in dim-major form — the layer the
// batched vec kernels plug into. All three paths must compute the same
// thing: the fast paths are performance routes, never semantic ones, and
// the equivalence tests in kmeansmr/core pin bit-identical results across
// them. Job.DisableColumnar forces the per-point route where a batched
// kernel does not apply (kd-tree-accelerated lookups) or when pinning the
// paths against each other.
//
// Counter interning. Counters are addressed by name through a string API,
// but per-record hot loops must not pay a map lookup per tick: intern the
// name once with InternCounter and tick the returned dense ID through
// TaskContext.Count. Interned IDs are process-global and stable for the
// process lifetime.
//
// Determinism. For a fixed input layout and job configuration, output is
// byte-for-byte deterministic regardless of goroutine scheduling: map
// runs are combined and key-sorted per task, the reduce merge breaks key
// ties by map-task id, and reducer output concatenates in partition
// order. Nothing in the engine may trade this away — the node-scaling
// experiments and every equivalence pin in the repository rely on it.
package mr

import "gmeansmr/internal/vec"

// Value is the payload type flowing through the shuffle. ByteSize reports
// the serialized size under the engine's wire model and drives the
// shuffle-volume counters; it should approximate what a Hadoop Writable
// would occupy.
type Value interface {
	ByteSize() int
}

// KV is one key/value pair.
type KV struct {
	Key   int64
	Value Value
}

// Float64Value wraps a double, e.g. a point's scalar projection.
type Float64Value float64

// ByteSize is 8 bytes, the size of an IEEE 754 double on the wire.
func (Float64Value) ByteSize() int { return 8 }

// Int64Value wraps a long, e.g. a count.
type Int64Value int64

// ByteSize is 8 bytes, the size of a long on the wire.
func (Int64Value) ByteSize() int { return 8 }

// BoolValue wraps a boolean decision, e.g. "this cluster looks Gaussian".
type BoolValue bool

// ByteSize is 1 byte.
func (BoolValue) ByteSize() int { return 1 }

// PointValue carries raw point coordinates, e.g. a candidate center.
type PointValue struct {
	Coords vec.Vector
}

// ByteSize is 8 bytes per coordinate.
func (p PointValue) ByteSize() int { return 8 * len(p.Coords) }

// WeightedPointValue carries a partial centroid sum: coordinates plus a
// count, the classic k-means combiner payload ("coordinates (float[]),
// 1 (int)" in the paper's Algorithm 2).
type WeightedPointValue struct {
	vec.WeightedPoint
}

// NewWeightedPointValue starts an accumulation from a single point,
// copying its coordinates.
func NewWeightedPointValue(p vec.Vector) WeightedPointValue {
	return WeightedPointValue{vec.NewWeightedPoint(p)}
}

// OwnWeightedPointValue wraps p without copying; the caller hands over
// ownership and must not modify p afterwards. Mappers that parse a fresh
// vector per input record use this to avoid one allocation per emitted
// pair — the dominant allocation of every k-means job. Sharing the same
// vector across several emitted values is safe because reducers only
// accumulate *into* their own fresh accumulators.
func OwnWeightedPointValue(p vec.Vector) WeightedPointValue {
	return WeightedPointValue{vec.WeightedPoint{Sum: p, Count: 1}}
}

// ADDecisionValue carries one mapper-side Anderson–Darling outcome for the
// TestFewClusters strategy: the corrected statistic and the sample size it
// was computed on (so the reducer can weight or veto decisions).
type ADDecisionValue struct {
	A2Star float64
	N      int64
	Normal bool
}

// ByteSize is two longs and a byte.
func (ADDecisionValue) ByteSize() int { return 17 }
