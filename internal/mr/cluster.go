package mr

import (
	"fmt"
)

// Cluster describes the simulated Hadoop cluster a job runs on: how many
// nodes, how many map and reduce slots per node, and how much heap each
// task JVM gets. The engine enforces the slot counts with bounded worker
// pools, so a 12-node cluster genuinely runs three times as many
// concurrent tasks as a 4-node one — that is what produces the paper's
// Table 4 / Figure 5 node-scaling behaviour.
//
// The defaults mirror the paper's testbed: nodes with two quad-core Xeons
// running Hadoop 1.x typically configured with slots on the order of the
// core count and ~1 GB task heap.
type Cluster struct {
	// Nodes is the number of worker machines.
	Nodes int
	// MapSlotsPerNode is the number of concurrent map tasks per node.
	MapSlotsPerNode int
	// ReduceSlotsPerNode is the number of concurrent reduce tasks per node.
	ReduceSlotsPerNode int
	// TaskHeapBytes is the JVM heap available to a single task. Tasks that
	// reserve more than this fail with ErrHeapSpace, the engine's
	// equivalent of java.lang.OutOfMemoryError("Java heap space").
	TaskHeapBytes int64
	// MaxHeapUsage is the fraction of TaskHeapBytes the *scheduler* is
	// willing to plan for; the paper uses 0.66 to keep the JVM out of
	// GC-thrash territory. It does not limit what a task may actually
	// reserve — it informs planning decisions such as the G-means strategy
	// switch.
	MaxHeapUsage float64
}

// DefaultCluster returns the 4-node configuration the paper's primary
// experiments use.
func DefaultCluster() Cluster {
	return Cluster{
		Nodes:              4,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 2,
		TaskHeapBytes:      512 << 20,
		MaxHeapUsage:       0.66,
	}
}

// Validate reports a configuration error, if any.
func (c Cluster) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("mr: cluster needs at least one node, got %d", c.Nodes)
	case c.MapSlotsPerNode <= 0:
		return fmt.Errorf("mr: cluster needs at least one map slot per node, got %d", c.MapSlotsPerNode)
	case c.ReduceSlotsPerNode <= 0:
		return fmt.Errorf("mr: cluster needs at least one reduce slot per node, got %d", c.ReduceSlotsPerNode)
	case c.TaskHeapBytes <= 0:
		return fmt.Errorf("mr: task heap must be positive, got %d", c.TaskHeapBytes)
	// Written as !(in range) rather than (out of range): NaN fails every
	// comparison, so `<= 0 || > 1` would wave a NaN MaxHeapUsage through.
	case !(c.MaxHeapUsage > 0 && c.MaxHeapUsage <= 1):
		return fmt.Errorf("mr: max heap usage must be a finite value in (0,1], got %g", c.MaxHeapUsage)
	}
	return nil
}

// MapCapacity is the total number of concurrent map tasks.
func (c Cluster) MapCapacity() int { return c.Nodes * c.MapSlotsPerNode }

// ReduceCapacity is the total number of concurrent reduce tasks. The
// G-means strategy switch compares the number of clusters to test against
// this value.
func (c Cluster) ReduceCapacity() int { return c.Nodes * c.ReduceSlotsPerNode }

// PlannableHeap is the heap the scheduler budgets per task:
// TaskHeapBytes × MaxHeapUsage.
func (c Cluster) PlannableHeap() int64 {
	return int64(float64(c.TaskHeapBytes) * c.MaxHeapUsage)
}

// WithNodes returns a copy of the cluster resized to n nodes.
func (c Cluster) WithNodes(n int) Cluster {
	c.Nodes = n
	return c
}

// WithTaskHeap returns a copy of the cluster with the given per-task heap.
func (c Cluster) WithTaskHeap(bytes int64) Cluster {
	c.TaskHeapBytes = bytes
	return c
}
