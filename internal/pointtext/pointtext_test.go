package pointtext

import (
	"math"
	"strings"
	"testing"
)

func TestAppendPointParsesRecord(t *testing.T) {
	for _, tc := range []struct {
		rec  string
		dim  int
		want []float64
	}{
		{"1 2 3", 3, []float64{1, 2, 3}},
		{"1.5\t-2.25", 2, []float64{1.5, -2.25}},
		{"  1e3 \t -2.5E-2  ", 2, []float64{1000, -0.025}},
		{"\t\t7\t", 1, []float64{7}},
		{"+0.5 -0", 2, []float64{0.5, math.Copysign(0, -1)}},
	} {
		got, err := AppendPoint(nil, tc.rec, tc.dim)
		if err != nil {
			t.Errorf("AppendPoint(%q, %d): %v", tc.rec, tc.dim, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("AppendPoint(%q) = %v, want %v", tc.rec, got, tc.want)
			continue
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(tc.want[i]) {
				t.Errorf("AppendPoint(%q)[%d] = %v, want %v", tc.rec, i, got[i], tc.want[i])
			}
		}
	}
}

func TestAppendPointSpecialValues(t *testing.T) {
	got, err := AppendPoint(nil, "NaN Inf -Inf", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got[0]) || !math.IsInf(got[1], 1) || !math.IsInf(got[2], -1) {
		t.Errorf("special literals parsed as %v", got)
	}
}

func TestAppendPointDimMismatch(t *testing.T) {
	for _, tc := range []struct {
		rec string
		dim int
	}{
		{"1 2 3", 2}, // too many
		{"1 2", 3},   // too few (ragged line in a d=3 file)
		{"", 1},      // empty record
		{"   ", 2},   // separators only
	} {
		if _, err := AppendPoint(nil, tc.rec, tc.dim); err == nil {
			t.Errorf("AppendPoint(%q, %d) accepted a wrong-arity record", tc.rec, tc.dim)
		}
	}
}

func TestAppendPointBadToken(t *testing.T) {
	_, err := AppendPoint(nil, "1 nope 3", 3)
	if err == nil {
		t.Fatal("malformed coordinate accepted")
	}
	// The error must name both the bad token and the whole record so a
	// failed ingest points at the offending line.
	if !strings.Contains(err.Error(), `"nope"`) || !strings.Contains(err.Error(), `"1 nope 3"`) {
		t.Errorf("error does not identify token and record: %v", err)
	}
	// A CRLF line ending glues \r onto the last token: must error, not
	// silently mis-parse.
	if _, err := AppendPoint(nil, "1 2\r", 2); err == nil {
		t.Error("CRLF record accepted")
	}
}

func TestAppendPointExtendsDst(t *testing.T) {
	dst := []float64{9, 8}
	got, err := AppendPoint(dst, "1 2", 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{9, 8, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("extended slice = %v, want %v", got, want)
		}
	}
	// A failed parse must not hand back a partially-extended slice.
	if bad, err := AppendPoint(dst[:2], "1 x", 2); err == nil || bad != nil {
		t.Errorf("failed parse returned %v, %v", bad, err)
	}
}

func TestAppendPointAny(t *testing.T) {
	got, err := AppendPointAny(nil, "1 2 3 4 5")
	if err != nil || len(got) != 5 {
		t.Fatalf("AppendPointAny = %v, %v", got, err)
	}
	if _, err := AppendPointAny(nil, "  \t "); err == nil {
		t.Error("blank record accepted by AppendPointAny")
	}
}

// TestByteAndStringRecordsAgree pins the generic contract: the dfs cache
// (byte slices) and the dataset parser (strings) must tokenize
// identically.
func TestByteAndStringRecordsAgree(t *testing.T) {
	rec := " 1.25\t-3e2  NaN "
	s, errS := AppendPointAny(nil, rec)
	b, errB := AppendPointAny(nil, []byte(rec))
	if (errS == nil) != (errB == nil) {
		t.Fatalf("string err %v vs byte err %v", errS, errB)
	}
	if len(s) != len(b) {
		t.Fatalf("string parse %v vs byte parse %v", s, b)
	}
	for i := range s {
		if math.Float64bits(s[i]) != math.Float64bits(b[i]) {
			t.Errorf("coordinate %d: %v vs %v", i, s[i], b[i])
		}
	}
}
