// Package pointtext is the single tokenizer for the repository's point
// record format: one point per line, space- or tab-separated float64
// coordinates, repeated separators tolerated. Both the dataset package
// (text parsing) and the dfs decoded-split cache consume it — dataset
// imports dfs, so this leaf package is what lets the two scan paths share
// one implementation instead of keeping hand-synchronized copies.
package pointtext

import (
	"fmt"
	"strconv"
)

// AppendPoint parses one record onto dst, enforcing exactly dim
// coordinates, and returns the extended slice. The generic parameter lets
// string records (dataset) and byte-slice records (dfs) share the code
// without conversions on the caller side.
func AppendPoint[S ~string | ~[]byte](dst []float64, rec S, dim int) ([]float64, error) {
	start := len(dst)
	dst, err := appendTokens(dst, rec)
	if err != nil {
		return nil, err
	}
	if got := len(dst) - start; got != dim {
		return nil, fmt.Errorf("expected %d coordinates, got %d in record %q", dim, got, string(rec))
	}
	return dst, nil
}

// AppendPointAny parses a record of unknown arity (at least one
// coordinate) onto dst — the shape of ingestion paths that infer the
// dimensionality from the first record.
func AppendPointAny[S ~string | ~[]byte](dst []float64, rec S) ([]float64, error) {
	start := len(dst)
	dst, err := appendTokens(dst, rec)
	if err != nil {
		return nil, err
	}
	if len(dst) == start {
		return nil, fmt.Errorf("empty point record")
	}
	return dst, nil
}

// appendTokens is the one tokenizer loop behind both entry points.
func appendTokens[S ~string | ~[]byte](dst []float64, rec S) ([]float64, error) {
	i, n := 0, len(rec)
	for i < n {
		for i < n && (rec[i] == ' ' || rec[i] == '\t') {
			i++
		}
		if i >= n {
			break
		}
		j := i
		for j < n && rec[j] != ' ' && rec[j] != '\t' {
			j++
		}
		x, err := strconv.ParseFloat(string(rec[i:j]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad coordinate %q in record %q: %w", string(rec[i:j]), string(rec), err)
		}
		dst = append(dst, x)
		i = j
	}
	return dst, nil
}
