package dataset

import (
	"testing"

	"gmeansmr/internal/dfs"
	"gmeansmr/internal/vec"
)

// TestBinaryDecodeMatchesTextDecode mirrors TestDFSDecodeMatchesParsePointDim
// for the binary record format: the same points written as text and as
// binary must decode to bit-identical coordinates through the same
// OpenSplitPoints entry point, across split layouts, and through the
// whole-file LoadPoints reader. Text coordinates are written with
// FormatPoint ('g', -1 — Go's shortest round-trip encoding), so the text
// parse reproduces the exact float64 the binary file stores.
func TestBinaryDecodeMatchesTextDecode(t *testing.T) {
	ds, err := Generate(Spec{K: 3, Dim: 7, N: 200, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for _, splitSize := range []int{0, 64, 256, 1 << 12} {
		fsText := dfs.New(splitSize)
		ds.WriteToDFS(fsText, "/pts")
		fsBin := dfs.New(splitSize)
		ds.WriteToDFSBinary(fsBin, "/pts")

		var text, bin []vec.Vector
		for _, fsAndDst := range []struct {
			fs  *dfs.FS
			dst *[]vec.Vector
		}{{fsText, &text}, {fsBin, &bin}} {
			splits, err := fsAndDst.fs.Splits("/pts")
			if err != nil {
				t.Fatal(err)
			}
			for _, sp := range splits {
				ps, err := fsAndDst.fs.OpenSplitPoints(sp, 7)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < ps.Len(); i++ {
					*fsAndDst.dst = append(*fsAndDst.dst, ps.At(i))
				}
			}
		}
		if len(text) != len(ds.Points) || len(bin) != len(ds.Points) {
			t.Fatalf("splitSize %d: text decoded %d, binary %d, want %d",
				splitSize, len(text), len(bin), len(ds.Points))
		}
		for i := range text {
			if !vec.Equal(text[i], bin[i]) {
				t.Fatalf("splitSize %d point %d: text %v != binary %v",
					splitSize, i, text[i], bin[i])
			}
			if !vec.Equal(bin[i], ds.Points[i]) {
				t.Fatalf("splitSize %d point %d: binary %v != source %v",
					splitSize, i, bin[i], ds.Points[i])
			}
		}
	}

	// LoadPoints sniffs the format and must agree with itself across
	// encodings of the same dataset.
	fsText := dfs.New(0)
	ds.WriteToDFS(fsText, "/pts")
	fsBin := dfs.New(0)
	ds.WriteToDFSBinary(fsBin, "/pts")
	a, err := LoadPoints(fsText, "/pts")
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadPoints(fsBin, "/pts")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("LoadPoints: text %d points, binary %d", len(a), len(b))
	}
	for i := range a {
		if !vec.Equal(a[i], b[i]) {
			t.Fatalf("LoadPoints point %d: text %v != binary %v", i, a[i], b[i])
		}
	}
}

// TestEncodePointsBinaryRaggedPanics: a ragged point must fail loudly —
// a misaligned binary body would otherwise decode without error into
// different points.
func TestEncodePointsBinaryRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged point encoded without panic")
		}
	}()
	EncodePointsBinary([]vec.Vector{{1, 2, 3}, {4, 5}}, 3)
}
