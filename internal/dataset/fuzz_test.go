package dataset

import (
	"math"
	"testing"
)

// FuzzParsePoint drives the text record parser with arbitrary lines. It
// must never panic, and any record it accepts must satisfy the format's
// contracts: at least one coordinate, exact agreement with the
// known-dimension fast path, and a lossless FormatPoint round-trip
// (Go's shortest-form float encoding is bit-exact for finite values).
func FuzzParsePoint(f *testing.F) {
	f.Add("1 2 3")
	f.Add("1.5\t-2.25")
	f.Add("1e10 -3.2E-8 +0.5")               // exponent forms
	f.Add("  7 \t\t 8  ")                    // repeated separators
	f.Add("1 2\r")                           // CRLF leftover from a foreign writer
	f.Add("NaN Inf -Inf")                    // IEEE special literals
	f.Add("Infinity -infinity nan")          // ParseFloat's long spellings
	f.Add("1 2 3 4 5 6 7 8 9 10 11 12 13")   // wide record
	f.Add("")                                // empty line
	f.Add("1,2,3")                           // wrong separator
	f.Add("0x1p-2 010 1_000.5")              // hex floats, leading zeros, underscores
	f.Add("1.797693134862315708145274e+308") // near MaxFloat64
	f.Add("-0 0 +0")
	f.Fuzz(func(t *testing.T, line string) {
		p, err := ParsePoint(line)
		if err != nil {
			return
		}
		if len(p) == 0 {
			t.Fatalf("accepted %q with zero coordinates", line)
		}
		// The known-dimension path must accept exactly what the
		// inferring path produced, bit for bit.
		q, err := ParsePointDim(line, len(p))
		if err != nil {
			t.Fatalf("ParsePointDim(%q, %d) rejected what ParsePoint accepted: %v", line, len(p), err)
		}
		for d := range p {
			if math.Float64bits(p[d]) != math.Float64bits(q[d]) {
				t.Fatalf("dim %d of %q: ParsePoint %x vs ParsePointDim %x",
					d, line, math.Float64bits(p[d]), math.Float64bits(q[d]))
			}
		}
		// FormatPoint∘ParsePoint is the identity on parsed points.
		r, err := ParsePoint(FormatPoint(p))
		if err != nil {
			t.Fatalf("re-parsing FormatPoint(%v) = %q failed: %v", p, FormatPoint(p), err)
		}
		if len(r) != len(p) {
			t.Fatalf("round trip of %q changed arity: %v -> %v", line, p, r)
		}
		for d := range p {
			if math.IsNaN(p[d]) {
				if !math.IsNaN(r[d]) {
					t.Fatalf("dim %d of %q: NaN did not survive the round trip (%v)", d, line, r[d])
				}
				continue
			}
			if math.Float64bits(p[d]) != math.Float64bits(r[d]) {
				t.Fatalf("dim %d of %q: round trip %x -> %x",
					d, line, math.Float64bits(p[d]), math.Float64bits(r[d]))
			}
		}
	})
}
