package dataset

import (
	"strings"
	"testing"

	"gmeansmr/internal/dfs"
)

// TestDFSDecodeMatchesParsePointDim pins the end-to-end contract between
// the two scan paths: dfs.OpenSplitPoints must decode exactly what
// ParsePointDim decodes, byte for byte, across the quirks the text format
// tolerates. Both now delegate to internal/pointtext, so this is a guard
// against either side growing its own preprocessing rather than against
// duplicate tokenizers.
func TestDFSDecodeMatchesParsePointDim(t *testing.T) {
	records := []struct {
		line string
		dim  int
	}{
		{"1 2 3", 3},
		{"1.5\t-2.25\t3e-9", 3}, // tabs, exponents
		{"  7   8  ", 2},        // repeated/leading/trailing separators
		{"-0 0.0", 2},           // signed zero
		{"12.345678901234567 -9.87654321987654321", 2}, // full round-trip precision
		{"1e308 -1e308", 2},                            // near-overflow magnitudes
	}
	for _, rec := range records {
		want, err := ParsePointDim(rec.line, rec.dim)
		if err != nil {
			t.Fatalf("ParsePointDim(%q): %v", rec.line, err)
		}
		fs := dfs.New(0)
		fs.Create("/r", []byte(rec.line+"\n"))
		splits, err := fs.Splits("/r")
		if err != nil {
			t.Fatal(err)
		}
		ps, err := fs.OpenSplitPoints(splits[0], rec.dim)
		if err != nil {
			t.Fatalf("dfs decode of %q: %v", rec.line, err)
		}
		if ps.Len() != 1 {
			t.Fatalf("dfs decoded %d points from %q", ps.Len(), rec.line)
		}
		got := ps.At(0)
		for d := range want {
			if got[d] != want[d] {
				t.Errorf("record %q dim %d: dfs %v != dataset %v", rec.line, d, got[d], want[d])
			}
		}
	}

	// Both tokenizers must also agree on rejection: wrong arity and
	// non-numeric tokens.
	for _, bad := range []struct {
		line string
		dim  int
	}{{"1 2 3", 2}, {"1 x", 2}, {"", 1}} {
		if _, err := ParsePointDim(bad.line, bad.dim); err == nil {
			t.Fatalf("ParsePointDim accepted %q dim %d", bad.line, bad.dim)
		}
		fs := dfs.New(0)
		fs.Create("/r", []byte(bad.line+"\n"))
		splits, err := fs.Splits("/r")
		if err != nil {
			t.Fatal(err)
		}
		if len(splits) == 0 {
			continue // empty file: no records on either path
		}
		if _, err := fs.OpenSplitPoints(splits[0], bad.dim); err == nil {
			t.Errorf("dfs decode accepted %q dim %d", bad.line, bad.dim)
		}
	}

	// And on a full FormatPoint round trip of generated data.
	ds, err := Generate(Spec{K: 3, Dim: 7, N: 200, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, p := range ds.Points {
		b.WriteString(FormatPoint(p))
		b.WriteByte('\n')
	}
	fs := dfs.New(256)
	fs.Create("/pts", []byte(b.String()))
	splits, err := fs.Splits("/pts")
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, sp := range splits {
		ps, err := fs.OpenSplitPoints(sp, 7)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < ps.Len(); j++ {
			want, err := ParsePointDim(FormatPoint(ds.Points[i]), 7)
			if err != nil {
				t.Fatal(err)
			}
			got := ps.At(j)
			for d := range want {
				if got[d] != want[d] {
					t.Fatalf("point %d dim %d: dfs %v != dataset %v", i, d, got[d], want[d])
				}
			}
			i++
		}
	}
	if i != len(ds.Points) {
		t.Fatalf("decoded %d of %d points", i, len(ds.Points))
	}
}
