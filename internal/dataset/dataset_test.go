package dataset

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gmeansmr/internal/dfs"
	"gmeansmr/internal/vec"
)

func TestGenerateShape(t *testing.T) {
	ds, err := Generate(Spec{K: 5, Dim: 3, N: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Points) != 1000 || len(ds.Labels) != 1000 {
		t.Fatalf("points=%d labels=%d", len(ds.Points), len(ds.Labels))
	}
	if len(ds.Centers) != 5 {
		t.Fatalf("centers=%d", len(ds.Centers))
	}
	for _, p := range ds.Points {
		if len(p) != 3 {
			t.Fatalf("point dim %d", len(p))
		}
	}
	counts := map[int]int{}
	for _, l := range ds.Labels {
		counts[l]++
	}
	for c := 0; c < 5; c++ {
		if counts[c] != 200 {
			t.Errorf("cluster %d has %d points, want 200", c, counts[c])
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	spec := Spec{K: 4, Dim: 2, N: 200, Seed: 77}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if !vec.Equal(a.Points[i], b.Points[i]) {
			t.Fatalf("point %d differs across same-seed runs", i)
		}
	}
	c, err := Generate(Spec{K: 4, Dim: 2, N: 200, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Points {
		if !vec.Equal(a.Points[i], c.Points[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGeneratePointsNearTheirCenters(t *testing.T) {
	ds, err := Generate(Spec{K: 3, Dim: 2, N: 3000, StdDev: 0.5, MinSeparation: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ds.Points {
		d := vec.Dist(p, ds.Centers[ds.Labels[i]])
		// 6 sigma in 2-D is astronomically safe for 3000 draws.
		if d > 6*0.5*math.Sqrt2*2 {
			t.Fatalf("point %d is %.2f away from its center", i, d)
		}
	}
}

func TestGenerateMinSeparation(t *testing.T) {
	ds, err := Generate(Spec{K: 8, Dim: 2, N: 80, MinSeparation: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ds.Centers); i++ {
		for j := i + 1; j < len(ds.Centers); j++ {
			if d := vec.Dist(ds.Centers[i], ds.Centers[j]); d < 15 {
				t.Errorf("centers %d,%d only %.2f apart", i, j, d)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	for _, spec := range []Spec{
		{K: 0, Dim: 2, N: 10},
		{K: 2, Dim: 0, N: 10},
		{K: 10, Dim: 2, N: 5},
	} {
		if _, err := Generate(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	p := vec.Vector{1.5, -2.25, 3.141592653589793, 0, 1e-17, 6.02e23}
	line := FormatPoint(p)
	got, err := ParsePoint(line)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(got, p) {
		t.Errorf("round trip: %v -> %q -> %v", p, line, got)
	}
}

func TestParsePointErrors(t *testing.T) {
	if _, err := ParsePoint(""); err == nil {
		t.Error("empty line accepted")
	}
	if _, err := ParsePoint("1.0 abc"); err == nil {
		t.Error("garbage coordinate accepted")
	}
}

func TestParsePointToleratesWhitespace(t *testing.T) {
	got, err := ParsePoint("  1.0\t 2.0   3.0 ")
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(got, vec.Vector{1, 2, 3}) {
		t.Errorf("got %v", got)
	}
}

func TestParsePointDim(t *testing.T) {
	got, err := ParsePointDim("1 2 3", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(got, vec.Vector{1, 2, 3}) {
		t.Errorf("got %v", got)
	}
	if _, err := ParsePointDim("1 2", 3); err == nil {
		t.Error("wrong dimensionality accepted")
	}
	if _, err := ParsePointDim("1 2 3 4", 3); err == nil {
		t.Error("extra coordinates accepted")
	}
}

func TestWriteLoadDFS(t *testing.T) {
	ds, err := Generate(Spec{K: 3, Dim: 4, N: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	fs := dfs.New(0)
	ds.WriteToDFS(fs, "/pts")
	got, err := LoadPoints(fs, "/pts")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("loaded %d points", len(got))
	}
	for i := range got {
		if !vec.Equal(got[i], ds.Points[i]) {
			t.Fatalf("point %d differs after DFS round trip", i)
		}
	}
}

func TestLoadPointsSkipsBlankLines(t *testing.T) {
	fs := dfs.New(0)
	fs.Create("/pts", []byte("1 2\n\n3 4\n   \n"))
	got, err := LoadPoints(fs, "/pts")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d points, want 2", len(got))
	}
}

func TestPropCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(16)
		p := make(vec.Vector, d)
		for i := range p {
			switch r.Intn(4) {
			case 0:
				p[i] = r.NormFloat64() * 1e6
			case 1:
				p[i] = r.NormFloat64() * 1e-6
			case 2:
				p[i] = float64(r.Intn(1000))
			default:
				p[i] = r.NormFloat64()
			}
		}
		got, err := ParsePoint(FormatPoint(p))
		return err == nil && vec.Equal(got, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropParsePointDimMatchesParsePoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(8)
		p := make(vec.Vector, d)
		for i := range p {
			p[i] = r.NormFloat64() * 100
		}
		line := FormatPoint(p)
		a, err1 := ParsePoint(line)
		b, err2 := ParsePointDim(line, d)
		return err1 == nil && err2 == nil && vec.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFormatPointSingleDim(t *testing.T) {
	if got := FormatPoint(vec.Vector{42}); strings.Contains(got, " ") {
		t.Errorf("single-dim point has separator: %q", got)
	}
}

func TestGenerateWeighted(t *testing.T) {
	ds, err := Generate(Spec{K: 3, Dim: 2, N: 1000, Weights: []float64{0.7, 0.2, 0.1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, l := range ds.Labels {
		counts[l]++
	}
	if counts[0] != 700 || counts[1] != 200 || counts[2] != 100 {
		t.Errorf("weighted sizes = %v, want 700/200/100", counts)
	}
}

func TestGenerateWeightedRounding(t *testing.T) {
	// Weights that don't divide N exactly must still cover all N points.
	ds, err := Generate(Spec{K: 3, Dim: 2, N: 100, Weights: []float64{1, 1, 1}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	counts := map[int]int{}
	for _, l := range ds.Labels {
		counts[l]++
		total++
	}
	if total != 100 {
		t.Fatalf("total = %d", total)
	}
	for c := 0; c < 3; c++ {
		if counts[c] < 33 || counts[c] > 34 {
			t.Errorf("cluster %d has %d points", c, counts[c])
		}
	}
}

func TestGenerateWeightsValidation(t *testing.T) {
	if _, err := Generate(Spec{K: 2, Dim: 2, N: 10, Weights: []float64{1}}); err == nil {
		t.Error("wrong weight count accepted")
	}
	if _, err := Generate(Spec{K: 2, Dim: 2, N: 10, Weights: []float64{1, -1}}); err == nil {
		t.Error("negative weight accepted")
	}
}
