// Package dataset generates the synthetic workloads of the paper's
// evaluation — Gaussian mixtures with a known number of clusters in R^d —
// and provides the text encoding the MapReduce jobs consume (one point per
// line, space-separated coordinates, matching the paper's "point (text)"
// input format and its ~15-characters-per-dimension storage model).
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"strconv"
	"strings"

	"gmeansmr/internal/dfs"
	"gmeansmr/internal/pointtext"
	"gmeansmr/internal/vec"
)

// Spec describes a synthetic Gaussian-mixture dataset. The defaults mirror
// the paper's generator: cluster centers drawn uniformly in
// [0, CenterRange]^Dim, points drawn isotropically around their center with
// standard deviation StdDev.
type Spec struct {
	// K is the true number of clusters.
	K int
	// Dim is the dimensionality (the paper uses R² for illustrations and
	// R¹⁰ for the large runs).
	Dim int
	// N is the total number of points, spread (near-)evenly over clusters.
	N int
	// CenterRange is the side of the hypercube centers are drawn from;
	// zero selects 100, the range visible in the paper's Figures 1 and 4.
	CenterRange float64
	// StdDev is the per-coordinate standard deviation of each cluster;
	// zero selects 1.0.
	StdDev float64
	// MinSeparation, when positive, enforces a minimum pairwise distance
	// between generated centers by rejection sampling, so the "true k" is
	// well defined. A value around 6×StdDev keeps overlaps negligible.
	MinSeparation float64
	// Weights, when non-nil, sets the relative cluster sizes (must have
	// K positive entries). Nil means equal sizes. Skewed weights exercise
	// the "skewed data" reducer-imbalance concern the paper leaves as
	// future work.
	Weights []float64
	// Seed makes generation deterministic.
	Seed int64
}

func (s Spec) withDefaults() Spec {
	if s.CenterRange == 0 {
		s.CenterRange = 100
	}
	if s.StdDev == 0 {
		s.StdDev = 1
	}
	return s
}

// Validate reports a configuration error, if any.
func (s Spec) Validate() error {
	switch {
	case s.K <= 0:
		return fmt.Errorf("dataset: K must be positive, got %d", s.K)
	case s.Dim <= 0:
		return fmt.Errorf("dataset: Dim must be positive, got %d", s.Dim)
	case s.N < s.K:
		return fmt.Errorf("dataset: N (%d) must be at least K (%d)", s.N, s.K)
	}
	if s.Weights != nil {
		if len(s.Weights) != s.K {
			return fmt.Errorf("dataset: %d weights for K=%d clusters", len(s.Weights), s.K)
		}
		for i, w := range s.Weights {
			if w <= 0 {
				return fmt.Errorf("dataset: weight %d is %g, must be positive", i, w)
			}
		}
	}
	return nil
}

// Dataset is a fully materialized synthetic mixture with ground truth.
type Dataset struct {
	Spec    Spec
	Points  []vec.Vector
	Labels  []int        // ground-truth cluster of each point
	Centers []vec.Vector // ground-truth cluster centers
}

// Generate materializes the dataset described by the spec.
func Generate(spec Spec) (*Dataset, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	centers := sampleCenters(rng, spec)

	points := make([]vec.Vector, spec.N)
	labels := make([]int, spec.N)
	assignCluster := clusterAssigner(spec)
	for i := 0; i < spec.N; i++ {
		c := assignCluster(i)
		p := make(vec.Vector, spec.Dim)
		for d := 0; d < spec.Dim; d++ {
			p[d] = centers[c][d] + rng.NormFloat64()*spec.StdDev
		}
		points[i] = p
		labels[i] = c
	}
	// Shuffle so splits don't align with clusters; mapper-side tests in
	// TestFewClusters assume splits sample all clusters.
	rng.Shuffle(spec.N, func(i, j int) {
		points[i], points[j] = points[j], points[i]
		labels[i], labels[j] = labels[j], labels[i]
	})
	return &Dataset{Spec: spec, Points: points, Labels: labels, Centers: centers}, nil
}

// clusterAssigner maps point index → cluster label. Equal weights use
// round-robin (near-equal cluster sizes, as in the paper's generator);
// explicit weights use largest-remainder apportionment so cluster sizes
// match the weights exactly up to rounding, deterministically.
func clusterAssigner(spec Spec) func(int) int {
	if spec.Weights == nil {
		return func(i int) int { return i % spec.K }
	}
	var total float64
	for _, w := range spec.Weights {
		total += w
	}
	// Integer shares by largest remainder.
	counts := make([]int, spec.K)
	type rem struct {
		c    int
		frac float64
	}
	rems := make([]rem, spec.K)
	assigned := 0
	for c, w := range spec.Weights {
		exact := float64(spec.N) * w / total
		counts[c] = int(exact)
		rems[c] = rem{c: c, frac: exact - float64(counts[c])}
		assigned += counts[c]
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].c < rems[b].c
	})
	for i := 0; assigned < spec.N; i, assigned = (i+1)%spec.K, assigned+1 {
		counts[rems[i].c]++
	}
	// Flatten into a lookup: points [0,counts[0]) → cluster 0, etc. The
	// generator shuffles afterwards, so contiguity doesn't leak into
	// splits.
	boundaries := make([]int, spec.K)
	acc := 0
	for c, n := range counts {
		acc += n
		boundaries[c] = acc
	}
	return func(i int) int {
		for c, b := range boundaries {
			if i < b {
				return c
			}
		}
		return spec.K - 1
	}
}

func sampleCenters(rng *rand.Rand, spec Spec) []vec.Vector {
	centers := make([]vec.Vector, 0, spec.K)
	minSep2 := spec.MinSeparation * spec.MinSeparation
	const maxTries = 10000
	for len(centers) < spec.K {
		tries := 0
		for {
			c := make(vec.Vector, spec.Dim)
			for d := range c {
				c[d] = rng.Float64() * spec.CenterRange
			}
			if spec.MinSeparation <= 0 || farEnough(c, centers, minSep2) || tries >= maxTries {
				centers = append(centers, c)
				break
			}
			tries++
		}
	}
	return centers
}

func farEnough(c vec.Vector, centers []vec.Vector, minSep2 float64) bool {
	for _, o := range centers {
		if vec.Dist2(c, o) < minSep2 {
			return false
		}
	}
	return true
}

// ValidatePoint rejects points with NaN or ±Inf coordinates. A single such
// coordinate poisons every centroid sum it enters, so ingestion paths check
// points once up front instead of letting the damage surface as garbage
// centers hours into a run.
func ValidatePoint(p vec.Vector) error {
	for i, x := range p {
		if math.IsNaN(x) {
			return fmt.Errorf("dataset: coordinate %d is NaN", i)
		}
		if math.IsInf(x, 0) {
			return fmt.Errorf("dataset: coordinate %d is %v", i, x)
		}
	}
	return nil
}

// Stream generates the mixture described by a Spec one point at a time,
// never materializing the dataset — the workload source for runs too large
// to hold in memory. Unlike Generate, which assigns clusters round-robin
// and shuffles afterwards, Stream draws each point's cluster at random
// (weighted when Spec.Weights is set), which interleaves clusters so every
// DFS split samples all of them — the property the mapper-side normality
// test relies on.
type Stream struct {
	spec    Spec
	rng     *rand.Rand
	centers []vec.Vector
	cum     []float64 // cumulative weights; nil = uniform
	total   float64
	emitted int
}

// NewStream validates the spec and prepares a deterministic point stream.
func NewStream(spec Spec) (*Stream, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	s := &Stream{spec: spec, rng: rng, centers: sampleCenters(rng, spec)}
	if spec.Weights != nil {
		s.cum = make([]float64, spec.K)
		for i, w := range spec.Weights {
			s.total += w
			s.cum[i] = s.total
		}
	}
	return s, nil
}

// Centers returns the ground-truth mixture centers.
func (s *Stream) Centers() []vec.Vector { return s.centers }

// Next returns the next point and its ground-truth cluster label, or
// ok=false once Spec.N points have been produced.
func (s *Stream) Next() (p vec.Vector, label int, ok bool) {
	if s.emitted >= s.spec.N {
		return nil, 0, false
	}
	s.emitted++
	c := 0
	if s.cum == nil {
		c = s.rng.Intn(s.spec.K)
	} else {
		x := s.rng.Float64() * s.total
		for c < len(s.cum)-1 && x >= s.cum[c] {
			c++
		}
	}
	p = make(vec.Vector, s.spec.Dim)
	for d := range p {
		p[d] = s.centers[c][d] + s.rng.NormFloat64()*s.spec.StdDev
	}
	return p, c, true
}

// FormatPoint encodes a point as the engine's text record: space-separated
// coordinates in Go's shortest round-trip float format.
func FormatPoint(p vec.Vector) string {
	var b strings.Builder
	b.Grow(len(p) * 18)
	for i, x := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	}
	return b.String()
}

// ParsePoint decodes a text record produced by FormatPoint, inferring the
// dimensionality from the record itself. Like ParsePointDim it delegates
// to the shared pointtext tokenizer.
func ParsePoint(line string) (vec.Vector, error) {
	out, err := pointtext.AppendPointAny(vec.Vector(nil), line)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	return out, nil
}

// ParsePointDim decodes a point when the dimensionality is known, avoiding
// the growth reallocations of ParsePoint. It delegates to the shared
// pointtext tokenizer — the same one the dfs decoded-split cache uses —
// so the text and cached scan paths can never diverge on record syntax.
func ParsePointDim(line string, dim int) (vec.Vector, error) {
	out, err := pointtext.AppendPoint(make(vec.Vector, 0, dim), line, dim)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	return out, nil
}

// WriteToDFS stores the dataset's points (no labels: the algorithms are
// unsupervised) as a text file in the simulated DFS.
func (d *Dataset) WriteToDFS(fs *dfs.FS, path string) {
	w := fs.Writer(path)
	for _, p := range d.Points {
		w.WriteString(FormatPoint(p))
		w.WriteString("\n")
	}
	w.Close()
}

// WriteToDFSBinary stores the dataset's points in the binary point-record
// format (dfs binary.go): a dim-carrying header followed by fixed-stride
// little-endian float64 frames. Coordinates round-trip bit-exactly and
// cold scans skip text parsing entirely; the text format written by
// WriteToDFS remains the default interchange encoding.
func (d *Dataset) WriteToDFSBinary(fs *dfs.FS, path string) {
	fs.Create(path, EncodePointsBinary(d.Points, d.Spec.Dim))
}

// EncodePointsBinary renders points as one binary point file: header plus
// one frame per point. Every point must have exactly dim coordinates; a
// ragged point panics rather than silently encoding a misaligned body
// that would decode without error into different points (the text path
// preserves per-record arity, so its dim checks catch the same mistake
// downstream — the binary frame layout cannot).
func EncodePointsBinary(points []vec.Vector, dim int) []byte {
	buf := dfs.BinaryHeader(dim)
	buf = slices.Grow(buf, len(points)*dim*8)
	for i, p := range points {
		if len(p) != dim {
			panic(fmt.Sprintf("dataset: EncodePointsBinary point %d has %d coordinates, want %d", i, len(p), dim))
		}
		buf = dfs.AppendBinaryPoint(buf, p)
	}
	return buf
}

// LoadPoints reads every point of a DFS point file — text or binary,
// sniffed from the file's magic — into memory. Intended for tests,
// examples and sequential baselines — the MapReduce jobs stream splits
// instead.
func LoadPoints(fs *dfs.FS, path string) ([]vec.Vector, error) {
	data, err := fs.ReadAll(path)
	if err != nil {
		return nil, err
	}
	if dfs.IsBinary(data) {
		dim, flat, err := dfs.DecodeBinaryPoints(data)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s: %w", path, err)
		}
		pts := make([]vec.Vector, len(flat)/dim)
		for i := range pts {
			pts[i] = vec.Vector(flat[i*dim : (i+1)*dim : (i+1)*dim])
		}
		return pts, nil
	}
	lines := dfs.SplitLines(data)
	pts := make([]vec.Vector, 0, len(lines))
	for _, ln := range lines {
		if strings.TrimSpace(ln) == "" {
			continue
		}
		p, err := ParsePoint(ln)
		if err != nil {
			return nil, err
		}
		pts = append(pts, p)
	}
	return pts, nil
}
