package dfs

import (
	"math/rand"
	"strings"
	"testing"
)

// collectRecords reads every (record, offset) pair of the file via its
// splits, in order.
func collectRecords(t *testing.T, fs *FS, path string) (lines []string, offsets []int64) {
	t.Helper()
	splits, err := fs.Splits(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range splits {
		rd, err := fs.OpenSplit(sp)
		if err != nil {
			t.Fatal(err)
		}
		for {
			line, off, ok := rd.NextRecord()
			if !ok {
				break
			}
			lines = append(lines, line)
			offsets = append(offsets, off)
		}
	}
	return lines, offsets
}

// TestNextRecordOffsetsMultiSplit is the regression test for the
// split-relative offset drift: on every split but the first, a running sum
// seeded with Split.Start over-counts by the skipped partial leading
// record. The true offsets must equal each record's actual byte position.
func TestNextRecordOffsetsMultiSplit(t *testing.T) {
	records := []string{"alpha", "bb", "c", "dddddddd", "ee", "ffff", "g"}
	data := strings.Join(records, "\n") + "\n"
	fs := New(7) // force records to straddle many split boundaries
	fs.Create("/f", []byte(data))
	lines, offsets := collectRecords(t, fs, "/f")
	if len(lines) != len(records) {
		t.Fatalf("read %d records, want %d", len(lines), len(records))
	}
	want := int64(0)
	for i, rec := range records {
		if lines[i] != rec {
			t.Errorf("record %d = %q, want %q", i, lines[i], rec)
		}
		if offsets[i] != want {
			t.Errorf("record %d offset = %d, want %d", i, offsets[i], want)
		}
		want += int64(len(rec)) + 1
	}
}

// TestNextRecordOffsetsCRLF pins the two-byte-terminator case: records are
// returned without the '\r', offsets are the line starts, and byte
// accounting charges the full consumed bytes (terminators included).
func TestNextRecordOffsetsCRLF(t *testing.T) {
	data := "aa\r\nbbbb\r\nc\r\ndd\r\n"
	fs := New(5)
	fs.Create("/f", []byte(data))
	fs.ResetCounters()
	lines, offsets := collectRecords(t, fs, "/f")
	wantLines := []string{"aa", "bbbb", "c", "dd"}
	wantOffsets := []int64{0, 4, 10, 13}
	if len(lines) != len(wantLines) {
		t.Fatalf("read %d records, want %d: %q", len(lines), len(wantLines), lines)
	}
	for i := range wantLines {
		if lines[i] != wantLines[i] {
			t.Errorf("record %d = %q, want %q (no trailing \\r)", i, lines[i], wantLines[i])
		}
		if offsets[i] != wantOffsets[i] {
			t.Errorf("record %d offset = %d, want %d", i, offsets[i], wantOffsets[i])
		}
	}
	if got := fs.BytesRead(); got != int64(len(data)) {
		t.Errorf("BytesRead = %d, want %d (CRLF terminators charged)", got, len(data))
	}
}

// TestNextRecordOffsetNoFinalNewline: the unterminated last record has a
// correct offset and accounts only its real bytes.
func TestNextRecordOffsetNoFinalNewline(t *testing.T) {
	data := "ab\ncdefg"
	fs := New(4)
	fs.Create("/f", []byte(data))
	fs.ResetCounters()
	lines, offsets := collectRecords(t, fs, "/f")
	if len(lines) != 2 || lines[0] != "ab" || lines[1] != "cdefg" {
		t.Fatalf("records = %q", lines)
	}
	if offsets[0] != 0 || offsets[1] != 3 {
		t.Errorf("offsets = %v, want [0 3]", offsets)
	}
	if got := fs.BytesRead(); got != int64(len(data)) {
		t.Errorf("BytesRead = %d, want %d", got, len(data))
	}
}

// TestPropNextRecordOffsets: for any record set and split size, the offset
// stream equals the true byte positions of the records in the file.
func TestPropNextRecordOffsets(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(30)
		var b strings.Builder
		var wantOff []int64
		var wantLines []string
		for i := 0; i < n; i++ {
			rec := strings.Repeat(string(rune('a'+i%26)), r.Intn(10))
			wantOff = append(wantOff, int64(b.Len()))
			wantLines = append(wantLines, rec)
			b.WriteString(rec)
			if r.Intn(4) == 0 {
				b.WriteString("\r\n")
			} else {
				b.WriteString("\n")
			}
		}
		fs := New(1 + r.Intn(24))
		fs.Create("/f", []byte(b.String()))
		lines, offsets := collectRecords(t, fs, "/f")
		if len(lines) != n {
			t.Fatalf("seed %d: %d records, want %d", seed, len(lines), n)
		}
		for i := range wantLines {
			if lines[i] != wantLines[i] || offsets[i] != wantOff[i] {
				t.Fatalf("seed %d record %d: (%q, %d), want (%q, %d)",
					seed, i, lines[i], offsets[i], wantLines[i], wantOff[i])
			}
		}
	}
}
