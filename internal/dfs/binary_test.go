package dfs

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// binaryFile encodes n random points of dim coordinates and returns the
// file bytes plus the expected decoded values.
func binaryFile(n, dim int, seed int64) ([]byte, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	data := BinaryHeader(dim)
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for d := range p {
			p[d] = rng.NormFloat64() * 100
		}
		pts[i] = p
		data = AppendBinaryPoint(data, p)
	}
	return data, pts
}

func TestBinaryRoundTrip(t *testing.T) {
	data, want := binaryFile(100, 5, 1)
	if !IsBinary(data) {
		t.Fatal("encoded file not recognized as binary")
	}
	dim, flat, err := DecodeBinaryPoints(data)
	if err != nil {
		t.Fatal(err)
	}
	if dim != 5 || len(flat) != 500 {
		t.Fatalf("decoded dim=%d len=%d", dim, len(flat))
	}
	for i, p := range want {
		for d, x := range p {
			if got := flat[i*5+d]; got != x && !(math.IsNaN(got) && math.IsNaN(x)) {
				t.Fatalf("point %d dim %d: %v != %v", i, d, got, x)
			}
		}
	}
}

// TestBinarySplitsDeliverEveryPointOnce is the binary analogue of the text
// path's core invariant: for any split size, scanning via splits yields
// every point exactly once, in file order.
func TestBinarySplitsDeliverEveryPointOnce(t *testing.T) {
	f := func(seed int64, splitRaw uint8, dimRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + int(dimRaw)%6
		n := rng.Intn(50)
		data, want := binaryFile(n, dim, seed)
		fs := New(1 + int(splitRaw)%96)
		fs.Create("/b", data)
		splits, err := fs.Splits("/b")
		if err != nil {
			return false
		}
		var got [][]float64
		for _, sp := range splits {
			ps, err := fs.OpenSplitPoints(sp, dim)
			if err != nil {
				return false
			}
			for i := 0; i < ps.Len(); i++ {
				got = append(got, ps.At(i))
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			for d := range want[i] {
				if got[i][d] != want[i][d] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBinarySplitByteAccountingSumsToFileSize pins the I/O model: one full
// scan of a binary file accounts exactly the file's bytes, on the cold
// decode and on every cached scan after it.
func TestBinarySplitByteAccountingSumsToFileSize(t *testing.T) {
	for _, splitSize := range []int{1, 7, 12, 13, 40, 1 << 20} {
		data, _ := binaryFile(37, 3, 2)
		fs := New(splitSize)
		fs.Create("/b", data)
		splits, err := fs.Splits("/b")
		if err != nil {
			t.Fatal(err)
		}
		for scan := 0; scan < 3; scan++ {
			before := fs.BytesRead()
			for _, sp := range splits {
				if _, err := fs.OpenSplitPoints(sp, 3); err != nil {
					t.Fatal(err)
				}
			}
			if got := fs.BytesRead() - before; got != int64(len(data)) {
				t.Fatalf("splitSize %d scan %d accounted %d bytes, file is %d",
					splitSize, scan, got, len(data))
			}
		}
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	data, _ := binaryFile(4, 3, 3)

	// Requested dim must match the header.
	fs := New(0)
	fs.Create("/b", data)
	splits, _ := fs.Splits("/b")
	if _, err := fs.OpenSplitPoints(splits[0], 2); err == nil {
		t.Error("dim mismatch accepted")
	}

	// A truncated frame is a corrupt file.
	fs.Create("/trunc", data[:len(data)-5])
	splits, _ = fs.Splits("/trunc")
	if _, err := fs.OpenSplitPoints(splits[0], 3); err == nil {
		t.Error("truncated frame accepted")
	}

	// An unknown version must be rejected, not misdecoded.
	bad := append([]byte(nil), data...)
	binary.LittleEndian.PutUint16(bad[4:], 99)
	fs.Create("/v99", bad)
	splits, _ = fs.Splits("/v99")
	if _, err := fs.OpenSplitPoints(splits[0], 3); err == nil {
		t.Error("future version accepted")
	}

	// A zero-dim header is corrupt.
	zero := BinaryHeader(0)
	fs.Create("/zero", zero)
	splits, _ = fs.Splits("/zero")
	if len(splits) > 0 {
		if _, err := fs.OpenSplitPoints(splits[0], 3); err == nil {
			t.Error("zero-dim header accepted")
		}
	}

	// Whole-file decode of a non-binary file.
	if _, _, err := DecodeBinaryPoints([]byte("1 2 3\n")); err == nil {
		t.Error("text file accepted by DecodeBinaryPoints")
	}
}

// TestOpenSplitRejectsBinary: text record scans over frame bytes are
// always a bug; the reader must refuse rather than mis-parse.
func TestOpenSplitRejectsBinary(t *testing.T) {
	data, _ := binaryFile(2, 2, 4)
	fs := New(0)
	fs.Create("/b", data)
	splits, _ := fs.Splits("/b")
	if _, err := fs.OpenSplit(splits[0]); err == nil {
		t.Fatal("OpenSplit accepted a binary point file")
	}
}

// TestBinaryStaleSplitBeyondShrunkenFile mirrors the text-path test: split
// descriptors held across a shrink must decode to zero points, not panic.
func TestBinaryStaleSplitBeyondShrunkenFile(t *testing.T) {
	data, _ := binaryFile(200, 3, 5)
	fs := New(512)
	fs.Create("/b", data)
	stale, err := fs.Splits("/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) < 3 {
		t.Fatalf("want ≥3 splits, got %d", len(stale))
	}
	small, _ := binaryFile(1, 3, 5)
	fs.Create("/b", small)
	for _, sp := range stale[1:] {
		ps, err := fs.OpenSplitPoints(sp, 3)
		if err != nil {
			t.Fatal(err)
		}
		if ps.Len() != 0 {
			t.Errorf("stale split %d decoded %d points from shrunken file", sp.Index, ps.Len())
		}
	}
}

// TestBinarySpecialValues: the binary format must round-trip bit patterns
// the text format cannot (NaN payloads aside, text 'g' formatting already
// round-trips — but ±Inf and NaN never survive a text parse path that
// validates; at the dfs layer the codec itself must be exact).
func TestBinarySpecialValues(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(),
		math.MaxFloat64, math.SmallestNonzeroFloat64, 1e-308}
	data := BinaryHeader(len(vals))
	data = AppendBinaryPoint(data, vals)
	fs := New(0)
	fs.Create("/b", data)
	splits, _ := fs.Splits("/b")
	ps, err := fs.OpenSplitPoints(splits[0], len(vals))
	if err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 1 {
		t.Fatalf("decoded %d points", ps.Len())
	}
	got := ps.At(0)
	for d, x := range vals {
		if math.Float64bits(got[d]) != math.Float64bits(x) {
			t.Errorf("dim %d: bits %x != %x", d, math.Float64bits(got[d]), math.Float64bits(x))
		}
	}
}

// FuzzDecodeBinarySplit drives the binary split decoder with arbitrary
// bytes and windows: it must never panic or over-allocate, and whatever it
// accepts must be internally consistent (Len·Dim coordinates, non-negative
// byte accounting bounded by the window and header).
func FuzzDecodeBinarySplit(f *testing.F) {
	valid, _ := binaryFile(3, 2, 6)
	f.Add(valid, int64(0), int64(len(valid)), 2)
	f.Add(valid, int64(5), int64(20), 2)
	f.Add(valid[:len(valid)-3], int64(0), int64(64), 2)                           // truncated frame
	f.Add([]byte("GMPBxxxx"), int64(0), int64(8), 1)                              // truncated header
	f.Add([]byte("GMPB\x01\x00\x00\x00\xff\xff\xff\xff"), int64(0), int64(12), 1) // absurd dim
	f.Add([]byte("1 2 3\n4 5 6\n"), int64(0), int64(12), 3)                       // text masquerading
	f.Fuzz(func(t *testing.T, data []byte, start, end int64, dim int) {
		if dim <= 0 || dim > 64 {
			return
		}
		sp := Split{Path: "/fuzz", Index: 0, Start: start, End: end}
		ps, err := decodeSplit(data, sp, dim)
		if err != nil {
			return
		}
		if ps.Dim() != dim {
			t.Fatalf("decoded dim %d, asked %d", ps.Dim(), dim)
		}
		if ps.Bytes() < 0 || ps.Bytes() > int64(len(data)) {
			t.Fatalf("accounted %d bytes of a %d-byte file", ps.Bytes(), len(data))
		}
		if IsBinary(data) {
			// A binary split can never decode more coordinates than the
			// file body holds.
			if int64(ps.Len())*int64(dim)*8 > int64(len(data)) {
				t.Fatalf("decoded %d points of dim %d from %d bytes", ps.Len(), dim, len(data))
			}
		}
	})
}
