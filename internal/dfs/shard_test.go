package dfs

import (
	"strings"
	"testing"
)

func TestVersionAndContents(t *testing.T) {
	fs := New(16)
	if v := fs.Version("/a"); v != 0 {
		t.Fatalf("fresh path version = %d, want 0", v)
	}
	fs.Create("/a", []byte("hello\n"))
	if v := fs.Version("/a"); v != 1 {
		t.Fatalf("after create version = %d, want 1", v)
	}
	fs.Create("/a", []byte("world\n"))
	if v := fs.Version("/a"); v != 2 {
		t.Fatalf("after overwrite version = %d, want 2", v)
	}
	fs.Delete("/a")
	if v := fs.Version("/a"); v != 3 {
		t.Fatalf("after delete version = %d, want 3", v)
	}
	// Deleting a missing path stays a no-op, version included.
	fs.Delete("/a")
	if v := fs.Version("/a"); v != 3 {
		t.Fatalf("after no-op delete version = %d, want 3", v)
	}
	// Re-creation keeps the counter strictly increasing.
	fs.Create("/a", []byte("again\n"))
	if v := fs.Version("/a"); v != 4 {
		t.Fatalf("after re-create version = %d, want 4", v)
	}

	reads := fs.DatasetReads()
	bytesRead := fs.BytesRead()
	got, err := fs.Contents("/a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "again\n" {
		t.Fatalf("Contents = %q", got)
	}
	// Contents is the replication-plane accessor: no scan accounting.
	if fs.DatasetReads() != reads || fs.BytesRead() != bytesRead {
		t.Fatal("Contents must not tick read accounting")
	}
	// The copy is private: mutating it must not corrupt the file.
	got[0] = 'X'
	back, _ := fs.Contents("/a")
	if string(back) != "again\n" {
		t.Fatal("Contents must return a copy")
	}
	if _, err := fs.Contents("/missing"); err == nil {
		t.Fatal("Contents of a missing path must fail")
	}
}

func TestShardOwnership(t *testing.T) {
	fs := New(8) // tiny splits: many per file
	var b strings.Builder
	for i := 0; i < 40; i++ {
		b.WriteString("0 1\n")
	}
	fs.Create("/pts", []byte(b.String()))
	all, err := fs.Splits("/pts")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 4 {
		t.Fatalf("want several splits, got %d", len(all))
	}
	const nodes = 3
	seen := 0
	for node := 0; node < nodes; node++ {
		owned, err := fs.OwnedSplits("/pts", node, nodes)
		if err != nil {
			t.Fatal(err)
		}
		last := -1
		for _, sp := range owned {
			if ShardOwner(sp, nodes) != node {
				t.Fatalf("split %d owned by %d, listed under node %d", sp.Index, ShardOwner(sp, nodes), node)
			}
			if sp.Index <= last {
				t.Fatal("OwnedSplits must preserve file order")
			}
			last = sp.Index
			seen++
		}
	}
	// Every split has exactly one owner.
	if seen != len(all) {
		t.Fatalf("shards cover %d of %d splits", seen, len(all))
	}
	if ShardOwner(all[0], 0) != 0 {
		t.Fatal("degenerate node count should map to node 0")
	}
}
