package dfs

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestCreateReadAll(t *testing.T) {
	fs := New(0)
	fs.Create("/a", []byte("hello\nworld\n"))
	got, err := fs.ReadAll("/a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello\nworld\n" {
		t.Errorf("ReadAll = %q", got)
	}
	if fs.DatasetReads() != 1 {
		t.Errorf("DatasetReads = %d, want 1", fs.DatasetReads())
	}
}

func TestReadAllReturnsCopy(t *testing.T) {
	fs := New(0)
	fs.Create("/a", []byte("abc"))
	got, _ := fs.ReadAll("/a")
	got[0] = 'X'
	again, _ := fs.ReadAll("/a")
	if string(again) != "abc" {
		t.Error("ReadAll exposed internal buffer")
	}
}

func TestNotFound(t *testing.T) {
	fs := New(0)
	if _, err := fs.ReadAll("/missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	if _, err := fs.Splits("/missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Splits err = %v, want ErrNotFound", err)
	}
	if _, err := fs.Size("/missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Size err = %v", err)
	}
}

func TestExistsDeleteList(t *testing.T) {
	fs := New(0)
	fs.Create("/b", []byte("x"))
	fs.Create("/a", []byte("y"))
	if !fs.Exists("/a") || !fs.Exists("/b") {
		t.Fatal("files should exist")
	}
	if got := fs.List(); len(got) != 2 || got[0] != "/a" || got[1] != "/b" {
		t.Errorf("List = %v", got)
	}
	fs.Delete("/a")
	if fs.Exists("/a") {
		t.Error("deleted file still exists")
	}
	fs.Delete("/a") // idempotent
}

func TestWriterCommitsOnClose(t *testing.T) {
	fs := New(0)
	w := fs.Writer("/w")
	fmt.Fprintf(w, "line %d\n", 1)
	w.WriteString("line 2\n")
	if fs.Exists("/w") {
		t.Fatal("file should not exist before Close")
	}
	w.Close()
	lines, err := fs.ReadLines("/w")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || lines[0] != "line 1" || lines[1] != "line 2" {
		t.Errorf("lines = %v", lines)
	}
}

func TestSplitsCoverFileExactly(t *testing.T) {
	fs := New(10)
	fs.Create("/f", []byte(strings.Repeat("x", 35)))
	splits, err := fs.Splits("/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 4 {
		t.Fatalf("splits = %d, want 4", len(splits))
	}
	var last int64
	for i, sp := range splits {
		if sp.Start != last {
			t.Errorf("split %d starts at %d, want %d", i, sp.Start, last)
		}
		if sp.Index != i {
			t.Errorf("split %d has index %d", i, sp.Index)
		}
		last = sp.End
	}
	if last != 35 {
		t.Errorf("splits end at %d, want 35", last)
	}
}

func TestSplitsEmptyFile(t *testing.T) {
	fs := New(10)
	fs.Create("/e", nil)
	splits, err := fs.Splits("/e")
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 0 {
		t.Errorf("splits of empty file = %d, want 0", len(splits))
	}
}

// readViaSplits reads every record of the file through its splits, in
// order, the way a map wave does.
func readViaSplits(t *testing.T, fs *FS, path string) []string {
	t.Helper()
	splits, err := fs.Splits(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, sp := range splits {
		rd, err := fs.OpenSplit(sp)
		if err != nil {
			t.Fatal(err)
		}
		for {
			rec, ok := rd.Next()
			if !ok {
				break
			}
			out = append(out, rec)
		}
	}
	return out
}

func TestSplitRecordAlignment(t *testing.T) {
	// Records of various lengths with a tiny split size force records to
	// straddle split boundaries; Hadoop alignment must deliver each record
	// exactly once.
	lines := []string{"a", "bb", "ccc", "dddd", "eeeee", "ffffff", "g", "hh"}
	fs := New(7)
	fs.WriteLines("/f", lines)
	got := readViaSplits(t, fs, "/f")
	if len(got) != len(lines) {
		t.Fatalf("got %d records, want %d: %v", len(got), len(lines), got)
	}
	for i := range lines {
		if got[i] != lines[i] {
			t.Errorf("record %d = %q, want %q", i, got[i], lines[i])
		}
	}
}

func TestSplitNoTrailingNewline(t *testing.T) {
	fs := New(4)
	fs.Create("/f", []byte("ab\ncdefg")) // final record unterminated
	got := readViaSplits(t, fs, "/f")
	if len(got) != 2 || got[0] != "ab" || got[1] != "cdefg" {
		t.Errorf("records = %v", got)
	}
}

func TestCounters(t *testing.T) {
	fs := New(0)
	fs.Create("/f", []byte("abcde\n"))
	if fs.BytesWritten() != 6 {
		t.Errorf("BytesWritten = %d", fs.BytesWritten())
	}
	fs.ReadAll("/f")
	if fs.BytesRead() != 6 {
		t.Errorf("BytesRead = %d", fs.BytesRead())
	}
	fs.CountDatasetRead()
	if fs.DatasetReads() != 2 {
		t.Errorf("DatasetReads = %d", fs.DatasetReads())
	}
	fs.ResetCounters()
	if fs.BytesRead() != 0 || fs.BytesWritten() != 0 || fs.DatasetReads() != 0 {
		t.Error("ResetCounters left non-zero counters")
	}
	if !fs.Exists("/f") {
		t.Error("ResetCounters should not touch files")
	}
}

func TestImportExportLocal(t *testing.T) {
	dir := t.TempDir()
	local := filepath.Join(dir, "in.txt")
	if err := os.WriteFile(local, []byte("1 2\n3 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := New(0)
	if err := fs.ImportLocal(local, "/data"); err != nil {
		t.Fatal(err)
	}
	lines, err := fs.ReadLines("/data")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	out := filepath.Join(dir, "out.txt")
	if err := fs.ExportLocal("/data", out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "1 2\n3 4\n" {
		t.Errorf("exported = %q", data)
	}
	if err := fs.ImportLocal(filepath.Join(dir, "nope"), "/x"); err == nil {
		t.Error("expected error importing missing file")
	}
}

func TestOverwrite(t *testing.T) {
	fs := New(0)
	fs.Create("/f", []byte("old"))
	fs.Create("/f", []byte("new"))
	got, _ := fs.ReadAll("/f")
	if string(got) != "new" {
		t.Errorf("contents = %q", got)
	}
}

// TestPropSplitsDeliverEveryRecordOnce is the core DFS invariant: for any
// record set and any split size, reading via splits equals reading the
// whole file.
func TestPropSplitsDeliverEveryRecordOnce(t *testing.T) {
	f := func(seed int64, splitRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		splitSize := 1 + int(splitRaw)%64
		n := r.Intn(50)
		lines := make([]string, n)
		for i := range lines {
			lines[i] = strings.Repeat(string(rune('a'+i%26)), 1+r.Intn(12))
		}
		fs := New(splitSize)
		fs.WriteLines("/f", lines)
		splits, err := fs.Splits("/f")
		if err != nil {
			return false
		}
		var got []string
		for _, sp := range splits {
			rd, err := fs.OpenSplit(sp)
			if err != nil {
				return false
			}
			for {
				rec, ok := rd.Next()
				if !ok {
					break
				}
				got = append(got, rec)
			}
		}
		if len(got) != len(lines) {
			return false
		}
		for i := range lines {
			if got[i] != lines[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
