package dfs

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// pointFile renders n points of dim coordinates as the engine's text
// format and returns the text plus the expected decoded values.
func pointFile(n, dim int, seed int64) (string, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for d := range p {
			p[d] = rng.NormFloat64() * 100
		}
		pts[i] = p
		for d, x := range p {
			if d > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%g", x)
		}
		b.WriteByte('\n')
	}
	return b.String(), pts
}

// readAllSplitPoints decodes every split of path and returns the points
// in order.
func readAllSplitPoints(t *testing.T, fs *FS, path string, dim int) [][]float64 {
	t.Helper()
	splits, err := fs.Splits(path)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]float64
	for _, sp := range splits {
		ps, err := fs.OpenSplitPoints(sp, dim)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ps.Len(); i++ {
			out = append(out, ps.At(i))
		}
	}
	return out
}

func TestOpenSplitPointsDecodesEveryRecordOnce(t *testing.T) {
	text, want := pointFile(500, 3, 1)
	fs := New(256) // many splits, records straddling boundaries
	fs.Create("/p", []byte(text))
	got := readAllSplitPoints(t, fs, "/p", 3)
	if len(got) != len(want) {
		t.Fatalf("decoded %d points, want %d", len(got), len(want))
	}
	for i := range want {
		for d := range want[i] {
			if got[i][d] != want[i][d] {
				t.Fatalf("point %d dim %d: got %v want %v", i, d, got[i][d], want[i][d])
			}
		}
	}
}

// TestOpenSplitPointsAccountingMatchesRecordReader checks that a decoded
// scan advances BytesRead exactly as a text scan of the same splits does,
// on every scan — the paper's I/O model must not notice the cache.
func TestOpenSplitPointsAccountingMatchesRecordReader(t *testing.T) {
	text, _ := pointFile(300, 4, 2)
	fs := New(512)
	fs.Create("/p", []byte(text))
	splits, err := fs.Splits("/p")
	if err != nil {
		t.Fatal(err)
	}
	base := fs.BytesRead()
	for _, sp := range splits {
		rd, err := fs.OpenSplit(sp)
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, ok := rd.Next(); !ok {
				break
			}
		}
	}
	textBytes := fs.BytesRead() - base

	for scan := 0; scan < 3; scan++ { // first scan decodes, later scans hit cache
		before := fs.BytesRead()
		readAllSplitPoints(t, fs, "/p", 4)
		if got := fs.BytesRead() - before; got != textBytes {
			t.Fatalf("scan %d accounted %d bytes, text scan accounts %d", scan, got, textBytes)
		}
	}
}

func TestOpenSplitPointsCacheServesSameBacking(t *testing.T) {
	text, _ := pointFile(100, 2, 3)
	fs := New(0)
	fs.Create("/p", []byte(text))
	splits, _ := fs.Splits("/p")
	a, err := fs.OpenSplitPoints(splits[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fs.OpenSplitPoints(splits[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second scan did not hit the cache")
	}
}

func TestOpenSplitPointsInvalidation(t *testing.T) {
	text, _ := pointFile(50, 2, 4)
	fs := New(0)
	fs.Create("/p", []byte(text))
	splits, _ := fs.Splits("/p")
	old, err := fs.OpenSplitPoints(splits[0], 2)
	if err != nil {
		t.Fatal(err)
	}

	// Overwrite: the cache must serve the new contents.
	fs.Create("/p", []byte("7 8\n9 10\n"))
	splits, _ = fs.Splits("/p")
	ps, err := fs.OpenSplitPoints(splits[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if ps == old {
		t.Fatal("overwrite did not invalidate the decode cache")
	}
	if ps.Len() != 2 || ps.At(0)[0] != 7 || ps.At(1)[1] != 10 {
		t.Fatalf("decoded stale contents: %v points", ps.Len())
	}
	// The pre-overwrite PointSplit stays a consistent snapshot.
	if old.Len() != 50 {
		t.Fatalf("old snapshot mutated: %d points", old.Len())
	}

	// Delete: decode must fail, and a re-created file decodes fresh.
	fs.Delete("/p")
	if _, err := fs.OpenSplitPoints(splits[0], 2); err == nil {
		t.Fatal("decode of deleted file succeeded")
	}
	fs.Create("/p", []byte("1 2\n"))
	splits, _ = fs.Splits("/p")
	ps, err = fs.OpenSplitPoints(splits[0], 2)
	if err != nil || ps.Len() != 1 {
		t.Fatalf("decode after re-create: %v, %v", ps, err)
	}
}

// TestOpenSplitPointsSetSplitSize re-splits the file and checks both that
// the cache invalidates and that stale Split descriptors (obtained under
// the old layout) still decode correctly rather than poisoning the new
// layout's slots.
func TestOpenSplitPointsSetSplitSize(t *testing.T) {
	text, want := pointFile(200, 2, 5)
	fs := New(1 << 10)
	fs.Create("/p", []byte(text))
	oldSplits, _ := fs.Splits("/p")
	readAllSplitPoints(t, fs, "/p", 2)

	fs.SetSplitSize(256)
	got := readAllSplitPoints(t, fs, "/p", 2)
	if len(got) != len(want) {
		t.Fatalf("re-split decode lost points: %d vs %d", len(got), len(want))
	}

	// A stale descriptor from the old layout must still read its records.
	stale, err := fs.OpenSplitPoints(oldSplits[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if stale.Len() == 0 {
		t.Fatal("stale split decoded no points")
	}
	// And it must not have poisoned the canonical slot of the new layout.
	newSplits, _ := fs.Splits("/p")
	fresh, err := fs.OpenSplitPoints(newSplits[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Len() == stale.Len() {
		t.Fatalf("new-layout slot served the stale decode (%d points)", stale.Len())
	}
}

// TestOpenSplitPointsSplitNarrowerThanRecord pins the RecordReader parity
// on degenerate layouts: a split too narrow to own any record (its whole
// window sits inside one record) must decode to zero points, not panic,
// and the full set of splits must still deliver every record exactly once.
func TestOpenSplitPointsSplitNarrowerThanRecord(t *testing.T) {
	text, want := pointFile(2, 6, 7) // ~180-byte records
	fs := New(50)                    // splits far narrower than one record
	fs.Create("/p", []byte(text))
	got := readAllSplitPoints(t, fs, "/p", 6)
	if len(got) != len(want) {
		t.Fatalf("decoded %d points, want %d", len(got), len(want))
	}
	for i := range want {
		for d := range want[i] {
			if got[i][d] != want[i][d] {
				t.Fatalf("point %d dim %d: got %v want %v", i, d, got[i][d], want[i][d])
			}
		}
	}
}

// TestOpenSplitPointsStaleSplitBeyondShrunkenFile holds split descriptors
// across an overwrite that shrinks the file: descriptors whose window now
// lies beyond the data must decode to zero points (on both scan paths),
// not panic.
func TestOpenSplitPointsStaleSplitBeyondShrunkenFile(t *testing.T) {
	text, _ := pointFile(200, 3, 8)
	fs := New(512)
	fs.Create("/p", []byte(text))
	stale, err := fs.Splits("/p")
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) < 3 {
		t.Fatalf("want ≥3 splits, got %d", len(stale))
	}
	fs.Create("/p", []byte("1 2 3\n")) // shrink far below the old windows
	for _, sp := range stale[1:] {
		ps, err := fs.OpenSplitPoints(sp, 3)
		if err != nil {
			t.Fatal(err)
		}
		if ps.Len() != 0 {
			t.Errorf("stale split %d decoded %d points from shrunken file", sp.Index, ps.Len())
		}
		rd, err := fs.OpenSplit(sp)
		if err != nil {
			t.Fatal(err)
		}
		if rec, ok := rd.Next(); ok {
			t.Errorf("stale split %d text scan returned record %q", sp.Index, rec)
		}
	}
}

func TestOpenSplitPointsBadRecord(t *testing.T) {
	fs := New(0)
	fs.Create("/p", []byte("1 2\n3 oops\n"))
	splits, _ := fs.Splits("/p")
	if _, err := fs.OpenSplitPoints(splits[0], 2); err == nil {
		t.Fatal("bad coordinate accepted")
	}
	fs.Create("/q", []byte("1 2 3\n"))
	splits, _ = fs.Splits("/q")
	if _, err := fs.OpenSplitPoints(splits[0], 2); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := fs.OpenSplitPoints(splits[0], 0); err == nil {
		t.Fatal("non-positive dim accepted")
	}
}

// TestOpenSplitPointsConcurrent hammers one file from many goroutines the
// way a map wave does — first touch races to decode, later touches serve
// the cache — and is meant to run under -race.
func TestOpenSplitPointsConcurrent(t *testing.T) {
	text, want := pointFile(1000, 3, 6)
	fs := New(512)
	fs.Create("/p", []byte(text))
	splits, err := fs.Splits("/p")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total := 0
			for _, sp := range splits {
				ps, err := fs.OpenSplitPoints(sp, 3)
				if err != nil {
					errs <- err
					return
				}
				total += ps.Len()
			}
			if total != len(want) {
				errs <- fmt.Errorf("scanned %d points, want %d", total, len(want))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
