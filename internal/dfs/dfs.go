// Package dfs simulates the distributed file system underneath the
// MapReduce engine: files divided into fixed-size splits, exactly like
// HDFS blocks feeding Hadoop input formats. Point datasets come in two
// record formats — newline-delimited text (TextInputFormat shape) and the
// GMPB binary frame format of binary.go, specified in docs/formats.md —
// both served through the same decoded point cache (pointcache.go) and
// its columnar views (columnar.go).
//
// The paper's cost model counts "dataset reads" as the dominant I/O cost of
// chained MapReduce jobs (G-means pays O(log2 k) reads, multi-k-means one
// read per iteration). This package tracks those reads so the experiment
// harness can report them alongside wall-clock time.
//
// Files live in memory as byte slices. That is a deliberate substitution
// for HDFS blocks on spinning disks: the algorithms under study never
// observe storage latency directly, only (a) how many times the dataset is
// scanned and (b) how records are partitioned into splits — both of which
// are modeled faithfully.
//
// # Contract
//
// Split ownership. A split [Start, End) owns the records that begin at or
// after Start (skipping a partial leading record unless Start is 0) and
// reads through the record straddling End; a binary split owns the frames
// whose first byte lies in its window. Every record has exactly one owner
// under any layout. One implementation per format enforces the rules —
// recordIter behind both RecordReader and the cache's text decode,
// decodeBinarySplit behind the binary decode — so scan paths cannot
// diverge on ownership.
//
// Snapshot reads. OpenSplit, OpenSplitPoints and Columns hand out
// immutable views: a reader holding one across a concurrent overwrite,
// delete or re-split keeps a consistent snapshot of the bytes it opened.
//
// Cache invalidation. The decoded point cache (and the columnar views
// hanging off its PointSplits) invalidates per path on Create and Delete,
// and wholesale on SetSplitSize; stale split descriptors decode correctly
// but bypass the cache.
//
// Accounting conservation. Every scan of a split — text or binary, cold
// or cached, row-major or columnar — accounts the split's full logical
// bytes, and per-split shares always sum to the file size; jobs tick one
// dataset read per non-empty input scan. Caching removes parse CPU only;
// the paper's I/O model never notices it.
package dfs

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultSplitSize mirrors the 64 MB default HDFS block size mentioned in
// the paper ("the size of a single split (64MB on a default Hadoop
// installation)").
const DefaultSplitSize = 64 << 20

// ErrNotFound is returned when a path does not exist in the file system.
var ErrNotFound = errors.New("dfs: file not found")

// FS is an in-memory simulated distributed file system.
//
// All methods are safe for concurrent use. Read accounting is monotonic and
// survives file deletion (the counters describe the history of the
// computation, not the current state of storage).
type FS struct {
	mu        sync.RWMutex
	files     map[string]*file
	splitSize int
	// points caches the decoded float64 form of each file's splits (see
	// pointcache.go). Guarded by mu; invalidated on Create, Delete and
	// SetSplitSize.
	points map[string]*filePoints
	// versions counts generations per path: every Create and Delete bumps
	// the path's entry, and entries survive deletion (a re-created path must
	// not repeat an old version). Replication layers cache file replicas per
	// (path, version). Guarded by mu; lazily allocated.
	versions map[string]int64

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	// datasetReads counts whole-file scan passes (one per OpenAll or per
	// complete set of split readers consumed); this is the paper's "dataset
	// read" unit.
	datasetReads atomic.Int64
}

type file struct {
	data []byte
}

// New creates an empty file system with the given split size. A
// non-positive splitSize selects DefaultSplitSize.
func New(splitSize int) *FS {
	if splitSize <= 0 {
		splitSize = DefaultSplitSize
	}
	return &FS{files: make(map[string]*file), splitSize: splitSize}
}

// SplitSize returns the configured split size in bytes.
func (fs *FS) SplitSize() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.splitSize
}

// SetSplitSize reconfigures the split size; subsequent Splits calls use the
// new value. A non-positive size selects DefaultSplitSize. Callers that
// stream a dataset of unknown size into the FS use this to right-size the
// splits once the total byte count is known.
func (fs *FS) SetSplitSize(size int) {
	if size <= 0 {
		size = DefaultSplitSize
	}
	fs.mu.Lock()
	fs.splitSize = size
	fs.invalidateAllPoints() // the split layout of every file changed
	fs.mu.Unlock()
}

// BytesRead returns the total number of bytes served to readers so far.
func (fs *FS) BytesRead() int64 { return fs.bytesRead.Load() }

// BytesWritten returns the total number of bytes written so far.
func (fs *FS) BytesWritten() int64 { return fs.bytesWritten.Load() }

// DatasetReads returns the number of whole-dataset scan passes recorded.
func (fs *FS) DatasetReads() int64 { return fs.datasetReads.Load() }

// ResetCounters zeroes the I/O accounting. File contents are untouched.
func (fs *FS) ResetCounters() {
	fs.bytesRead.Store(0)
	fs.bytesWritten.Store(0)
	fs.datasetReads.Store(0)
}

// Create replaces the file at path with the given contents.
func (fs *FS) Create(path string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	fs.files[path] = &file{data: cp}
	fs.invalidatePoints(path)
	fs.bumpVersion(path)
	fs.bytesWritten.Add(int64(len(data)))
}

// bumpVersion advances path's generation counter; callers hold fs.mu.
func (fs *FS) bumpVersion(path string) {
	if fs.versions == nil {
		fs.versions = make(map[string]int64)
	}
	fs.versions[path]++
}

// Version reports the generation counter of path: zero for a path never
// created, and a strictly increasing value across every Create and Delete
// of the path since this FS was constructed (deletion does not reset it).
// Replication layers use it to decide whether a cached replica of the file
// is current.
func (fs *FS) Version(path string) int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.versions[path]
}

// Contents returns a copy of the file's raw bytes without touching any read
// accounting. It exists for the replication plane of distributed backends —
// shipping a file to a worker is a transport cost, not one of the paper's
// dataset scans; ReadAll is the accessor that accounts a scan.
func (fs *FS) Contents(path string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	cp := make([]byte, len(f.data))
	copy(cp, f.data)
	return cp, nil
}

// Writer returns a buffered writer that materializes into path on Close.
// Writing to an existing path overwrites it atomically at Close time.
func (fs *FS) Writer(path string) *FileWriter {
	return &FileWriter{fs: fs, path: path}
}

// FileWriter accumulates bytes and commits them to the FS on Close.
type FileWriter struct {
	fs   *FS
	path string
	buf  bytes.Buffer
}

// Write appends p to the pending file contents.
func (w *FileWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }

// WriteString appends s to the pending file contents.
func (w *FileWriter) WriteString(s string) (int, error) { return w.buf.WriteString(s) }

// Close commits the buffered contents to the file system.
func (w *FileWriter) Close() error {
	w.fs.Create(w.path, w.buf.Bytes())
	return nil
}

// Delete removes a file. Deleting a missing file is a no-op.
func (fs *FS) Delete(path string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; ok {
		delete(fs.files, path)
		fs.bumpVersion(path)
	}
	fs.invalidatePoints(path)
}

// Exists reports whether path is present.
func (fs *FS) Exists(path string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[path]
	return ok
}

// Size returns the length in bytes of the file at path.
func (fs *FS) Size(path string) (int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return int64(len(f.data)), nil
}

// List returns the sorted paths currently stored.
func (fs *FS) List() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ReadAll returns a copy of the file contents and accounts one dataset read.
func (fs *FS) ReadAll(path string) ([]byte, error) {
	fs.mu.RLock()
	f, ok := fs.files[path]
	fs.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	cp := make([]byte, len(f.data))
	copy(cp, f.data)
	fs.bytesRead.Add(int64(len(cp)))
	fs.datasetReads.Add(1)
	return cp, nil
}

// Split identifies one contiguous byte range of a file, aligned to record
// (line) boundaries the same way Hadoop's TextInputFormat aligns splits: a
// reader assigned [Start, End) consumes the first record that *begins* at
// or after Start and the record that straddles End.
type Split struct {
	Path  string
	Index int
	Start int64
	End   int64 // exclusive
}

// Splits partitions the file at path into splits of the file system's split
// size. The final split absorbs the remainder. An empty file yields no
// splits.
func (fs *FS) Splits(path string) ([]Split, error) {
	fs.mu.RLock()
	f, ok := fs.files[path]
	ss := int64(fs.splitSize)
	fs.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	total := int64(len(f.data))
	if total == 0 {
		return nil, nil
	}
	var out []Split
	for off, i := int64(0), 0; off < total; off, i = off+ss, i+1 {
		end := off + ss
		if end > total {
			end = total
		}
		out = append(out, Split{Path: path, Index: i, Start: off, End: end})
	}
	return out, nil
}

// CountDatasetRead records one whole-dataset scan. The MapReduce engine
// calls this once per job input, since every map wave collectively reads
// the input exactly once.
func (fs *FS) CountDatasetRead() { fs.datasetReads.Add(1) }

// OpenSplit returns a RecordReader over the records of the given split.
// Binary point files (see binary.go) have no text records; scanning one as
// text is always a bug, so it is rejected here rather than letting the
// caller mis-parse frame bytes as lines.
func (fs *FS) OpenSplit(sp Split) (*RecordReader, error) {
	fs.mu.RLock()
	f, ok := fs.files[sp.Path]
	fs.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, sp.Path)
	}
	if IsBinary(f.data) {
		return nil, fmt.Errorf("dfs: %s is a binary point file; open it with OpenSplitPoints", sp.Path)
	}
	return newRecordReader(fs, f.data, sp), nil
}

// recordIter walks the newline-delimited records of a split using the
// Hadoop alignment convention (skip a partial leading record unless the
// split starts at byte 0; read through the record straddling End). It is
// the single implementation of the split-ownership rules — RecordReader
// (text scans) and decodeSplit (the point cache) both consume it, so the
// two paths cannot diverge on which records a split owns.
type recordIter struct {
	data []byte
	pos  int64
	end  int64
	done bool
	// recStart is the byte offset in data of the record last returned by
	// next — the record's true position in the file, which is what Hadoop's
	// TextInputFormat hands mappers as the record key. It differs from a
	// running sum of record lengths whenever the split skipped a partial
	// leading record or a record ends in "\r\n".
	recStart int64
}

func newRecordIter(data []byte, sp Split) recordIter {
	it := recordIter{data: data, pos: sp.Start, end: sp.End}
	// A stale descriptor can outlive its file's size (the path overwritten
	// with shorter contents): a window beyond the data owns no records.
	if sp.Start < 0 || sp.Start >= int64(len(data)) {
		it.done = true
		return it
	}
	if sp.Start > 0 {
		// Skip the tail of the record owned by the previous split.
		idx := bytes.IndexByte(data[sp.Start:], '\n')
		if idx < 0 {
			it.done = true
		} else {
			it.pos = sp.Start + int64(idx) + 1
		}
	}
	return it
}

// next returns the next record (without its line terminator — a trailing
// "\n" or "\r\n" — as a view into the file bytes) and true, or (nil, false)
// once the split is exhausted. After a true return, it.recStart holds the
// record's byte offset and it.pos sits just past its terminator, so
// it.pos - it.recStart is the record's full consumed byte length.
func (it *recordIter) next() ([]byte, bool) {
	// Hadoop's LineRecordReader reads every record whose first byte lies at
	// or before End (inclusive); the matching skip rule in newRecordIter
	// guarantees each record is owned by exactly one split.
	if it.done || it.pos > it.end || it.pos >= int64(len(it.data)) {
		it.done = true
		return nil, false
	}
	it.recStart = it.pos
	idx := bytes.IndexByte(it.data[it.pos:], '\n')
	var rec []byte
	if idx < 0 {
		rec = it.data[it.pos:]
		it.pos = int64(len(it.data))
		it.done = true
	} else {
		rec = it.data[it.pos : it.pos+int64(idx)]
		it.pos += int64(idx) + 1
	}
	// CRLF line endings: the terminator is two bytes; the '\r' belongs to
	// it, not to the record, exactly as in Hadoop's LineRecordReader.
	if n := len(rec); n > 0 && rec[n-1] == '\r' {
		rec = rec[:n-1]
	}
	return rec, true
}

// RecordReader iterates the records of a split as strings.
//
// Byte accounting is buffered locally and published to the file system
// when the reader is exhausted: dozens of concurrent map tasks hammering
// one atomic counter per record would serialize the map wave.
type RecordReader struct {
	fs      *FS
	it      recordIter
	pending int64
}

func newRecordReader(fs *FS, data []byte, sp Split) *RecordReader {
	return &RecordReader{fs: fs, it: newRecordIter(data, sp)}
}

// Next returns the next record (without its line terminator) and true, or
// ("", false) when the split is exhausted. Returned strings are copies and
// remain valid indefinitely.
func (r *RecordReader) Next() (string, bool) {
	line, _, ok := r.NextRecord()
	return line, ok
}

// NextRecord is Next plus the record's true byte offset in the file — the
// value Hadoop's TextInputFormat uses as the record key. Unlike a running
// sum of record lengths, the offset is correct on every split (the partial
// leading record a non-first split skips is accounted for) and for both
// "\n" and "\r\n" terminators.
func (r *RecordReader) NextRecord() (line string, offset int64, ok bool) {
	rec, ok := r.it.next()
	if !ok {
		r.flush()
		return "", 0, false
	}
	// Account the bytes actually consumed (record + terminator), so CRLF
	// files and unterminated final records are charged exactly.
	r.pending += r.it.pos - r.it.recStart
	if r.it.done {
		r.flush()
	}
	return string(rec), r.it.recStart, true
}

func (r *RecordReader) flush() {
	if r.pending != 0 {
		r.fs.bytesRead.Add(r.pending)
		r.pending = 0
	}
}

// WriteLines joins lines with '\n' and stores them at path. A trailing
// newline terminates the file when any lines are present.
func (fs *FS) WriteLines(path string, lines []string) {
	var buf bytes.Buffer
	for _, ln := range lines {
		buf.WriteString(ln)
		buf.WriteByte('\n')
	}
	fs.Create(path, buf.Bytes())
}

// ReadLines returns all records of the file at path in order. It accounts
// one dataset read.
func (fs *FS) ReadLines(path string) ([]string, error) {
	data, err := fs.ReadAll(path)
	if err != nil {
		return nil, err
	}
	return SplitLines(data), nil
}

// SplitLines splits file contents into records, tolerating records of up
// to 64 MiB (the bufio.Scanner default of 64 KiB is too small for very
// wide points). Shared by ReadLines and whole-file text readers layered
// on ReadAll (e.g. dataset.LoadPoints), so record splitting cannot
// diverge between them.
func SplitLines(data []byte) []string {
	var out []string
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	return out
}

// ImportLocal loads an operating-system file into the simulated FS. It is
// used by the CLI tools so datasets generated with cmd/datagen can be fed
// to the engine.
func (fs *FS) ImportLocal(osPath, dfsPath string) error {
	f, err := os.Open(osPath)
	if err != nil {
		return fmt.Errorf("dfs: import %s: %w", osPath, err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return fmt.Errorf("dfs: import %s: %w", osPath, err)
	}
	fs.Create(dfsPath, data)
	return nil
}

// ExportLocal writes a simulated file out to the operating system.
func (fs *FS) ExportLocal(dfsPath, osPath string) error {
	data, err := fs.ReadAll(dfsPath)
	if err != nil {
		return err
	}
	return os.WriteFile(osPath, data, 0o644)
}
