package dfs

// Decoded-split point cache.
//
// Every mapper in this repository consumes the same text records and decodes
// them into the same float64 points, every iteration. The paper's cost model
// charges an iteration one *dataset read* — it says nothing about paying the
// strconv.ParseFloat tax n·dim times per pass. This file caches the decoded
// form of each split so the parse happens once per (file, split) and later
// scans serve ready-made points.
//
// Accounting stays faithful to the paper's I/O model: every OpenSplitPoints
// call accounts the split's logical text bytes as read, exactly as a
// RecordReader pass over the same split would, and jobs keep ticking one
// dataset read per input scan. The cache changes CPU cost only — what the
// counters measure (scans of the dataset) is untouched.
//
// Memory trade-off: one cached file costs ≈ 8·n·dim bytes of float64s on top
// of the text bytes already held by the in-memory FS (text is ~15 bytes per
// coordinate, so the decoded form roughly halves again of the text size).
//
// Invalidation: Create and Delete drop the affected path's decoded entry;
// SetSplitSize drops every entry (the split layout changed). Readers that
// obtained a PointSplit before an invalidation keep a consistent snapshot,
// mirroring how RecordReader keeps reading the byte slice it captured.

import (
	"fmt"
	"sync"

	"gmeansmr/internal/pointtext"
)

// PointSplit is the decoded form of one split: Len() points of Dim()
// float64 coordinates, backed by a single flat array. At returns strided
// views into that array — callers must treat them as read-only and may
// retain them for as long as they like (the backing array is immutable
// once decoded). Columns (columnar.go) serves the same coordinates
// dim-major for the batch kernels, materialized lazily at most once.
type PointSplit struct {
	flat  []float64
	dim   int
	bytes int64

	// raw is the split's binary frame window when the split was decoded
	// from a binary point file (nil for text); Columns fills the dim-major
	// view straight from it instead of transposing flat.
	raw []byte

	colOnce sync.Once
	col     *ColumnarSplit
}

// Len returns the number of points in the split.
func (p *PointSplit) Len() int { return len(p.flat) / p.dim }

// Dim returns the dimensionality of the points.
func (p *PointSplit) Dim() int { return p.dim }

// At returns the i-th point as a read-only view into the backing array.
// The full-slice expression pins capacity so an append by a misbehaving
// caller cannot clobber the neighbouring point.
func (p *PointSplit) At(i int) []float64 {
	return p.flat[i*p.dim : (i+1)*p.dim : (i+1)*p.dim]
}

// Bytes returns the logical byte size of the split's records: for text
// files, the bytes a RecordReader pass over the same split accounts; for
// binary files, the split's owned frames plus its share of the header.
// Either way the shares of a full split set sum to the file size, so every
// scan pays the paper's full I/O cost.
func (p *PointSplit) Bytes() int64 { return p.bytes }

// filePoints is the decoded cache entry for one file: a snapshot of the
// file's bytes plus one lazily-decoded slot per split. The snapshot makes
// concurrent decode immune to a mid-wave overwrite of the path (readers of
// the old entry keep the old data, exactly like RecordReader).
type filePoints struct {
	data      []byte
	dim       int
	splitSize int
	slots     []pointSlot
}

type pointSlot struct {
	once sync.Once
	ps   *PointSplit
	err  error
}

// valid reports whether the entry still describes the current file bytes,
// dimensionality and split layout.
func (fp *filePoints) valid(dim, splitSize int, data []byte) bool {
	return fp.dim == dim && fp.splitSize == splitSize && len(fp.data) == len(data) &&
		(len(data) == 0 || &fp.data[0] == &data[0])
}

// OpenSplitPoints returns the decoded points of the given split, decoding
// on first access and serving the cached decode on every later scan. Both
// record formats are supported: text records are parsed through the shared
// tokenizer, binary files (see binary.go) decode their fixed-stride frames
// directly. Each call accounts the split's logical bytes as read, so
// BytesRead advances per scan exactly as a full pass over the file does;
// dataset-read accounting is unchanged (jobs tick it once per input scan).
// Every record must hold exactly dim coordinates.
//
// The returned PointSplit and all point views are safe for concurrent use.
func (fs *FS) OpenSplitPoints(sp Split, dim int) (*PointSplit, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("dfs: OpenSplitPoints needs a positive dim, got %d", dim)
	}
	// Fast path: cache hits take only the read lock, like OpenSplit, so a
	// map wave's split opens never serialize on an exclusive section.
	fs.mu.RLock()
	f, ok := fs.files[sp.Path]
	fp := fs.points[sp.Path]
	ss := fs.splitSize
	fs.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, sp.Path)
	}
	if fp == nil || !fp.valid(dim, ss, f.data) {
		fs.mu.Lock()
		f, ok = fs.files[sp.Path]
		if !ok {
			fs.mu.Unlock()
			return nil, fmt.Errorf("%w: %s", ErrNotFound, sp.Path)
		}
		ss = fs.splitSize
		fp = fs.points[sp.Path]
		if fp == nil || !fp.valid(dim, ss, f.data) {
			numSplits := (len(f.data) + ss - 1) / ss
			fp = &filePoints{data: f.data, dim: dim, splitSize: ss, slots: make([]pointSlot, numSplits)}
			if fs.points == nil {
				fs.points = make(map[string]*filePoints)
			}
			fs.points[sp.Path] = fp
		}
		fs.mu.Unlock()
	}

	stride := int64(fp.splitSize)
	canonical := sp.Index >= 0 && sp.Index < len(fp.slots) && sp.Start == int64(sp.Index)*stride
	if canonical {
		wantEnd := sp.Start + stride
		if limit := int64(len(fp.data)); wantEnd > limit {
			wantEnd = limit
		}
		canonical = sp.End == wantEnd
	}
	if !canonical {
		// A split descriptor from a stale layout (e.g. obtained before
		// SetSplitSize); decode it uncached rather than poisoning the cache.
		ps, err := decodeSplit(fp.data, sp, dim)
		if err != nil {
			return nil, err
		}
		fs.bytesRead.Add(ps.bytes)
		return ps, nil
	}
	slot := &fp.slots[sp.Index]
	slot.once.Do(func() {
		slot.ps, slot.err = decodeSplit(fp.data, sp, dim)
	})
	if slot.err != nil {
		return nil, slot.err
	}
	fs.bytesRead.Add(slot.ps.bytes)
	return slot.ps, nil
}

// invalidatePoints drops the decoded entry for path. Callers hold fs.mu.
func (fs *FS) invalidatePoints(path string) {
	delete(fs.points, path)
}

// invalidateAllPoints drops every decoded entry. Callers hold fs.mu.
func (fs *FS) invalidateAllPoints() {
	fs.points = nil
}

// decodeSplit parses the records of one split into a flat point array,
// dispatching on the file's format: binary frames decode at memory
// bandwidth (decodeBinarySplit), text records go through the shared
// tokenizer. The text walk uses the same recordIter that backs
// RecordReader, so record ownership is rule-for-rule identical to a text
// scan, and it counts the same consumed bytes per record that RecordReader
// accounts.
func decodeSplit(data []byte, sp Split, dim int) (*PointSplit, error) {
	if IsBinary(data) {
		return decodeBinarySplit(data, sp, dim)
	}
	// Pre-size for the common case of ~15 bytes per coordinate; a split
	// narrower than one record may own no records at all.
	est := int(sp.End-sp.Start)/(15*dim) + 1
	if est < 1 {
		est = 1
	}
	flat := make([]float64, 0, est*dim)
	var logical int64
	it := newRecordIter(data, sp)
	for {
		rec, ok := it.next()
		if !ok {
			break
		}
		// One string conversion per record: instantiating the tokenizer
		// with []byte would instead allocate a string per coordinate
		// (strconv.ParseFloat needs string input).
		var err error
		flat, err = pointtext.AppendPoint(flat, string(rec), dim)
		if err != nil {
			return nil, fmt.Errorf("dfs: %s split %d: %w", sp.Path, sp.Index, err)
		}
		logical += it.pos - it.recStart
	}
	return &PointSplit{flat: flat, dim: dim, bytes: logical}, nil
}
