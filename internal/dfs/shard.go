package dfs

// Shard ownership: how a distributed backend maps a file's splits onto the
// nodes of a cluster. Ownership is a pure function of the split index and
// the node count — split i belongs to node i mod nodes — which matches the
// engine's task-placement determinism (map task t prefers node t mod
// Nodes, and for a single-input job taskID == Split.Index). Placement is a
// locality preference only: any node can execute any split against its
// file replica, and because the engine's outputs are placement-independent
// (see the mr package contract) re-running a split elsewhere changes
// nothing observable.

// ShardOwner returns the node that owns sp in a cluster of the given node
// count: sp.Index mod nodes. A non-positive node count returns 0.
func ShardOwner(sp Split, nodes int) int {
	if nodes <= 0 {
		return 0
	}
	return sp.Index % nodes
}

// OwnedSplits returns the splits of path owned by node in a cluster of the
// given node count — the shard of the file that node would serve from local
// storage in a real HDFS deployment. The returned splits preserve file
// order (ascending Index).
func (fs *FS) OwnedSplits(path string, node, nodes int) ([]Split, error) {
	all, err := fs.Splits(path)
	if err != nil {
		return nil, err
	}
	var owned []Split
	for _, sp := range all {
		if ShardOwner(sp, nodes) == node {
			owned = append(owned, sp)
		}
	}
	return owned, nil
}
