package dfs_test

import (
	"fmt"
	"log"

	"gmeansmr/internal/dfs"
)

// ExampleFS_OpenSplitPoints shows the decoded-split fast path: splits
// decode once into cached row-major points, and Columns serves the same
// coordinates dim-major for the batch kernels.
func ExampleFS_OpenSplitPoints() {
	fs := dfs.New(1 << 20)
	fs.Create("/points.txt", []byte("1 2\n3 4\n5 6\n"))

	splits, err := fs.Splits("/points.txt")
	if err != nil {
		log.Fatal(err)
	}
	ps, err := fs.OpenSplitPoints(splits[0], 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("points=%d dim=%d first=%v\n", ps.Len(), ps.Dim(), ps.At(0))

	cols := ps.Columns() // dim-major view of the same coordinates
	fmt.Printf("dim 0 across all points: %v\n", cols.Col(0))
	fmt.Printf("dataset reads=%d bytes read=%d\n", fs.DatasetReads(), fs.BytesRead())
	// Output:
	// points=3 dim=2 first=[1 2]
	// dim 0 across all points: [1 3 5]
	// dataset reads=0 bytes read=12
}
