package dfs

// Binary point-record format.
//
// The paper's storage model describes points as text ("~15 characters per
// dimension"); parsing that text is pure CPU tax the cost model never
// charges for. This file defines the repository's binary alternative: a
// fixed-size header carrying the dimensionality followed by fixed-stride
// frames of little-endian IEEE 754 float64 coordinates, one frame per
// point. Cold scans of a binary file skip strconv.ParseFloat entirely and
// decode at memory bandwidth, while the paper's I/O accounting (dataset
// reads, bytes scanned) is charged exactly as for text: every scan of a
// split accounts the split's bytes, and the per-split byte shares sum to
// the file size.
//
// Layout:
//
//	offset 0:  magic "GMPB" (4 bytes)
//	offset 4:  version  uint16 LE (currently 1)
//	offset 6:  reserved uint16 LE (zero)
//	offset 8:  dim      uint32 LE
//	offset 12: frames, each dim × 8 bytes of little-endian float64
//
// Split ownership mirrors the text rules in spirit: frame i begins at byte
// BinaryHeaderLen + i*stride, and a split [Start, End) owns exactly the
// frames whose first byte lies in that window — each frame has one owner
// for any split layout, including layouts narrower than one frame.

import (
	"encoding/binary"
	"fmt"
	"math"
)

// BinaryMagic identifies a binary point file ("G-Means Point Binary").
const BinaryMagic = "GMPB"

// BinaryVersion is the current format version written by the encoder.
const BinaryVersion = 1

// BinaryHeaderLen is the byte length of the file header.
const BinaryHeaderLen = 12

// maxBinaryDim bounds the dimensionality a header may declare; it exists
// to fail corrupt headers loudly instead of attempting absurd allocations.
const maxBinaryDim = 1 << 20

// IsBinary reports whether data begins with the binary point-file magic.
// Text scans must not be pointed at such files (see OpenSplit).
func IsBinary(data []byte) bool {
	return len(data) >= len(BinaryMagic) && string(data[:len(BinaryMagic)]) == BinaryMagic
}

// BinaryHeader renders the file header for points of the given
// dimensionality.
func BinaryHeader(dim int) []byte {
	h := make([]byte, BinaryHeaderLen)
	copy(h, BinaryMagic)
	binary.LittleEndian.PutUint16(h[4:], BinaryVersion)
	binary.LittleEndian.PutUint32(h[8:], uint32(dim))
	return h
}

// AppendBinaryPoint appends one point frame (dim × 8 bytes, little-endian
// float64) to dst and returns the extended slice.
func AppendBinaryPoint(dst []byte, p []float64) []byte {
	for _, x := range p {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}

// ParseBinaryHeader validates a binary point-file header (the first
// BinaryHeaderLen bytes) and returns the declared dimensionality. It
// checks the header only; whole-file readers additionally verify the body
// is an exact multiple of the frame size. Exported for streaming readers
// outside this package that consume the format frame by frame.
func ParseBinaryHeader(header []byte) (int, error) {
	if len(header) < BinaryHeaderLen {
		return 0, fmt.Errorf("dfs: binary file truncated inside header (%d bytes)", len(header))
	}
	if !IsBinary(header) {
		return 0, fmt.Errorf("dfs: not a binary point file")
	}
	if v := binary.LittleEndian.Uint16(header[4:]); v != BinaryVersion {
		return 0, fmt.Errorf("dfs: binary format version %d, this build reads %d", v, BinaryVersion)
	}
	dim := int(binary.LittleEndian.Uint32(header[8:]))
	if dim <= 0 || dim > maxBinaryDim {
		return 0, fmt.Errorf("dfs: binary header declares dim %d, want 1..%d", dim, maxBinaryDim)
	}
	return dim, nil
}

// DecodeBinaryFrame decodes one dim-coordinate frame into p (len(p) ==
// dim; frame holds at least 8·dim bytes).
func DecodeBinaryFrame(p []float64, frame []byte) {
	for d := range p {
		p[d] = math.Float64frombits(binary.LittleEndian.Uint64(frame[d*8:]))
	}
}

// binaryDim validates the header of a whole in-memory binary file and its
// body framing, returning the declared dimensionality. The caller has
// already checked IsBinary.
func binaryDim(data []byte) (int, error) {
	dim, err := ParseBinaryHeader(data)
	if err != nil {
		return 0, err
	}
	if (len(data)-BinaryHeaderLen)%(8*dim) != 0 {
		return 0, fmt.Errorf("dfs: binary file body is %d bytes, not a multiple of the %d-byte frame",
			len(data)-BinaryHeaderLen, 8*dim)
	}
	return dim, nil
}

// DecodeBinaryPoints decodes a whole binary point file into its declared
// dimensionality and a flat coordinate array (Len = len(flat)/dim points).
// Used by whole-file readers such as dataset.LoadPoints; split scans go
// through OpenSplitPoints instead.
func DecodeBinaryPoints(data []byte) (dim int, flat []float64, err error) {
	if !IsBinary(data) {
		return 0, nil, fmt.Errorf("dfs: not a binary point file")
	}
	dim, err = binaryDim(data)
	if err != nil {
		return 0, nil, err
	}
	body := data[BinaryHeaderLen:]
	flat = make([]float64, len(body)/8)
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:]))
	}
	return dim, flat, nil
}

// decodeBinarySplit decodes the frames owned by one split of a binary
// file. Ownership: a split owns every frame whose first byte lies in
// [Start, End). Byte accounting charges the split its owned frames plus
// its overlap with the header window, so the shares of a full split set
// sum to the file size — the same conservation the text path provides.
func decodeBinarySplit(data []byte, sp Split, dim int) (*PointSplit, error) {
	fileDim, err := binaryDim(data)
	if err != nil {
		return nil, fmt.Errorf("dfs: %s split %d: %w", sp.Path, sp.Index, err)
	}
	if fileDim != dim {
		return nil, fmt.Errorf("dfs: %s split %d: file holds %d-dimensional points, caller asked for %d",
			sp.Path, sp.Index, fileDim, dim)
	}
	stride := int64(8 * dim)
	// Clamp the window to the data: stale descriptors may outlive a shrink,
	// exactly as in the text path. A window that inverts after clamping
	// owns nothing.
	start, end := sp.Start, sp.End
	if start < 0 {
		start = 0
	}
	if limit := int64(len(data)); end > limit {
		end = limit
	}
	if start >= end {
		return &PointSplit{flat: []float64{}, dim: dim}, nil
	}
	var logical int64
	if start < BinaryHeaderLen && end > 0 {
		// Header share: the overlap of this split with the header window.
		hEnd := end
		if hEnd > BinaryHeaderLen {
			hEnd = BinaryHeaderLen
		}
		logical += hEnd - start
	}
	// First frame beginning at or after start.
	first := int64(0)
	if start > BinaryHeaderLen {
		first = (start - BinaryHeaderLen + stride - 1) / stride
	}
	// Frames strictly beginning before end.
	afterEnd := int64(0)
	if end > BinaryHeaderLen {
		afterEnd = (end - BinaryHeaderLen + stride - 1) / stride
	}
	total := (int64(len(data)) - BinaryHeaderLen) / stride
	if afterEnd > total {
		afterEnd = total
	}
	if first >= afterEnd {
		return &PointSplit{flat: []float64{}, dim: dim, bytes: logical}, nil
	}
	n := afterEnd - first
	flat := make([]float64, n*int64(dim))
	body := data[BinaryHeaderLen+first*stride:]
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:]))
	}
	logical += n * stride
	// Keep the frame window so a later Columns() call can fill the
	// dim-major view straight from the file bytes (see columnar.go).
	return &PointSplit{flat: flat, dim: dim, bytes: logical, raw: body[:n*stride]}, nil
}
