package dfs

// Columnar (dim-major) split views.
//
// The row-major PointSplit of pointcache.go serves point-at-a-time scans:
// At(i) is one contiguous dim-stride row. The batch distance kernels in
// internal/vec want the transpose — one dimension contiguous across every
// point of the split — so a kernel can stream a whole split per call
// instead of chasing n short rows. This file adds that view: every
// PointSplit can lazily materialize a ColumnarSplit holding the same
// coordinates dim-major, built at most once per cached decode and shared
// by every scan that follows.
//
// Ownership and lifetime mirror the row view exactly: the columnar flat
// array is immutable once built, callers may retain it indefinitely, and
// the view is cached *inside* its PointSplit — so the invalidation rules
// of the decode cache (Create and Delete drop the path's entry,
// SetSplitSize drops everything) apply to the columnar form for free, and
// a reader holding a view across an invalidation keeps a consistent
// snapshot.
//
// Memory trade-off: a materialized columnar view doubles the decoded
// footprint of its split (another 8·n·dim bytes). It is only built when a
// columnar consumer (mr.ColumnarMapper) actually runs, so row-major-only
// workloads pay nothing.
//
// Byte accounting is untouched: Columns is a layout change on an
// already-opened split, and the paper's I/O model charged the split's
// logical bytes when OpenSplitPoints served it.

import (
	"encoding/binary"
	"math"
)

// ColumnarSplit is the dim-major form of one decoded split: coordinate d
// of point j lives at Flat()[d*Len()+j], so each dimension is one
// contiguous array across all points. It shares its identity (and its
// row-major twin) with the PointSplit it was built from. All methods are
// safe for concurrent use; the backing array is read-only.
type ColumnarSplit struct {
	ps   *PointSplit
	flat []float64
}

// Len returns the number of points in the split.
func (c *ColumnarSplit) Len() int { return c.ps.Len() }

// Dim returns the dimensionality of the points.
func (c *ColumnarSplit) Dim() int { return c.ps.dim }

// Flat returns the dim-major backing array (length Dim()·Len()), the
// shape the vec batch kernels consume. Callers must treat it as read-only.
func (c *ColumnarSplit) Flat() []float64 { return c.flat }

// Col returns dimension d as one contiguous array across all points.
// Callers must treat it as read-only.
func (c *ColumnarSplit) Col(d int) []float64 {
	n := c.ps.Len()
	return c.flat[d*n : (d+1)*n : (d+1)*n]
}

// At returns the i-th point as a row-major view — the same slice the
// underlying PointSplit serves — so columnar consumers can still hand
// whole points to row-shaped code (candidate emission, projections)
// without a gather.
func (c *ColumnarSplit) At(i int) []float64 { return c.ps.At(i) }

// Rows returns the row-major twin of this view.
func (c *ColumnarSplit) Rows() *PointSplit { return c.ps }

// Columns returns the dim-major view of the split, materializing it on
// first call and serving the cached transpose afterwards. For splits
// decoded from a binary point file the columns fill directly from the
// file's frame bytes; text-decoded splits transpose the row-major array.
// Either way the coordinate values are the identical float64 bits the row
// view holds. Safe for concurrent use.
func (p *PointSplit) Columns() *ColumnarSplit {
	p.colOnce.Do(func() {
		n, dim := p.Len(), p.dim
		cs := &ColumnarSplit{ps: p, flat: make([]float64, n*dim)}
		if p.raw != nil {
			fillColumnsFromBinary(cs.flat, p.raw, n, dim)
		} else {
			for j := 0; j < n; j++ {
				row := p.flat[j*dim : (j+1)*dim]
				for d, v := range row {
					cs.flat[d*n+j] = v
				}
			}
		}
		p.col = cs
	})
	return p.col
}

// fillColumnsFromBinary decodes the fixed-stride frames of a binary split
// window straight into dim-major order, skipping the row-major
// intermediate. raw holds exactly n frames of dim little-endian float64s.
func fillColumnsFromBinary(dst []float64, raw []byte, n, dim int) {
	for j := 0; j < n; j++ {
		frame := raw[j*8*dim:]
		for d := 0; d < dim; d++ {
			dst[d*n+j] = math.Float64frombits(binary.LittleEndian.Uint64(frame[d*8:]))
		}
	}
}
