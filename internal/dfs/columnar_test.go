package dfs

import (
	"fmt"
	"sync"
	"testing"
)

// readAllColumns decodes every split of path and returns the points in
// order, gathered back out of the dim-major views.
func readAllColumns(t *testing.T, fs *FS, path string, dim int) [][]float64 {
	t.Helper()
	splits, err := fs.Splits(path)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]float64
	for _, sp := range splits {
		ps, err := fs.OpenSplitPoints(sp, dim)
		if err != nil {
			t.Fatal(err)
		}
		cs := ps.Columns()
		n := cs.Len()
		for j := 0; j < n; j++ {
			p := make([]float64, dim)
			for d := 0; d < dim; d++ {
				p[d] = cs.Col(d)[j]
			}
			out = append(out, p)
		}
	}
	return out
}

// TestColumnsMatchRows pins the transpose on both record formats: every
// coordinate of the columnar view must hold the identical float64 bits
// the row view holds, and both access paths (Col and Flat) must agree.
func TestColumnsMatchRows(t *testing.T) {
	text, want := pointFile(311, 5, 11)
	for _, format := range []string{"text", "binary"} {
		t.Run(format, func(t *testing.T) {
			fs := New(512)
			data := []byte(text)
			if format == "binary" {
				data = BinaryHeader(5)
				for _, p := range want {
					data = AppendBinaryPoint(data, p)
				}
			}
			fs.Create("/p", data)
			splits, err := fs.Splits("/p")
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for _, sp := range splits {
				ps, err := fs.OpenSplitPoints(sp, 5)
				if err != nil {
					t.Fatal(err)
				}
				cs := ps.Columns()
				if cs.Len() != ps.Len() || cs.Dim() != ps.Dim() {
					t.Fatalf("split %d: columnar shape %dx%d, rows %dx%d",
						sp.Index, cs.Len(), cs.Dim(), ps.Len(), ps.Dim())
				}
				if cs.Rows() != ps {
					t.Fatalf("split %d: Rows() does not return the originating PointSplit", sp.Index)
				}
				flat := cs.Flat()
				n := cs.Len()
				for i := 0; i < n; i++ {
					row := ps.At(i)
					if got := cs.At(i); &got[0] != &row[0] {
						t.Fatalf("split %d: columnar At(%d) is not the row view", sp.Index, i)
					}
					for d, v := range row {
						if cs.Col(d)[i] != v || flat[d*n+i] != v {
							t.Fatalf("split %d point %d dim %d: columnar %v, row %v",
								sp.Index, i, d, cs.Col(d)[i], v)
						}
					}
				}
				total += n
			}
			if total != len(want) {
				t.Fatalf("columnar views covered %d points, want %d", total, len(want))
			}
		})
	}
}

// TestColumnsCachedOncePerSplit checks that repeated scans share one
// materialized transpose, through both the same PointSplit and the cache.
func TestColumnsCachedOncePerSplit(t *testing.T) {
	text, _ := pointFile(100, 3, 12)
	fs := New(0)
	fs.Create("/p", []byte(text))
	splits, _ := fs.Splits("/p")
	ps, err := fs.OpenSplitPoints(splits[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	a := ps.Columns()
	if b := ps.Columns(); a != b {
		t.Fatal("second Columns call rebuilt the transpose")
	}
	ps2, err := fs.OpenSplitPoints(splits[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if ps2.Columns() != a {
		t.Fatal("cached split re-open served a different columnar view")
	}
}

// TestColumnsInvalidation mirrors the row-major invalidation tests: the
// columnar view must turn over with its PointSplit on Create, Delete and
// SetSplitSize, while views held across the invalidation stay consistent
// snapshots.
func TestColumnsInvalidation(t *testing.T) {
	text, _ := pointFile(60, 2, 13)
	fs := New(0)
	fs.Create("/p", []byte(text))
	splits, _ := fs.Splits("/p")
	ps, err := fs.OpenSplitPoints(splits[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	old := ps.Columns()

	// Overwrite: a fresh decode must carry a fresh columnar view.
	fs.Create("/p", []byte("7 8\n9 10\n"))
	splits, _ = fs.Splits("/p")
	ps2, err := fs.OpenSplitPoints(splits[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	cs := ps2.Columns()
	if cs == old {
		t.Fatal("overwrite served the stale columnar view")
	}
	if cs.Len() != 2 || cs.Col(0)[0] != 7 || cs.Col(1)[1] != 10 {
		t.Fatalf("columnar view decoded stale contents: %d points", cs.Len())
	}
	// The pre-overwrite view stays a consistent snapshot.
	if old.Len() != 60 || old.Col(0)[0] != old.At(0)[0] {
		t.Fatal("old columnar snapshot mutated")
	}

	// Delete, then re-create: the fresh file gets a fresh view.
	fs.Delete("/p")
	if _, err := fs.OpenSplitPoints(splits[0], 2); err == nil {
		t.Fatal("decode of deleted file succeeded")
	}
	fs.Create("/p", []byte("1 2\n"))
	splits, _ = fs.Splits("/p")
	ps3, err := fs.OpenSplitPoints(splits[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if v := ps3.Columns(); v == cs || v.Len() != 1 {
		t.Fatalf("re-created file served a stale columnar view (%d points)", v.Len())
	}

	// SetSplitSize re-splits every file: new layout, new views.
	big, _ := pointFile(200, 2, 14)
	fs.Create("/q", []byte(big))
	qsplits, _ := fs.Splits("/q")
	qp, err := fs.OpenSplitPoints(qsplits[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	whole := qp.Columns()
	fs.SetSplitSize(256)
	qsplits, _ = fs.Splits("/q")
	qp2, err := fs.OpenSplitPoints(qsplits[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if re := qp2.Columns(); re == whole || re.Len() >= whole.Len() {
		t.Fatalf("SetSplitSize did not re-materialize the columnar view (%d vs %d points)",
			re.Len(), whole.Len())
	}
}

// TestColumnsConcurrent hammers Columns from many goroutines the way a
// map wave does — first touch races to transpose, later touches share the
// cached view — and is meant to run under -race.
func TestColumnsConcurrent(t *testing.T) {
	text, want := pointFile(800, 4, 15)
	fs := New(1 << 10)
	fs.Create("/p", []byte(text))
	splits, err := fs.Splits("/p")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	views := make([]*ColumnarSplit, 16*len(splits))
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			total := 0
			for si, sp := range splits {
				ps, err := fs.OpenSplitPoints(sp, 4)
				if err != nil {
					errs <- err
					return
				}
				cs := ps.Columns()
				views[w*len(splits)+si] = cs
				total += cs.Len()
			}
			if total != len(want) {
				errs <- fmt.Errorf("worker %d saw %d points, want %d", w, total, len(want))
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All workers must have shared one view per split.
	for si := range splits {
		first := views[si]
		for w := 1; w < 16; w++ {
			if views[w*len(splits)+si] != first {
				t.Fatalf("split %d: worker %d built a duplicate columnar view", si, w)
			}
		}
	}
}
