package xmeans

import (
	"math"
	"math/rand"
	"testing"

	"gmeansmr/internal/dataset"
	"gmeansmr/internal/vec"
)

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func mixture(t *testing.T, k, n int, seed int64) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{K: k, Dim: 2, N: n, MinSeparation: 25, StdDev: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRunRecoversK(t *testing.T) {
	ds := mixture(t, 5, 2500, 1)
	res, err := Run(ds.Points, Config{KMax: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 5 || res.K > 8 {
		t.Fatalf("X-means found k=%d for true k=5", res.K)
	}
	for _, truth := range ds.Centers {
		_, d2 := vec.NearestIndex(truth, res.Centers)
		if math.Sqrt(d2) > 3 {
			t.Errorf("no center near truth %v", truth)
		}
	}
}

func TestRunSingleCluster(t *testing.T) {
	ds := mixture(t, 1, 800, 3)
	res, err := Run(ds.Points, Config{KMax: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Errorf("single Gaussian split into %d", res.K)
	}
}

func TestRunRespectsKMax(t *testing.T) {
	ds := mixture(t, 8, 2400, 4)
	res, err := Run(ds.Points, Config{KMax: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 3 {
		t.Errorf("KMax=3 violated: k=%d", res.K)
	}
}

// Regression: when every cluster passes the local split test in the same
// improve-structure round (16 well-separated Gaussians, collinear mixtures,
// ...), the per-cluster cap check must account for splits already accepted
// that round, or k doubles straight past KMax (observed k=16 with KMax=12 on
// collinear data before the fix).
func TestRunKMaxHoldsUnderSimultaneousSplits(t *testing.T) {
	ds := mixture(t, 16, 3200, 9)
	for _, kmax := range []int{3, 5, 6} {
		res, err := Run(ds.Points, Config{KMax: kmax, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.K > kmax {
			t.Errorf("KMax=%d violated: k=%d", kmax, res.K)
		}
	}
	// The collinear probe that originally surfaced the bug: three clusters
	// on a line in R^3 split aggressively on every axis.
	line := make([]vec.Vector, 900)
	rng := newTestRand(11)
	for i := range line {
		tt := float64(i%3)*30 + rng.NormFloat64()
		line[i] = vec.Vector{tt, 2 * tt, -tt}
	}
	res, err := Run(line, Config{KMax: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 12 {
		t.Errorf("collinear data: KMax=12 violated: k=%d", res.K)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Config{}); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := Run([]vec.Vector{{1}}, Config{KMin: 5}); err == nil {
		t.Error("KMin > n accepted")
	}
}

func TestRunAssignmentConsistent(t *testing.T) {
	ds := mixture(t, 3, 900, 5)
	res, err := Run(ds.Points, Config{KMax: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignment) != len(ds.Points) {
		t.Fatalf("assignment length %d", len(res.Assignment))
	}
	for i, a := range res.Assignment {
		if a < 0 || a >= res.K {
			t.Fatalf("assignment[%d] = %d out of range", i, a)
		}
	}
	if res.WCSS <= 0 {
		t.Errorf("WCSS = %v", res.WCSS)
	}
	if res.Rounds < 1 {
		t.Errorf("Rounds = %d", res.Rounds)
	}
}

func TestAICVariantRuns(t *testing.T) {
	ds := mixture(t, 4, 1600, 7)
	res, err := Run(ds.Points, Config{KMax: 16, UseAIC: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// AIC penalizes less than BIC, so it may split a bit more but must be
	// in a sane band.
	if res.K < 4 || res.K > 10 {
		t.Errorf("AIC X-means found k=%d for true k=4", res.K)
	}
}
