// Package xmeans implements X-means (Pelleg & Moore, ICML 2000), the other
// iterative k-estimation algorithm the paper discusses in its related work:
// "X-means iteratively uses k-means to optimize the position of centers and
// increases the number of clusters if needed to optimize the Bayesian
// Information Criterion (BIC)". It serves as an additional baseline for the
// k-recovery comparison benchmarks.
package xmeans

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"gmeansmr/internal/criteria"
	"gmeansmr/internal/lloyd"
	"gmeansmr/internal/vec"
)

// Config parameterizes an X-means run.
type Config struct {
	// KMin is the number of clusters to start from (≥1). Zero selects 1.
	KMin int
	// KMax caps the number of clusters; zero selects 64.
	KMax int
	// MaxKMeansIterations bounds the inner Lloyd runs; zero selects 50.
	MaxKMeansIterations int
	// UseAIC switches the improvement criterion from BIC to AIC.
	UseAIC bool
	Seed   int64
	// Progress, when non-nil, is invoked after every improve-structure
	// round with the 1-based round number and the current center count.
	Progress func(round, k int)
}

func (c Config) withDefaults() Config {
	if c.KMin <= 0 {
		c.KMin = 1
	}
	if c.KMax <= 0 {
		c.KMax = 64
	}
	if c.MaxKMeansIterations <= 0 {
		c.MaxKMeansIterations = 50
	}
	return c
}

// Result is the outcome of an X-means run.
type Result struct {
	Centers    []vec.Vector
	K          int
	Assignment []int
	WCSS       float64
	// Rounds is the number of improve-structure rounds executed.
	Rounds int
}

// Run executes X-means: alternate "improve params" (Lloyd on the full
// center set) with "improve structure" (try splitting each cluster in two
// and keep the split when the information criterion of the local 2-means
// model beats the 1-cluster model).
func Run(points []vec.Vector, cfg Config) (*Result, error) {
	return RunContext(context.Background(), points, cfg)
}

// RunContext is Run with cancellation: ctx is checked at the top of every
// improve-structure round, so a cancelled run returns promptly with
// ctx.Err().
func RunContext(ctx context.Context, points []vec.Vector, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(points) == 0 {
		return nil, errors.New("xmeans: no points")
	}
	if cfg.KMin > len(points) {
		return nil, errors.New("xmeans: KMin exceeds point count")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	res, err := lloyd.Run(points, lloyd.Config{
		K: cfg.KMin, MaxIterations: cfg.MaxKMeansIterations,
		Seeding: lloyd.SeedPlusPlus, Seed: rng.Int63(),
	})
	if err != nil {
		return nil, err
	}
	centers := res.Centers
	rounds := 0
	for len(centers) < cfg.KMax {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rounds++
		// Improve params.
		full, err := lloyd.RunFrom(points, centers, lloyd.Config{MaxIterations: cfg.MaxKMeansIterations})
		if err != nil {
			return nil, err
		}
		centers = full.Centers

		// Improve structure: per-cluster split test.
		members := make([][]int, len(centers))
		for i, a := range full.Assignment {
			members[a] = append(members[a], i)
		}
		var next []vec.Vector
		splitAny := false
		for ci, m := range members {
			// The cap must account for splits already accepted this round:
			// len(next) holds the clusters committed so far (including the
			// extra centers of accepted splits) and len(centers)-ci the ones
			// still pending. Checking len(centers)+1 alone lets a round where
			// many clusters split at once blow straight through KMax — with
			// aggressively splittable data (e.g. collinear clusters) every
			// cluster passes the local test and k doubles past the cap.
			projected := len(next) + (len(centers) - ci)
			if len(m) < 4 || projected+1 > cfg.KMax {
				if len(m) > 0 {
					next = append(next, centers[ci])
				}
				continue
			}
			sub := make([]vec.Vector, len(m))
			for i, idx := range m {
				sub[i] = points[idx]
			}
			parentScore := scoreModel(sub, []vec.Vector{centers[ci]}, cfg.UseAIC)
			split, err := lloyd.Run(sub, lloyd.Config{
				K: 2, MaxIterations: cfg.MaxKMeansIterations,
				Seeding: lloyd.SeedPlusPlus, Seed: rng.Int63(),
			})
			if err != nil {
				return nil, err
			}
			childScore := scoreModel(sub, split.Centers, cfg.UseAIC)
			if childScore > parentScore {
				next = append(next, split.Centers...)
				splitAny = true
			} else {
				next = append(next, centers[ci])
			}
		}
		centers = next
		if cfg.Progress != nil {
			cfg.Progress(rounds, len(centers))
		}
		if !splitAny {
			break
		}
	}

	final, err := lloyd.RunFrom(points, centers, lloyd.Config{MaxIterations: cfg.MaxKMeansIterations})
	if err != nil {
		return nil, err
	}
	return &Result{
		Centers:    final.Centers,
		K:          len(final.Centers),
		Assignment: final.Assignment,
		WCSS:       final.WCSS,
		Rounds:     rounds,
	}, nil
}

// scoreModel evaluates the information criterion of a (sub)clustering;
// higher is better.
func scoreModel(points []vec.Vector, centers []vec.Vector, useAIC bool) float64 {
	assign := lloyd.Assign(points, centers)
	c := criteria.Clustering{
		K:          len(centers),
		Centers:    centers,
		Assignment: assign,
		WCSS:       lloyd.WCSS(points, centers, assign),
	}
	if len(points) <= len(centers) {
		return math.Inf(-1)
	}
	if useAIC {
		return criteria.AIC(points, c)
	}
	return criteria.BIC(points, c)
}
