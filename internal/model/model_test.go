package model

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"math"
	"reflect"
	"testing"

	"gmeansmr/internal/vec"
)

func sampleModel() *Model {
	return &Model{
		K:   3,
		Dim: 2,
		Centers: []vec.Vector{
			{1.5, -2.25},
			{0, 1e-9},
			{123456.789, -0.001},
		},
		Counts: []int64{10, 20, 30},
		Radii:  []float64{1.25, 0.5, 7.75},
		Meta: Meta{
			Algorithm:     "gmeans-mr",
			Iterations:    7,
			Alpha:         0.0001,
			TrainedAtUnix: 1700000000,
			SourcePoints:  60,
			Counters:      map[string]int64{"app.distance.computations": 42},
		},
	}
}

func mustSave(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := sampleModel()
	got, err := Load(bytes.NewReader(mustSave(t, m)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", m, got)
	}
}

func TestSaveLoadMinimalModel(t *testing.T) {
	m, err := New([]vec.Vector{{1, 2, 3}}, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(mustSave(t, m)))
	if err != nil {
		t.Fatal(err)
	}
	if got.K != 1 || got.Dim != 3 || !vec.Equal(got.Centers[0], m.Centers[0]) {
		t.Fatalf("minimal round trip: %+v", got)
	}
	if len(got.Counts) != 0 || len(got.Radii) != 0 {
		t.Fatalf("minimal model grew statistics: %+v", got)
	}
}

func TestSaveDeterministic(t *testing.T) {
	m := sampleModel()
	a, b := mustSave(t, m), mustSave(t, m)
	if !bytes.Equal(a, b) {
		t.Fatal("two saves of the same model differ")
	}
}

func TestLoadRejectsCorruptBytes(t *testing.T) {
	raw := mustSave(t, sampleModel())
	// Flip one byte in several regions: fixed header, JSON header, center
	// payload, and the trailing CRC itself. Every flip must surface as an
	// explicit load error, never as a silently different model.
	for _, pos := range []int{5, 14, len(raw) - 10, len(raw) - 1} {
		mutated := append([]byte(nil), raw...)
		mutated[pos] ^= 0x40
		if _, err := Load(bytes.NewReader(mutated)); err == nil {
			t.Errorf("flip at byte %d: load succeeded", pos)
		}
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	raw := mustSave(t, sampleModel())
	for cut := 0; cut < len(raw); cut += 7 {
		if _, err := Load(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation to %d bytes: load succeeded", cut)
		}
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model at all"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("garbage input: got %v, want ErrBadMagic", err)
	}
	if _, err := Load(bytes.NewReader(nil)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("empty input: got %v, want ErrBadMagic", err)
	}
}

func TestLoadRejectsNewerVersion(t *testing.T) {
	raw := mustSave(t, sampleModel())
	mutated := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(mutated[4:8], Version+1)
	if _, err := Load(bytes.NewReader(mutated)); !errors.Is(err, ErrNewerVersion) {
		t.Errorf("version bump: got %v, want ErrNewerVersion", err)
	}
}

// assemble builds a syntactically valid snapshot from raw parts, with a
// correct CRC, so tests can exercise header-level compatibility.
func assemble(t *testing.T, hdrJSON []byte, centers []vec.Vector) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write([]byte("GMMR"))
	binary.Write(&buf, binary.LittleEndian, uint32(Version))
	binary.Write(&buf, binary.LittleEndian, uint32(len(hdrJSON)))
	buf.Write(hdrJSON)
	for _, c := range centers {
		for _, x := range c {
			binary.Write(&buf, binary.LittleEndian, math.Float64bits(x))
		}
	}
	binary.Write(&buf, binary.LittleEndian, crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes()
}

func TestLoadIgnoresUnknownHeaderFields(t *testing.T) {
	// A same-version writer from the future may add header fields; a
	// version-1 reader must skip them, not fail.
	hdr := []byte(`{"k":2,"dim":1,"meta":{"algorithm":"x","future_field":"?"},"another_future_field":[1,2,3]}`)
	raw := assemble(t, hdr, []vec.Vector{{1}, {2}})
	m, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 2 || m.Dim != 1 || m.Meta.Algorithm != "x" {
		t.Fatalf("decoded %+v", m)
	}
}

func TestLoadRejectsImplausibleHeader(t *testing.T) {
	for _, hdr := range []string{
		`{"k":0,"dim":1,"meta":{}}`,
		`{"k":1,"dim":0,"meta":{}}`,
		`{"k":1000000000,"dim":1000,"meta":{}}`,
		// k*dim*8 overflows int64 to a small value; the guard must bound
		// each factor, not just the product.
		`{"k":2147483648,"dim":2147483648,"meta":{}}`,
	} {
		raw := assemble(t, []byte(hdr), nil)
		if _, err := Load(bytes.NewReader(raw)); err == nil {
			t.Errorf("header %s accepted", hdr)
		}
	}
}

func TestLoadRejectsNaNCenters(t *testing.T) {
	hdr, _ := json.Marshal(header{K: 1, Dim: 1})
	raw := assemble(t, hdr, []vec.Vector{{math.NaN()}})
	if _, err := Load(bytes.NewReader(raw)); !errors.Is(err, ErrInvalid) {
		t.Errorf("NaN center: got %v, want ErrInvalid", err)
	}
}

func TestLoadStopsAtSnapshotBoundary(t *testing.T) {
	a, b := sampleModel(), sampleModel()
	b.Centers[0][0] = 99
	stream := bytes.NewReader(append(mustSave(t, a), mustSave(t, b)...))
	first, err := Load(stream)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Load(stream)
	if err != nil {
		t.Fatalf("second snapshot in stream: %v", err)
	}
	if first.Centers[0][0] == 99 || second.Centers[0][0] != 99 {
		t.Fatal("snapshot boundary not respected")
	}
}

func TestFromTraining(t *testing.T) {
	centers := []vec.Vector{{0, 0}, {10, 0}}
	points := []vec.Vector{{1, 0}, {-2, 0}, {10, 3}}
	m, err := FromTraining(centers, points, nil, Meta{Algorithm: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Counts, []int64{2, 1}) {
		t.Errorf("counts = %v", m.Counts)
	}
	if m.Radii[0] != 2 || m.Radii[1] != 3 {
		t.Errorf("radii = %v", m.Radii)
	}
	if m.Meta.SourcePoints != 3 {
		t.Errorf("source points = %d", m.Meta.SourcePoints)
	}

	// An explicit assignment must take precedence over nearest-center.
	m2, err := FromTraining(centers, points, []int{1, 1, 1}, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m2.Counts, []int64{0, 3}) {
		t.Errorf("explicit assignment counts = %v", m2.Counts)
	}

	// FromTraining clones the centers: mutating the input afterwards must
	// not reach the model.
	centers[0][0] = 777
	if m.Centers[0][0] == 777 {
		t.Error("FromTraining retained caller's center storage")
	}
}

func TestFromTrainingRejectsBadAssignment(t *testing.T) {
	centers := []vec.Vector{{0}}
	if _, err := FromTraining(centers, []vec.Vector{{1}}, []int{5}, Meta{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("out-of-range assignment: got %v", err)
	}
	if _, err := FromTraining(centers, []vec.Vector{{1}, {2}}, []int{0}, Meta{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("length mismatch: got %v", err)
	}
	// Points of the wrong dimensionality must surface as ErrInvalid, not
	// as a vec panic.
	if _, err := FromTraining(centers, []vec.Vector{{1, 2}}, nil, Meta{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("dimension mismatch: got %v", err)
	}
}

func TestValidate(t *testing.T) {
	for name, m := range map[string]*Model{
		"no centers":    {K: 1, Dim: 1},
		"k mismatch":    {K: 2, Dim: 1, Centers: []vec.Vector{{1}}},
		"ragged":        {K: 2, Dim: 2, Centers: []vec.Vector{{1, 2}, {3}}},
		"nan":           {K: 1, Dim: 1, Centers: []vec.Vector{{math.NaN()}}},
		"inf":           {K: 1, Dim: 1, Centers: []vec.Vector{{math.Inf(1)}}},
		"counts length": {K: 1, Dim: 1, Centers: []vec.Vector{{1}}, Counts: []int64{1, 2}},
		"radii length":  {K: 1, Dim: 1, Centers: []vec.Vector{{1}}, Radii: []float64{1, 2}},
	} {
		if err := m.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: got %v, want ErrInvalid", name, err)
		}
	}
}

func TestClone(t *testing.T) {
	m := sampleModel()
	c := m.Clone()
	if !reflect.DeepEqual(m, c) {
		t.Fatal("clone differs")
	}
	c.Centers[0][0] = -999
	c.Counts[0] = -999
	c.Meta.Counters["app.distance.computations"] = -999
	if m.Centers[0][0] == -999 || m.Counts[0] == -999 || m.Meta.Counters["app.distance.computations"] == -999 {
		t.Fatal("clone shares storage with original")
	}
}

// TestPack: the kernel-ready pack is derived once, cached on the model,
// answers exactly like the raw centers, and is never shared with a clone
// (whose centers are distinct storage).
func TestPack(t *testing.T) {
	m := sampleModel()
	p := m.Pack()
	if p == nil || m.Pack() != p {
		t.Fatal("Pack is not cached on the model")
	}
	if p.K() != m.K || p.Dim() != m.Dim {
		t.Fatalf("pack shape k=%d dim=%d, model k=%d dim=%d", p.K(), p.Dim(), m.K, m.Dim)
	}
	q := vec.Vector{0.1, 0.2}
	wi, wd := vec.NearestIndex(q, m.Centers)
	if gi, gd := p.Nearest(q); gi != wi || gd != wd {
		t.Fatalf("pack answers (%d, %v), centers answer (%d, %v)", gi, gd, wi, wd)
	}
	c := m.Clone()
	if c.Pack() == p {
		t.Fatal("clone shares the original's pack")
	}
}
