// Package model defines the persistent artifact a training run produces:
// a versioned, self-describing snapshot of a clustering model — the
// centers, per-cluster statistics, and enough training metadata to audit
// where the model came from. Training (core.Run, the MR pipeline) is a
// batch job; serving assignment queries is an online system with a
// different lifetime, so the model must outlive the process that trained
// it. Save/Load is that boundary.
//
// # Wire format (version 1)
//
//	magic   [4]byte  "GMMR"
//	version uint32   little-endian, currently 1
//	hdrLen  uint32   little-endian length of the JSON header
//	header  []byte   JSON: k, dim, counts, radii, metadata
//	centers []byte   k*dim float64, little-endian, row-major
//	crc     uint32   IEEE CRC-32 of every preceding byte
//
// The JSON header makes the format self-describing and forward-extensible:
// a version-1 reader ignores header fields it does not know, so version-1
// writers may grow new metadata without a version bump. The version field
// is bumped only for layout changes a version-1 reader cannot skip; Load
// rejects those explicitly (ErrNewerVersion) rather than misparsing. The
// trailing CRC turns truncation and bit rot into a clean ErrChecksum
// instead of a silently wrong model.
package model

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"sync/atomic"

	"gmeansmr/internal/vec"
)

// Version is the current snapshot format version written by Save.
const Version = 1

// magic identifies a gmeansmr model snapshot.
var magic = [4]byte{'G', 'M', 'M', 'R'}

// maxHeaderLen bounds the JSON header so a corrupt length prefix cannot
// drive an absurd allocation.
const maxHeaderLen = 16 << 20

// maxCenterBytes bounds k*dim*8 for the same reason: a model of a billion
// centers is not a model, it is a corrupt file.
const maxCenterBytes = 1 << 30

// Errors distinguishing the ways a snapshot can fail to load. All are
// wrapped with context; test with errors.Is.
var (
	// ErrBadMagic means the input is not a model snapshot at all.
	ErrBadMagic = errors.New("model: not a gmeansmr model snapshot (bad magic)")
	// ErrNewerVersion means the snapshot was written by a newer format
	// version than this reader understands.
	ErrNewerVersion = errors.New("model: snapshot format version is newer than this reader")
	// ErrChecksum means the snapshot is corrupt (CRC mismatch) or truncated.
	ErrChecksum = errors.New("model: snapshot corrupt (checksum mismatch)")
	// ErrInvalid means the snapshot decoded but describes an impossible
	// model (k<=0, dimension mismatch, non-finite coordinates, ...).
	ErrInvalid = errors.New("model: invalid model")
)

// Meta is the training provenance carried inside a snapshot. Every field
// is optional; unknown fields in a stored header are ignored on load, so
// the set can grow without a format-version bump.
type Meta struct {
	// Algorithm names the trainer, e.g. "gmeans-mr".
	Algorithm string `json:"algorithm,omitempty"`
	// Iterations is the number of training rounds (G-means rounds for the
	// MR pipeline).
	Iterations int `json:"iterations,omitempty"`
	// Alpha is the Anderson–Darling significance level used in training.
	Alpha float64 `json:"alpha,omitempty"`
	// TrainedAtUnix is the training wall-clock time in Unix seconds.
	TrainedAtUnix int64 `json:"trained_at_unix,omitempty"`
	// SourcePoints is the number of points the model was trained on.
	SourcePoints int64 `json:"source_points,omitempty"`
	// Counters is the engine's cost accounting for the training run
	// (distance computations, shuffle bytes, AD tests, ...).
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Model is a trained clustering model: the centers plus per-cluster
// statistics. A Model handed to the serving layer is treated as immutable;
// mutate a copy (Clone) instead.
type Model struct {
	// K is the number of clusters; always len(Centers).
	K int
	// Dim is the dimensionality of the centers.
	Dim int
	// Centers are the cluster centers, each of length Dim.
	Centers []vec.Vector
	// Counts[i] is the number of training points assigned to cluster i.
	// Empty when the trainer did not record assignments.
	Counts []int64
	// Radii[i] is the distance from center i to its farthest assigned
	// training point — a per-cluster scale useful for anomaly thresholds.
	// Empty when the trainer did not record assignments.
	Radii []float64
	// Meta is the training provenance.
	Meta Meta

	// pack caches the kernel-ready packed form of Centers (see Pack).
	// Derived state only — never serialized, dropped by Clone.
	pack atomic.Pointer[vec.CenterPack]
}

// Pack returns the model's centers in kernel-ready packed form
// (vec.CenterPack), deriving it on first call and caching it on the
// model. Because a model handed to the serving layer is immutable, the
// cached pack stays valid for the model's lifetime; a hot swap that
// installs a new model publishes that model's own pack with it, so the
// query path never packs centers per request. Safe for concurrent use
// (a first-call race packs twice and keeps one — both copies are
// bit-identical by construction).
func (m *Model) Pack() *vec.CenterPack {
	if p := m.pack.Load(); p != nil {
		return p
	}
	m.pack.CompareAndSwap(nil, vec.PackCenters(m.Centers))
	return m.pack.Load()
}

// header is the JSON-encoded self-describing part of the wire format.
type header struct {
	K      int       `json:"k"`
	Dim    int       `json:"dim"`
	Counts []int64   `json:"counts,omitempty"`
	Radii  []float64 `json:"radii,omitempty"`
	Meta   Meta      `json:"meta"`
}

// New builds a model from bare centers, without per-cluster statistics.
func New(centers []vec.Vector, meta Meta) (*Model, error) {
	m := &Model{K: len(centers), Centers: centers, Meta: meta}
	if len(centers) > 0 {
		m.Dim = len(centers[0])
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// FromTraining builds a model from a finished training run: the centers
// plus the training points, from which it derives per-cluster counts and
// radii. assign may be nil, in which case each point is assigned to its
// nearest center; when non-nil it must map points[i] to a center index.
func FromTraining(centers []vec.Vector, points []vec.Vector, assign []int, meta Meta) (*Model, error) {
	m, err := New(vec.CloneAll(centers), meta)
	if err != nil {
		return nil, err
	}
	if assign != nil && len(assign) != len(points) {
		return nil, fmt.Errorf("%w: %d assignments for %d points", ErrInvalid, len(assign), len(points))
	}
	m.Counts = make([]int64, m.K)
	m.Radii = make([]float64, m.K)
	// Track squared radii and take one square root per cluster at the end:
	// the per-point work stays a single O(k·dim) scan (or one Dist2 when
	// the assignment is given).
	maxD2 := make([]float64, m.K)
	for i, p := range points {
		if len(p) != m.Dim {
			return nil, fmt.Errorf("%w: point %d has %d dimensions, centers have %d", ErrInvalid, i, len(p), m.Dim)
		}
		c := -1
		var d2 float64
		if assign != nil {
			c = assign[i]
			if c < 0 || c >= m.K {
				return nil, fmt.Errorf("%w: assignment %d out of range [0,%d)", ErrInvalid, c, m.K)
			}
			d2 = vec.Dist2(p, centers[c])
		} else {
			c, d2 = vec.NearestIndex(p, centers)
			if c < 0 {
				return nil, fmt.Errorf("%w: point %d has no finite distance to any center", ErrInvalid, i)
			}
		}
		m.Counts[c]++
		if d2 > maxD2[c] {
			maxD2[c] = d2
		}
	}
	for c, d2 := range maxD2 {
		m.Radii[c] = math.Sqrt(d2)
	}
	m.Meta.SourcePoints = int64(len(points))
	return m, nil
}

// Validate reports whether the model is internally consistent.
func (m *Model) Validate() error {
	if m.K <= 0 || m.K != len(m.Centers) {
		return fmt.Errorf("%w: k=%d with %d centers", ErrInvalid, m.K, len(m.Centers))
	}
	if m.Dim <= 0 {
		return fmt.Errorf("%w: dim=%d", ErrInvalid, m.Dim)
	}
	for i, c := range m.Centers {
		if len(c) != m.Dim {
			return fmt.Errorf("%w: center %d has %d dimensions, want %d", ErrInvalid, i, len(c), m.Dim)
		}
		for j, x := range c {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("%w: center %d coordinate %d is %v", ErrInvalid, i, j, x)
			}
		}
	}
	if len(m.Counts) != 0 && len(m.Counts) != m.K {
		return fmt.Errorf("%w: %d counts for k=%d", ErrInvalid, len(m.Counts), m.K)
	}
	if len(m.Radii) != 0 && len(m.Radii) != m.K {
		return fmt.Errorf("%w: %d radii for k=%d", ErrInvalid, len(m.Radii), m.K)
	}
	return nil
}

// Clone deep-copies the model.
func (m *Model) Clone() *Model {
	out := &Model{K: m.K, Dim: m.Dim, Centers: vec.CloneAll(m.Centers), Meta: m.Meta}
	if m.Counts != nil {
		out.Counts = append([]int64(nil), m.Counts...)
	}
	if m.Radii != nil {
		out.Radii = append([]float64(nil), m.Radii...)
	}
	if m.Meta.Counters != nil {
		out.Meta.Counters = make(map[string]int64, len(m.Meta.Counters))
		for k, v := range m.Meta.Counters {
			out.Meta.Counters[k] = v
		}
	}
	return out
}

// Save writes the model to w in the versioned snapshot format. The
// encoding is byte-for-byte deterministic for a given model, so snapshots
// diff and dedupe cleanly.
func (m *Model) Save(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	hdr, err := json.Marshal(header{K: m.K, Dim: m.Dim, Counts: m.Counts, Radii: m.Radii, Meta: m.Meta})
	if err != nil {
		return fmt.Errorf("model: encode header: %w", err)
	}
	crc := crc32.NewIEEE()
	cw := io.MultiWriter(w, crc)

	var fixed [12]byte
	copy(fixed[:4], magic[:])
	binary.LittleEndian.PutUint32(fixed[4:8], Version)
	binary.LittleEndian.PutUint32(fixed[8:12], uint32(len(hdr)))
	if _, err := cw.Write(fixed[:]); err != nil {
		return fmt.Errorf("model: write header: %w", err)
	}
	if _, err := cw.Write(hdr); err != nil {
		return fmt.Errorf("model: write header: %w", err)
	}

	buf := make([]byte, 8*m.Dim)
	for _, c := range m.Centers {
		for j, x := range c {
			binary.LittleEndian.PutUint64(buf[8*j:], math.Float64bits(x))
		}
		if _, err := cw.Write(buf); err != nil {
			return fmt.Errorf("model: write centers: %w", err)
		}
	}

	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("model: write checksum: %w", err)
	}
	return nil
}

// Load reads a model snapshot from r, verifying magic, version, checksum
// and internal consistency. It reads exactly one snapshot and does not
// consume bytes past it, so snapshots can be concatenated in one stream.
func Load(r io.Reader) (*Model, error) {
	crc := crc32.NewIEEE()
	cr := &checksumReader{r: r, h: crc}

	var fixed [12]byte
	if _, err := io.ReadFull(cr, fixed[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadMagic, err)
	}
	if [4]byte(fixed[:4]) != magic {
		return nil, fmt.Errorf("%w: got %q", ErrBadMagic, fixed[:4])
	}
	version := binary.LittleEndian.Uint32(fixed[4:8])
	if version == 0 || version > Version {
		return nil, fmt.Errorf("%w: snapshot version %d, reader supports <= %d", ErrNewerVersion, version, Version)
	}
	hdrLen := binary.LittleEndian.Uint32(fixed[8:12])
	if hdrLen == 0 || hdrLen > maxHeaderLen {
		return nil, fmt.Errorf("%w: implausible header length %d", ErrChecksum, hdrLen)
	}
	hdrBytes := make([]byte, hdrLen)
	if _, err := io.ReadFull(cr, hdrBytes); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrChecksum, err)
	}
	var hdr header
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrChecksum, err)
	}
	// Bound each factor before multiplying so a crafted header cannot
	// overflow the product past the guard and drive an absurd allocation.
	const maxCenterFloats = maxCenterBytes / 8
	if hdr.K <= 0 || hdr.Dim <= 0 ||
		hdr.K > maxCenterFloats || hdr.Dim > maxCenterFloats ||
		int64(hdr.K)*int64(hdr.Dim) > maxCenterFloats {
		return nil, fmt.Errorf("%w: implausible k=%d dim=%d", ErrInvalid, hdr.K, hdr.Dim)
	}

	centers := make([]vec.Vector, hdr.K)
	buf := make([]byte, 8*hdr.Dim)
	for i := range centers {
		if _, err := io.ReadFull(cr, buf); err != nil {
			return nil, fmt.Errorf("%w: short centers: %v", ErrChecksum, err)
		}
		c := make(vec.Vector, hdr.Dim)
		for j := range c {
			c[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
		}
		centers[i] = c
	}

	sum := crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrChecksum, err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != sum {
		return nil, fmt.Errorf("%w: stored %08x, computed %08x", ErrChecksum, got, sum)
	}

	m := &Model{K: hdr.K, Dim: hdr.Dim, Centers: centers, Counts: hdr.Counts, Radii: hdr.Radii, Meta: hdr.Meta}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// checksumReader feeds every byte it reads through the hash. Unlike
// io.TeeReader it cannot fail on the hash side, and keeping the final
// 4-byte CRC outside the hashed stream is the caller's job (Load reads the
// tail from the underlying reader directly).
type checksumReader struct {
	r io.Reader
	h hash.Hash32
}

func (c *checksumReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.h.Write(p[:n])
	}
	return n, err
}
