package retry

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

// Breaker states, in metric-gauge encoding (mrdist_breaker_state):
// 0 = closed (healthy), 1 = half-open (probing), 2 = open (rejecting).
const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

// String names the state for logs and tests.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// Breaker is a per-peer circuit breaker: Threshold consecutive blamed
// failures open it, an open breaker rejects the peer for Cooldown, then
// admits a single half-open probe whose outcome re-closes or re-opens
// it. The master consults Allow before dispatching to a worker and feeds
// Success/Failure from every classified RPC outcome, so a misbehaving
// worker stops receiving tasks *before* it burns the whole retry budget
// of every task that lands on it.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	fails     int
	openedAt  time.Time
	probing   bool
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test seam

	// OnOpen, when non-nil, fires once per closed→open transition (under
	// the breaker lock; keep it cheap — metric ticks only).
	OnOpen func()
	// OnState, when non-nil, fires on every state change with the new
	// state (under the lock).
	OnState func(BreakerState)
}

// NewBreaker builds a breaker from the policy's threshold and cooldown.
func NewBreaker(p Policy) *Breaker {
	p = p.WithDefaults()
	return &Breaker{
		threshold: p.BreakerThreshold,
		cooldown:  p.BreakerCooldown,
		now:       time.Now,
	}
}

// Allow reports whether the peer may receive work now. An open breaker
// past its cooldown moves to half-open and admits exactly one probe;
// further Allow calls reject until that probe reports Success or Failure.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.setState(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a healthy response, closing the breaker.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.setState(BreakerClosed)
	}
}

// Failure records a blamed failure. Threshold consecutive failures — or
// any failure while half-open — open the breaker.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if b.state == BreakerHalfOpen {
		b.open()
		return
	}
	b.fails++
	if b.state == BreakerClosed && b.fails >= b.threshold {
		b.open()
	}
}

// open transitions to BreakerOpen (caller holds the lock).
func (b *Breaker) open() {
	wasOpen := b.state == BreakerOpen
	b.openedAt = b.now()
	b.fails = 0
	b.setState(BreakerOpen)
	if !wasOpen && b.OnOpen != nil {
		b.OnOpen()
	}
}

// setState updates state and fires OnState (caller holds the lock).
func (b *Breaker) setState(s BreakerState) {
	b.state = s
	if b.OnState != nil {
		b.OnState(s)
	}
}

// State returns the current state without advancing cooldowns.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
