package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestBackoffFullJitter(t *testing.T) {
	p := Policy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}.WithDefaults()
	rng := rand.New(rand.NewSource(1))
	ceilings := []time.Duration{
		10 * time.Millisecond, // failures=1
		20 * time.Millisecond, // 2
		40 * time.Millisecond, // 3
		80 * time.Millisecond, // 4
		80 * time.Millisecond, // 5: capped
		80 * time.Millisecond, // 6: capped
	}
	for i, ceil := range ceilings {
		for trial := 0; trial < 200; trial++ {
			d := p.Backoff(i+1, rng)
			if d < 0 || d > ceil {
				t.Fatalf("Backoff(failures=%d) = %v outside [0, %v]", i+1, d, ceil)
			}
		}
	}
	// failures < 1 clamps rather than panicking.
	if d := p.Backoff(0, rng); d < 0 || d > 10*time.Millisecond {
		t.Errorf("Backoff(0) = %v", d)
	}
}

func TestBackoffDeterministicUnderSeed(t *testing.T) {
	p := Policy{}.WithDefaults()
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 1; i < 10; i++ {
		if da, db := p.Backoff(i, a), p.Backoff(i, b); da != db {
			t.Fatalf("same seed diverged at failure %d: %v vs %v", i, da, db)
		}
	}
}

func TestClassify(t *testing.T) {
	bg := context.Background()
	cancelled, cancel := context.WithCancel(bg)
	cancel()

	cases := []struct {
		name string
		ctx  context.Context
		err  error
		want Class
	}{
		{"plain error", bg, errors.New("boom"), Permanent},
		{"transient blamed", bg, Transient(errors.New("conn refused"), true), TransientBlamed},
		{"transient blameless", bg, Transient(errors.New("stale"), false), TransientBlameless},
		{"wrapped transient", bg, fmt.Errorf("rpc: %w", Transient(errors.New("x"), true)), TransientBlamed},
		{"per-try deadline", bg, context.DeadlineExceeded, TransientBlamed},
		{"per-try deadline wrapped", bg, fmt.Errorf("Post: %w", context.DeadlineExceeded), TransientBlamed},
		{"caller cancelled beats blame", cancelled, Transient(errors.New("x"), true), CallerAbort},
		{"caller cancelled beats permanent", cancelled, errors.New("boom"), CallerAbort},
		{"explicit abort", bg, Abort(context.Canceled), CallerAbort},
		{"nil ctx", nil, Transient(errors.New("x"), false), TransientBlameless},
	}
	for _, tc := range cases {
		if got := Classify(tc.ctx, tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestAbortErrorIsChain(t *testing.T) {
	err := Abort(fmt.Errorf("job: %w", context.Canceled))
	if !errors.Is(err, ErrAborted) {
		t.Error("abort does not match ErrAborted")
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("abort lost the underlying context error")
	}
}

func TestDoRetriesThenSucceeds(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	rng := rand.New(rand.NewSource(3))
	calls := 0
	err := p.Do(context.Background(), rng, func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return Transient(errors.New("flaky"), true)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do: err=%v calls=%d", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}
	rng := rand.New(rand.NewSource(3))
	calls := 0
	last := errors.New("still down")
	err := p.Do(context.Background(), rng, func(ctx context.Context) error {
		calls++
		return Transient(last, true)
	})
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, ErrExhausted) {
		t.Errorf("err = %v, want ErrExhausted", err)
	}
	if !errors.Is(err, last) {
		t.Errorf("exhausted error lost the last failure: %v", err)
	}
}

func TestDoPermanentFailsImmediately(t *testing.T) {
	p := Policy{MaxAttempts: 5}
	rng := rand.New(rand.NewSource(3))
	calls := 0
	boom := errors.New("deterministic")
	err := p.Do(context.Background(), rng, func(ctx context.Context) error {
		calls++
		return boom
	})
	if calls != 1 || !errors.Is(err, boom) {
		t.Fatalf("permanent: calls=%d err=%v", calls, err)
	}
}

func TestDoCallerAbort(t *testing.T) {
	p := Policy{MaxAttempts: 10, BaseBackoff: time.Millisecond}
	rng := rand.New(rand.NewSource(3))
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := p.Do(ctx, rng, func(context.Context) error {
		calls++
		cancel()
		return Transient(errors.New("x"), true)
	})
	if calls != 1 {
		t.Errorf("calls after caller abort = %d, want 1", calls)
	}
	if !errors.Is(err, ErrAborted) || !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want ErrAborted wrapping context.Canceled", err)
	}
	if errors.Is(err, ErrExhausted) {
		t.Error("caller abort must not read as exhaustion")
	}
}

func TestDoElapsedBudget(t *testing.T) {
	p := Policy{
		MaxAttempts: 1000,
		BaseBackoff: 20 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		MaxElapsed:  time.Nanosecond, // any backoff blows the budget
	}
	rng := rand.New(rand.NewSource(9))
	err := p.Do(context.Background(), rng, func(context.Context) error {
		return Transient(errors.New("x"), false)
	})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted via elapsed budget", err)
	}
}

func TestDoPerTryTimeout(t *testing.T) {
	p := Policy{MaxAttempts: 2, PerTryTimeout: 5 * time.Millisecond, BaseBackoff: time.Millisecond}
	rng := rand.New(rand.NewSource(9))
	calls := 0
	err := p.Do(context.Background(), rng, func(ctx context.Context) error {
		calls++
		<-ctx.Done() // simulate a hung peer: blocked until per-try deadline
		return ctx.Err()
	})
	if calls != 2 {
		t.Errorf("hung op attempted %d times, want 2", calls)
	}
	if !errors.Is(err, ErrExhausted) {
		t.Errorf("err = %v, want ErrExhausted (per-try timeouts are transient)", err)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(Policy{BreakerThreshold: 3, BreakerCooldown: time.Second})
	b.now = func() time.Time { return now }

	opened := 0
	b.OnOpen = func() { opened++ }

	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("new breaker not closed")
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("breaker opened before threshold")
	}
	b.Failure() // third consecutive: opens
	if b.State() != BreakerOpen || opened != 1 {
		t.Fatalf("state=%v opened=%d after threshold", b.State(), opened)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed work inside cooldown")
	}

	// Cooldown elapses: one half-open probe, and only one.
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not admit a probe after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admit = %v", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}

	// Probe fails: re-open, new cooldown.
	b.Failure()
	if b.State() != BreakerOpen || opened != 2 {
		t.Fatalf("failed probe: state=%v opened=%d", b.State(), opened)
	}
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected work")
	}

	// Success resets the consecutive-failure count.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures opened the breaker")
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Error("nil breaker rejected work")
	}
	b.Success()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Error("nil breaker state not closed")
	}
}

func TestExhaustedHelper(t *testing.T) {
	inner := errors.New("last failure")
	err := Exhausted("task 3 failed 4 attempts", inner)
	if !errors.Is(err, ErrExhausted) || !errors.Is(err, inner) {
		t.Fatalf("Exhausted chain broken: %v", err)
	}
}
