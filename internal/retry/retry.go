// Package retry is the single failure-handling policy of the distributed
// backend: per-attempt deadlines, exponential backoff with full jitter, a
// max-elapsed budget, and a per-peer circuit breaker. internal/mrdist owns
// scheduling (which worker runs which task); this package owns *when a
// failed operation may run again and what its failure means* — so every
// RPC path classifies and paces failures the same way instead of each
// call site inventing its own MaxAttempts/instant-requeue logic.
//
// Error classification is a three-way split:
//
//   - caller aborts (the job context was cancelled or hit its deadline):
//     never retried, never blamed on the peer that happened to be serving
//     the request — a clean shutdown must not poison healthy workers;
//   - transient failures (transport errors, per-attempt timeouts, 5xx
//     responses, corrupt reply frames): retried under the policy, with
//     the executing peer optionally blamed (fed to its breaker);
//   - permanent failures (deterministic task errors, 4xx responses):
//     surfaced immediately.
//
// Everything is deterministic under a seeded RNG, which is what lets the
// chaos harness (cmd/stress) reproduce a failing schedule from a seed.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrExhausted marks an operation that failed after the policy's attempt
// and elapsed budgets were spent. Callers detect it with errors.Is; the
// wrapped chain retains the last underlying failure.
var ErrExhausted = errors.New("retry: budget exhausted")

// ErrAborted marks an operation that stopped because its caller's context
// was cancelled or deadlined — a caller decision, not a peer failure.
var ErrAborted = errors.New("retry: aborted by caller")

// Policy is one uniform retry/timeout/backoff configuration. The zero
// value selects the defaults below via WithDefaults; fields are plain so
// tests and CLIs can assemble policies literally.
type Policy struct {
	// MaxAttempts bounds executions per operation, first try included.
	// Default 4.
	MaxAttempts int
	// PerTryTimeout is the deadline of one attempt's RPC, layered under
	// the caller's context (whichever expires first wins). Default 15s.
	PerTryTimeout time.Duration
	// BaseBackoff is the backoff ceiling after the first failure; the
	// ceiling doubles per attempt up to MaxBackoff, and the actual delay
	// is drawn uniformly from [0, ceiling] ("full jitter"). Default 25ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff ceiling. Default 1s.
	MaxBackoff time.Duration
	// MaxElapsed bounds the total time an operation may spend across all
	// attempts and backoffs, measured from its first launch. Zero means
	// no elapsed budget; the default is 2m.
	MaxElapsed time.Duration
	// BreakerThreshold is how many consecutive blamed failures open a
	// peer's circuit breaker. Default 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects a peer before
	// admitting one half-open probe. Default 2s.
	BreakerCooldown time.Duration
}

// WithDefaults fills zero fields with the package defaults.
func (p Policy) WithDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.PerTryTimeout <= 0 {
		p.PerTryTimeout = 15 * time.Second
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 25 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.MaxElapsed == 0 {
		p.MaxElapsed = 2 * time.Minute
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = 3
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 2 * time.Second
	}
	return p
}

// Backoff returns the delay before re-attempting after `failures` failed
// attempts (failures >= 1): full jitter over an exponentially growing
// ceiling. rng must not be shared without external synchronization.
func (p Policy) Backoff(failures int, rng *rand.Rand) time.Duration {
	if failures < 1 {
		failures = 1
	}
	ceiling := p.BaseBackoff
	for i := 1; i < failures && ceiling < p.MaxBackoff; i++ {
		ceiling *= 2
	}
	if ceiling > p.MaxBackoff {
		ceiling = p.MaxBackoff
	}
	if ceiling <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(ceiling) + 1))
}

// transientError wraps a failure worth re-attempting. Blame reports
// whether the executing peer itself is suspect (transport failures,
// per-attempt timeouts, 5xx: yes; a stale replica or a dead *peer* of the
// executor: no — punishing a healthy worker for someone else's loss is
// exactly what the classification exists to prevent).
type transientError struct {
	err   error
	blame bool
}

func (e transientError) Error() string { return e.err.Error() }
func (e transientError) Unwrap() error { return e.err }

// Transient marks err as retryable. blamePeer feeds the executing peer's
// breaker when true.
func Transient(err error, blamePeer bool) error {
	return transientError{err: err, blame: blamePeer}
}

// abortError wraps a caller-side cancellation.
type abortError struct{ err error }

func (e abortError) Error() string { return e.err.Error() }
func (e abortError) Unwrap() error { return e.err }

// Is lets errors.Is(err, ErrAborted) and errors.Is(err, ctx.Err()) both
// hold on one abort error.
func (e abortError) Is(target error) bool { return target == ErrAborted }

// Abort marks err as a caller-side abort: non-retryable and blame-free.
func Abort(err error) error { return abortError{err: err} }

// Class is the retry classification of one failure.
type Class int

// Classification outcomes.
const (
	// Permanent failures surface immediately (deterministic task errors,
	// client-side protocol errors).
	Permanent Class = iota
	// TransientBlamed failures retry and count against the executing
	// peer's breaker.
	TransientBlamed
	// TransientBlameless failures retry without suspecting the executor.
	TransientBlameless
	// CallerAbort failures stop the operation without retry or blame.
	CallerAbort
)

// Classify maps an operation error to its retry class. ctx is the
// *caller's* context (the job's, not the per-attempt one): when it has
// been cancelled or deadlined, any in-flight failure — including a
// context error surfacing through the transport — is the caller's own
// abort, regardless of how the error is marked. Without a caller abort,
// explicit marks (Transient, Abort) decide; bare context errors from a
// per-attempt deadline count as blamed transients (a hung peer looks
// exactly like a slow network, and both warrant suspicion).
func Classify(ctx context.Context, err error) Class {
	if err == nil {
		return Permanent
	}
	if ctx != nil && ctx.Err() != nil {
		return CallerAbort
	}
	var ab abortError
	if errors.As(err, &ab) {
		return CallerAbort
	}
	var tr transientError
	if errors.As(err, &tr) {
		if tr.blame {
			return TransientBlamed
		}
		return TransientBlameless
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		// No caller abort (checked above), so this deadline belongs to a
		// per-attempt timeout: the attempt hung.
		return TransientBlamed
	}
	return Permanent
}

// IsTransient reports whether err retries under some policy, and if so
// whether it blames the executing peer.
func IsTransient(err error) (blame, ok bool) {
	var tr transientError
	if errors.As(err, &tr) {
		return tr.blame, true
	}
	return false, false
}

// Do runs op under the policy: per-attempt deadline, classification,
// jittered backoff, attempt and elapsed budgets. op receives the
// per-attempt context. Sequential call sites (input pushes, map-output
// recovery) use Do; the task wave loop in mrdist implements the same
// policy event-driven, because its retries move between workers.
func (p Policy) Do(ctx context.Context, rng *rand.Rand, op func(ctx context.Context) error) error {
	p = p.WithDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	var last error
	for attempt := 1; ; attempt++ {
		attemptCtx, cancel := context.WithTimeout(ctx, p.PerTryTimeout)
		err := op(attemptCtx)
		cancel()
		if err == nil {
			return nil
		}
		last = err
		switch Classify(ctx, err) {
		case CallerAbort:
			cause := err
			if cerr := ctx.Err(); cerr != nil && !errors.Is(err, cerr) {
				cause = fmt.Errorf("%v (caller: %w)", err, cerr)
			}
			return Abort(&wrapped{msg: "aborted", sentinel: ErrAborted, err: cause})
		case Permanent:
			return err
		}
		if attempt >= p.MaxAttempts {
			return &wrapped{msg: "attempts exhausted", sentinel: ErrExhausted, err: last}
		}
		delay := p.Backoff(attempt, rng)
		if p.MaxElapsed > 0 && time.Since(start)+delay > p.MaxElapsed {
			return &wrapped{msg: "elapsed budget exhausted", sentinel: ErrExhausted, err: last}
		}
		select {
		case <-ctx.Done():
			return Abort(&wrapped{msg: "aborted during backoff", sentinel: ErrAborted, err: ctx.Err()})
		case <-time.After(delay):
		}
	}
}

// wrapped attaches a sentinel to an underlying error so both errors.Is
// targets resolve.
type wrapped struct {
	msg      string
	sentinel error
	err      error
}

func (w *wrapped) Error() string { return "retry: " + w.msg + ": " + w.err.Error() }
func (w *wrapped) Unwrap() error { return w.err }
func (w *wrapped) Is(target error) bool {
	return target == w.sentinel
}

// Exhausted wraps err with the ErrExhausted sentinel, for call sites that
// implement their own attempt loop but must surface the same typed error.
func Exhausted(msg string, err error) error {
	return &wrapped{msg: msg, sentinel: ErrExhausted, err: err}
}
