package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestFitPowerLaw(t *testing.T) {
	// Exact power laws fit exactly.
	for _, tc := range []struct {
		y   func(x float64) float64
		exp float64
	}{
		{func(x float64) float64 { return 3 * x }, 1},
		{func(x float64) float64 { return 2 * x * x }, 2},
		{func(x float64) float64 { return 5 * math.Sqrt(x) }, 0.5},
	} {
		xs := []float64{2, 4, 8, 16}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = tc.y(x)
		}
		e, r2 := fitPowerLaw(xs, ys)
		if math.Abs(e-tc.exp) > 1e-9 || r2 < 1-1e-9 {
			t.Errorf("exponent %v want %v (r2=%v)", e, tc.exp, r2)
		}
	}
	if e, _ := fitPowerLaw([]float64{1}, []float64{1}); !math.IsNaN(e) {
		t.Error("single point fitted")
	}
	if e, _ := fitPowerLaw([]float64{1, 0}, []float64{1, 1}); !math.IsNaN(e) {
		t.Error("non-positive x fitted")
	}
}

// TestScalingReportShape runs the suite at the scale CI uses and checks
// the artifact: every series present, fitted, and the deterministic
// distance-count series inside their gate bands. (Much smaller scales
// leave too few points per cluster for the shape claims to hold — k=32
// needs a four-digit n.)
func TestScalingReportShape(t *testing.T) {
	report, err := RunScaling(Options{Scale: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"gmeans-cost-vs-k":     true,
		"gmeans-cost-vs-n":     true,
		"multik-cost-vs-k":     true,
		"gmeans-time-vs-nodes": false,
	}
	if len(report.Series) != len(want) {
		t.Fatalf("got %d series, want %d", len(report.Series), len(want))
	}
	for _, s := range report.Series {
		gated, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected series %q", s.Name)
			continue
		}
		if s.Gated != gated {
			t.Errorf("%s: gated=%v, want %v", s.Name, s.Gated, gated)
		}
		if len(s.X) < 3 || len(s.X) != len(s.Y) {
			t.Errorf("%s: malformed points x=%d y=%d", s.Name, len(s.X), len(s.Y))
		}
		if math.IsNaN(s.Exponent) {
			t.Errorf("%s: exponent is NaN", s.Name)
		}
		if s.Gated && (s.Exponent < s.MinExponent || s.Exponent > s.MaxExponent) {
			t.Errorf("%s: exponent %.3f outside its own band [%.2f, %.2f]",
				s.Name, s.Exponent, s.MinExponent, s.MaxExponent)
		}
	}
}

func TestScalingWritesJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "SCALING.json")
	var buf bytes.Buffer
	if err := Scaling(Options{Out: &buf, Scale: 0.05, Seed: 1, ScalingJSON: path}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report ScalingReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("SCALING.json is not valid JSON: %v", err)
	}
	if len(report.Series) != 4 {
		t.Fatalf("artifact has %d series", len(report.Series))
	}
}
