package experiments

import (
	"errors"
	"fmt"

	"gmeansmr/internal/core"
	"gmeansmr/internal/dataset"
	"gmeansmr/internal/mr"
)

// Fig2 reproduces the paper's Figure 2: the amount of reducer heap the
// TestClusters step needs as a function of the number of points a single
// reducer receives. The paper sweeps dataset sizes against JVM heap sizes,
// observes which jobs die with "Java heap space", and fits the frontier —
// obtaining ≈64 bytes/point.
//
// Here the sweep is run against the engine's heap-accounting model: a
// single-cluster dataset funnels every projection into one reducer, and the
// task heap varies per run. The reported frontier must match the model's
// 64 B/point exactly, which validates that the engine reproduces the
// paper's failure mechanics.
func Fig2(opts Options) error {
	opts = opts.withDefaults()
	fmt.Fprintf(opts.Out, "\n=== Figure 2: reducer heap required by TestClusters ===\n")

	pointCounts := []int{
		opts.scaled(2_000), opts.scaled(4_000), opts.scaled(6_000),
		opts.scaled(8_000), opts.scaled(12_000), opts.scaled(16_000),
	}
	rows := [][]string{}
	var csvRows [][]string
	// For each dataset size, bisect the heap frontier across a fixed grid,
	// like the paper's manual sweep.
	type frontier struct {
		n       int
		minHeap int64
	}
	var frontiers []frontier
	for _, n := range pointCounts {
		spec := dataset.Spec{K: 1, Dim: 2, N: n, StdDev: 3, Seed: opts.Seed + int64(n)}
		grid := heapGrid(n)
		minSuccess := int64(-1)
		for _, heap := range grid {
			cluster := paperCluster().WithTaskHeap(heap)
			env, _, err := buildEnv(spec, cluster, 0)
			if err != nil {
				return err
			}
			_, err = core.Run(core.Config{
				Env: env, Seed: opts.Seed,
				ForceStrategy: core.StrategyReducer,
				MaxIterations: 1,
			})
			status := "succeeded"
			switch {
			case err == nil:
			case errors.Is(err, mr.ErrHeapSpace):
				status = "FAILED (heap space)"
			default:
				return err
			}
			if err == nil && minSuccess < 0 {
				minSuccess = heap
			}
			rows = append(rows, []string{fmtI(int64(n)), fmtI(heap / 1024), status})
			csvRows = append(csvRows, []string{fmtI(int64(n)), fmtI(heap),
				map[bool]string{true: "1", false: "0"}[err == nil]})
		}
		if minSuccess > 0 {
			frontiers = append(frontiers, frontier{n: n, minHeap: minSuccess})
		}
	}
	fmt.Fprint(opts.Out, table([]string{"points/reducer", "task heap (KB)", "job outcome"}, rows))

	// Linear regression of the success frontier: heap = slope×points + b.
	if len(frontiers) >= 2 {
		var sx, sy, sxx, sxy float64
		for _, f := range frontiers {
			x, y := float64(f.n), float64(f.minHeap)
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
		}
		m := float64(len(frontiers))
		slope := (m*sxy - sx*sy) / (m*sxx - sx*sx)
		fmt.Fprintf(opts.Out, "\nRegression of the success frontier: ≈ %.1f bytes per point\n", slope)
		fmt.Fprintf(opts.Out, "Paper's measured value: ≈ 64 bytes per point (engine model: %d)\n",
			core.HeapBytesPerPoint)
	}
	return writeCSV(opts, "fig2_heap", []string{"points", "heap_bytes", "succeeded"}, csvRows)
}

// heapGrid returns heap sizes bracketing the 64 B/point frontier for n.
func heapGrid(n int) []int64 {
	need := int64(n) * core.HeapBytesPerPoint
	return []int64{need / 2, need * 3 / 4, need - 1, need, need * 3 / 2, need * 2}
}
