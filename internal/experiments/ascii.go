package experiments

import (
	"strings"

	"gmeansmr/internal/vec"
)

// asciiScatter renders 2-D points and centers on a terminal grid, the
// stand-in for the paper's scatter plots (Figures 1 and 4). Data points
// render as '.', centers as 'X'.
func asciiScatter(points []vec.Vector, centers []vec.Vector, width, height int, maxPoints int) string {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 24
	}
	lo, hi := bounds2D(points, centers)
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	plot := func(p vec.Vector, ch byte) {
		x := scaleTo(p[0], lo[0], hi[0], width-1)
		y := height - 1 - scaleTo(p[1], lo[1], hi[1], height-1)
		if grid[y][x] == 'X' && ch == '.' {
			return // centers stay visible over data
		}
		grid[y][x] = ch
	}
	step := 1
	if maxPoints > 0 && len(points) > maxPoints {
		step = len(points) / maxPoints
	}
	for i := 0; i < len(points); i += step {
		plot(points[i], '.')
	}
	for _, c := range centers {
		plot(c, 'X')
	}
	var sb strings.Builder
	sb.WriteString("+" + strings.Repeat("-", width) + "+\n")
	for _, row := range grid {
		sb.WriteString("|")
		sb.Write(row)
		sb.WriteString("|\n")
	}
	sb.WriteString("+" + strings.Repeat("-", width) + "+\n")
	return sb.String()
}

func bounds2D(sets ...[]vec.Vector) (lo, hi [2]float64) {
	first := true
	for _, set := range sets {
		for _, p := range set {
			if len(p) < 2 {
				continue
			}
			if first {
				lo = [2]float64{p[0], p[1]}
				hi = lo
				first = false
				continue
			}
			for d := 0; d < 2; d++ {
				if p[d] < lo[d] {
					lo[d] = p[d]
				}
				if p[d] > hi[d] {
					hi[d] = p[d]
				}
			}
		}
	}
	for d := 0; d < 2; d++ {
		if hi[d] == lo[d] {
			hi[d] = lo[d] + 1
		}
	}
	return lo, hi
}

func scaleTo(x, lo, hi float64, max int) int {
	f := (x - lo) / (hi - lo)
	i := int(f * float64(max))
	if i < 0 {
		i = 0
	}
	if i > max {
		i = max
	}
	return i
}

// asciiSeries renders one or more (x, y) series as a rough line chart, the
// stand-in for the paper's Figures 3 and 5. Each series gets a distinct
// marker.
func asciiSeries(title string, xs []float64, series map[string][]float64, width, height int) string {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	markers := []byte{'G', 'M', 'o', '#', '@'}
	var names []string
	for name := range series {
		names = append(names, name)
	}
	// Stable marker assignment.
	sortStrings(names)

	loX, hiX := minMax(xs)
	loY, hiY := 0.0, 0.0
	first := true
	for _, ys := range series {
		for _, y := range ys {
			if first {
				loY, hiY = y, y
				first = false
			}
			if y < loY {
				loY = y
			}
			if y > hiY {
				hiY = y
			}
		}
	}
	if hiY == loY {
		hiY = loY + 1
	}
	if hiX == loX {
		hiX = loX + 1
	}
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	for si, name := range names {
		ys := series[name]
		for i, y := range ys {
			if i >= len(xs) {
				break
			}
			gx := scaleTo(xs[i], loX, hiX, width-1)
			gy := height - 1 - scaleTo(y, loY, hiY, height-1)
			grid[gy][gx] = markers[si%len(markers)]
		}
	}
	var sb strings.Builder
	sb.WriteString(title + "\n")
	for si, name := range names {
		sb.WriteString("  " + string(markers[si%len(markers)]) + " = " + name + "\n")
	}
	sb.WriteString("+" + strings.Repeat("-", width) + "+\n")
	for _, row := range grid {
		sb.WriteString("|")
		sb.Write(row)
		sb.WriteString("|\n")
	}
	sb.WriteString("+" + strings.Repeat("-", width) + "+\n")
	return sb.String()
}

func minMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 1
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
