package experiments

import (
	"fmt"
	"time"

	"gmeansmr/internal/dataset"
	"gmeansmr/internal/kmeansmr"
)

// table2Ks are the k_max values of the scaled multi-k-means runs (the
// paper uses 50–400).
var table2Ks = []int{16, 32, 64, 128}

// table2Row is one multi-k-means measurement.
type table2Row struct {
	KMax         int
	AvgIteration time.Duration
	Distances    int64
}

// runTable2 measures the average single-iteration time of multi-k-means
// when testing all k in [1, kmax].
func runTable2(opts Options) ([]table2Row, error) {
	rows := make([]table2Row, 0, len(table2Ks))
	for _, k := range table2Ks {
		spec := dataset.Spec{
			K: k, Dim: 10, N: opts.scaled(40_000),
			CenterRange: 100, StdDev: 1, MinSeparation: 8,
			Seed: opts.Seed + int64(k),
		}
		env, _, err := buildEnv(spec, paperCluster(), 0)
		if err != nil {
			return nil, err
		}
		// 3 iterations are enough to measure the per-iteration cost the
		// paper's Table 2 reports (its quality runs use 10).
		res, err := kmeansmr.RunMulti(kmeansmr.MultiConfig{
			Env: env, KMin: 1, KMax: k, Iterations: 3, Seed: opts.Seed + 7,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, table2Row{
			KMax:         k,
			AvgIteration: res.AvgIterationTime(),
			Distances:    res.Counters.Get(kmeansmr.CounterDistances) / int64(len(res.IterationTimes)),
		})
	}
	return rows, nil
}

// Table2 reproduces the paper's Table 2: "Average time of a single
// iteration of multi-k-means". The paper's observation: the per-iteration
// cost blows up superlinearly (O(n·k²) distance computations).
func Table2(opts Options) error {
	opts = opts.withDefaults()
	rows, err := runTable2(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(opts.Out, "\n=== Table 2: average single-iteration time of multi-k-means ===\n")
	var out [][]string
	var csvRows [][]string
	for i, r := range rows {
		growth := "-"
		if i > 0 {
			growth = fmtF(float64(r.AvgIteration)/float64(rows[i-1].AvgIteration), 2) + "x"
		}
		out = append(out, []string{
			fmt.Sprintf("d%d", r.KMax),
			fmtI(int64(r.KMax)),
			fmtF(r.AvgIteration.Seconds(), 3),
			growth,
			fmtI(r.Distances),
		})
		csvRows = append(csvRows, []string{
			fmtI(int64(r.KMax)), fmtF(r.AvgIteration.Seconds(), 5), fmtI(r.Distances)})
	}
	fmt.Fprint(opts.Out, table(
		[]string{"dataset", "clusters", "time/iteration (s)", "growth", "distances/iteration"},
		out))
	fmt.Fprintf(opts.Out, "Paper: per-iteration time grows superlinearly; distances/iteration = n·k(k+1)/2.\n")
	return writeCSV(opts, "table2_multikmeans",
		[]string{"k_max", "seconds_per_iteration", "distances_per_iteration"}, csvRows)
}
