package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gmeansmr/internal/vec"
)

// smallOpts runs experiments at a fraction of the default sizes so the
// whole registry stays test-suite friendly.
func smallOpts(buf *bytes.Buffer, scale float64) Options {
	return Options{Out: buf, Scale: scale, Seed: 1}
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 9 {
		t.Fatalf("expected 9 experiments (4 tables/figures pairs + scaling), got %d", len(names))
	}
	for _, n := range names {
		if Registry[n] == nil {
			t.Errorf("experiment %s missing from registry", n)
		}
	}
	// Every registry entry must be listed.
	if len(Registry) != len(names) {
		t.Errorf("registry has %d entries, names %d", len(Registry), len(names))
	}
}

func TestFig1Report(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig1(smallOpts(&buf, 0.3)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 1", "Iteration 1", "Final", "X"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 output missing %q", want)
		}
	}
}

func TestFig2ReportAndFrontier(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig2(smallOpts(&buf, 0.15)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "FAILED (heap space)") {
		t.Error("fig2 never hit the heap frontier")
	}
	if !strings.Contains(out, "succeeded") {
		t.Error("fig2 never succeeded")
	}
	if !strings.Contains(out, "64.0 bytes per point") {
		t.Errorf("fig2 regression did not recover the 64 B/point model:\n%s", out)
	}
}

func TestTable1Report(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(smallOpts(&buf, 0.5)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "d16") {
		t.Errorf("table1 output malformed:\n%s", out)
	}
}

func TestTable4ComparableRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Table4(smallOpts(&buf, 0.15)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The three node counts must execute the identical algorithm: same k,
	// same iterations on every row.
	var ks []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "T4") || strings.HasPrefix(line, "T8") || strings.HasPrefix(line, "T12") {
			fields := strings.Fields(line)
			if len(fields) >= 6 {
				ks = append(ks, fields[4]+"/"+fields[5])
			}
		}
	}
	if len(ks) != 3 {
		t.Fatalf("expected 3 scaling rows, got %d:\n%s", len(ks), out)
	}
	if ks[0] != ks[1] || ks[1] != ks[2] {
		t.Errorf("node-scaling runs diverged: %v", ks)
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	opts := Options{Out: &buf, Scale: 0.3, Seed: 1, CSVDir: dir}
	if err := Fig1(opts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1_centers.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "iteration,x,y" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) < 3 {
		t.Errorf("csv has only %d lines", len(lines))
	}
}

func TestTableRendering(t *testing.T) {
	out := table([]string{"a", "long-header"}, [][]string{{"1", "2"}, {"wide-cell", "3"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	// All rows align to the same width.
	if len(lines[0]) != len(lines[2]) {
		t.Errorf("misaligned table:\n%s", out)
	}
}

func TestAsciiScatterMarksCenters(t *testing.T) {
	pts := []vec.Vector{{0, 0}, {10, 10}, {5, 5}}
	centers := []vec.Vector{{5, 5}}
	out := asciiScatter(pts, centers, 20, 10, 0)
	if !strings.Contains(out, "X") {
		t.Error("no center marker in scatter")
	}
	if !strings.Contains(out, ".") {
		t.Error("no data points in scatter")
	}
}

func TestAsciiScatterDegenerate(t *testing.T) {
	// Identical points (zero range) must not panic or divide by zero.
	pts := []vec.Vector{{1, 1}, {1, 1}}
	out := asciiScatter(pts, nil, 10, 5, 0)
	if !strings.Contains(out, ".") {
		t.Error("degenerate scatter lost its points")
	}
}

func TestAsciiSeries(t *testing.T) {
	out := asciiSeries("title", []float64{1, 2, 3},
		map[string][]float64{"up": {1, 2, 3}, "down": {3, 2, 1}}, 30, 10)
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	// Two distinct series markers.
	if !strings.Contains(out, " = up") || !strings.Contains(out, " = down") {
		t.Errorf("missing legend:\n%s", out)
	}
}

func TestOptionsScaled(t *testing.T) {
	o := Options{Scale: 0.5}.withDefaults()
	if got := o.scaled(1000); got != 500 {
		t.Errorf("scaled = %d", got)
	}
	// Floors at 100 so tiny scales still produce runnable datasets.
	if got := o.scaled(10); got != 100 {
		t.Errorf("scaled floor = %d", got)
	}
	if d := (Options{}).withDefaults(); d.Scale != 1.0 || d.Out == nil {
		t.Error("defaults wrong")
	}
}
