package experiments

import (
	"fmt"
	"time"

	"gmeansmr/internal/core"
	"gmeansmr/internal/dataset"
	"gmeansmr/internal/kmeansmr"
)

// table1Ks are the true cluster counts of the scaled d-series datasets
// (the paper uses 100–1600 on 10M points; the scaled suite halves the
// range and shrinks n, preserving the geometric progression that exposes
// linear-vs-quadratic growth).
var table1Ks = []int{16, 32, 64, 128}

// table1Row is one dataset's outcome.
type table1Row struct {
	KReal      int
	Discovered int
	Duration   time.Duration
	Iterations int
	Distances  int64
}

// runTable1 runs MR G-means on every d-series dataset.
func runTable1(opts Options) ([]table1Row, error) {
	rows := make([]table1Row, 0, len(table1Ks))
	for _, k := range table1Ks {
		spec := dataset.Spec{
			K: k, Dim: 10, N: opts.scaled(40_000),
			CenterRange: 100, StdDev: 1, MinSeparation: 8,
			Seed: opts.Seed + int64(k),
		}
		env, _, err := buildEnv(spec, paperCluster(), 0)
		if err != nil {
			return nil, err
		}
		res, err := core.Run(core.Config{Env: env, Seed: opts.Seed + 100 + int64(k)})
		if err != nil {
			return nil, err
		}
		rows = append(rows, table1Row{
			KReal:      k,
			Discovered: res.K,
			Duration:   res.Duration,
			Iterations: res.Iterations,
			Distances:  res.Counters.Get(kmeansmr.CounterDistances),
		})
	}
	return rows, nil
}

// Table1 reproduces the paper's Table 1: "Results of G-means clustering" —
// per dataset the true k, the discovered k, the run time, and the number
// of iterations. The paper's headline observations to check against:
// discovered/real ≈ 1.5, iterations ≈ log₂k plus a small slack, and run
// time scaling linearly with k.
func Table1(opts Options) error {
	opts = opts.withDefaults()
	rows, err := runTable1(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(opts.Out, "\n=== Table 1: results of MR G-means clustering (d-series, R¹⁰) ===\n")
	var out [][]string
	var csvRows [][]string
	for _, r := range rows {
		ratio := float64(r.Discovered) / float64(r.KReal)
		out = append(out, []string{
			fmt.Sprintf("d%d", r.KReal),
			fmtI(int64(r.KReal)),
			fmtI(int64(r.Discovered)),
			fmtF(ratio, 2),
			fmtF(r.Duration.Seconds(), 2),
			fmtI(int64(r.Iterations)),
			fmtI(r.Distances),
		})
		csvRows = append(csvRows, []string{
			fmtI(int64(r.KReal)), fmtI(int64(r.Discovered)),
			fmtF(r.Duration.Seconds(), 4), fmtI(int64(r.Iterations)), fmtI(r.Distances)})
	}
	fmt.Fprint(opts.Out, table(
		[]string{"dataset", "clusters", "discovered", "ratio", "time (s)", "iterations", "distances"},
		out))
	fmt.Fprintf(opts.Out, "Paper: ratio ≈ 1.5 constant, iterations ≈ log₂k + slack, time linear in k.\n")
	return writeCSV(opts, "table1_gmeans",
		[]string{"k_real", "k_found", "seconds", "iterations", "distances"}, csvRows)
}
