package experiments

import (
	"fmt"

	"gmeansmr/internal/core"
	"gmeansmr/internal/dataset"
)

// Fig1 reproduces the paper's Figure 1: "Evolution of centers positioned
// by G-means in a dataset containing 10 clusters in R²". It runs MR
// G-means on a 10-cluster 2-D mixture and renders the center set after
// each of the first iterations.
func Fig1(opts Options) error {
	opts = opts.withDefaults()
	spec := dataset.Spec{
		K: 10, Dim: 2, N: opts.scaled(10_000),
		CenterRange: 100, StdDev: 2, MinSeparation: 18,
		Seed: opts.Seed + 1,
	}
	env, ds, err := buildEnv(spec, paperCluster(), 0)
	if err != nil {
		return err
	}
	res, err := core.Run(core.Config{Env: env, Seed: opts.Seed + 2})
	if err != nil {
		return err
	}

	fmt.Fprintf(opts.Out, "\n=== Figure 1: evolution of G-means centers (10 clusters in R²) ===\n")
	fmt.Fprintf(opts.Out, "n=%d true-k=%d discovered-k=%d iterations=%d\n\n",
		spec.N, spec.K, res.K, res.Iterations)

	var csvRows [][]string
	shown := 3
	if len(res.PerIteration) < shown {
		shown = len(res.PerIteration)
	}
	for _, it := range res.PerIteration {
		for _, c := range it.Centers {
			csvRows = append(csvRows, []string{
				fmt.Sprintf("%d", it.Iteration), fmtF(c[0], 4), fmtF(c[1], 4)})
		}
		if it.Iteration <= shown {
			fmt.Fprintf(opts.Out, "Iteration %d (%d centers, strategy %s):\n",
				it.Iteration, len(it.Centers), it.Strategy)
			fmt.Fprint(opts.Out, asciiScatter(ds.Points, it.Centers, 72, 20, 1200))
		}
	}
	fmt.Fprintf(opts.Out, "Final (%d centers):\n", res.K)
	fmt.Fprint(opts.Out, asciiScatter(ds.Points, res.Centers, 72, 20, 1200))

	return writeCSV(opts, "fig1_centers", []string{"iteration", "x", "y"}, csvRows)
}
