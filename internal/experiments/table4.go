package experiments

import (
	"fmt"

	"gmeansmr/internal/core"
	"gmeansmr/internal/dataset"
)

// Table4 reproduces the paper's Table 4 / Figure 5: the running time of MR
// G-means on the same dataset as the cluster grows from 4 to 8 to 12
// nodes. The paper clusters 100M points in 1000 clusters and observes
// near-linear speed-up (798 → 447 → 323 minutes).
//
// The simulated cluster bounds concurrent tasks by nodes × slots, so the
// speed-up here comes from genuine CPU parallelism over the map splits.
func Table4(opts Options) error {
	opts = opts.withDefaults()
	fmt.Fprintf(opts.Out, "\n=== Table 4 / Figure 5: node scaling of MR G-means ===\n")
	// Heavy enough that distance computation dominates task overhead: the
	// paper's scaling run uses 100M points in 1000 clusters; this keeps
	// the same points-per-cluster regime at 1/500 scale.
	spec := dataset.Spec{
		K: 100, Dim: 10, N: opts.scaled(200_000),
		CenterRange: 100, StdDev: 1, MinSeparation: 8,
		Seed: opts.Seed + 10,
	}
	nodeCounts := []int{4, 8, 12}
	// One fixed split size for every run: enough splits (≈96) to keep all
	// 24 slots of the 12-node cluster busy. Holding the data layout, the
	// seed and the test strategy constant makes the three runs execute the
	// exact same algorithm — only the available parallelism changes, which
	// is what the paper's experiment isolates.
	splitSize := spec.N * spec.Dim * 18 / 96
	if splitSize < 4<<10 {
		splitSize = 4 << 10
	}
	var rows [][]string
	var csvRows [][]string
	var xs, ys []float64
	var base float64
	for _, nodes := range nodeCounts {
		cluster := paperCluster().WithNodes(nodes)
		env, _, err := buildEnv(spec, cluster, splitSize)
		if err != nil {
			return err
		}
		res, err := core.Run(core.Config{
			Env: env, Seed: opts.Seed + 11,
			ForceStrategy: core.StrategyFewClusters,
		})
		if err != nil {
			return err
		}
		sec := res.Duration.Seconds()
		if base == 0 {
			base = sec
		}
		xs = append(xs, float64(nodes))
		ys = append(ys, sec)
		rows = append(rows, []string{
			fmt.Sprintf("T%d", nodes),
			fmtI(int64(nodes)),
			fmtF(sec, 2),
			fmtF(base/sec, 2) + "x",
			fmtI(int64(res.K)),
			fmtI(int64(res.Iterations)),
		})
		csvRows = append(csvRows, []string{fmtI(int64(nodes)), fmtF(sec, 4)})
	}
	fmt.Fprint(opts.Out, table(
		[]string{"run", "nodes", "time (s)", "speedup vs 4 nodes", "k found", "iterations"},
		rows))
	fmt.Fprint(opts.Out, asciiSeries("running time vs nodes", xs,
		map[string][]float64{"G-means": ys}, 60, 14))
	fmt.Fprintf(opts.Out, "Paper: 798/447/323 min on 4/8/12 nodes — time decreases roughly linearly\n")
	fmt.Fprintf(opts.Out, "with the number of nodes (1.79x at 8, 2.47x at 12).\n")
	return writeCSV(opts, "table4_scaling", []string{"nodes", "seconds"}, csvRows)
}
