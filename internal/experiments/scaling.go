package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"gmeansmr/internal/core"
	"gmeansmr/internal/dataset"
	"gmeansmr/internal/kmeansmr"
)

// The scaling suite turns the paper's shape claims into a machine-checkable
// artifact: each series sweeps one variable (k, n, nodes), measures a
// deterministic cost (distance computations; wall time only for the node
// series), fits a log-log power law, and records the fitted exponent with
// the band it must stay inside. CI regenerates SCALING.json every push and
// cmd/benchdiff -scaling fails the build when a gated exponent leaves its
// band or drifts across pushes — gating the *shape* of the cost curves, not
// a single benchmark's ns/op.

// ScalingSeries is one fitted cost curve.
type ScalingSeries struct {
	Name string `json:"name"`
	// Unit names the y axis (distance computations, seconds).
	Unit string    `json:"unit"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
	// Exponent is the least-squares slope of ln y over ln x; R2 its fit
	// quality on the log-log points.
	Exponent float64 `json:"exponent"`
	R2       float64 `json:"r2"`
	// Gated series fail cmd/benchdiff -scaling when Exponent leaves
	// [MinExponent, MaxExponent]. Ungated series (wall-time ones — too
	// noisy for hosted CI runners) are recorded for trend only.
	Gated       bool    `json:"gated"`
	MinExponent float64 `json:"min_exponent"`
	MaxExponent float64 `json:"max_exponent"`
}

// ScalingReport is the SCALING.json artifact.
type ScalingReport struct {
	Scale  float64         `json:"scale"`
	Seed   int64           `json:"seed"`
	Series []ScalingSeries `json:"series"`
}

// scalingKs sweeps true k for the cost-vs-k series.
var scalingKs = []int{4, 8, 16, 32}

// scalingNs sweeps the point count for the cost-vs-n series (pre-scale).
var scalingNs = []int{5_000, 10_000, 20_000, 40_000}

// scalingNodes sweeps the simulated cluster width for the time-vs-nodes
// series.
var scalingNodes = []int{1, 2, 4, 8}

// RunScaling measures every series and returns the fitted report.
func RunScaling(opts Options) (*ScalingReport, error) {
	opts = opts.withDefaults()
	report := &ScalingReport{Scale: opts.Scale, Seed: opts.Seed}

	// G-means cost vs k: the paper's headline claim — one G-means pass
	// refines every cluster in the same MR round, so cost grows ~linearly
	// in k where the multi-k baseline grows quadratically.
	{
		s := ScalingSeries{Name: "gmeans-cost-vs-k", Unit: "distance computations",
			Gated: true, MinExponent: 0.8, MaxExponent: 1.3}
		for _, k := range scalingKs {
			spec := dataset.Spec{K: k, Dim: 8, N: opts.scaled(20_000),
				CenterRange: 100, StdDev: 1, MinSeparation: 8, Seed: opts.Seed + int64(k)}
			env, _, err := buildEnv(spec, paperCluster(), 0)
			if err != nil {
				return nil, err
			}
			res, err := core.Run(core.Config{Env: env, Seed: opts.Seed + 100 + int64(k)})
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(k))
			s.Y = append(s.Y, float64(res.Counters.Get(kmeansmr.CounterDistances)))
		}
		s.Exponent, s.R2 = fitPowerLaw(s.X, s.Y)
		report.Series = append(report.Series, s)
	}

	// G-means cost vs n at fixed k: every pass reads the whole dataset, so
	// cost is ~linear in n.
	{
		s := ScalingSeries{Name: "gmeans-cost-vs-n", Unit: "distance computations",
			Gated: true, MinExponent: 0.8, MaxExponent: 1.25}
		for _, n := range scalingNs {
			spec := dataset.Spec{K: 8, Dim: 8, N: opts.scaled(n),
				CenterRange: 100, StdDev: 1, MinSeparation: 8, Seed: opts.Seed + int64(n)}
			env, _, err := buildEnv(spec, paperCluster(), 0)
			if err != nil {
				return nil, err
			}
			res, err := core.Run(core.Config{Env: env, Seed: opts.Seed + 200 + int64(n)})
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(opts.scaled(n)))
			s.Y = append(s.Y, float64(res.Counters.Get(kmeansmr.CounterDistances)))
		}
		s.Exponent, s.R2 = fitPowerLaw(s.X, s.Y)
		report.Series = append(report.Series, s)
	}

	// Multi-k-means cost vs k ceiling: sweeping k=1..kmax costs Σk ≈ k²/2
	// distances per pass — the quadratic growth the paper's comparison
	// hinges on. Over k=4..32 the finite-sum log-log slope sits near 1.9.
	{
		s := ScalingSeries{Name: "multik-cost-vs-k", Unit: "distance computations",
			Gated: true, MinExponent: 1.6, MaxExponent: 2.3}
		for _, kmax := range scalingKs {
			spec := dataset.Spec{K: 8, Dim: 8, N: opts.scaled(8_000),
				CenterRange: 100, StdDev: 1, MinSeparation: 8, Seed: opts.Seed + 17}
			env, _, err := buildEnv(spec, paperCluster(), 0)
			if err != nil {
				return nil, err
			}
			cfg := kmeansmr.MultiConfig{Env: env, KMin: 1, KMax: kmax, Iterations: 3,
				Seeding: kmeansmr.MultiSeedPlusPlus, Seed: opts.Seed + 300 + int64(kmax)}
			res, err := kmeansmr.RunMulti(cfg)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(kmax))
			s.Y = append(s.Y, float64(res.Counters.Get(kmeansmr.CounterDistances)))
		}
		s.Exponent, s.R2 = fitPowerLaw(s.X, s.Y)
		report.Series = append(report.Series, s)
	}

	// G-means wall time vs nodes: the speedup curve. Wall time on shared
	// hardware is noisy, so this series is recorded but never gated; the
	// exponent should sit below 0 (more nodes, less time) on quiet machines.
	{
		s := ScalingSeries{Name: "gmeans-time-vs-nodes", Unit: "seconds"}
		for _, nodes := range scalingNodes {
			spec := dataset.Spec{K: 8, Dim: 8, N: opts.scaled(40_000),
				CenterRange: 100, StdDev: 1, MinSeparation: 8, Seed: opts.Seed + 29}
			cluster := paperCluster()
			cluster.Nodes = nodes
			env, _, err := buildEnv(spec, cluster, 0)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := core.Run(core.Config{Env: env, Seed: opts.Seed + 400}); err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(nodes))
			s.Y = append(s.Y, time.Since(start).Seconds())
		}
		s.Exponent, s.R2 = fitPowerLaw(s.X, s.Y)
		report.Series = append(report.Series, s)
	}

	return report, nil
}

// Scaling is the registry runner: print the fitted table and, when
// Options.ScalingJSON is set, write the SCALING.json artifact.
func Scaling(opts Options) error {
	opts = opts.withDefaults()
	report, err := RunScaling(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(opts.Out, "\n=== Scaling curves: fitted log-log exponents ===\n")
	var rows [][]string
	var csvRows [][]string
	for _, s := range report.Series {
		band := "(trend only)"
		if s.Gated {
			band = fmt.Sprintf("[%.2f, %.2f]", s.MinExponent, s.MaxExponent)
		}
		rows = append(rows, []string{s.Name, fmtF(s.Exponent, 3), fmtF(s.R2, 4), band, s.Unit})
		for i := range s.X {
			csvRows = append(csvRows, []string{s.Name, fmtF(s.X[i], 0), fmtF(s.Y[i], 4)})
		}
	}
	fmt.Fprint(opts.Out, table([]string{"series", "exponent", "r2", "gate band", "unit"}, rows))
	fmt.Fprintf(opts.Out, "Paper: G-means cost linear in k and n; multi-k-means quadratic in k.\n")
	if opts.ScalingJSON != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.ScalingJSON, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(opts.Out, "wrote %s\n", opts.ScalingJSON)
	}
	return writeCSV(opts, "scaling_curves", []string{"series", "x", "y"}, csvRows)
}

// fitPowerLaw fits y = c·x^e by least squares on (ln x, ln y) and returns
// the exponent e with the fit's R². Points with non-positive x or y are
// meaningless in log space and yield NaN.
func fitPowerLaw(x, y []float64) (exponent, r2 float64) {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN(), math.NaN()
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			return math.NaN(), math.NaN()
		}
		lx, ly := math.Log(x[i]), math.Log(y[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		syy += ly * ly
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN(), math.NaN()
	}
	exponent = (n*sxy - sx*sy) / den
	// R² on the log-log points.
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return exponent, 1
	}
	intercept := (sy - exponent*sx) / n
	ssRes := 0.0
	for i := range x {
		resid := math.Log(y[i]) - (intercept + exponent*math.Log(x[i]))
		ssRes += resid * resid
	}
	return exponent, 1 - ssRes/ssTot
}
