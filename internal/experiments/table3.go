package experiments

import (
	"fmt"

	"gmeansmr/internal/core"
	"gmeansmr/internal/dataset"
	"gmeansmr/internal/kmeansmr"
	"gmeansmr/internal/lloyd"
)

// Table3 reproduces the paper's Table 3: clustering quality of G-means vs
// multi-k-means, measured as the average distance between points and their
// centers. The paper finds G-means wins by ≈10% because it adds centers
// progressively where needed, avoiding the local minima multi-k-means
// falls into from random seeding.
//
// Methodology (as in the paper): G-means runs to completion, discovering
// its own k; multi-k-means then runs 10 iterations "for the same value of
// k" (the number of centers G-means placed) and both report mean
// point-center distance. The dataset geometry uses a moderate center
// range so clusters are distinct but a misplaced center is not
// catastrophically far from the points it strands — the paper's
// quality-gap regime (its d-series averages sit just above σ√10 ≈ 3.16,
// i.e. mild overlap).
func Table3(opts Options) error {
	opts = opts.withDefaults()
	fmt.Fprintf(opts.Out, "\n=== Table 3: clustering quality — G-means vs multi-k-means ===\n")
	ks := []int{16, 32, 64}
	var rows [][]string
	var csvRows [][]string
	for _, k := range ks {
		spec := dataset.Spec{
			K: k, Dim: 10, N: opts.scaled(30_000),
			CenterRange: 100, StdDev: 1, MinSeparation: 8,
			Seed: opts.Seed + int64(k)*3,
		}
		env, ds, err := buildEnv(spec, paperCluster(), 0)
		if err != nil {
			return err
		}
		gres, err := core.Run(core.Config{Env: env, Seed: opts.Seed + 5})
		if err != nil {
			return err
		}
		gAssign := lloyd.Assign(ds.Points, gres.Centers)
		gDist := lloyd.AverageDistance(ds.Points, gres.Centers, gAssign)

		// Average multi-k-means over three seedings: one unlucky random
		// start swings the quality of a single run wildly (that volatility
		// is itself the paper's point), while the mean exposes the
		// systematic gap.
		// Two baselines bracket the paper's ≈10% gap: the paper's own
		// random seeding (where the coupon-collector effect strands whole
		// clusters — the local-minimum mechanism, amplified by our
		// well-separated scaled geometry) and k-means++ seeding (the
		// production initializer the paper prescribes, which nearly
		// eliminates the gap). Each is averaged over three seedings.
		randDist, err := multiAvgDist(opts, env, gres.K, kmeansmr.MultiSeedRandom)
		if err != nil {
			return err
		}
		ppDist, err := multiAvgDist(opts, env, gres.K, kmeansmr.MultiSeedPlusPlus)
		if err != nil {
			return err
		}

		rows = append(rows, []string{
			fmt.Sprintf("d%d", k), fmtI(int64(k)), fmtI(int64(gres.K)),
			fmtF(gDist, 3),
			fmtF(randDist, 3), fmtF((randDist/gDist-1)*100, 1) + "%",
			fmtF(ppDist, 3), fmtF((ppDist/gDist-1)*100, 1) + "%",
		})
		csvRows = append(csvRows, []string{
			fmtI(int64(k)), fmtI(int64(gres.K)), fmtF(gDist, 5),
			fmtF(randDist, 5), fmtF(ppDist, 5)})
	}
	fmt.Fprint(opts.Out, table(
		[]string{"dataset", "k_real", "k_found", "G-means",
			"multi-k (rand)", "Δ", "multi-k (++)", "Δ"},
		rows))
	fmt.Fprintf(opts.Out, "Paper: G-means ≈ 10%% better (3.34 vs 3.71 on d100, etc.); k_found/k_real ≈ 1.5.\n")
	fmt.Fprintf(opts.Out, "The two baselines bracket that: random seeding (the paper's implementation)\n")
	fmt.Fprintf(opts.Out, "loses big through local minima — the paper's mechanism, amplified by the\n")
	fmt.Fprintf(opts.Out, "well-separated scaled geometry the AD test needs at 3·10⁴ points — while a\n")
	fmt.Fprintf(opts.Out, "k-means++-seeded production baseline closes the gap. G-means needs neither\n")
	fmt.Fprintf(opts.Out, "restarts nor a seeding job to sit at the good end of that bracket.\n")
	return writeCSV(opts, "table3_quality",
		[]string{"k_real", "k_found", "gmeans_avg_dist", "multik_random_avg_dist", "multik_pp_avg_dist"}, csvRows)
}

// multiAvgDist runs multi-k-means at exactly k centers with the given
// seeding, three times, and returns the mean average point-center distance.
func multiAvgDist(opts Options, env kmeansmr.Env, k int, seeding kmeansmr.MultiSeeding) (float64, error) {
	var sum float64
	const runs = 3
	for r := int64(0); r < runs; r++ {
		mcfg := kmeansmr.MultiConfig{Env: env, KMin: k, KMax: k,
			Iterations: 10, Seeding: seeding, Seed: opts.Seed + 6 + r*101}
		mres, err := kmeansmr.RunMulti(mcfg)
		if err != nil {
			return 0, err
		}
		if err := kmeansmr.Evaluate(mcfg, mres); err != nil {
			return 0, err
		}
		sum += mres.AvgDistByK[k]
	}
	return sum / runs, nil
}
