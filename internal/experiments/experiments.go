// Package experiments reproduces every table and figure of the paper's
// evaluation (§5) on scaled-down versions of its synthetic workloads. Each
// experiment is a Runner that prints the same rows/series the paper
// reports and can optionally dump CSV files for plotting.
//
// Scaling: the paper used 10M–100M points on a physical Hadoop cluster;
// the defaults here use 10⁴–10⁵ points on the simulated engine so the full
// suite completes in minutes. The *shapes* the paper reports (linear vs
// quadratic growth in k, the ≈1.5× over-estimation, the ≈10% WCSS win, the
// node-scaling curve, the 64 B/point heap frontier) are size-independent;
// EXPERIMENTS.md records paper-vs-measured numbers side by side.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
	"gmeansmr/internal/kmeansmr"
	"gmeansmr/internal/mr"
)

// Options control an experiment run.
type Options struct {
	// Out receives the human-readable report; nil selects os.Stdout.
	Out io.Writer
	// CSVDir, when non-empty, receives one CSV file per experiment.
	CSVDir string
	// Scale multiplies the default workload sizes (points); 0 selects 1.0.
	// Benchmarks use small scales; the CLI uses 1.0.
	Scale float64
	// Seed drives dataset generation and algorithm seeding.
	Seed int64
	// ScalingJSON, when non-empty, is the path the scaling experiment
	// writes its machine-readable report (SCALING.json) to.
	ScalingJSON string
}

func (o Options) withDefaults() Options {
	if o.Out == nil {
		o.Out = os.Stdout
	}
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	return o
}

func (o Options) scaled(n int) int {
	s := int(float64(n) * o.Scale)
	if s < 100 {
		s = 100
	}
	return s
}

// Runner executes one experiment and writes its report.
type Runner func(Options) error

// Registry maps experiment ids (fig1, table1, ...) to runners.
var Registry = map[string]Runner{
	"fig1":    Fig1,
	"fig2":    Fig2,
	"table1":  Table1,
	"table2":  Table2,
	"fig3":    Fig3,
	"table3":  Table3,
	"fig4":    Fig4,
	"table4":  Table4,
	"scaling": Scaling,
}

// Names returns the registry keys in canonical paper order (the scaling
// suite, which is ours rather than the paper's, runs last).
func Names() []string {
	return []string{"fig1", "fig2", "table1", "table2", "fig3", "table3", "fig4", "table4", "scaling"}
}

// RunAll executes every experiment in paper order.
func RunAll(opts Options) error {
	for _, name := range Names() {
		if err := Registry[name](opts); err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
	}
	return nil
}

// paperCluster is the simulated counterpart of the paper's 4-node testbed.
func paperCluster() mr.Cluster {
	return mr.Cluster{
		Nodes:              4,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 2,
		TaskHeapBytes:      256 << 20,
		MaxHeapUsage:       0.66,
	}
}

// buildEnv materializes a mixture dataset into a fresh DFS and returns the
// job environment. splitSize of 0 selects ~32 map splits for the dataset.
func buildEnv(spec dataset.Spec, cluster mr.Cluster, splitSize int) (kmeansmr.Env, *dataset.Dataset, error) {
	ds, err := dataset.Generate(spec)
	if err != nil {
		return kmeansmr.Env{}, nil, err
	}
	if splitSize == 0 {
		// ≈ 18 bytes per coordinate in the text encoding.
		approxBytes := spec.N * spec.Dim * 18
		splitSize = approxBytes / 32
		if splitSize < 4<<10 {
			splitSize = 4 << 10
		}
	}
	fs := dfs.New(splitSize)
	ds.WriteToDFS(fs, "/data/points.txt")
	env := kmeansmr.Env{FS: fs, Cluster: cluster, Input: "/data/points.txt", Dim: spec.Dim}
	return env, ds, nil
}

// table renders rows as an aligned text table.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", width[i]-len(c)))
		}
		sb.WriteString("\n")
	}
	writeRow(header)
	total := len(header)*2 - 2
	for _, w := range width {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// writeCSV writes rows (with header) to CSVDir/name.csv when CSVDir is set.
func writeCSV(opts Options, name string, header []string, rows [][]string) error {
	if opts.CSVDir == "" {
		return nil
	}
	if err := os.MkdirAll(opts.CSVDir, 0o755); err != nil {
		return err
	}
	var sb strings.Builder
	sb.WriteString(strings.Join(header, ","))
	sb.WriteString("\n")
	for _, row := range rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteString("\n")
	}
	return os.WriteFile(filepath.Join(opts.CSVDir, name+".csv"), []byte(sb.String()), 0o644)
}

// sortedKeys returns the sorted int keys of a map.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func fmtF(x float64, prec int) string { return fmt.Sprintf("%.*f", prec, x) }
func fmtI(x int64) string             { return fmt.Sprintf("%d", x) }
