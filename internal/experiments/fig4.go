package experiments

import (
	"fmt"

	"gmeansmr/internal/core"
	"gmeansmr/internal/dataset"
	"gmeansmr/internal/kmeansmr"
	"gmeansmr/internal/lloyd"
)

// Fig4 reproduces the paper's Figure 4: on a 10-cluster 2-D dataset,
// G-means discovers ~14 centers but covers every true cluster, while
// multi-k-means with the *correct* k=10 falls into a local minimum,
// placing two centers in one cluster and leaving another under-served —
// producing a visibly worse clustering and a larger average distance.
func Fig4(opts Options) error {
	opts = opts.withDefaults()
	spec := dataset.Spec{
		K: 10, Dim: 2, N: opts.scaled(10_000),
		CenterRange: 100, StdDev: 2, MinSeparation: 18,
		Seed: opts.Seed + 4,
	}
	env, ds, err := buildEnv(spec, paperCluster(), 0)
	if err != nil {
		return err
	}
	gres, err := core.Run(core.Config{Env: env, Seed: opts.Seed + 8})
	if err != nil {
		return err
	}
	gAssign := lloyd.Assign(ds.Points, gres.Centers)
	gDist := lloyd.AverageDistance(ds.Points, gres.Centers, gAssign)

	mcfg := kmeansmr.MultiConfig{Env: env, KMin: 10, KMax: 10, Iterations: 10, Seed: opts.Seed + 9}
	mres, err := kmeansmr.RunMulti(mcfg)
	if err != nil {
		return err
	}
	if err := kmeansmr.Evaluate(mcfg, mres); err != nil {
		return err
	}
	mCenters := mres.CentersByK[10]
	mDist := mres.AvgDistByK[10]

	// Count true clusters covered (a center within 3σ of the true center).
	gCovered := coverage(ds, gres.Centers)
	mCovered := coverage(ds, mCenters)

	fmt.Fprintf(opts.Out, "\n=== Figure 4: G-means vs multi-k-means on 10 clusters in R² ===\n\n")
	fmt.Fprintf(opts.Out, "%d centers found by G-means (avg dist %.3f, %d/10 true clusters covered):\n",
		gres.K, gDist, gCovered)
	fmt.Fprint(opts.Out, asciiScatter(ds.Points, gres.Centers, 72, 20, 1200))
	fmt.Fprintf(opts.Out, "\n%d centers found by multi-k-means (avg dist %.3f, %d/10 true clusters covered):\n",
		len(mCenters), mDist, mCovered)
	fmt.Fprint(opts.Out, asciiScatter(ds.Points, mCenters, 72, 20, 1200))
	fmt.Fprintf(opts.Out, "Paper: G-means finds 14 centers but detects all clusters; multi-k-means with\n")
	fmt.Fprintf(opts.Out, "k=10 puts two centers in one cluster (local minimum) and misses another.\n")

	var csvRows [][]string
	for _, c := range gres.Centers {
		csvRows = append(csvRows, []string{"gmeans", fmtF(c[0], 4), fmtF(c[1], 4)})
	}
	for _, c := range mCenters {
		csvRows = append(csvRows, []string{"multikmeans", fmtF(c[0], 4), fmtF(c[1], 4)})
	}
	return writeCSV(opts, "fig4_centers", []string{"algorithm", "x", "y"}, csvRows)
}

// coverage counts how many true cluster centers have a discovered center
// within 3 standard deviations.
func coverage(ds *dataset.Dataset, centers [][]float64) int {
	n := 0
	limit := 3 * ds.Spec.StdDev
	for _, truth := range ds.Centers {
		for _, c := range centers {
			if dist2(truth, c) <= limit*limit {
				n++
				break
			}
		}
	}
	return n
}

func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
