package experiments

import (
	"fmt"
)

// Fig3 reproduces the paper's Figure 3: "Running time of G-means and
// multi-k-means" against k. G-means total time grows linearly with k while
// a *single* multi-k-means iteration grows superlinearly; the curves cross
// around k≈100 in the paper (at the scaled sizes the crossover lands at a
// proportionally smaller k, but it must exist and multi-k-means must lose
// past it).
func Fig3(opts Options) error {
	opts = opts.withDefaults()
	g, err := runTable1(opts)
	if err != nil {
		return err
	}
	m, err := runTable2(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(opts.Out, "\n=== Figure 3: running time vs k — G-means vs multi-k-means ===\n")

	var xs []float64
	gSeries := make([]float64, 0, len(g))
	mSeries := make([]float64, 0, len(m))
	var rows [][]string
	var csvRows [][]string
	for i := range g {
		if i >= len(m) {
			break
		}
		xs = append(xs, float64(g[i].KReal))
		gSec := g[i].Duration.Seconds()
		mSec := m[i].AvgIteration.Seconds()
		gSeries = append(gSeries, gSec)
		mSeries = append(mSeries, mSec)
		rows = append(rows, []string{
			fmtI(int64(g[i].KReal)), fmtF(gSec, 3), fmtF(mSec, 3),
			fmtF(mSec/gSec, 2),
		})
		csvRows = append(csvRows, []string{
			fmtI(int64(g[i].KReal)), fmtF(gSec, 5), fmtF(mSec, 5)})
	}
	fmt.Fprint(opts.Out, table(
		[]string{"k", "G-means total (s)", "multi-k-means 1 iter (s)", "multi/g ratio"}, rows))
	fmt.Fprint(opts.Out, asciiSeries("running time vs k",
		xs, map[string][]float64{
			"G-means (total)":        gSeries,
			"multi-k-means (1 iter)": mSeries,
		}, 72, 18))
	fmt.Fprintf(opts.Out, "Paper: multi-k-means rises superlinearly and loses to a *complete* G-means run\n")
	fmt.Fprintf(opts.Out, "already for a single iteration at moderate k.\n")
	return writeCSV(opts, "fig3_runtime",
		[]string{"k", "gmeans_total_seconds", "multik_iteration_seconds"}, csvRows)
}
