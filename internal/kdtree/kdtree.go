// Package kdtree implements a k-d tree over cluster centers for exact
// nearest-neighbor search — the "mrkd-tree" acceleration the paper's
// related work discusses (Pelleg & Moore, "Accelerating exact k-means
// algorithms with geometric reasoning", KDD 1999): in k-means, the
// per-point nearest-center query is the inner loop, and a spatial index
// over the (small) center set replaces the O(k) linear scan with a pruned
// descent.
//
// The tree indexes *centers*, not points, so it is rebuilt per k-means
// iteration at negligible cost (k ≪ n) and shared read-only by all map
// tasks. Results are exact: a branch is pruned only when the splitting
// hyperplane is provably farther than the best candidate found so far,
// and ties resolve to the lowest center index, matching
// vec.NearestIndex's determinism so the two implementations are
// interchangeable.
package kdtree

import (
	"math"
	"sort"

	"gmeansmr/internal/vec"
)

// Tree is an immutable k-d tree over a fixed set of centers.
type Tree struct {
	nodes   []node
	centers []vec.Vector
	root    int
}

type node struct {
	axis        int     // splitting dimension
	split       float64 // splitting value (the node point's coordinate)
	center      int     // index into centers
	left, right int     // node indexes, -1 for none
}

// Build constructs a k-d tree over centers. The centers slice is retained
// (not copied) and must not be mutated while the tree is in use. Build
// panics on an empty center set: a nearest-neighbor structure over nothing
// is a programming error.
func Build(centers []vec.Vector) *Tree {
	if len(centers) == 0 {
		panic("kdtree: Build with no centers")
	}
	t := &Tree{
		nodes:   make([]node, 0, len(centers)),
		centers: centers,
	}
	idx := make([]int, len(centers))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(idx, 0)
	return t
}

// build recursively constructs the subtree over the given center indexes,
// cycling the splitting axis by depth, and returns the node index.
func (t *Tree) build(idx []int, depth int) int {
	if len(idx) == 0 {
		return -1
	}
	axis := depth % len(t.centers[idx[0]])
	// Median split by the axis coordinate; ties broken by center index for
	// deterministic trees.
	sort.Slice(idx, func(a, b int) bool {
		ca, cb := t.centers[idx[a]][axis], t.centers[idx[b]][axis]
		if ca != cb {
			return ca < cb
		}
		return idx[a] < idx[b]
	})
	mid := len(idx) / 2
	n := node{
		axis:   axis,
		split:  t.centers[idx[mid]][axis],
		center: idx[mid],
		left:   -1,
		right:  -1,
	}
	self := len(t.nodes)
	t.nodes = append(t.nodes, n)
	left := t.build(append([]int{}, idx[:mid]...), depth+1)
	right := t.build(append([]int{}, idx[mid+1:]...), depth+1)
	t.nodes[self].left = left
	t.nodes[self].right = right
	return self
}

// Size returns the number of indexed centers.
func (t *Tree) Size() int { return len(t.centers) }

// Nearest returns the index of the center nearest to p (squared Euclidean)
// and that squared distance. Ties resolve to the lowest index, exactly
// like vec.NearestIndex.
func (t *Tree) Nearest(p vec.Vector) (int, float64) {
	idx, d2, _ := t.NearestCounted(p)
	return idx, d2
}

// NearestCounted is Nearest plus the number of full distance computations
// the descent performed — the quantity the repository's cost model counts,
// so kd-tree-accelerated jobs report their *actual* (pruned) distance
// work rather than the linear-scan k.
func (t *Tree) NearestCounted(p vec.Vector) (int, float64, int64) {
	best, bestD := -1, math.Inf(1)
	var comps int64
	t.search(t.root, p, &best, &bestD, &comps)
	return best, bestD, comps
}

func (t *Tree) search(ni int, p vec.Vector, best *int, bestD *float64, comps *int64) {
	if ni < 0 {
		return
	}
	n := &t.nodes[ni]
	d := vec.Dist2(p, t.centers[n.center])
	*comps++
	if d < *bestD || (d == *bestD && n.center < *best) {
		*best, *bestD = n.center, d
	}
	diff := p[n.axis] - n.split
	near, far := n.left, n.right
	if diff > 0 {
		near, far = n.right, n.left
	}
	t.search(near, p, best, bestD, comps)
	// The far side can only hold a better center if the splitting plane is
	// at least as close as the current best (<= keeps index-tie semantics).
	if diff*diff <= *bestD {
		t.search(far, p, best, bestD, comps)
	}
}
