package kdtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gmeansmr/internal/vec"
)

func randCenters(r *rand.Rand, k, dim int) []vec.Vector {
	out := make([]vec.Vector, k)
	for i := range out {
		out[i] = make(vec.Vector, dim)
		for d := range out[i] {
			out[i][d] = r.Float64() * 100
		}
	}
	return out
}

func TestNearestSingleCenter(t *testing.T) {
	tree := Build([]vec.Vector{{5, 5}})
	idx, d2 := tree.Nearest(vec.Vector{8, 9})
	if idx != 0 || d2 != 25 {
		t.Errorf("Nearest = (%d, %v), want (0, 25)", idx, d2)
	}
}

func TestBuildEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(nil)
}

func TestNearestKnownLayout(t *testing.T) {
	centers := []vec.Vector{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}}
	tree := Build(centers)
	cases := []struct {
		p    vec.Vector
		want int
	}{
		{vec.Vector{1, 1}, 0},
		{vec.Vector{9, 1}, 1},
		{vec.Vector{1, 9}, 2},
		{vec.Vector{9, 9}, 3},
		{vec.Vector{5, 5}, 4},
		{vec.Vector{4.9, 5.2}, 4},
	}
	for _, c := range cases {
		got, _ := tree.Nearest(c.p)
		if got != c.want {
			t.Errorf("Nearest(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestSize(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tree := Build(randCenters(r, 17, 3))
	if tree.Size() != 17 {
		t.Errorf("Size = %d", tree.Size())
	}
}

func TestNearestTieResolvesToLowestIndex(t *testing.T) {
	// Two identical centers: linear scan picks index 0; so must the tree.
	centers := []vec.Vector{{3, 3}, {3, 3}, {9, 9}}
	tree := Build(centers)
	got, _ := tree.Nearest(vec.Vector{3.1, 3})
	if got != 0 {
		t.Errorf("tie resolved to %d, want 0", got)
	}
	// Symmetric tie: query equidistant from two distinct centers.
	centers = []vec.Vector{{0, 0}, {2, 0}}
	tree = Build(centers)
	got, _ = tree.Nearest(vec.Vector{1, 0})
	if got != 0 {
		t.Errorf("equidistant tie resolved to %d, want 0", got)
	}
}

// TestPropMatchesLinearScan is the tree's defining property: for any
// centers and any query, Nearest agrees exactly with vec.NearestIndex.
func TestPropMatchesLinearScan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(64)
		dim := 1 + r.Intn(8)
		centers := randCenters(r, k, dim)
		tree := Build(centers)
		for q := 0; q < 20; q++ {
			p := make(vec.Vector, dim)
			for d := range p {
				p[d] = r.Float64()*120 - 10
			}
			wantIdx, wantD := vec.NearestIndex(p, centers)
			gotIdx, gotD := tree.Nearest(p)
			if gotIdx != wantIdx || gotD != wantD {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropMatchesLinearScanClusteredCenters exercises the pruning logic on
// pathological center layouts (tight groups, duplicates).
func TestPropMatchesLinearScanClusteredCenters(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 2 + r.Intn(3)
		var centers []vec.Vector
		for g := 0; g < 4; g++ {
			base := make(vec.Vector, dim)
			for d := range base {
				base[d] = r.Float64() * 100
			}
			for i := 0; i < 1+r.Intn(6); i++ {
				c := vec.Clone(base)
				c[r.Intn(dim)] += r.NormFloat64() * 0.01
				centers = append(centers, c)
			}
		}
		tree := Build(centers)
		for q := 0; q < 10; q++ {
			p := make(vec.Vector, dim)
			for d := range p {
				p[d] = r.Float64() * 100
			}
			wantIdx, _ := vec.NearestIndex(p, centers)
			gotIdx, _ := tree.Nearest(p)
			if gotIdx != wantIdx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNearestTreeVsLinear(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	centers := randCenters(r, 512, 10)
	queries := randCenters(r, 256, 10)
	tree := Build(centers)
	b.Run("kdtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree.Nearest(queries[i%len(queries)])
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vec.NearestIndex(queries[i%len(queries)], centers)
		}
	})
}
