package canopy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gmeansmr/internal/dataset"
	"gmeansmr/internal/vec"
)

func TestValidate(t *testing.T) {
	if err := (Config{T1: 2, T2: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{{T1: 0, T2: 1}, {T1: 1, T2: 0}, {T1: 1, T2: 2}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestClusterEmpty(t *testing.T) {
	if _, err := Cluster(nil, Config{T1: 2, T2: 1}); err == nil {
		t.Error("empty points accepted")
	}
}

func TestClusterWellSeparated(t *testing.T) {
	ds, err := dataset.Generate(dataset.Spec{K: 6, Dim: 2, N: 1200, MinSeparation: 30, StdDev: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	canopies, err := Cluster(ds.Points, Config{T1: 12, T2: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(canopies) != 6 {
		t.Errorf("canopies = %d, want 6", len(canopies))
	}
	// Every point appears in at least one canopy.
	seen := make([]bool, len(ds.Points))
	for _, c := range canopies {
		for _, m := range c.Members {
			seen[m] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("point %d not covered by any canopy", i)
		}
	}
}

func TestCentersPairwiseSeparation(t *testing.T) {
	// No two canopy centers may be closer than T2 — the property that
	// makes them good k-means seeds.
	ds, err := dataset.Generate(dataset.Spec{K: 5, Dim: 3, N: 800, MinSeparation: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	canopies, err := Cluster(ds.Points, Config{T1: 10, T2: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	centers := Centers(canopies)
	for i := 0; i < len(centers); i++ {
		for j := i + 1; j < len(centers); j++ {
			if d := vec.Dist(centers[i], centers[j]); d < 5 {
				t.Errorf("centers %d,%d only %.2f apart (< T2)", i, j, d)
			}
		}
	}
}

func TestEstimateK(t *testing.T) {
	ds, err := dataset.Generate(dataset.Spec{K: 8, Dim: 2, N: 1600, MinSeparation: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	k, err := EstimateK(ds.Points, Config{T1: 12, T2: 6, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if k != 8 {
		t.Errorf("EstimateK = %d, want 8", k)
	}
}

func TestSuggestThresholds(t *testing.T) {
	ds, err := dataset.Generate(dataset.Spec{K: 4, Dim: 2, N: 800, MinSeparation: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t1, t2, err := SuggestThresholds(ds.Points, 2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != 2*t2 || t2 <= 0 {
		t.Fatalf("thresholds = (%v, %v)", t1, t2)
	}
	// The suggested thresholds should land the canopy count in the right
	// ballpark for well-separated data.
	k, err := EstimateK(ds.Points, Config{T1: t1, T2: t2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if k < 3 || k > 8 {
		t.Errorf("EstimateK with suggested thresholds = %d for true k=4", k)
	}
	if _, _, err := SuggestThresholds(ds.Points[:1], 100, 1); err == nil {
		t.Error("single point accepted")
	}
}

// TestPropEveryPointCovered: for any data and any valid thresholds, the
// canopy pass covers every point at least once (the seeding point of each
// canopy is trivially within T1 of itself).
func TestPropEveryPointCovered(t *testing.T) {
	f := func(seed int64, t2Raw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(120)
		pts := make([]vec.Vector, n)
		for i := range pts {
			pts[i] = vec.Vector{r.Float64() * 50, r.Float64() * 50}
		}
		t2 := 0.5 + float64(t2Raw)/8
		canopies, err := Cluster(pts, Config{T1: 2 * t2, T2: t2, Seed: seed})
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for _, c := range canopies {
			for _, m := range c.Members {
				seen[m] = true
			}
		}
		for _, ok := range seen {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropCentersSeparatedByT2: canopy centers are pairwise at least T2
// apart, for any input.
func TestPropCentersSeparatedByT2(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(80)
		pts := make([]vec.Vector, n)
		for i := range pts {
			pts[i] = vec.Vector{r.Float64() * 30, r.Float64() * 30}
		}
		t2 := 1.0 + r.Float64()*4
		canopies, err := Cluster(pts, Config{T1: 2 * t2, T2: t2, Seed: seed})
		if err != nil {
			return false
		}
		centers := Centers(canopies)
		for i := 0; i < len(centers); i++ {
			for j := i + 1; j < len(centers); j++ {
				if vec.Dist(centers[i], centers[j]) < t2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
