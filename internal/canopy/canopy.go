// Package canopy implements canopy clustering (McCallum, Nigam & Ungar,
// KDD 2000), the cheap pre-clustering pass the paper recommends for
// seeding production k-means pipelines ("another common possibility is to
// use canopy clustering to compute the initial centers") and for
// partitioning high-dimensional data into overlapping subsets.
//
// The algorithm makes one pass over the points with two thresholds
// T1 > T2: each unprocessed point starts a new canopy; every point within
// T1 joins the canopy (possibly joining several), and points within T2 are
// removed from further consideration as canopy centers. The canopy centers
// make excellent k-means seeds because no two of them are closer than T2.
package canopy

import (
	"errors"
	"fmt"
	"math/rand"

	"gmeansmr/internal/vec"
)

// Canopy is one overlapping group: the point that seeded it and the
// indexes of all points within the loose threshold.
type Canopy struct {
	Center  vec.Vector
	Members []int
}

// Config holds the two distance thresholds. T1 (loose) must exceed T2
// (tight); both are plain Euclidean distances.
type Config struct {
	T1, T2 float64
	// Seed shuffles the processing order; canopy results are order
	// dependent by construction.
	Seed int64
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	if c.T1 <= 0 || c.T2 <= 0 {
		return errors.New("canopy: thresholds must be positive")
	}
	if c.T1 < c.T2 {
		return fmt.Errorf("canopy: T1 (%g) must be ≥ T2 (%g)", c.T1, c.T2)
	}
	return nil
}

// Cluster performs one canopy pass over points.
func Cluster(points []vec.Vector, cfg Config) ([]Canopy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, errors.New("canopy: no points")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(len(points))
	removed := make([]bool, len(points))
	t1sq := cfg.T1 * cfg.T1
	t2sq := cfg.T2 * cfg.T2

	var canopies []Canopy
	for _, seed := range order {
		if removed[seed] {
			continue
		}
		c := Canopy{Center: points[seed]}
		for i, p := range points {
			d2 := vec.Dist2(p, points[seed])
			if d2 <= t1sq {
				c.Members = append(c.Members, i)
			}
			if d2 <= t2sq {
				removed[i] = true
			}
		}
		canopies = append(canopies, c)
	}
	return canopies, nil
}

// Centers extracts the canopy centers, the k-means seeding set.
func Centers(canopies []Canopy) []vec.Vector {
	out := make([]vec.Vector, len(canopies))
	for i, c := range canopies {
		out[i] = c.Center
	}
	return out
}

// EstimateK runs a canopy pass purely to count clusters — a one-scan
// estimate of k that makes a useful sanity check against G-means output
// when a distance scale for the data is known.
func EstimateK(points []vec.Vector, cfg Config) (int, error) {
	canopies, err := Cluster(points, cfg)
	if err != nil {
		return 0, err
	}
	return len(canopies), nil
}

// SuggestThresholds derives (T1, T2) from a sample of pairwise distances:
// the 10th percentile estimates the within-cluster distance scale (for a
// mixture with a handful of clusters, the smallest tenth of pairwise
// distances is dominated by same-cluster pairs); T2 is set to 3× that so a
// whole cluster fits inside one tight ball, and T1 to 2×T2. It is a
// heuristic — canopy thresholds are domain knowledge in McCallum's
// formulation — but serves the examples and tests.
func SuggestThresholds(points []vec.Vector, sample int, seed int64) (t1, t2 float64, err error) {
	if len(points) < 2 {
		return 0, 0, errors.New("canopy: need at least two points")
	}
	if sample <= 0 {
		sample = 1000
	}
	rng := rand.New(rand.NewSource(seed))
	dists := make([]float64, 0, sample)
	for i := 0; i < sample; i++ {
		a := rng.Intn(len(points))
		b := rng.Intn(len(points))
		if a == b {
			continue
		}
		dists = append(dists, vec.Dist(points[a], points[b]))
	}
	if len(dists) == 0 {
		return 0, 0, errors.New("canopy: could not sample distances")
	}
	// Insertion sort is fine for ≤ a few thousand samples.
	for i := 1; i < len(dists); i++ {
		for j := i; j > 0 && dists[j] < dists[j-1]; j-- {
			dists[j], dists[j-1] = dists[j-1], dists[j]
		}
	}
	t2 = 3 * dists[len(dists)/10]
	if t2 <= 0 {
		t2 = dists[len(dists)-1] / 10
	}
	if t2 <= 0 {
		return 0, 0, errors.New("canopy: degenerate distance distribution")
	}
	return 2 * t2, t2, nil
}
