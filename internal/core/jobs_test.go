package core

import (
	"math/rand"
	"testing"

	"gmeansmr/internal/mr"
	"gmeansmr/internal/vec"
)

// collectEmitter gathers emissions for unit-testing reducers in isolation.
type collectEmitter struct {
	out []mr.KV
}

func (e *collectEmitter) Emit(key int64, v mr.Value) {
	e.out = append(e.out, mr.KV{Key: key, Value: v})
}

func newTaskCtx(heap int64) *mr.TaskContext {
	// The zero TaskContext works for unit tests; only heap-related tests
	// need a real budget, which the engine normally installs.
	return &mr.TaskContext{}
}

func wp(coords ...float64) mr.Value {
	return mr.NewWeightedPointValue(vec.Vector(coords))
}

func TestKFNCReducerMergesBelowOffset(t *testing.T) {
	r := &kfncReducer{seed: 1}
	if err := r.Setup(newTaskCtx(0)); err != nil {
		t.Fatal(err)
	}
	em := &collectEmitter{}
	err := r.Reduce(newTaskCtx(0), 3, []mr.Value{wp(1, 2), wp(3, 4), wp(5, 6)}, em)
	if err != nil {
		t.Fatal(err)
	}
	if len(em.out) != 1 {
		t.Fatalf("emitted %d pairs", len(em.out))
	}
	got := em.out[0].Value.(mr.WeightedPointValue)
	if got.Count != 3 || !vec.ApproxEqual(got.Centroid(), vec.Vector{3, 4}, 1e-12) {
		t.Errorf("merged = %+v", got)
	}
}

func TestKFNCReducerKeepsTwoCandidatesAboveOffset(t *testing.T) {
	r := &kfncReducer{seed: 1}
	r.Setup(newTaskCtx(0))
	em := &collectEmitter{}
	values := []mr.Value{wp(1, 1), wp(2, 2), wp(3, 3), wp(4, 4), wp(5, 5)}
	if err := r.Reduce(newTaskCtx(0), Offset+7, values, em); err != nil {
		t.Fatal(err)
	}
	if len(em.out) != 2 {
		t.Fatalf("kept %d candidates, want 2", len(em.out))
	}
	a := em.out[0].Value.(mr.WeightedPointValue)
	b := em.out[1].Value.(mr.WeightedPointValue)
	if vec.Equal(a.Sum, b.Sum) {
		t.Error("candidate picks are not distinct")
	}
	// Fewer than two values pass through unchanged.
	em = &collectEmitter{}
	r.Reduce(newTaskCtx(0), Offset+7, []mr.Value{wp(9, 9)}, em)
	if len(em.out) != 1 {
		t.Errorf("single candidate emitted %d", len(em.out))
	}
	em = &collectEmitter{}
	r.Reduce(newTaskCtx(0), Offset+7, nil, em)
	if len(em.out) != 0 {
		t.Errorf("empty group emitted %d", len(em.out))
	}
}

func TestKFNCReducerDeterministicByKey(t *testing.T) {
	// Same seed and key must pick the same candidates regardless of which
	// reduce task processes the group (the node-scaling invariant).
	values := []mr.Value{wp(1, 1), wp(2, 2), wp(3, 3), wp(4, 4), wp(5, 5), wp(6, 6)}
	pick := func() []mr.KV {
		r := &kfncReducer{seed: 42}
		r.Setup(newTaskCtx(0))
		em := &collectEmitter{}
		r.Reduce(newTaskCtx(0), Offset+11, values, em)
		return em.out
	}
	a, b := pick(), pick()
	for i := range a {
		av := a[i].Value.(mr.WeightedPointValue)
		bv := b[i].Value.(mr.WeightedPointValue)
		if !vec.Equal(av.Sum, bv.Sum) {
			t.Fatal("candidate picks differ across identical reduces")
		}
	}
}

func TestFewReducerVotePolicies(t *testing.T) {
	mixed := []mr.Value{
		mr.ADDecisionValue{A2Star: 0.5, N: 100, Normal: true},
		mr.ADDecisionValue{A2Star: 2.5, N: 40, Normal: false},
		mr.ADDecisionValue{A2Star: 0.6, N: 80, Normal: true},
	}
	cases := []struct {
		vote VotePolicy
		want bool
	}{
		{VoteMajority, true}, // 180 normal vs 40 not
		{VoteAll, false},
		{VoteAny, true},
	}
	for _, c := range cases {
		r := &fewReducer{vote: c.vote}
		em := &collectEmitter{}
		if err := r.Reduce(newTaskCtx(0), 0, mixed, em); err != nil {
			t.Fatal(err)
		}
		if len(em.out) != 1 {
			t.Fatalf("vote %s emitted %d", c.vote, len(em.out))
		}
		d := em.out[0].Value.(mr.ADDecisionValue)
		if d.Normal != c.want {
			t.Errorf("vote %s → normal=%v, want %v", c.vote, d.Normal, c.want)
		}
		if d.N != 220 {
			t.Errorf("vote %s total N = %d", c.vote, d.N)
		}
	}
}

func TestFewReducerMajorityWeightedBySampleSize(t *testing.T) {
	// One big rejecting mapper outweighs two small accepting ones.
	values := []mr.Value{
		mr.ADDecisionValue{N: 500, Normal: false},
		mr.ADDecisionValue{N: 30, Normal: true},
		mr.ADDecisionValue{N: 30, Normal: true},
	}
	r := &fewReducer{vote: VoteMajority}
	em := &collectEmitter{}
	if err := r.Reduce(newTaskCtx(0), 0, values, em); err != nil {
		t.Fatal(err)
	}
	if em.out[0].Value.(mr.ADDecisionValue).Normal {
		t.Error("sample-size weighting ignored")
	}
}

func TestFewReducerEmptyGroup(t *testing.T) {
	r := &fewReducer{}
	em := &collectEmitter{}
	if err := r.Reduce(newTaskCtx(0), 0, nil, em); err != nil {
		t.Fatal(err)
	}
	if len(em.out) != 0 {
		t.Error("empty group produced a decision")
	}
}

func TestRetestWithFreshChildren(t *testing.T) {
	a := &activeCluster{
		parent:  vec.Vector{5, 5},
		next1:   []vec.Vector{{1, 1}, {2, 2}},
		next2:   []vec.Vector{{8, 8}, {9, 9}},
		accepts: 1,
	}
	r := a.retestWithFreshChildren()
	if r == nil {
		t.Fatal("retest should be possible with 4 candidates")
	}
	if !vec.Equal(r.parent, a.parent) {
		t.Error("parent changed")
	}
	if !vec.Equal(r.c1, vec.Vector{1, 1}) || !vec.Equal(r.c2, vec.Vector{9, 9}) {
		t.Errorf("children = %v, %v", r.c1, r.c2)
	}
	if r.accepts != 1 {
		t.Errorf("accepts = %d", r.accepts)
	}
	// Not enough candidates → nil.
	b := &activeCluster{parent: vec.Vector{1}, next1: []vec.Vector{{2}}}
	if b.retestWithFreshChildren() != nil {
		t.Error("retest with one candidate should fail")
	}
}

func TestSplitVector(t *testing.T) {
	a := &activeCluster{c1: vec.Vector{3, 4}, c2: vec.Vector{1, 1}}
	if got := a.splitVector(); !vec.Equal(got, vec.Vector{2, 3}) {
		t.Errorf("splitVector = %v", got)
	}
}

func TestLiveCentersLayout(t *testing.T) {
	found := []vec.Vector{{0}, {1}}
	active := []*activeCluster{
		{c1: vec.Vector{10}, c2: vec.Vector{11}},
		{c1: vec.Vector{20}, c2: vec.Vector{21}},
	}
	got := liveCenters(found, active)
	want := []float64{0, 1, 10, 11, 20, 21}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i, w := range want {
		if got[i][0] != w {
			t.Errorf("liveCenters[%d] = %v, want %v", i, got[i], w)
		}
	}
}

func TestWriteBackDistributesKFNCOutput(t *testing.T) {
	found := []vec.Vector{{0}}
	active := []*activeCluster{{c1: vec.Vector{9}, c2: vec.Vector{9}}}
	kfnc := &kfncOutput{
		centers:    []vec.Vector{{0.5}, {10}, {11}},
		sizes:      []int64{100, 40, 60},
		candidates: [][]vec.Vector{nil, {{10.1}}, {{11.1}, {11.2}}},
	}
	writeBack(found, active, kfnc)
	a := active[0]
	if a.c1[0] != 10 || a.c2[0] != 11 {
		t.Errorf("children = %v, %v", a.c1, a.c2)
	}
	if a.size1 != 40 || a.size2 != 60 || a.parentSize() != 100 {
		t.Errorf("sizes = %d, %d", a.size1, a.size2)
	}
	if len(a.next1) != 1 || len(a.next2) != 2 {
		t.Errorf("candidates = %v, %v", a.next1, a.next2)
	}
}

func TestVotePolicyRandomizedNeverPanics(t *testing.T) {
	// Fuzz the vote reducer with random decision sets.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(6)
		values := make([]mr.Value, n)
		for i := range values {
			values[i] = mr.ADDecisionValue{
				A2Star: r.Float64() * 3,
				N:      int64(r.Intn(500)),
				Normal: r.Intn(2) == 0,
			}
		}
		red := &fewReducer{vote: VotePolicy(r.Intn(3))}
		em := &collectEmitter{}
		if err := red.Reduce(newTaskCtx(0), int64(trial), values, em); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCovValueStatistics(t *testing.T) {
	// Accumulate known points and verify mean/covariance extraction.
	pts := []vec.Vector{{1, 0}, {-1, 0}, {0, 2}, {0, -2}}
	acc := newCovValue(2)
	for _, p := range pts {
		acc.add(p)
	}
	if acc.Count != 4 {
		t.Fatalf("count = %d", acc.Count)
	}
	n := float64(acc.Count)
	mean := vec.Scale(acc.Sum, 1/n)
	if !vec.ApproxEqual(mean, vec.Vector{0, 0}, 1e-12) {
		t.Errorf("mean = %v", mean)
	}
	// cov = E[xxᵀ] − μμᵀ: diag(0.5, 2), off-diagonal 0.
	cov := make([]float64, 4)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			cov[i*2+j] = acc.Outer[i*2+j]/n - mean[i]*mean[j]
		}
	}
	want := []float64{0.5, 0, 0, 2}
	for i := range want {
		if diff := cov[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("cov[%d] = %v, want %v", i, cov[i], want[i])
		}
	}
}

func TestCovValueMerge(t *testing.T) {
	a, b := newCovValue(2), newCovValue(2)
	a.add(vec.Vector{1, 2})
	b.add(vec.Vector{3, 4})
	b.add(vec.Vector{5, 6})
	a.merge(*b)
	if a.Count != 3 || a.Sum[0] != 9 || a.Sum[1] != 12 {
		t.Errorf("merged = %+v", a)
	}
}

func TestPowerIterationDiagonal(t *testing.T) {
	// diag(1, 9): dominant eigenpair is (0,±1) with λ=9.
	cov := []float64{1, 0, 0, 9}
	rng := rand.New(rand.NewSource(1))
	dir, lambda := powerIteration(cov, 2, 100, rng)
	if lambda < 8.99 || lambda > 9.01 {
		t.Errorf("lambda = %v, want 9", lambda)
	}
	if d := dir[1] * dir[1]; d < 0.999 {
		t.Errorf("direction %v not aligned with dominant axis", dir)
	}
}

func TestPowerIterationZeroMatrix(t *testing.T) {
	cov := make([]float64, 9)
	rng := rand.New(rand.NewSource(2))
	_, lambda := powerIteration(cov, 3, 20, rng)
	if lambda != 0 {
		t.Errorf("lambda = %v for zero covariance", lambda)
	}
}
