package core

import (
	"time"

	"gmeansmr/internal/vec"
)

// activeCluster is one cluster still under test. Naming follows the paper:
// the *parent* is the cluster's center from the previous iteration (what
// TestClusters assigns points to), c1/c2 are the two candidate children
// being refined in the current iteration, and next1/next2 hold the
// candidate grandchildren that KMeansAndFindNewCenters picked for c1 and c2
// — used only if the cluster fails the normality test and splits.
type activeCluster struct {
	parent vec.Vector
	c1, c2 vec.Vector
	// size1 and size2 are the point counts assigned to c1 and c2 at the
	// last k-means pass; their sum approximates the parent cluster size
	// that drives the heap estimate of the strategy switch.
	size1, size2 int64
	// next1 and next2 are the ≤2 candidate centers picked for c1 and c2.
	next1, next2 []vec.Vector
	// accepts counts consecutive Anderson–Darling accepts; the cluster is
	// frozen only after Config.ConfirmRounds of them (each with freshly
	// drawn candidate children, i.e. a fresh projection direction).
	accepts int
}

func (a *activeCluster) parentSize() int64 { return a.size1 + a.size2 }

// retestWithFreshChildren builds the next-round cluster for a
// once-accepted parent: same parent center, but a freshly drawn candidate
// pair so the next Anderson–Darling test projects along an independent
// direction. The fresh pair comes from the candidates the
// KMeansAndFindNewCenters job already picked for the two children — random
// points of the parent's cluster — so no extra job is needed. Returns nil
// when sampling produced fewer than two distinct candidates.
func (a *activeCluster) retestWithFreshChildren() *activeCluster {
	var cands []vec.Vector
	cands = append(cands, a.next1...)
	cands = append(cands, a.next2...)
	if len(cands) < 2 {
		return nil
	}
	// Prefer one candidate from each child's pool (first of next1, last of
	// next2) for a direction spanning the whole cluster.
	return &activeCluster{
		parent:  a.parent,
		c1:      cands[0],
		c2:      cands[len(cands)-1],
		accepts: a.accepts,
	}
}

// splitVector is v = c1 − c2, "the direction that k-means believes is
// important for clustering" (paper §2).
func (a *activeCluster) splitVector() vec.Vector { return vec.Sub(a.c1, a.c2) }

// IterationStats records one G-means round for reporting and for the
// paper's Figure 1 (evolution of centers across iterations).
type IterationStats struct {
	Iteration int
	// Strategy is the normality-test job the round used.
	Strategy TestStrategy
	// ActiveBefore is the number of clusters under test this round.
	ActiveBefore int
	// SplitCount is how many of them failed the test and split.
	SplitCount int
	// FoundAfter is the cumulative number of final centers after the round.
	FoundAfter int
	// Centers snapshots every center alive at the end of the round (final
	// + candidate children), for plotting.
	Centers []vec.Vector
	// MaxClusterSize is the size estimate of the largest cluster under
	// test, the input of the heap-based strategy switch.
	MaxClusterSize int64
	// EstimatedHeap is MaxClusterSize × HeapBytesPerPoint.
	EstimatedHeap int64
	// Duration is the wall time of this round alone — never a cumulative
	// total across rounds (the same per-round semantics multi-k-means
	// Progress reports).
	Duration time.Duration
	// Phases breaks Duration down by round phase: "kmeans" (the plain
	// refinement passes), "kfnc" (the last pass with candidate picking,
	// or the PCA candidate job), "test" (the normality-test job). Always
	// populated, even without a trace recorder attached.
	Phases map[string]time.Duration
}

// TestOutcome reports one cluster's Anderson–Darling verdict to callers
// that want per-cluster diagnostics.
type TestOutcome struct {
	// A2Star is the corrected statistic (sample-size-weighted mean of the
	// per-mapper statistics under TestFewClusters).
	A2Star float64
	// N is the number of projections that contributed.
	N int64
	// Normal is the combined verdict.
	Normal bool
	// Decided is false when no test produced enough samples to decide;
	// undecided clusters are accepted (fail-to-reject convention).
	Decided bool
}
