package core

import (
	"context"
	"fmt"
	"time"

	"gmeansmr/internal/kmeansmr"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/vec"
)

// Result is the outcome of an MR G-means run.
type Result struct {
	// Centers are the final cluster centers; K is len(Centers).
	Centers []vec.Vector
	K       int
	// KBeforeMerge is the center count before the optional merge
	// post-processing (equal to K when merging is disabled).
	KBeforeMerge int
	// Iterations is the number of G-means rounds executed.
	Iterations int
	// PerIteration holds per-round diagnostics and center snapshots
	// (paper Figure 1).
	PerIteration []IterationStats
	// Counters aggregates engine and application counters over every job
	// of the run (distance computations, AD tests, shuffle bytes, ...).
	Counters *mr.Counters
	Duration time.Duration
}

// Run executes MR G-means (paper Algorithm 1):
//
//	PickInitialCenters
//	while not ClusteringCompleted:
//	    KMeans                     (KMeansIterations-1 plain passes)
//	    KMeansAndFindNewCenters    (last pass + candidate picking)
//	    TestClusters               (hybrid strategy)
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: ctx is checked at the top of every
// G-means round and plumbed into every MapReduce job, whose scheduler
// observes it before launching each task — a cancelled run aborts within
// one wave, returning an error wrapping ctx.Err().
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Env.Ctx == nil {
		cfg.Env.Ctx = ctx
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Counters: mr.NewCounters()}
	trace := cfg.Env.Trace
	runSpan := trace.StartSpan("gmeans-run", "run")
	defer runSpan.End()

	initSpan := trace.StartSpan("init", "phase")
	active, err := pickInitialCenters(cfg)
	if err != nil {
		initSpan.End()
		return nil, err
	}
	splits, err := cfg.FS.Splits(cfg.Input)
	initSpan.End()
	if err != nil {
		return nil, err
	}
	numSplits := len(splits)
	var found []vec.Vector

	for round := 1; round <= cfg.MaxIterations && len(active) > 0; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		roundStart := time.Now()
		res.Iterations = round
		roundSpan := trace.StartSpan(fmt.Sprintf("round-%d", round), "phase")
		phases := make(map[string]time.Duration, 3)

		// --- KMeans: refine every live center (found + candidates). ---
		kmSpan := trace.StartSpan("kmeans", "round-phase")
		phaseStart := time.Now()
		centers := liveCenters(found, active)
		for it := 0; it < cfg.KMeansIterations-1; it++ {
			itRes, err := kmeansIteration(cfg, centers, round, it)
			if err != nil {
				kmSpan.End()
				roundSpan.End()
				return nil, err
			}
			itRes.Job.Counters.MergeInto(res.Counters)
			centers = itRes.Centers
		}
		phases["kmeans"] = time.Since(phaseStart)
		kmSpan.End()

		// --- Last k-means pass + candidate picking. ---
		kfncSpan := trace.StartSpan("kfnc", "round-phase")
		phaseStart = time.Now()
		kfnc, err := lastPassWithCandidates(cfg, centers, round, res.Counters)
		if err != nil {
			kfncSpan.End()
			roundSpan.End()
			return nil, err
		}
		phases["kfnc"] = time.Since(phaseStart)
		kfncSpan.End()
		writeBack(found, active, kfnc)
		found = kfnc.centers[:len(found)]

		// Pre-finalize clusters too small to test, drop empty ones.
		var testable []*activeCluster
		for _, a := range active {
			switch {
			case a.parentSize() == 0:
				// Other clusters absorbed every point: the cluster no
				// longer exists.
			case a.parentSize() < cfg.MinClusterSize:
				found = append(found, a.parent)
			default:
				testable = append(testable, a)
			}
		}

		// Respect the MaxK cap: finalize everything still in flight.
		if cfg.MaxK > 0 && len(found)+2*len(testable) > cfg.MaxK {
			for _, a := range testable {
				found = append(found, a.parent)
			}
			roundSpan.SetArg("strategy", "capped").End()
			res.PerIteration = append(res.PerIteration, IterationStats{
				Iteration:    round,
				Strategy:     "capped",
				ActiveBefore: len(testable),
				FoundAfter:   len(found),
				Centers:      vec.CloneAll(found),
				Duration:     time.Since(roundStart),
				Phases:       phases,
			})
			notifyProgress(cfg, res)
			active = nil
			break
		}

		// --- Strategy switch (paper §3.2). ---
		var maxClusterSize, minClusterSize int64
		for i, a := range testable {
			s := a.parentSize()
			if s > maxClusterSize {
				maxClusterSize = s
			}
			if i == 0 || s < minClusterSize {
				minClusterSize = s
			}
		}
		estHeap := maxClusterSize * HeapBytesPerPoint
		strategy := chooseStrategy(cfg, len(testable), estHeap, minClusterSize, numSplits)

		// --- TestClusters / TestFewClusters. ---
		parents := make([]vec.Vector, 0, len(found)+len(testable))
		parents = append(parents, found...)
		vectors := make([]vec.Vector, len(testable))
		for i, a := range testable {
			parents = append(parents, a.parent)
			vectors[i] = a.splitVector()
		}
		var outcomes []TestOutcome
		if len(testable) > 0 {
			testSpan := trace.StartSpan("test", "round-phase").SetArg("strategy", string(strategy))
			phaseStart = time.Now()
			var testRes *mr.Result
			outcomes, testRes, err = runTest(cfg, strategy, parents, len(found), vectors, round)
			if err != nil {
				testSpan.End()
				roundSpan.End()
				return nil, err
			}
			phases["test"] = time.Since(phaseStart)
			testSpan.End()
			testRes.Counters.MergeInto(res.Counters)
		}

		// --- Split or finalize. ---
		var next []*activeCluster
		splits := 0
		for i, a := range testable {
			if outcomes[i].Normal || !outcomes[i].Decided {
				// Gaussian (or no evidence against it): "keep the original
				// center, and discard c1 and c2" — but only freeze after
				// ConfirmRounds consecutive accepts along independent
				// projection directions (see Config.ConfirmRounds).
				a.accepts++
				if a.accepts >= cfg.ConfirmRounds || !outcomes[i].Decided {
					found = append(found, a.parent)
					continue
				}
				if retest := a.retestWithFreshChildren(); retest != nil {
					next = append(next, retest)
				} else {
					// No fresh candidates survived sampling: freeze.
					found = append(found, a.parent)
				}
				continue
			}
			splits++
			for _, child := range []struct {
				center vec.Vector
				size   int64
				cands  []vec.Vector
			}{
				{a.c1, a.size1, a.next1},
				{a.c2, a.size2, a.next2},
			} {
				switch {
				case child.size == 0:
					// Empty child: nothing to represent.
				case child.size < cfg.MinClusterSize || len(child.cands) == 0:
					found = append(found, child.center)
				default:
					na := &activeCluster{parent: child.center, c1: child.cands[0]}
					if len(child.cands) > 1 {
						na.c2 = child.cands[1]
					} else {
						// Only one distinct candidate survived sampling:
						// pair it with the child center itself.
						na.c2 = vec.Clone(child.center)
					}
					next = append(next, na)
				}
			}
		}
		active = next

		roundSpan.SetArg("strategy", string(strategy)).
			SetArg("active", len(testable)).
			SetArg("splits", splits).
			SetArg("found", len(found)).
			End()
		res.PerIteration = append(res.PerIteration, IterationStats{
			Iteration:      round,
			Strategy:       strategy,
			ActiveBefore:   len(testable),
			SplitCount:     splits,
			FoundAfter:     len(found),
			Centers:        snapshotCenters(found, active),
			MaxClusterSize: maxClusterSize,
			EstimatedHeap:  estHeap,
			Duration:       time.Since(roundStart),
			Phases:         phases,
		})
		notifyProgress(cfg, res)
	}

	// Any clusters still active when MaxIterations ran out keep their
	// parent center.
	for _, a := range active {
		found = append(found, a.parent)
	}

	res.KBeforeMerge = len(found)
	if cfg.MergeRadius > 0 {
		mergeStart := time.Now()
		mergeSpan := trace.StartSpan("merge", "phase")
		found = MergeCloseCenters(found, cfg.MergeRadius)
		mergeSpan.SetArg("before", res.KBeforeMerge).SetArg("after", len(found)).End()
		// The merge is a round of its own to observers: one Progress event
		// with StrategyMerge, per-round Duration semantics, and the merged
		// center set. It is not appended to PerIteration — PerIteration
		// records normality-test rounds only.
		if cfg.Progress != nil {
			cfg.Progress(IterationStats{
				Iteration:  res.Iterations + 1,
				Strategy:   StrategyMerge,
				FoundAfter: len(found),
				Centers:    vec.CloneAll(found),
				Duration:   time.Since(mergeStart),
			}, res.Counters.Snapshot())
		}
	}
	res.Centers = found
	res.K = len(found)
	res.Duration = time.Since(start)
	if res.K == 0 {
		return nil, fmt.Errorf("core: no clusters discovered (empty dataset?)")
	}
	return res, nil
}

// pickInitialCenters implements the paper's serial PickInitialCenters: it
// draws pairs of random points as the first candidate centers. With
// InitialClusters=1 this is one pair for the whole dataset.
func pickInitialCenters(cfg Config) ([]*activeCluster, error) {
	sample, err := kmeansmr.SampleUpTo(cfg.Env, 2*cfg.InitialClusters, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	// Degenerate n < 2·InitialClusters datasets: pad the sample by pairing
	// points with clones of themselves. The candidate pair collapses onto
	// the point, the split test keeps the parent, and the run converges to
	// the trivial clustering instead of erroring out. Bit-identical to the
	// old SamplePoints path whenever the dataset is large enough.
	for i := 0; len(sample) < 2*cfg.InitialClusters; i++ {
		sample = append(sample, vec.Clone(sample[i]))
	}
	active := make([]*activeCluster, cfg.InitialClusters)
	for i := range active {
		c1, c2 := sample[2*i], sample[2*i+1]
		mid := vec.Scale(vec.Add(c1, c2), 0.5)
		active[i] = &activeCluster{parent: mid, c1: c1, c2: c2}
	}
	return active, nil
}

// liveCenters builds the center array refined by the k-means jobs:
// found centers first, then the candidate pairs of each active cluster
// (c1_i at found+2i, c2_i at found+2i+1).
func liveCenters(found []vec.Vector, active []*activeCluster) []vec.Vector {
	out := make([]vec.Vector, 0, len(found)+2*len(active))
	out = append(out, found...)
	for _, a := range active {
		out = append(out, a.c1, a.c2)
	}
	return out
}

// writeBack distributes the refined centers, sizes and candidate picks of
// the KFNC job back onto the found slice and the active clusters.
func writeBack(found []vec.Vector, active []*activeCluster, kfnc *kfncOutput) {
	f := len(found)
	for i, a := range active {
		a.c1 = kfnc.centers[f+2*i]
		a.c2 = kfnc.centers[f+2*i+1]
		a.size1 = kfnc.sizes[f+2*i]
		a.size2 = kfnc.sizes[f+2*i+1]
		a.next1 = kfnc.candidates[f+2*i]
		a.next2 = kfnc.candidates[f+2*i+1]
	}
}

// lastPassWithCandidates runs the round's final refinement pass and picks
// two next-round candidates per center: either the paper's fused
// KMeansAndFindNewCenters job (random cluster points, no extra read) or a
// plain k-means pass followed by the PCA candidate job (principal
// children, one extra dataset read — the trade-off the paper describes).
func lastPassWithCandidates(cfg Config, centers []vec.Vector, round int, counters *mr.Counters) (*kfncOutput, error) {
	if cfg.Candidates == CandidatesPCA {
		itRes, err := kmeansIteration(cfg, centers, round, cfg.KMeansIterations-1)
		if err != nil {
			return nil, err
		}
		itRes.Job.Counters.MergeInto(counters)
		cands, jobRes, err := runPCACandidates(cfg, itRes.Centers, round)
		if err != nil {
			return nil, err
		}
		jobRes.Counters.MergeInto(counters)
		return &kfncOutput{centers: itRes.Centers, sizes: itRes.Sizes, candidates: cands}, nil
	}
	kfnc, jobRes, err := runKFNC(cfg, centers, round)
	if err != nil {
		return nil, err
	}
	jobRes.Counters.MergeInto(counters)
	return kfnc, nil
}

// kmeansIteration is a thin wrapper around kmeansmr.Iterate that honors the
// DisableCombiners ablation flag.
func kmeansIteration(cfg Config, centers []vec.Vector, round, it int) (*kmeansmr.IterationResult, error) {
	if !cfg.DisableCombiners {
		return kmeansmr.Iterate(cfg.Env, centers)
	}
	return kmeansmr.IterateNoCombiner(cfg.Env, centers, fmt.Sprintf("gmeans-kmeans-%d-%d", round, it))
}

// chooseStrategy implements the paper's hybrid rule: "first use the
// TestFewClusters strategy, and switch to the other strategy only when ...
// the number of clusters to test is larger than the total reduce capacity,
// and the estimated maximum amount of required heap memory is less than
// 66% of the heap memory of the JVM."
//
// One correctness guard extends the rule. The paper concedes the
// mapper-side test "only delivers correct results if the number of samples
// for each subset is sufficient, which we can suppose is verified for low
// values of k" — a safe supposition at 10M points per 64MB split, but not
// in general. When the smallest cluster under test cannot hand every
// mapper a decidable sample (expected split-local sample below
// MinTestSamples), the reducer-side test is used instead, heap permitting:
// accepting a cluster on an undecidable sample would freeze it forever.
func chooseStrategy(cfg Config, numToTest int, estHeap, minClusterSize int64, numSplits int) TestStrategy {
	if cfg.ForceStrategy != "" {
		return cfg.ForceStrategy
	}
	heapFits := estHeap <= cfg.Cluster.PlannableHeap()
	if numToTest > cfg.Cluster.ReduceCapacity() && heapFits {
		return StrategyReducer
	}
	if numSplits > 0 && minClusterSize/int64(numSplits) < int64(cfg.MinTestSamples) && heapFits {
		return StrategyReducer
	}
	return StrategyFewClusters
}

func snapshotCenters(found []vec.Vector, active []*activeCluster) []vec.Vector {
	return vec.CloneAll(liveCenters(found, active))
}

// notifyProgress reports the just-appended round to the configured observer.
func notifyProgress(cfg Config, res *Result) {
	if cfg.Progress == nil {
		return
	}
	cfg.Progress(res.PerIteration[len(res.PerIteration)-1], res.Counters.Snapshot())
}
