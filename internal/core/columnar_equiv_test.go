package core

import (
	"testing"

	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
	"gmeansmr/internal/kmeansmr"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/vec"
)

// TestGMeansColumnarMatchesRowMajor pins the whole G-means trajectory
// across the two mapper layouts: every job of every round — the fused
// k-means + candidate pass, both normality-test strategies, and the PCA
// candidate job — must make bit-identical decisions whether assignment
// runs through the batched dim-major kernels or the per-point row-major
// loop, so the runs converge to the same k, the same centers and the same
// counter totals.
func TestGMeansColumnarMatchesRowMajor(t *testing.T) {
	pinned := []string{
		kmeansmr.CounterDistances, kmeansmr.CounterPoints,
		CounterADTests, CounterProjections,
		mr.CounterMapInputRecords, mr.CounterMapOutputRecords,
		mr.CounterShuffleRecords, mr.CounterShuffleBytes,
		mr.CounterReduceInputGroups, mr.CounterReduceInputRecords,
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"few-clusters", Config{ForceStrategy: StrategyFewClusters}},
		{"reducer", Config{ForceStrategy: StrategyReducer}},
		{"pca-candidates", Config{Candidates: CandidatesPCA}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(disableColumnar bool) *Result {
				ds, err := dataset.Generate(dataset.Spec{K: 3, Dim: 16, N: 2400,
					CenterRange: 100, StdDev: 1, MinSeparation: 20, Seed: 93})
				if err != nil {
					t.Fatal(err)
				}
				fs := dfs.New(24 << 10)
				ds.WriteToDFS(fs, "/p.txt")
				cfg := tc.cfg
				cfg.Env = kmeansmr.Env{
					FS: fs,
					Cluster: mr.Cluster{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 2,
						TaskHeapBytes: 64 << 20, MaxHeapUsage: 0.66},
					Input:           "/p.txt",
					Dim:             16,
					DisableColumnar: disableColumnar,
				}
				cfg.Seed = 94
				cfg.MaxIterations = 6
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			col := run(false)
			row := run(true)
			if col.K != row.K || col.Iterations != row.Iterations {
				t.Fatalf("trajectories diverge: columnar (k=%d, %d rounds), row-major (k=%d, %d rounds)",
					col.K, col.Iterations, row.K, row.Iterations)
			}
			for c := range col.Centers {
				if !vec.Equal(col.Centers[c], row.Centers[c]) {
					t.Errorf("center %d: columnar %v != row-major %v", c, col.Centers[c], row.Centers[c])
				}
			}
			for _, counter := range pinned {
				if a, b := col.Counters.Get(counter), row.Counters.Get(counter); a != b {
					t.Errorf("%s: columnar %d != row-major %d", counter, a, b)
				}
			}
		})
	}
}
